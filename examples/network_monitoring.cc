// Network monitoring: the Gigascope/CMON scenario from the paper's
// "Massive Data Streams" era. Runs three continuous GROUP BY sketch
// queries over a synthetic packet stream with an injected port scan:
//
//   Q1: per-source distinct destination count (scan detection, HLL)
//   Q2: per-destination top talkers by bytes (SpaceSaving)
//   Q3: per-protocol packet size quantiles (KLL)
//   Q4: sliding-window packet rate (exponential histogram)
//
//   ./build/examples/network_monitoring

#include <algorithm>
#include <cstdio>
#include <vector>

#include "gems.h"

int main() {
  using namespace gems;

  FlowGenerator::Options traffic;
  traffic.num_flows = 20000;
  traffic.include_scan = true;
  traffic.scan_fanout = 700;
  FlowGenerator generator(traffic, 2024);

  StreamQuery::Options q1_options;
  q1_options.aggregate = AggregateKind::kCountDistinct;
  q1_options.hll_precision = 10;
  StreamQuery scan_detector(q1_options, 1);

  StreamQuery::Options q2_options;
  q2_options.aggregate = AggregateKind::kTopK;
  q2_options.top_k = 3;
  q2_options.top_k_capacity = 64;
  StreamQuery top_talkers(q2_options, 2);

  StreamQuery::Options q3_options;
  q3_options.aggregate = AggregateKind::kQuantiles;
  q3_options.quantile_points = {0.5, 0.95, 0.99};
  StreamQuery packet_sizes(q3_options, 3);

  // Q4: packets in the trailing 50k "ticks", within 5%.
  ExponentialHistogram packet_rate(/*window=*/50000, /*epsilon=*/0.05);

  const int kPackets = 500000;
  for (int i = 0; i < kPackets; ++i) {
    const FlowRecord packet = generator.Next();
    const uint64_t ts = static_cast<uint64_t>(i);
    packet_rate.Add(ts);
    // Q1: group = source, item = destination.
    scan_detector.Process({ts, packet.src_ip, packet.dst_ip, 1});
    // Q2: group = destination, item = source, value = bytes.
    top_talkers.Process(
        {ts, packet.dst_ip, packet.src_ip, packet.num_bytes});
    // Q3: group = protocol, value = packet size.
    packet_sizes.Process(
        {ts, packet.protocol, 0, packet.num_bytes});
  }

  std::printf("processed %d packets\n\n", kPackets);

  // Q1 results: sources by destination fan-out.
  auto q1 = scan_detector.Flush();
  std::vector<GroupAggregate> sources = q1[0].groups;
  std::sort(sources.begin(), sources.end(),
            [](const GroupAggregate& a, const GroupAggregate& b) {
              return a.scalar > b.scalar;
            });
  std::printf("Q1: top sources by distinct destinations (scan detection)\n");
  for (size_t i = 0; i < std::min<size_t>(5, sources.size()); ++i) {
    const uint32_t ip = static_cast<uint32_t>(sources[i].group);
    std::printf("   %3zu. %u.%u.%u.%u  ~%.0f destinations%s\n", i + 1,
                ip >> 24, (ip >> 16) & 255, (ip >> 8) & 255, ip & 255,
                sources[i].scalar,
                ip == 0x0A000001 ? "   <-- injected scanner" : "");
  }

  // Q2 results: show one busy destination's top talkers.
  auto q2 = top_talkers.Flush();
  const GroupAggregate* busiest = nullptr;
  for (const GroupAggregate& g : q2[0].groups) {
    if (!g.top_items.empty() &&
        (busiest == nullptr ||
         g.top_items[0].second > busiest->top_items[0].second)) {
      busiest = &g;
    }
  }
  if (busiest != nullptr) {
    const uint32_t ip = static_cast<uint32_t>(busiest->group);
    std::printf("\nQ2: top talkers into %u.%u.%u.%u\n", ip >> 24,
                (ip >> 16) & 255, (ip >> 8) & 255, ip & 255);
    for (const auto& [src, bytes] : busiest->top_items) {
      std::printf("   src %10lu   ~%ld bytes\n", (unsigned long)src,
                  (long)bytes);
    }
  }

  // Q3 results: packet-size quantiles per protocol.
  auto q3 = packet_sizes.Flush();
  std::printf("\nQ4: packets in the last 50k ticks: ~%lu "
              "(exponential histogram, %zu buckets of state)\n",
              (unsigned long)packet_rate.EstimateCount(kPackets - 1),
              packet_rate.NumBuckets());

  std::printf("\nQ3: packet size quantiles per protocol\n");
  std::printf("   proto    p50      p95      p99\n");
  for (const GroupAggregate& g : q3[0].groups) {
    std::printf("   %5lu  %7.1f  %7.1f  %7.1f\n", (unsigned long)g.group,
                g.quantiles[0], g.quantiles[1], g.quantiles[2]);
  }
  return 0;
}
