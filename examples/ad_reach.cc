// Online advertising reach: the paper's 2010s scenario. Distinct-count
// sketches track how many unique users each ad campaign reached, without
// double counting, and support "slice and dice" by demographic plus set
// algebra across campaigns (how many users saw A AND B?).
//
//   ./build/examples/ad_reach

#include <cstdio>
#include <map>
#include <set>

#include "gems.h"

int main() {
  using namespace gems;

  ExposureGenerator::Options audience;
  audience.num_users = 200000;
  audience.num_campaigns = 3;
  audience.audience_fraction = 0.4;
  ExposureGenerator generator(audience, 11);

  // Per-campaign: one HLL++ for total reach, one KMV for set algebra, and
  // per-region HLL++ slices.
  std::map<uint32_t, HllPlusPlus> reach;
  std::map<uint32_t, KmvSketch> algebra;
  std::map<std::pair<uint32_t, uint8_t>, HllPlusPlus> sliced;
  std::map<uint32_t, std::set<uint64_t>> exact;

  const int kImpressions = 2000000;
  for (int i = 0; i < kImpressions; ++i) {
    const ExposureEvent event = generator.Next();
    reach.try_emplace(event.campaign_id, 14).first->second.Update(
        event.user_id);
    algebra.try_emplace(event.campaign_id, 4096).first->second.Update(
        event.user_id);
    sliced.try_emplace({event.campaign_id, event.region}, 12)
        .first->second.Update(event.user_id);
    exact[event.campaign_id].insert(event.user_id);
  }

  std::printf("%d impressions across %u campaigns\n\n", kImpressions,
              audience.num_campaigns);
  std::printf("campaign reach (unique users, no double counting)\n");
  std::printf("   campaign   exact     HLL++ estimate\n");
  for (auto& [campaign, sketch] : reach) {
    std::printf("   %8u  %7zu    %s\n", campaign, exact[campaign].size(),
                sketch.EstimateWithBounds(0.95).ToString().c_str());
  }

  std::printf("\nslice and dice: campaign 0 reach by region\n");
  for (auto& [key, sketch] : sliced) {
    if (key.first != 0) continue;
    std::printf("   region %u: ~%.0f users\n", key.second, sketch.Estimate());
  }

  // Set algebra over KMV/theta sketches: overlap and incremental reach.
  const KmvSketch& a = algebra.at(0);
  const KmvSketch& b = algebra.at(1);
  uint64_t exact_both = 0;
  for (uint64_t user : exact[0]) {
    if (exact[1].contains(user)) ++exact_both;
  }
  std::printf("\ncross-campaign set algebra (KMV/theta sketches)\n");
  std::printf("   saw 0 AND 1:  exact %lu   estimate %.0f\n",
              (unsigned long)exact_both,
              KmvSketch::Intersect(a, b).Estimate());
  std::printf("   saw 0 OR  1:  estimate %.0f\n",
              KmvSketch::Union(a, b).Estimate());
  std::printf("   saw 0 NOT 1 (incremental reach of 0): estimate %.0f\n",
              KmvSketch::Difference(a, b).Estimate());

  // Mergeability: weekly reach = merge of daily sketches.
  HllPlusPlus week(14);
  for (int day = 0; day < 7; ++day) {
    HllPlusPlus daily(14);
    ExposureGenerator day_gen(audience, 100 + day);
    for (int i = 0; i < 50000; ++i) {
      const ExposureEvent event = day_gen.Next();
      if (event.campaign_id == 0) daily.Update(event.user_id);
    }
    week.Merge(daily);
  }
  std::printf("\nweekly reach of campaign 0 (7 merged daily sketches): "
              "~%.0f users\n",
              week.Estimate());
  return 0;
}
