// sketch_tool: a small command-line utility over the library — the
// "pushing out code" adoption pathway from the paper, in tool form.
// Reads one value per line from stdin and maintains the chosen sketch.
//
//   echo -e "a\nb\na\nc" | ./build/examples/sketch_tool distinct
//   seq 1 100000 | ./build/examples/sketch_tool quantiles
//   yes hello | head -50000 | ./build/examples/sketch_tool topk
//   ./build/examples/sketch_tool selftest      # runs on synthetic data
//
// Sketches travel as wire-format envelopes, so they can be saved, merged,
// and inspected without the tool being told what is in the file:
//
//   seq 1 50000     | ./build/examples/sketch_tool save distinct a.sk
//   seq 25000 75000 | ./build/examples/sketch_tool save distinct b.sk
//   ./build/examples/sketch_tool merge merged.sk a.sk b.sk
//   ./build/examples/sketch_tool load merged.sk
//
// Numeric lines are treated as numbers for `quantiles`; all other modes
// hash the raw line bytes.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <unordered_map>
#include <vector>

#include "gems.h"

namespace {

int RunDistinct(std::istream& in) {
  gems::Result<gems::HllPlusPlus> sketch_or =
      gems::HllPlusPlus::ForRelativeError(0.01);
  if (!sketch_or.ok()) {
    std::fprintf(stderr, "%s\n", sketch_or.status().ToString().c_str());
    return 1;
  }
  gems::HllPlusPlus sketch = std::move(sketch_or).value();
  uint64_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    sketch.Update(gems::Hash64(line, 0));
    ++lines;
  }
  const gems::Estimate estimate = sketch.EstimateWithBounds(0.95);
  std::printf("%lu lines, ~%.0f distinct  (95%%: [%.0f, %.0f], %zu bytes "
              "of state)\n",
              (unsigned long)lines, estimate.value, estimate.lower,
              estimate.upper, sketch.MemoryBytes());
  return 0;
}

int RunTopK(std::istream& in) {
  // Track anything above ~0.1% of the stream; the advisor picks capacity.
  gems::SpaceSaving sketch = gems::SpaceSaving::ForThreshold(0.001).value();
  std::string line;
  // SpaceSaving tracks hashes; remember one spelling per tracked hash for
  // display (best-effort, bounded memory).
  std::unordered_map<uint64_t, std::string> spellings;
  while (std::getline(in, line)) {
    const uint64_t key = gems::Hash64(line, 0);
    sketch.Update(key);
    if (spellings.size() < 4096) spellings.emplace(key, line);
  }
  std::printf("top 10 of %ld weighted items:\n", (long)sketch.TotalWeight());
  for (const auto& entry : sketch.TopK(10)) {
    const auto it = spellings.find(entry.item);
    std::printf("  %8ld (+-%ld)  %s\n", (long)entry.count, (long)entry.error,
                it == spellings.end() ? "<unknown>" : it->second.c_str());
  }
  return 0;
}

int RunQuantiles(std::istream& in) {
  gems::TDigest sketch(200);
  std::string line;
  uint64_t skipped = 0;
  while (std::getline(in, line)) {
    char* end = nullptr;
    const double value = std::strtod(line.c_str(), &end);
    if (end == line.c_str()) {
      ++skipped;
      continue;
    }
    sketch.Update(value);
  }
  if (sketch.Count() == 0) {
    std::fprintf(stderr, "no numeric input\n");
    return 1;
  }
  std::printf("n = %lu (skipped %lu non-numeric)\n",
              (unsigned long)sketch.Count(), (unsigned long)skipped);
  for (double q : {0.01, 0.25, 0.5, 0.75, 0.95, 0.99}) {
    std::printf("  p%-4.0f %.6g\n", q * 100, sketch.Quantile(q));
  }
  std::printf("  min %.6g  max %.6g\n", sketch.Min(), sketch.Max());
  return 0;
}

int RunMembership(std::istream& in, const std::string& probe) {
  gems::Result<gems::BloomFilter> filter_or =
      gems::BloomFilter::ForFpr(1 << 20, 0.01);
  if (!filter_or.ok()) {
    std::fprintf(stderr, "%s\n", filter_or.status().ToString().c_str());
    return 1;
  }
  gems::BloomFilter filter = std::move(filter_or).value();
  uint64_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    filter.Insert(std::string_view(line));
    ++lines;
  }
  std::printf("%lu lines inserted; \"%s\" %s\n", (unsigned long)lines,
              probe.c_str(),
              filter.MayContain(std::string_view(probe))
                  ? "MAY be present"
                  : "is definitely absent");
  return 0;
}

// ---- save / load / merge: wire-format files via the sketch registry ----

bool WriteFileBytes(const std::string& path, const std::vector<uint8_t>& b) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) return false;
  const size_t written = b.empty() ? 0 : std::fwrite(b.data(), 1, b.size(), f);
  const bool ok = std::fclose(f) == 0 && written == b.size();
  return ok;
}

bool ReadFileBytes(const std::string& path, std::vector<uint8_t>* out) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return false;
  out->clear();
  uint8_t buffer[4096];
  size_t n;
  while ((n = std::fread(buffer, 1, sizeof(buffer), f)) > 0) {
    out->insert(out->end(), buffer, buffer + n);
  }
  const bool ok = std::ferror(f) == 0;
  std::fclose(f);
  return ok;
}

// Builds a sketch of the named kind from stdin lines and writes it as a
// wire envelope. The file records its own type, so `load` and `merge`
// never need to be told what it is.
int RunSave(const std::string& kind, const std::string& path,
            std::istream& in) {
  std::vector<uint8_t> bytes;
  uint64_t lines = 0;
  std::string line;
  if (kind == "distinct") {
    gems::HllPlusPlus sketch = gems::HllPlusPlus::ForRelativeError(0.01).value();
    while (std::getline(in, line)) {
      sketch.Update(gems::Hash64(line, 0));
      ++lines;
    }
    bytes = sketch.Serialize();
  } else if (kind == "topk") {
    gems::SpaceSaving sketch(1024);
    while (std::getline(in, line)) {
      sketch.Update(gems::Hash64(line, 0));
      ++lines;
    }
    bytes = sketch.Serialize();
  } else if (kind == "quantiles") {
    gems::TDigest sketch(200);
    while (std::getline(in, line)) {
      char* end = nullptr;
      const double value = std::strtod(line.c_str(), &end);
      if (end == line.c_str()) continue;
      sketch.Update(value);
      ++lines;
    }
    bytes = sketch.Serialize();
  } else if (kind == "member") {
    gems::BloomFilter filter = gems::BloomFilter::ForFpr(1 << 20, 0.01).value();
    while (std::getline(in, line)) {
      filter.Insert(std::string_view(line));
      ++lines;
    }
    bytes = filter.Serialize();
  } else if (kind == "windowed") {
    // Windowed distinct: the line number is the timestamp, so the sketch
    // tracks distinct values over the trailing 10k lines (10 panes of
    // 1000). The file round-trips through load/inspect/merge like any
    // other envelope; merging requires matching window geometry.
    gems::SlidingHyperLogLog sketch(12, /*pane_width=*/1000,
                                    /*num_panes=*/10);
    while (std::getline(in, line)) {
      sketch.UpdateAt(lines, gems::Hash64(line, 0));
      ++lines;
    }
    bytes = sketch.Serialize();
  } else {
    std::fprintf(stderr,
                 "unknown sketch kind \"%s\" "
                 "(want distinct|topk|quantiles|member|windowed)\n",
                 kind.c_str());
    return 2;
  }
  if (!WriteFileBytes(path, bytes)) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return 1;
  }
  std::printf("%lu lines -> %s (%zu bytes)\n", (unsigned long)lines,
              path.c_str(), bytes.size());
  return 0;
}

// Loads one file through the registry, reporting parse failures (corrupt
// or truncated files are diagnosed, never crash).
bool LoadSketchFile(const std::string& path, gems::AnySketch* out) {
  std::vector<uint8_t> bytes;
  if (!ReadFileBytes(path, &bytes)) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return false;
  }
  gems::Result<gems::AnySketch> sketch =
      gems::SketchRegistry::Global().Deserialize(bytes);
  if (!sketch.ok()) {
    std::fprintf(stderr, "%s: %s\n", path.c_str(),
                 sketch.status().ToString().c_str());
    return false;
  }
  *out = std::move(sketch).value();
  return true;
}

int RunLoad(const std::string& path) {
  gems::AnySketch sketch;
  if (!LoadSketchFile(path, &sketch)) return 1;
  std::printf("%s: %s sketch, %s\n", path.c_str(), sketch.type_name(),
              sketch.EstimateSummary().c_str());
  return 0;
}

// Describes a sketch file from its envelope alone — type, format version,
// payload size, checksum status — without materializing the sketch. A
// corrupt file reports what the validator rejected instead of failing
// opaquely.
int RunInspect(const std::string& path) {
  std::vector<uint8_t> bytes;
  if (!ReadFileBytes(path, &bytes)) {
    std::fprintf(stderr, "cannot read %s\n", path.c_str());
    return 1;
  }
  gems::Result<gems::AnySketchView> view =
      gems::SketchRegistry::Global().Wrap(bytes);
  if (!view.ok()) {
    std::printf("%s: %zu bytes, INVALID: %s\n", path.c_str(), bytes.size(),
                view.status().ToString().c_str());
    return 1;
  }
  const gems::AnySketchView& v = view.value();
  std::printf("%s:\n", path.c_str());
  std::printf("  type:       %s (id %u)\n", v.type_name(),
              (unsigned)static_cast<uint16_t>(v.type()));
  std::printf("  version:    %u\n", (unsigned)v.version());
  std::printf("  payload:    %zu bytes (%zu with envelope header)\n",
              v.payload_size(), bytes.size());
  std::printf("  checksum:   ok\n");
  gems::Result<std::string> estimate = v.EstimateSummary();
  if (estimate.ok()) {
    std::printf("  estimate:   %s\n", estimate.value().c_str());
  }
  return 0;
}

// Merges any number of same-type sketch files without being told the type:
// the first file is materialized as the accumulator, every other file is
// wrapped in place and absorbed via the view-merge path (no per-file
// sketch materialization).
int RunMerge(const std::string& out_path,
             const std::vector<std::string>& in_paths) {
  gems::AnySketch merged;
  if (!LoadSketchFile(in_paths[0], &merged)) return 1;
  for (size_t i = 1; i < in_paths.size(); ++i) {
    std::vector<uint8_t> bytes;
    if (!ReadFileBytes(in_paths[i], &bytes)) {
      std::fprintf(stderr, "cannot read %s\n", in_paths[i].c_str());
      return 1;
    }
    gems::Result<gems::SketchView> view = gems::SketchView::Wrap(bytes);
    if (!view.ok()) {
      std::fprintf(stderr, "%s: %s\n", in_paths[i].c_str(),
                   view.status().ToString().c_str());
      return 1;
    }
    gems::Status s = merged.MergeFromView(view.value());
    if (!s.ok()) {
      std::fprintf(stderr, "merging %s: %s\n", in_paths[i].c_str(),
                   s.ToString().c_str());
      return 1;
    }
  }
  const std::vector<uint8_t> bytes = merged.Serialize();
  if (!WriteFileBytes(out_path, bytes)) {
    std::fprintf(stderr, "cannot write %s\n", out_path.c_str());
    return 1;
  }
  std::printf("%zu x %s -> %s (%zu bytes), %s\n", in_paths.size(),
              merged.type_name(), out_path.c_str(), bytes.size(),
              merged.EstimateSummary().c_str());
  return 0;
}

// Reports what the SIMD dispatcher selected at startup: the active kernel
// table, the ISA features the CPU advertises, and whether GEMS_FORCE_SCALAR
// overrode a faster table. This is the answer to "which kernels did my
// benchmark numbers actually run?" — the same object every bench --*_json
// artifact embeds under "dispatch".
int RunCaps() {
  const gems::simd::DispatchInfo& info = gems::simd::Dispatch();
  std::printf("kernel dispatch level: %s\n", info.level);
  std::printf("cpu features:          %s\n",
              info.cpu_features.empty() ? "(none reported)"
                                        : info.cpu_features.c_str());
  std::printf("forced scalar:         %s\n",
              info.forced_scalar ? "yes (GEMS_FORCE_SCALAR)" : "no");
  std::printf("json:                  %s\n",
              gems::simd::DispatchJson().c_str());
  return 0;
}

int RunSelfTest() {
  std::printf("self test on synthetic Zipf stream (500k events):\n");
  gems::ZipfGenerator zipf(100000, 1.2, 1);
  gems::HllPlusPlus distinct(14);
  gems::SpaceSaving top(256);
  gems::TDigest quantiles(100);
  for (int i = 0; i < 500000; ++i) {
    const uint64_t item = zipf.Next();
    distinct.Update(item);
    top.Update(item);
    quantiles.Update(static_cast<double>(item % 1000));
  }
  std::printf("  distinct ~%.0f, heaviest item seen %ld times, median "
              "value %.1f\n",
              distinct.Estimate(), (long)top.TopK(1)[0].count,
              quantiles.Quantile(0.5));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  gems::RegisterBuiltinSketches();
  const std::string mode = argc > 1 ? argv[1] : "";
  if (mode == "distinct") return RunDistinct(std::cin);
  if (mode == "topk") return RunTopK(std::cin);
  if (mode == "quantiles") return RunQuantiles(std::cin);
  if (mode == "member") {
    return RunMembership(std::cin, argc > 2 ? argv[2] : "needle");
  }
  if (mode == "save" && argc == 4) return RunSave(argv[2], argv[3], std::cin);
  if (mode == "load" && argc == 3) return RunLoad(argv[2]);
  if (mode == "inspect" && argc == 3) return RunInspect(argv[2]);
  if (mode == "merge" && argc >= 4) {
    return RunMerge(argv[2], std::vector<std::string>(argv + 3, argv + argc));
  }
  if (mode == "selftest") return RunSelfTest();
  if (mode == "caps") return RunCaps();
  std::fprintf(stderr,
               "usage: sketch_tool <distinct|topk|quantiles|member "
               "[probe]|selftest|caps>  (input: one value per line on "
               "stdin)\n"
               "       sketch_tool save "
               "<distinct|topk|quantiles|member|windowed> "
               "<file>   (stdin -> sketch file)\n"
               "       sketch_tool load <file>\n"
               "       sketch_tool inspect <file>   (envelope metadata "
               "without loading)\n"
               "       sketch_tool merge <out> <in1> [in2 ...]\n");
  return 2;
}
