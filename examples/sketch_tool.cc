// sketch_tool: a small command-line utility over the library — the
// "pushing out code" adoption pathway from the paper, in tool form.
// Reads one value per line from stdin and maintains the chosen sketch.
//
//   echo -e "a\nb\na\nc" | ./build/examples/sketch_tool distinct
//   seq 1 100000 | ./build/examples/sketch_tool quantiles
//   yes hello | head -50000 | ./build/examples/sketch_tool topk
//   ./build/examples/sketch_tool selftest      # runs on synthetic data
//
// Numeric lines are treated as numbers for `quantiles`; all other modes
// hash the raw line bytes.

#include <cstdio>
#include <cstdlib>
#include <iostream>
#include <string>
#include <unordered_map>

#include "cardinality/hllpp.h"
#include "core/params.h"
#include "frequency/space_saving.h"
#include "hash/hash.h"
#include "membership/bloom.h"
#include "quantiles/tdigest.h"
#include "workload/generators.h"

namespace {

int RunDistinct(std::istream& in) {
  gems::HllPlusPlus sketch(gems::HllPrecisionFor(0.01));
  uint64_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    sketch.Update(gems::Hash64(line, 0));
    ++lines;
  }
  const gems::Estimate estimate = sketch.CountEstimate(0.95);
  std::printf("%lu lines, ~%.0f distinct  (95%%: [%.0f, %.0f], %zu bytes "
              "of state)\n",
              (unsigned long)lines, estimate.value, estimate.lower,
              estimate.upper, sketch.MemoryBytes());
  return 0;
}

int RunTopK(std::istream& in) {
  gems::SpaceSaving sketch(1024);
  std::string line;
  // SpaceSaving tracks hashes; remember one spelling per tracked hash for
  // display (best-effort, bounded memory).
  std::unordered_map<uint64_t, std::string> spellings;
  while (std::getline(in, line)) {
    const uint64_t key = gems::Hash64(line, 0);
    sketch.Update(key);
    if (spellings.size() < 4096) spellings.emplace(key, line);
  }
  std::printf("top 10 of %ld weighted items:\n", (long)sketch.TotalWeight());
  for (const auto& entry : sketch.TopK(10)) {
    const auto it = spellings.find(entry.item);
    std::printf("  %8ld (+-%ld)  %s\n", (long)entry.count, (long)entry.error,
                it == spellings.end() ? "<unknown>" : it->second.c_str());
  }
  return 0;
}

int RunQuantiles(std::istream& in) {
  gems::TDigest sketch(200);
  std::string line;
  uint64_t skipped = 0;
  while (std::getline(in, line)) {
    char* end = nullptr;
    const double value = std::strtod(line.c_str(), &end);
    if (end == line.c_str()) {
      ++skipped;
      continue;
    }
    sketch.Update(value);
  }
  if (sketch.Count() == 0) {
    std::fprintf(stderr, "no numeric input\n");
    return 1;
  }
  std::printf("n = %lu (skipped %lu non-numeric)\n",
              (unsigned long)sketch.Count(), (unsigned long)skipped);
  for (double q : {0.01, 0.25, 0.5, 0.75, 0.95, 0.99}) {
    std::printf("  p%-4.0f %.6g\n", q * 100, sketch.Quantile(q));
  }
  std::printf("  min %.6g  max %.6g\n", sketch.Min(), sketch.Max());
  return 0;
}

int RunMembership(std::istream& in, const std::string& probe) {
  gems::BloomFilter filter = gems::BloomFilter::ForCapacity(1 << 20, 0.01);
  uint64_t lines = 0;
  std::string line;
  while (std::getline(in, line)) {
    filter.Insert(std::string_view(line));
    ++lines;
  }
  std::printf("%lu lines inserted; \"%s\" %s\n", (unsigned long)lines,
              probe.c_str(),
              filter.MayContain(std::string_view(probe))
                  ? "MAY be present"
                  : "is definitely absent");
  return 0;
}

int RunSelfTest() {
  std::printf("self test on synthetic Zipf stream (500k events):\n");
  gems::ZipfGenerator zipf(100000, 1.2, 1);
  gems::HllPlusPlus distinct(14);
  gems::SpaceSaving top(256);
  gems::TDigest quantiles(100);
  for (int i = 0; i < 500000; ++i) {
    const uint64_t item = zipf.Next();
    distinct.Update(item);
    top.Update(item);
    quantiles.Update(static_cast<double>(item % 1000));
  }
  std::printf("  distinct ~%.0f, heaviest item seen %ld times, median "
              "value %.1f\n",
              distinct.Count(), (long)top.TopK(1)[0].count,
              quantiles.Quantile(0.5));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  const std::string mode = argc > 1 ? argv[1] : "";
  if (mode == "distinct") return RunDistinct(std::cin);
  if (mode == "topk") return RunTopK(std::cin);
  if (mode == "quantiles") return RunQuantiles(std::cin);
  if (mode == "member") {
    return RunMembership(std::cin, argc > 2 ? argv[2] : "needle");
  }
  if (mode == "selftest") return RunSelfTest();
  std::fprintf(stderr,
               "usage: sketch_tool <distinct|topk|quantiles|member "
               "[probe]|selftest>  (input: one value per line on stdin)\n");
  return 2;
}
