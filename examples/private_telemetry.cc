// Private telemetry: the paper's "Private Data Analysis" era. Simulates a
// fleet of clients reporting their default browser home page to a vendor
// under local differential privacy, two ways:
//
//   1. RAPPOR (Google):   Bloom filter + randomized response
//   2. Private CMS (Apple): Count-Mean Sketch + randomized response
//
// The server never sees a raw value, yet recovers the popular ones.
//
//   ./build/examples/private_telemetry

#include <cstdio>
#include <string>
#include <vector>

#include "gems.h"

int main() {
  using namespace gems;

  const std::vector<std::string> pages = {
      "news.example.com", "search.example.com", "mail.example.com",
      "video.example.com", "social.example.com", "wiki.example.com"};
  const std::vector<double> shares = {0.35, 0.25, 0.15, 0.12, 0.08, 0.05};

  auto page_id = [](const std::string& page) {
    return Hash64(page, /*seed=*/0);
  };

  const int kClients = 100000;
  const double kEpsilon = 3.0;

  // --- RAPPOR ---
  RapporClient::Options rappor_options;
  rappor_options.num_bits = 256;
  rappor_options.num_hashes = 2;
  rappor_options.epsilon = kEpsilon;
  RapporAggregator rappor_server(rappor_options);

  // --- Apple CMS ---
  PrivateCmsClient::Options cms_options;
  cms_options.width = 1024;
  cms_options.depth = 16;
  cms_options.epsilon = kEpsilon;
  PrivateCmsServer cms_server(cms_options);

  std::vector<int> true_counts(pages.size(), 0);
  Rng rng(99);
  for (int client = 0; client < kClients; ++client) {
    // Draw this client's true value from the popularity distribution.
    double u = rng.NextDouble();
    size_t choice = 0;
    for (; choice + 1 < pages.size(); ++choice) {
      if (u < shares[choice]) break;
      u -= shares[choice];
    }
    true_counts[choice]++;
    const uint64_t value = page_id(pages[choice]);

    RapporClient rappor_client(rappor_options, 1000 + client);
    rappor_server.Absorb(rappor_client.Report(value));

    PrivateCmsClient cms_client(cms_options, 5000000 + client);
    cms_server.Absorb(cms_client.Encode(value));
  }

  std::printf("%d clients, epsilon = %.1f per report\n\n", kClients,
              kEpsilon);
  std::printf("%-22s %8s %14s %14s\n", "home page", "true", "RAPPOR",
              "private CMS");
  for (size_t i = 0; i < pages.size(); ++i) {
    const uint64_t value = page_id(pages[i]);
    std::printf("%-22s %8d %14.0f %14.0f\n", pages[i].c_str(),
                true_counts[i], rappor_server.EstimateFrequency(value),
                cms_server.EstimateCount(value));
  }

  // A value nobody reported should decode near zero in both systems.
  const uint64_t absent = page_id("attacker.example.com");
  std::printf("%-22s %8d %14.0f %14.0f\n", "attacker.example.com", 0,
              rappor_server.EstimateFrequency(absent),
              cms_server.EstimateCount(absent));

  std::printf("\ndictionary decode via RAPPOR (threshold 2%% of fleet):\n");
  std::vector<uint64_t> dictionary;
  for (const std::string& page : pages) dictionary.push_back(page_id(page));
  dictionary.push_back(absent);
  for (const auto& [value, estimate] :
       rappor_server.Decode(dictionary, 0.02 * kClients)) {
    for (const std::string& page : pages) {
      if (page_id(page) == value) {
        std::printf("   %-22s ~%.0f clients\n", page.c_str(), estimate);
      }
    }
  }
  return 0;
}
