// Federated learning with sketched gradients: the paper's "Optimizing
// Machine Learning" direction, reproducing the FetchSGD recipe. A fleet of
// simulated clients trains a logistic model; each round every client
// uploads a fixed-size Count Sketch of its gradient instead of the full
// d-dimensional vector.
//
//   ./build/examples/federated_learning

#include <cstdio>

#include "gems.h"

int main() {
  using namespace gems;

  const size_t kDim = 4096;
  const size_t kExamples = 2000;
  // Sparse features (bag-of-words-like): the regime FetchSGD targets,
  // where gradients concentrate on a few heavy coordinates.
  const auto dataset =
      GenerateSparseLogisticData(kExamples, kDim, 32, 64, 3);

  // Baseline: dense federated SGD (full gradient uploads).
  LogisticModel dense_model(kDim);
  const auto dense_losses =
      TrainDenseSgd(&dense_model, dataset.examples, 100, 1.0);

  // FetchSGD at ~8.5x upload compression.
  FetchSgdTrainer::Options options;
  options.num_clients = 50;
  options.rounds = 100;
  options.learning_rate = 1.0;
  options.momentum = 0.9;
  options.sketch_width = 96;
  options.sketch_depth = 5;  // 480 cells for 4096 dims.
  options.top_k = 10;
  FetchSgdTrainer trainer(options, 4);
  LogisticModel sketched_model(kDim);
  const auto sketched_losses =
      trainer.Train(&sketched_model, dataset.examples);

  const size_t dense_bytes = kDim * sizeof(double);
  std::printf("dim %zu, %zu clients, %zu rounds\n", kDim,
              options.num_clients, options.rounds);
  std::printf("upload per client per round: dense %zu bytes, sketched %zu "
              "bytes (%.1fx compression)\n\n",
              dense_bytes, trainer.UploadBytesPerClient(),
              static_cast<double>(dense_bytes) /
                  trainer.UploadBytesPerClient());

  std::printf("round   dense-loss   fetchsgd-loss\n");
  for (size_t round = 0; round < options.rounds; round += 10) {
    std::printf("%5zu   %10.4f   %13.4f\n", round, dense_losses[round],
                sketched_losses[round]);
  }
  std::printf("final   %10.4f   %13.4f\n", dense_losses.back(),
              sketched_losses.back());

  std::printf("\nfinal accuracy: dense %.3f, fetchsgd %.3f\n",
              dense_model.Accuracy(dataset.examples),
              sketched_model.Accuracy(dataset.examples));
  return 0;
}
