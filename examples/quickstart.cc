// Quickstart: the five core sketches in ~60 lines.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Demonstrates distinct counting (HyperLogLog), membership (Bloom filter),
// frequency estimation (Count-Min), top-k (SpaceSaving), and quantiles
// (KLL) over one synthetic stream, against exact baselines.

#include <algorithm>
#include <cstdio>
#include <utility>
#include <vector>

#include "gems.h"

int main() {
  using namespace gems;

  // A skewed stream of 1M events over 100k possible items.
  ZipfGenerator stream(100000, 1.2, /*seed=*/42);
  const size_t n = 1000000;

  // Advisor-driven constructors: state the accuracy target and let the
  // library size the sketch; invalid targets come back as a Status instead
  // of aborting.
  Result<HyperLogLog> distinct_or = HyperLogLog::ForRelativeError(0.01);
  Result<BloomFilter> seen_or = BloomFilter::ForFpr(100000, 0.01);
  Result<CountMinSketch> counts_or = CountMinSketch::ForErrorBound(0.001, 0.02);
  Result<SpaceSaving> top_or = SpaceSaving::ForThreshold(0.008);
  if (!distinct_or.ok() || !seen_or.ok() || !counts_or.ok() || !top_or.ok()) {
    std::fprintf(stderr, "bad sketch parameters\n");
    return 1;
  }
  HyperLogLog distinct = std::move(distinct_or).value();
  BloomFilter seen = std::move(seen_or).value();
  CountMinSketch counts = std::move(counts_or).value();
  SpaceSaving top = std::move(top_or).value();
  KllSketch latency(200);

  ExactDistinct exact_distinct;
  ExactFrequencies exact_counts;

  // Batched ingest: each sketch hashes a chunk once in a hoisted loop
  // instead of re-deriving per-item state inside Update().
  std::vector<uint64_t> chunk;
  chunk.reserve(4096);
  for (size_t i = 0; i < n;) {
    chunk.clear();
    const size_t m = std::min<size_t>(chunk.capacity(), n - i);
    for (size_t j = 0; j < m; ++j) chunk.push_back(stream.Next());
    distinct.UpdateBatch(chunk);
    seen.InsertBatch(chunk);
    counts.UpdateBatch(chunk);
    top.UpdateBatch(chunk);
    for (uint64_t item : chunk) {
      exact_distinct.Update(item);
      exact_counts.Update(item);
    }
    i += m;
  }
  Rng value_rng(7);
  for (size_t i = 0; i < n; ++i) {
    latency.Update(value_rng.NextExponential() * 10.0);  // Fake latency ms.
  }

  std::printf("stream: %zu events\n\n", n);

  std::printf("-- count distinct (HyperLogLog, 4 KiB) --\n");
  std::printf("   exact %lu   estimate %.0f   interval %s\n\n",
              (unsigned long)exact_distinct.Count(), distinct.Estimate(),
              distinct.EstimateWithBounds(0.95).ToString().c_str());

  const uint64_t probe = stream.Next();
  std::printf("-- membership (Bloom filter) --\n");
  std::printf("   seen item present? %s   fresh key present? %s\n\n",
              seen.MayContain(probe) ? "yes" : "no",
              seen.MayContain(0xDEADBEEFULL) ? "yes (false positive)" : "no");

  std::printf("-- frequency (Count-Min) + top-k (SpaceSaving) --\n");
  for (const auto& entry : top.TopK(5)) {
    std::printf("   item %20lu   exact %8ld   count-min %8lu   "
                "space-saving %8ld (+-%ld)\n",
                (unsigned long)entry.item,
                (long)exact_counts.Count(entry.item),
                (unsigned long)counts.Estimate(entry.item), (long)entry.count,
                (long)entry.error);
  }

  std::printf("\n-- quantiles (KLL over %lu fake latencies) --\n",
              (unsigned long)latency.Count());
  for (double q : {0.5, 0.95, 0.99}) {
    std::printf("   p%-4.0f %.2f ms\n", q * 100, latency.Quantile(q));
  }

  // Every sketch serializes and merges -- ship them between machines.
  const auto bytes = distinct.Serialize();
  auto restored = HyperLogLog::Deserialize(bytes);
  std::printf("\nserialized HLL: %zu bytes; restored estimate %.0f\n",
              bytes.size(), restored.value().Estimate());
  return 0;
}
