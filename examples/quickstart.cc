// Quickstart: the five core sketches in ~60 lines.
//
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart
//
// Demonstrates distinct counting (HyperLogLog), membership (Bloom filter),
// frequency estimation (Count-Min), top-k (SpaceSaving), and quantiles
// (KLL) over one synthetic stream, against exact baselines.

#include <cstdio>

#include "cardinality/hyperloglog.h"
#include "frequency/count_min.h"
#include "frequency/space_saving.h"
#include "membership/bloom.h"
#include "quantiles/kll.h"
#include "workload/baselines.h"
#include "workload/generators.h"

int main() {
  using namespace gems;

  // A skewed stream of 1M events over 100k possible items.
  ZipfGenerator stream(100000, 1.2, /*seed=*/42);
  const size_t n = 1000000;

  HyperLogLog distinct(/*precision=*/12);
  BloomFilter seen(1 << 22, 7);
  CountMinSketch counts(4096, 4);
  SpaceSaving top(128);
  KllSketch latency(200);

  ExactDistinct exact_distinct;
  ExactFrequencies exact_counts;

  Rng value_rng(7);
  for (size_t i = 0; i < n; ++i) {
    const uint64_t item = stream.Next();
    distinct.Update(item);
    seen.Insert(item);
    counts.Update(item);
    top.Update(item);
    latency.Update(value_rng.NextExponential() * 10.0);  // Fake latency ms.
    exact_distinct.Update(item);
    exact_counts.Update(item);
  }

  std::printf("stream: %zu events\n\n", n);

  std::printf("-- count distinct (HyperLogLog, 4 KiB) --\n");
  std::printf("   exact %lu   estimate %.0f   interval %s\n\n",
              (unsigned long)exact_distinct.Count(), distinct.Count(),
              distinct.CountEstimate(0.95).ToString().c_str());

  const uint64_t probe = stream.Next();
  std::printf("-- membership (Bloom filter) --\n");
  std::printf("   seen item present? %s   fresh key present? %s\n\n",
              seen.MayContain(probe) ? "yes" : "no",
              seen.MayContain(0xDEADBEEFULL) ? "yes (false positive)" : "no");

  std::printf("-- frequency (Count-Min, 64 KiB) + top-k (SpaceSaving) --\n");
  for (const auto& entry : top.TopK(5)) {
    std::printf("   item %20lu   exact %8ld   count-min %8lu   "
                "space-saving %8ld (+-%ld)\n",
                (unsigned long)entry.item,
                (long)exact_counts.Count(entry.item),
                (unsigned long)counts.EstimateCount(entry.item), (long)entry.count,
                (long)entry.error);
  }

  std::printf("\n-- quantiles (KLL over %lu fake latencies) --\n",
              (unsigned long)latency.Count());
  for (double q : {0.5, 0.95, 0.99}) {
    std::printf("   p%-4.0f %.2f ms\n", q * 100, latency.Quantile(q));
  }

  // Every sketch serializes and merges -- ship them between machines.
  const auto bytes = distinct.Serialize();
  auto restored = HyperLogLog::Deserialize(bytes);
  std::printf("\nserialized HLL: %zu bytes; restored estimate %.0f\n",
              bytes.size(), restored.value().Count());
  return 0;
}
