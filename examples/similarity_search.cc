// Similarity search: the paper's multimedia/search scenario. Indexes
// synthetic "image embeddings" (high-dimensional vectors) with SimHash + LSH
// banding and answers nearest-neighbour queries with far fewer exact
// comparisons than a linear scan.
//
//   ./build/examples/similarity_search

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "gems.h"

int main() {
  using namespace gems;

  const size_t kDim = 128;
  const size_t kCorpus = 20000;
  const uint32_t kBands = 16, kRows = 8;
  const uint32_t kBits = kBands * kRows;

  Rng rng(7);
  SimHasher hasher(kBits, 1);
  LshIndex index(kBands, kRows, 2);

  // Corpus: random embeddings, plus planted near-duplicates of item 0.
  std::vector<std::vector<double>> corpus;
  corpus.reserve(kCorpus);
  for (size_t i = 0; i < kCorpus; ++i) {
    std::vector<double> v(kDim);
    for (double& x : v) x = rng.NextGaussian();
    corpus.push_back(std::move(v));
  }
  const std::vector<size_t> planted = {501, 777, 1234};
  for (size_t id : planted) {
    for (size_t d = 0; d < kDim; ++d) {
      corpus[id][d] = corpus[0][d] + 0.25 * rng.NextGaussian();
    }
  }

  // Build the index from SimHash signatures, one 64-bit word per row.
  for (size_t id = 0; id < kCorpus; ++id) {
    const auto bits = hasher.Signature(corpus[id]);
    std::vector<uint64_t> rows(kBits);
    for (uint32_t b = 0; b < kBits; ++b) {
      rows[b] = (bits[b / 64] >> (b % 64)) & 1;
    }
    index.Insert(id, rows);
  }

  // Query with a noisy copy of item 0.
  std::vector<double> query = corpus[0];
  for (double& x : query) x += 0.2 * rng.NextGaussian();
  const auto query_bits = hasher.Signature(query);
  std::vector<uint64_t> query_rows(kBits);
  for (uint32_t b = 0; b < kBits; ++b) {
    query_rows[b] = (query_bits[b / 64] >> (b % 64)) & 1;
  }

  const auto candidates = index.Query(query_rows);
  std::printf("corpus: %zu vectors, dim %zu\n", kCorpus, kDim);
  std::printf("LSH (b=%u, r=%u) returned %zu candidates "
              "(linear scan would compare %zu)\n\n",
              kBands, kRows, candidates.value().size(), kCorpus);

  // Exact re-rank of the candidates only.
  std::vector<std::pair<double, uint64_t>> ranked;
  for (uint64_t id : candidates.value()) {
    ranked.emplace_back(CosineSimilarity(query, corpus[id]), id);
  }
  std::sort(ranked.rbegin(), ranked.rend());
  std::printf("top matches after exact re-rank of candidates:\n");
  for (size_t i = 0; i < std::min<size_t>(5, ranked.size()); ++i) {
    const bool is_planted =
        ranked[i].second == 0 ||
        std::find(planted.begin(), planted.end(), ranked[i].second) !=
            planted.end();
    std::printf("   id %6lu   cosine %.3f%s\n",
                (unsigned long)ranked[i].second, ranked[i].first,
                is_planted ? "   <-- planted neighbour" : "");
  }

  // Per-bit agreement for cosine c is 1 - acos(c)/pi; the banding S-curve
  // is evaluated at that agreement rate.
  auto agreement = [](double cosine) { return 1.0 - std::acos(cosine) / M_PI; };
  std::printf("\ntheoretical candidate probability: near-duplicate "
              "(cos 0.95) %.3f, random pair (cos 0) %.4f\n",
              index.CollisionProbability(agreement(0.95)),
              index.CollisionProbability(agreement(0.0)));
  return 0;
}
