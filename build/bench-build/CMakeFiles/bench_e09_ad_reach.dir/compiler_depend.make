# Empty compiler generated dependencies file for bench_e09_ad_reach.
# This may be replaced when dependencies are built.
