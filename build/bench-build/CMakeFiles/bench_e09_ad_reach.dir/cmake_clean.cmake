file(REMOVE_RECURSE
  "../bench/bench_e09_ad_reach"
  "../bench/bench_e09_ad_reach.pdb"
  "CMakeFiles/bench_e09_ad_reach.dir/bench_e09_ad_reach.cc.o"
  "CMakeFiles/bench_e09_ad_reach.dir/bench_e09_ad_reach.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e09_ad_reach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
