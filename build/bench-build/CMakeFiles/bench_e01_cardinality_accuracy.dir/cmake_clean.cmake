file(REMOVE_RECURSE
  "../bench/bench_e01_cardinality_accuracy"
  "../bench/bench_e01_cardinality_accuracy.pdb"
  "CMakeFiles/bench_e01_cardinality_accuracy.dir/bench_e01_cardinality_accuracy.cc.o"
  "CMakeFiles/bench_e01_cardinality_accuracy.dir/bench_e01_cardinality_accuracy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e01_cardinality_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
