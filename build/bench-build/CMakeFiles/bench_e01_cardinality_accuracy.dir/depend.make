# Empty dependencies file for bench_e01_cardinality_accuracy.
# This may be replaced when dependencies are built.
