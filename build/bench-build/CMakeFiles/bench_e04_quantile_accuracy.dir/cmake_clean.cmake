file(REMOVE_RECURSE
  "../bench/bench_e04_quantile_accuracy"
  "../bench/bench_e04_quantile_accuracy.pdb"
  "CMakeFiles/bench_e04_quantile_accuracy.dir/bench_e04_quantile_accuracy.cc.o"
  "CMakeFiles/bench_e04_quantile_accuracy.dir/bench_e04_quantile_accuracy.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e04_quantile_accuracy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
