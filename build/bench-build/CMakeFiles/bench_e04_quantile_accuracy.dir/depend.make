# Empty dependencies file for bench_e04_quantile_accuracy.
# This may be replaced when dependencies are built.
