# Empty compiler generated dependencies file for bench_e13_graph_connectivity.
# This may be replaced when dependencies are built.
