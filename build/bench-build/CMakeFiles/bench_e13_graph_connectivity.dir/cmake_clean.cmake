file(REMOVE_RECURSE
  "../bench/bench_e13_graph_connectivity"
  "../bench/bench_e13_graph_connectivity.pdb"
  "CMakeFiles/bench_e13_graph_connectivity.dir/bench_e13_graph_connectivity.cc.o"
  "CMakeFiles/bench_e13_graph_connectivity.dir/bench_e13_graph_connectivity.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e13_graph_connectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
