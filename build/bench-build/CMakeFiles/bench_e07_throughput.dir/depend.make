# Empty dependencies file for bench_e07_throughput.
# This may be replaced when dependencies are built.
