file(REMOVE_RECURSE
  "../bench/bench_e07_throughput"
  "../bench/bench_e07_throughput.pdb"
  "CMakeFiles/bench_e07_throughput.dir/bench_e07_throughput.cc.o"
  "CMakeFiles/bench_e07_throughput.dir/bench_e07_throughput.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e07_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
