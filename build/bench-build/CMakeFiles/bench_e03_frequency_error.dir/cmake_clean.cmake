file(REMOVE_RECURSE
  "../bench/bench_e03_frequency_error"
  "../bench/bench_e03_frequency_error.pdb"
  "CMakeFiles/bench_e03_frequency_error.dir/bench_e03_frequency_error.cc.o"
  "CMakeFiles/bench_e03_frequency_error.dir/bench_e03_frequency_error.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e03_frequency_error.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
