# Empty compiler generated dependencies file for bench_e03_frequency_error.
# This may be replaced when dependencies are built.
