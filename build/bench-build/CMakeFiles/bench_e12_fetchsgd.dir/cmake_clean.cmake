file(REMOVE_RECURSE
  "../bench/bench_e12_fetchsgd"
  "../bench/bench_e12_fetchsgd.pdb"
  "CMakeFiles/bench_e12_fetchsgd.dir/bench_e12_fetchsgd.cc.o"
  "CMakeFiles/bench_e12_fetchsgd.dir/bench_e12_fetchsgd.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e12_fetchsgd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
