# Empty dependencies file for bench_e12_fetchsgd.
# This may be replaced when dependencies are built.
