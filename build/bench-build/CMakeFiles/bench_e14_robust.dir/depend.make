# Empty dependencies file for bench_e14_robust.
# This may be replaced when dependencies are built.
