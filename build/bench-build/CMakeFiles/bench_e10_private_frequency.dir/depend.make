# Empty dependencies file for bench_e10_private_frequency.
# This may be replaced when dependencies are built.
