file(REMOVE_RECURSE
  "../bench/bench_e10_private_frequency"
  "../bench/bench_e10_private_frequency.pdb"
  "CMakeFiles/bench_e10_private_frequency.dir/bench_e10_private_frequency.cc.o"
  "CMakeFiles/bench_e10_private_frequency.dir/bench_e10_private_frequency.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e10_private_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
