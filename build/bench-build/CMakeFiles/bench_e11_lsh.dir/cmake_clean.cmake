file(REMOVE_RECURSE
  "../bench/bench_e11_lsh"
  "../bench/bench_e11_lsh.pdb"
  "CMakeFiles/bench_e11_lsh.dir/bench_e11_lsh.cc.o"
  "CMakeFiles/bench_e11_lsh.dir/bench_e11_lsh.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e11_lsh.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
