file(REMOVE_RECURSE
  "../bench/bench_e08_bloom_fpr"
  "../bench/bench_e08_bloom_fpr.pdb"
  "CMakeFiles/bench_e08_bloom_fpr.dir/bench_e08_bloom_fpr.cc.o"
  "CMakeFiles/bench_e08_bloom_fpr.dir/bench_e08_bloom_fpr.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e08_bloom_fpr.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
