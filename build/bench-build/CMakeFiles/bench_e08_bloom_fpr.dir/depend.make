# Empty dependencies file for bench_e08_bloom_fpr.
# This may be replaced when dependencies are built.
