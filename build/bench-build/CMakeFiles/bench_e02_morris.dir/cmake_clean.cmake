file(REMOVE_RECURSE
  "../bench/bench_e02_morris"
  "../bench/bench_e02_morris.pdb"
  "CMakeFiles/bench_e02_morris.dir/bench_e02_morris.cc.o"
  "CMakeFiles/bench_e02_morris.dir/bench_e02_morris.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e02_morris.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
