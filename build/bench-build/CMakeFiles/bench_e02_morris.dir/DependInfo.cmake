
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_e02_morris.cc" "bench-build/CMakeFiles/bench_e02_morris.dir/bench_e02_morris.cc.o" "gcc" "bench-build/CMakeFiles/bench_e02_morris.dir/bench_e02_morris.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workload/CMakeFiles/gems_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/gems_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/sampling/CMakeFiles/gems_sampling.dir/DependInfo.cmake"
  "/root/repo/build/src/similarity/CMakeFiles/gems_similarity.dir/DependInfo.cmake"
  "/root/repo/build/src/privacy/CMakeFiles/gems_privacy.dir/DependInfo.cmake"
  "/root/repo/build/src/membership/CMakeFiles/gems_membership.dir/DependInfo.cmake"
  "/root/repo/build/src/robust/CMakeFiles/gems_robust.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/gems_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/cardinality/CMakeFiles/gems_cardinality.dir/DependInfo.cmake"
  "/root/repo/build/src/frequency/CMakeFiles/gems_frequency.dir/DependInfo.cmake"
  "/root/repo/build/src/quantiles/CMakeFiles/gems_quantiles.dir/DependInfo.cmake"
  "/root/repo/build/src/distributed/CMakeFiles/gems_distributed.dir/DependInfo.cmake"
  "/root/repo/build/src/ml/CMakeFiles/gems_ml.dir/DependInfo.cmake"
  "/root/repo/build/src/moments/CMakeFiles/gems_moments.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gems_core.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/gems_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/gems_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
