file(REMOVE_RECURSE
  "../bench/bench_e06_mergeability"
  "../bench/bench_e06_mergeability.pdb"
  "CMakeFiles/bench_e06_mergeability.dir/bench_e06_mergeability.cc.o"
  "CMakeFiles/bench_e06_mergeability.dir/bench_e06_mergeability.cc.o.d"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_e06_mergeability.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
