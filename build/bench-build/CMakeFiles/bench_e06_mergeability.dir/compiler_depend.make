# Empty compiler generated dependencies file for bench_e06_mergeability.
# This may be replaced when dependencies are built.
