
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cardinality/flajolet_martin.cc" "src/cardinality/CMakeFiles/gems_cardinality.dir/flajolet_martin.cc.o" "gcc" "src/cardinality/CMakeFiles/gems_cardinality.dir/flajolet_martin.cc.o.d"
  "/root/repo/src/cardinality/hllpp.cc" "src/cardinality/CMakeFiles/gems_cardinality.dir/hllpp.cc.o" "gcc" "src/cardinality/CMakeFiles/gems_cardinality.dir/hllpp.cc.o.d"
  "/root/repo/src/cardinality/hyperloglog.cc" "src/cardinality/CMakeFiles/gems_cardinality.dir/hyperloglog.cc.o" "gcc" "src/cardinality/CMakeFiles/gems_cardinality.dir/hyperloglog.cc.o.d"
  "/root/repo/src/cardinality/kmv.cc" "src/cardinality/CMakeFiles/gems_cardinality.dir/kmv.cc.o" "gcc" "src/cardinality/CMakeFiles/gems_cardinality.dir/kmv.cc.o.d"
  "/root/repo/src/cardinality/linear_counting.cc" "src/cardinality/CMakeFiles/gems_cardinality.dir/linear_counting.cc.o" "gcc" "src/cardinality/CMakeFiles/gems_cardinality.dir/linear_counting.cc.o.d"
  "/root/repo/src/cardinality/loglog.cc" "src/cardinality/CMakeFiles/gems_cardinality.dir/loglog.cc.o" "gcc" "src/cardinality/CMakeFiles/gems_cardinality.dir/loglog.cc.o.d"
  "/root/repo/src/cardinality/morris.cc" "src/cardinality/CMakeFiles/gems_cardinality.dir/morris.cc.o" "gcc" "src/cardinality/CMakeFiles/gems_cardinality.dir/morris.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gems_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/gems_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gems_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
