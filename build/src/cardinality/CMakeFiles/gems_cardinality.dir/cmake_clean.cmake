file(REMOVE_RECURSE
  "CMakeFiles/gems_cardinality.dir/flajolet_martin.cc.o"
  "CMakeFiles/gems_cardinality.dir/flajolet_martin.cc.o.d"
  "CMakeFiles/gems_cardinality.dir/hllpp.cc.o"
  "CMakeFiles/gems_cardinality.dir/hllpp.cc.o.d"
  "CMakeFiles/gems_cardinality.dir/hyperloglog.cc.o"
  "CMakeFiles/gems_cardinality.dir/hyperloglog.cc.o.d"
  "CMakeFiles/gems_cardinality.dir/kmv.cc.o"
  "CMakeFiles/gems_cardinality.dir/kmv.cc.o.d"
  "CMakeFiles/gems_cardinality.dir/linear_counting.cc.o"
  "CMakeFiles/gems_cardinality.dir/linear_counting.cc.o.d"
  "CMakeFiles/gems_cardinality.dir/loglog.cc.o"
  "CMakeFiles/gems_cardinality.dir/loglog.cc.o.d"
  "CMakeFiles/gems_cardinality.dir/morris.cc.o"
  "CMakeFiles/gems_cardinality.dir/morris.cc.o.d"
  "libgems_cardinality.a"
  "libgems_cardinality.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gems_cardinality.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
