# Empty compiler generated dependencies file for gems_cardinality.
# This may be replaced when dependencies are built.
