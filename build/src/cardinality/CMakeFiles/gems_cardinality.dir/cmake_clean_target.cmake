file(REMOVE_RECURSE
  "libgems_cardinality.a"
)
