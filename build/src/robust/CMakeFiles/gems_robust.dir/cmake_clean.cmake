file(REMOVE_RECURSE
  "CMakeFiles/gems_robust.dir/adversary.cc.o"
  "CMakeFiles/gems_robust.dir/adversary.cc.o.d"
  "CMakeFiles/gems_robust.dir/robust_f2.cc.o"
  "CMakeFiles/gems_robust.dir/robust_f2.cc.o.d"
  "libgems_robust.a"
  "libgems_robust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gems_robust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
