# Empty dependencies file for gems_robust.
# This may be replaced when dependencies are built.
