file(REMOVE_RECURSE
  "libgems_robust.a"
)
