
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/robust/adversary.cc" "src/robust/CMakeFiles/gems_robust.dir/adversary.cc.o" "gcc" "src/robust/CMakeFiles/gems_robust.dir/adversary.cc.o.d"
  "/root/repo/src/robust/robust_f2.cc" "src/robust/CMakeFiles/gems_robust.dir/robust_f2.cc.o" "gcc" "src/robust/CMakeFiles/gems_robust.dir/robust_f2.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gems_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/gems_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/moments/CMakeFiles/gems_moments.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gems_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
