
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/engine/exponential_histogram.cc" "src/engine/CMakeFiles/gems_engine.dir/exponential_histogram.cc.o" "gcc" "src/engine/CMakeFiles/gems_engine.dir/exponential_histogram.cc.o.d"
  "/root/repo/src/engine/stream_query.cc" "src/engine/CMakeFiles/gems_engine.dir/stream_query.cc.o" "gcc" "src/engine/CMakeFiles/gems_engine.dir/stream_query.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gems_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/gems_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/cardinality/CMakeFiles/gems_cardinality.dir/DependInfo.cmake"
  "/root/repo/build/src/frequency/CMakeFiles/gems_frequency.dir/DependInfo.cmake"
  "/root/repo/build/src/quantiles/CMakeFiles/gems_quantiles.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gems_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
