file(REMOVE_RECURSE
  "libgems_engine.a"
)
