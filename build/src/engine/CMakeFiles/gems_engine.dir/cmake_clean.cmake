file(REMOVE_RECURSE
  "CMakeFiles/gems_engine.dir/exponential_histogram.cc.o"
  "CMakeFiles/gems_engine.dir/exponential_histogram.cc.o.d"
  "CMakeFiles/gems_engine.dir/stream_query.cc.o"
  "CMakeFiles/gems_engine.dir/stream_query.cc.o.d"
  "libgems_engine.a"
  "libgems_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gems_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
