# Empty compiler generated dependencies file for gems_engine.
# This may be replaced when dependencies are built.
