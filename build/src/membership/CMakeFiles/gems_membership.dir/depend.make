# Empty dependencies file for gems_membership.
# This may be replaced when dependencies are built.
