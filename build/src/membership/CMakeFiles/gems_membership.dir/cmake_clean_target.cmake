file(REMOVE_RECURSE
  "libgems_membership.a"
)
