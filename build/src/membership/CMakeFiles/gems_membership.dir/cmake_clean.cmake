file(REMOVE_RECURSE
  "CMakeFiles/gems_membership.dir/blocked_bloom.cc.o"
  "CMakeFiles/gems_membership.dir/blocked_bloom.cc.o.d"
  "CMakeFiles/gems_membership.dir/bloom.cc.o"
  "CMakeFiles/gems_membership.dir/bloom.cc.o.d"
  "CMakeFiles/gems_membership.dir/counting_bloom.cc.o"
  "CMakeFiles/gems_membership.dir/counting_bloom.cc.o.d"
  "libgems_membership.a"
  "libgems_membership.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gems_membership.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
