
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/membership/blocked_bloom.cc" "src/membership/CMakeFiles/gems_membership.dir/blocked_bloom.cc.o" "gcc" "src/membership/CMakeFiles/gems_membership.dir/blocked_bloom.cc.o.d"
  "/root/repo/src/membership/bloom.cc" "src/membership/CMakeFiles/gems_membership.dir/bloom.cc.o" "gcc" "src/membership/CMakeFiles/gems_membership.dir/bloom.cc.o.d"
  "/root/repo/src/membership/counting_bloom.cc" "src/membership/CMakeFiles/gems_membership.dir/counting_bloom.cc.o" "gcc" "src/membership/CMakeFiles/gems_membership.dir/counting_bloom.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gems_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/gems_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gems_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
