
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sampling/l0_sampler.cc" "src/sampling/CMakeFiles/gems_sampling.dir/l0_sampler.cc.o" "gcc" "src/sampling/CMakeFiles/gems_sampling.dir/l0_sampler.cc.o.d"
  "/root/repo/src/sampling/reservoir.cc" "src/sampling/CMakeFiles/gems_sampling.dir/reservoir.cc.o" "gcc" "src/sampling/CMakeFiles/gems_sampling.dir/reservoir.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gems_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/gems_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gems_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
