file(REMOVE_RECURSE
  "CMakeFiles/gems_sampling.dir/l0_sampler.cc.o"
  "CMakeFiles/gems_sampling.dir/l0_sampler.cc.o.d"
  "CMakeFiles/gems_sampling.dir/reservoir.cc.o"
  "CMakeFiles/gems_sampling.dir/reservoir.cc.o.d"
  "libgems_sampling.a"
  "libgems_sampling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gems_sampling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
