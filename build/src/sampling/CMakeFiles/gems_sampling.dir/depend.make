# Empty dependencies file for gems_sampling.
# This may be replaced when dependencies are built.
