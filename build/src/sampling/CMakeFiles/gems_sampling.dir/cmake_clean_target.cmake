file(REMOVE_RECURSE
  "libgems_sampling.a"
)
