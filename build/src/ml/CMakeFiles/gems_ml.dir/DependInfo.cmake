
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ml/fetchsgd.cc" "src/ml/CMakeFiles/gems_ml.dir/fetchsgd.cc.o" "gcc" "src/ml/CMakeFiles/gems_ml.dir/fetchsgd.cc.o.d"
  "/root/repo/src/ml/linear_model.cc" "src/ml/CMakeFiles/gems_ml.dir/linear_model.cc.o" "gcc" "src/ml/CMakeFiles/gems_ml.dir/linear_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gems_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/gems_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/moments/CMakeFiles/gems_moments.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gems_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
