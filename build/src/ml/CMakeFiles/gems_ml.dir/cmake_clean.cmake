file(REMOVE_RECURSE
  "CMakeFiles/gems_ml.dir/fetchsgd.cc.o"
  "CMakeFiles/gems_ml.dir/fetchsgd.cc.o.d"
  "CMakeFiles/gems_ml.dir/linear_model.cc.o"
  "CMakeFiles/gems_ml.dir/linear_model.cc.o.d"
  "libgems_ml.a"
  "libgems_ml.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gems_ml.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
