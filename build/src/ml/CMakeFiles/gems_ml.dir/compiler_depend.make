# Empty compiler generated dependencies file for gems_ml.
# This may be replaced when dependencies are built.
