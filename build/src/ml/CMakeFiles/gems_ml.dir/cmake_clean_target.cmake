file(REMOVE_RECURSE
  "libgems_ml.a"
)
