file(REMOVE_RECURSE
  "libgems_common.a"
)
