file(REMOVE_RECURSE
  "CMakeFiles/gems_common.dir/bytes.cc.o"
  "CMakeFiles/gems_common.dir/bytes.cc.o.d"
  "CMakeFiles/gems_common.dir/numeric.cc.o"
  "CMakeFiles/gems_common.dir/numeric.cc.o.d"
  "CMakeFiles/gems_common.dir/random.cc.o"
  "CMakeFiles/gems_common.dir/random.cc.o.d"
  "CMakeFiles/gems_common.dir/status.cc.o"
  "CMakeFiles/gems_common.dir/status.cc.o.d"
  "libgems_common.a"
  "libgems_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gems_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
