# Empty compiler generated dependencies file for gems_common.
# This may be replaced when dependencies are built.
