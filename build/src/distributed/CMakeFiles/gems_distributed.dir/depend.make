# Empty dependencies file for gems_distributed.
# This may be replaced when dependencies are built.
