file(REMOVE_RECURSE
  "libgems_distributed.a"
)
