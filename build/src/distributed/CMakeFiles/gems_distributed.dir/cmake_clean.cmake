file(REMOVE_RECURSE
  "CMakeFiles/gems_distributed.dir/aggregation.cc.o"
  "CMakeFiles/gems_distributed.dir/aggregation.cc.o.d"
  "libgems_distributed.a"
  "libgems_distributed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gems_distributed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
