# Empty dependencies file for gems_frequency.
# This may be replaced when dependencies are built.
