file(REMOVE_RECURSE
  "libgems_frequency.a"
)
