file(REMOVE_RECURSE
  "CMakeFiles/gems_frequency.dir/count_min.cc.o"
  "CMakeFiles/gems_frequency.dir/count_min.cc.o.d"
  "CMakeFiles/gems_frequency.dir/count_sketch.cc.o"
  "CMakeFiles/gems_frequency.dir/count_sketch.cc.o.d"
  "CMakeFiles/gems_frequency.dir/dyadic_count_min.cc.o"
  "CMakeFiles/gems_frequency.dir/dyadic_count_min.cc.o.d"
  "CMakeFiles/gems_frequency.dir/majority.cc.o"
  "CMakeFiles/gems_frequency.dir/majority.cc.o.d"
  "CMakeFiles/gems_frequency.dir/misra_gries.cc.o"
  "CMakeFiles/gems_frequency.dir/misra_gries.cc.o.d"
  "CMakeFiles/gems_frequency.dir/space_saving.cc.o"
  "CMakeFiles/gems_frequency.dir/space_saving.cc.o.d"
  "libgems_frequency.a"
  "libgems_frequency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gems_frequency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
