
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/frequency/count_min.cc" "src/frequency/CMakeFiles/gems_frequency.dir/count_min.cc.o" "gcc" "src/frequency/CMakeFiles/gems_frequency.dir/count_min.cc.o.d"
  "/root/repo/src/frequency/count_sketch.cc" "src/frequency/CMakeFiles/gems_frequency.dir/count_sketch.cc.o" "gcc" "src/frequency/CMakeFiles/gems_frequency.dir/count_sketch.cc.o.d"
  "/root/repo/src/frequency/dyadic_count_min.cc" "src/frequency/CMakeFiles/gems_frequency.dir/dyadic_count_min.cc.o" "gcc" "src/frequency/CMakeFiles/gems_frequency.dir/dyadic_count_min.cc.o.d"
  "/root/repo/src/frequency/majority.cc" "src/frequency/CMakeFiles/gems_frequency.dir/majority.cc.o" "gcc" "src/frequency/CMakeFiles/gems_frequency.dir/majority.cc.o.d"
  "/root/repo/src/frequency/misra_gries.cc" "src/frequency/CMakeFiles/gems_frequency.dir/misra_gries.cc.o" "gcc" "src/frequency/CMakeFiles/gems_frequency.dir/misra_gries.cc.o.d"
  "/root/repo/src/frequency/space_saving.cc" "src/frequency/CMakeFiles/gems_frequency.dir/space_saving.cc.o" "gcc" "src/frequency/CMakeFiles/gems_frequency.dir/space_saving.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gems_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/gems_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gems_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
