# CMake generated Testfile for 
# Source directory: /root/repo/src/frequency
# Build directory: /root/repo/build/src/frequency
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
