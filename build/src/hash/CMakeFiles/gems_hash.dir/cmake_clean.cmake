file(REMOVE_RECURSE
  "CMakeFiles/gems_hash.dir/hash.cc.o"
  "CMakeFiles/gems_hash.dir/hash.cc.o.d"
  "CMakeFiles/gems_hash.dir/murmur3.cc.o"
  "CMakeFiles/gems_hash.dir/murmur3.cc.o.d"
  "CMakeFiles/gems_hash.dir/polynomial.cc.o"
  "CMakeFiles/gems_hash.dir/polynomial.cc.o.d"
  "CMakeFiles/gems_hash.dir/tabulation.cc.o"
  "CMakeFiles/gems_hash.dir/tabulation.cc.o.d"
  "CMakeFiles/gems_hash.dir/xxhash.cc.o"
  "CMakeFiles/gems_hash.dir/xxhash.cc.o.d"
  "libgems_hash.a"
  "libgems_hash.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gems_hash.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
