# Empty compiler generated dependencies file for gems_hash.
# This may be replaced when dependencies are built.
