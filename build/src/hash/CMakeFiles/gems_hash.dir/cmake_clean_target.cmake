file(REMOVE_RECURSE
  "libgems_hash.a"
)
