# Empty dependencies file for gems_quantiles.
# This may be replaced when dependencies are built.
