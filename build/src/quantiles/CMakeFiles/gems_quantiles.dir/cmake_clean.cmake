file(REMOVE_RECURSE
  "CMakeFiles/gems_quantiles.dir/gk.cc.o"
  "CMakeFiles/gems_quantiles.dir/gk.cc.o.d"
  "CMakeFiles/gems_quantiles.dir/kll.cc.o"
  "CMakeFiles/gems_quantiles.dir/kll.cc.o.d"
  "CMakeFiles/gems_quantiles.dir/mrl.cc.o"
  "CMakeFiles/gems_quantiles.dir/mrl.cc.o.d"
  "CMakeFiles/gems_quantiles.dir/qdigest.cc.o"
  "CMakeFiles/gems_quantiles.dir/qdigest.cc.o.d"
  "CMakeFiles/gems_quantiles.dir/req.cc.o"
  "CMakeFiles/gems_quantiles.dir/req.cc.o.d"
  "CMakeFiles/gems_quantiles.dir/tdigest.cc.o"
  "CMakeFiles/gems_quantiles.dir/tdigest.cc.o.d"
  "libgems_quantiles.a"
  "libgems_quantiles.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gems_quantiles.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
