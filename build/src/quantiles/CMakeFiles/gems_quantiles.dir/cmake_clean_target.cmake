file(REMOVE_RECURSE
  "libgems_quantiles.a"
)
