file(REMOVE_RECURSE
  "CMakeFiles/gems_privacy.dir/mechanisms.cc.o"
  "CMakeFiles/gems_privacy.dir/mechanisms.cc.o.d"
  "CMakeFiles/gems_privacy.dir/private_cms.cc.o"
  "CMakeFiles/gems_privacy.dir/private_cms.cc.o.d"
  "CMakeFiles/gems_privacy.dir/rappor.cc.o"
  "CMakeFiles/gems_privacy.dir/rappor.cc.o.d"
  "CMakeFiles/gems_privacy.dir/secure_aggregation.cc.o"
  "CMakeFiles/gems_privacy.dir/secure_aggregation.cc.o.d"
  "libgems_privacy.a"
  "libgems_privacy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gems_privacy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
