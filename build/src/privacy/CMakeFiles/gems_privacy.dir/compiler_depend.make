# Empty compiler generated dependencies file for gems_privacy.
# This may be replaced when dependencies are built.
