file(REMOVE_RECURSE
  "libgems_privacy.a"
)
