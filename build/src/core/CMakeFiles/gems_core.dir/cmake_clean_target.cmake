file(REMOVE_RECURSE
  "libgems_core.a"
)
