# Empty dependencies file for gems_core.
# This may be replaced when dependencies are built.
