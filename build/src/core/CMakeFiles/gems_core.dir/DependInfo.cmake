
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/estimate.cc" "src/core/CMakeFiles/gems_core.dir/estimate.cc.o" "gcc" "src/core/CMakeFiles/gems_core.dir/estimate.cc.o.d"
  "/root/repo/src/core/frame.cc" "src/core/CMakeFiles/gems_core.dir/frame.cc.o" "gcc" "src/core/CMakeFiles/gems_core.dir/frame.cc.o.d"
  "/root/repo/src/core/params.cc" "src/core/CMakeFiles/gems_core.dir/params.cc.o" "gcc" "src/core/CMakeFiles/gems_core.dir/params.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gems_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/gems_hash.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
