file(REMOVE_RECURSE
  "CMakeFiles/gems_core.dir/estimate.cc.o"
  "CMakeFiles/gems_core.dir/estimate.cc.o.d"
  "CMakeFiles/gems_core.dir/frame.cc.o"
  "CMakeFiles/gems_core.dir/frame.cc.o.d"
  "CMakeFiles/gems_core.dir/params.cc.o"
  "CMakeFiles/gems_core.dir/params.cc.o.d"
  "libgems_core.a"
  "libgems_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gems_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
