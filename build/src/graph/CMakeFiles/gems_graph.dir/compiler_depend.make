# Empty compiler generated dependencies file for gems_graph.
# This may be replaced when dependencies are built.
