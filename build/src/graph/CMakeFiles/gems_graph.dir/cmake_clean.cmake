file(REMOVE_RECURSE
  "CMakeFiles/gems_graph.dir/agm.cc.o"
  "CMakeFiles/gems_graph.dir/agm.cc.o.d"
  "CMakeFiles/gems_graph.dir/connectivity.cc.o"
  "CMakeFiles/gems_graph.dir/connectivity.cc.o.d"
  "CMakeFiles/gems_graph.dir/union_find.cc.o"
  "CMakeFiles/gems_graph.dir/union_find.cc.o.d"
  "libgems_graph.a"
  "libgems_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gems_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
