file(REMOVE_RECURSE
  "libgems_graph.a"
)
