file(REMOVE_RECURSE
  "CMakeFiles/gems_similarity.dir/lsh.cc.o"
  "CMakeFiles/gems_similarity.dir/lsh.cc.o.d"
  "CMakeFiles/gems_similarity.dir/minhash.cc.o"
  "CMakeFiles/gems_similarity.dir/minhash.cc.o.d"
  "CMakeFiles/gems_similarity.dir/simhash.cc.o"
  "CMakeFiles/gems_similarity.dir/simhash.cc.o.d"
  "libgems_similarity.a"
  "libgems_similarity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gems_similarity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
