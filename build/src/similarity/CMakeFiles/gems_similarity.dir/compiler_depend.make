# Empty compiler generated dependencies file for gems_similarity.
# This may be replaced when dependencies are built.
