file(REMOVE_RECURSE
  "libgems_similarity.a"
)
