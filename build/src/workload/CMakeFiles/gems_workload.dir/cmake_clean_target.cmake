file(REMOVE_RECURSE
  "libgems_workload.a"
)
