# Empty compiler generated dependencies file for gems_workload.
# This may be replaced when dependencies are built.
