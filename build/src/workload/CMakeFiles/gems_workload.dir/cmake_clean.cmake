file(REMOVE_RECURSE
  "CMakeFiles/gems_workload.dir/baselines.cc.o"
  "CMakeFiles/gems_workload.dir/baselines.cc.o.d"
  "CMakeFiles/gems_workload.dir/generators.cc.o"
  "CMakeFiles/gems_workload.dir/generators.cc.o.d"
  "CMakeFiles/gems_workload.dir/metrics.cc.o"
  "CMakeFiles/gems_workload.dir/metrics.cc.o.d"
  "libgems_workload.a"
  "libgems_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gems_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
