# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("hash")
subdirs("core")
subdirs("workload")
subdirs("cardinality")
subdirs("membership")
subdirs("frequency")
subdirs("quantiles")
subdirs("sampling")
subdirs("moments")
subdirs("graph")
subdirs("similarity")
subdirs("privacy")
subdirs("robust")
subdirs("engine")
subdirs("distributed")
subdirs("ml")
