file(REMOVE_RECURSE
  "CMakeFiles/gems_moments.dir/ams.cc.o"
  "CMakeFiles/gems_moments.dir/ams.cc.o.d"
  "CMakeFiles/gems_moments.dir/compressed_sensing.cc.o"
  "CMakeFiles/gems_moments.dir/compressed_sensing.cc.o.d"
  "CMakeFiles/gems_moments.dir/frequent_directions.cc.o"
  "CMakeFiles/gems_moments.dir/frequent_directions.cc.o.d"
  "CMakeFiles/gems_moments.dir/jl.cc.o"
  "CMakeFiles/gems_moments.dir/jl.cc.o.d"
  "CMakeFiles/gems_moments.dir/sparse_jl.cc.o"
  "CMakeFiles/gems_moments.dir/sparse_jl.cc.o.d"
  "CMakeFiles/gems_moments.dir/tensor_sketch.cc.o"
  "CMakeFiles/gems_moments.dir/tensor_sketch.cc.o.d"
  "libgems_moments.a"
  "libgems_moments.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gems_moments.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
