# Empty dependencies file for gems_moments.
# This may be replaced when dependencies are built.
