
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/moments/ams.cc" "src/moments/CMakeFiles/gems_moments.dir/ams.cc.o" "gcc" "src/moments/CMakeFiles/gems_moments.dir/ams.cc.o.d"
  "/root/repo/src/moments/compressed_sensing.cc" "src/moments/CMakeFiles/gems_moments.dir/compressed_sensing.cc.o" "gcc" "src/moments/CMakeFiles/gems_moments.dir/compressed_sensing.cc.o.d"
  "/root/repo/src/moments/frequent_directions.cc" "src/moments/CMakeFiles/gems_moments.dir/frequent_directions.cc.o" "gcc" "src/moments/CMakeFiles/gems_moments.dir/frequent_directions.cc.o.d"
  "/root/repo/src/moments/jl.cc" "src/moments/CMakeFiles/gems_moments.dir/jl.cc.o" "gcc" "src/moments/CMakeFiles/gems_moments.dir/jl.cc.o.d"
  "/root/repo/src/moments/sparse_jl.cc" "src/moments/CMakeFiles/gems_moments.dir/sparse_jl.cc.o" "gcc" "src/moments/CMakeFiles/gems_moments.dir/sparse_jl.cc.o.d"
  "/root/repo/src/moments/tensor_sketch.cc" "src/moments/CMakeFiles/gems_moments.dir/tensor_sketch.cc.o" "gcc" "src/moments/CMakeFiles/gems_moments.dir/tensor_sketch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/gems_common.dir/DependInfo.cmake"
  "/root/repo/build/src/hash/CMakeFiles/gems_hash.dir/DependInfo.cmake"
  "/root/repo/build/src/core/CMakeFiles/gems_core.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
