file(REMOVE_RECURSE
  "libgems_moments.a"
)
