file(REMOVE_RECURSE
  "CMakeFiles/cardinality_test.dir/cardinality_test.cc.o"
  "CMakeFiles/cardinality_test.dir/cardinality_test.cc.o.d"
  "cardinality_test"
  "cardinality_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cardinality_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
