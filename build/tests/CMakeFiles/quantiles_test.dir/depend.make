# Empty dependencies file for quantiles_test.
# This may be replaced when dependencies are built.
