file(REMOVE_RECURSE
  "CMakeFiles/quantiles_test.dir/quantiles_test.cc.o"
  "CMakeFiles/quantiles_test.dir/quantiles_test.cc.o.d"
  "quantiles_test"
  "quantiles_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/quantiles_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
