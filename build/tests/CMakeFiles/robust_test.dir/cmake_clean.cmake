file(REMOVE_RECURSE
  "CMakeFiles/robust_test.dir/robust_test.cc.o"
  "CMakeFiles/robust_test.dir/robust_test.cc.o.d"
  "robust_test"
  "robust_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/robust_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
