# Empty dependencies file for sketch_tool.
# This may be replaced when dependencies are built.
