file(REMOVE_RECURSE
  "CMakeFiles/ad_reach.dir/ad_reach.cc.o"
  "CMakeFiles/ad_reach.dir/ad_reach.cc.o.d"
  "ad_reach"
  "ad_reach.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ad_reach.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
