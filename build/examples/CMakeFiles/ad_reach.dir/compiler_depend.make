# Empty compiler generated dependencies file for ad_reach.
# This may be replaced when dependencies are built.
