#include <algorithm>
#include <cmath>
#include <set>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include <gtest/gtest.h>

#include "workload/baselines.h"
#include "workload/generators.h"
#include "workload/metrics.h"

namespace gems {
namespace {

// -------------------------------------------------------------------- Zipf

TEST(ZipfGeneratorTest, IsDeterministicPerSeed) {
  ZipfGenerator a(1000, 1.1, 5), b(1000, 1.1, 5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(ZipfGeneratorTest, UnshuffledRanksAreSkewed) {
  ZipfGenerator zipf(1000, 1.2, 7, /*shuffle=*/false);
  std::unordered_map<uint64_t, int> counts;
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[zipf.Next()]++;
  // Rank 0 should dominate rank 9 by roughly 10^1.2.
  EXPECT_GT(counts[0], counts[9] * 5);
  // All draws inside the universe.
  for (const auto& [item, count] : counts) EXPECT_LT(item, 1000u);
}

TEST(ZipfGeneratorTest, ExponentZeroIsUniform) {
  ZipfGenerator zipf(10, 0.0, 11, /*shuffle=*/false);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) counts[zipf.Next()]++;
  for (int c : counts) EXPECT_NEAR(c, n / 10, 600);
}

TEST(ZipfGeneratorTest, ShuffleDecorrelatesIdFromRank) {
  ZipfGenerator zipf(1000, 1.2, 7, /*shuffle=*/true);
  std::unordered_map<uint64_t, int> counts;
  for (int i = 0; i < 10000; ++i) counts[zipf.Next()]++;
  // The most frequent shuffled item should not be a tiny integer.
  uint64_t top_item = 0;
  int top_count = 0;
  for (const auto& [item, count] : counts) {
    if (count > top_count) {
      top_count = count;
      top_item = item;
    }
  }
  EXPECT_GT(top_item, 1000u);  // Hash-permuted far outside [0, universe).
}

TEST(DistinctItemsTest, AllDistinct) {
  const auto items = DistinctItems(100000, 3);
  std::unordered_set<uint64_t> set(items.begin(), items.end());
  EXPECT_EQ(set.size(), items.size());
}

TEST(DistinctItemsTest, DifferentSeedsDiffer) {
  const auto a = DistinctItems(10, 1);
  const auto b = DistinctItems(10, 2);
  EXPECT_NE(a, b);
}

TEST(GenerateValuesTest, AllDistributionsProduceN) {
  for (auto dist :
       {ValueDistribution::kUniform, ValueDistribution::kGaussian,
        ValueDistribution::kLogNormal, ValueDistribution::kSorted,
        ValueDistribution::kReverse, ValueDistribution::kZipfValues}) {
    EXPECT_EQ(GenerateValues(dist, 1000, 9).size(), 1000u);
  }
}

TEST(GenerateValuesTest, SortedAndReverseShapes) {
  const auto sorted = GenerateValues(ValueDistribution::kSorted, 100, 0);
  EXPECT_TRUE(std::is_sorted(sorted.begin(), sorted.end()));
  auto reversed = GenerateValues(ValueDistribution::kReverse, 100, 0);
  EXPECT_TRUE(std::is_sorted(reversed.rbegin(), reversed.rend()));
}

TEST(GenerateValuesTest, LogNormalIsPositiveAndSkewed) {
  const auto xs = GenerateValues(ValueDistribution::kLogNormal, 10000, 4);
  double max_value = 0;
  for (double x : xs) {
    EXPECT_GT(x, 0.0);
    max_value = std::max(max_value, x);
  }
  EXPECT_GT(max_value, 10.0);  // Heavy right tail.
}

// -------------------------------------------------------------------- Flow

TEST(FlowGeneratorTest, ElephantsAndMice) {
  FlowGenerator::Options options;
  options.num_flows = 1000;
  options.flow_size_skew = 1.3;
  FlowGenerator gen(options, 21);
  std::unordered_map<uint64_t, int> packets_per_flow;
  for (int i = 0; i < 50000; ++i) {
    packets_per_flow[gen.Next().FlowKey()]++;
  }
  // Skewed: the top flow should carry far more than the mean.
  int top = 0;
  for (const auto& [flow, count] : packets_per_flow) top = std::max(top, count);
  const double mean = 50000.0 / packets_per_flow.size();
  EXPECT_GT(top, 10 * mean);
}

TEST(FlowGeneratorTest, ScanInjectsHighFanoutSource) {
  FlowGenerator::Options options;
  options.include_scan = true;
  options.scan_fanout = 256;
  FlowGenerator gen(options, 22);
  std::unordered_set<uint32_t> scanner_dsts;
  for (int i = 0; i < 100000; ++i) {
    FlowRecord r = gen.Next();
    if (r.src_ip == 0x0A000001 && r.src_port == 31337) {
      scanner_dsts.insert(r.dst_ip);
    }
  }
  EXPECT_EQ(scanner_dsts.size(), 256u);
}

// --------------------------------------------------------------- Exposure

TEST(ExposureGeneratorTest, EventsRespectAudiences) {
  ExposureGenerator::Options options;
  ExposureGenerator gen(options, 33);
  for (int i = 0; i < 1000; ++i) {
    ExposureEvent e = gen.Next();
    EXPECT_TRUE(gen.InAudience(e.user_id, e.campaign_id));
    EXPECT_LT(e.region, options.num_regions);
    EXPECT_LT(e.age_band, options.num_age_bands);
  }
}

TEST(ExposureGeneratorTest, AdjacentCampaignsOverlap) {
  ExposureGenerator::Options options;
  options.num_users = 20000;
  options.audience_fraction = 0.4;
  ExposureGenerator gen(options, 34);
  uint64_t both = 0, either = 0;
  for (uint64_t u = 0; u < options.num_users; ++u) {
    const bool a = gen.InAudience(u, 0);
    const bool b = gen.InAudience(u, 1);
    if (a && b) ++both;
    if (a || b) ++either;
  }
  // ~50% audience overlap by construction.
  EXPECT_GT(both, 0u);
  const double jaccard = static_cast<double>(both) / either;
  EXPECT_NEAR(jaccard, 0.2 / 0.6, 0.05);
}

TEST(ExposureGeneratorTest, AudienceSizeMatchesFraction) {
  ExposureGenerator::Options options;
  options.num_users = 50000;
  options.audience_fraction = 0.25;
  ExposureGenerator gen(options, 35);
  uint64_t in_audience = 0;
  for (uint64_t u = 0; u < options.num_users; ++u) {
    if (gen.InAudience(u, 2)) ++in_audience;
  }
  EXPECT_NEAR(static_cast<double>(in_audience) / options.num_users, 0.25,
              0.01);
}

// -------------------------------------------------------------- Baselines

TEST(ExactDistinctTest, CountsDistinct) {
  ExactDistinct d;
  for (uint64_t i = 0; i < 100; ++i) d.Update(i % 10);
  EXPECT_EQ(d.Count(), 10u);
  EXPECT_TRUE(d.Contains(3));
  EXPECT_FALSE(d.Contains(10));
}

TEST(ExactDistinctTest, MergeIsUnion) {
  ExactDistinct a, b;
  a.Update(1);
  a.Update(2);
  b.Update(2);
  b.Update(3);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 3u);
}

TEST(ExactFrequenciesTest, CountsAndTopK) {
  ExactFrequencies f;
  for (int i = 0; i < 10; ++i) f.Update(1);
  for (int i = 0; i < 5; ++i) f.Update(2);
  f.Update(3);
  EXPECT_EQ(f.Count(1), 10);
  EXPECT_EQ(f.Count(2), 5);
  EXPECT_EQ(f.Count(99), 0);
  EXPECT_EQ(f.TotalWeight(), 16);
  const auto top = f.TopK(2);
  ASSERT_EQ(top.size(), 2u);
  EXPECT_EQ(top[0].first, 1u);
  EXPECT_EQ(top[1].first, 2u);
  EXPECT_EQ(f.ItemsAbove(5).size(), 2u);
  EXPECT_DOUBLE_EQ(f.F2(), 100 + 25 + 1);
  EXPECT_EQ(f.NumKeys(), 3u);
}

TEST(ExactFrequenciesTest, NegativeWeightsAndMerge) {
  ExactFrequencies a, b;
  a.Update(1, 5);
  b.Update(1, -5);
  b.Update(2, 7);
  a.Merge(b);
  EXPECT_EQ(a.Count(1), 0);
  EXPECT_EQ(a.Count(2), 7);
  EXPECT_EQ(a.NumKeys(), 1u);
}

TEST(ExactQuantilesTest, QuantilesOfKnownData) {
  ExactQuantiles q;
  for (int i = 99; i >= 0; --i) q.Update(i);
  EXPECT_DOUBLE_EQ(q.Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(q.Quantile(0.5), 50.0);
  EXPECT_DOUBLE_EQ(q.Quantile(1.0), 99.0);
  EXPECT_EQ(q.Rank(49.5), 50u);
  EXPECT_EQ(q.Rank(-1), 0u);
  EXPECT_EQ(q.Rank(1000), 100u);
}

TEST(ExactQuantilesTest, MergeConcatenates) {
  ExactQuantiles a, b;
  a.Update(1);
  b.Update(2);
  b.Update(3);
  a.Merge(b);
  EXPECT_EQ(a.Count(), 3u);
  EXPECT_DOUBLE_EQ(a.Quantile(1.0), 3.0);
}

// ---------------------------------------------------------------- Metrics

TEST(CompareSetsTest, PerfectRetrieval) {
  RetrievalQuality q = CompareSets({1, 2, 3}, {1, 2, 3});
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
  EXPECT_DOUBLE_EQ(q.f1, 1.0);
}

TEST(CompareSetsTest, PartialRetrieval) {
  RetrievalQuality q = CompareSets({1, 2, 4}, {1, 2, 3});
  EXPECT_NEAR(q.precision, 2.0 / 3.0, 1e-12);
  EXPECT_NEAR(q.recall, 2.0 / 3.0, 1e-12);
  EXPECT_EQ(q.true_positives, 2u);
  EXPECT_EQ(q.false_positives, 1u);
  EXPECT_EQ(q.false_negatives, 1u);
}

TEST(CompareSetsTest, EmptySetsAreVacuouslyPerfect) {
  RetrievalQuality q = CompareSets({}, {});
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
}

TEST(CompareSetsTest, DuplicatesIgnored) {
  RetrievalQuality q = CompareSets({1, 1, 1}, {1});
  EXPECT_DOUBLE_EQ(q.precision, 1.0);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
}

TEST(MeanRankErrorTest, ExactAnswersHaveZeroError) {
  std::vector<double> data(1000);
  for (int i = 0; i < 1000; ++i) data[i] = i;
  std::vector<double> quantiles = {0.1, 0.5, 0.9};
  std::vector<double> answers = {99, 499, 899};  // Ranks 100, 500, 900.
  EXPECT_NEAR(MeanRankError(data, quantiles, answers), 0.0, 1e-9);
}

TEST(MeanRankErrorTest, OffByTenPercent) {
  std::vector<double> data(1000);
  for (int i = 0; i < 1000; ++i) data[i] = i;
  // Estimate for the median lands at rank 600 instead of 500.
  EXPECT_NEAR(MeanRankError(data, {0.5}, {599}), 0.1, 1e-9);
}

}  // namespace
}  // namespace gems
