#include <cmath>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/summary.h"
#include "membership/blocked_bloom.h"
#include "membership/bloom.h"
#include "membership/counting_bloom.h"
#include "workload/generators.h"

namespace gems {
namespace {

static_assert(MergeableSummary<BloomFilter>);
static_assert(MergeableSummary<CountingBloomFilter>);
static_assert(MergeableSummary<BlockedBloomFilter>);
static_assert(SerializableSummary<BloomFilter>);

// ------------------------------------------------------------------ Bloom

TEST(BloomFilterTest, NoFalseNegatives) {
  BloomFilter bloom(1 << 16, 7, 1);
  const auto items = DistinctItems(5000, 1);
  for (uint64_t item : items) bloom.Insert(item);
  for (uint64_t item : items) EXPECT_TRUE(bloom.MayContain(item));
}

TEST(BloomFilterTest, EmptyContainsNothing) {
  BloomFilter bloom(1024, 5, 0);
  for (uint64_t i = 0; i < 1000; ++i) EXPECT_FALSE(bloom.MayContain(i));
}

TEST(BloomFilterTest, FprNearTheory) {
  // 10 bits/item with optimal k=7: theory ~0.8% FPR.
  const uint64_t n = 10000;
  BloomFilter bloom(n * 10, 7, 2);
  const auto items = DistinctItems(n, 2);
  for (uint64_t item : items) bloom.Insert(item);
  uint64_t false_positives = 0;
  const uint64_t probes = 100000;
  const auto non_items = DistinctItems(probes, 999);
  for (uint64_t item : non_items) {
    if (bloom.MayContain(item)) ++false_positives;
  }
  const double fpr = static_cast<double>(false_positives) / probes;
  const double theory = BloomFilter::TheoreticalFpr(n * 10, 7, n);
  EXPECT_LT(fpr, 2.5 * theory);
  EXPECT_GT(fpr, theory / 4);
}

TEST(BloomFilterTest, ForCapacityMeetsTarget) {
  const uint64_t n = 20000;
  BloomFilter bloom = BloomFilter::ForCapacity(n, 0.01, 3);
  const auto items = DistinctItems(n, 5);
  for (uint64_t item : items) bloom.Insert(item);
  uint64_t fp = 0;
  const auto probes = DistinctItems(50000, 777);
  for (uint64_t item : probes) {
    if (bloom.MayContain(item)) ++fp;
  }
  EXPECT_LT(static_cast<double>(fp) / 50000, 0.025);
}

TEST(BloomFilterTest, StringKeysWork) {
  BloomFilter bloom(1 << 12, 5, 4);
  bloom.Insert(std::string_view("hello"));
  bloom.Insert(std::string_view("world"));
  EXPECT_TRUE(bloom.MayContain(std::string_view("hello")));
  EXPECT_TRUE(bloom.MayContain(std::string_view("world")));
  EXPECT_FALSE(bloom.MayContain(std::string_view("absent-key-xyz")));
}

TEST(BloomFilterTest, OptimalNumHashes) {
  EXPECT_EQ(BloomFilter::OptimalNumHashes(10.0), 7);
  EXPECT_EQ(BloomFilter::OptimalNumHashes(8.0), 6);
  EXPECT_EQ(BloomFilter::OptimalNumHashes(1.0), 1);
}

TEST(BloomFilterTest, EstimatedFprTracksFill) {
  BloomFilter bloom(1 << 14, 7, 6);
  EXPECT_DOUBLE_EQ(bloom.EstimatedFpr(), 0.0);
  for (uint64_t item : DistinctItems(2000, 8)) bloom.Insert(item);
  const double estimated = bloom.EstimatedFpr();
  const double theory = BloomFilter::TheoreticalFpr(1 << 14, 7, 2000);
  EXPECT_NEAR(estimated, theory, theory);
}

TEST(BloomFilterTest, CardinalityEstimateTracksInsertions) {
  BloomFilter bloom(1 << 18, 5, 20);
  EXPECT_DOUBLE_EQ(bloom.EstimateCardinality(), 0.0);
  const auto items = DistinctItems(10000, 21);
  for (uint64_t item : items) bloom.Insert(item);
  EXPECT_NEAR(bloom.EstimateCardinality(), 10000.0, 300.0);
  // Duplicates do not inflate the estimate.
  for (uint64_t item : items) bloom.Insert(item);
  EXPECT_NEAR(bloom.EstimateCardinality(), 10000.0, 300.0);
}

TEST(BloomFilterTest, CardinalitySaturatesGracefully) {
  BloomFilter bloom(256, 4, 22);
  for (uint64_t i = 0; i < 100000; ++i) bloom.Insert(i);
  EXPECT_TRUE(std::isfinite(bloom.EstimateCardinality()));
  EXPECT_GT(bloom.EstimateCardinality(), 64.0);
}

TEST(BloomFilterTest, MergeEqualsUnion) {
  BloomFilter a(1 << 13, 5, 7), b(1 << 13, 5, 7), whole(1 << 13, 5, 7);
  const auto items = DistinctItems(3000, 9);
  for (size_t i = 0; i < items.size(); ++i) {
    whole.Insert(items[i]);
    (i % 2 == 0 ? a : b).Insert(items[i]);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.NumBitsSet(), whole.NumBitsSet());
  for (uint64_t item : items) EXPECT_TRUE(a.MayContain(item));
}

TEST(BloomFilterTest, MergeRejectsMismatch) {
  BloomFilter a(1024, 5, 0), b(2048, 5, 0), c(1024, 6, 0), d(1024, 5, 1);
  EXPECT_FALSE(a.Merge(b).ok());
  EXPECT_FALSE(a.Merge(c).ok());
  EXPECT_FALSE(a.Merge(d).ok());
}

TEST(BloomFilterTest, SerializeRoundTrip) {
  BloomFilter bloom(1 << 12, 6, 10);
  for (uint64_t item : DistinctItems(1000, 11)) bloom.Insert(item);
  auto r = BloomFilter::Deserialize(bloom.Serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().NumBitsSet(), bloom.NumBitsSet());
  for (uint64_t item : DistinctItems(1000, 11)) {
    EXPECT_TRUE(r.value().MayContain(item));
  }
}

TEST(BloomFilterTest, DeserializeTruncatedFails) {
  BloomFilter bloom(1024, 5, 0);
  auto bytes = bloom.Serialize();
  bytes.resize(bytes.size() / 2);
  EXPECT_FALSE(BloomFilter::Deserialize(bytes).ok());
}

// --------------------------------------------------------- Counting Bloom

TEST(CountingBloomTest, InsertThenRemoveRestoresAbsence) {
  CountingBloomFilter cbf(1 << 14, 5, 1);
  const auto items = DistinctItems(1000, 12);
  for (uint64_t item : items) cbf.Insert(item);
  for (uint64_t item : items) EXPECT_TRUE(cbf.MayContain(item));
  for (uint64_t item : items) cbf.Remove(item);
  uint64_t still_present = 0;
  for (uint64_t item : items) {
    if (cbf.MayContain(item)) ++still_present;
  }
  EXPECT_EQ(still_present, 0u);
}

TEST(CountingBloomTest, PartialRemoveKeepsOthers) {
  CountingBloomFilter cbf(1 << 14, 5, 2);
  const auto keep = DistinctItems(500, 13);
  const auto drop = DistinctItems(500, 14);
  for (uint64_t item : keep) cbf.Insert(item);
  for (uint64_t item : drop) cbf.Insert(item);
  for (uint64_t item : drop) cbf.Remove(item);
  for (uint64_t item : keep) EXPECT_TRUE(cbf.MayContain(item));
}

TEST(CountingBloomTest, DoubleInsertNeedsDoubleRemove) {
  CountingBloomFilter cbf(1 << 12, 4, 3);
  cbf.Insert(42);
  cbf.Insert(42);
  cbf.Remove(42);
  EXPECT_TRUE(cbf.MayContain(42));
  cbf.Remove(42);
  EXPECT_FALSE(cbf.MayContain(42));
}

TEST(CountingBloomTest, SaturatedCountersNeverGoNegative) {
  CountingBloomFilter cbf(64, 2, 4);
  for (int i = 0; i < 300; ++i) cbf.Insert(7);
  // Counter is saturated at 255; removes leave it there.
  for (int i = 0; i < 300; ++i) cbf.Remove(7);
  EXPECT_TRUE(cbf.MayContain(7));  // Saturation is sticky by design.
}

TEST(CountingBloomTest, MergeAddsCounts) {
  CountingBloomFilter a(1 << 12, 4, 5), b(1 << 12, 4, 5);
  a.Insert(1);
  b.Insert(2);
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_TRUE(a.MayContain(1));
  EXPECT_TRUE(a.MayContain(2));
  // Counts merged: removing once removes b's single insert.
  a.Remove(2);
  EXPECT_FALSE(a.MayContain(2));
}

TEST(CountingBloomTest, SerializeRoundTrip) {
  CountingBloomFilter cbf(4096, 4, 6);
  for (uint64_t item : DistinctItems(300, 15)) cbf.Insert(item);
  auto r = CountingBloomFilter::Deserialize(cbf.Serialize());
  ASSERT_TRUE(r.ok());
  for (uint64_t item : DistinctItems(300, 15)) {
    EXPECT_TRUE(r.value().MayContain(item));
  }
}

// ---------------------------------------------------------- Blocked Bloom

TEST(BlockedBloomTest, NoFalseNegatives) {
  BlockedBloomFilter bloom(1 << 16, 8, 1);
  const auto items = DistinctItems(5000, 16);
  for (uint64_t item : items) bloom.Insert(item);
  for (uint64_t item : items) EXPECT_TRUE(bloom.MayContain(item));
}

TEST(BlockedBloomTest, FprWorseThanStandardButBounded) {
  // Blocked filters pay an FPR penalty for locality; it should still be
  // within a small factor of the standard filter at the same size.
  const uint64_t n = 20000;
  const uint64_t bits = n * 12;
  BlockedBloomFilter blocked(bits, 8, 17);
  BloomFilter standard(bits, 8, 17);
  const auto items = DistinctItems(n, 18);
  for (uint64_t item : items) {
    blocked.Insert(item);
    standard.Insert(item);
  }
  uint64_t blocked_fp = 0, standard_fp = 0;
  const auto probes = DistinctItems(200000, 19);
  for (uint64_t item : probes) {
    blocked_fp += blocked.MayContain(item) ? 1 : 0;
    standard_fp += standard.MayContain(item) ? 1 : 0;
  }
  EXPECT_GE(blocked_fp + 5, standard_fp);  // Blocked is not better.
  EXPECT_LT(blocked_fp, 40 * (standard_fp + 10));  // But within a factor.
}

TEST(BlockedBloomTest, MergeEqualsUnion) {
  BlockedBloomFilter a(1 << 13, 6, 20), b(1 << 13, 6, 20);
  const auto items_a = DistinctItems(1000, 21);
  const auto items_b = DistinctItems(1000, 22);
  for (uint64_t item : items_a) a.Insert(item);
  for (uint64_t item : items_b) b.Insert(item);
  ASSERT_TRUE(a.Merge(b).ok());
  for (uint64_t item : items_a) EXPECT_TRUE(a.MayContain(item));
  for (uint64_t item : items_b) EXPECT_TRUE(a.MayContain(item));
}

TEST(BlockedBloomTest, SerializeRoundTrip) {
  BlockedBloomFilter bloom(1 << 12, 6, 23);
  for (uint64_t item : DistinctItems(500, 24)) bloom.Insert(item);
  auto r = BlockedBloomFilter::Deserialize(bloom.Serialize());
  ASSERT_TRUE(r.ok());
  for (uint64_t item : DistinctItems(500, 24)) {
    EXPECT_TRUE(r.value().MayContain(item));
  }
}

// ---------------------------------------- Parameterized FPR sweep (E8 prep)

class BloomFprSweep : public ::testing::TestWithParam<int> {};

TEST_P(BloomFprSweep, MeasuredFprWithinFactorOfTheory) {
  const int bits_per_item = GetParam();
  const uint64_t n = 20000;
  const int k = BloomFilter::OptimalNumHashes(bits_per_item);
  BloomFilter bloom(n * bits_per_item, k, 42 + bits_per_item);
  for (uint64_t item : DistinctItems(n, 30)) bloom.Insert(item);
  uint64_t fp = 0;
  const uint64_t probes = 200000;
  for (uint64_t item : DistinctItems(probes, 31)) {
    if (bloom.MayContain(item)) ++fp;
  }
  const double measured = static_cast<double>(fp) / probes;
  const double theory =
      BloomFilter::TheoreticalFpr(n * bits_per_item, k, n);
  EXPECT_LT(measured, 3 * theory + 1e-4) << "bits/item " << bits_per_item;
}

INSTANTIATE_TEST_SUITE_P(Sweep, BloomFprSweep,
                         ::testing::Values(4, 6, 8, 10, 12, 16));

}  // namespace
}  // namespace gems
