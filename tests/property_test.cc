// Cross-sketch property tests: invariants that must hold for EVERY sketch
// of a given kind, exercised through one generic driver each.
//
//  P1  Serialization fuzzing: deserializing arbitrarily corrupted or
//      truncated bytes never crashes and never fabricates an OK result
//      from a wrong-typed frame.
//  P2  Round-trip identity: Serialize -> Deserialize -> Serialize is a
//      fixed point (byte-identical).
//  P3  Merge-of-parts equals whole for register/linear sketches.
//  P4  Distinct-count estimators are monotone under insertion.
//  P5  Confidence intervals are ordered (lower <= value <= upper).

#include <cstdint>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "cardinality/flajolet_martin.h"
#include "cardinality/hllpp.h"
#include "cardinality/hyperloglog.h"
#include "cardinality/kmv.h"
#include "cardinality/linear_counting.h"
#include "cardinality/loglog.h"
#include "cardinality/morris.h"
#include "common/random.h"
#include "frequency/count_min.h"
#include "frequency/count_sketch.h"
#include "frequency/misra_gries.h"
#include "frequency/space_saving.h"
#include "membership/blocked_bloom.h"
#include "membership/bloom.h"
#include "membership/counting_bloom.h"
#include "moments/ams.h"
#include "quantiles/gk.h"
#include "quantiles/kll.h"
#include "quantiles/qdigest.h"
#include "quantiles/tdigest.h"
#include "sampling/reservoir.h"
#include "similarity/minhash.h"
#include "workload/generators.h"

namespace gems {
namespace {

// ------------------------------------------------- P1 + P2 via one driver

// Produces the serialized bytes of a populated sketch and a deserializer.
struct SerializedSketch {
  const char* name;
  std::vector<uint8_t> bytes;
  // Returns true if deserialization succeeded (used by fuzzing; must not
  // crash either way).
  std::function<bool(const std::vector<uint8_t>&)> try_deserialize;
  // Re-serializes a deserialized copy; empty if deserialization failed.
  std::function<std::vector<uint8_t>(const std::vector<uint8_t>&)>
      reserialize;
};

template <typename S>
SerializedSketch MakeCase(const char* name, S sketch) {
  SerializedSketch result;
  result.name = name;
  result.bytes = sketch.Serialize();
  result.try_deserialize = [](const std::vector<uint8_t>& bytes) {
    return S::Deserialize(bytes).ok();
  };
  result.reserialize = [](const std::vector<uint8_t>& bytes) {
    auto r = S::Deserialize(bytes);
    if (!r.ok()) return std::vector<uint8_t>();
    return r.value().Serialize();
  };
  return result;
}

std::vector<SerializedSketch> AllSerializableSketches() {
  std::vector<SerializedSketch> cases;
  const auto items = DistinctItems(5000, 1);

  {
    MorrisCounter s(32, 1);
    s.IncrementBy(12345);
    cases.push_back(MakeCase("Morris", std::move(s)));
  }
  {
    LinearCounting s(4096, 2);
    for (uint64_t item : items) s.Update(item);
    cases.push_back(MakeCase("LinearCounting", std::move(s)));
  }
  {
    FlajoletMartin s(64, 3);
    for (uint64_t item : items) s.Update(item);
    cases.push_back(MakeCase("FlajoletMartin", std::move(s)));
  }
  {
    LogLog s(8, 4);
    for (uint64_t item : items) s.Update(item);
    cases.push_back(MakeCase("LogLog", std::move(s)));
  }
  {
    HyperLogLog s(10, 5);
    for (uint64_t item : items) s.Update(item);
    cases.push_back(MakeCase("HyperLogLog", std::move(s)));
  }
  {
    HllPlusPlus s(10, 6);
    for (uint64_t item : items) s.Update(item);
    cases.push_back(MakeCase("HllPlusPlus", std::move(s)));
  }
  {
    KmvSketch s(256, 7);
    for (uint64_t item : items) s.Update(item);
    cases.push_back(MakeCase("Kmv", std::move(s)));
  }
  {
    BloomFilter s(8192, 5, 8);
    for (uint64_t item : items) s.Insert(item);
    cases.push_back(MakeCase("Bloom", std::move(s)));
  }
  {
    CountingBloomFilter s(8192, 4, 9);
    for (uint64_t item : items) s.Insert(item);
    cases.push_back(MakeCase("CountingBloom", std::move(s)));
  }
  {
    BlockedBloomFilter s(8192, 6, 10);
    for (uint64_t item : items) s.Insert(item);
    cases.push_back(MakeCase("BlockedBloom", std::move(s)));
  }
  {
    CountMinSketch s(512, 4, 11);
    for (uint64_t item : items) s.Update(item % 100);
    cases.push_back(MakeCase("CountMin", std::move(s)));
  }
  {
    CountSketch s(512, 5, 12);
    for (uint64_t item : items) s.Update(item % 100);
    cases.push_back(MakeCase("CountSketch", std::move(s)));
  }
  {
    MisraGries s(64);
    for (uint64_t item : items) s.Update(item % 200);
    cases.push_back(MakeCase("MisraGries", std::move(s)));
  }
  {
    SpaceSaving s(64);
    for (uint64_t item : items) s.Update(item % 200);
    cases.push_back(MakeCase("SpaceSaving", std::move(s)));
  }
  {
    GreenwaldKhanna s(0.02);
    for (uint64_t item : items) s.Update(static_cast<double>(item % 997));
    cases.push_back(MakeCase("GreenwaldKhanna", std::move(s)));
  }
  {
    KllSketch s(128, 13);
    for (uint64_t item : items) s.Update(static_cast<double>(item % 997));
    cases.push_back(MakeCase("Kll", std::move(s)));
  }
  {
    QDigest s(12, 64);
    for (uint64_t item : items) s.Update(item % 4096);
    cases.push_back(MakeCase("QDigest", std::move(s)));
  }
  {
    TDigest s(100);
    for (uint64_t item : items) s.Update(static_cast<double>(item % 997));
    cases.push_back(MakeCase("TDigest", std::move(s)));
  }
  {
    ReservoirSampler s(64, 14);
    for (uint64_t item : items) s.Update(item);
    cases.push_back(MakeCase("Reservoir", std::move(s)));
  }
  {
    MinHashSketch s(64, 15);
    for (uint64_t item : items) s.Update(item);
    cases.push_back(MakeCase("MinHash", std::move(s)));
  }
  {
    AmsSketch s(16, 3, 16);
    for (uint64_t item : items) s.Update(item % 100);
    cases.push_back(MakeCase("Ams", std::move(s)));
  }
  return cases;
}

TEST(SerializationProperty, RoundTripIsFixedPoint) {
  for (const SerializedSketch& c : AllSerializableSketches()) {
    ASSERT_TRUE(c.try_deserialize(c.bytes)) << c.name;
    const auto again = c.reserialize(c.bytes);
    EXPECT_EQ(again, c.bytes) << c.name;
  }
}

TEST(SerializationProperty, TruncationNeverCrashesAlwaysFails) {
  for (const SerializedSketch& c : AllSerializableSketches()) {
    Rng rng(42);
    for (int trial = 0; trial < 30; ++trial) {
      std::vector<uint8_t> truncated = c.bytes;
      truncated.resize(rng.NextBounded(c.bytes.size()));
      // Must not crash; truncated frames must be rejected.
      EXPECT_FALSE(c.try_deserialize(truncated))
          << c.name << " at size " << truncated.size();
    }
  }
}

TEST(SerializationProperty, BitFlipsNeverCrash) {
  for (const SerializedSketch& c : AllSerializableSketches()) {
    Rng rng(43);
    for (int trial = 0; trial < 100; ++trial) {
      std::vector<uint8_t> corrupted = c.bytes;
      const int flips = 1 + static_cast<int>(rng.NextBounded(8));
      for (int f = 0; f < flips; ++f) {
        const size_t pos = rng.NextBounded(corrupted.size());
        corrupted[pos] ^= static_cast<uint8_t>(1u << rng.NextBounded(8));
      }
      // Either a clean failure or a structurally valid sketch; no crash,
      // no UB (verified under the sanitizer build).
      (void)c.try_deserialize(corrupted);
    }
  }
}

TEST(SerializationProperty, CrossTypeBytesRejected) {
  const auto cases = AllSerializableSketches();
  // Feed every sketch's bytes to every OTHER sketch's deserializer.
  for (size_t i = 0; i < cases.size(); ++i) {
    for (size_t j = 0; j < cases.size(); ++j) {
      if (i == j) continue;
      EXPECT_FALSE(cases[j].try_deserialize(cases[i].bytes))
          << cases[i].name << " bytes accepted by " << cases[j].name;
    }
  }
}

// --------------------------------------------- P3: merge-of-parts = whole

template <typename S, typename MakeFn, typename UpdateFn>
void CheckMergePartsEqualsWhole(MakeFn make, UpdateFn update, int shards) {
  const auto items = DistinctItems(60000, 77);
  S whole = make();
  std::vector<S> parts;
  for (int s = 0; s < shards; ++s) parts.push_back(make());
  for (size_t i = 0; i < items.size(); ++i) {
    update(&whole, items[i]);
    update(&parts[i % shards], items[i]);
  }
  S merged = std::move(parts[0]);
  for (int s = 1; s < shards; ++s) {
    ASSERT_TRUE(merged.Merge(parts[s]).ok());
  }
  EXPECT_EQ(merged.Serialize(), whole.Serialize());
}

template <typename S, typename MakeFn>
void CheckMergePartsEqualsWhole(MakeFn make, int shards) {
  CheckMergePartsEqualsWhole<S>(
      make, [](S* sketch, uint64_t item) { sketch->Update(item); }, shards);
}

TEST(MergeProperty, RegisterSketchesAreOrderInsensitive) {
  for (int shards : {2, 7, 32}) {
    CheckMergePartsEqualsWhole<HyperLogLog>(
        [] { return HyperLogLog(10, 3); }, shards);
    CheckMergePartsEqualsWhole<FlajoletMartin>(
        [] { return FlajoletMartin(64, 4); }, shards);
    CheckMergePartsEqualsWhole<LinearCounting>(
        [] { return LinearCounting(8192, 5); }, shards);
    CheckMergePartsEqualsWhole<LogLog>([] { return LogLog(9, 6); }, shards);
    CheckMergePartsEqualsWhole<KmvSketch>(
        [] { return KmvSketch(512, 7); }, shards);
    CheckMergePartsEqualsWhole<MinHashSketch>(
        [] { return MinHashSketch(32, 8); }, shards);
    CheckMergePartsEqualsWhole<BloomFilter>(
        [] { return BloomFilter(8192, 5, 9); },
        [](BloomFilter* filter, uint64_t item) { filter->Insert(item); },
        shards);
  }
}

// ------------------------------------------------------- P4: monotonicity

template <typename S>
void CheckMonotone(S sketch, int steps) {
  double last = -1.0;
  UniformItemGenerator gen(1 << 30, 55);
  for (int step = 0; step < steps; ++step) {
    for (int i = 0; i < 100; ++i) sketch.Update(gen.Next());
    const double now = sketch.Estimate();
    EXPECT_GE(now + 1e-9, last);
    last = now;
  }
}

TEST(MonotonicityProperty, DistinctCountersNeverShrink) {
  CheckMonotone(HyperLogLog(10, 1), 200);
  CheckMonotone(HllPlusPlus(10, 2), 200);
  CheckMonotone(LinearCounting(1 << 15, 3), 200);
  CheckMonotone(FlajoletMartin(128, 4), 200);
  CheckMonotone(LogLog(10, 5), 200);
  CheckMonotone(KmvSketch(512, 6), 200);
}

// --------------------------------------------- P5: interval well-formedness

TEST(IntervalProperty, AllEstimatorsOrdered) {
  const auto items = DistinctItems(30000, 88);

  HyperLogLog hll(10, 1);
  KmvSketch kmv(256, 2);
  MorrisCounter morris(64, 3);
  LinearCounting lc(1 << 14, 4);
  FlajoletMartin fm(64, 5);
  AmsSketch ams(64, 5, 6);
  for (uint64_t item : items) {
    hll.Update(item);
    kmv.Update(item);
    morris.Increment();
    lc.Update(item);
    fm.Update(item);
    ams.Update(item % 500);
  }
  for (const Estimate& e :
       {hll.EstimateWithBounds(0.95), kmv.EstimateWithBounds(0.95),
        morris.EstimateWithBounds(0.95), lc.EstimateWithBounds(0.95),
        fm.EstimateWithBounds(0.95), ams.F2Estimate(0.95)}) {
    EXPECT_LE(e.lower, e.value);
    EXPECT_LE(e.value, e.upper);
    EXPECT_DOUBLE_EQ(e.confidence, 0.95);
  }
}

}  // namespace
}  // namespace gems
