#include <algorithm>
#include <atomic>
#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cardinality/hyperloglog.h"
#include "cardinality/kmv.h"
#include "common/numeric.h"
#include "distributed/aggregation.h"
#include "distributed/concurrent.h"
#include "distributed/sharded_pipeline.h"
#include "distributed/spsc_ring.h"
#include "distributed/thread_pool.h"
#include "frequency/count_min.h"
#include "frequency/misra_gries.h"
#include "membership/bloom.h"
#include "quantiles/kll.h"
#include "workload/baselines.h"
#include "workload/generators.h"

namespace gems {
namespace {

TEST(ShardOfTest, DeterministicAndInRange) {
  for (uint64_t item = 0; item < 1000; ++item) {
    const size_t shard = ShardOf(item, 16);
    EXPECT_LT(shard, 16u);
    EXPECT_EQ(shard, ShardOf(item, 16));
  }
}

TEST(ShardOfTest, RoughlyBalanced) {
  std::vector<int> counts(8, 0);
  for (uint64_t item = 0; item < 80000; ++item) counts[ShardOf(item, 8)]++;
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(AggregateTreeTest, SingleLeafPassthrough) {
  std::vector<HyperLogLog> leaves;
  leaves.emplace_back(10, 1);
  for (uint64_t item : DistinctItems(1000, 2)) leaves[0].Update(item);
  auto root = AggregateTree(std::move(leaves));
  ASSERT_TRUE(root.ok());
  EXPECT_NEAR(root.value().Count(), 1000.0, 150.0);
}

TEST(AggregateTreeTest, EmptyLeavesRejected) {
  std::vector<HyperLogLog> leaves;
  EXPECT_FALSE(AggregateTree(std::move(leaves)).ok());
}

TEST(AggregateTreeTest, StatsTrackDepthAndMerges) {
  std::vector<HyperLogLog> leaves;
  for (int i = 0; i < 16; ++i) leaves.emplace_back(8, 3);
  AggregationStats stats;
  auto root = AggregateTree(std::move(leaves), 2, &stats);
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(stats.tree_depth, 4);    // 16 -> 8 -> 4 -> 2 -> 1.
  EXPECT_EQ(stats.num_merges, 15u);  // n-1 merges total.
  EXPECT_GT(stats.communication_bytes, 0u);  // HLL is serializable.
}

TEST(AggregateTreeTest, HigherFanoutShallowerTree) {
  std::vector<HyperLogLog> a, b;
  for (int i = 0; i < 64; ++i) {
    a.emplace_back(8, 4);
    b.emplace_back(8, 4);
  }
  AggregationStats stats2, stats8;
  ASSERT_TRUE(AggregateTree(std::move(a), 2, &stats2).ok());
  ASSERT_TRUE(AggregateTree(std::move(b), 8, &stats8).ok());
  EXPECT_EQ(stats2.tree_depth, 6);
  EXPECT_EQ(stats8.tree_depth, 2);
  EXPECT_EQ(stats2.num_merges, stats8.num_merges);  // Always n-1.
}

// E6 core claim: merged accuracy == single-stream accuracy, for each
// mergeable sketch family.

TEST(MergeabilityTest, HllMergedEqualsStreamed) {
  const auto items = DistinctItems(200000, 5);
  HyperLogLog streamed(11, 6);
  std::vector<HyperLogLog> leaves;
  for (int i = 0; i < 64; ++i) leaves.emplace_back(11, 6);
  for (size_t i = 0; i < items.size(); ++i) {
    streamed.Update(items[i]);
    leaves[ShardOf(items[i], 64)].Update(items[i]);
  }
  auto merged = AggregateTree(std::move(leaves));
  ASSERT_TRUE(merged.ok());
  // Register-wise max is exact: merged must equal streamed exactly.
  EXPECT_DOUBLE_EQ(merged.value().Count(), streamed.Count());
}

TEST(MergeabilityTest, CountMinMergedEqualsStreamed) {
  ZipfGenerator zipf(10000, 1.2, 7);
  CountMinSketch streamed(512, 4, 8);
  std::vector<CountMinSketch> leaves;
  for (int i = 0; i < 32; ++i) leaves.emplace_back(512, 4, 8);
  for (int i = 0; i < 100000; ++i) {
    const uint64_t item = zipf.Next();
    streamed.Update(item);
    leaves[i % 32].Update(item);
  }
  auto merged = AggregateTree(std::move(leaves), 4, nullptr);
  ASSERT_TRUE(merged.ok());
  for (uint64_t probe = 0; probe < 200; ++probe) {
    EXPECT_EQ(merged.value().EstimateCount(probe),
              streamed.EstimateCount(probe));
  }
}

TEST(MergeabilityTest, KllMergedErrorComparable) {
  const auto data = GenerateValues(ValueDistribution::kLogNormal, 128000, 9);
  KllSketch streamed(200, 10);
  std::vector<KllSketch> leaves;
  for (int i = 0; i < 128; ++i) leaves.emplace_back(200, 100 + i);
  ExactQuantiles exact;
  for (size_t i = 0; i < data.size(); ++i) {
    streamed.Update(data[i]);
    leaves[i % 128].Update(data[i]);
    exact.Update(data[i]);
  }
  auto merged = AggregateTree(std::move(leaves));
  ASSERT_TRUE(merged.ok());
  double streamed_err = 0, merged_err = 0;
  const double n = static_cast<double>(data.size());
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double true_value = exact.Quantile(q);
    streamed_err +=
        std::abs(static_cast<double>(exact.Rank(streamed.Quantile(q))) -
                 static_cast<double>(exact.Rank(true_value))) /
        n;
    merged_err +=
        std::abs(static_cast<double>(exact.Rank(merged.value().Quantile(q))) -
                 static_cast<double>(exact.Rank(true_value))) /
        n;
  }
  // Merged error stays within a small factor of streamed error (both are
  // tiny); the key regression is merged error staying bounded.
  EXPECT_LT(merged_err / 5.0, 0.02);
  EXPECT_LT(streamed_err / 5.0, 0.02);
}

TEST(MergeabilityTest, MisraGriesMergedKeepsGuarantee) {
  ZipfGenerator zipf(50000, 1.4, 11);
  ExactFrequencies exact;
  std::vector<MisraGries> leaves;
  for (int i = 0; i < 16; ++i) leaves.emplace_back(100);
  const int64_t n = 160000;
  for (int64_t i = 0; i < n; ++i) {
    const uint64_t item = zipf.Next();
    exact.Update(item);
    leaves[i % 16].Update(item);
  }
  auto merged = AggregateTree(std::move(leaves));
  ASSERT_TRUE(merged.ok());
  // Undercount bounded by N/k even after 16-way merge.
  for (const auto& [item, count] : exact.TopK(10)) {
    EXPECT_LE(merged.value().EstimateCount(item), count);
    EXPECT_GE(merged.value().EstimateCount(item) +
                  merged.value().ErrorBound(),
              count);
  }
}

// ------------------------------------------------------ Concurrent wrapper

TEST(ConcurrentSummaryTest, SingleThreadMatchesPlain) {
  HyperLogLog plain(11, 5);
  ConcurrentSummary<HyperLogLog> concurrent(HyperLogLog(11, 5));
  for (uint64_t item : DistinctItems(50000, 6)) {
    plain.Update(item);
    concurrent.Update(item);
  }
  EXPECT_DOUBLE_EQ(concurrent.Snapshot().value().Count(), plain.Count());
}

TEST(ConcurrentSummaryTest, MultiThreadedUpdatesAllLand) {
  ConcurrentSummary<HyperLogLog> concurrent(HyperLogLog(12, 7));
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&concurrent, t] {
      for (uint64_t item :
           DistinctItems(kPerThread, 1000 + static_cast<uint64_t>(t))) {
        concurrent.Update(item);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double expected = kThreads * kPerThread;
  EXPECT_NEAR(concurrent.Snapshot().value().Count(), expected, 0.06 * expected);
}

TEST(ConcurrentSummaryTest, SnapshotWhileWriting) {
  ConcurrentSummary<HyperLogLog> concurrent(HyperLogLog(10, 8));
  std::thread writer([&concurrent] {
    for (uint64_t item : DistinctItems(200000, 9)) concurrent.Update(item);
  });
  // Concurrent snapshots must be monotone non-decreasing and never crash.
  double last = 0;
  int decreases = 0;
  for (int i = 0; i < 50; ++i) {
    const double now = concurrent.Snapshot().value().Count();
    if (now + 1e-9 < last) ++decreases;
    last = now;
  }
  writer.join();
  EXPECT_EQ(decreases, 0);
  EXPECT_NEAR(concurrent.Snapshot().value().Count(), 200000.0, 0.07 * 200000);
}

TEST(ConcurrentSummaryTest, StripeCountRoundsUpToPowerOfTwo) {
  const HyperLogLog prototype(10, 1);
  EXPECT_EQ(ConcurrentSummary<HyperLogLog>(prototype, 1).num_stripes(), 1u);
  EXPECT_EQ(ConcurrentSummary<HyperLogLog>(prototype, 3).num_stripes(), 4u);
  EXPECT_EQ(ConcurrentSummary<HyperLogLog>(prototype, 8).num_stripes(), 8u);
  EXPECT_EQ(ConcurrentSummary<HyperLogLog>(prototype, 33).num_stripes(), 64u);
  // 0 = auto: whatever the hardware picks, it must be a power of two in
  // range.
  const size_t auto_stripes =
      ConcurrentSummary<HyperLogLog>(prototype).num_stripes();
  EXPECT_GE(auto_stripes, 1u);
  EXPECT_LE(auto_stripes, ConcurrentSummary<HyperLogLog>::kMaxStripes);
  EXPECT_EQ(auto_stripes & (auto_stripes - 1), 0u);
  // Oversized requests clamp to the maximum.
  EXPECT_EQ(ConcurrentSummary<HyperLogLog>(prototype, 100000).num_stripes(),
            ConcurrentSummary<HyperLogLog>::kMaxStripes);
}

TEST(ConcurrentSummaryTest, BatchDrainMatchesPerItem) {
  // UpdateBatch through the wrapper must land the same state as per-item
  // updates: with one stripe the merged snapshot is byte-comparable to a
  // plain sketch fed the same stream.
  HyperLogLog plain(11, 5);
  ConcurrentSummary<HyperLogLog> concurrent(HyperLogLog(11, 5),
                                            /*num_stripes=*/1);
  const auto items = DistinctItems(50000, 6);
  std::span<const uint64_t> span(items);
  for (size_t offset = 0; offset < span.size(); offset += 1000) {
    concurrent.UpdateBatch(span.subspan(offset, 1000));
  }
  plain.UpdateBatch(span);
  EXPECT_EQ(concurrent.Snapshot().value().Serialize(), plain.Serialize());
}

TEST(ConcurrentSummaryTest, MultiThreadedBatchesAllLand) {
  ConcurrentSummary<HyperLogLog> concurrent(HyperLogLog(12, 7));
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&concurrent, t] {
      const auto items =
          DistinctItems(kPerThread, 2000 + static_cast<uint64_t>(t));
      std::span<const uint64_t> span(items);
      for (size_t offset = 0; offset < span.size(); offset += 4096) {
        concurrent.UpdateBatch(
            span.subspan(offset, std::min<size_t>(4096, span.size() - offset)));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double expected = kThreads * kPerThread;
  EXPECT_NEAR(concurrent.Snapshot().value().Count(), expected, 0.06 * expected);
}

// ------------------------------------------------------------- Thread pool

TEST(ThreadPoolTest, RunAllExecutesEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&counter] { counter.fetch_add(1); });
  }
  pool.RunAll(std::move(tasks));
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SubmitWithWaitGroup) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  WaitGroup done;
  done.Add(10);
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&counter, &done] {
      counter.fetch_add(1);
      done.Done();
    });
  }
  done.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, QueuedTasksRunBeforeShutdown) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // Destructor joins after the queue drains.
  EXPECT_EQ(counter.load(), 50);
}

// --------------------------------------------------------------- SPSC ring

TEST(SpscRingTest, FifoOrderAndCapacityBound) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(99));  // Full.
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.TryPop(&out));  // Empty.
}

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(100).capacity(), 128u);
}

TEST(SpscRingTest, CrossThreadTransferDeliversEverything) {
  SpscRing<uint64_t> ring(16);
  constexpr uint64_t kCount = 100000;
  uint64_t sum = 0;
  std::thread consumer([&ring, &sum] {
    uint64_t value;
    for (uint64_t received = 0; received < kCount;) {
      if (ring.TryPop(&value)) {
        sum += value;
        ++received;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (uint64_t i = 1; i <= kCount; ++i) {
    while (!ring.TryPush(i)) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_EQ(sum, kCount * (kCount + 1) / 2);
}

// ------------------------------------------------- Parallel aggregate tree

TEST(ParallelAggregateTreeTest, HllRootByteIdenticalToSequential) {
  ThreadPool pool(4);
  const auto items = DistinctItems(100000, 31);
  std::vector<HyperLogLog> seq_leaves, par_leaves;
  for (int i = 0; i < 32; ++i) {
    seq_leaves.emplace_back(12, 32);
    par_leaves.emplace_back(12, 32);
  }
  const InvariantMod shards(32);
  for (uint64_t item : items) {
    const size_t shard = ShardOf(item, shards);
    seq_leaves[shard].Update(item);
    par_leaves[shard].Update(item);
  }
  auto seq = AggregateTree(std::move(seq_leaves), 2, nullptr);
  auto par = ParallelAggregateTree(std::move(par_leaves), 2, &pool);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(seq.value().Serialize(), par.value().Serialize());
}

TEST(ParallelAggregateTreeTest, CountMinRootByteIdenticalToSequential) {
  ThreadPool pool(4);
  ZipfGenerator zipf(50000, 1.2, 33);
  std::vector<CountMinSketch> seq_leaves, par_leaves;
  for (int i = 0; i < 24; ++i) {  // Not a power of two: ragged last group.
    seq_leaves.emplace_back(1024, 4, 34);
    par_leaves.emplace_back(1024, 4, 34);
  }
  for (int i = 0; i < 100000; ++i) {
    const uint64_t item = zipf.Next();
    seq_leaves[i % 24].Update(item);
    par_leaves[i % 24].Update(item);
  }
  auto seq = AggregateTree(std::move(seq_leaves), 3, nullptr);
  auto par = ParallelAggregateTree(std::move(par_leaves), 3, &pool);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(seq.value().Serialize(), par.value().Serialize());
}

TEST(ParallelAggregateTreeTest, KllRootByteIdenticalToSequential) {
  ThreadPool pool(4);
  const auto data = GenerateValues(ValueDistribution::kLogNormal, 64000, 35);
  std::vector<KllSketch> seq_leaves, par_leaves;
  for (int i = 0; i < 16; ++i) {
    seq_leaves.emplace_back(200, 800 + i);
    par_leaves.emplace_back(200, 800 + i);
  }
  for (size_t i = 0; i < data.size(); ++i) {
    seq_leaves[i % 16].Update(data[i]);
    par_leaves[i % 16].Update(data[i]);
  }
  auto seq = AggregateTree(std::move(seq_leaves), 2, nullptr);
  auto par = ParallelAggregateTree(std::move(par_leaves), 2, &pool);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(seq.value().Serialize(), par.value().Serialize());
}

TEST(ParallelAggregateTreeTest, StatsMatchSequentialDepthAndMerges) {
  ThreadPool pool(2);
  std::vector<HyperLogLog> leaves;
  for (int i = 0; i < 16; ++i) leaves.emplace_back(8, 3);
  AggregationStats stats;
  auto root = ParallelAggregateTree(std::move(leaves), 2, &pool, &stats);
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(stats.tree_depth, 4);    // Same tree shape as AggregateTree.
  EXPECT_EQ(stats.num_merges, 15u);  // n-1 merges total.
  // Communication accounting stays on the sequential reference path.
  EXPECT_EQ(stats.communication_bytes, 0u);
}

TEST(ParallelAggregateTreeTest, EmptyLeavesRejected) {
  ThreadPool pool(2);
  std::vector<HyperLogLog> leaves;
  EXPECT_FALSE(ParallelAggregateTree(std::move(leaves), 2, &pool).ok());
}

TEST(ParallelAggregateTreeTest, MergeErrorPropagates) {
  ThreadPool pool(2);
  std::vector<HyperLogLog> leaves;
  leaves.emplace_back(10, 1);
  leaves.emplace_back(12, 1);  // Mismatched precision: Merge must fail.
  auto root = ParallelAggregateTree(std::move(leaves), 2, &pool);
  EXPECT_FALSE(root.ok());
}

// --------------------------------------------------------- Sharded pipeline

TEST(ShardedPipelineTest, HllMatchesSequentialIngestByteForByte) {
  const auto items = DistinctItems(200000, 41);
  HyperLogLog sequential(12, 42);
  sequential.UpdateBatch(items);
  ShardedPipeline<HyperLogLog> pipeline(HyperLogLog(12, 42),
                                        {.num_workers = 4});
  EXPECT_EQ(pipeline.num_workers(), 4u);
  pipeline.Push(items);
  auto root = pipeline.Finish();
  ASSERT_TRUE(root.ok());
  // Register-wise max is partition-independent: the merged root must be
  // byte-identical to single-threaded ingest, so Estimate() is equal too.
  EXPECT_EQ(root.value().Serialize(), sequential.Serialize());
  EXPECT_DOUBLE_EQ(root.value().Estimate(), sequential.Estimate());
}

TEST(ShardedPipelineTest, CountMinMatchesSequentialIngest) {
  const auto items = ZipfGenerator(100000, 1.2, 43).Take(300000);
  CountMinSketch sequential(2048, 4, 44);
  sequential.UpdateBatch(items);
  ShardedPipeline<CountMinSketch> pipeline(CountMinSketch(2048, 4, 44),
                                           {.num_workers = 4});
  pipeline.Push(items);
  auto root = pipeline.Finish();
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value().Serialize(), sequential.Serialize());
  for (uint64_t probe = 0; probe < 500; ++probe) {
    EXPECT_EQ(root.value().Estimate(probe), sequential.Estimate(probe));
  }
}

TEST(ShardedPipelineTest, BloomMatchesSequentialIngest) {
  const auto items = DistinctItems(100000, 45);
  BloomFilter sequential(1 << 20, 7, 46);
  sequential.InsertBatch(items);
  ShardedPipeline<BloomFilter> pipeline(BloomFilter(1 << 20, 7, 46),
                                        {.num_workers = 4});
  pipeline.Push(items);
  auto root = pipeline.Finish();
  ASSERT_TRUE(root.ok());
  // Bit OR is partition-independent.
  EXPECT_EQ(root.value().Serialize(), sequential.Serialize());
}

TEST(ShardedPipelineTest, KllSeesEveryValue) {
  std::vector<double> values;
  for (int i = 0; i < 100000; ++i) values.push_back(static_cast<double>(i));
  ShardedPipeline<KllSketch> pipeline(KllSketch(200, 47), {.num_workers = 4});
  pipeline.Push(values);
  auto root = pipeline.Finish();
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value().Count(), 100000u);
  EXPECT_NEAR(root.value().Quantile(0.5), 50000.0, 2000.0);
}

TEST(ShardedPipelineTest, ManySmallPushesWithBackpressure) {
  // Tiny rings and chunks force the producer through the full/backoff path.
  const auto items = DistinctItems(50000, 48);
  HyperLogLog sequential(11, 49);
  sequential.UpdateBatch(items);
  ShardedPipeline<HyperLogLog> pipeline(
      HyperLogLog(11, 49),
      {.num_workers = 3, .ring_capacity = 2, .chunk_items = 64});
  std::span<const uint64_t> span(items);
  for (size_t off = 0; off < span.size(); off += 777) {
    pipeline.Push(span.subspan(off, std::min<size_t>(777, span.size() - off)));
  }
  auto root = pipeline.Finish();
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value().Serialize(), sequential.Serialize());
}

TEST(ShardedPipelineTest, DestructorWithoutFinishDoesNotHang) {
  const auto items = DistinctItems(10000, 50);
  ShardedPipeline<HyperLogLog> pipeline(HyperLogLog(10, 51),
                                        {.num_workers = 2});
  pipeline.Push(items);
  // No Finish(): the destructor must stop and join the workers cleanly.
}

// ----------------------------------------- Concurrent wrapper stress tests

TEST(ConcurrentSummaryTest, ConcurrentBatchesAndSnapshotsStress) {
  // Writers drain batches while a reader snapshots continuously; the final
  // snapshot must account for every item from every writer.
  ConcurrentSummary<HyperLogLog> concurrent(HyperLogLog(12, 52));
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 100000;
  std::atomic<bool> writing{true};
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&concurrent, t] {
      const auto items =
          DistinctItems(kPerWriter, 5000 + static_cast<uint64_t>(t));
      std::span<const uint64_t> span(items);
      for (size_t off = 0; off < span.size(); off += 2048) {
        concurrent.UpdateBatch(
            span.subspan(off, std::min<size_t>(2048, span.size() - off)));
      }
    });
  }
  std::thread reader([&concurrent, &writing] {
    double last = 0;
    while (writing.load(std::memory_order_acquire)) {
      auto snapshot = concurrent.Snapshot();
      ASSERT_TRUE(snapshot.ok());
      const double now = snapshot.value().Count();
      // Near-monotone under concurrent writes (small estimator wobble at
      // regime boundaries is allowed; a collapse would mean lost stripes).
      EXPECT_GE(now, last * 0.9);
      last = now;
    }
  });
  for (std::thread& writer : writers) writer.join();
  writing.store(false, std::memory_order_release);
  reader.join();
  const double expected = kWriters * kPerWriter;
  EXPECT_NEAR(concurrent.Snapshot().value().Count(), expected,
              0.06 * expected);
}

TEST(ShardOfTest, InvariantModOverloadMatchesPlain) {
  const InvariantMod nodes(13);
  for (uint64_t item = 0; item < 2000; ++item) {
    EXPECT_EQ(ShardOf(item, nodes), ShardOf(item, size_t{13}));
    EXPECT_LT(ShardOf(item, nodes), 13u);
  }
}

TEST(MergeabilityTest, KmvMergedEqualsStreamed) {
  const auto items = DistinctItems(100000, 12);
  KmvSketch streamed(512, 13);
  std::vector<KmvSketch> leaves;
  for (int i = 0; i < 16; ++i) leaves.emplace_back(512, 13);
  for (size_t i = 0; i < items.size(); ++i) {
    streamed.Update(items[i]);
    leaves[i % 16].Update(items[i]);
  }
  auto merged = AggregateTree(std::move(leaves));
  ASSERT_TRUE(merged.ok());
  EXPECT_DOUBLE_EQ(merged.value().Count(), streamed.Count());
}

}  // namespace
}  // namespace gems
