#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <span>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cardinality/hyperloglog.h"
#include "cardinality/kmv.h"
#include "common/numeric.h"
#include "core/estimate.h"
#include "core/registry.h"
#include "distributed/aggregation.h"
#include "distributed/concurrent.h"
#include "distributed/sharded_pipeline.h"
#include "distributed/spsc_ring.h"
#include "distributed/thread_pool.h"
#include "frequency/count_min.h"
#include "frequency/misra_gries.h"
#include "membership/bloom.h"
#include "quantiles/kll.h"
#include "workload/baselines.h"
#include "workload/generators.h"

namespace gems {
namespace {

TEST(ShardOfTest, DeterministicAndInRange) {
  for (uint64_t item = 0; item < 1000; ++item) {
    const size_t shard = ShardOf(item, 16);
    EXPECT_LT(shard, 16u);
    EXPECT_EQ(shard, ShardOf(item, 16));
  }
}

TEST(ShardOfTest, RoughlyBalanced) {
  std::vector<int> counts(8, 0);
  for (uint64_t item = 0; item < 80000; ++item) counts[ShardOf(item, 8)]++;
  for (int c : counts) EXPECT_NEAR(c, 10000, 500);
}

TEST(AggregateTreeTest, SingleLeafPassthrough) {
  std::vector<HyperLogLog> leaves;
  leaves.emplace_back(10, 1);
  for (uint64_t item : DistinctItems(1000, 2)) leaves[0].Update(item);
  auto root = AggregateTree(std::move(leaves));
  ASSERT_TRUE(root.ok());
  EXPECT_NEAR(root.value().Estimate(), 1000.0, 150.0);
}

TEST(AggregateTreeTest, EmptyLeavesRejected) {
  std::vector<HyperLogLog> leaves;
  EXPECT_FALSE(AggregateTree(std::move(leaves)).ok());
}

TEST(AggregateTreeTest, StatsTrackDepthAndMerges) {
  std::vector<HyperLogLog> leaves;
  for (int i = 0; i < 16; ++i) leaves.emplace_back(8, 3);
  AggregationStats stats;
  auto root = AggregateTree(std::move(leaves), 2, &stats);
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(stats.tree_depth, 4);    // 16 -> 8 -> 4 -> 2 -> 1.
  EXPECT_EQ(stats.num_merges, 15u);  // n-1 merges total.
  EXPECT_GT(stats.communication_bytes, 0u);  // HLL is serializable.
}

TEST(AggregateTreeTest, HigherFanoutShallowerTree) {
  std::vector<HyperLogLog> a, b;
  for (int i = 0; i < 64; ++i) {
    a.emplace_back(8, 4);
    b.emplace_back(8, 4);
  }
  AggregationStats stats2, stats8;
  ASSERT_TRUE(AggregateTree(std::move(a), 2, &stats2).ok());
  ASSERT_TRUE(AggregateTree(std::move(b), 8, &stats8).ok());
  EXPECT_EQ(stats2.tree_depth, 6);
  EXPECT_EQ(stats8.tree_depth, 2);
  EXPECT_EQ(stats2.num_merges, stats8.num_merges);  // Always n-1.
}

// E6 core claim: merged accuracy == single-stream accuracy, for each
// mergeable sketch family.

TEST(MergeabilityTest, HllMergedEqualsStreamed) {
  const auto items = DistinctItems(200000, 5);
  HyperLogLog streamed(11, 6);
  std::vector<HyperLogLog> leaves;
  for (int i = 0; i < 64; ++i) leaves.emplace_back(11, 6);
  for (size_t i = 0; i < items.size(); ++i) {
    streamed.Update(items[i]);
    leaves[ShardOf(items[i], 64)].Update(items[i]);
  }
  auto merged = AggregateTree(std::move(leaves));
  ASSERT_TRUE(merged.ok());
  // Register-wise max is exact: merged must equal streamed exactly.
  EXPECT_DOUBLE_EQ(merged.value().Estimate(), streamed.Estimate());
}

TEST(MergeabilityTest, CountMinMergedEqualsStreamed) {
  ZipfGenerator zipf(10000, 1.2, 7);
  CountMinSketch streamed(512, 4, 8);
  std::vector<CountMinSketch> leaves;
  for (int i = 0; i < 32; ++i) leaves.emplace_back(512, 4, 8);
  for (int i = 0; i < 100000; ++i) {
    const uint64_t item = zipf.Next();
    streamed.Update(item);
    leaves[i % 32].Update(item);
  }
  auto merged = AggregateTree(std::move(leaves), 4, nullptr);
  ASSERT_TRUE(merged.ok());
  for (uint64_t probe = 0; probe < 200; ++probe) {
    EXPECT_EQ(merged.value().Estimate(probe),
              streamed.Estimate(probe));
  }
}

TEST(MergeabilityTest, KllMergedErrorComparable) {
  const auto data = GenerateValues(ValueDistribution::kLogNormal, 128000, 9);
  KllSketch streamed(200, 10);
  std::vector<KllSketch> leaves;
  for (int i = 0; i < 128; ++i) leaves.emplace_back(200, 100 + i);
  ExactQuantiles exact;
  for (size_t i = 0; i < data.size(); ++i) {
    streamed.Update(data[i]);
    leaves[i % 128].Update(data[i]);
    exact.Update(data[i]);
  }
  auto merged = AggregateTree(std::move(leaves));
  ASSERT_TRUE(merged.ok());
  double streamed_err = 0, merged_err = 0;
  const double n = static_cast<double>(data.size());
  for (double q : {0.1, 0.25, 0.5, 0.75, 0.9}) {
    const double true_value = exact.Quantile(q);
    streamed_err +=
        std::abs(static_cast<double>(exact.Rank(streamed.Quantile(q))) -
                 static_cast<double>(exact.Rank(true_value))) /
        n;
    merged_err +=
        std::abs(static_cast<double>(exact.Rank(merged.value().Quantile(q))) -
                 static_cast<double>(exact.Rank(true_value))) /
        n;
  }
  // Merged error stays within a small factor of streamed error (both are
  // tiny); the key regression is merged error staying bounded.
  EXPECT_LT(merged_err / 5.0, 0.02);
  EXPECT_LT(streamed_err / 5.0, 0.02);
}

TEST(MergeabilityTest, MisraGriesMergedKeepsGuarantee) {
  ZipfGenerator zipf(50000, 1.4, 11);
  ExactFrequencies exact;
  std::vector<MisraGries> leaves;
  for (int i = 0; i < 16; ++i) leaves.emplace_back(100);
  const int64_t n = 160000;
  for (int64_t i = 0; i < n; ++i) {
    const uint64_t item = zipf.Next();
    exact.Update(item);
    leaves[i % 16].Update(item);
  }
  auto merged = AggregateTree(std::move(leaves));
  ASSERT_TRUE(merged.ok());
  // Undercount bounded by N/k even after 16-way merge.
  for (const auto& [item, count] : exact.TopK(10)) {
    EXPECT_LE(merged.value().Estimate(item), count);
    EXPECT_GE(merged.value().Estimate(item) +
                  merged.value().ErrorBound(),
              count);
  }
}

// ------------------------------------------------------ Concurrent wrapper
//
// The wrapper under test is the wait-free local-buffer/propagator design:
// per-thread buffered deltas folded into an epoch-published global. The
// contracts pinned here: read-your-writes snapshots, residual folding on
// thread exit, bounded-threads overflow correctness, wait-free reads, and
// quiesced byte-identity with sequential ingest.

static_assert(
    ConcurrentEstimableSummary<ConcurrentSummary<HyperLogLog>>,
    "the concurrent HLL wrapper must satisfy the engine-facing concept");
static_assert(
    !ConcurrentEstimableSummary<HyperLogLog>,
    "a plain sketch (no FlushLocal/epoch) must not satisfy the concept");
static_assert(
    !ConcurrentEstimableSummary<ConcurrentSummary<CountMinSketch>>,
    "no no-arg Estimate() on Count-Min, so no wait-free cached estimate");

TEST(ConcurrentSummaryTest, SingleThreadMatchesPlain) {
  // Snapshot() folds the calling thread's residual (read-your-writes), so
  // a single-threaded run is byte-identical to a plain sketch — even with
  // items still sitting in the local buffer.
  HyperLogLog plain(11, 5);
  ConcurrentSummary<HyperLogLog> concurrent(HyperLogLog(11, 5));
  for (uint64_t item : DistinctItems(50000, 6)) {
    plain.Update(item);
    concurrent.Update(item);
  }
  EXPECT_EQ(concurrent.Snapshot().value().Serialize(), plain.Serialize());
  EXPECT_DOUBLE_EQ(concurrent.Snapshot().value().Estimate(), plain.Estimate());
}

TEST(ConcurrentSummaryTest, MultiThreadedUpdatesAllLand) {
  ConcurrentSummary<HyperLogLog> concurrent(HyperLogLog(12, 7));
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&concurrent, t] {
      for (uint64_t item :
           DistinctItems(kPerThread, 1000 + static_cast<uint64_t>(t))) {
        concurrent.Update(item);
      }
    });
  }
  // Joined threads ran their exit hooks, so every residual is folded.
  for (std::thread& thread : threads) thread.join();
  const double expected = kThreads * kPerThread;
  EXPECT_NEAR(concurrent.Snapshot().value().Estimate(), expected, 0.06 * expected);
}

TEST(ConcurrentSummaryTest, SnapshotWhileWriting) {
  ConcurrentSummary<HyperLogLog> concurrent(HyperLogLog(10, 8));
  std::thread writer([&concurrent] {
    for (uint64_t item : DistinctItems(200000, 9)) concurrent.Update(item);
  });
  // Published versions are supersets of their predecessors, so concurrent
  // snapshots must be monotone non-decreasing and never crash.
  double last = 0;
  int decreases = 0;
  for (int i = 0; i < 50; ++i) {
    const double now = concurrent.Snapshot().value().Estimate();
    if (now + 1e-9 < last) ++decreases;
    last = now;
  }
  writer.join();
  EXPECT_EQ(decreases, 0);
  EXPECT_NEAR(concurrent.Snapshot().value().Estimate(), 200000.0, 0.07 * 200000);
}

TEST(ConcurrentSummaryTest, OptionsResolveSlotsAndThresholds) {
  const HyperLogLog prototype(10, 1);
  // Explicit slot counts are honored exactly (tests and benches rely on
  // forcing the overflow path with max_threads=1).
  EXPECT_EQ(ConcurrentSummary<HyperLogLog>(prototype, {.max_threads = 1})
                .max_threads(),
            1u);
  EXPECT_EQ(ConcurrentSummary<HyperLogLog>(prototype, {.max_threads = 3})
                .max_threads(),
            3u);
  // 0 = auto: at least kMinSlots (room for thread churn), at most kMaxSlots.
  const size_t auto_slots =
      ConcurrentSummary<HyperLogLog>(prototype).max_threads();
  EXPECT_GE(auto_slots, ConcurrentSummary<HyperLogLog>::kMinSlots);
  EXPECT_LE(auto_slots, ConcurrentSummary<HyperLogLog>::kMaxSlots);
  // Oversized requests clamp to the maximum.
  EXPECT_EQ(
      ConcurrentSummary<HyperLogLog>(prototype, {.max_threads = 100000})
          .max_threads(),
      ConcurrentSummary<HyperLogLog>::kMaxSlots);
  // Derived thresholds: propagate defaults to the buffer size, the hard
  // pending cap to 8x propagate.
  const ConcurrentSummary<HyperLogLog> derived(prototype,
                                               {.buffer_items = 512});
  EXPECT_EQ(derived.options().propagate_items, 512u);
  EXPECT_EQ(derived.options().max_pending_items, 8 * 512u);
}

TEST(ConcurrentSummaryTest, BatchDrainMatchesPerItem) {
  // UpdateBatch through the wrapper must land the same state as a plain
  // sketch fed the same stream: register-max is partition- and
  // order-independent, so the folded global is byte-identical no matter
  // how the drains interleaved with propagation.
  HyperLogLog plain(11, 5);
  ConcurrentSummary<HyperLogLog> concurrent(HyperLogLog(11, 5));
  const auto items = DistinctItems(50000, 6);
  std::span<const uint64_t> span(items);
  for (size_t offset = 0; offset < span.size(); offset += 1000) {
    concurrent.UpdateBatch(span.subspan(offset, 1000));
  }
  plain.UpdateBatch(span);
  EXPECT_EQ(concurrent.Snapshot().value().Serialize(), plain.Serialize());
}

TEST(ConcurrentSummaryTest, MultiThreadedBatchesAllLand) {
  ConcurrentSummary<HyperLogLog> concurrent(HyperLogLog(12, 7));
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 50000;
  std::vector<std::thread> threads;
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&concurrent, t] {
      const auto items =
          DistinctItems(kPerThread, 2000 + static_cast<uint64_t>(t));
      std::span<const uint64_t> span(items);
      for (size_t offset = 0; offset < span.size(); offset += 4096) {
        concurrent.UpdateBatch(
            span.subspan(offset, std::min<size_t>(4096, span.size() - offset)));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double expected = kThreads * kPerThread;
  EXPECT_NEAR(concurrent.Snapshot().value().Estimate(), expected, 0.06 * expected);
}

TEST(ConcurrentSummaryTest, ThreadChurnRecyclesSlotsAndFoldsResiduals) {
  // The satellite fix for the old design's first-touch token leak: an
  // exiting thread must return its slot AND fold its residual buffered
  // state. 50 short-lived threads against 2 slots — if slots leaked, later
  // threads would still be correct (overflow path) but if residuals were
  // dropped the final count would collapse, since 1000 items never fill
  // the 256-item propagation threshold's 8x hard cap.
  ConcurrentSummary<HyperLogLog> concurrent(
      HyperLogLog(12, 21), {.buffer_items = 256, .max_threads = 2});
  constexpr int kRounds = 50;
  constexpr uint64_t kPerRound = 1000;
  for (int round = 0; round < kRounds; ++round) {
    std::thread worker([&concurrent, round] {
      for (uint64_t item : DistinctItems(
               kPerRound, 7000 + static_cast<uint64_t>(round))) {
        concurrent.Update(item);
      }
    });
    worker.join();
  }
  const double expected = kRounds * kPerRound;
  EXPECT_NEAR(concurrent.Snapshot().value().Estimate(), expected, 0.06 * expected);
}

TEST(ConcurrentSummaryTest, OverflowThreadsFallBackCorrectly) {
  // One writer slot, two concurrent writers: whichever loses the slot race
  // takes the locked overflow path on the global. Every item must land.
  ConcurrentSummary<HyperLogLog> concurrent(
      HyperLogLog(12, 22), {.buffer_items = 64, .max_threads = 1});
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  for (int t = 0; t < 2; ++t) {
    threads.emplace_back([&concurrent, t] {
      for (uint64_t item :
           DistinctItems(kPerThread, 8000 + static_cast<uint64_t>(t))) {
        concurrent.Update(item);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double expected = 2 * kPerThread;
  EXPECT_NEAR(concurrent.Snapshot().value().Estimate(), expected, 0.07 * expected);
}

TEST(ConcurrentSummaryTest, EstimateAndBoundsAreWaitFreeViews) {
  ConcurrentSummary<HyperLogLog> concurrent(HyperLogLog(12, 23));
  const uint64_t epoch_before = concurrent.epoch();
  for (uint64_t item : DistinctItems(100000, 24)) concurrent.Update(item);
  concurrent.FlushLocal();
  // Estimate() is the atomically cached value of the published version.
  EXPECT_GT(concurrent.epoch(), epoch_before);
  EXPECT_NEAR(concurrent.Estimate(), 100000.0, 0.05 * 100000);
  const Estimate bounds = concurrent.EstimateWithBounds(0.95);
  EXPECT_LE(bounds.lower, bounds.value);
  EXPECT_GE(bounds.upper, bounds.value);
  EXPECT_NEAR(bounds.value, concurrent.Estimate(), 1e-9);
  // Query() runs arbitrary reads against the pinned published version.
  const int precision =
      concurrent.Query([](const HyperLogLog& s) { return s.precision(); });
  EXPECT_EQ(precision, 12);
}

TEST(ConcurrentSummaryTest, QuiescedSnapshotBytesMatchSequentialHll) {
  // The determinism satellite: once writers join (exit hooks fold every
  // residual), the concurrent sketch's serialized bytes must equal a
  // sequential sketch fed the same stream — register max is partition-
  // independent, so any 4-way split of the items works.
  const auto items = DistinctItems(120000, 25);
  HyperLogLog sequential(12, 26);
  sequential.UpdateBatch(items);
  ConcurrentSummary<HyperLogLog> concurrent(HyperLogLog(12, 26),
                                            {.buffer_items = 512});
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&concurrent, &items, t] {
      for (size_t i = t; i < items.size(); i += 4) {
        concurrent.Update(items[i]);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  EXPECT_EQ(concurrent.Snapshot().value().Serialize(),
            sequential.Serialize());
}

TEST(ConcurrentSummaryTest, QuiescedSnapshotBytesMatchSequentialCountMin) {
  // Counter addition is partition-independent too; the delta-fold must
  // not double-count (locals reset to the empty prototype after a fold).
  const auto items = ZipfGenerator(50000, 1.2, 27).Take(200000);
  CountMinSketch sequential(1024, 4, 28);
  sequential.UpdateBatch(items);
  ConcurrentSummary<CountMinSketch> concurrent(CountMinSketch(1024, 4, 28),
                                               {.buffer_items = 512});
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&concurrent, &items, t] {
      for (size_t i = t; i < items.size(); i += 4) {
        concurrent.Update(items[i]);
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  auto snapshot = concurrent.Snapshot();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot.value().Serialize(), sequential.Serialize());
  // Point queries flow through Query() against the published version.
  concurrent.FlushLocal();
  for (uint64_t probe = 0; probe < 100; ++probe) {
    const auto est = concurrent.Query(
        [probe](const CountMinSketch& s) { return s.Estimate(probe); });
    EXPECT_EQ(est, sequential.Estimate(probe));
  }
}

TEST(ConcurrentSummaryTest, ValueSummariesBufferDoubles) {
  // KLL exercises the double-buffered value path (Update(double),
  // UpdateBatch(span<const double>)); every value must be counted.
  ConcurrentSummary<KllSketch> concurrent(KllSketch(200, 29));
  std::vector<double> values;
  for (int i = 0; i < 10000; ++i) values.push_back(static_cast<double>(i));
  for (double v : values) concurrent.Update(v);
  concurrent.UpdateBatch(std::span<const double>(values));
  auto snapshot = concurrent.Snapshot();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot.value().Count(), 20000u);
  EXPECT_NEAR(snapshot.value().Quantile(0.5), 5000.0, 500.0);
}

TEST(ConcurrentSummaryTest, BackgroundPublisherDecouplesPublishes) {
  // With a cadenced background propagator, writers only fold; readers
  // still converge, and a quiesced Snapshot catches up the publication.
  ConcurrentSummary<HyperLogLog> concurrent(
      HyperLogLog(12, 30),
      {.buffer_items = 512,
       .background_publisher = true,
       .publish_interval = std::chrono::microseconds(100)});
  constexpr uint64_t kItems = 100000;
  std::thread writer([&concurrent] {
    for (uint64_t item : DistinctItems(kItems, 31)) concurrent.Update(item);
  });
  writer.join();
  EXPECT_NEAR(concurrent.Snapshot().value().Estimate(), kItems, 0.05 * kItems);
  // The forced publish also refreshed the cached wait-free estimate.
  EXPECT_NEAR(concurrent.Estimate(), kItems, 0.05 * kItems);
}

TEST(ConcurrentAnySketchTest, TypeErasedConcurrentMatchesSequential) {
  RegisterBuiltinSketches();
  auto live = ConcurrentAnySketch::MakeByName("hyperloglog");
  ASSERT_TRUE(live.ok());
  EXPECT_EQ(live.value().type(), SketchTypeId::kHyperLogLog);
  // Sequential reference built from the same registry default prototype.
  AnySketch sequential =
      SketchRegistry::Global().FindByName("hyperloglog")->make_default();
  const auto items = DistinctItems(80000, 32);
  ASSERT_TRUE(sequential.UpdateBatch(items).ok());
  std::vector<std::thread> threads;
  for (int t = 0; t < 4; ++t) {
    threads.emplace_back([&live, &items, t] {
      std::span<const uint64_t> span(items);
      for (size_t off = t * 1024; off < span.size(); off += 4 * 1024) {
        live.value().UpdateBatch(
            span.subspan(off, std::min<size_t>(1024, span.size() - off)));
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  auto snapshot = live.value().Snapshot();
  ASSERT_TRUE(snapshot.ok());
  EXPECT_EQ(snapshot.value().Serialize(), sequential.Serialize());
  EXPECT_EQ(live.value().EstimateSummary(), sequential.EstimateSummary());
}

TEST(ConcurrentAnySketchTest, RejectsEmptyAndUnknown) {
  RegisterBuiltinSketches();
  EXPECT_FALSE(ConcurrentAnySketch::Make(AnySketch()).ok());
  EXPECT_FALSE(ConcurrentAnySketch::MakeByName("no-such-sketch").ok());
}

// ------------------------------------------------------------- Thread pool

TEST(ThreadPoolTest, RunAllExecutesEveryTask) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.num_threads(), 4u);
  std::atomic<int> counter{0};
  std::vector<std::function<void()>> tasks;
  for (int i = 0; i < 100; ++i) {
    tasks.push_back([&counter] { counter.fetch_add(1); });
  }
  pool.RunAll(std::move(tasks));
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, SubmitWithWaitGroup) {
  ThreadPool pool(2);
  std::atomic<int> counter{0};
  WaitGroup done;
  done.Add(10);
  for (int i = 0; i < 10; ++i) {
    pool.Submit([&counter, &done] {
      counter.fetch_add(1);
      done.Done();
    });
  }
  done.Wait();
  EXPECT_EQ(counter.load(), 10);
}

TEST(ThreadPoolTest, QueuedTasksRunBeforeShutdown) {
  std::atomic<int> counter{0};
  {
    ThreadPool pool(1);
    for (int i = 0; i < 50; ++i) {
      pool.Submit([&counter] { counter.fetch_add(1); });
    }
  }  // Destructor joins after the queue drains.
  EXPECT_EQ(counter.load(), 50);
}

// --------------------------------------------------------------- SPSC ring

TEST(SpscRingTest, FifoOrderAndCapacityBound) {
  SpscRing<int> ring(4);
  EXPECT_EQ(ring.capacity(), 4u);
  for (int i = 0; i < 4; ++i) EXPECT_TRUE(ring.TryPush(i));
  EXPECT_FALSE(ring.TryPush(99));  // Full.
  int out = -1;
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(ring.TryPop(&out));
    EXPECT_EQ(out, i);
  }
  EXPECT_FALSE(ring.TryPop(&out));  // Empty.
}

TEST(SpscRingTest, CapacityRoundsUpToPowerOfTwo) {
  EXPECT_EQ(SpscRing<int>(3).capacity(), 4u);
  EXPECT_EQ(SpscRing<int>(1).capacity(), 1u);
  EXPECT_EQ(SpscRing<int>(100).capacity(), 128u);
}

TEST(SpscRingTest, CrossThreadTransferDeliversEverything) {
  SpscRing<uint64_t> ring(16);
  constexpr uint64_t kCount = 100000;
  uint64_t sum = 0;
  std::thread consumer([&ring, &sum] {
    uint64_t value;
    for (uint64_t received = 0; received < kCount;) {
      if (ring.TryPop(&value)) {
        sum += value;
        ++received;
      } else {
        std::this_thread::yield();
      }
    }
  });
  for (uint64_t i = 1; i <= kCount; ++i) {
    while (!ring.TryPush(i)) std::this_thread::yield();
  }
  consumer.join();
  EXPECT_EQ(sum, kCount * (kCount + 1) / 2);
}

// ------------------------------------------------- Parallel aggregate tree

TEST(ParallelAggregateTreeTest, HllRootByteIdenticalToSequential) {
  ThreadPool pool(4);
  const auto items = DistinctItems(100000, 31);
  std::vector<HyperLogLog> seq_leaves, par_leaves;
  for (int i = 0; i < 32; ++i) {
    seq_leaves.emplace_back(12, 32);
    par_leaves.emplace_back(12, 32);
  }
  const InvariantMod shards(32);
  for (uint64_t item : items) {
    const size_t shard = ShardOf(item, shards);
    seq_leaves[shard].Update(item);
    par_leaves[shard].Update(item);
  }
  auto seq = AggregateTree(std::move(seq_leaves), 2, nullptr);
  auto par = ParallelAggregateTree(std::move(par_leaves), 2, &pool);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(seq.value().Serialize(), par.value().Serialize());
}

TEST(ParallelAggregateTreeTest, CountMinRootByteIdenticalToSequential) {
  ThreadPool pool(4);
  ZipfGenerator zipf(50000, 1.2, 33);
  std::vector<CountMinSketch> seq_leaves, par_leaves;
  for (int i = 0; i < 24; ++i) {  // Not a power of two: ragged last group.
    seq_leaves.emplace_back(1024, 4, 34);
    par_leaves.emplace_back(1024, 4, 34);
  }
  for (int i = 0; i < 100000; ++i) {
    const uint64_t item = zipf.Next();
    seq_leaves[i % 24].Update(item);
    par_leaves[i % 24].Update(item);
  }
  auto seq = AggregateTree(std::move(seq_leaves), 3, nullptr);
  auto par = ParallelAggregateTree(std::move(par_leaves), 3, &pool);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(seq.value().Serialize(), par.value().Serialize());
}

TEST(ParallelAggregateTreeTest, KllRootByteIdenticalToSequential) {
  ThreadPool pool(4);
  const auto data = GenerateValues(ValueDistribution::kLogNormal, 64000, 35);
  std::vector<KllSketch> seq_leaves, par_leaves;
  for (int i = 0; i < 16; ++i) {
    seq_leaves.emplace_back(200, 800 + i);
    par_leaves.emplace_back(200, 800 + i);
  }
  for (size_t i = 0; i < data.size(); ++i) {
    seq_leaves[i % 16].Update(data[i]);
    par_leaves[i % 16].Update(data[i]);
  }
  auto seq = AggregateTree(std::move(seq_leaves), 2, nullptr);
  auto par = ParallelAggregateTree(std::move(par_leaves), 2, &pool);
  ASSERT_TRUE(seq.ok());
  ASSERT_TRUE(par.ok());
  EXPECT_EQ(seq.value().Serialize(), par.value().Serialize());
}

TEST(ParallelAggregateTreeTest, StatsMatchSequentialDepthAndMerges) {
  ThreadPool pool(2);
  std::vector<HyperLogLog> leaves;
  for (int i = 0; i < 16; ++i) leaves.emplace_back(8, 3);
  AggregationStats stats;
  auto root = ParallelAggregateTree(std::move(leaves), 2, &pool, &stats);
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(stats.tree_depth, 4);    // Same tree shape as AggregateTree.
  EXPECT_EQ(stats.num_merges, 15u);  // n-1 merges total.
  // Communication accounting stays on the sequential reference path.
  EXPECT_EQ(stats.communication_bytes, 0u);
}

TEST(ParallelAggregateTreeTest, EmptyLeavesRejected) {
  ThreadPool pool(2);
  std::vector<HyperLogLog> leaves;
  EXPECT_FALSE(ParallelAggregateTree(std::move(leaves), 2, &pool).ok());
}

TEST(ParallelAggregateTreeTest, MergeErrorPropagates) {
  ThreadPool pool(2);
  std::vector<HyperLogLog> leaves;
  leaves.emplace_back(10, 1);
  leaves.emplace_back(12, 1);  // Mismatched precision: Merge must fail.
  auto root = ParallelAggregateTree(std::move(leaves), 2, &pool);
  EXPECT_FALSE(root.ok());
}

// --------------------------------------------------------- Sharded pipeline

TEST(ShardedPipelineTest, HllMatchesSequentialIngestByteForByte) {
  const auto items = DistinctItems(200000, 41);
  HyperLogLog sequential(12, 42);
  sequential.UpdateBatch(items);
  ShardedPipeline<HyperLogLog> pipeline(HyperLogLog(12, 42),
                                        {.num_workers = 4});
  EXPECT_EQ(pipeline.num_workers(), 4u);
  pipeline.Push(items);
  auto root = pipeline.Finish();
  ASSERT_TRUE(root.ok());
  // Register-wise max is partition-independent: the merged root must be
  // byte-identical to single-threaded ingest, so Estimate() is equal too.
  EXPECT_EQ(root.value().Serialize(), sequential.Serialize());
  EXPECT_DOUBLE_EQ(root.value().Estimate(), sequential.Estimate());
}

TEST(ShardedPipelineTest, CountMinMatchesSequentialIngest) {
  const auto items = ZipfGenerator(100000, 1.2, 43).Take(300000);
  CountMinSketch sequential(2048, 4, 44);
  sequential.UpdateBatch(items);
  ShardedPipeline<CountMinSketch> pipeline(CountMinSketch(2048, 4, 44),
                                           {.num_workers = 4});
  pipeline.Push(items);
  auto root = pipeline.Finish();
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value().Serialize(), sequential.Serialize());
  for (uint64_t probe = 0; probe < 500; ++probe) {
    EXPECT_EQ(root.value().Estimate(probe), sequential.Estimate(probe));
  }
}

TEST(ShardedPipelineTest, BloomMatchesSequentialIngest) {
  const auto items = DistinctItems(100000, 45);
  BloomFilter sequential(1 << 20, 7, 46);
  sequential.InsertBatch(items);
  ShardedPipeline<BloomFilter> pipeline(BloomFilter(1 << 20, 7, 46),
                                        {.num_workers = 4});
  pipeline.Push(items);
  auto root = pipeline.Finish();
  ASSERT_TRUE(root.ok());
  // Bit OR is partition-independent.
  EXPECT_EQ(root.value().Serialize(), sequential.Serialize());
}

TEST(ShardedPipelineTest, KllSeesEveryValue) {
  std::vector<double> values;
  for (int i = 0; i < 100000; ++i) values.push_back(static_cast<double>(i));
  ShardedPipeline<KllSketch> pipeline(KllSketch(200, 47), {.num_workers = 4});
  pipeline.Push(values);
  auto root = pipeline.Finish();
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value().Count(), 100000u);
  EXPECT_NEAR(root.value().Quantile(0.5), 50000.0, 2000.0);
}

TEST(ShardedPipelineTest, ManySmallPushesWithBackpressure) {
  // Tiny rings and chunks force the producer through the full/backoff path.
  const auto items = DistinctItems(50000, 48);
  HyperLogLog sequential(11, 49);
  sequential.UpdateBatch(items);
  ShardedPipeline<HyperLogLog> pipeline(
      HyperLogLog(11, 49),
      {.num_workers = 3, .ring_capacity = 2, .chunk_items = 64});
  std::span<const uint64_t> span(items);
  for (size_t off = 0; off < span.size(); off += 777) {
    pipeline.Push(span.subspan(off, std::min<size_t>(777, span.size() - off)));
  }
  auto root = pipeline.Finish();
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value().Serialize(), sequential.Serialize());
}

TEST(ShardedPipelineTest, DestructorWithoutFinishDoesNotHang) {
  const auto items = DistinctItems(10000, 50);
  ShardedPipeline<HyperLogLog> pipeline(HyperLogLog(10, 51),
                                        {.num_workers = 2});
  pipeline.Push(items);
  // No Finish(): the destructor must stop and join the workers cleanly.
}

TEST(ShardedPipelineTest, PinnedWorkersMatchUnpinnedByteForByte) {
  // Pinning and first-touch shard placement are pure placement hints: the
  // merged root must be byte-identical to the unpinned pipeline and to
  // sequential ingest.
  const auto items = DistinctItems(150000, 53);
  HyperLogLog sequential(12, 54);
  sequential.UpdateBatch(items);
  ShardedPipeline<HyperLogLog> pinned(
      HyperLogLog(12, 54), {.num_workers = 4, .pin_workers = true});
  // Best-effort: on a restricted cpuset some pins may fail, but never more
  // than the worker count.
  EXPECT_LE(pinned.pinned_workers(), pinned.num_workers());
  pinned.Push(items);
  auto pinned_root = pinned.Finish();
  ASSERT_TRUE(pinned_root.ok());

  ShardedPipeline<HyperLogLog> unpinned(HyperLogLog(12, 54),
                                        {.num_workers = 4});
  EXPECT_EQ(unpinned.pinned_workers(), 0u);
  unpinned.Push(items);
  auto unpinned_root = unpinned.Finish();
  ASSERT_TRUE(unpinned_root.ok());

  EXPECT_EQ(pinned_root.value().Serialize(), sequential.Serialize());
  EXPECT_EQ(unpinned_root.value().Serialize(), sequential.Serialize());
}

TEST(ShardedPipelineTest, PinOffsetAndBackpressureStillExact) {
  // A nonzero pin offset wraps modulo the hardware concurrency; combined
  // with tiny rings (backpressure path) the result must stay exact.
  const auto items = ZipfGenerator(50000, 1.2, 55).Take(120000);
  CountMinSketch sequential(1024, 4, 56);
  sequential.UpdateBatch(items);
  ShardedPipeline<CountMinSketch> pipeline(CountMinSketch(1024, 4, 56),
                                           {.num_workers = 3,
                                            .ring_capacity = 2,
                                            .chunk_items = 64,
                                            .pin_workers = true,
                                            .pin_offset = 1});
  pipeline.Push(items);
  auto root = pipeline.Finish();
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value().Serialize(), sequential.Serialize());
}

TEST(ShardedPipelineTest, BlockedLayoutShardsMatchSequential) {
  // The pipeline's shards inherit the prototype's blocked layout; counter
  // sums stay partition-independent, so the merged root is byte-identical
  // to sequential blocked ingest.
  const auto items = ZipfGenerator(50000, 1.2, 57).Take(120000);
  CountMinSketch prototype(1024, 4, 58, /*conservative_update=*/false,
                           SketchLayout::kBlocked);
  CountMinSketch sequential = prototype;
  sequential.UpdateBatch(items);
  ShardedPipeline<CountMinSketch> pipeline(prototype, {.num_workers = 4});
  pipeline.Push(items);
  auto root = pipeline.Finish();
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(root.value().layout(), SketchLayout::kBlocked);
  EXPECT_EQ(root.value().Serialize(), sequential.Serialize());
}

// ----------------------------------------- Concurrent wrapper stress tests

TEST(ConcurrentSummaryTest, ConcurrentBatchesAndSnapshotsStress) {
  // Writers drain batches while a reader snapshots continuously; the final
  // snapshot must account for every item from every writer.
  ConcurrentSummary<HyperLogLog> concurrent(HyperLogLog(12, 52));
  constexpr int kWriters = 4;
  constexpr uint64_t kPerWriter = 100000;
  std::atomic<bool> writing{true};
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; ++t) {
    writers.emplace_back([&concurrent, t] {
      const auto items =
          DistinctItems(kPerWriter, 5000 + static_cast<uint64_t>(t));
      std::span<const uint64_t> span(items);
      for (size_t off = 0; off < span.size(); off += 2048) {
        concurrent.UpdateBatch(
            span.subspan(off, std::min<size_t>(2048, span.size() - off)));
      }
    });
  }
  std::thread reader([&concurrent, &writing] {
    double last = 0;
    while (writing.load(std::memory_order_acquire)) {
      auto snapshot = concurrent.Snapshot();
      ASSERT_TRUE(snapshot.ok());
      const double now = snapshot.value().Estimate();
      // Near-monotone under concurrent writes (small estimator wobble at
      // regime boundaries is allowed; a collapse would mean lost deltas).
      EXPECT_GE(now, last * 0.9);
      last = now;
    }
  });
  for (std::thread& writer : writers) writer.join();
  writing.store(false, std::memory_order_release);
  reader.join();
  const double expected = kWriters * kPerWriter;
  EXPECT_NEAR(concurrent.Snapshot().value().Estimate(), expected,
              0.06 * expected);
}

TEST(ConcurrentSummaryTest, MixedReadersAndWritersStress) {
  // The TSan target of the satellite: N writers and M readers running with
  // no barrier, readers mixing every read-side entry point (Estimate,
  // EstimateWithBounds, Query, epoch, Snapshot) against live ingest. The
  // item volumes are kept moderate so the suite stays fast under TSan's
  // ~10x slowdown; the interleavings, not the volume, are the test.
  ConcurrentSummary<HyperLogLog> concurrent(HyperLogLog(12, 53),
                                            {.buffer_items = 512});
  constexpr int kWriters = 4;
  constexpr int kReaders = 2;
  constexpr uint64_t kPerWriter = 50000;
  std::atomic<int> writers_done{0};
  std::vector<std::thread> threads;
  for (int t = 0; t < kWriters; ++t) {
    threads.emplace_back([&concurrent, &writers_done, t] {
      for (uint64_t item :
           DistinctItems(kPerWriter, 6000 + static_cast<uint64_t>(t))) {
        concurrent.Update(item);
      }
      writers_done.fetch_add(1, std::memory_order_release);
    });
  }
  for (int r = 0; r < kReaders; ++r) {
    threads.emplace_back([&concurrent, &writers_done, r] {
      uint64_t last_epoch = 0;
      double last_estimate = 0;
      while (writers_done.load(std::memory_order_acquire) < kWriters) {
        // Epochs are monotone per reader.
        const uint64_t e = concurrent.epoch();
        EXPECT_GE(e, last_epoch);
        last_epoch = e;
        const double estimate = concurrent.Estimate();
        EXPECT_GE(estimate, 0.0);
        last_estimate = std::max(last_estimate, estimate);
        const Estimate bounds = concurrent.EstimateWithBounds(0.95);
        EXPECT_LE(bounds.lower, bounds.upper);
        if (r == 0) {
          auto snapshot = concurrent.Snapshot();
          ASSERT_TRUE(snapshot.ok());
        } else {
          const int precision = concurrent.Query(
              [](const HyperLogLog& s) { return s.precision(); });
          EXPECT_EQ(precision, 12);
        }
      }
    });
  }
  for (std::thread& thread : threads) thread.join();
  const double expected = kWriters * kPerWriter;
  EXPECT_NEAR(concurrent.Snapshot().value().Estimate(), expected,
              0.06 * expected);
}

TEST(ShardedPipelineTest, PublishToServesLiveQueriesMidIngest) {
  // Pipeline interop: workers route their chunks into a concurrent global
  // that a reader thread queries wait-free mid-ingest; Finish() drains
  // through the same global and must still be byte-identical to
  // sequential ingest (workers flush residuals before signalling done).
  const auto items = DistinctItems(200000, 61);
  HyperLogLog sequential(12, 62);
  sequential.UpdateBatch(items);
  ConcurrentSummary<HyperLogLog> live(HyperLogLog(12, 62),
                                      {.buffer_items = 1024});
  ShardedPipeline<HyperLogLog> pipeline(HyperLogLog(12, 62),
                                        {.num_workers = 4});
  pipeline.PublishTo(&live);
  std::atomic<bool> done{false};
  std::atomic<int> decreases{0};
  std::thread reader([&live, &done, &decreases] {
    double last = 0;
    while (!done.load(std::memory_order_acquire)) {
      const double now = live.Estimate();
      if (now + 1e-9 < last) decreases.fetch_add(1, std::memory_order_relaxed);
      last = now;
    }
  });
  std::span<const uint64_t> span(items);
  for (size_t off = 0; off < span.size(); off += 8192) {
    pipeline.Push(span.subspan(off, std::min<size_t>(8192, span.size() - off)));
  }
  auto root = pipeline.Finish();
  done.store(true, std::memory_order_release);
  reader.join();
  ASSERT_TRUE(root.ok());
  EXPECT_EQ(decreases.load(), 0);
  EXPECT_EQ(root.value().Serialize(), sequential.Serialize());
  // The live global itself holds the complete stream too.
  EXPECT_EQ(live.Snapshot().value().Serialize(), sequential.Serialize());
}

TEST(ShardOfTest, InvariantModOverloadMatchesPlain) {
  const InvariantMod nodes(13);
  for (uint64_t item = 0; item < 2000; ++item) {
    EXPECT_EQ(ShardOf(item, nodes), ShardOf(item, size_t{13}));
    EXPECT_LT(ShardOf(item, nodes), 13u);
  }
}

TEST(MergeabilityTest, KmvMergedEqualsStreamed) {
  const auto items = DistinctItems(100000, 12);
  KmvSketch streamed(512, 13);
  std::vector<KmvSketch> leaves;
  for (int i = 0; i < 16; ++i) leaves.emplace_back(512, 13);
  for (size_t i = 0; i < items.size(); ++i) {
    streamed.Update(items[i]);
    leaves[i % 16].Update(items[i]);
  }
  auto merged = AggregateTree(std::move(leaves));
  ASSERT_TRUE(merged.ok());
  EXPECT_DOUBLE_EQ(merged.value().Estimate(), streamed.Estimate());
}

}  // namespace
}  // namespace gems
