#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "ml/fetchsgd.h"
#include "ml/linear_model.h"

namespace gems {
namespace {

// ----------------------------------------------------------- LinearModel

TEST(LogisticModelTest, UntrainedPredictsHalf) {
  LogisticModel model(10);
  EXPECT_DOUBLE_EQ(model.PredictProbability(std::vector<double>(10, 1.0)),
                   0.5);
}

TEST(LogisticModelTest, SyntheticDataIsLearnable) {
  const auto dataset = GenerateLogisticData(2000, 32, 8, 1);
  LogisticModel model(32);
  const double initial_loss = model.Loss(dataset.examples);
  const auto losses = TrainDenseSgd(&model, dataset.examples, 50, 1.0);
  EXPECT_LT(losses.back(), initial_loss);
  EXPECT_GT(model.Accuracy(dataset.examples), 0.8);
}

TEST(LogisticModelTest, LossDecreasesMonotonicallyEarly) {
  const auto dataset = GenerateLogisticData(1000, 16, 4, 2);
  LogisticModel model(16);
  const auto losses = TrainDenseSgd(&model, dataset.examples, 10, 0.5);
  for (size_t i = 1; i < losses.size(); ++i) {
    EXPECT_LE(losses[i], losses[i - 1] + 1e-6);
  }
}

TEST(LogisticModelTest, GradientPointsDownhill) {
  const auto dataset = GenerateLogisticData(500, 8, 4, 3);
  LogisticModel model(8);
  const double before = model.Loss(dataset.examples);
  model.ApplyUpdate(model.Gradient(dataset.examples), 0.1);
  EXPECT_LT(model.Loss(dataset.examples), before);
}

TEST(LogisticModelTest, DatasetLabelsCorrelateWithTrueWeights) {
  const auto dataset = GenerateLogisticData(5000, 16, 4, 4);
  // A model set to the true weights should classify well.
  LogisticModel oracle(16);
  *oracle.mutable_weights() = dataset.true_weights;
  EXPECT_GT(oracle.Accuracy(dataset.examples), 0.85);
}

// -------------------------------------------------------- GradientSketch

TEST(GradientSketchTest, SingleCoordinateRecovered) {
  GradientSketch sketch(256, 5, 1);
  sketch.Add(42, 3.5);
  EXPECT_NEAR(sketch.Estimate(42), 3.5, 1e-9);
  EXPECT_NEAR(sketch.Estimate(43), 0.0, 1e-9);
}

TEST(GradientSketchTest, LinearityOfSketches) {
  GradientSketch a(128, 5, 2), b(128, 5, 2);
  std::vector<double> ga(64, 0.0), gb(64, 0.0);
  ga[3] = 1.0;
  gb[3] = 2.0;
  gb[10] = -4.0;
  a.Accumulate(ga);
  b.Accumulate(gb);
  ASSERT_TRUE(a.AddSketch(b).ok());
  EXPECT_NEAR(a.Estimate(3), 3.0, 0.5);
  EXPECT_NEAR(a.Estimate(10), -4.0, 0.5);
}

TEST(GradientSketchTest, TopKFindsHeavyCoordinates) {
  GradientSketch sketch(512, 5, 3);
  std::vector<double> gradient(1024, 0.0);
  gradient[5] = 10.0;
  gradient[100] = -8.0;
  gradient[999] = 6.0;
  for (size_t i = 0; i < 1024; ++i) {
    if (gradient[i] == 0.0) gradient[i] = 0.01;  // Background noise.
  }
  sketch.Accumulate(gradient);
  const auto top = sketch.TopK(3, 1024);
  ASSERT_EQ(top.size(), 3u);
  EXPECT_EQ(top[0].first, 5u);
  EXPECT_EQ(top[1].first, 100u);
  EXPECT_EQ(top[2].first, 999u);
}

TEST(GradientSketchTest, ScaleAndReset) {
  GradientSketch sketch(64, 3, 4);
  sketch.Add(7, 2.0);
  sketch.Scale(0.5);
  EXPECT_NEAR(sketch.Estimate(7), 1.0, 1e-9);
  sketch.Reset();
  EXPECT_DOUBLE_EQ(sketch.Estimate(7), 0.0);
}

TEST(GradientSketchTest, ShapeMismatchRejected) {
  GradientSketch a(64, 3, 5), b(128, 3, 5), c(64, 3, 6);
  EXPECT_FALSE(a.AddSketch(b).ok());
  EXPECT_FALSE(a.AddSketch(c).ok());
}

// --------------------------------------------------------------- FetchSGD

TEST(FetchSgdTest, TrainsCloseToDense) {
  const size_t dim = 256;
  const auto dataset = GenerateLogisticData(2000, dim, 16, 7);

  LogisticModel dense_model(dim);
  const auto dense_losses =
      TrainDenseSgd(&dense_model, dataset.examples, 40, 1.0);

  FetchSgdTrainer::Options options;
  options.num_clients = 20;
  options.rounds = 40;
  options.learning_rate = 1.0;
  options.momentum = 0.9;
  options.sketch_width = 128;
  options.sketch_depth = 5;
  options.top_k = 24;
  FetchSgdTrainer trainer(options, 8);
  LogisticModel sketched_model(dim);
  const auto sketched_losses =
      trainer.Train(&sketched_model, dataset.examples);

  // FetchSGD should make real progress and land near dense training.
  const double initial = LogisticModel(dim).Loss(dataset.examples);
  EXPECT_LT(sketched_losses.back(), 0.7 * initial);
  EXPECT_LT(sketched_losses.back(), dense_losses.back() + 0.25);
}

TEST(FetchSgdTest, CompressionRatioAccounting) {
  FetchSgdTrainer::Options options;
  options.sketch_width = 128;
  options.sketch_depth = 5;
  FetchSgdTrainer trainer(options, 9);
  EXPECT_EQ(trainer.UploadBytesPerClient(), 128u * 5 * 8);
  // Dense upload of d = 8192 doubles would be 65536 bytes: ~12.8x ratio.
  EXPECT_LT(trainer.UploadBytesPerClient(), 65536u / 10);
}

TEST(FetchSgdTest, BeatsLocalTopKAtSameBudget) {
  const size_t dim = 256;
  const auto dataset = GenerateLogisticData(2000, dim, 16, 10);

  FetchSgdTrainer::Options options;
  options.num_clients = 20;
  options.rounds = 60;
  options.learning_rate = 0.5;
  options.momentum = 0.6;
  options.sketch_width = 128;
  options.sketch_depth = 5;
  options.top_k = 32;
  FetchSgdTrainer trainer(options, 11);
  LogisticModel fetch_model(dim);
  const auto fetch_losses = trainer.Train(&fetch_model, dataset.examples);

  LogisticModel topk_model(dim);
  // Matching upload budget: 128*5 = 640 sketch doubles vs 640 local
  // (coordinate, value) pairs for the straw-man compressor.
  const auto topk_losses = TrainLocalTopK(&topk_model, dataset.examples, 20,
                                          60, 0.5, 640);
  // FetchSGD with momentum + error feedback should do at least comparably.
  EXPECT_LT(fetch_losses.back(), topk_losses.back() + 0.15);
}

TEST(FetchSgdTest, MoreRoundsLowerLoss) {
  const size_t dim = 128;
  const auto dataset = GenerateLogisticData(1000, dim, 8, 12);
  FetchSgdTrainer::Options options;
  options.num_clients = 10;
  options.rounds = 60;
  options.sketch_width = 128;
  options.top_k = 16;
  FetchSgdTrainer trainer(options, 13);
  LogisticModel model(dim);
  const auto losses = trainer.Train(&model, dataset.examples);
  EXPECT_LT(losses.back(), losses[5]);
}

}  // namespace
}  // namespace gems
