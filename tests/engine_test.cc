#include <cstdint>
#include <set>
#include <span>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "cardinality/hyperloglog.h"
#include "distributed/thread_pool.h"
#include "engine/exponential_histogram.h"
#include "engine/sliding_window.h"
#include "engine/stream_query.h"
#include "frequency/count_min.h"
#include "workload/baselines.h"
#include "workload/generators.h"

namespace gems {
namespace {

StreamEvent Event(uint64_t ts, uint64_t group, uint64_t item,
                  int64_t value = 1) {
  return StreamEvent{ts, group, item, value};
}

TEST(StreamQueryTest, CountDistinctPerGroup) {
  StreamQuery::Options options;
  options.aggregate = AggregateKind::kCountDistinct;
  StreamQuery query(options, 1);
  // Group 0 sees 100 distinct items; group 1 sees 10 (each 10 times).
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(query.Process(Event(i, 0, i)).ok());
  }
  for (int rep = 0; rep < 10; ++rep) {
    for (uint64_t i = 0; i < 10; ++i) {
      ASSERT_TRUE(query.Process(Event(100 + rep, 1, i)).ok());
    }
  }
  const auto windows = query.Flush();
  ASSERT_EQ(windows.size(), 1u);
  ASSERT_EQ(windows[0].groups.size(), 2u);
  EXPECT_NEAR(windows[0].groups[0].scalar, 100.0, 10.0);
  EXPECT_NEAR(windows[0].groups[1].scalar, 10.0, 3.0);
}

TEST(StreamQueryTest, TumblingWindowsClose) {
  StreamQuery::Options options;
  options.aggregate = AggregateKind::kSum;
  options.window_size = 10;
  StreamQuery query(options, 2);
  // Window [0,10): 5 events; window [10,20): 3 events; event at 25 opens
  // a third window.
  for (uint64_t ts : {1, 3, 5, 7, 9}) {
    ASSERT_TRUE(query.Process(Event(ts, 0, 0, 2)).ok());
  }
  for (uint64_t ts : {11, 15, 19}) {
    ASSERT_TRUE(query.Process(Event(ts, 0, 0, 3)).ok());
  }
  ASSERT_TRUE(query.Process(Event(25, 0, 0, 1)).ok());
  const auto closed = query.Poll();
  ASSERT_EQ(closed.size(), 2u);
  EXPECT_EQ(closed[0].window_start, 0u);
  EXPECT_EQ(closed[0].window_end, 10u);
  EXPECT_DOUBLE_EQ(closed[0].groups[0].scalar, 10.0);
  EXPECT_EQ(closed[1].window_start, 10u);
  EXPECT_DOUBLE_EQ(closed[1].groups[0].scalar, 9.0);
  // The open window flushes on demand.
  const auto last = query.Flush();
  ASSERT_EQ(last.size(), 1u);
  EXPECT_DOUBLE_EQ(last[0].groups[0].scalar, 1.0);
}

TEST(StreamQueryTest, OutOfOrderTimestampsRejected) {
  StreamQuery::Options options;
  StreamQuery query(options, 3);
  ASSERT_TRUE(query.Process(Event(100, 0, 0)).ok());
  EXPECT_EQ(query.Process(Event(50, 0, 0)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(StreamQueryTest, FiltersDropEvents) {
  StreamQuery::Options options;
  options.aggregate = AggregateKind::kSum;
  StreamQuery query(options, 4);
  query.AddFilter([](const StreamEvent& e) { return e.value > 10; });
  ASSERT_TRUE(query.Process(Event(0, 0, 0, 5)).ok());    // Dropped.
  ASSERT_TRUE(query.Process(Event(1, 0, 0, 50)).ok());   // Kept.
  ASSERT_TRUE(query.Process(Event(2, 0, 0, 7)).ok());    // Dropped.
  const auto windows = query.Flush();
  ASSERT_EQ(windows.size(), 1u);
  EXPECT_DOUBLE_EQ(windows[0].groups[0].scalar, 50.0);
}

TEST(StreamQueryTest, TopKFindsElephantFlows) {
  StreamQuery::Options options;
  options.aggregate = AggregateKind::kTopK;
  options.top_k = 3;
  options.top_k_capacity = 32;
  StreamQuery query(options, 5);
  // Group 7: item 1 heavy (1000), item 2 medium (500), rest light.
  uint64_t ts = 0;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(query.Process(Event(ts++, 7, 1, 1)).ok());
  }
  for (int i = 0; i < 500; ++i) {
    ASSERT_TRUE(query.Process(Event(ts++, 7, 2, 1)).ok());
  }
  for (uint64_t item = 10; item < 100; ++item) {
    ASSERT_TRUE(query.Process(Event(ts++, 7, item, 1)).ok());
  }
  const auto windows = query.Flush();
  ASSERT_EQ(windows.size(), 1u);
  const auto& top = windows[0].groups[0].top_items;
  ASSERT_GE(top.size(), 2u);
  EXPECT_EQ(top[0].first, 1u);
  EXPECT_EQ(top[1].first, 2u);
  EXPECT_GE(top[0].second, 1000);
}

TEST(StreamQueryTest, QuantilesPerGroup) {
  StreamQuery::Options options;
  options.aggregate = AggregateKind::kQuantiles;
  options.quantile_points = {0.5};
  StreamQuery query(options, 6);
  for (int i = 0; i < 1001; ++i) {
    ASSERT_TRUE(query.Process(Event(i, 0, 0, i)).ok());
  }
  const auto windows = query.Flush();
  ASSERT_EQ(windows.size(), 1u);
  ASSERT_EQ(windows[0].groups[0].quantiles.size(), 1u);
  EXPECT_NEAR(windows[0].groups[0].quantiles[0], 500.0, 30.0);
}

TEST(StreamQueryTest, ManyGroupsInParallel) {
  // The paper's GROUP BY scenario: thousands of simultaneous sketches.
  StreamQuery::Options options;
  options.aggregate = AggregateKind::kCountDistinct;
  options.hll_precision = 8;
  StreamQuery query(options, 7);
  const uint64_t num_groups = 2000;
  for (uint64_t group = 0; group < num_groups; ++group) {
    for (uint64_t item = 0; item < 20; ++item) {
      ASSERT_TRUE(query.Process(Event(group, group, item)).ok());
    }
  }
  EXPECT_EQ(query.NumOpenGroups(), num_groups);
  const auto windows = query.Flush();
  ASSERT_EQ(windows[0].groups.size(), num_groups);
  for (const GroupAggregate& aggregate : windows[0].groups) {
    EXPECT_NEAR(aggregate.scalar, 20.0, 6.0);
  }
}

TEST(StreamQueryTest, FlowScanDetectionScenario) {
  // Integration with the flow generator: per-source distinct destination
  // counts expose the injected scanner.
  FlowGenerator::Options flow_options;
  flow_options.include_scan = true;
  flow_options.scan_fanout = 300;
  FlowGenerator generator(flow_options, 8);

  StreamQuery::Options options;
  options.aggregate = AggregateKind::kCountDistinct;
  options.hll_precision = 10;
  StreamQuery query(options, 9);
  for (int i = 0; i < 100000; ++i) {
    const FlowRecord record = generator.Next();
    ASSERT_TRUE(query
                    .Process(Event(static_cast<uint64_t>(i), record.src_ip,
                                   record.dst_ip))
                    .ok());
  }
  const auto windows = query.Flush();
  ASSERT_EQ(windows.size(), 1u);
  // The scanner (10.0.0.1 = 0x0A000001) must have the highest fan-out.
  double scanner_fanout = 0, best_other = 0;
  for (const GroupAggregate& aggregate : windows[0].groups) {
    if (aggregate.group == 0x0A000001) {
      scanner_fanout = aggregate.scalar;
    } else {
      best_other = std::max(best_other, aggregate.scalar);
    }
  }
  EXPECT_NEAR(scanner_fanout, 300.0, 45.0);
  EXPECT_GT(scanner_fanout, best_other);
}

// -------------------------------------------------- Exponential histogram

TEST(StreamQueryTest, CheckpointRestoreResumesMidWindow) {
  StreamQuery::Options options;
  options.aggregate = AggregateKind::kCountDistinct;
  options.window_size = 1000;
  StreamQuery query(options, 1);
  // Half the items, then checkpoint; a closed-but-unpolled window rides
  // along in the checkpoint too.
  for (uint64_t i = 0; i < 500; ++i) {
    ASSERT_TRUE(query.Process(Event(i, i % 3, i)).ok());
  }
  ASSERT_TRUE(query.Process(Event(1001, 0, 999)).ok());  // Closes [0,1000).
  for (uint64_t i = 0; i < 200; ++i) {
    ASSERT_TRUE(query.Process(Event(1002, 0, 2000 + i)).ok());
  }
  const std::vector<uint8_t> checkpoint = query.SerializeState();

  // A fresh query with the same options resumes exactly where the first
  // left off: same pending windows, same open-group sketches.
  StreamQuery restored(options, 1);
  ASSERT_TRUE(restored.RestoreState(checkpoint).ok());
  EXPECT_EQ(restored.NumOpenGroups(), query.NumOpenGroups());
  for (uint64_t i = 200; i < 400; ++i) {
    ASSERT_TRUE(query.Process(Event(1003, 0, 2000 + i)).ok());
    ASSERT_TRUE(restored.Process(Event(1003, 0, 2000 + i)).ok());
  }
  const auto expected = query.Flush();
  const auto actual = restored.Flush();
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t w = 0; w < expected.size(); ++w) {
    ASSERT_EQ(actual[w].groups.size(), expected[w].groups.size());
    for (size_t g = 0; g < expected[w].groups.size(); ++g) {
      EXPECT_EQ(actual[w].groups[g].group, expected[w].groups[g].group);
      EXPECT_DOUBLE_EQ(actual[w].groups[g].scalar,
                       expected[w].groups[g].scalar);
    }
  }
}

TEST(StreamQueryTest, CheckpointRoundTripsAllAggregateKinds) {
  for (AggregateKind kind :
       {AggregateKind::kCountDistinct, AggregateKind::kTopK,
        AggregateKind::kQuantiles, AggregateKind::kSum}) {
    StreamQuery::Options options;
    options.aggregate = kind;
    StreamQuery query(options, 3);
    for (uint64_t i = 0; i < 300; ++i) {
      ASSERT_TRUE(
          query.Process(Event(i, i % 2, i % 50, int64_t(i % 7))).ok());
    }
    const std::vector<uint8_t> checkpoint = query.SerializeState();
    StreamQuery restored(options, 3);
    ASSERT_TRUE(restored.RestoreState(checkpoint).ok());
    // Restored state serializes back to the identical checkpoint.
    EXPECT_EQ(restored.SerializeState(), checkpoint);
  }
}

TEST(StreamQueryTest, ProcessBatchMatchesPerEventExactly) {
  // The hash-once batch path must leave the query in byte-identical state
  // to per-event processing, across window closes, filters, and groups.
  StreamQuery::Options options;
  options.aggregate = AggregateKind::kCountDistinct;
  options.window_size = 500;
  StreamQuery per_event(options, 7);
  StreamQuery batched(options, 7);
  per_event.AddFilter([](const StreamEvent& e) { return e.item % 10 != 0; });
  batched.AddFilter([](const StreamEvent& e) { return e.item % 10 != 0; });

  std::vector<StreamEvent> events;
  for (uint64_t i = 0; i < 3000; ++i) {
    events.push_back(Event(i, i % 4, i * 0x9E3779B97F4A7C15ull >> 32));
  }
  for (const StreamEvent& e : events) {
    ASSERT_TRUE(per_event.Process(e).ok());
  }
  // Feed the batch path in ragged slices spanning the 256-event chunk.
  size_t offset = 0;
  for (size_t n : {1u, 255u, 256u, 257u, 1000u, 1231u}) {
    ASSERT_TRUE(
        batched
            .ProcessBatch(std::span<const StreamEvent>(events).subspan(offset, n))
            .ok());
    offset += n;
  }
  ASSERT_EQ(offset, events.size());
  EXPECT_EQ(batched.SerializeState(), per_event.SerializeState());
  EXPECT_EQ(batched.NumOpenGroups(), per_event.NumOpenGroups());
}

TEST(StreamQueryTest, ProcessBatchFallbackAggregatesMatch) {
  // Non-distinct aggregates take the per-event path inside ProcessBatch;
  // state must still be identical.
  for (AggregateKind kind : {AggregateKind::kTopK, AggregateKind::kQuantiles,
                             AggregateKind::kSum}) {
    StreamQuery::Options options;
    options.aggregate = kind;
    StreamQuery per_event(options, 3);
    StreamQuery batched(options, 3);
    std::vector<StreamEvent> events;
    for (uint64_t i = 0; i < 500; ++i) {
      events.push_back(Event(i, i % 2, i % 50, int64_t(i % 7)));
    }
    for (const StreamEvent& e : events) {
      ASSERT_TRUE(per_event.Process(e).ok());
    }
    ASSERT_TRUE(batched.ProcessBatch(events).ok());
    EXPECT_EQ(batched.SerializeState(), per_event.SerializeState());
  }
}

TEST(StreamQueryTest, ProcessBatchParallelMatchesPerEventExactly) {
  // The partitioned multi-core path must leave the query byte-identical to
  // per-event processing for every aggregate kind: each group is owned by
  // one worker and its updates are applied in stream order.
  ThreadPool pool(4);
  for (AggregateKind kind :
       {AggregateKind::kCountDistinct, AggregateKind::kTopK,
        AggregateKind::kQuantiles, AggregateKind::kSum}) {
    StreamQuery::Options options;
    options.aggregate = kind;
    options.window_size = 700;  // Several closes inside the batch.
    StreamQuery per_event(options, 11);
    StreamQuery parallel(options, 11);
    per_event.AddFilter([](const StreamEvent& e) { return e.item % 9 != 0; });
    parallel.AddFilter([](const StreamEvent& e) { return e.item % 9 != 0; });

    std::vector<StreamEvent> events;
    for (uint64_t i = 0; i < 5000; ++i) {
      events.push_back(Event(i, i % 37, i * 0x9E3779B97F4A7C15ull >> 32,
                             int64_t(i % 13)));
    }
    for (const StreamEvent& e : events) {
      ASSERT_TRUE(per_event.Process(e).ok());
    }
    // Ragged slices, so segments straddle Push boundaries too.
    std::span<const StreamEvent> span(events);
    size_t offset = 0;
    for (size_t n : {1u, 699u, 700u, 1500u, 2100u}) {
      ASSERT_TRUE(parallel.ProcessBatchParallel(span.subspan(offset, n), pool)
                      .ok());
      offset += n;
    }
    ASSERT_EQ(offset, events.size());
    EXPECT_EQ(parallel.SerializeState(), per_event.SerializeState());
    EXPECT_EQ(parallel.NumOpenGroups(), per_event.NumOpenGroups());
  }
}

TEST(StreamQueryTest, ProcessBatchParallelStopsAtFirstError) {
  ThreadPool pool(2);
  StreamQuery::Options options;
  options.aggregate = AggregateKind::kCountDistinct;
  StreamQuery query(options, 1);
  const std::vector<StreamEvent> events = {Event(10, 0, 1), Event(11, 0, 2),
                                           Event(5, 0, 3), Event(12, 0, 4)};
  EXPECT_FALSE(query.ProcessBatchParallel(events, pool).ok());
  StreamQuery expected(options, 1);
  ASSERT_TRUE(expected.Process(Event(10, 0, 1)).ok());
  ASSERT_TRUE(expected.Process(Event(11, 0, 2)).ok());
  EXPECT_EQ(query.SerializeState(), expected.SerializeState());
}

TEST(StreamQueryTest, ProcessBatchStopsAtFirstError) {
  StreamQuery::Options options;
  options.aggregate = AggregateKind::kCountDistinct;
  StreamQuery query(options, 1);
  // Timestamp regression mid-batch: the bad event is rejected, everything
  // before it has been applied.
  const std::vector<StreamEvent> events = {Event(10, 0, 1), Event(11, 0, 2),
                                           Event(5, 0, 3), Event(12, 0, 4)};
  EXPECT_FALSE(query.ProcessBatch(events).ok());
  StreamQuery expected(options, 1);
  ASSERT_TRUE(expected.Process(Event(10, 0, 1)).ok());
  ASSERT_TRUE(expected.Process(Event(11, 0, 2)).ok());
  EXPECT_EQ(query.SerializeState(), expected.SerializeState());
}

TEST(StreamQueryTest, RestoreRejectsMismatchedOptionsAndCorruption) {
  StreamQuery::Options options;
  options.aggregate = AggregateKind::kCountDistinct;
  StreamQuery query(options, 1);
  for (uint64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(query.Process(Event(i, 0, i)).ok());
  }
  const std::vector<uint8_t> checkpoint = query.SerializeState();

  // Different aggregate: the checkpoint is valid but for another query.
  StreamQuery::Options other = options;
  other.aggregate = AggregateKind::kSum;
  StreamQuery wrong_options(other, 1);
  EXPECT_EQ(wrong_options.RestoreState(checkpoint).code(),
            StatusCode::kInvalidArgument);

  // Different seed: sketches would not be merge-compatible.
  StreamQuery wrong_seed(options, 2);
  EXPECT_EQ(wrong_seed.RestoreState(checkpoint).code(),
            StatusCode::kInvalidArgument);

  // Damage: truncations and bit flips are corruption, and a failed
  // restore leaves the target untouched.
  StreamQuery victim(options, 1);
  ASSERT_TRUE(victim.Process(Event(1, 7, 7)).ok());
  for (size_t len : {size_t{0}, size_t{3}, checkpoint.size() / 2,
                     checkpoint.size() - 1}) {
    const std::vector<uint8_t> cut(checkpoint.begin(),
                                   checkpoint.begin() + len);
    EXPECT_EQ(victim.RestoreState(cut).code(), StatusCode::kCorruption);
  }
  for (size_t pos = 0; pos < checkpoint.size(); ++pos) {
    std::vector<uint8_t> damaged = checkpoint;
    damaged[pos] ^= 0x40;
    const Status s = victim.RestoreState(damaged);
    ASSERT_FALSE(s.ok()) << "flip at " << pos << " was accepted";
    EXPECT_EQ(s.code(), StatusCode::kCorruption)
        << "flip at " << pos << ": " << s.ToString();
  }
  EXPECT_EQ(victim.NumOpenGroups(), 1u);  // Still its own state.
}

TEST(StreamQueryTest, LiveDistinctPublishesUnderIngest) {
  // The engine's concurrent hook: a wait-free ConcurrentSummary<HLL> that
  // mirrors every accepted event's item across groups and windows, so
  // another thread can read the stream-wide distinct count while the
  // query ingests. Window closes flush the query thread's residual.
  StreamQuery::Options options;
  options.aggregate = AggregateKind::kCountDistinct;
  options.window_size = 500;
  options.hll_precision = 12;
  StreamQuery query(options, 77);
  // Drop odd items: the live view must see accepted events only.
  query.AddFilter([](const StreamEvent& e) { return e.item % 2 == 0; });
  ConcurrentSummary<HyperLogLog> live(HyperLogLog(12, 77),
                                      {.buffer_items = 512});
  query.PublishDistinctTo(&live);

  constexpr uint64_t kEvents = 20000;
  std::vector<StreamEvent> events;
  events.reserve(kEvents);
  for (uint64_t i = 0; i < kEvents; ++i) {
    // 4 events per timestamp tick -> a window closes every 2000 events.
    events.push_back(Event(i / 4, i % 8, i));
  }
  HyperLogLog sequential(12, 77);
  for (const StreamEvent& e : events) {
    if (e.item % 2 == 0) sequential.Update(e.item);
  }

  std::span<const StreamEvent> span(events);
  ASSERT_TRUE(query.ProcessBatch(span.subspan(0, kEvents / 2)).ok());
  // Mid-ingest: closed windows have flushed the live view, so a reader
  // sees a bounded-staleness estimate that is already most of the stream.
  EXPECT_GT(live.epoch(), 0u);
  EXPECT_GT(live.Estimate(), 0.0);
  for (size_t off = kEvents / 2; off < span.size(); off += 1000) {
    ASSERT_TRUE(query.ProcessBatch(span.subspan(off, 1000)).ok());
  }
  query.Flush();

  // Quiesced: the live view saw exactly the accepted items, in one
  // thread, so it is byte-identical to the sequential reference.
  EXPECT_EQ(live.Snapshot().value().Serialize(), sequential.Serialize());
  EXPECT_NEAR(live.Estimate(), kEvents / 2.0, 0.05 * kEvents / 2.0);
}

TEST(StreamQueryTest, LiveDistinctMirrorsParallelRoutingThread) {
  // ProcessBatchParallel mirrors items on the routing (calling) thread,
  // not the pool workers — the live count must still cover every
  // accepted event.
  StreamQuery::Options options;
  options.aggregate = AggregateKind::kCountDistinct;
  options.hll_precision = 12;
  StreamQuery query(options, 78);
  ConcurrentSummary<HyperLogLog> live(HyperLogLog(12, 78));
  query.PublishDistinctTo(&live);
  ThreadPool pool(4);
  constexpr uint64_t kEvents = 20000;
  std::vector<StreamEvent> events;
  events.reserve(kEvents);
  for (uint64_t i = 0; i < kEvents; ++i) {
    events.push_back(Event(1, i % 64, i));
  }
  ASSERT_TRUE(query.ProcessBatchParallel(events, pool).ok());
  query.Flush();
  live.FlushLocal();
  EXPECT_NEAR(live.Estimate(), kEvents, 0.05 * kEvents);
}

TEST(ExponentialHistogramTest, ExactWhileSmall) {
  ExponentialHistogram eh(1000, 0.1);
  for (uint64_t t = 0; t < 5; ++t) eh.Add(t);
  EXPECT_EQ(eh.EstimateCount(5), 5u);
}

TEST(ExponentialHistogramTest, WindowExpiryDropsOldEvents) {
  ExponentialHistogram eh(100, 0.1);
  for (uint64_t t = 0; t < 50; ++t) eh.Add(t);
  // At now = 200 every event (timestamps 0..49) is outside (100, 200].
  EXPECT_EQ(eh.EstimateCount(200), 0u);
}

TEST(ExponentialHistogramTest, RelativeErrorBounded) {
  const uint64_t window = 10000;
  ExponentialHistogram eh(window, 0.1);
  // One event per time unit for 50000 units; true count in window = 10000.
  for (uint64_t t = 0; t < 50000; ++t) eh.Add(t);
  const double estimate = static_cast<double>(eh.EstimateCount(49999));
  EXPECT_NEAR(estimate, 10000.0, 0.12 * 10000);
}

TEST(ExponentialHistogramTest, BurstyArrivals) {
  ExponentialHistogram eh(1000, 0.05);
  // Burst of 5000 events at t=0, then silence.
  for (int i = 0; i < 5000; ++i) eh.Add(0);
  EXPECT_NEAR(static_cast<double>(eh.EstimateCount(0)), 5000.0,
              0.06 * 5000);
  EXPECT_NEAR(static_cast<double>(eh.EstimateCount(999)), 5000.0,
              0.06 * 5000);
  EXPECT_EQ(eh.EstimateCount(2000), 0u);
}

TEST(ExponentialHistogramTest, SpaceIsLogarithmic) {
  ExponentialHistogram eh(1 << 20, 0.1);
  for (uint64_t t = 0; t < 200000; ++t) eh.Add(t);
  // O((1/eps) log(eps N)) buckets: generous cap.
  EXPECT_LE(eh.NumBuckets(), 400u);
}

TEST(ExponentialHistogramTest, ErrorShrinksWithEpsilon) {
  const uint64_t window = 4096;
  std::vector<double> errors;
  for (double epsilon : {0.5, 0.05}) {
    ExponentialHistogram eh(window, epsilon);
    for (uint64_t t = 0; t < 20000; ++t) eh.Add(t);
    errors.push_back(std::abs(
        static_cast<double>(eh.EstimateCount(19999)) - 4096.0));
  }
  EXPECT_LT(errors[1], errors[0]);
}

// ---------------------------------------------------------- Sliding window

TEST(SlidingWindowTest, ExpiresOldPanes) {
  // Window = 4 panes x 100 units. Items seen in pane 0 must be gone once
  // time passes 400 units later.
  SlidingWindowSummary<HyperLogLog> window(HyperLogLog(12, 1), 100, 4);
  for (uint64_t i = 0; i < 1000; ++i) {
    window.Update(/*timestamp=*/50, i);  // All in pane 0.
  }
  EXPECT_NEAR(window.WindowSummary().Estimate(), 1000.0, 60.0);
  // Jump far ahead: pane 0 expires; new items only.
  for (uint64_t i = 0; i < 100; ++i) {
    window.Update(/*timestamp=*/1000, 1000000 + i);
  }
  EXPECT_NEAR(window.WindowSummary().Estimate(), 100.0, 15.0);
  EXPECT_LE(window.NumLivePanes(), 4u);
}

TEST(SlidingWindowTest, GradualSlideTracksRecentDistincts) {
  SlidingWindowSummary<HyperLogLog> window(HyperLogLog(12, 2), 10, 10);
  // 100 time units of window; emit 10 fresh items per unit.
  uint64_t next_item = 0;
  for (uint64_t t = 0; t < 500; ++t) {
    for (int i = 0; i < 10; ++i) window.Update(t, next_item++);
    if (t >= 100 && t % 50 == 0) {
      // Steady state: ~1000 distinct items inside the window (100 units x
      // 10/unit), quantized by one pane (10%).
      const double estimate = window.WindowSummary().Estimate();
      EXPECT_NEAR(estimate, 1000.0, 200.0) << "t = " << t;
    }
  }
}

TEST(SlidingWindowTest, WorksWithCountMin) {
  SlidingWindowSummary<CountMinSketch> window(CountMinSketch(256, 4, 3), 10,
                                              5);
  // Heavy item appears only in the first pane.
  for (int i = 0; i < 100; ++i) window.Update(0, /*item=*/7, /*weight=*/1);
  EXPECT_GE(window.WindowSummary().Estimate(7), 100u);
  // After the window slides past, its count drops to zero.
  window.Advance(1000);
  EXPECT_EQ(window.WindowSummary().Estimate(7), 0u);
}

TEST(SlidingWindowTest, PaneCountStaysBounded) {
  SlidingWindowSummary<HyperLogLog> window(HyperLogLog(8, 4), 1, 8);
  for (uint64_t t = 0; t < 10000; t += 3) {
    window.Update(t, t);
    EXPECT_LE(window.NumLivePanes(), 8u);
  }
}

TEST(SlidingStreamQueryTest, EmitsTrailingWindowAtEachSlideBoundary) {
  StreamQuery::Options options;
  options.aggregate = AggregateKind::kCountDistinct;
  options.window_size = 30;
  options.slide = 10;
  StreamQuery query(options, 7);
  // 5 distinct items per 10-unit slide, all in group 0.
  for (uint64_t t = 0; t < 60; ++t) {
    ASSERT_TRUE(query.Process(Event(t, 0, t / 2)).ok());
  }
  const auto closed = query.Poll();
  // Crossings at t = 10, 20, 30, 40, 50 emitted windows ending there.
  ASSERT_EQ(closed.size(), 5u);
  EXPECT_EQ(closed[0].window_start, 0u);
  EXPECT_EQ(closed[0].window_end, 10u);
  EXPECT_NEAR(closed[0].groups[0].scalar, 5.0, 1.0);
  // Once the stream outruns the window, results cover [end - 30, end) and
  // old slides' items have been expired from the pane ring.
  EXPECT_EQ(closed[4].window_start, 20u);
  EXPECT_EQ(closed[4].window_end, 50u);
  EXPECT_NEAR(closed[4].groups[0].scalar, 15.0, 2.0);
  // Groups persist across slides instead of tumbling away.
  EXPECT_EQ(query.NumOpenGroups(), 1u);
  // Flush emits one final window ending at the next boundary.
  const auto last = query.Flush();
  ASSERT_EQ(last.size(), 1u);
  EXPECT_EQ(last[0].window_end, 60u);
  EXPECT_NEAR(last[0].groups[0].scalar, 15.0, 2.0);
}

TEST(SlidingStreamQueryTest, TracksBruteForcePerGroupDistincts) {
  StreamQuery::Options options;
  options.aggregate = AggregateKind::kCountDistinct;
  options.window_size = 40;
  options.slide = 8;
  StreamQuery query(options, 11);
  std::vector<StreamEvent> events;
  uint64_t state = 99;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 7;
    state ^= state << 17;
    return state;
  };
  for (uint64_t t = 0; t < 400; ++t) {
    for (int i = 0; i < 3; ++i) {
      events.push_back(Event(t, next() % 4, next() % 97));
    }
  }
  for (const StreamEvent& event : events) {
    ASSERT_TRUE(query.Process(event).ok());
  }
  const auto closed = query.Poll();
  ASSERT_FALSE(closed.empty());
  for (const WindowResult& window : closed) {
    // Window covers whole panes: timestamps in [start, end).
    std::unordered_map<uint64_t, std::set<uint64_t>> exact;
    for (const StreamEvent& event : events) {
      if (event.timestamp >= window.window_start &&
          event.timestamp < window.window_end) {
        exact[event.group].insert(event.item);
      }
    }
    for (const GroupAggregate& aggregate : window.groups) {
      const auto it = exact.find(aggregate.group);
      const double truth =
          it == exact.end() ? 0.0 : static_cast<double>(it->second.size());
      EXPECT_NEAR(aggregate.scalar, truth, std::max(2.0, 0.15 * truth))
          << "group " << aggregate.group << " window ["
          << window.window_start << ", " << window.window_end << ")";
    }
  }
}

TEST(SlidingStreamQueryTest, ValidatesSlideGeometryAndAggregate) {
  StreamQuery::Options options;
  options.aggregate = AggregateKind::kCountDistinct;
  options.window_size = 10;
  options.slide = 7;  // Not a divisor of window_size.
  StreamQuery bad_geometry(options, 1);
  EXPECT_EQ(bad_geometry.Process(Event(0, 0, 0)).code(),
            StatusCode::kInvalidArgument);

  options.window_size = 14;
  options.aggregate = AggregateKind::kSum;
  StreamQuery bad_aggregate(options, 1);
  EXPECT_EQ(bad_aggregate.Process(Event(0, 0, 0)).code(),
            StatusCode::kUnimplemented);

  // Sliding queries still enforce stream order.
  options.aggregate = AggregateKind::kCountDistinct;
  StreamQuery ordered(options, 1);
  ASSERT_TRUE(ordered.Process(Event(50, 0, 0)).ok());
  EXPECT_EQ(ordered.Process(Event(49, 0, 1)).code(),
            StatusCode::kFailedPrecondition);
}

TEST(SlidingStreamQueryTest, BatchIngestMatchesPerEventExactly) {
  StreamQuery::Options options;
  options.aggregate = AggregateKind::kCountDistinct;
  options.window_size = 20;
  options.slide = 5;
  std::vector<StreamEvent> events;
  for (uint64_t t = 0; t < 100; ++t) {
    events.push_back(Event(t, t % 3, (t * 17) % 41));
  }
  StreamQuery per_event(options, 13);
  for (const StreamEvent& event : events) {
    ASSERT_TRUE(per_event.Process(event).ok());
  }
  StreamQuery batched(options, 13);
  ASSERT_TRUE(batched.ProcessBatch(events).ok());
  EXPECT_EQ(batched.SerializeState(), per_event.SerializeState());
}

TEST(SlidingStreamQueryTest, CheckpointRoundTripsPaneRings) {
  StreamQuery::Options options;
  options.aggregate = AggregateKind::kCountDistinct;
  options.window_size = 30;
  options.slide = 10;
  StreamQuery query(options, 17);
  for (uint64_t t = 0; t < 47; ++t) {
    ASSERT_TRUE(query.Process(Event(t, t % 2, t * 3)).ok());
  }
  (void)query.Poll();
  const std::vector<uint8_t> checkpoint = query.SerializeState();

  StreamQuery restored(options, 17);
  ASSERT_TRUE(restored.RestoreState(checkpoint).ok());
  EXPECT_EQ(restored.SerializeState(), checkpoint);

  // Both copies must agree bit-for-bit on the rest of the stream.
  for (uint64_t t = 47; t < 80; ++t) {
    const StreamEvent event = Event(t, t % 2, t * 3);
    ASSERT_TRUE(query.Process(event).ok());
    ASSERT_TRUE(restored.Process(event).ok());
  }
  EXPECT_EQ(restored.SerializeState(), query.SerializeState());
  const auto expected = query.Flush();
  const auto actual = restored.Flush();
  ASSERT_EQ(actual.size(), expected.size());
  for (size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(actual[i].window_end, expected[i].window_end);
    ASSERT_EQ(actual[i].groups.size(), expected[i].groups.size());
    for (size_t g = 0; g < expected[i].groups.size(); ++g) {
      EXPECT_DOUBLE_EQ(actual[i].groups[g].scalar,
                       expected[i].groups[g].scalar);
    }
  }
}

TEST(SlidingStreamQueryTest, TopKTracksTrailingWindow) {
  StreamQuery::Options options;
  options.aggregate = AggregateKind::kTopK;
  options.window_size = 40;
  options.slide = 10;
  options.top_k = 2;
  StreamQuery query(options, 5);
  // Item 7 is heavy only during [0, 20); item 9 is heavy from 40 on. A
  // trailing 40-unit window must stop reporting 7 once it expires.
  for (uint64_t t = 0; t < 20; ++t) {
    ASSERT_TRUE(query.Process(Event(t, 0, 7, 50)).ok());
    ASSERT_TRUE(query.Process(Event(t, 0, t + 100)).ok());
  }
  for (uint64_t t = 20; t < 100; ++t) {
    ASSERT_TRUE(query.Process(Event(t, 0, t >= 40 ? 9 : t + 200,
                                    t >= 40 ? 30 : 1)).ok());
  }
  const auto windows = query.Flush();
  ASSERT_FALSE(windows.empty());
  bool seven_led_early = false;
  for (const WindowResult& window : windows) {
    ASSERT_EQ(window.groups.size(), 1u);
    const auto& top = window.groups[0].top_items;
    ASSERT_FALSE(top.empty());
    if (window.window_end <= 30 && top[0].first == 7) seven_led_early = true;
    if (window.window_start >= 20) {
      EXPECT_NE(top[0].first, 7u)
          << "item 7 expired at t=20 but still leads window ["
          << window.window_start << ", " << window.window_end << ")";
    }
  }
  EXPECT_TRUE(seven_led_early);
  const WindowResult& last = windows.back();
  EXPECT_EQ(last.groups[0].top_items[0].first, 9u);
}

TEST(SlidingStreamQueryTest, QuantilesTrackTrailingWindow) {
  StreamQuery::Options options;
  options.aggregate = AggregateKind::kQuantiles;
  options.window_size = 20;
  options.slide = 5;
  options.quantile_points = {0.5};
  StreamQuery query(options, 11);
  // Values are ~100 before t=50 and ~1000 after; once the old panes
  // expire, the sliding median must jump to the new regime.
  for (uint64_t t = 0; t < 100; ++t) {
    const int64_t value = t < 50 ? 100 + static_cast<int64_t>(t % 7)
                                 : 1000 + static_cast<int64_t>(t % 7);
    ASSERT_TRUE(query.Process(Event(t, 3, t, value)).ok());
  }
  const auto windows = query.Flush();
  ASSERT_FALSE(windows.empty());
  for (const WindowResult& window : windows) {
    ASSERT_EQ(window.groups.size(), 1u);
    ASSERT_EQ(window.groups[0].quantiles.size(), 1u);
    const double median = window.groups[0].quantiles[0];
    if (window.window_end <= 50) {
      EXPECT_NEAR(median, 103.0, 10.0);
    } else if (window.window_start >= 50) {
      EXPECT_NEAR(median, 1003.0, 10.0);
    }
  }
}

TEST(SlidingStreamQueryTest, CheckpointRoundTripsTopKAndQuantileRings) {
  for (const AggregateKind aggregate :
       {AggregateKind::kTopK, AggregateKind::kQuantiles}) {
    StreamQuery::Options options;
    options.aggregate = aggregate;
    options.window_size = 30;
    options.slide = 10;
    StreamQuery query(options, 23);
    for (uint64_t t = 0; t < 47; ++t) {
      ASSERT_TRUE(
          query.Process(Event(t, t % 2, (t * 13) % 29, 1 + t % 5)).ok());
    }
    (void)query.Poll();
    const std::vector<uint8_t> checkpoint = query.SerializeState();

    StreamQuery restored(options, 23);
    ASSERT_TRUE(restored.RestoreState(checkpoint).ok());
    EXPECT_EQ(restored.SerializeState(), checkpoint);

    for (uint64_t t = 47; t < 80; ++t) {
      const StreamEvent event = Event(t, t % 2, (t * 13) % 29, 1 + t % 5);
      ASSERT_TRUE(query.Process(event).ok());
      ASSERT_TRUE(restored.Process(event).ok());
    }
    EXPECT_EQ(restored.SerializeState(), query.SerializeState());
  }
}

TEST(StreamQueryTest, SerializedStateIndependentOfGroupArrivalOrder) {
  // The GROUP-BY table is a hash table with insertion-dependent iteration
  // order; sorted emission must make checkpoints and window results
  // byte-identical no matter which group shows up first.
  StreamQuery::Options options;
  options.aggregate = AggregateKind::kCountDistinct;
  std::vector<StreamEvent> ascending, descending;
  for (uint64_t g = 0; g < 40; ++g) {
    ascending.push_back(Event(7, g, g * 31));
    descending.push_back(Event(7, 39 - g, (39 - g) * 31));
  }
  StreamQuery forward(options, 3);
  StreamQuery backward(options, 3);
  ASSERT_TRUE(forward.ProcessBatch(ascending).ok());
  ASSERT_TRUE(backward.ProcessBatch(descending).ok());
  EXPECT_EQ(forward.SerializeState(), backward.SerializeState());

  const auto lhs = forward.Flush();
  const auto rhs = backward.Flush();
  ASSERT_EQ(lhs.size(), 1u);
  ASSERT_EQ(rhs.size(), 1u);
  ASSERT_EQ(lhs[0].groups.size(), rhs[0].groups.size());
  for (size_t g = 0; g < lhs[0].groups.size(); ++g) {
    EXPECT_EQ(lhs[0].groups[g].group, rhs[0].groups[g].group);
    EXPECT_DOUBLE_EQ(lhs[0].groups[g].scalar, rhs[0].groups[g].scalar);
  }
}

}  // namespace
}  // namespace gems
