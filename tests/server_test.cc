// gemsd server stack: protocol framing/codecs, the sharded keyspace, the
// request dispatcher, and full loopback integration over real sockets —
// concurrent UPDATE/QUERY against an offline replica, MERGE fan-in, and
// the CHECKPOINT/RESTORE round trip with byte-identical images.

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cardinality/hyperloglog.h"
#include "common/random.h"
#include "core/registry.h"
#include "frequency/count_min.h"
#include "server/client.h"
#include "server/keyspace.h"
#include "server/protocol.h"
#include "server/server.h"

namespace gems {
namespace server {
namespace {

class ServerTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterBuiltinSketches(); }
};

using ProtocolTest = ServerTest;
using KeyspaceTest = ServerTest;
using LoopbackTest = ServerTest;

std::vector<uint64_t> Items(size_t n, uint64_t seed) {
  SplitMix64 rng(seed);
  std::vector<uint64_t> items(n);
  for (uint64_t& item : items) item = rng.Next();
  return items;
}

// ------------------------------------------------------------ framing

TEST_F(ProtocolTest, SplitFrameIncompleteThenComplete) {
  std::vector<uint8_t> stream;
  Request ping;
  ping.opcode = Opcode::kPing;
  ping.id = 7;
  EncodeRequest(ping, &stream);

  // Every strict prefix is "incomplete", never an error.
  for (size_t cut = 0; cut < stream.size(); ++cut) {
    ByteSpan body;
    size_t consumed = 1;
    ASSERT_TRUE(SplitFrame(ByteSpan(stream.data(), cut),
                           kDefaultMaxFrameBytes, &body, &consumed)
                    .ok());
    EXPECT_EQ(consumed, 0u) << "prefix of " << cut;
  }
  ByteSpan body;
  size_t consumed = 0;
  ASSERT_TRUE(SplitFrame(ByteSpan(stream), kDefaultMaxFrameBytes, &body,
                         &consumed)
                  .ok());
  EXPECT_EQ(consumed, stream.size());
  EXPECT_EQ(body.size(), stream.size() - 4);
}

TEST_F(ProtocolTest, SplitFrameTwoFramesBackToBack) {
  std::vector<uint8_t> stream;
  Request a;
  a.opcode = Opcode::kPing;
  a.id = 1;
  EncodeRequest(a, &stream);
  const size_t first_size = stream.size();
  Request b;
  b.opcode = Opcode::kDrop;
  b.key = "k";
  b.id = 2;
  EncodeRequest(b, &stream);

  ByteSpan body;
  size_t consumed = 0;
  ASSERT_TRUE(SplitFrame(ByteSpan(stream), kDefaultMaxFrameBytes, &body,
                         &consumed)
                  .ok());
  EXPECT_EQ(consumed, first_size);  // First frame only.
}

TEST_F(ProtocolTest, SplitFrameRejectsZeroAndOversizedLengths) {
  const std::vector<uint8_t> zero = {0, 0, 0, 0};
  ByteSpan body;
  size_t consumed = 0;
  EXPECT_EQ(SplitFrame(ByteSpan(zero), kDefaultMaxFrameBytes, &body,
                       &consumed)
                .code(),
            StatusCode::kInvalidArgument);

  const std::vector<uint8_t> huge = {0xFF, 0xFF, 0xFF, 0xFF};
  EXPECT_EQ(SplitFrame(ByteSpan(huge), kDefaultMaxFrameBytes, &body,
                       &consumed)
                .code(),
            StatusCode::kInvalidArgument);

  // A length just over a small cap is rejected even though the bytes
  // themselves have not arrived yet.
  const std::vector<uint8_t> over_cap = {0x01, 0x04, 0, 0};  // 1025
  EXPECT_EQ(SplitFrame(ByteSpan(over_cap), /*max_frame_bytes=*/1024, &body,
                       &consumed)
                .code(),
            StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------- codecs

TEST_F(ProtocolTest, RequestCodecRoundTripsEveryOpcode) {
  const std::vector<uint64_t> items = Items(100, 1);
  const std::vector<uint8_t> blob = {1, 2, 3, 4, 5};

  std::vector<Request> requests;
  {
    Request r;
    r.opcode = Opcode::kPing;
    r.id = 1;
    requests.push_back(r);
  }
  {
    Request r;
    r.opcode = Opcode::kCreate;
    r.id = 2;
    r.key = "visitors";
    r.sketch_type = "hyperloglog";
    requests.push_back(r);
  }
  {
    Request r;
    r.opcode = Opcode::kDrop;
    r.id = 3;
    r.key = "visitors";
    requests.push_back(r);
  }
  {
    Request r;
    r.opcode = Opcode::kList;
    r.id = 4;
    r.prefix = "vis";
    r.limit = 10;
    requests.push_back(r);
  }
  {
    Request r;
    r.opcode = Opcode::kUpdate;
    r.id = 5;
    r.key = "visitors";
    r.items = items;
    requests.push_back(r);
  }
  {
    Request r;
    r.opcode = Opcode::kMerge;
    r.id = 6;
    r.key = "visitors";
    r.flags = kFlagTrustedMerge;
    r.blob = ByteSpan(blob);
    requests.push_back(r);
  }
  {
    Request r;
    r.opcode = Opcode::kQuery;
    r.id = 7;
    r.key = "visitors";
    r.has_item = true;
    r.item = 42;
    r.confidence = 0.99;
    requests.push_back(r);
  }
  {
    Request r;
    r.opcode = Opcode::kCheckpoint;
    r.id = 8;
    requests.push_back(r);
  }
  {
    Request r;
    r.opcode = Opcode::kRestore;
    r.id = 9;
    r.blob = ByteSpan(blob);
    requests.push_back(r);
  }

  for (const Request& original : requests) {
    std::vector<uint8_t> frame;
    EncodeRequest(original, &frame);
    ByteSpan body;
    size_t consumed = 0;
    ASSERT_TRUE(SplitFrame(ByteSpan(frame), kDefaultMaxFrameBytes, &body,
                           &consumed)
                    .ok());
    ASSERT_EQ(consumed, frame.size());

    Request decoded;
    std::vector<uint64_t> scratch;
    std::vector<uint64_t> ts_scratch;
    ASSERT_TRUE(DecodeRequest(body, &decoded, &scratch, &ts_scratch).ok())
        << OpcodeName(original.opcode);
    EXPECT_EQ(decoded.opcode, original.opcode);
    EXPECT_EQ(decoded.id, original.id);
    EXPECT_EQ(decoded.flags, original.flags);
    EXPECT_EQ(decoded.key, original.key);
    EXPECT_EQ(decoded.sketch_type, original.sketch_type);
    EXPECT_EQ(decoded.prefix, original.prefix);
    EXPECT_EQ(decoded.limit, original.limit);
    EXPECT_EQ(decoded.has_item, original.has_item);
    EXPECT_EQ(decoded.item, original.item);
    EXPECT_DOUBLE_EQ(decoded.confidence, original.confidence);
    ASSERT_EQ(decoded.items.size(), original.items.size());
    EXPECT_TRUE(std::equal(decoded.items.begin(), decoded.items.end(),
                           original.items.begin()));
    ASSERT_EQ(decoded.blob.size(), original.blob.size());
    EXPECT_TRUE(std::equal(decoded.blob.begin(), decoded.blob.end(),
                           original.blob.begin()));
  }
}

TEST_F(ProtocolTest, ResponseCodecRoundTripsPayloads) {
  {
    Response r;
    r.opcode = Opcode::kQuery;
    r.id = 11;
    r.query.has_estimate = true;
    r.query.estimate = {1000.0, 950.0, 1050.0, 0.95};
    r.query.summary = "hll ~1000";
    r.query.epoch = 17;
    std::vector<uint8_t> frame;
    EncodeResponse(r, &frame);
    Response decoded;
    ASSERT_TRUE(
        DecodeResponse(ByteSpan(frame.data() + 4, frame.size() - 4), &decoded)
            .ok());
    EXPECT_EQ(decoded.id, 11u);
    EXPECT_EQ(decoded.code, StatusCode::kOk);
    EXPECT_TRUE(decoded.query.has_estimate);
    EXPECT_DOUBLE_EQ(decoded.query.estimate.value, 1000.0);
    EXPECT_DOUBLE_EQ(decoded.query.estimate.lower, 950.0);
    EXPECT_DOUBLE_EQ(decoded.query.estimate.upper, 1050.0);
    EXPECT_EQ(decoded.query.summary, "hll ~1000");
    EXPECT_EQ(decoded.query.epoch, 17u);
  }
  {
    Response r;
    r.opcode = Opcode::kList;
    r.id = 12;
    r.total_keys = 100;
    r.entries = {{"a", "hyperloglog"}, {"b", "count_min"}};
    std::vector<uint8_t> frame;
    EncodeResponse(r, &frame);
    Response decoded;
    ASSERT_TRUE(
        DecodeResponse(ByteSpan(frame.data() + 4, frame.size() - 4), &decoded)
            .ok());
    EXPECT_EQ(decoded.total_keys, 100u);
    ASSERT_EQ(decoded.entries.size(), 2u);
    EXPECT_EQ(decoded.entries[0].key, "a");
    EXPECT_EQ(decoded.entries[1].type, "count_min");
  }
  {
    // An error response carries the typed code verbatim and no payload.
    Response r;
    r.opcode = Opcode::kQuery;
    r.id = 13;
    r.code = StatusCode::kNotFound;
    r.message = "no key 'x'";
    std::vector<uint8_t> frame;
    EncodeResponse(r, &frame);
    Response decoded;
    ASSERT_TRUE(
        DecodeResponse(ByteSpan(frame.data() + 4, frame.size() - 4), &decoded)
            .ok());
    EXPECT_EQ(decoded.code, StatusCode::kNotFound);
    EXPECT_EQ(decoded.message, "no key 'x'");
  }
}

TEST_F(ProtocolTest, DecodeRejectsMalformedRequests) {
  Request valid;
  valid.opcode = Opcode::kUpdate;
  valid.key = "k";
  valid.id = 1;
  const std::vector<uint64_t> items = Items(10, 2);
  valid.items = items;
  std::vector<uint8_t> frame;
  EncodeRequest(valid, &frame);
  const ByteSpan body(frame.data() + 4, frame.size() - 4);

  Request out;
  std::vector<uint64_t> scratch;
  std::vector<uint64_t> ts_scratch;

  // Truncation at every split point inside the body.
  for (size_t cut = 0; cut < body.size(); ++cut) {
    EXPECT_FALSE(
        DecodeRequest(body.subspan(0, cut), &out, &scratch, &ts_scratch).ok())
        << "cut at " << cut;
  }

  // Trailing garbage after a valid body.
  std::vector<uint8_t> padded(body.begin(), body.end());
  padded.push_back(0xAB);
  EXPECT_EQ(DecodeRequest(ByteSpan(padded), &out, &scratch, &ts_scratch)
                .code(),
            StatusCode::kCorruption);

  // Bad version byte.
  std::vector<uint8_t> bad_version(body.begin(), body.end());
  bad_version[0] = 99;
  EXPECT_EQ(DecodeRequest(ByteSpan(bad_version), &out, &scratch, &ts_scratch)
                .code(),
            StatusCode::kCorruption);

  // Unknown opcode: typed kUnimplemented with the id preserved, so the
  // server can answer instead of dropping the connection.
  std::vector<uint8_t> bad_opcode(body.begin(), body.end());
  bad_opcode[1] = 200;
  Status s = DecodeRequest(ByteSpan(bad_opcode), &out, &scratch, &ts_scratch);
  EXPECT_EQ(s.code(), StatusCode::kUnimplemented);
  EXPECT_EQ(out.id, 1u);

  // An update whose item count promises more than the frame holds.
  Request lying;
  lying.opcode = Opcode::kUpdate;
  lying.key = "k";
  lying.items = items;
  std::vector<uint8_t> lying_frame;
  EncodeRequest(lying, &lying_frame);
  // Patch the u32 item count (after 4B prefix + 11B header + 2B key).
  const size_t count_at = 4 + 11 + 2;
  lying_frame[count_at] = 0xFF;
  lying_frame[count_at + 1] = 0xFF;
  EXPECT_EQ(DecodeRequest(
                ByteSpan(lying_frame.data() + 4, lying_frame.size() - 4),
                &out, &scratch, &ts_scratch)
                .code(),
            StatusCode::kCorruption);
}

TEST_F(ProtocolTest, DecodeRejectsGarbageBytes) {
  SplitMix64 rng(3);
  Request out;
  std::vector<uint64_t> scratch;
  std::vector<uint64_t> ts_scratch;
  Response response_out;
  for (int trial = 0; trial < 200; ++trial) {
    std::vector<uint8_t> garbage(1 + static_cast<size_t>(rng.Next() % 64));
    for (uint8_t& b : garbage) b = static_cast<uint8_t>(rng.Next());
    // Must never crash; almost always rejects (a random body is valid
    // only if it happens to spell a full well-formed request).
    (void)DecodeRequest(ByteSpan(garbage), &out, &scratch, &ts_scratch);
    (void)DecodeResponse(ByteSpan(garbage), &response_out);
  }
}

// ----------------------------------------------------------- keyspace

TEST_F(KeyspaceTest, CreateDropListLifecycle) {
  Keyspace keyspace;
  EXPECT_TRUE(keyspace.Create("a", "hyperloglog").ok());
  EXPECT_TRUE(keyspace.Create("ab", "count_min").ok());
  EXPECT_TRUE(keyspace.Create("b", "hllpp").ok());
  EXPECT_EQ(keyspace.size(), 3u);

  EXPECT_EQ(keyspace.Create("a", "hyperloglog").code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(keyspace.Create("c", "no_such_type").code(),
            StatusCode::kNotFound);
  EXPECT_EQ(keyspace.Create("", "hyperloglog").code(),
            StatusCode::kInvalidArgument);

  Keyspace::ListResult all = keyspace.List("", 0);
  EXPECT_EQ(all.total, 3u);
  ASSERT_EQ(all.entries.size(), 3u);
  EXPECT_EQ(all.entries[0].key, "a");  // Sorted.
  EXPECT_EQ(all.entries[1].key, "ab");
  EXPECT_EQ(all.entries[2].key, "b");
  EXPECT_EQ(all.entries[0].type, "hyperloglog");

  Keyspace::ListResult prefixed = keyspace.List("a", 0);
  EXPECT_EQ(prefixed.total, 2u);
  Keyspace::ListResult limited = keyspace.List("", 1);
  EXPECT_EQ(limited.total, 3u);
  EXPECT_EQ(limited.entries.size(), 1u);

  EXPECT_TRUE(keyspace.Drop("b").ok());
  EXPECT_EQ(keyspace.Drop("b").code(), StatusCode::kNotFound);
  EXPECT_EQ(keyspace.size(), 2u);
}

TEST_F(KeyspaceTest, MaxKeysCapIsResourceExhausted) {
  KeyspaceOptions options;
  options.max_keys = 2;
  Keyspace keyspace(options);
  EXPECT_TRUE(keyspace.Create("a", "hyperloglog").ok());
  EXPECT_TRUE(keyspace.Create("b", "hyperloglog").ok());
  EXPECT_EQ(keyspace.Create("c", "hyperloglog").code(),
            StatusCode::kResourceExhausted);
}

TEST_F(KeyspaceTest, UpdateIsAckVisibleToQuery) {
  Keyspace keyspace;
  ASSERT_TRUE(keyspace.Create("visitors", "hyperloglog").ok());
  const std::vector<uint64_t> items = Items(50000, 4);
  ASSERT_TRUE(keyspace.Update("visitors", items).ok());

  Result<QueryResult> query = keyspace.Query("visitors", false, 0, 0.95);
  ASSERT_TRUE(query.ok());
  ASSERT_TRUE(query.value().has_estimate);
  EXPECT_NEAR(query.value().estimate.value, 50000.0, 0.05 * 50000.0);
  EXPECT_GT(query.value().epoch, 0u);

  EXPECT_EQ(keyspace.Update("ghost", items).code(), StatusCode::kNotFound);
  EXPECT_EQ(keyspace.Query("ghost", false, 0, 0.95).status().code(),
            StatusCode::kNotFound);
}

TEST_F(KeyspaceTest, ItemQueryOnFrequencySketch) {
  Keyspace keyspace;
  ASSERT_TRUE(keyspace.Create("flows", "count_min").ok());
  std::vector<uint64_t> items;
  for (int i = 0; i < 500; ++i) items.push_back(7);
  for (int i = 0; i < 100; ++i) items.push_back(9);
  ASSERT_TRUE(keyspace.Update("flows", items).ok());

  Result<QueryResult> heavy = keyspace.Query("flows", true, 7, 0.95);
  ASSERT_TRUE(heavy.ok());
  ASSERT_TRUE(heavy.value().has_estimate);
  EXPECT_GE(heavy.value().estimate.value, 500.0);  // One-sided error.

  // A whole-sketch estimate on Count-Min has no meaning: has_estimate is
  // false, not an error, and the summary line still renders.
  Result<QueryResult> whole = keyspace.Query("flows", false, 0, 0.95);
  ASSERT_TRUE(whole.ok());
  EXPECT_FALSE(whole.value().has_estimate);
  EXPECT_FALSE(whole.value().summary.empty());
}

TEST_F(KeyspaceTest, MergeFansInSerializedEnvelope) {
  Keyspace keyspace;
  ASSERT_TRUE(keyspace.Create("reach", "hyperloglog").ok());
  ASSERT_TRUE(keyspace.Update("reach", Items(10000, 5)).ok());

  // A peer's sketch, shipped as envelope bytes. Default registry params
  // (precision 12, seed 0) make it merge-compatible.
  HyperLogLog peer(12);
  for (uint64_t item : Items(10000, 6)) peer.Update(item);
  const std::vector<uint8_t> envelope = peer.Serialize();

  ASSERT_TRUE(keyspace.Merge("reach", ByteSpan(envelope), false).ok());
  ASSERT_TRUE(keyspace.Merge("reach", ByteSpan(envelope), true).ok());

  Result<QueryResult> query = keyspace.Query("reach", false, 0, 0.95);
  ASSERT_TRUE(query.ok());
  // Two disjoint 10k streams; the duplicate trusted merge is idempotent.
  EXPECT_NEAR(query.value().estimate.value, 20000.0, 0.06 * 20000.0);

  // Corrupt envelope: typed corruption, state unchanged.
  std::vector<uint8_t> corrupt = envelope;
  corrupt[corrupt.size() / 2] ^= 0xFF;
  EXPECT_EQ(keyspace.Merge("reach", ByteSpan(corrupt), false).code(),
            StatusCode::kCorruption);

  // Type confusion: a Count-Min envelope into an HLL key.
  CountMinSketch cm(64, 3, 1);
  (void)cm.Update(1);
  const std::vector<uint8_t> cm_bytes = cm.Serialize();
  EXPECT_EQ(keyspace.Merge("reach", ByteSpan(cm_bytes), false).code(),
            StatusCode::kInvalidArgument);
}

TEST_F(KeyspaceTest, CheckpointRestoreRoundTripsBytes) {
  KeyspaceOptions options;
  options.num_shards = 8;
  Keyspace keyspace(options);
  ASSERT_TRUE(keyspace.Create("users", "hyperloglog").ok());
  ASSERT_TRUE(keyspace.Create("flows", "count_min").ok());
  ASSERT_TRUE(keyspace.Update("users", Items(20000, 7)).ok());
  ASSERT_TRUE(keyspace.Update("flows", Items(5000, 8)).ok());

  std::vector<uint8_t> image;
  ByteSink sink(&image);
  ASSERT_TRUE(keyspace.Checkpoint(sink).ok());

  Keyspace restored(options);
  ASSERT_TRUE(restored.Create("stale", "hllpp").ok());  // Must vanish.
  ASSERT_TRUE(restored.Restore(ByteSpan(image)).ok());
  EXPECT_EQ(restored.size(), 2u);

  // Estimates survive the round trip exactly.
  Result<QueryResult> before = keyspace.Query("users", false, 0, 0.95);
  Result<QueryResult> after = restored.Query("users", false, 0, 0.95);
  ASSERT_TRUE(before.ok());
  ASSERT_TRUE(after.ok());
  EXPECT_DOUBLE_EQ(before.value().estimate.value,
                   after.value().estimate.value);

  // And the restored keyspace checkpoints to byte-identical bytes.
  std::vector<uint8_t> image2;
  ByteSink sink2(&image2);
  ASSERT_TRUE(restored.Checkpoint(sink2).ok());
  EXPECT_EQ(image, image2);

  // A corrupted image leaves the target untouched (all-or-nothing).
  std::vector<uint8_t> corrupt = image;
  corrupt[corrupt.size() - 3] ^= 0xFF;
  Keyspace victim(options);
  ASSERT_TRUE(victim.Create("keep", "hyperloglog").ok());
  EXPECT_FALSE(victim.Restore(ByteSpan(corrupt)).ok());
  EXPECT_EQ(victim.size(), 1u);
  EXPECT_TRUE(victim.Query("keep", false, 0, 0.95).ok());
}

// ----------------------------------------------------- request dispatch

TEST_F(ServerTest, HandleRequestMapsStatusCodesVerbatim) {
  Keyspace keyspace;
  std::vector<uint8_t> arena;
  Response response;

  Request create;
  create.opcode = Opcode::kCreate;
  create.id = 1;
  create.key = "k";
  create.sketch_type = "hyperloglog";
  HandleRequest(keyspace, create, &response, &arena);
  EXPECT_EQ(response.code, StatusCode::kOk);
  EXPECT_EQ(response.id, 1u);

  HandleRequest(keyspace, create, &response, &arena);
  EXPECT_EQ(response.code, StatusCode::kAlreadyExists);
  EXPECT_FALSE(response.message.empty());

  Request query;
  query.opcode = Opcode::kQuery;
  query.id = 2;
  query.key = "ghost";
  HandleRequest(keyspace, query, &response, &arena);
  EXPECT_EQ(response.code, StatusCode::kNotFound);

  Request checkpoint;
  checkpoint.opcode = Opcode::kCheckpoint;
  checkpoint.id = 3;
  HandleRequest(keyspace, checkpoint, &response, &arena);
  EXPECT_EQ(response.code, StatusCode::kOk);
  EXPECT_FALSE(response.blob.empty());
}

// ----------------------------------------------------------- loopback

TEST_F(LoopbackTest, BasicLifecycleOverSockets) {
  Keyspace keyspace;
  Server server(&keyspace);
  ASSERT_TRUE(server.Start().ok());
  ASSERT_NE(server.port(), 0);

  Result<GemsdClient> client =
      GemsdClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  GemsdClient& c = client.value();

  EXPECT_TRUE(c.Ping().ok());
  EXPECT_TRUE(c.Create("users", "hyperloglog").ok());
  EXPECT_EQ(c.Create("users", "hyperloglog").code(),
            StatusCode::kAlreadyExists);
  EXPECT_EQ(c.Create("bad", "no_such_type").code(), StatusCode::kNotFound);

  const std::vector<uint64_t> items = Items(30000, 10);
  ASSERT_TRUE(c.Update("users", items).ok());

  Result<QueryResult> query = c.Query("users");
  ASSERT_TRUE(query.ok());
  ASSERT_TRUE(query.value().has_estimate);
  EXPECT_NEAR(query.value().estimate.value, 30000.0, 0.05 * 30000.0);
  EXPECT_LE(query.value().estimate.lower, query.value().estimate.value);
  EXPECT_GE(query.value().estimate.upper, query.value().estimate.value);

  Result<GemsdClient::ListResult> list = c.List();
  ASSERT_TRUE(list.ok());
  EXPECT_EQ(list.value().total, 1u);
  ASSERT_EQ(list.value().entries.size(), 1u);
  EXPECT_EQ(list.value().entries[0].key, "users");

  EXPECT_EQ(c.Update("ghost", items).code(), StatusCode::kNotFound);
  EXPECT_TRUE(c.Drop("users").ok());
  EXPECT_EQ(c.Drop("users").code(), StatusCode::kNotFound);

  server.Stop();
}

TEST_F(LoopbackTest, PipelinedRequestsInOneWrite) {
  // The server must handle several frames arriving in a single read.
  Keyspace keyspace;
  Server server(&keyspace);
  ASSERT_TRUE(server.Start().ok());
  Result<GemsdClient> client =
      GemsdClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  // The blocking client serializes round trips; pipelining is exercised
  // end-to-end by issuing many small requests back to back, which the
  // kernel coalesces into shared reads on the server side.
  ASSERT_TRUE(client.value().Create("k", "hyperloglog").ok());
  for (int i = 0; i < 200; ++i) {
    ASSERT_TRUE(client.value().Update("k", Items(16, 100 + i)).ok());
  }
  Result<QueryResult> query = client.value().Query("k");
  ASSERT_TRUE(query.ok());
  EXPECT_GT(query.value().estimate.value, 2000.0);
  server.Stop();
}

TEST_F(LoopbackTest, ConcurrentUpdatesMatchOfflineReplica) {
  // N client threads write disjoint item ranges into two keys (an HLL
  // and a Count-Min — families whose merges are order- and partition-
  // independent) while another thread queries continuously. After
  // quiesce, the server state must match an offline replica fed the same
  // items, and the full CHECKPOINT image must be byte-identical to the
  // replica keyspace's.
  KeyspaceOptions options;
  options.num_shards = 8;
  Keyspace keyspace(options);
  ServerOptions server_options;
  server_options.num_threads = 3;
  Server server(&keyspace, server_options);
  ASSERT_TRUE(server.Start().ok());

  {
    Result<GemsdClient> setup =
        GemsdClient::Connect("127.0.0.1", server.port());
    ASSERT_TRUE(setup.ok());
    ASSERT_TRUE(setup.value().Create("users", "hyperloglog").ok());
    ASSERT_TRUE(setup.value().Create("flows", "count_min").ok());
  }

  constexpr int kWriters = 4;
  constexpr int kBatches = 50;
  constexpr size_t kBatchSize = 200;

  std::atomic<bool> stop_readers{false};
  std::thread reader([&] {
    Result<GemsdClient> client =
        GemsdClient::Connect("127.0.0.1", server.port());
    if (!client.ok()) return;
    while (!stop_readers.load(std::memory_order_acquire)) {
      Result<QueryResult> q = client.value().Query("users");
      if (!q.ok()) return;
    }
  });

  std::vector<std::thread> writers;
  for (int w = 0; w < kWriters; ++w) {
    writers.emplace_back([&, w] {
      Result<GemsdClient> client =
          GemsdClient::Connect("127.0.0.1", server.port());
      ASSERT_TRUE(client.ok());
      for (int b = 0; b < kBatches; ++b) {
        const auto batch = Items(kBatchSize, 1000 + w * kBatches + b);
        ASSERT_TRUE(client.value().Update("users", batch).ok());
        ASSERT_TRUE(client.value().Update("flows", batch).ok());
      }
    });
  }
  for (std::thread& writer : writers) writer.join();
  stop_readers.store(true, std::memory_order_release);
  reader.join();

  // Offline replica: same options, same creates, same items (order-free).
  Keyspace replica(options);
  ASSERT_TRUE(replica.Create("users", "hyperloglog").ok());
  ASSERT_TRUE(replica.Create("flows", "count_min").ok());
  for (int w = 0; w < kWriters; ++w) {
    for (int b = 0; b < kBatches; ++b) {
      const auto batch = Items(kBatchSize, 1000 + w * kBatches + b);
      ASSERT_TRUE(replica.Update("users", batch).ok());
      ASSERT_TRUE(replica.Update("flows", batch).ok());
    }
  }

  Result<GemsdClient> client =
      GemsdClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());

  // Estimates agree exactly (updates are ack-visible, merges are
  // partition-independent for these families).
  Result<QueryResult> live = client.value().Query("users");
  Result<QueryResult> offline = replica.Query("users", false, 0, 0.95);
  ASSERT_TRUE(live.ok());
  ASSERT_TRUE(offline.ok());
  EXPECT_DOUBLE_EQ(live.value().estimate.value,
                   offline.value().estimate.value);

  Result<QueryResult> live_item = client.value().QueryItem("flows", 12345);
  Result<QueryResult> offline_item =
      replica.Query("flows", true, 12345, 0.95);
  ASSERT_TRUE(live_item.ok());
  ASSERT_TRUE(offline_item.ok());
  EXPECT_DOUBLE_EQ(live_item.value().estimate.value,
                   offline_item.value().estimate.value);

  // Byte-identical checkpoint images.
  Result<std::vector<uint8_t>> image = client.value().Checkpoint();
  ASSERT_TRUE(image.ok());
  std::vector<uint8_t> replica_image;
  ByteSink sink(&replica_image);
  ASSERT_TRUE(replica.Checkpoint(sink).ok());
  EXPECT_EQ(image.value(), replica_image);

  // RESTORE the image into a fresh daemon and re-checkpoint: still
  // byte-identical, still the same estimate.
  Keyspace fresh_keyspace(options);
  Server fresh_server(&fresh_keyspace, server_options);
  ASSERT_TRUE(fresh_server.Start().ok());
  Result<GemsdClient> fresh =
      GemsdClient::Connect("127.0.0.1", fresh_server.port());
  ASSERT_TRUE(fresh.ok());
  ASSERT_TRUE(fresh.value().Restore(ByteSpan(image.value())).ok());
  Result<QueryResult> restored_query = fresh.value().Query("users");
  ASSERT_TRUE(restored_query.ok());
  EXPECT_DOUBLE_EQ(restored_query.value().estimate.value,
                   offline.value().estimate.value);
  Result<std::vector<uint8_t>> image2 = fresh.value().Checkpoint();
  ASSERT_TRUE(image2.ok());
  EXPECT_EQ(image.value(), image2.value());

  fresh_server.Stop();
  server.Stop();
}

TEST_F(LoopbackTest, MergeOverTheWire) {
  Keyspace keyspace;
  Server server(&keyspace);
  ASSERT_TRUE(server.Start().ok());
  Result<GemsdClient> client =
      GemsdClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  GemsdClient& c = client.value();

  ASSERT_TRUE(c.Create("reach", "hyperloglog").ok());
  HyperLogLog peer(12);
  for (uint64_t item : Items(25000, 42)) peer.Update(item);
  const std::vector<uint8_t> envelope = peer.Serialize();
  ASSERT_TRUE(c.Merge("reach", ByteSpan(envelope), /*trusted=*/false).ok());
  ASSERT_TRUE(c.Merge("reach", ByteSpan(envelope), /*trusted=*/true).ok());

  Result<QueryResult> query = c.Query("reach");
  ASSERT_TRUE(query.ok());
  EXPECT_DOUBLE_EQ(query.value().estimate.value, peer.Estimate());

  // Corruption is rejected over the untrusted path with the typed code.
  std::vector<uint8_t> corrupt = envelope;
  corrupt[corrupt.size() / 2] ^= 0xFF;
  EXPECT_EQ(c.Merge("reach", ByteSpan(corrupt), false).code(),
            StatusCode::kCorruption);
  server.Stop();
}

int RawConnect(uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return -1;
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    ::close(fd);
    return -1;
  }
  return fd;
}

// Sends raw bytes, then reports whether the server closed the connection
// (recv == 0) before any response byte arrived.
bool ServerClosedAfter(uint16_t port, const std::vector<uint8_t>& bytes) {
  const int fd = RawConnect(port);
  if (fd < 0) return false;
  size_t sent = 0;
  while (sent < bytes.size()) {
    const ssize_t n =
        ::send(fd, bytes.data() + sent, bytes.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) break;  // Already reset — counts as closed below.
    sent += static_cast<size_t>(n);
  }
  uint8_t byte = 0;
  const ssize_t n = ::recv(fd, &byte, 1, 0);
  ::close(fd);
  return n <= 0;
}

TEST_F(LoopbackTest, MalformedFramesCloseConnectionOthersKeepServing) {
  Keyspace keyspace;
  Server server(&keyspace);
  ASSERT_TRUE(server.Start().ok());

  // An established well-behaved connection that must survive the abuse.
  Result<GemsdClient> good =
      GemsdClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(good.ok());
  ASSERT_TRUE(good.value().Ping().ok());

  // Oversized length prefix: unrecoverable, connection dropped.
  EXPECT_TRUE(ServerClosedAfter(server.port(), {0xFF, 0xFF, 0xFF, 0xFF}));
  // Zero-length frame: same.
  EXPECT_TRUE(ServerClosedAfter(server.port(), {0, 0, 0, 0}));
  // A plausible length prefix framing garbage: decode fails, dropped.
  EXPECT_TRUE(
      ServerClosedAfter(server.port(), {4, 0, 0, 0, 0xDE, 0xAD, 0xBE, 0xEF}));

  // An unknown opcode gets a typed error *response*, not a close: version
  // byte, opcode 200, flags 0, id 5 (little-endian u64).
  {
    const int fd = RawConnect(server.port());
    ASSERT_GE(fd, 0);
    const std::vector<uint8_t> frame = {11,   0, 0, 0,  // length
                                        kProtocolVersion,
                                        200,  0,         // opcode, flags
                                        5,    0, 0, 0, 0, 0, 0, 0};
    ASSERT_EQ(::send(fd, frame.data(), frame.size(), MSG_NOSIGNAL),
              static_cast<ssize_t>(frame.size()));
    std::vector<uint8_t> reply(4096);
    size_t got = 0;
    ByteSpan body;
    size_t consumed = 0;
    while (got < reply.size()) {
      const ssize_t n = ::recv(fd, reply.data() + got, reply.size() - got, 0);
      ASSERT_GT(n, 0);
      got += static_cast<size_t>(n);
      ASSERT_TRUE(SplitFrame(ByteSpan(reply.data(), got),
                             kDefaultMaxFrameBytes, &body, &consumed)
                      .ok());
      if (consumed != 0) break;
    }
    Response response;
    ASSERT_TRUE(DecodeResponse(body, &response).ok());
    EXPECT_EQ(response.code, StatusCode::kUnimplemented);
    EXPECT_EQ(response.id, 5u);
    ::close(fd);
  }

  // The well-behaved connection is unaffected.
  EXPECT_TRUE(good.value().Ping().ok());
  server.Stop();
}

// --------------------------------------------------------- time family

TEST_F(ProtocolTest, TimedCreateAndUpdateTailsRoundTrip) {
  // CREATE carrying window/decay parameters.
  Request create;
  create.opcode = Opcode::kCreate;
  create.id = 21;
  create.key = "edges";
  create.sketch_type = "sliding_hyperloglog";
  create.has_timed_params = true;
  create.pane_width = 60;
  create.num_panes = 10;
  create.half_life = 0.0;

  // UPDATE carrying a parallel timestamp column.
  const std::vector<uint64_t> items = Items(64, 2);
  std::vector<uint64_t> timestamps;
  for (uint64_t i = 0; i < items.size(); ++i) timestamps.push_back(i * 3);
  Request update;
  update.opcode = Opcode::kUpdate;
  update.id = 22;
  update.key = "edges";
  update.items = items;
  update.timestamps = timestamps;

  for (const Request* original : {&create, &update}) {
    std::vector<uint8_t> frame;
    EncodeRequest(*original, &frame);
    ByteSpan body;
    size_t consumed = 0;
    ASSERT_TRUE(SplitFrame(ByteSpan(frame), kDefaultMaxFrameBytes, &body,
                           &consumed)
                    .ok());
    Request decoded;
    std::vector<uint64_t> scratch, ts_scratch;
    ASSERT_TRUE(DecodeRequest(body, &decoded, &scratch, &ts_scratch).ok());
    EXPECT_EQ(decoded.has_timed_params, original->has_timed_params);
    EXPECT_EQ(decoded.pane_width, original->pane_width);
    EXPECT_EQ(decoded.num_panes, original->num_panes);
    EXPECT_DOUBLE_EQ(decoded.half_life, original->half_life);
    ASSERT_EQ(decoded.timestamps.size(), original->timestamps.size());
    EXPECT_TRUE(std::equal(decoded.timestamps.begin(),
                           decoded.timestamps.end(),
                           original->timestamps.begin()));
  }

  // An untimed CREATE/UPDATE encodes with no tail at all, so the frame is
  // byte-identical to the pre-time protocol: the last field is the item
  // count + payload for UPDATE, the type string for CREATE.
  Request plain;
  plain.opcode = Opcode::kUpdate;
  plain.id = 23;
  plain.key = "edges";
  plain.items = items;
  std::vector<uint8_t> plain_frame;
  EncodeRequest(plain, &plain_frame);
  Request timed_empty = plain;
  timed_empty.timestamps = {};  // Explicitly empty == absent.
  std::vector<uint8_t> timed_frame;
  EncodeRequest(timed_empty, &timed_frame);
  EXPECT_EQ(plain_frame, timed_frame);

  // Truncating inside the timestamp column is a decode error, not a
  // silent fallback to the untimed shape.
  std::vector<uint8_t> frame;
  EncodeRequest(update, &frame);
  ByteSpan body;
  size_t consumed = 0;
  ASSERT_TRUE(SplitFrame(ByteSpan(frame), kDefaultMaxFrameBytes, &body,
                         &consumed)
                  .ok());
  Request decoded;
  std::vector<uint64_t> scratch, ts_scratch;
  EXPECT_FALSE(DecodeRequest(ByteSpan(body.data(), body.size() - 5),
                             &decoded, &scratch, &ts_scratch)
                   .ok());
}

TEST_F(KeyspaceTest, TimedCreateUpdateQueryLifecycle) {
  Keyspace keyspace;
  TimedSketchParams window;
  window.pane_width = 10;
  window.num_panes = 6;
  ASSERT_TRUE(keyspace.Create("edges", "sliding_hyperloglog", window).ok());
  TimedSketchParams decay;
  decay.half_life = 100.0;
  ASSERT_TRUE(keyspace.Create("flows", "decayed_countmin", decay).ok());

  // Timed params on a family without a timed factory are NotFound.
  EXPECT_EQ(keyspace.Create("bad", "hyperloglog", window).code(),
            StatusCode::kNotFound);
  // And invalid params surface the factory's typed error.
  TimedSketchParams contradictory;
  contradictory.pane_width = 10;
  contradictory.half_life = 5.0;
  EXPECT_EQ(
      keyspace.Create("bad", "sliding_hyperloglog", contradictory).code(),
      StatusCode::kInvalidArgument);

  // 30 distinct items per 10-unit pane for 12 panes; only the trailing 6
  // panes (60 units) are visible.
  std::vector<uint64_t> items, timestamps;
  for (uint64_t t = 0; t < 120; ++t) {
    for (int i = 0; i < 3; ++i) {
      timestamps.push_back(t);
      items.push_back(t * 3 + i);
    }
  }
  ASSERT_TRUE(keyspace.Update("edges", items, timestamps).ok());
  Result<QueryResult> windowed = keyspace.Query("edges", false, 0, 0.95);
  ASSERT_TRUE(windowed.ok());
  ASSERT_TRUE(windowed.value().has_estimate);
  EXPECT_NEAR(windowed.value().estimate.value, 180.0, 25.0);

  // Decayed frequency: weight deposited at t=0 halves by t=100.
  std::vector<uint64_t> sevens(64, 7);
  std::vector<uint64_t> zeros(64, 0);
  ASSERT_TRUE(keyspace.Update("flows", sevens, zeros).ok());
  std::vector<uint64_t> late(1, 9);
  std::vector<uint64_t> late_ts(1, 100);
  ASSERT_TRUE(keyspace.Update("flows", late, late_ts).ok());
  Result<QueryResult> decayed = keyspace.Query("flows", true, 7, 0.95);
  ASSERT_TRUE(decayed.ok());
  ASSERT_TRUE(decayed.value().has_estimate);
  EXPECT_NEAR(decayed.value().estimate.value, 32.0, 0.5);

  // A ragged timestamp column is rejected without mutating the key.
  EXPECT_EQ(keyspace.Update("flows", sevens, late_ts).code(),
            StatusCode::kInvalidArgument);
  Result<QueryResult> unchanged = keyspace.Query("flows", true, 7, 0.95);
  ASSERT_TRUE(unchanged.ok());
  EXPECT_DOUBLE_EQ(unchanged.value().estimate.value,
                   decayed.value().estimate.value);
}

TEST_F(KeyspaceTest, TimedCheckpointRestoreRoundTripsBytes) {
  KeyspaceOptions options;
  options.num_shards = 4;
  Keyspace keyspace(options);
  TimedSketchParams window;
  window.pane_width = 5;
  window.num_panes = 8;
  ASSERT_TRUE(keyspace.Create("edges", "sliding_hyperloglog", window).ok());
  ASSERT_TRUE(keyspace.Create("panes", "sliding_countmin", window).ok());
  TimedSketchParams decay;
  decay.half_life = 42.0;
  ASSERT_TRUE(keyspace.Create("flows", "decayed_countmin", decay).ok());
  ASSERT_TRUE(keyspace.Create("plain", "hyperloglog").ok());

  const std::vector<uint64_t> items = Items(3000, 13);
  std::vector<uint64_t> timestamps;
  for (uint64_t i = 0; i < items.size(); ++i) timestamps.push_back(i / 50);
  ASSERT_TRUE(keyspace.Update("edges", items, timestamps).ok());
  ASSERT_TRUE(keyspace.Update("panes", items, timestamps).ok());
  ASSERT_TRUE(keyspace.Update("flows", items, timestamps).ok());
  ASSERT_TRUE(keyspace.Update("plain", items).ok());

  std::vector<uint8_t> image;
  ByteSink sink(&image);
  ASSERT_TRUE(keyspace.Checkpoint(sink).ok());

  Keyspace restored(options);
  ASSERT_TRUE(restored.Restore(ByteSpan(image)).ok());
  EXPECT_EQ(restored.size(), 4u);

  // The restored pane rings and decay clocks checkpoint byte-identically,
  // which covers ring geometry, pane ids, and the sketch payloads.
  std::vector<uint8_t> image2;
  ByteSink sink2(&image2);
  ASSERT_TRUE(restored.Checkpoint(sink2).ok());
  EXPECT_EQ(image, image2);

  // The restored window keeps rolling: far-future updates expire it.
  std::vector<uint64_t> fresh(1, 999);
  std::vector<uint64_t> fresh_ts(1, 1'000'000);
  ASSERT_TRUE(restored.Update("edges", fresh, fresh_ts).ok());
  Result<QueryResult> rolled = restored.Query("edges", false, 0, 0.95);
  ASSERT_TRUE(rolled.ok());
  EXPECT_NEAR(rolled.value().estimate.value, 1.0, 0.5);
}

TEST_F(LoopbackTest, TimedSketchesEndToEndOverSockets) {
  Keyspace keyspace;
  Server server(&keyspace);
  ASSERT_TRUE(server.Start().ok());
  Result<GemsdClient> client =
      GemsdClient::Connect("127.0.0.1", server.port());
  ASSERT_TRUE(client.ok());
  GemsdClient& c = client.value();

  ASSERT_TRUE(
      c.CreateTimed("edges", "sliding_hyperloglog", /*pane_width=*/10,
                    /*num_panes=*/6)
          .ok());
  ASSERT_TRUE(c.CreateTimed("flows", "decayed_countmin", /*pane_width=*/0,
                            /*num_panes=*/0, /*half_life=*/100.0)
                  .ok());
  EXPECT_EQ(c.CreateTimed("bad", "hyperloglog", 10, 6).code(),
            StatusCode::kNotFound);

  // The ragged-column guard trips client-side before any bytes move.
  std::vector<uint64_t> ragged_items(8, 1);
  std::vector<uint64_t> ragged_ts(3, 1);
  EXPECT_EQ(c.UpdateTimed("edges", ragged_items, ragged_ts).code(),
            StatusCode::kInvalidArgument);

  std::vector<uint64_t> items, timestamps;
  for (uint64_t t = 0; t < 120; ++t) {
    for (int i = 0; i < 3; ++i) {
      timestamps.push_back(t);
      items.push_back(t * 3 + i);
    }
  }
  ASSERT_TRUE(c.UpdateTimed("edges", items, timestamps).ok());
  Result<QueryResult> windowed = c.Query("edges");
  ASSERT_TRUE(windowed.ok());
  ASSERT_TRUE(windowed.value().has_estimate);
  // Trailing 60 of 120 time units at 3 fresh items per unit.
  EXPECT_NEAR(windowed.value().estimate.value, 180.0, 25.0);

  std::vector<uint64_t> sevens(64, 7), zeros(64, 0);
  ASSERT_TRUE(c.UpdateTimed("flows", sevens, zeros).ok());
  std::vector<uint64_t> nine(1, 9), at_100(1, 100);
  ASSERT_TRUE(c.UpdateTimed("flows", nine, at_100).ok());
  Result<QueryResult> decayed = c.QueryItem("flows", 7);
  ASSERT_TRUE(decayed.ok());
  EXPECT_NEAR(decayed.value().estimate.value, 32.0, 0.5);

  // Full checkpoint/restore over the wire, byte-identical on re-export.
  Result<std::vector<uint8_t>> image = c.Checkpoint();
  ASSERT_TRUE(image.ok());
  Keyspace other_keyspace;
  Server other(&other_keyspace);
  ASSERT_TRUE(other.Start().ok());
  Result<GemsdClient> other_client =
      GemsdClient::Connect("127.0.0.1", other.port());
  ASSERT_TRUE(other_client.ok());
  ASSERT_TRUE(other_client.value().Restore(ByteSpan(image.value())).ok());
  Result<std::vector<uint8_t>> image2 = other_client.value().Checkpoint();
  ASSERT_TRUE(image2.ok());
  EXPECT_EQ(image.value(), image2.value());
  Result<QueryResult> migrated = other_client.value().QueryItem("flows", 7);
  ASSERT_TRUE(migrated.ok());
  EXPECT_DOUBLE_EQ(migrated.value().estimate.value,
                   decayed.value().estimate.value);

  other.Stop();
  server.Stop();
}

}  // namespace
}  // namespace server
}  // namespace gems
