// End-to-end wire-format properties, driven through the sketch registry:
// every registered sketch must round-trip its envelope exactly, and every
// way of damaging an envelope (bit flips, truncation, re-tagging, type
// confusion) must come back as kCorruption — never a crash, never silent
// garbage. Run under ASan/UBSan in CI.

#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cardinality/hyperloglog.h"
#include "common/status.h"
#include "core/registry.h"
#include "core/summary.h"
#include "core/view.h"
#include "core/wire.h"
#include "frequency/count_min.h"
#include "graph/agm.h"
#include "membership/bloom.h"
#include "quantiles/kll.h"
#include "sampling/reservoir.h"

namespace gems {
namespace {

class WireTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterBuiltinSketches(); }
};

// Concept-driven exact round trip: deserializing and re-serializing must
// reproduce the envelope byte for byte (so every estimate matches exactly,
// not just approximately), and the restored copy must still merge with the
// original when the type is mergeable.
template <typename S>
  requires SerializableSummary<S>
void ExpectExactRoundTrip(const S& sketch) {
  const std::vector<uint8_t> bytes = sketch.Serialize();
  Result<S> restored = S::Deserialize(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  EXPECT_EQ(restored.value().Serialize(), bytes);
  if constexpr (MergeableSummary<S>) {
    S merged = std::move(restored).value();
    const Status s = merged.Merge(sketch);
    EXPECT_TRUE(s.ok()) << s.ToString();
  }
}

// Builds one populated envelope per registered type that has a default
// factory, feeding each sketch the same item stream through the
// type-erased Update dispatch.
std::vector<AnySketch> PopulatedRegisteredSketches() {
  std::vector<AnySketch> sketches;
  for (SketchTypeId id : SketchRegistry::Global().RegisteredTypes()) {
    const SketchRegistry::Entry* entry = SketchRegistry::Global().Find(id);
    if (entry == nullptr || !entry->make_default) continue;
    AnySketch sketch = entry->make_default();
    for (uint64_t i = 1; i <= 500; ++i) {
      // Well-spread items kept below 2^32 so they are in-universe for
      // every registered default (q-digest's is [0, 2^32)).
      const Status s = sketch.Update((i * 0x9E3779B97F4A7C15ull) >> 32);
      EXPECT_TRUE(s.ok()) << entry->name << ": " << s.ToString();
    }
    sketches.push_back(std::move(sketch));
  }
  // The registry must actually cover the library, not just compile.
  EXPECT_GE(sketches.size(), 17u);
  return sketches;
}

TEST_F(WireTest, TypedSketchesRoundTripExactly) {
  HyperLogLog hll(12);
  CountMinSketch cm = CountMinSketch::ForGuarantee(0.001, 0.01);
  KllSketch kll;
  BloomFilter bloom = BloomFilter::ForCapacity(4096, 0.01);
  ReservoirSampler reservoir(128, 7);
  AgmSketch agm(64, 7);
  for (uint64_t i = 1; i <= 2000; ++i) {
    hll.Update(i);
    cm.Update(i % 97, 1);
    kll.Update(static_cast<double>(i % 1000));
    bloom.Insert(i);
    reservoir.Update(i);
    const auto u = static_cast<uint32_t>(i % 64);
    agm.AddEdge(u, (u + 1 + static_cast<uint32_t>((i * 31) % 63)) % 64);
  }
  ExpectExactRoundTrip(hll);
  ExpectExactRoundTrip(cm);
  ExpectExactRoundTrip(kll);
  ExpectExactRoundTrip(bloom);
  ExpectExactRoundTrip(reservoir);
  ExpectExactRoundTrip(agm);
}

TEST_F(WireTest, EveryRegisteredSketchRoundTripsThroughRegistry) {
  for (const AnySketch& original : PopulatedRegisteredSketches()) {
    SCOPED_TRACE(original.type_name());
    const std::vector<uint8_t> bytes = original.Serialize();
    ASSERT_GE(bytes.size(), kWireHeaderSize);

    Result<AnySketch> restored = SketchRegistry::Global().Deserialize(bytes);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    EXPECT_EQ(restored.value().type(), original.type());
    // Exact state: the restored sketch re-serializes to the same bytes, so
    // every estimate it can produce matches the original's exactly.
    EXPECT_EQ(restored.value().Serialize(), bytes);
    EXPECT_EQ(restored.value().EstimateSummary(), original.EstimateSummary());

    // Restored copies stay merge-compatible with the original. Two
    // registered types deliberately have no merge: GK, and the DGIM
    // exponential histogram (two bucket streams cannot interleave).
    AnySketch merged = restored.value();
    const Status s = merged.Merge(original);
    if (original.type() == SketchTypeId::kGreenwaldKhanna ||
        original.type() == SketchTypeId::kExponentialHistogram) {
      EXPECT_EQ(s.code(), StatusCode::kUnimplemented);
    } else {
      EXPECT_TRUE(s.ok()) << s.ToString();
    }
  }
}

TEST_F(WireTest, EmptyRegisteredSketchesRoundTrip) {
  for (SketchTypeId id : SketchRegistry::Global().RegisteredTypes()) {
    const SketchRegistry::Entry* entry = SketchRegistry::Global().Find(id);
    if (entry == nullptr || !entry->make_default) continue;
    SCOPED_TRACE(entry->name);
    const std::vector<uint8_t> bytes = entry->make_default().Serialize();
    Result<AnySketch> restored = SketchRegistry::Global().Deserialize(bytes);
    ASSERT_TRUE(restored.ok()) << restored.status().ToString();
    EXPECT_EQ(restored.value().Serialize(), bytes);
  }
}

// Positions to damage: the whole header plus a spread of payload offsets
// (flipping all of a multi-megabyte Bloom envelope would dominate test
// time without adding coverage).
std::vector<size_t> SampledPositions(size_t size) {
  std::vector<size_t> positions;
  for (size_t i = 0; i < size && i < 64; ++i) positions.push_back(i);
  const size_t stride = size > 64 ? (size - 64) / 64 + 1 : 1;
  for (size_t i = 64; i < size; i += stride) positions.push_back(i);
  if (size > 0) positions.push_back(size - 1);
  return positions;
}

TEST_F(WireTest, BitFlipAnywhereIsCorruption) {
  for (const AnySketch& original : PopulatedRegisteredSketches()) {
    SCOPED_TRACE(original.type_name());
    const std::vector<uint8_t> bytes = original.Serialize();
    for (size_t pos : SampledPositions(bytes.size())) {
      std::vector<uint8_t> damaged = bytes;
      damaged[pos] ^= 0x01;
      Result<AnySketch> r = SketchRegistry::Global().Deserialize(damaged);
      ASSERT_FALSE(r.ok()) << "flip at " << pos << " was accepted";
      EXPECT_EQ(r.status().code(), StatusCode::kCorruption)
          << "flip at " << pos << ": " << r.status().ToString();
    }
  }
}

TEST_F(WireTest, TruncationAnywhereIsCorruption) {
  for (const AnySketch& original : PopulatedRegisteredSketches()) {
    SCOPED_TRACE(original.type_name());
    const std::vector<uint8_t> bytes = original.Serialize();
    for (size_t len : SampledPositions(bytes.size())) {
      const std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + len);
      Result<AnySketch> r = SketchRegistry::Global().Deserialize(cut);
      ASSERT_FALSE(r.ok()) << "truncation to " << len << " was accepted";
      EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
    }
  }
}

TEST_F(WireTest, ViewWrapRejectsBitFlipsLikeDeserialize) {
  // The zero-copy wrap path must hold the same line as Deserialize: any
  // damaged envelope comes back as kCorruption from SketchView::Wrap and
  // the registry's Wrap, never a view over garbage.
  for (const AnySketch& original : PopulatedRegisteredSketches()) {
    SCOPED_TRACE(original.type_name());
    const std::vector<uint8_t> bytes = original.Serialize();
    for (size_t pos : SampledPositions(bytes.size())) {
      std::vector<uint8_t> damaged = bytes;
      damaged[pos] ^= 0x01;
      Result<SketchView> v = SketchView::Wrap(damaged);
      ASSERT_FALSE(v.ok()) << "flip at " << pos << " was wrapped";
      EXPECT_EQ(v.status().code(), StatusCode::kCorruption);
      Result<AnySketchView> av = SketchRegistry::Global().Wrap(damaged);
      ASSERT_FALSE(av.ok()) << "flip at " << pos << " was wrapped";
    }
  }
}

TEST_F(WireTest, ViewWrapRejectsTruncation) {
  for (const AnySketch& original : PopulatedRegisteredSketches()) {
    SCOPED_TRACE(original.type_name());
    const std::vector<uint8_t> bytes = original.Serialize();
    for (size_t len : SampledPositions(bytes.size())) {
      const std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + len);
      Result<SketchView> v = SketchView::Wrap(cut);
      ASSERT_FALSE(v.ok()) << "truncation to " << len << " was wrapped";
      EXPECT_EQ(v.status().code(), StatusCode::kCorruption);
    }
  }
}

TEST_F(WireTest, ViewWrapRejectsOverLongDeclaredLength) {
  // A length field larger than the buffer must fail the bounds check in
  // both verification modes, before any payload access.
  HyperLogLog hll(10);
  for (uint64_t i = 0; i < 100; ++i) hll.Update(i);
  std::vector<uint8_t> bytes = hll.Serialize();
  bytes[8] += 1;  // Low byte of the u32 payload length.
  EXPECT_EQ(SketchView::Wrap(bytes).status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(SketchView::WrapTrusted(bytes).status().code(),
            StatusCode::kCorruption);
  EXPECT_EQ(HyperLogLog::Deserialize(bytes).status().code(),
            StatusCode::kCorruption);
}

TEST_F(WireTest, TypedViewWrapRejectsTypeConfusion) {
  // A valid envelope of every other registered type must be refused by
  // View<HyperLogLog> at wrap time, and by AnySketch::MergeFromView at
  // merge time — as a Status, never a misparse.
  const SketchRegistry::Entry* hll_entry =
      SketchRegistry::Global().Find(SketchTypeId::kHyperLogLog);
  ASSERT_NE(hll_entry, nullptr);
  for (const AnySketch& original : PopulatedRegisteredSketches()) {
    if (original.type() == SketchTypeId::kHyperLogLog) continue;
    SCOPED_TRACE(original.type_name());
    const std::vector<uint8_t> bytes = original.Serialize();
    Result<View<HyperLogLog>> typed = View<HyperLogLog>::Wrap(bytes);
    ASSERT_FALSE(typed.ok());
    EXPECT_EQ(typed.status().code(), StatusCode::kCorruption);

    AnySketch acc = hll_entry->make_default();
    Result<SketchView> view = SketchView::Wrap(bytes);
    ASSERT_TRUE(view.ok());
    const Status s = acc.MergeFromView(view.value());
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  }
}

TEST_F(WireTest, TypeConfusionIsCorruption) {
  // Feeding a valid envelope of type A to type B's typed Deserialize must
  // be detected from the envelope tag, for every registered type.
  for (const AnySketch& original : PopulatedRegisteredSketches()) {
    SCOPED_TRACE(original.type_name());
    const std::vector<uint8_t> bytes = original.Serialize();
    if (original.type() != SketchTypeId::kHyperLogLog) {
      Result<HyperLogLog> r = HyperLogLog::Deserialize(bytes);
      ASSERT_FALSE(r.ok());
      EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
    } else {
      Result<BloomFilter> r = BloomFilter::Deserialize(bytes);
      ASSERT_FALSE(r.ok());
      EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
    }
  }
}

TEST_F(WireTest, RetaggedTypeIdIsCorruption) {
  // Rewriting the type tag of a valid envelope (without fixing the
  // checksum) must fail the checksum, not reach the wrong parser.
  HyperLogLog hll(12);
  for (uint64_t i = 0; i < 100; ++i) hll.Update(i);
  std::vector<uint8_t> bytes = hll.Serialize();
  const auto kll_id = static_cast<uint16_t>(SketchTypeId::kKll);
  bytes[4] = static_cast<uint8_t>(kll_id & 0xFF);
  bytes[5] = static_cast<uint8_t>(kll_id >> 8);
  Result<AnySketch> r = SketchRegistry::Global().Deserialize(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST_F(WireTest, UnregisteredButValidTypeIdIsCorruption) {
  // kDyadicCountMin is a known wire id with no registered deserializer;
  // the registry cannot interpret such bytes and must say corruption.
  const std::vector<uint8_t> bytes =
      WrapEnvelope(SketchTypeId::kDyadicCountMin, {1, 2, 3});
  ASSERT_TRUE(ParseEnvelope(bytes).ok());  // The envelope itself is fine.
  Result<AnySketch> r = SketchRegistry::Global().Deserialize(bytes);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kCorruption);
}

TEST_F(WireTest, EmptyHandleOperationsFailCleanly) {
  AnySketch empty;
  EXPECT_FALSE(empty.has_value());
  EXPECT_STREQ(empty.type_name(), "empty");
  EXPECT_FALSE(empty.Update(1).ok());
  EXPECT_FALSE(empty.Merge(AnySketch()).ok());
  EXPECT_TRUE(empty.Serialize().empty());
}

TEST_F(WireTest, MergeRejectsMismatchedTypes) {
  const SketchRegistry::Entry* hll =
      SketchRegistry::Global().Find(SketchTypeId::kHyperLogLog);
  const SketchRegistry::Entry* kll =
      SketchRegistry::Global().Find(SketchTypeId::kKll);
  ASSERT_NE(hll, nullptr);
  ASSERT_NE(kll, nullptr);
  AnySketch a = hll->make_default();
  AnySketch b = kll->make_default();
  const Status s = a.Merge(b);
  ASSERT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST_F(WireTest, FindByNameMatchesTypeName) {
  for (SketchTypeId id : SketchRegistry::Global().RegisteredTypes()) {
    const SketchRegistry::Entry* by_id = SketchRegistry::Global().Find(id);
    ASSERT_NE(by_id, nullptr);
    EXPECT_EQ(by_id->name, SketchTypeName(id));
    EXPECT_EQ(SketchRegistry::Global().FindByName(by_id->name), by_id);
  }
}

}  // namespace
}  // namespace gems
