// Batch-equivalence suite for the hash-once ingest pipeline: every
// UpdateBatch / InsertBatch fast path must be observationally identical to
// per-item ingestion. "Identical" here is the strongest form the library
// can state — byte-identical Serialize() output — so any divergence in
// hashing, tie-breaking, compaction scheduling, or rng consumption shows
// up as a failure, not as a subtly different estimate.

#include <cstdint>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "cardinality/hllpp.h"
#include "cardinality/hyperloglog.h"
#include "cardinality/kmv.h"
#include "core/registry.h"
#include "frequency/count_min.h"
#include "frequency/count_sketch.h"
#include "frequency/misra_gries.h"
#include "frequency/space_saving.h"
#include "membership/blocked_bloom.h"
#include "membership/bloom.h"
#include "moments/ams.h"
#include "quantiles/kll.h"
#include "sampling/reservoir.h"
#include "similarity/minhash.h"
#include "workload/generators.h"

namespace gems {
namespace {

// A skewed stream: heavy duplication exercises SpaceSaving's run
// coalescing and KMV's dedup-with-eviction path, not just the hash loop.
std::vector<uint64_t> ZipfItems(size_t n, uint64_t seed) {
  ZipfGenerator gen(5000, 1.1, seed);
  std::vector<uint64_t> items;
  items.reserve(n);
  for (size_t i = 0; i < n; ++i) items.push_back(gen.Next());
  return items;
}

// Well-spread distinct-ish items (drive HLL++ across sparse -> dense).
std::vector<uint64_t> SpreadItems(size_t n) {
  std::vector<uint64_t> items;
  items.reserve(n);
  for (size_t i = 1; i <= n; ++i) items.push_back(i * 0x9E3779B97F4A7C15ull);
  return items;
}

// Feeds `items` through `fn` in ragged slices chosen to land below, at,
// and above the 256-item chunk the batch kernels use internally, so the
// chunk-boundary bookkeeping is exercised, not just one happy size.
template <typename T, typename Fn>
void FeedRagged(std::span<const T> items, Fn&& fn) {
  constexpr size_t kSlices[] = {1, 3, 255, 256, 257, 777};
  size_t round = 0;
  while (!items.empty()) {
    const size_t n = std::min(items.size(), kSlices[round++ % std::size(kSlices)]);
    fn(items.first(n));
    items = items.subspan(n);
  }
}

TEST(BatchEquivalence, HyperLogLog) {
  HyperLogLog batched(12, /*seed=*/7);
  HyperLogLog sequential(12, /*seed=*/7);
  const std::vector<uint64_t> items = ZipfItems(20000, 1);
  FeedRagged<uint64_t>(items, [&](auto s) { batched.UpdateBatch(s); });
  for (uint64_t item : items) sequential.Update(item);
  EXPECT_EQ(batched.Serialize(), sequential.Serialize());
}

TEST(BatchEquivalence, HllPlusPlusAcrossSparseToDense) {
  HllPlusPlus batched(14, /*seed=*/5);
  HllPlusPlus sequential(14, /*seed=*/5);
  // Enough distinct items that the sparse representation converts to dense
  // mid-batch; the batch path must hand off at exactly the same point.
  const std::vector<uint64_t> items = SpreadItems(60000);
  FeedRagged<uint64_t>(items, [&](auto s) { batched.UpdateBatch(s); });
  for (uint64_t item : items) sequential.Update(item);
  EXPECT_EQ(batched.Serialize(), sequential.Serialize());
}

TEST(BatchEquivalence, HllPlusPlusStaysSparse) {
  HllPlusPlus batched(14, /*seed=*/5);
  HllPlusPlus sequential(14, /*seed=*/5);
  const std::vector<uint64_t> items = ZipfItems(500, 2);
  FeedRagged<uint64_t>(items, [&](auto s) { batched.UpdateBatch(s); });
  for (uint64_t item : items) sequential.Update(item);
  EXPECT_EQ(batched.Serialize(), sequential.Serialize());
}

TEST(BatchEquivalence, Kmv) {
  KmvSketch batched(1024, /*seed=*/3);
  KmvSketch sequential(1024, /*seed=*/3);
  const std::vector<uint64_t> items = ZipfItems(30000, 4);
  FeedRagged<uint64_t>(items, [&](auto s) { batched.UpdateBatch(s); });
  for (uint64_t item : items) sequential.Update(item);
  EXPECT_EQ(batched.Serialize(), sequential.Serialize());
}

TEST(BatchEquivalence, CountMin) {
  CountMinSketch batched(2048, 4, /*seed=*/11);
  CountMinSketch sequential(2048, 4, /*seed=*/11);
  const std::vector<uint64_t> items = ZipfItems(20000, 6);
  FeedRagged<uint64_t>(items, [&](auto s) { batched.UpdateBatch(s); });
  for (uint64_t item : items) sequential.Update(item);
  EXPECT_EQ(batched.Serialize(), sequential.Serialize());
}

TEST(BatchEquivalence, CountMinWeighted) {
  CountMinSketch batched(2048, 4, /*seed=*/11);
  CountMinSketch sequential(2048, 4, /*seed=*/11);
  const std::vector<uint64_t> items = ZipfItems(5000, 7);
  std::vector<int64_t> weights;
  for (size_t i = 0; i < items.size(); ++i) {
    weights.push_back(static_cast<int64_t>(i % 17));
  }
  size_t offset = 0;
  FeedRagged<uint64_t>(items, [&](std::span<const uint64_t> s) {
    batched.UpdateBatch(s,
                        std::span<const int64_t>(weights).subspan(offset, s.size()));
    offset += s.size();
  });
  for (size_t i = 0; i < items.size(); ++i) {
    sequential.Update(items[i], weights[i]);
  }
  EXPECT_EQ(batched.Serialize(), sequential.Serialize());
}

// Conservative update is order-dependent, so UpdateBatch falls back to the
// per-item path — which must still be byte-identical by construction.
TEST(BatchEquivalence, CountMinConservativeFallback) {
  CountMinSketch batched(1024, 4, /*seed=*/13, /*conservative_update=*/true);
  CountMinSketch sequential(1024, 4, /*seed=*/13, /*conservative_update=*/true);
  const std::vector<uint64_t> items = ZipfItems(10000, 8);
  FeedRagged<uint64_t>(items, [&](auto s) { batched.UpdateBatch(s); });
  for (uint64_t item : items) sequential.Update(item);
  EXPECT_EQ(batched.Serialize(), sequential.Serialize());
}

TEST(BatchEquivalence, CountSketch) {
  CountSketch batched(2048, 5, /*seed=*/17);
  CountSketch sequential(2048, 5, /*seed=*/17);
  const std::vector<uint64_t> items = ZipfItems(20000, 9);
  FeedRagged<uint64_t>(items, [&](auto s) { batched.UpdateBatch(s); });
  for (uint64_t item : items) sequential.Update(item);
  EXPECT_EQ(batched.Serialize(), sequential.Serialize());
}

TEST(BatchEquivalence, CountSketchNegativeWeights) {
  CountSketch batched(2048, 5, /*seed=*/17);
  CountSketch sequential(2048, 5, /*seed=*/17);
  const std::vector<uint64_t> items = ZipfItems(5000, 10);
  std::vector<int64_t> weights;
  for (size_t i = 0; i < items.size(); ++i) {
    weights.push_back(static_cast<int64_t>(i % 7) - 3);  // Includes negatives.
  }
  size_t offset = 0;
  FeedRagged<uint64_t>(items, [&](std::span<const uint64_t> s) {
    batched.UpdateBatch(s,
                        std::span<const int64_t>(weights).subspan(offset, s.size()));
    offset += s.size();
  });
  for (size_t i = 0; i < items.size(); ++i) {
    sequential.Update(items[i], weights[i]);
  }
  EXPECT_EQ(batched.Serialize(), sequential.Serialize());
}

TEST(BatchEquivalence, SpaceSavingWithEvictions) {
  // Capacity far below the number of distinct items forces constant
  // evictions; the run-coalescing fast path must still match per-item.
  SpaceSaving batched(64);
  SpaceSaving sequential(64);
  const std::vector<uint64_t> items = ZipfItems(30000, 11);
  FeedRagged<uint64_t>(items, [&](auto s) { batched.UpdateBatch(s); });
  for (uint64_t item : items) sequential.Update(item);
  EXPECT_EQ(batched.Serialize(), sequential.Serialize());
}

TEST(BatchEquivalence, SpaceSavingWeighted) {
  SpaceSaving batched(64);
  SpaceSaving sequential(64);
  const std::vector<uint64_t> items = ZipfItems(8000, 12);
  std::vector<int64_t> weights;
  for (size_t i = 0; i < items.size(); ++i) {
    weights.push_back(1 + static_cast<int64_t>(i % 5));
  }
  size_t offset = 0;
  FeedRagged<uint64_t>(items, [&](std::span<const uint64_t> s) {
    batched.UpdateBatch(s,
                        std::span<const int64_t>(weights).subspan(offset, s.size()));
    offset += s.size();
  });
  for (size_t i = 0; i < items.size(); ++i) {
    sequential.Update(items[i], weights[i]);
  }
  EXPECT_EQ(batched.Serialize(), sequential.Serialize());
}

TEST(BatchEquivalence, MinHash) {
  MinHashSketch batched(128, /*seed=*/37);
  MinHashSketch sequential(128, /*seed=*/37);
  const std::vector<uint64_t> items = ZipfItems(20000, 20);
  FeedRagged<uint64_t>(items, [&](auto s) { batched.UpdateBatch(s); });
  for (uint64_t item : items) sequential.Update(item);
  EXPECT_EQ(batched.Serialize(), sequential.Serialize());
}

// Misra-Gries coalesces runs only when the update cannot reach the
// order-dependent decrement-all step; a capacity far below the number of
// distinct items keeps the table full so the fallback path runs constantly.
TEST(BatchEquivalence, MisraGriesWithDecrements) {
  MisraGries batched(32);
  MisraGries sequential(32);
  const std::vector<uint64_t> items = ZipfItems(30000, 21);
  FeedRagged<uint64_t>(items, [&](auto s) { batched.UpdateBatch(s); });
  for (uint64_t item : items) sequential.Update(item);
  EXPECT_EQ(batched.Serialize(), sequential.Serialize());
}

TEST(BatchEquivalence, MisraGriesNoEvictions) {
  // Capacity above the universe: every run takes the coalesced fast path.
  MisraGries batched(8192);
  MisraGries sequential(8192);
  const std::vector<uint64_t> items = ZipfItems(20000, 22);
  FeedRagged<uint64_t>(items, [&](auto s) { batched.UpdateBatch(s); });
  for (uint64_t item : items) sequential.Update(item);
  EXPECT_EQ(batched.Serialize(), sequential.Serialize());
}

TEST(BatchEquivalence, Ams) {
  AmsSketch batched(16, 5, /*seed=*/41);
  AmsSketch sequential(16, 5, /*seed=*/41);
  const std::vector<uint64_t> items = ZipfItems(10000, 23);
  FeedRagged<uint64_t>(items, [&](auto s) { batched.UpdateBatch(s); });
  for (uint64_t item : items) sequential.Update(item);
  EXPECT_EQ(batched.Serialize(), sequential.Serialize());
}

TEST(BatchEquivalence, AmsWeighted) {
  AmsSketch batched(16, 5, /*seed=*/41);
  AmsSketch sequential(16, 5, /*seed=*/41);
  const std::vector<uint64_t> items = ZipfItems(5000, 24);
  std::vector<int64_t> weights;
  for (size_t i = 0; i < items.size(); ++i) {
    weights.push_back(static_cast<int64_t>(i % 9) - 4);  // Includes negatives.
  }
  size_t offset = 0;
  FeedRagged<uint64_t>(items, [&](std::span<const uint64_t> s) {
    batched.UpdateBatch(s,
                        std::span<const int64_t>(weights).subspan(offset, s.size()));
    offset += s.size();
  });
  for (size_t i = 0; i < items.size(); ++i) {
    sequential.Update(items[i], weights[i]);
  }
  EXPECT_EQ(batched.Serialize(), sequential.Serialize());
}

// Batched queries must agree point-for-point with their scalar twins.
TEST(BatchEquivalence, CountMinEstimateBatch) {
  CountMinSketch sketch(2048, 4, /*seed=*/43);
  const std::vector<uint64_t> items = ZipfItems(20000, 25);
  sketch.UpdateBatch(items);
  const std::vector<uint64_t> queries = ZipfItems(3000, 26);
  std::vector<uint64_t> batched(queries.size());
  sketch.EstimateBatch(queries, batched.data());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(batched[i], sketch.Estimate(queries[i])) << i;
  }
}

TEST(BatchEquivalence, BloomMayContainBatch) {
  BloomFilter filter(1 << 16, 7, /*seed=*/47);
  const std::vector<uint64_t> items = ZipfItems(10000, 27);
  filter.InsertBatch(items);
  std::vector<uint64_t> queries = items;
  for (size_t i = 0; i < 5000; ++i) queries.push_back(i * 0xABCDEF12345ull);
  std::vector<uint8_t> batched(queries.size());
  filter.MayContainBatch(queries, batched.data());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(batched[i] != 0, filter.MayContain(queries[i])) << i;
  }
}

TEST(BatchEquivalence, BlockedBloomMayContainBatch) {
  BlockedBloomFilter filter(1 << 16, 8, /*seed=*/53);
  const std::vector<uint64_t> items = ZipfItems(10000, 28);
  filter.InsertBatch(items);
  std::vector<uint64_t> queries = items;
  for (size_t i = 0; i < 5000; ++i) queries.push_back(i * 0xFEDCBA9877ull);
  std::vector<uint8_t> batched(queries.size());
  filter.MayContainBatch(queries, batched.data());
  for (size_t i = 0; i < queries.size(); ++i) {
    EXPECT_EQ(batched[i] != 0, filter.MayContain(queries[i])) << i;
  }
}

TEST(BatchEquivalence, BloomFilter) {
  BloomFilter batched(1 << 16, 7, /*seed=*/19);
  BloomFilter sequential(1 << 16, 7, /*seed=*/19);
  const std::vector<uint64_t> items = ZipfItems(20000, 13);
  FeedRagged<uint64_t>(items, [&](auto s) { batched.InsertBatch(s); });
  for (uint64_t item : items) sequential.Insert(item);
  EXPECT_EQ(batched.Serialize(), sequential.Serialize());
}

TEST(BatchEquivalence, BlockedBloomFilter) {
  BlockedBloomFilter batched(1 << 16, 8, /*seed=*/23);
  BlockedBloomFilter sequential(1 << 16, 8, /*seed=*/23);
  const std::vector<uint64_t> items = ZipfItems(20000, 14);
  FeedRagged<uint64_t>(items, [&](auto s) { batched.InsertBatch(s); });
  for (uint64_t item : items) sequential.Insert(item);
  EXPECT_EQ(batched.Serialize(), sequential.Serialize());
}

// KLL compaction draws coin flips from the sketch rng, so byte equality
// requires the batch path to trigger compactions at exactly the same
// points and consume exactly the same random words.
TEST(BatchEquivalence, KllConsumesIdenticalRandomness) {
  KllSketch batched(200, /*seed=*/29);
  KllSketch sequential(200, /*seed=*/29);
  std::vector<double> values;
  for (size_t i = 0; i < 50000; ++i) {
    values.push_back(static_cast<double>((i * 2654435761u) % 100000));
  }
  FeedRagged<double>(values, [&](auto s) { batched.UpdateBatch(s); });
  for (double v : values) sequential.Update(v);
  EXPECT_EQ(batched.Serialize(), sequential.Serialize());
}

// Reservoir sampling is rng-driven after the fill phase; identical bytes
// prove the batch path draws the same bounded randoms in the same order.
TEST(BatchEquivalence, ReservoirConsumesIdenticalRandomness) {
  ReservoirSampler batched(100, /*seed=*/31);
  ReservoirSampler sequential(100, /*seed=*/31);
  const std::vector<uint64_t> items = ZipfItems(20000, 15);
  FeedRagged<uint64_t>(items, [&](auto s) { batched.UpdateBatch(s); });
  for (uint64_t item : items) sequential.Update(item);
  EXPECT_EQ(batched.Serialize(), sequential.Serialize());
}

// Type-erased dispatch: AnySketch::UpdateBatch must route to the concrete
// batch fast path (or the per-item fallback) and match per-item ingestion
// through the same handle, for every registered default-constructible type.
TEST(BatchEquivalence, AnySketchDispatchMatchesPerItem) {
  RegisterBuiltinSketches();
  const std::vector<uint64_t> items = ZipfItems(2000, 16);
  for (SketchTypeId id : SketchRegistry::Global().RegisteredTypes()) {
    const SketchRegistry::Entry* entry = SketchRegistry::Global().Find(id);
    if (entry == nullptr || !entry->make_default) continue;
    AnySketch batched = entry->make_default();
    AnySketch sequential = entry->make_default();
    // Keep items in-universe for every registered default (q-digest).
    std::vector<uint64_t> small;
    small.reserve(items.size());
    for (uint64_t item : items) small.push_back(item % (1u << 20));
    const Status bs = batched.UpdateBatch(small);
    bool updatable = true;
    for (uint64_t item : small) {
      const Status s = sequential.Update(item);
      if (!s.ok()) {
        updatable = false;
        break;
      }
    }
    if (!updatable) continue;  // Update-less types surface the same status.
    ASSERT_TRUE(bs.ok()) << entry->name << ": " << bs.ToString();
    EXPECT_EQ(batched.Serialize(), sequential.Serialize()) << entry->name;
  }
}

TEST(BatchEquivalence, AnySketchEmptyHandleFailsCleanly) {
  AnySketch empty;
  const uint64_t items[] = {1, 2, 3};
  const Status s = empty.UpdateBatch(items);
  EXPECT_EQ(s.code(), StatusCode::kFailedPrecondition);
}

}  // namespace
}  // namespace gems
