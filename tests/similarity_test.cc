#include <algorithm>
#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "common/numeric.h"
#include "common/random.h"
#include "core/summary.h"
#include "similarity/lsh.h"
#include "similarity/minhash.h"
#include "similarity/simhash.h"
#include "workload/generators.h"

namespace gems {
namespace {

static_assert(ItemSummary<MinHashSketch>);
static_assert(MergeableSummary<MinHashSketch>);
static_assert(SerializableSummary<MinHashSketch>);

// ---------------------------------------------------------------- MinHash

TEST(MinHashTest, IdenticalSetsHaveJaccardOne) {
  MinHashSketch a(128, 1), b(128, 1);
  for (uint64_t i = 0; i < 1000; ++i) {
    a.Update(i);
    b.Update(i);
  }
  auto j = a.Jaccard(b);
  ASSERT_TRUE(j.ok());
  EXPECT_DOUBLE_EQ(j.value(), 1.0);
}

TEST(MinHashTest, DisjointSetsHaveJaccardNearZero) {
  MinHashSketch a(128, 2), b(128, 2);
  for (uint64_t i = 0; i < 1000; ++i) a.Update(i);
  for (uint64_t i = 10000; i < 11000; ++i) b.Update(i);
  auto j = a.Jaccard(b);
  ASSERT_TRUE(j.ok());
  EXPECT_LT(j.value(), 0.05);
}

TEST(MinHashTest, JaccardEstimateTracksTruth) {
  // |A| = |B| = 1500, overlap 1000 -> J = 1000/2000 = 0.5.
  for (double overlap_fraction : {0.2, 0.5, 0.8}) {
    MinHashSketch a(256, 3), b(256, 3);
    const uint64_t total = 2000;
    const uint64_t shared =
        static_cast<uint64_t>(2 * total * overlap_fraction /
                              (1 + overlap_fraction));
    const uint64_t only = total - shared;
    for (uint64_t i = 0; i < shared; ++i) {
      a.Update(i);
      b.Update(i);
    }
    for (uint64_t i = 0; i < only; ++i) {
      a.Update(1000000 + i);
      b.Update(2000000 + i);
    }
    const double truth = static_cast<double>(shared) /
                         static_cast<double>(shared + 2 * only);
    auto j = a.Jaccard(b);
    ASSERT_TRUE(j.ok());
    EXPECT_NEAR(j.value(), truth, 3.0 / std::sqrt(256.0));
  }
}

TEST(MinHashTest, MergeIsSetUnion) {
  MinHashSketch a(64, 4), b(64, 4), u(64, 4);
  for (uint64_t i = 0; i < 500; ++i) {
    a.Update(i);
    u.Update(i);
  }
  for (uint64_t i = 500; i < 1000; ++i) {
    b.Update(i);
    u.Update(i);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.signature(), u.signature());
}

TEST(MinHashTest, MismatchedConfigsRejected) {
  MinHashSketch a(64, 0), b(128, 0), c(64, 1);
  EXPECT_FALSE(a.Jaccard(b).ok());
  EXPECT_FALSE(a.Merge(c).ok());
}

TEST(MinHashTest, SerializeRoundTrip) {
  MinHashSketch a(32, 5);
  for (uint64_t i = 0; i < 100; ++i) a.Update(i * 7);
  auto r = MinHashSketch::Deserialize(a.Serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().signature(), a.signature());
}

// ---------------------------------------------------------------- SimHash

TEST(SimHashTest, IdenticalVectorsZeroHamming) {
  SimHasher hasher(256, 1);
  Rng rng(2);
  std::vector<double> v(64);
  for (double& x : v) x = rng.NextGaussian();
  const auto s1 = hasher.Signature(v);
  const auto s2 = hasher.Signature(v);
  EXPECT_EQ(SimHasher::HammingDistance(s1, s2), 0u);
  EXPECT_NEAR(hasher.EstimateCosine(s1, s2), 1.0, 1e-9);
}

TEST(SimHashTest, OppositeVectorsMaxHamming) {
  SimHasher hasher(256, 3);
  Rng rng(4);
  std::vector<double> v(64), neg(64);
  for (size_t i = 0; i < 64; ++i) {
    v[i] = rng.NextGaussian();
    neg[i] = -v[i];
  }
  const auto s1 = hasher.Signature(v);
  const auto s2 = hasher.Signature(neg);
  EXPECT_GT(SimHasher::HammingDistance(s1, s2), 230u);
  EXPECT_LT(hasher.EstimateCosine(s1, s2), -0.8);
}

TEST(SimHashTest, CosineEstimateTracksTruth) {
  SimHasher hasher(512, 5);
  Rng rng(6);
  std::vector<double> errors;
  for (int trial = 0; trial < 30; ++trial) {
    std::vector<double> a(128), b(128);
    for (size_t i = 0; i < 128; ++i) a[i] = rng.NextGaussian();
    // b = alpha*a + noise for varying alpha -> varying cosine.
    const double alpha = 0.1 * trial;
    for (size_t i = 0; i < 128; ++i) {
      b[i] = alpha * a[i] + rng.NextGaussian();
    }
    const double truth = CosineSimilarity(a, b);
    const double estimate =
        hasher.EstimateCosine(hasher.Signature(a), hasher.Signature(b));
    errors.push_back(estimate - truth);
  }
  EXPECT_LT(Rms(errors), 0.12);
}

TEST(SimHashTest, CosineSimilarityBaseline) {
  EXPECT_DOUBLE_EQ(CosineSimilarity({1, 0}, {1, 0}), 1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({1, 0}, {0, 1}), 0.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({1, 0}, {-1, 0}), -1.0);
  EXPECT_DOUBLE_EQ(CosineSimilarity({0, 0}, {1, 0}), 0.0);
}

// -------------------------------------------------------------------- LSH

TEST(LshTest, ExactDuplicateAlwaysFound) {
  LshIndex index(16, 4, 1);
  MinHashSketch probe(64, 9);
  for (uint64_t i = 0; i < 500; ++i) probe.Update(i);
  ASSERT_TRUE(index.Insert(42, probe.signature()).ok());
  auto candidates = index.Query(probe.signature());
  ASSERT_TRUE(candidates.ok());
  ASSERT_EQ(candidates.value().size(), 1u);
  EXPECT_EQ(candidates.value()[0], 42u);
}

TEST(LshTest, SignatureLengthValidated) {
  LshIndex index(8, 4, 2);
  std::vector<uint64_t> wrong(31, 0);
  EXPECT_FALSE(index.Insert(1, wrong).ok());
  EXPECT_FALSE(index.Query(wrong).ok());
}

TEST(LshTest, CollisionProbabilityFormula) {
  LshIndex index(20, 5, 3);
  // s = 1 collides always; s = 0 never.
  EXPECT_NEAR(index.CollisionProbability(1.0), 1.0, 1e-12);
  EXPECT_NEAR(index.CollisionProbability(0.0), 0.0, 1e-12);
  // S-curve: steep between.
  EXPECT_LT(index.CollisionProbability(0.3), 0.1);
  EXPECT_GT(index.CollisionProbability(0.8), 0.9);
}

TEST(LshTest, SimilarSetsCollideDissimilarDont) {
  const uint32_t bands = 16, rows = 4;
  LshIndex index(bands, rows, 4);
  const uint64_t seed = 77;

  // Base set and a 90%-similar variant; plus an unrelated set.
  MinHashSketch base(bands * rows, seed), similar(bands * rows, seed),
      unrelated(bands * rows, seed);
  for (uint64_t i = 0; i < 1000; ++i) {
    base.Update(i);
    if (i >= 50) similar.Update(i);  // ~0.95 Jaccard.
    unrelated.Update(1000000 + i);
  }
  ASSERT_TRUE(index.Insert(1, similar.signature()).ok());
  ASSERT_TRUE(index.Insert(2, unrelated.signature()).ok());
  auto candidates = index.Query(base.signature());
  ASSERT_TRUE(candidates.ok());
  const std::set<uint64_t> found(candidates.value().begin(),
                                 candidates.value().end());
  EXPECT_TRUE(found.contains(1));
  EXPECT_FALSE(found.contains(2));
}

TEST(LshTest, RecallFollowsSCurve) {
  // Empirical candidate rate at a given similarity should be within noise
  // of 1 - (1 - s^r)^b.
  const uint32_t bands = 8, rows = 4;
  const uint64_t seed = 99;
  const double target_similarity = 0.7;
  int collisions = 0;
  const int trials = 150;
  for (int t = 0; t < trials; ++t) {
    LshIndex index(bands, rows, 500 + t);
    MinHashSketch a(bands * rows, seed + t), b(bands * rows, seed + t);
    // Construct sets with Jaccard ~ target: shared s/(2-s) fraction.
    const uint64_t total = 800;
    const uint64_t shared = static_cast<uint64_t>(
        total * 2 * target_similarity / (1 + target_similarity));
    for (uint64_t i = 0; i < shared; ++i) {
      a.Update(i);
      b.Update(i);
    }
    for (uint64_t i = shared; i < total; ++i) {
      a.Update(100000 + i);
      b.Update(200000 + i);
    }
    ASSERT_TRUE(index.Insert(7, a.signature()).ok());
    auto candidates = index.Query(b.signature());
    ASSERT_TRUE(candidates.ok());
    if (!candidates.value().empty()) ++collisions;
  }
  const double empirical = static_cast<double>(collisions) / trials;
  LshIndex reference(bands, rows, 0);
  const double predicted = reference.CollisionProbability(target_similarity);
  EXPECT_NEAR(empirical, predicted, 0.15);
}

TEST(LshTest, BucketEntriesAccounting) {
  LshIndex index(4, 2, 5);
  std::vector<uint64_t> sig(8, 1);
  ASSERT_TRUE(index.Insert(1, sig).ok());
  ASSERT_TRUE(index.Insert(2, sig).ok());
  EXPECT_EQ(index.NumItems(), 2u);
  EXPECT_EQ(index.NumBucketEntries(), 8u);  // 2 items x 4 bands.
}

}  // namespace
}  // namespace gems
