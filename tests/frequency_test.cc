#include <algorithm>
#include <cmath>
#include <cstdint>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "core/summary.h"
#include "frequency/count_min.h"
#include "frequency/count_sketch.h"
#include "frequency/dyadic_count_min.h"
#include "frequency/majority.h"
#include "frequency/misra_gries.h"
#include "frequency/space_saving.h"
#include "workload/baselines.h"
#include "workload/generators.h"
#include "workload/metrics.h"

namespace gems {
namespace {

static_assert(WeightedItemSummary<CountMinSketch>);
static_assert(MergeableSummary<CountMinSketch>);
static_assert(WeightedItemSummary<CountSketch>);
static_assert(MergeableSummary<MisraGries>);
static_assert(MergeableSummary<SpaceSaving>);
static_assert(SerializableSummary<CountMinSketch>);
static_assert(SerializableSummary<MisraGries>);
static_assert(SerializableSummary<SpaceSaving>);

// --------------------------------------------------------------- CountMin

TEST(CountMinTest, NeverUnderestimates) {
  CountMinSketch cm(256, 4, 1);
  ExactFrequencies exact;
  ZipfGenerator zipf(10000, 1.1, 1);
  for (int i = 0; i < 50000; ++i) {
    const uint64_t item = zipf.Next();
    cm.Update(item);
    exact.Update(item);
  }
  for (const auto& [item, count] : exact.TopK(200)) {
    EXPECT_GE(cm.Estimate(item), static_cast<uint64_t>(count));
  }
}

TEST(CountMinTest, ErrorWithinL1Bound) {
  // eps = e/width; estimate <= true + eps*N with prob 1-delta (~1-e^-4).
  const uint32_t width = 512;
  CountMinSketch cm(width, 4, 2);
  ExactFrequencies exact;
  ZipfGenerator zipf(100000, 1.0, 2);
  const int64_t n = 100000;
  for (int64_t i = 0; i < n; ++i) {
    const uint64_t item = zipf.Next();
    cm.Update(item);
    exact.Update(item);
  }
  const double eps = std::exp(1.0) / width;
  int violations = 0;
  int checked = 0;
  for (const auto& [item, count] : exact.TopK(500)) {
    ++checked;
    if (cm.Estimate(item) >
        static_cast<uint64_t>(count) + static_cast<uint64_t>(eps * n)) {
      ++violations;
    }
  }
  EXPECT_LE(violations, checked / 20);
}

TEST(CountMinTest, ExactWhenNoCollisions) {
  CountMinSketch cm(4096, 4, 3);
  for (uint64_t item = 0; item < 10; ++item) cm.Update(item, item + 1);
  for (uint64_t item = 0; item < 10; ++item) {
    EXPECT_EQ(cm.Estimate(item), item + 1);
  }
  EXPECT_EQ(cm.Estimate(9999), 0u);
}

TEST(CountMinTest, WeightedUpdates) {
  CountMinSketch cm(1024, 4, 4);
  cm.Update(5, 1000);
  cm.Update(5, 234);
  EXPECT_GE(cm.Estimate(5), 1234u);
  EXPECT_EQ(cm.TotalWeight(), 1234);
}

TEST(CountMinTest, ForGuaranteeDimensions) {
  CountMinSketch cm = CountMinSketch::ForGuarantee(0.01, 0.01, 0);
  EXPECT_GE(cm.width(), 271u);  // e/0.01 ~ 271.8.
  EXPECT_GE(cm.depth(), 4u);    // ln(100) ~ 4.6.
}

TEST(CountMinTest, ConservativeUpdateNeverWorse) {
  CountMinSketch plain(128, 4, 5);
  CountMinSketch conservative(128, 4, 5, /*conservative_update=*/true);
  ExactFrequencies exact;
  ZipfGenerator zipf(5000, 1.1, 5);
  for (int i = 0; i < 30000; ++i) {
    const uint64_t item = zipf.Next();
    plain.Update(item);
    conservative.Update(item);
    exact.Update(item);
  }
  double plain_err = 0, cons_err = 0;
  int underestimates = 0;
  for (const auto& [item, count] : exact.TopK(300)) {
    plain_err += static_cast<double>(plain.Estimate(item)) - count;
    cons_err +=
        static_cast<double>(conservative.Estimate(item)) - count;
    if (conservative.Estimate(item) < static_cast<uint64_t>(count)) {
      ++underestimates;
    }
  }
  EXPECT_LE(cons_err, plain_err);
  EXPECT_EQ(underestimates, 0);  // Conservative update stays one-sided.
}

TEST(CountMinTest, EstimateWithBoundsIntervalContainsTruth) {
  CountMinSketch cm(64, 4, 6);
  ExactFrequencies exact;
  ZipfGenerator zipf(1000, 1.0, 6);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t item = zipf.Next();
    cm.Update(item);
    exact.Update(item);
  }
  for (const auto& [item, count] : exact.TopK(50)) {
    Estimate e = cm.EstimateWithBounds(item);
    EXPECT_LE(e.lower, static_cast<double>(count));
    EXPECT_GE(e.upper + 1e-9, static_cast<double>(count));
  }
}

TEST(CountMinTest, InnerProductApproximatesDot) {
  CountMinSketch a(2048, 5, 7), b(2048, 5, 7);
  ExactFrequencies ea, eb;
  ZipfGenerator za(500, 1.0, 8), zb(500, 1.0, 9);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t x = za.Next(), y = zb.Next();
    a.Update(x);
    ea.Update(x);
    b.Update(y);
    eb.Update(y);
  }
  double truth = 0;
  for (const auto& [item, count] : ea.TopK(500)) {
    truth += static_cast<double>(count) * eb.Count(item);
  }
  auto estimate = a.InnerProduct(b);
  ASSERT_TRUE(estimate.ok());
  EXPECT_GE(estimate.value(), truth * 0.99);
  EXPECT_LE(estimate.value(), truth + 2.72 / 2048 * 20000.0 * 20000.0);
}

TEST(CountMinTest, CountMeanMinBeatsMinOnTail) {
  CountMinSketch cm(256, 5, 40);
  ExactFrequencies exact;
  ZipfGenerator zipf(50000, 1.1, 40);
  for (int i = 0; i < 100000; ++i) {
    const uint64_t item = zipf.Next();
    cm.Update(item);
    exact.Update(item);
  }
  const auto top = exact.TopK(2000);
  double min_err = 0, cmm_err = 0;
  int counted = 0;
  for (size_t rank = 500; rank < top.size(); ++rank) {  // Tail items.
    const auto& [item, count] = top[rank];
    min_err +=
        std::abs(static_cast<double>(cm.Estimate(item)) - count);
    cmm_err += std::abs(
        static_cast<double>(cm.EstimateCountMeanMin(item)) - count);
    ++counted;
  }
  ASSERT_GT(counted, 0);
  EXPECT_LT(cmm_err, min_err);
}

TEST(CountMinTest, CountMeanMinStaysInEnvelope) {
  CountMinSketch cm(64, 4, 41);
  ZipfGenerator zipf(1000, 1.0, 41);
  for (int i = 0; i < 20000; ++i) cm.Update(zipf.Next());
  for (uint64_t item = 0; item < 200; ++item) {
    const int64_t cmm = cm.EstimateCountMeanMin(item);
    EXPECT_GE(cmm, 0);
    EXPECT_LE(cmm, static_cast<int64_t>(cm.Estimate(item)));
  }
}

TEST(CountMinTest, MergeEqualsSingleStream) {
  CountMinSketch a(256, 4, 10), b(256, 4, 10), whole(256, 4, 10);
  ZipfGenerator zipf(2000, 1.1, 10);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t item = zipf.Next();
    whole.Update(item);
    (i % 2 == 0 ? a : b).Update(item);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  for (uint64_t item = 0; item < 100; ++item) {
    EXPECT_EQ(a.Estimate(item), whole.Estimate(item));
  }
  EXPECT_EQ(a.TotalWeight(), whole.TotalWeight());
}

TEST(CountMinTest, SerializeRoundTrip) {
  CountMinSketch cm(128, 4, 11);
  ZipfGenerator zipf(1000, 1.2, 11);
  for (int i = 0; i < 5000; ++i) cm.Update(zipf.Next());
  auto r = CountMinSketch::Deserialize(cm.Serialize());
  ASSERT_TRUE(r.ok());
  for (uint64_t item = 0; item < 50; ++item) {
    EXPECT_EQ(r.value().Estimate(item), cm.Estimate(item));
  }
}

TEST(CountMinHeavyHittersTest, FindsTopItems) {
  CountMinHeavyHitters hh(1024, 4, 20, 12);
  ExactFrequencies exact;
  ZipfGenerator zipf(10000, 1.3, 12);
  for (int i = 0; i < 100000; ++i) {
    const uint64_t item = zipf.Next();
    hh.Update(item);
    exact.Update(item);
  }
  std::vector<uint64_t> truth;
  for (const auto& [item, count] : exact.TopK(10)) truth.push_back(item);
  std::vector<uint64_t> retrieved;
  for (const auto& [item, count] : hh.TopK()) retrieved.push_back(item);
  RetrievalQuality q = CompareSets(retrieved, truth);
  EXPECT_GE(q.recall, 0.9);
}

// ---------------------------------------------------- blocked layout (CM)

TEST(CountMinBlockedTest, NeverUnderestimatesAndBoundHolds) {
  const uint32_t width = 512;
  CountMinSketch cm(width, 4, 2, /*conservative_update=*/false,
                    SketchLayout::kBlocked);
  ASSERT_EQ(cm.layout(), SketchLayout::kBlocked);
  ASSERT_EQ(cm.width() % cm.block_cols(), 0u);
  ExactFrequencies exact;
  ZipfGenerator zipf(100000, 1.0, 2);
  const int64_t n = 100000;
  for (int64_t i = 0; i < n; ++i) {
    const uint64_t item = zipf.Next();
    cm.Update(item);
    exact.Update(item);
  }
  const double eps = std::exp(1.0) / width;
  int violations = 0;
  int checked = 0;
  for (const auto& [item, count] : exact.TopK(500)) {
    ++checked;
    EXPECT_GE(cm.Estimate(item), static_cast<uint64_t>(count));
    if (cm.Estimate(item) >
        static_cast<uint64_t>(count) + static_cast<uint64_t>(eps * n)) {
      ++violations;
    }
  }
  // The blocked rows share one 64-bit hash draw, so they are not
  // independent; the per-row Markov bound still holds but the failure
  // probability no longer compounds across rows — allow a looser tail
  // than the flat test's checked/20.
  EXPECT_LE(violations, checked / 10);
}

TEST(CountMinBlockedTest, BatchMatchesPerItemBitExactly) {
  CountMinSketch per_item(1024, 4, 7, false, SketchLayout::kBlocked);
  CountMinSketch batched(1024, 4, 7, false, SketchLayout::kBlocked);
  const std::vector<uint64_t> items =
      ZipfGenerator(5000, 1.1, 7).Take(20000);
  for (uint64_t item : items) per_item.Update(item);
  batched.UpdateBatch(items);
  EXPECT_EQ(per_item.counters(), batched.counters());

  CountMinSketch weighted_per(1024, 4, 7, false, SketchLayout::kBlocked);
  CountMinSketch weighted_bat(1024, 4, 7, false, SketchLayout::kBlocked);
  std::vector<int64_t> weights(items.size());
  for (size_t i = 0; i < weights.size(); ++i) {
    weights[i] = static_cast<int64_t>(i % 5) + 1;
  }
  for (size_t i = 0; i < items.size(); ++i) {
    weighted_per.Update(items[i], weights[i]);
  }
  weighted_bat.UpdateBatch(items, weights);
  EXPECT_EQ(weighted_per.counters(), weighted_bat.counters());
}

TEST(CountMinBlockedTest, SerializeRoundTripThroughFlatWire) {
  CountMinSketch cm(128, 4, 11, false, SketchLayout::kBlocked);
  ZipfGenerator zipf(1000, 1.2, 11);
  for (int i = 0; i < 5000; ++i) cm.Update(zipf.Next());
  const std::vector<uint8_t> bytes = cm.Serialize();
  auto r = CountMinSketch::Deserialize(bytes);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().layout(), SketchLayout::kBlocked);
  for (uint64_t item = 0; item < 200; ++item) {
    EXPECT_EQ(r.value().Estimate(item), cm.Estimate(item));
  }
  // The wire bytes are canonical: restoring and re-serializing reproduces
  // them exactly (the counters crossed the flat permutation twice).
  EXPECT_EQ(r.value().Serialize(), bytes);
}

TEST(CountMinBlockedTest, MergeEqualsSingleStream) {
  CountMinSketch a(256, 4, 10, false, SketchLayout::kBlocked);
  CountMinSketch b(256, 4, 10, false, SketchLayout::kBlocked);
  CountMinSketch whole(256, 4, 10, false, SketchLayout::kBlocked);
  ZipfGenerator zipf(2000, 1.1, 10);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t item = zipf.Next();
    whole.Update(item);
    (i % 2 == 0 ? a : b).Update(item);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  for (uint64_t item = 0; item < 100; ++item) {
    EXPECT_EQ(a.Estimate(item), whole.Estimate(item));
  }
  EXPECT_EQ(a.counters(), whole.counters());
}

TEST(CountMinBlockedTest, MergeFromViewMatchesMerge) {
  CountMinSketch acc(256, 4, 21, false, SketchLayout::kBlocked);
  CountMinSketch peer(256, 4, 21, false, SketchLayout::kBlocked);
  ZipfGenerator zipf(3000, 1.1, 21);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t item = zipf.Next();
    (i % 2 == 0 ? acc : peer).Update(item);
  }
  CountMinSketch by_merge = acc;
  const std::vector<uint8_t> bytes = peer.Serialize();
  Result<View<CountMinSketch>> view = View<CountMinSketch>::Wrap(bytes);
  ASSERT_TRUE(view.ok());
  ASSERT_TRUE(acc.MergeFromView(view.value()).ok());
  ASSERT_TRUE(by_merge.Merge(peer).ok());
  EXPECT_EQ(acc.counters(), by_merge.counters());
}

TEST(CountMinBlockedTest, MergeRejectsLayoutMismatch) {
  CountMinSketch flat(256, 4, 9);
  CountMinSketch blocked(256, 4, 9, false, SketchLayout::kBlocked);
  ASSERT_EQ(flat.width(), blocked.width());  // Same shape, same seed.
  EXPECT_EQ(flat.Merge(blocked).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(blocked.Merge(flat).code(), StatusCode::kInvalidArgument);
  // And through the wire: a blocked envelope cannot land in a flat
  // accumulator.
  const std::vector<uint8_t> bytes = blocked.Serialize();
  Result<View<CountMinSketch>> view = View<CountMinSketch>::Wrap(bytes);
  ASSERT_TRUE(view.ok());
  EXPECT_EQ(flat.MergeFromView(view.value()).code(),
            StatusCode::kInvalidArgument);
}

TEST(CountMinBlockedTest, ConservativeUpdateNeverWorse) {
  CountMinSketch plain(128, 4, 5, false, SketchLayout::kBlocked);
  CountMinSketch conservative(128, 4, 5, /*conservative_update=*/true,
                              SketchLayout::kBlocked);
  ExactFrequencies exact;
  ZipfGenerator zipf(5000, 1.1, 5);
  for (int i = 0; i < 30000; ++i) {
    const uint64_t item = zipf.Next();
    plain.Update(item);
    conservative.Update(item);
    exact.Update(item);
  }
  double plain_err = 0, cons_err = 0;
  int underestimates = 0;
  for (const auto& [item, count] : exact.TopK(300)) {
    plain_err += static_cast<double>(plain.Estimate(item)) - count;
    cons_err += static_cast<double>(conservative.Estimate(item)) - count;
    if (conservative.Estimate(item) < static_cast<uint64_t>(count)) {
      ++underestimates;
    }
  }
  EXPECT_LE(cons_err, plain_err);
  EXPECT_EQ(underestimates, 0);
}

// --------------------------------------------------- blocked layout (CS)

TEST(CountSketchBlockedTest, AccurateOnSkewedData) {
  CountSketch cs(1024, 5, 3, SketchLayout::kBlocked);
  ASSERT_EQ(cs.layout(), SketchLayout::kBlocked);
  ExactFrequencies exact;
  ZipfGenerator zipf(10000, 1.3, 3);
  for (int i = 0; i < 100000; ++i) {
    const uint64_t item = zipf.Next();
    cs.Update(item);
    exact.Update(item);
  }
  double mae = 0;
  int checked = 0;
  for (const auto& [item, count] : exact.TopK(50)) {
    mae += std::abs(static_cast<double>(cs.Estimate(item)) - count);
    ++checked;
  }
  mae /= checked;
  // Head items on a 1.3-skew stream are thousands strong; the blocked
  // sketch must still resolve them within a small additive error. The
  // bound is looser than a flat sketch would need: at depth 5 every row
  // shares the one block hash (one column per row), so collisions repeat
  // across rows and the median removes less noise.
  EXPECT_LE(mae, 300.0);
}

TEST(CountSketchBlockedTest, BatchMatchesPerItemBitExactly) {
  CountSketch per_item(512, 4, 13, SketchLayout::kBlocked);
  CountSketch batched(512, 4, 13, SketchLayout::kBlocked);
  const std::vector<uint64_t> items =
      ZipfGenerator(5000, 1.1, 13).Take(20000);
  for (uint64_t item : items) per_item.Update(item);
  batched.UpdateBatch(items);
  for (uint64_t item = 0; item < 200; ++item) {
    EXPECT_EQ(per_item.Estimate(item), batched.Estimate(item));
  }
  EXPECT_EQ(per_item.Serialize(), batched.Serialize());
}

TEST(CountSketchBlockedTest, SerializeRoundTripAndMerge) {
  CountSketch a(128, 4, 19, SketchLayout::kBlocked);
  CountSketch b(128, 4, 19, SketchLayout::kBlocked);
  CountSketch whole(128, 4, 19, SketchLayout::kBlocked);
  ZipfGenerator zipf(2000, 1.1, 19);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t item = zipf.Next();
    whole.Update(item);
    (i % 2 == 0 ? a : b).Update(item);
  }
  const std::vector<uint8_t> bytes = a.Serialize();
  auto r = CountSketch::Deserialize(bytes);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().layout(), SketchLayout::kBlocked);
  EXPECT_EQ(r.value().Serialize(), bytes);
  ASSERT_TRUE(a.Merge(b).ok());
  for (uint64_t item = 0; item < 100; ++item) {
    EXPECT_EQ(a.Estimate(item), whole.Estimate(item));
  }
  // Layout mismatch is rejected before any counter moves.
  CountSketch flat(128, 4, 19);
  EXPECT_EQ(flat.Merge(whole).code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------------ CountSketch

TEST(CountSketchTest, UnbiasedNearZeroForAbsent) {
  CountSketch cs(1024, 5, 13);
  ZipfGenerator zipf(1000, 1.1, 13);
  for (int i = 0; i < 20000; ++i) cs.Update(zipf.Next());
  // An absent item should estimate near zero relative to N.
  EXPECT_LT(std::abs(cs.Estimate(0xDEADBEEFCAFEULL)), 2000);
}

TEST(CountSketchTest, SupportsNegativeUpdatesExactCancellation) {
  CountSketch cs(256, 5, 14);
  cs.Update(7, 100);
  cs.Update(7, -100);
  EXPECT_EQ(cs.Estimate(7), 0);
}

TEST(CountSketchTest, AccurateOnSkewedData) {
  CountSketch cs(2048, 5, 15);
  ExactFrequencies exact;
  ZipfGenerator zipf(100000, 1.3, 15);
  const int n = 200000;
  for (int i = 0; i < n; ++i) {
    const uint64_t item = zipf.Next();
    cs.Update(item);
    exact.Update(item);
  }
  for (const auto& [item, count] : exact.TopK(20)) {
    EXPECT_NEAR(static_cast<double>(cs.Estimate(item)),
                static_cast<double>(count), 0.15 * count + 50);
  }
}

TEST(CountSketchTest, BeatsCountMinOnHighSkew) {
  // The E3 headline: with equal space, Count sketch's L2 guarantee wins on
  // skewed streams for mid-frequency items.
  const int n = 200000;
  CountSketch cs(512, 5, 16);
  CountMinSketch cm(512, 5, 16);
  ExactFrequencies exact;
  ZipfGenerator zipf(100000, 1.4, 16);
  for (int i = 0; i < n; ++i) {
    const uint64_t item = zipf.Next();
    cs.Update(item);
    cm.Update(item);
    exact.Update(item);
  }
  double cs_err = 0, cm_err = 0;
  const auto top = exact.TopK(500);
  for (size_t rank = 100; rank < top.size(); ++rank) {  // Mid-tail items.
    const auto& [item, count] = top[rank];
    cs_err += std::abs(static_cast<double>(cs.Estimate(item)) - count);
    cm_err += std::abs(static_cast<double>(cm.Estimate(item)) - count);
  }
  EXPECT_LT(cs_err, cm_err);
}

TEST(CountSketchTest, F2EstimateMatchesExact) {
  CountSketch cs(4096, 5, 17);
  ExactFrequencies exact;
  ZipfGenerator zipf(10000, 1.1, 17);
  for (int i = 0; i < 100000; ++i) {
    const uint64_t item = zipf.Next();
    cs.Update(item);
    exact.Update(item);
  }
  EXPECT_NEAR(cs.EstimateF2(), exact.F2(), 0.1 * exact.F2());
}

TEST(CountSketchTest, MergeEqualsSingleStream) {
  CountSketch a(256, 5, 18), b(256, 5, 18), whole(256, 5, 18);
  ZipfGenerator zipf(2000, 1.1, 18);
  for (int i = 0; i < 20000; ++i) {
    const uint64_t item = zipf.Next();
    whole.Update(item);
    (i % 2 == 0 ? a : b).Update(item);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  for (uint64_t item = 0; item < 100; ++item) {
    EXPECT_EQ(a.Estimate(item), whole.Estimate(item));
  }
}

TEST(CountSketchTest, SerializeRoundTrip) {
  CountSketch cs(128, 3, 19);
  cs.Update(1, 10);
  cs.Update(2, -5);
  auto r = CountSketch::Deserialize(cs.Serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().Estimate(1), cs.Estimate(1));
  EXPECT_EQ(r.value().Estimate(2), cs.Estimate(2));
}

// ------------------------------------------------------------- MisraGries

TEST(MisraGriesTest, NeverOverestimates) {
  MisraGries mg(100);
  ExactFrequencies exact;
  ZipfGenerator zipf(10000, 1.2, 20);
  for (int i = 0; i < 50000; ++i) {
    const uint64_t item = zipf.Next();
    mg.Update(item);
    exact.Update(item);
  }
  for (const auto& [item, count] : mg.Entries()) {
    EXPECT_LE(count, exact.Count(item));
  }
}

TEST(MisraGriesTest, UndercountBoundedByNOverK) {
  const size_t k = 100;
  MisraGries mg(k);
  ExactFrequencies exact;
  ZipfGenerator zipf(10000, 1.2, 21);
  const int64_t n = 50000;
  for (int64_t i = 0; i < n; ++i) {
    const uint64_t item = zipf.Next();
    mg.Update(item);
    exact.Update(item);
  }
  EXPECT_LE(mg.ErrorBound(), n / static_cast<int64_t>(k) + 1);
  for (const auto& [item, count] : exact.TopK(20)) {
    EXPECT_GE(mg.Estimate(item) + mg.ErrorBound(), count);
  }
}

TEST(MisraGriesTest, GuaranteedRecallOfHeavyItems) {
  MisraGries mg(99);  // k-1 counters for k = 100 -> catches > N/100 items.
  ExactFrequencies exact;
  ZipfGenerator zipf(100000, 1.5, 22);
  const int64_t n = 100000;
  for (int64_t i = 0; i < n; ++i) {
    const uint64_t item = zipf.Next();
    mg.Update(item);
    exact.Update(item);
  }
  const double phi = 0.01;
  const auto truth = exact.ItemsAbove(static_cast<int64_t>(phi * n) + 1);
  const auto candidates = mg.HeavyHitterCandidates(phi);
  RetrievalQuality q = CompareSets(candidates, truth);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);  // No false negatives, ever.
}

TEST(MisraGriesTest, WeightedUpdates) {
  MisraGries mg(10);
  mg.Update(1, 100);
  mg.Update(2, 50);
  EXPECT_EQ(mg.Estimate(1), 100);
  EXPECT_EQ(mg.Estimate(2), 50);
  EXPECT_EQ(mg.TotalWeight(), 150);
}

TEST(MisraGriesTest, EvictionPath) {
  MisraGries mg(2);
  mg.Update(1, 5);
  mg.Update(2, 3);
  mg.Update(3, 4);  // Decrements all by 3: {1:2, 3:1}.
  EXPECT_EQ(mg.Estimate(1), 2);
  EXPECT_EQ(mg.Estimate(2), 0);
  EXPECT_EQ(mg.Estimate(3), 1);
  EXPECT_EQ(mg.ErrorBound(), 3);
}

TEST(MisraGriesTest, MergePreservesGuarantees) {
  MisraGries a(50), b(50);
  ExactFrequencies exact;
  ZipfGenerator za(5000, 1.3, 23), zb(5000, 1.3, 24);
  const int64_t n = 40000;
  for (int64_t i = 0; i < n / 2; ++i) {
    uint64_t x = za.Next(), y = zb.Next();
    a.Update(x);
    exact.Update(x);
    b.Update(y);
    exact.Update(y);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_LE(a.NumTracked(), 50u);
  // Still never overestimates, and undercount stays bounded.
  for (const auto& [item, count] : a.Entries()) {
    EXPECT_LE(count, exact.Count(item));
  }
  for (const auto& [item, count] : exact.TopK(10)) {
    EXPECT_GE(a.Estimate(item) + a.ErrorBound(), count);
  }
}

TEST(MisraGriesTest, SerializeRoundTrip) {
  MisraGries mg(20);
  ZipfGenerator zipf(100, 1.0, 25);
  for (int i = 0; i < 1000; ++i) mg.Update(zipf.Next());
  auto r = MisraGries::Deserialize(mg.Serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().Entries(), mg.Entries());
  EXPECT_EQ(r.value().ErrorBound(), mg.ErrorBound());
}

// ------------------------------------------------------------ SpaceSaving

TEST(SpaceSavingTest, AlwaysOverestimatesWithBoundedError) {
  SpaceSaving ss(100);
  ExactFrequencies exact;
  ZipfGenerator zipf(10000, 1.2, 26);
  const int64_t n = 50000;
  for (int64_t i = 0; i < n; ++i) {
    const uint64_t item = zipf.Next();
    ss.Update(item);
    exact.Update(item);
  }
  for (const auto& entry : ss.Entries()) {
    const int64_t truth = exact.Count(entry.item);
    EXPECT_GE(entry.count, truth);
    EXPECT_LE(entry.count - truth, entry.error);
    EXPECT_LE(entry.error, n / 100);
  }
}

TEST(SpaceSavingTest, TopKMatchesTruthOnSkewedStream) {
  SpaceSaving ss(200);
  ExactFrequencies exact;
  ZipfGenerator zipf(100000, 1.4, 27);
  for (int i = 0; i < 200000; ++i) {
    const uint64_t item = zipf.Next();
    ss.Update(item);
    exact.Update(item);
  }
  std::vector<uint64_t> truth, retrieved;
  for (const auto& [item, count] : exact.TopK(20)) truth.push_back(item);
  for (const auto& entry : ss.TopK(20)) retrieved.push_back(entry.item);
  RetrievalQuality q = CompareSets(retrieved, truth);
  EXPECT_GE(q.recall, 0.9);
}

TEST(SpaceSavingTest, GuaranteedExactFlagIsSound) {
  SpaceSaving ss(50);
  ExactFrequencies exact;
  ZipfGenerator zipf(2000, 1.3, 28);
  for (int i = 0; i < 30000; ++i) {
    const uint64_t item = zipf.Next();
    ss.Update(item);
    exact.Update(item);
  }
  for (const auto& entry : ss.Entries()) {
    if (ss.IsGuaranteedExact(entry.item)) {
      EXPECT_EQ(entry.count, exact.Count(entry.item));
    }
  }
}

TEST(SpaceSavingTest, CapacityIsRespected) {
  SpaceSaving ss(10);
  for (uint64_t item = 0; item < 1000; ++item) ss.Update(item);
  EXPECT_EQ(ss.NumTracked(), 10u);
  EXPECT_EQ(ss.TotalWeight(), 1000);
}

TEST(SpaceSavingTest, HeavyHitterRecallIsPerfect) {
  SpaceSaving ss(1000);  // capacity 1/phi with phi = 0.001.
  ExactFrequencies exact;
  ZipfGenerator zipf(100000, 1.2, 29);
  const int64_t n = 200000;
  for (int64_t i = 0; i < n; ++i) {
    const uint64_t item = zipf.Next();
    ss.Update(item);
    exact.Update(item);
  }
  const double phi = 0.001;
  const auto truth = exact.ItemsAbove(static_cast<int64_t>(phi * n) + 1);
  RetrievalQuality q = CompareSets(ss.HeavyHitterCandidates(phi), truth);
  EXPECT_DOUBLE_EQ(q.recall, 1.0);
}

TEST(SpaceSavingTest, MergeKeepsOverestimateProperty) {
  SpaceSaving a(100), b(100);
  ExactFrequencies exact;
  ZipfGenerator za(5000, 1.3, 30), zb(5000, 1.3, 31);
  for (int i = 0; i < 20000; ++i) {
    uint64_t x = za.Next(), y = zb.Next();
    a.Update(x);
    exact.Update(x);
    b.Update(y);
    exact.Update(y);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_LE(a.NumTracked(), 100u);
  for (const auto& entry : a.TopK(20)) {
    EXPECT_GE(entry.count, exact.Count(entry.item));
  }
}

TEST(SpaceSavingTest, SerializeRoundTrip) {
  SpaceSaving ss(30);
  ZipfGenerator zipf(500, 1.1, 32);
  for (int i = 0; i < 5000; ++i) ss.Update(zipf.Next());
  auto r = SpaceSaving::Deserialize(ss.Serialize());
  ASSERT_TRUE(r.ok());
  const auto before = ss.Entries();
  const auto after = r.value().Entries();
  ASSERT_EQ(before.size(), after.size());
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i].item, after[i].item);
    EXPECT_EQ(before[i].count, after[i].count);
    EXPECT_EQ(before[i].error, after[i].error);
  }
}

// ---------------------------------------------------------------- Majority

TEST(MajorityTest, FindsStrictMajority) {
  MajorityVote mv;
  for (int i = 0; i < 60; ++i) mv.Update(7);
  for (int i = 0; i < 40; ++i) mv.Update(static_cast<uint64_t>(i + 100));
  ASSERT_TRUE(mv.Candidate().has_value());
  EXPECT_EQ(*mv.Candidate(), 7u);
}

TEST(MajorityTest, EmptyHasNoCandidate) {
  MajorityVote mv;
  EXPECT_FALSE(mv.Candidate().has_value());
}

TEST(MajorityTest, InterleavedMajoritySurvives) {
  MajorityVote mv;
  for (int i = 0; i < 50; ++i) {
    mv.Update(1);
    mv.Update(static_cast<uint64_t>(i + 10));
    mv.Update(1);
  }
  EXPECT_EQ(*mv.Candidate(), 1u);
  EXPECT_EQ(mv.TotalSeen(), 150u);
}

// --------------------------------------------------------- Dyadic CountMin

TEST(DyadicCountMinTest, RangeSumOverestimatesBounded) {
  DyadicCountMin dcm(16, 2048, 4, 33);
  ExactFrequencies exact;
  UniformItemGenerator gen(1 << 16, 33);
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const uint64_t x = gen.Next();
    dcm.Update(x);
    exact.Update(x);
  }
  // Check a few ranges against the exact counts.
  struct Range {
    uint64_t lo, hi;
  };
  for (const Range& range : {Range{0, 999}, Range{1000, 65535},
                             Range{12345, 23456}, Range{40000, 40000}}) {
    int64_t truth = 0;
    for (uint64_t x = range.lo; x <= range.hi; ++x) truth += exact.Count(x);
    const uint64_t estimate = dcm.EstimateRangeSum(range.lo, range.hi);
    EXPECT_GE(estimate, static_cast<uint64_t>(truth));
    EXPECT_LE(estimate,
              static_cast<uint64_t>(truth) + n / 50 + 100);
  }
}

TEST(DyadicCountMinTest, FullRangeEqualsTotal) {
  DyadicCountMin dcm(10, 512, 4, 34);
  for (uint64_t x = 0; x < 1024; ++x) dcm.Update(x, 2);
  EXPECT_GE(dcm.EstimateRangeSum(0, 1023), 2048u);
}

TEST(DyadicCountMinTest, QuantilesOnUniformData) {
  DyadicCountMin dcm(16, 4096, 4, 35);
  UniformItemGenerator gen(1 << 16, 35);
  for (int i = 0; i < 100000; ++i) dcm.Update(gen.Next());
  const uint64_t median = dcm.EstimateQuantile(0.5);
  EXPECT_NEAR(static_cast<double>(median), 32768.0, 3000.0);
  const uint64_t p90 = dcm.EstimateQuantile(0.9);
  EXPECT_NEAR(static_cast<double>(p90), 0.9 * 65536, 3000.0);
  EXPECT_LE(dcm.EstimateQuantile(0.0), dcm.EstimateQuantile(1.0));
}

TEST(DyadicCountMinTest, MergeAddsRanges) {
  DyadicCountMin a(8, 256, 4, 36), b(8, 256, 4, 36);
  for (uint64_t x = 0; x < 128; ++x) a.Update(x);
  for (uint64_t x = 128; x < 256; ++x) b.Update(x);
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_GE(a.EstimateRangeSum(0, 255), 256u);
  EXPECT_EQ(a.TotalWeight(), 256);
}

// ----------------------------------- MG vs SpaceSaving duality (paper note)

TEST(FrequencyDualityTest, SpaceSavingEqualsMisraGriesPlusOffset) {
  // Metwally et al.'s SS and Misra-Gries track the same items with counts
  // differing by bounded offsets; verify both recover the same top items.
  SpaceSaving ss(64);
  MisraGries mg(64);
  ZipfGenerator zipf(10000, 1.3, 37);
  for (int i = 0; i < 100000; ++i) {
    const uint64_t item = zipf.Next();
    ss.Update(item);
    mg.Update(item);
  }
  std::vector<uint64_t> ss_top, mg_top;
  for (const auto& entry : ss.TopK(10)) ss_top.push_back(entry.item);
  int taken = 0;
  for (const auto& [item, count] : mg.Entries()) {
    if (taken++ >= 10) break;
    mg_top.push_back(item);
  }
  RetrievalQuality q = CompareSets(ss_top, mg_top);
  EXPECT_GE(q.f1, 0.8);
}

}  // namespace
}  // namespace gems
