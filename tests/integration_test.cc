// End-to-end integration tests chaining several subsystems the way a real
// deployment would: build sketches on worker "nodes", serialize them to
// bytes, ship them to a coordinator, deserialize, tree-merge, and answer
// queries — verified against exact baselines.

#include <cstdint>
#include <map>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "cardinality/hllpp.h"
#include "cardinality/hyperloglog.h"
#include "cardinality/kmv.h"
#include "common/numeric.h"
#include "distributed/aggregation.h"
#include "engine/stream_query.h"
#include "frequency/count_min.h"
#include "frequency/space_saving.h"
#include "quantiles/kll.h"
#include "workload/baselines.h"
#include "workload/generators.h"
#include "workload/metrics.h"

namespace gems {
namespace {

// Serializes then deserializes, simulating a network hop.
template <typename S>
S ShipOverNetwork(const S& sketch) {
  const std::vector<uint8_t> wire = sketch.Serialize();
  auto restored = S::Deserialize(wire);
  EXPECT_TRUE(restored.ok());
  return std::move(restored).value();
}

TEST(IntegrationTest, DistributedNetworkMonitoringPipeline) {
  // 8 monitoring nodes each see a shard of the packet stream. Each keeps:
  // per-node HLL (distinct flows), CM (bytes per destination), KLL (packet
  // sizes). The coordinator merges shipped copies and must agree with a
  // single-stream reference.
  constexpr int kNodes = 8;
  constexpr int kPackets = 200000;

  FlowGenerator::Options options;
  options.num_flows = 30000;
  FlowGenerator generator(options, 42);

  HyperLogLog reference_flows(12, 1);
  CountMinSketch reference_bytes(2048, 4, 2);
  KllSketch reference_sizes(200, 3);
  ExactDistinct exact_flows;
  ExactFrequencies exact_bytes;

  std::vector<HyperLogLog> node_flows;
  std::vector<CountMinSketch> node_bytes;
  std::vector<KllSketch> node_sizes;
  for (int n = 0; n < kNodes; ++n) {
    node_flows.emplace_back(12, 1);
    node_bytes.emplace_back(2048, 4, 2);
    node_sizes.emplace_back(200, 100 + n);
  }

  for (int i = 0; i < kPackets; ++i) {
    const FlowRecord packet = generator.Next();
    const uint64_t flow = packet.FlowKey();
    const size_t node = ShardOf(flow, kNodes);

    reference_flows.Update(flow);
    reference_bytes.Update(packet.dst_ip, packet.num_bytes);
    reference_sizes.Update(packet.num_bytes);
    exact_flows.Update(flow);
    exact_bytes.Update(packet.dst_ip, packet.num_bytes);

    node_flows[node].Update(flow);
    node_bytes[node].Update(packet.dst_ip, packet.num_bytes);
    node_sizes[node].Update(packet.num_bytes);
  }

  // Ship every node's sketches through serialization, then tree-merge.
  std::vector<HyperLogLog> shipped_flows;
  std::vector<CountMinSketch> shipped_bytes;
  std::vector<KllSketch> shipped_sizes;
  for (int n = 0; n < kNodes; ++n) {
    shipped_flows.push_back(ShipOverNetwork(node_flows[n]));
    shipped_bytes.push_back(ShipOverNetwork(node_bytes[n]));
    shipped_sizes.push_back(ShipOverNetwork(node_sizes[n]));
  }
  auto merged_flows = AggregateTree(std::move(shipped_flows));
  auto merged_bytes = AggregateTree(std::move(shipped_bytes));
  auto merged_sizes = AggregateTree(std::move(shipped_sizes));
  ASSERT_TRUE(merged_flows.ok());
  ASSERT_TRUE(merged_bytes.ok());
  ASSERT_TRUE(merged_sizes.ok());

  // Register/linear sketches: identical to single-stream state.
  EXPECT_DOUBLE_EQ(merged_flows.value().Estimate(), reference_flows.Estimate());
  EXPECT_NEAR(merged_flows.value().Estimate(),
              static_cast<double>(exact_flows.Count()),
              0.05 * static_cast<double>(exact_flows.Count()));
  for (const auto& [dst, bytes] : exact_bytes.TopK(20)) {
    EXPECT_EQ(merged_bytes.value().Estimate(dst),
              reference_bytes.Estimate(dst));
    EXPECT_GE(merged_bytes.value().Estimate(dst),
              static_cast<uint64_t>(bytes));
  }
  // KLL: same guarantee class.
  EXPECT_NEAR(merged_sizes.value().Quantile(0.5),
              reference_sizes.Quantile(0.5), 120.0);
}

TEST(IntegrationTest, AdReachRegionalRollup) {
  // Four regional servers each sketch their exposure logs; HQ merges the
  // shipped KMV sketches per campaign and answers overlap queries.
  ExposureGenerator::Options audience;
  audience.num_users = 100000;
  audience.num_campaigns = 2;
  ExposureGenerator generator(audience, 7);

  constexpr int kRegionsServers = 4;
  std::vector<std::map<uint32_t, KmvSketch>> regional(kRegionsServers);
  std::map<uint32_t, std::set<uint64_t>> exact;

  for (int i = 0; i < 400000; ++i) {
    const ExposureEvent event = generator.Next();
    const size_t server = event.region % kRegionsServers;
    regional[server]
        .try_emplace(event.campaign_id, 2048, 9)
        .first->second.Update(event.user_id);
    exact[event.campaign_id].insert(event.user_id);
  }

  std::map<uint32_t, KmvSketch> headquarters;
  for (const auto& server : regional) {
    for (const auto& [campaign, sketch] : server) {
      KmvSketch shipped = ShipOverNetwork(sketch);
      auto [it, inserted] =
          headquarters.try_emplace(campaign, std::move(shipped));
      if (!inserted) {
        ASSERT_TRUE(it->second.Merge(ShipOverNetwork(sketch)).ok());
      }
    }
  }

  for (const auto& [campaign, truth] : exact) {
    EXPECT_NEAR(headquarters.at(campaign).Estimate(),
                static_cast<double>(truth.size()),
                0.1 * static_cast<double>(truth.size()));
  }
  uint64_t exact_overlap = 0;
  for (uint64_t user : exact[0]) {
    if (exact[1].contains(user)) ++exact_overlap;
  }
  const double overlap =
      KmvSketch::Intersect(headquarters.at(0), headquarters.at(1)).Estimate();
  EXPECT_NEAR(overlap, static_cast<double>(exact_overlap),
              0.2 * static_cast<double>(exact_overlap) + 500);
}

TEST(IntegrationTest, EngineWindowsFeedDistributedRollup) {
  // Two engine instances process disjoint streams with tumbling windows;
  // their per-window top-k tables are compared against an exact tally of
  // the combined stream.
  StreamQuery::Options options;
  options.aggregate = AggregateKind::kTopK;
  options.top_k = 5;
  options.top_k_capacity = 128;
  options.window_size = 0;  // Single window.
  StreamQuery engine_a(options, 1), engine_b(options, 2);

  ZipfGenerator zipf(5000, 1.3, 11);
  ExactFrequencies exact;
  for (int i = 0; i < 200000; ++i) {
    const uint64_t item = zipf.Next();
    exact.Update(item);
    StreamEvent event{static_cast<uint64_t>(i), /*group=*/0, item, 1};
    ASSERT_TRUE((i % 2 == 0 ? engine_a : engine_b).Process(event).ok());
  }
  const auto windows_a = engine_a.Flush();
  const auto windows_b = engine_b.Flush();
  ASSERT_EQ(windows_a.size(), 1u);
  ASSERT_EQ(windows_b.size(), 1u);

  // Coordinator combines the two partial top-k tables by summing counts.
  std::map<uint64_t, int64_t> combined;
  for (const auto& [item, count] : windows_a[0].groups[0].top_items) {
    combined[item] += count;
  }
  for (const auto& [item, count] : windows_b[0].groups[0].top_items) {
    combined[item] += count;
  }
  // Every true top-3 item must appear with a near-exact combined count.
  for (const auto& [item, count] : exact.TopK(3)) {
    ASSERT_TRUE(combined.contains(item)) << item;
    EXPECT_NEAR(static_cast<double>(combined[item]),
                static_cast<double>(count), 0.05 * count);
  }
}

TEST(IntegrationTest, HllPlusPlusSparseSurvivesShippingAndMerging) {
  // Small daily audiences stay in sparse mode across serialize/merge, and
  // the weekly rollup is still near-exact.
  std::vector<HllPlusPlus> days;
  ExactDistinct exact;
  for (int day = 0; day < 7; ++day) {
    HllPlusPlus sketch(14, 5);
    // 7 x 200 = 1400 distinct entries stays under the p=14 sparse
    // capacity of 2048, so the merged weekly sketch remains sparse.
    for (uint64_t user : DistinctItems(200, 50 + day)) {
      sketch.Update(user);
      exact.Update(user);
    }
    ASSERT_TRUE(sketch.IsSparse());
    days.push_back(ShipOverNetwork(sketch));
  }
  auto week = AggregateTree(std::move(days));
  ASSERT_TRUE(week.ok());
  EXPECT_TRUE(week.value().IsSparse());
  EXPECT_NEAR(week.value().Estimate(), static_cast<double>(exact.Count()),
              0.02 * static_cast<double>(exact.Count()));
}

}  // namespace
}  // namespace gems
