// Parity suite for the kernel tables: every kernel in SimdKernels must
// produce output bit-identical to the scalar reference on the same input.
// The suite is parameterized over every variant table this build provides
// AND this CPU can run (scalar, avx2, avx512, neon) — not just the table
// dispatch selected — so on AVX-512 hardware the AVX2 table is still
// diffed even though dispatch would skip it. Sizes sweep empty,
// single-element, and every non-lane-multiple tail around the 4/8/16/32/64
// lane widths the variants use, so remainder handling is exercised as hard
// as the vector body. Under GEMS_FORCE_SCALAR=1 (the second CI run) the
// parameter list collapses to the scalar table and the suite degenerates
// to a self-check — the point of running it twice is that the native run
// diffs real SIMD output.

#include <algorithm>
#include <bit>
#include <cstdint>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/random.h"
#include "simd/dispatch.h"
#include "simd/kernels.h"

namespace gems::simd {
namespace {

constexpr size_t kSizes[] = {0,  1,  2,  3,   5,   8,   13,  16,
                             17, 31, 32, 33,  63,  64,  65,  127,
                             128, 129, 255, 256, 257, 1000, 1023};

std::vector<uint64_t> RandomU64(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<uint64_t> out(n);
  for (uint64_t& v : out) v = rng.NextU64();
  return out;
}

std::vector<int64_t> RandomI64(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<int64_t> out(n);
  for (int64_t& v : out) v = static_cast<int64_t>(rng.NextU64());
  return out;
}

std::vector<double> RandomDoubles(size_t n, uint64_t seed) {
  Rng rng(seed);
  std::vector<double> out(n);
  for (double& v : out) v = rng.NextDouble() * 2000.0 - 1000.0;
  return out;
}

// Exact-bits comparison for doubles (EXPECT_EQ would call 0.0 == -0.0).
void ExpectSameBits(double a, double b) {
  EXPECT_EQ(std::bit_cast<uint64_t>(a), std::bit_cast<uint64_t>(b))
      << a << " vs " << b;
}

// Every kernel table this build provides and this CPU can execute,
// deduplicated (the active table is also one of the variants). Honors the
// GEMS_FORCE_SCALAR override so the forced-scalar CI run really is
// scalar-only.
std::vector<const SimdKernels*> VariantTables() {
  std::vector<const SimdKernels*> tables;
  tables.push_back(&ScalarKernels());
  if (Dispatch().forced_scalar) return tables;
#if defined(__x86_64__) || defined(_M_X64)
  if (const SimdKernels* t = Avx2Kernels();
      t != nullptr && __builtin_cpu_supports("avx2")) {
    tables.push_back(t);
  }
  if (const SimdKernels* t = Avx512Kernels();
      t != nullptr && __builtin_cpu_supports("avx512f") &&
      __builtin_cpu_supports("avx512cd") &&
      __builtin_cpu_supports("avx512dq") &&
      __builtin_cpu_supports("avx512vl") &&
      __builtin_cpu_supports("avx512bw")) {
    tables.push_back(t);
  }
#elif defined(__aarch64__)
  tables.push_back(NeonKernels());
#endif
  return tables;
}

class SimdParity : public ::testing::TestWithParam<const SimdKernels*> {};

TEST_P(SimdParity, Mix64Batch) {
  const SimdKernels& scalar = ScalarKernels();
  const SimdKernels& active = *GetParam();
  for (size_t n : kSizes) {
    const std::vector<uint64_t> keys = RandomU64(n, 100 + n);
    std::vector<uint64_t> want(n), got(n);
    scalar.mix64_batch(keys.data(), n, 0xDEADBEEF + n, want.data());
    active.mix64_batch(keys.data(), n, 0xDEADBEEF + n, got.data());
    EXPECT_EQ(want, got) << "n=" << n;
  }
}

TEST_P(SimdParity, Mix64Min) {
  const SimdKernels& scalar = ScalarKernels();
  const SimdKernels& active = *GetParam();
  EXPECT_EQ(active.mix64_min(nullptr, 0, 42), ~uint64_t{0});
  for (size_t n : kSizes) {
    const std::vector<uint64_t> keys = RandomU64(n, 200 + n);
    EXPECT_EQ(scalar.mix64_min(keys.data(), n, 7 * n),
              active.mix64_min(keys.data(), n, 7 * n))
        << "n=" << n;
  }
}

TEST_P(SimdParity, Murmur3BatchU64) {
  const SimdKernels& scalar = ScalarKernels();
  const SimdKernels& active = *GetParam();
  for (size_t n : kSizes) {
    const std::vector<uint64_t> keys = RandomU64(n, 300 + n);
    std::vector<uint64_t> want_lo(n), want_hi(n), got_lo(n), got_hi(n);
    scalar.murmur3_batch_u64(keys.data(), n, 99, want_lo.data(),
                             want_hi.data());
    active.murmur3_batch_u64(keys.data(), n, 99, got_lo.data(),
                             got_hi.data());
    EXPECT_EQ(want_lo, got_lo) << "n=" << n;
    EXPECT_EQ(want_hi, got_hi) << "n=" << n;
  }
}

TEST_P(SimdParity, HllUpdateHashes) {
  const SimdKernels& scalar = ScalarKernels();
  const SimdKernels& active = *GetParam();
  for (int precision : {4, 12, 18}) {
    for (size_t n : kSizes) {
      const std::vector<uint64_t> hashes = RandomU64(n, 400 + n);
      std::vector<uint8_t> want(size_t{1} << precision, 0);
      std::vector<uint8_t> got = want;
      scalar.hll_update_hashes(want.data(), precision, hashes.data(), n);
      active.hll_update_hashes(got.data(), precision, hashes.data(), n);
      EXPECT_EQ(want, got) << "p=" << precision << " n=" << n;
    }
  }
}

TEST_P(SimdParity, HllIngest) {
  const SimdKernels& scalar = ScalarKernels();
  const SimdKernels& active = *GetParam();
  for (size_t n : kSizes) {
    const std::vector<uint64_t> keys = RandomU64(n, 500 + n);
    std::vector<uint8_t> want(size_t{1} << 12, 0);
    std::vector<uint8_t> got = want;
    scalar.hll_ingest(want.data(), 12, keys.data(), n, 0xABCDEF + n);
    active.hll_ingest(got.data(), 12, keys.data(), n, 0xABCDEF + n);
    EXPECT_EQ(want, got) << "n=" << n;
  }
}

TEST_P(SimdParity, U8Max) {
  const SimdKernels& scalar = ScalarKernels();
  const SimdKernels& active = *GetParam();
  for (size_t n : kSizes) {
    Rng rng(600 + n);
    std::vector<uint8_t> src(n), base(n);
    for (uint8_t& v : src) v = static_cast<uint8_t>(rng.NextU64());
    for (uint8_t& v : base) v = static_cast<uint8_t>(rng.NextU64());
    std::vector<uint8_t> want = base, got = base;
    scalar.u8_max(want.data(), src.data(), n);
    active.u8_max(got.data(), src.data(), n);
    EXPECT_EQ(want, got) << "n=" << n;
  }
}

TEST_P(SimdParity, HllHarmonicSum) {
  const SimdKernels& scalar = ScalarKernels();
  const SimdKernels& active = *GetParam();
  for (size_t n : kSizes) {
    Rng rng(700 + n);
    std::vector<uint8_t> regs(n);
    for (uint8_t& v : regs) v = static_cast<uint8_t>(rng.NextBounded(65));
    double want_sum = 0, got_sum = 0;
    uint32_t want_zeros = 0, got_zeros = 0;
    scalar.hll_harmonic_sum(regs.data(), n, &want_sum, &want_zeros);
    active.hll_harmonic_sum(regs.data(), n, &got_sum, &got_zeros);
    ExpectSameBits(want_sum, got_sum);
    EXPECT_EQ(want_zeros, got_zeros) << "n=" << n;
  }
}

TEST_P(SimdParity, CmRowAdd) {
  const SimdKernels& scalar = ScalarKernels();
  const SimdKernels& active = *GetParam();
  for (uint64_t width : {uint64_t{7}, uint64_t{1000}, uint64_t{1024}}) {
    for (size_t n : kSizes) {
      const std::vector<uint64_t> hashes = RandomU64(n, 800 + n);
      std::vector<uint64_t> want(width, 0), got(width, 0);
      scalar.cm_row_add(want.data(), width, hashes.data(), n);
      active.cm_row_add(got.data(), width, hashes.data(), n);
      EXPECT_EQ(want, got) << "w=" << width << " n=" << n;
    }
  }
}

TEST_P(SimdParity, CmRowAddWeighted) {
  const SimdKernels& scalar = ScalarKernels();
  const SimdKernels& active = *GetParam();
  for (uint64_t width : {uint64_t{1000}, uint64_t{1024}}) {
    for (size_t n : kSizes) {
      const std::vector<uint64_t> hashes = RandomU64(n, 900 + n);
      const std::vector<int64_t> weights = RandomI64(n, 901 + n);
      std::vector<uint64_t> want(width, 0), got(width, 0);
      scalar.cm_row_add_weighted(want.data(), width, hashes.data(),
                                 weights.data(), n);
      active.cm_row_add_weighted(got.data(), width, hashes.data(),
                                 weights.data(), n);
      EXPECT_EQ(want, got) << "w=" << width << " n=" << n;
    }
  }
}

TEST_P(SimdParity, CmRowMin) {
  const SimdKernels& scalar = ScalarKernels();
  const SimdKernels& active = *GetParam();
  for (uint64_t width : {uint64_t{1000}, uint64_t{1024}}) {
    const std::vector<uint64_t> row = RandomU64(width, 1000 + width);
    for (size_t n : kSizes) {
      const std::vector<uint64_t> hashes = RandomU64(n, 1001 + n);
      std::vector<uint64_t> want(n, ~uint64_t{0}), got(n, ~uint64_t{0});
      scalar.cm_row_min(row.data(), width, hashes.data(), n, want.data());
      active.cm_row_min(row.data(), width, hashes.data(), n, got.data());
      EXPECT_EQ(want, got) << "w=" << width << " n=" << n;
    }
  }
}

TEST_P(SimdParity, CsRowScatter) {
  const SimdKernels& scalar = ScalarKernels();
  const SimdKernels& active = *GetParam();
  constexpr uint64_t kWidth = 512;
  for (size_t n : kSizes) {
    Rng rng(1100 + n);
    std::vector<uint32_t> buckets(n);
    for (uint32_t& b : buckets) {
      b = static_cast<uint32_t>(rng.NextBounded(kWidth));
    }
    const std::vector<int64_t> weights = RandomI64(n, 1101 + n);
    std::vector<int64_t> want(kWidth, 0), got(kWidth, 0);
    scalar.cs_row_scatter(want.data(), buckets.data(), weights.data(), n);
    active.cs_row_scatter(got.data(), buckets.data(), weights.data(), n);
    EXPECT_EQ(want, got) << "n=" << n;
  }
}

// Blocked-layout geometries to sweep: (depth, cols) pairs covering every
// legal fill of the 8-slot block, with both pow2 and non-pow2 block counts
// so the modulo path is exercised.
struct BlockedGeometry {
  uint32_t depth;
  uint32_t cols;
};
constexpr BlockedGeometry kBlockedGeometries[] = {
    {1, 8}, {2, 4}, {4, 2}, {5, 1}, {8, 1}};
constexpr uint64_t kBlockCounts[] = {7, 128, 1000};

TEST_P(SimdParity, CmBlockedAdd) {
  const SimdKernels& scalar = ScalarKernels();
  const SimdKernels& active = *GetParam();
  for (const BlockedGeometry& g : kBlockedGeometries) {
    for (uint64_t blocks : kBlockCounts) {
      for (size_t n : {size_t{0}, size_t{1}, size_t{63}, size_t{64},
                       size_t{65}, size_t{1000}}) {
        const std::vector<uint64_t> keys = RandomU64(n, 1300 + n);
        std::vector<uint64_t> want(blocks * 8, 0), got(blocks * 8, 0);
        scalar.cm_blocked_add(want.data(), blocks, g.depth, g.cols, 77,
                              keys.data(), n);
        active.cm_blocked_add(got.data(), blocks, g.depth, g.cols, 77,
                              keys.data(), n);
        EXPECT_EQ(want, got)
            << "d=" << g.depth << " b=" << blocks << " n=" << n;
      }
    }
  }
}

TEST_P(SimdParity, CmBlockedAddWeighted) {
  const SimdKernels& scalar = ScalarKernels();
  const SimdKernels& active = *GetParam();
  for (const BlockedGeometry& g : kBlockedGeometries) {
    for (uint64_t blocks : kBlockCounts) {
      for (size_t n : {size_t{1}, size_t{65}, size_t{1000}}) {
        const std::vector<uint64_t> keys = RandomU64(n, 1400 + n);
        const std::vector<int64_t> weights = RandomI64(n, 1401 + n);
        std::vector<uint64_t> want(blocks * 8, 0), got(blocks * 8, 0);
        scalar.cm_blocked_add_weighted(want.data(), blocks, g.depth, g.cols,
                                       78, keys.data(), weights.data(), n);
        active.cm_blocked_add_weighted(got.data(), blocks, g.depth, g.cols,
                                       78, keys.data(), weights.data(), n);
        EXPECT_EQ(want, got)
            << "d=" << g.depth << " b=" << blocks << " n=" << n;
      }
    }
  }
}

TEST_P(SimdParity, CmBlockedMin) {
  const SimdKernels& scalar = ScalarKernels();
  const SimdKernels& active = *GetParam();
  for (const BlockedGeometry& g : kBlockedGeometries) {
    for (uint64_t blocks : kBlockCounts) {
      Rng rng(1500 + g.depth);
      std::vector<uint64_t> slots(blocks * 8);
      for (uint64_t& v : slots) v = rng.NextBounded(1 << 20);
      for (size_t n : {size_t{0}, size_t{1}, size_t{65}, size_t{1000}}) {
        const std::vector<uint64_t> keys = RandomU64(n, 1500 + n);
        std::vector<uint64_t> want(n, ~uint64_t{0}), got(n, 0);
        scalar.cm_blocked_min(slots.data(), blocks, g.depth, g.cols, 79,
                              keys.data(), n, want.data());
        active.cm_blocked_min(slots.data(), blocks, g.depth, g.cols, 79,
                              keys.data(), n, got.data());
        // Distinct initial fills prove out[] is written, not folded.
        EXPECT_EQ(want, got)
            << "d=" << g.depth << " b=" << blocks << " n=" << n;
      }
    }
  }
}

TEST_P(SimdParity, CsBlockedAdd) {
  const SimdKernels& scalar = ScalarKernels();
  const SimdKernels& active = *GetParam();
  for (const BlockedGeometry& g : kBlockedGeometries) {
    for (uint64_t blocks : kBlockCounts) {
      for (size_t n : {size_t{0}, size_t{1}, size_t{65}, size_t{1000}}) {
        const std::vector<uint64_t> keys = RandomU64(n, 1600 + n);
        const std::vector<int64_t> weights = RandomI64(n, 1601 + n);
        std::vector<int64_t> want(blocks * 8, 0), got(blocks * 8, 0);
        // Unit-weight path (weights == nullptr).
        scalar.cs_blocked_add(want.data(), blocks, g.depth, g.cols, 80,
                              keys.data(), nullptr, n);
        active.cs_blocked_add(got.data(), blocks, g.depth, g.cols, 80,
                              keys.data(), nullptr, n);
        EXPECT_EQ(want, got)
            << "unit d=" << g.depth << " b=" << blocks << " n=" << n;
        // Weighted path.
        scalar.cs_blocked_add(want.data(), blocks, g.depth, g.cols, 80,
                              keys.data(), weights.data(), n);
        active.cs_blocked_add(got.data(), blocks, g.depth, g.cols, 80,
                              keys.data(), weights.data(), n);
        EXPECT_EQ(want, got)
            << "weighted d=" << g.depth << " b=" << blocks << " n=" << n;
      }
    }
  }
}

TEST_P(SimdParity, I64SumSquares) {
  const SimdKernels& scalar = ScalarKernels();
  const SimdKernels& active = *GetParam();
  for (size_t n : kSizes) {
    const std::vector<int64_t> values = RandomI64(n, 1200 + n);
    ExpectSameBits(scalar.i64_sum_squares(values.data(), n),
                   active.i64_sum_squares(values.data(), n));
  }
}

TEST_P(SimdParity, BloomInsertAndQuery) {
  const SimdKernels& scalar = ScalarKernels();
  const SimdKernels& active = *GetParam();
  for (uint64_t num_bits : {uint64_t{100003}, uint64_t{1} << 16}) {
    for (size_t n : kSizes) {
      const std::vector<uint64_t> h1 = RandomU64(n, 1300 + n);
      std::vector<uint64_t> h2 = RandomU64(n, 1301 + n);
      for (uint64_t& h : h2) h |= 1;  // The sketch's double-hash contract.
      std::vector<uint64_t> want((num_bits + 63) / 64, 0);
      std::vector<uint64_t> got = want;
      scalar.bloom_insert(want.data(), num_bits, 7, h1.data(), h2.data(), n);
      active.bloom_insert(got.data(), num_bits, 7, h1.data(), h2.data(), n);
      EXPECT_EQ(want, got) << "bits=" << num_bits << " n=" << n;

      // Query over a mix of inserted and fresh probes.
      const std::vector<uint64_t> q1 = RandomU64(n, 1302 + n);
      std::vector<uint64_t> q2 = RandomU64(n, 1303 + n);
      for (uint64_t& h : q2) h |= 1;
      std::vector<uint8_t> want_out(n, 9), got_out(n, 9);
      scalar.bloom_query(want.data(), num_bits, 7, q1.data(), q2.data(), n,
                         want_out.data());
      active.bloom_query(got.data(), num_bits, 7, q1.data(), q2.data(), n,
                         got_out.data());
      EXPECT_EQ(want_out, got_out) << "bits=" << num_bits << " n=" << n;
    }
  }
}

TEST_P(SimdParity, BlockedBloomInsertAndQuery) {
  const SimdKernels& scalar = ScalarKernels();
  const SimdKernels& active = *GetParam();
  for (uint64_t num_blocks : {uint64_t{129}, uint64_t{256}}) {
    for (size_t n : kSizes) {
      const std::vector<uint64_t> keys = RandomU64(n, 1400 + n);
      std::vector<uint64_t> want(num_blocks * 8, 0);
      std::vector<uint64_t> got = want;
      scalar.blocked_bloom_insert(want.data(), num_blocks, 8, 77, keys.data(),
                                  n);
      active.blocked_bloom_insert(got.data(), num_blocks, 8, 77, keys.data(),
                                  n);
      EXPECT_EQ(want, got) << "blocks=" << num_blocks << " n=" << n;

      const std::vector<uint64_t> queries = RandomU64(n, 1401 + n);
      std::vector<uint8_t> want_out(n, 9), got_out(n, 9);
      scalar.blocked_bloom_query(want.data(), num_blocks, 8, 77,
                                 queries.data(), n, want_out.data());
      active.blocked_bloom_query(got.data(), num_blocks, 8, 77,
                                 queries.data(), n, got_out.data());
      EXPECT_EQ(want_out, got_out) << "blocks=" << num_blocks << " n=" << n;
    }
  }
}

TEST_P(SimdParity, SortDoubles) {
  const SimdKernels& active = *GetParam();
  for (size_t n : kSizes) {
    std::vector<double> data = RandomDoubles(n, 1500 + n);
    std::vector<double> want = data;
    std::sort(want.begin(), want.end());
    active.sort_doubles(data.data(), n);
    ASSERT_EQ(want.size(), data.size());
    for (size_t i = 0; i < n; ++i) ExpectSameBits(want[i], data[i]);
  }
}

TEST_P(SimdParity, MergeDoubles) {
  const SimdKernels& active = *GetParam();
  for (size_t na : {size_t{0}, size_t{1}, size_t{17}, size_t{256}}) {
    for (size_t nb : {size_t{0}, size_t{3}, size_t{33}, size_t{255}}) {
      std::vector<double> a = RandomDoubles(na, 1600 + na);
      std::vector<double> b = RandomDoubles(nb, 1601 + nb);
      std::sort(a.begin(), a.end());
      std::sort(b.begin(), b.end());
      std::vector<double> want(na + nb), got(na + nb);
      std::merge(a.begin(), a.end(), b.begin(), b.end(), want.begin());
      active.merge_doubles(a.data(), na, b.data(), nb, got.data());
      for (size_t i = 0; i < na + nb; ++i) ExpectSameBits(want[i], got[i]);
    }
  }
}

TEST_P(SimdParity, ElementwiseMerges) {
  const SimdKernels& scalar = ScalarKernels();
  const SimdKernels& active = *GetParam();
  for (size_t n : kSizes) {
    const std::vector<uint64_t> src = RandomU64(n, 1700 + n);
    const std::vector<uint64_t> base = RandomU64(n, 1701 + n);

    std::vector<uint64_t> want = base, got = base;
    scalar.u64_min(want.data(), src.data(), n);
    active.u64_min(got.data(), src.data(), n);
    EXPECT_EQ(want, got) << "u64_min n=" << n;

    want = base;
    got = base;
    scalar.u64_or(want.data(), src.data(), n);
    active.u64_or(got.data(), src.data(), n);
    EXPECT_EQ(want, got) << "u64_or n=" << n;

    want = base;
    got = base;
    scalar.u64_add(want.data(), src.data(), n);
    active.u64_add(got.data(), src.data(), n);
    EXPECT_EQ(want, got) << "u64_add n=" << n;

    const std::vector<int64_t> isrc = RandomI64(n, 1702 + n);
    std::vector<int64_t> iwant = RandomI64(n, 1703 + n);
    std::vector<int64_t> igot = iwant;
    scalar.i64_add(iwant.data(), isrc.data(), n);
    active.i64_add(igot.data(), isrc.data(), n);
    EXPECT_EQ(iwant, igot) << "i64_add n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllVariants, SimdParity, ::testing::ValuesIn(VariantTables()),
    [](const ::testing::TestParamInfo<const SimdKernels*>& info) {
      return std::string(info.param->name);
    });

// ---------------------------------------------------------------- dispatch

TEST(SimdDispatch, SelectionIsCoherent) {
  const DispatchInfo& info = Dispatch();
  const std::string level = info.level;
  EXPECT_TRUE(level == "scalar" || level == "avx2" || level == "avx512" ||
              level == "neon")
      << level;
  // Without the test hook, the active table is the startup selection.
  EXPECT_STREQ(ActiveLevel(), info.level);
  EXPECT_STREQ(Kernels().name, info.level);
}

TEST(SimdDispatch, ForceScalarHookSwapsTheTable) {
  ForceScalarForTesting(true);
  EXPECT_STREQ(ActiveLevel(), "scalar");
  EXPECT_STREQ(Kernels().name, "scalar");
  EXPECT_EQ(&Kernels(), &ScalarKernels());
  ForceScalarForTesting(false);
  EXPECT_STREQ(ActiveLevel(), Dispatch().level);
}

TEST(SimdDispatch, JsonShape) {
  const std::string json = DispatchJson();
  EXPECT_NE(json.find("\"level\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"cpu_features\""), std::string::npos) << json;
  EXPECT_NE(json.find("\"forced_scalar\""), std::string::npos) << json;
  EXPECT_NE(json.find(Dispatch().level), std::string::npos) << json;
}

}  // namespace
}  // namespace gems::simd
