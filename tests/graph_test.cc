#include <algorithm>
#include <cstdint>
#include <set>
#include <vector>

#include <gtest/gtest.h>

#include "graph/agm.h"
#include "graph/connectivity.h"
#include "graph/union_find.h"

namespace gems {
namespace {

// -------------------------------------------------------------- UnionFind

TEST(UnionFindTest, BasicOperations) {
  UnionFind uf(5);
  EXPECT_EQ(uf.NumComponents(), 5u);
  EXPECT_TRUE(uf.Union(0, 1));
  EXPECT_TRUE(uf.Union(2, 3));
  EXPECT_EQ(uf.NumComponents(), 3u);
  EXPECT_FALSE(uf.Union(0, 1));  // Already joined.
  EXPECT_EQ(uf.Find(0), uf.Find(1));
  EXPECT_NE(uf.Find(0), uf.Find(2));
  EXPECT_TRUE(uf.Union(1, 3));
  EXPECT_EQ(uf.Find(0), uf.Find(2));
  EXPECT_EQ(uf.NumComponents(), 2u);
}

TEST(UnionFindTest, PathCompressionKeepsAnswersStable) {
  UnionFind uf(1000);
  for (size_t i = 1; i < 1000; ++i) uf.Union(i - 1, i);
  EXPECT_EQ(uf.NumComponents(), 1u);
  const size_t root = uf.Find(0);
  for (size_t i = 0; i < 1000; ++i) EXPECT_EQ(uf.Find(i), root);
}

// ------------------------------------------------------------- ExactGraph

TEST(ExactGraphTest, ComponentsAndDeletion) {
  ExactGraph g(6);
  g.AddEdge(0, 1);
  g.AddEdge(1, 2);
  g.AddEdge(3, 4);
  EXPECT_EQ(g.NumComponents(), 3u);  // {0,1,2}, {3,4}, {5}.
  g.RemoveEdge(1, 2);
  EXPECT_EQ(g.NumComponents(), 4u);
  EXPECT_EQ(g.Edges().size(), 2u);
}

TEST(ExactGraphTest, DuplicateEdgesSurviveOneRemoval) {
  ExactGraph g(3);
  g.AddEdge(0, 1);
  g.AddEdge(0, 1);
  g.RemoveEdge(0, 1);
  EXPECT_EQ(g.NumComponents(), 2u);  // One multiplicity remains.
}

TEST(GraphGeneratorsTest, PlantedComponentsAreConnected) {
  const auto edges = PlantedComponents(100, 4, 1.0, 7);
  ExactGraph g(100);
  for (const Edge& edge : edges) g.AddEdge(edge.u, edge.v);
  EXPECT_EQ(g.NumComponents(), 4u);
}

TEST(GraphGeneratorsTest, RandomGraphEdgeCount) {
  const auto edges = RandomGraph(100, 0.1, 8);
  const double expected = 0.1 * 100 * 99 / 2;
  EXPECT_NEAR(static_cast<double>(edges.size()), expected, 80);
}

// -------------------------------------------------------------------- AGM

TEST(AgmTest, EdgeCodecRoundTrip) {
  AgmSketch sketch(100, 1);
  for (uint32_t u = 0; u < 10; ++u) {
    for (uint32_t v = u + 1; v < 10; ++v) {
      const Edge edge = sketch.DecodeEdge(sketch.EncodeEdge(u, v));
      EXPECT_EQ(edge.u, u);
      EXPECT_EQ(edge.v, v);
    }
  }
  // Encode is symmetric.
  EXPECT_EQ(sketch.EncodeEdge(3, 7), sketch.EncodeEdge(7, 3));
}

TEST(AgmTest, SingleEdgeSpanningForest) {
  AgmSketch sketch(4, 2);
  sketch.AddEdge(1, 2);
  const auto forest = sketch.SpanningForest();
  ASSERT_EQ(forest.size(), 1u);
  EXPECT_EQ(forest[0].u, 1u);
  EXPECT_EQ(forest[0].v, 2u);
  EXPECT_EQ(sketch.NumComponents(), 3u);  // {1,2}, {0}, {3}.
}

TEST(AgmTest, PathGraphFullyConnected) {
  const uint32_t n = 64;
  AgmSketch sketch(n, 3);
  for (uint32_t i = 0; i + 1 < n; ++i) sketch.AddEdge(i, i + 1);
  EXPECT_EQ(sketch.NumComponents(), 1u);
}

TEST(AgmTest, RecoversPlantedComponentCount) {
  const uint32_t n = 128;
  int correct = 0;
  for (int trial = 0; trial < 5; ++trial) {
    AgmSketch sketch(n, 100 + trial);
    const auto edges = PlantedComponents(n, 4, 1.0, 200 + trial);
    for (const Edge& edge : edges) sketch.AddEdge(edge.u, edge.v);
    if (sketch.NumComponents() == 4) ++correct;
  }
  EXPECT_GE(correct, 4);  // W.h.p. every trial succeeds.
}

TEST(AgmTest, DynamicDeletionsChangeConnectivity) {
  // Build two triangles joined by one bridge; deleting the bridge must
  // split the graph — the dynamic-graph capability unique to AGM.
  AgmSketch sketch(6, 4);
  ExactGraph exact(6);
  auto add = [&](uint32_t u, uint32_t v) {
    sketch.AddEdge(u, v);
    exact.AddEdge(u, v);
  };
  add(0, 1);
  add(1, 2);
  add(2, 0);
  add(3, 4);
  add(4, 5);
  add(5, 3);
  add(2, 3);  // Bridge.
  EXPECT_EQ(sketch.NumComponents(), 1u);
  sketch.RemoveEdge(2, 3);
  exact.RemoveEdge(2, 3);
  EXPECT_EQ(exact.NumComponents(), 2u);
  EXPECT_EQ(sketch.NumComponents(), 2u);
}

TEST(AgmTest, CancellationLeavesEmptyGraph) {
  AgmSketch sketch(10, 5);
  sketch.AddEdge(1, 2);
  sketch.AddEdge(3, 4);
  sketch.RemoveEdge(1, 2);
  sketch.RemoveEdge(3, 4);
  EXPECT_TRUE(sketch.SpanningForest().empty());
  EXPECT_EQ(sketch.NumComponents(), 10u);
}

TEST(AgmTest, MergeCombinesEdgeSets) {
  // Node A saw edges of the left half, node B the right half plus bridge;
  // merged sketch must see the whole connected path.
  const uint32_t n = 32;
  AgmSketch a(n, 6), b(n, 6);
  for (uint32_t i = 0; i + 1 < n / 2; ++i) a.AddEdge(i, i + 1);
  for (uint32_t i = n / 2; i + 1 < n; ++i) b.AddEdge(i, i + 1);
  b.AddEdge(n / 2 - 1, n / 2);
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.NumComponents(), 1u);
}

TEST(AgmTest, MergeRejectsMismatchedConfig) {
  AgmSketch a(10, 1), b(10, 2), c(20, 1);
  EXPECT_FALSE(a.Merge(b).ok());
  EXPECT_FALSE(a.Merge(c).ok());
}

TEST(AgmTest, SerializeRoundTripPreservesConnectivity) {
  const uint32_t n = 64;
  AgmSketch::Options options;
  options.num_copies = 8;
  AgmSketch sketch(n, 8, options);
  const auto edges = PlantedComponents(n, 3, 0.8, 10);
  for (const Edge& edge : edges) sketch.AddEdge(edge.u, edge.v);

  auto restored = AgmSketch::Deserialize(sketch.Serialize());
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored.value().NumComponents(), sketch.NumComponents());
  EXPECT_EQ(restored.value().NumComponents(), 3u);
}

TEST(AgmTest, DistributedWorkersShipSketchesToCoordinator) {
  // The AGM communication pattern: 4 workers each see a quarter of the
  // edges, serialize their sketches, and the coordinator merges the
  // deserialized copies to answer global connectivity.
  const uint32_t n = 64;
  const auto edges = PlantedComponents(n, 2, 1.0, 11);
  std::vector<AgmSketch> workers;
  for (int w = 0; w < 4; ++w) workers.emplace_back(n, 12);
  for (size_t i = 0; i < edges.size(); ++i) {
    workers[i % 4].AddEdge(edges[i].u, edges[i].v);
  }
  auto coordinator = AgmSketch::Deserialize(workers[0].Serialize());
  ASSERT_TRUE(coordinator.ok());
  for (int w = 1; w < 4; ++w) {
    auto shipped = AgmSketch::Deserialize(workers[w].Serialize());
    ASSERT_TRUE(shipped.ok());
    ASSERT_TRUE(coordinator.value().Merge(shipped.value()).ok());
  }
  EXPECT_EQ(coordinator.value().NumComponents(), 2u);
}

TEST(AgmTest, DeserializeRejectsGarbage) {
  EXPECT_FALSE(AgmSketch::Deserialize(std::vector<uint8_t>{0xFF, 0x00, 0x12}).ok());
}

TEST(AgmTest, ComponentLabelsMatchExact) {
  const uint32_t n = 96;
  AgmSketch sketch(n, 7);
  ExactGraph exact(n);
  const auto edges = PlantedComponents(n, 3, 0.5, 9);
  for (const Edge& edge : edges) {
    sketch.AddEdge(edge.u, edge.v);
    exact.AddEdge(edge.u, edge.v);
  }
  const auto sketch_labels = sketch.ConnectedComponents();
  const auto exact_labels = exact.ComponentLabels();
  // Labels may differ, but the partition must be identical: same label in
  // the sketch iff same label exactly.
  int mismatches = 0;
  for (uint32_t u = 0; u < n; ++u) {
    for (uint32_t v = u + 1; v < n; ++v) {
      const bool same_sketch = sketch_labels[u] == sketch_labels[v];
      const bool same_exact = exact_labels[u] == exact_labels[v];
      if (same_sketch != same_exact) ++mismatches;
    }
  }
  EXPECT_EQ(mismatches, 0);
}

}  // namespace
}  // namespace gems
