#include <cstdint>
#include <cstring>
#include <map>
#include <set>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/bits.h"
#include "hash/hash.h"
#include "hash/murmur3.h"
#include "hash/polynomial.h"
#include "hash/tabulation.h"
#include "hash/xxhash.h"

namespace gems {
namespace {

// ----------------------------------------------------------------- XXH64

TEST(XxHashTest, KnownVectors) {
  // Reference vectors from the xxHash specification.
  EXPECT_EQ(XxHash64(nullptr, 0, 0), 0xEF46DB3751D8E999ULL);
  EXPECT_EQ(XxHash64(nullptr, 0, 1), 0xD5AFBA1336A3BE4BULL);
  const char* abc = "abc";
  EXPECT_EQ(XxHash64(abc, 3, 0), 0x44BC2CF5AD770999ULL);
}

TEST(XxHashTest, SeedChangesOutput) {
  const std::string s = "some input string";
  EXPECT_NE(XxHash64(s.data(), s.size(), 1), XxHash64(s.data(), s.size(), 2));
}

TEST(XxHashTest, AllLengthPathsDiffer) {
  // Exercise the <4, <8, <32, >=32 byte code paths.
  std::string data(100, 'a');
  std::set<uint64_t> hashes;
  for (size_t len : {0u, 1u, 3u, 4u, 7u, 8u, 15u, 31u, 32u, 33u, 100u}) {
    hashes.insert(XxHash64(data.data(), len, 42));
  }
  EXPECT_EQ(hashes.size(), 11u);
}

// --------------------------------------------------------------- Murmur3

TEST(Murmur3Test, KnownVector) {
  // Reference: MurmurHash3_x64_128("hello", seed=0).
  const char* s = "hello";
  Hash128 h = Murmur3_128(s, 5, 0);
  EXPECT_EQ(h.low, 0xCBD8A7B341BD9B02ULL);
  EXPECT_EQ(h.high, 0x5B1E906A48AE1D19ULL);
}

TEST(Murmur3Test, HalvesAreIndependentish) {
  // Both halves should differ across nearby keys.
  std::set<uint64_t> lows, highs;
  for (uint64_t k = 0; k < 100; ++k) {
    Hash128 h = Murmur3_128(&k, sizeof(k), 9);
    lows.insert(h.low);
    highs.insert(h.high);
  }
  EXPECT_EQ(lows.size(), 100u);
  EXPECT_EQ(highs.size(), 100u);
}

TEST(Murmur3Test, TailLengthsAllDiffer) {
  std::string data(40, 'x');
  std::set<uint64_t> hashes;
  for (size_t len = 0; len <= 40; ++len) {
    hashes.insert(Murmur3_128(data.data(), len, 7).low);
  }
  EXPECT_EQ(hashes.size(), 41u);
}

TEST(Murmur3Test, PinnedDigestsAcrossLengthPaths) {
  // Pinned outputs covering the empty input, tail-only inputs, exactly one
  // block, and block+tail — so any drift in the shared kernel
  // (murmur3_detail) shows up as a digest change, not just a
  // self-consistency pass. "abc" matches the reference
  // MurmurHash3_x64_128 test vector.
  struct Case {
    const char* data;
    uint64_t seed;
    uint64_t low;
    uint64_t high;
  };
  const Case cases[] = {
      {"", 0, 0x0000000000000000ULL, 0x0000000000000000ULL},
      {"abc", 0, 0xB4963F3F3FAD7867ULL, 0x3BA2744126CA2D52ULL},
      {"abc", 9, 0x5B90322B4304F3E7ULL, 0xDDA63DA5863ECD07ULL},
      {"sketching-is-go", 42, 0x57F7CBD2195950F7ULL, 0x2923F48F2D62C30BULL},
      {"sketching-is-god", 42, 0x584E9379778697D9ULL, 0xA2489A7131073490ULL},
      {"sketching-is-good", 42, 0x1383CC75BC2A7F1FULL,
       0xDE8BB1E66C40FBB2ULL},
  };
  for (const Case& c : cases) {
    const Hash128 h = Murmur3_128(c.data, std::strlen(c.data), c.seed);
    EXPECT_EQ(h.low, c.low) << "\"" << c.data << "\" seed " << c.seed;
    EXPECT_EQ(h.high, c.high) << "\"" << c.data << "\" seed " << c.seed;
  }
}

TEST(Murmur3Test, U64SpecializationMatchesGenericByteForByte) {
  // The inline 8-byte fast path and the generic entry point share one
  // kernel; this pins that they produce identical digests for the same
  // key bytes, including pinned values so both can't drift together.
  const Hash128 pinned = Murmur3_128_U64(0xDEADBEEFCAFEBABEULL, 17);
  EXPECT_EQ(pinned.low, 0x1C272D5B3D4A89CCULL);
  EXPECT_EQ(pinned.high, 0xAFD0AE2F3986A388ULL);
  for (uint64_t key : {uint64_t{0}, uint64_t{1}, uint64_t{0x123456789ABCDEF0},
                       ~uint64_t{0}}) {
    for (uint64_t seed : {uint64_t{0}, uint64_t{17}, uint64_t{0x9E3779B9}}) {
      const Hash128 fast = Murmur3_128_U64(key, seed);
      const Hash128 generic = Murmur3_128(&key, sizeof(key), seed);
      EXPECT_EQ(fast.low, generic.low) << "key " << key << " seed " << seed;
      EXPECT_EQ(fast.high, generic.high) << "key " << key << " seed " << seed;
    }
  }
}

// ------------------------------------------------------------ Tabulation

TEST(TabulationTest, DeterministicPerSeed) {
  TabulationHash a(5), b(5), c(6);
  EXPECT_EQ(a.Eval(12345), b.Eval(12345));
  EXPECT_NE(a.Eval(12345), c.Eval(12345));
}

TEST(TabulationTest, UniformBucketSpread) {
  TabulationHash h(11);
  const int kBuckets = 16;
  std::vector<int> counts(kBuckets, 0);
  const int n = 160000;
  for (int i = 0; i < n; ++i) counts[h.Eval(i) % kBuckets]++;
  for (int c : counts) EXPECT_NEAR(c, n / kBuckets, 800);
}

TEST(TabulationTest, NoCollisionsOnSmallRange) {
  TabulationHash h(13);
  std::set<uint64_t> seen;
  for (uint64_t k = 0; k < 10000; ++k) seen.insert(h.Eval(k));
  EXPECT_EQ(seen.size(), 10000u);  // 64-bit collisions here would be a bug.
}

// ------------------------------------------------------------ Polynomial

TEST(KWiseHashTest, OutputsInField) {
  KWiseHash h(4, 99);
  for (uint64_t k = 0; k < 1000; ++k) {
    EXPECT_LT(h.Eval(k), KWiseHash::kPrime);
  }
}

TEST(KWiseHashTest, DeterministicPerSeed) {
  KWiseHash a(3, 5), b(3, 5), c(3, 6);
  EXPECT_EQ(a.Eval(777), b.Eval(777));
  EXPECT_NE(a.Eval(777), c.Eval(777));
}

TEST(KWiseHashTest, DegreeOneIsConstant) {
  KWiseHash h(1, 3);
  EXPECT_EQ(h.Eval(1), h.Eval(2));
}

TEST(KWiseHashTest, PairwiseIndependenceCollisionRate) {
  // For a 2-wise family into r buckets, Pr[h(x)=h(y)] ~ 1/r.
  const uint64_t r = 64;
  int collisions = 0;
  const int trials = 2000;
  for (int t = 0; t < trials; ++t) {
    KWiseHash h(2, 1000 + t);
    if (h.EvalRange(1, r) == h.EvalRange(2, r)) collisions++;
  }
  const double rate = static_cast<double>(collisions) / trials;
  EXPECT_NEAR(rate, 1.0 / r, 0.015);
}

TEST(KWiseHashTest, FourWiseSignsAreUnbiased) {
  KWiseHash h(4, 2024);
  int sum = 0;
  for (uint64_t k = 0; k < 100000; ++k) sum += h.EvalSign(k);
  EXPECT_LT(std::abs(sum), 2000);
}

TEST(KWiseHashTest, EvalUnitInRange) {
  KWiseHash h(2, 31);
  for (uint64_t k = 0; k < 1000; ++k) {
    double u = h.EvalUnit(k);
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(KWiseHashTest, EvalMatchesDirectPolynomial) {
  // Degree-2 polynomial evaluated by hand mod p.
  KWiseHash h(2, 12);
  const uint64_t p = KWiseHash::kPrime;
  // Recover coefficients via evaluations: c0 = Eval(0), c1 = Eval(1)-c0.
  const uint64_t c0 = h.Eval(0);
  const uint64_t c1 = (h.Eval(1) + p - c0) % p;
  for (uint64_t x : {uint64_t{2}, uint64_t{3}, uint64_t{1000}, p - 1}) {
    const unsigned __int128 expected =
        (static_cast<unsigned __int128>(c1) * (x % p) + c0) % p;
    EXPECT_EQ(h.Eval(x), static_cast<uint64_t>(expected));
  }
}

// ----------------------------------------------------------------- Hash64

TEST(HashFrontDoorTest, IntegerAndStringOverloadsWork) {
  EXPECT_NE(Hash64(uint64_t{1}, 0), Hash64(uint64_t{2}, 0));
  EXPECT_NE(Hash64("a", 0), Hash64("b", 0));
  EXPECT_NE(Hash64(uint64_t{1}, 0), Hash64(uint64_t{1}, 1));
}

TEST(HashFrontDoorTest, HashToUnitRange) {
  for (uint64_t k = 0; k < 10000; ++k) {
    double u = HashToUnit(Hash64(k, 5));
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(HashFrontDoorTest, DeriveSeedAvoidsClusters) {
  std::set<uint64_t> seeds;
  for (uint64_t i = 0; i < 1000; ++i) seeds.insert(DeriveSeed(42, i));
  EXPECT_EQ(seeds.size(), 1000u);
}

TEST(HashFrontDoorTest, AvalancheOnIntegerKeys) {
  // Flipping one input bit should flip ~half the output bits on average.
  double total_flips = 0;
  const int kKeys = 200;
  for (uint64_t k = 0; k < kKeys; ++k) {
    const uint64_t h0 = Hash64(k, 7);
    for (int bit = 0; bit < 64; ++bit) {
      const uint64_t h1 = Hash64(k ^ (uint64_t{1} << bit), 7);
      total_flips += PopCount64(h0 ^ h1);
    }
  }
  const double mean_flips = total_flips / (kKeys * 64);
  EXPECT_NEAR(mean_flips, 32.0, 1.5);
}

// Parameterized uniformity sweep across all hash families.
class HashUniformityTest : public ::testing::TestWithParam<int> {};

TEST_P(HashUniformityTest, ChiSquaredBucketUniformity) {
  const int family = GetParam();
  const uint64_t kBuckets = 128;
  const int n = 128000;
  std::vector<int> counts(kBuckets, 0);
  TabulationHash tab(555);
  KWiseHash poly(4, 555);
  for (int i = 0; i < n; ++i) {
    uint64_t h = 0;
    const uint64_t key = static_cast<uint64_t>(i);
    switch (family) {
      case 0:
        h = Hash64(key, 555);
        break;
      case 1:
        h = XxHash64(&key, sizeof(key), 555);
        break;
      case 2:
        h = Murmur3_128(&key, sizeof(key), 555).low;
        break;
      case 3:
        h = tab.Eval(key);
        break;
      case 4:
        h = poly.Eval(key);
        break;
    }
    counts[h % kBuckets]++;
  }
  // Chi-squared with 127 dof: mean 127, stddev ~16; allow generous slack.
  double chi2 = 0;
  const double expected = static_cast<double>(n) / kBuckets;
  for (int c : counts) {
    const double d = c - expected;
    chi2 += d * d / expected;
  }
  EXPECT_LT(chi2, 127 + 6 * 16) << "family " << family;
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, HashUniformityTest,
                         ::testing::Values(0, 1, 2, 3, 4));

}  // namespace
}  // namespace gems
