#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/numeric.h"
#include "core/summary.h"
#include "moments/ams.h"
#include "moments/compressed_sensing.h"
#include "moments/frequent_directions.h"
#include "moments/jl.h"
#include "moments/sparse_jl.h"
#include "moments/tensor_sketch.h"
#include "workload/baselines.h"
#include "workload/generators.h"

namespace gems {
namespace {

static_assert(WeightedItemSummary<AmsSketch>);
static_assert(MergeableSummary<AmsSketch>);
static_assert(SerializableSummary<AmsSketch>);

// --------------------------------------------------------------------- AMS

TEST(AmsTest, F2OfSingleHeavyItem) {
  AmsSketch ams(16, 5, 1);
  ams.Update(7, 1000);
  // F2 = 10^6 exactly (single item: every estimator sees (s*1000)^2).
  EXPECT_DOUBLE_EQ(ams.EstimateF2(), 1e6);
}

TEST(AmsTest, F2AccurateOnZipf) {
  std::vector<double> errors;
  for (int t = 0; t < 10; ++t) {
    AmsSketch ams(64, 5, t);
    ExactFrequencies exact;
    ZipfGenerator zipf(10000, 1.1, t);
    for (int i = 0; i < 50000; ++i) {
      const uint64_t item = zipf.Next();
      ams.Update(item);
      exact.Update(item);
    }
    errors.push_back((ams.EstimateF2() - exact.F2()) / exact.F2());
  }
  // Std error ~ sqrt(2/64) ~ 0.18; the median-of-5-groups tightens it.
  EXPECT_LT(Rms(errors), 0.25);
  EXPECT_LT(std::abs(Mean(errors)), 0.15);
}

TEST(AmsTest, NegativeUpdatesCancel) {
  AmsSketch ams(32, 3, 2);
  ams.Update(5, 100);
  ams.Update(5, -100);
  EXPECT_DOUBLE_EQ(ams.EstimateF2(), 0.0);
}

TEST(AmsTest, InnerProductEstimate) {
  AmsSketch a(128, 5, 3), b(128, 5, 3);
  ExactFrequencies ea, eb;
  // Unshuffled so both streams share the item space [0, 1000).
  ZipfGenerator za(1000, 1.0, 4, /*shuffle=*/false);
  ZipfGenerator zb(1000, 1.0, 5, /*shuffle=*/false);
  for (int i = 0; i < 30000; ++i) {
    const uint64_t x = za.Next(), y = zb.Next();
    a.Update(x);
    ea.Update(x);
    b.Update(y);
    eb.Update(y);
  }
  double truth = 0;
  for (const auto& [item, count] : ea.TopK(1000)) {
    truth += static_cast<double>(count) * eb.Count(item);
  }
  auto estimate = a.InnerProduct(b);
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(estimate.value(), truth, 0.35 * truth);
}

TEST(AmsTest, MergeEqualsSingleStream) {
  AmsSketch a(32, 3, 6), b(32, 3, 6), whole(32, 3, 6);
  ZipfGenerator zipf(500, 1.1, 7);
  for (int i = 0; i < 10000; ++i) {
    const uint64_t item = zipf.Next();
    whole.Update(item);
    (i % 2 == 0 ? a : b).Update(item);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_DOUBLE_EQ(a.EstimateF2(), whole.EstimateF2());
}

TEST(AmsTest, ConfidenceIntervalCoversUsually) {
  int covered = 0;
  const int trials = 30;
  for (int t = 0; t < trials; ++t) {
    AmsSketch ams(128, 5, 100 + t);
    ExactFrequencies exact;
    ZipfGenerator zipf(2000, 1.1, 200 + t);
    for (int i = 0; i < 20000; ++i) {
      const uint64_t item = zipf.Next();
      ams.Update(item);
      exact.Update(item);
    }
    if (ams.F2Estimate(0.95).Covers(exact.F2())) ++covered;
  }
  EXPECT_GE(covered, trials * 8 / 10);
}

TEST(AmsTest, SerializeRoundTrip) {
  AmsSketch ams(16, 3, 8);
  ZipfGenerator zipf(100, 1.0, 9);
  for (int i = 0; i < 1000; ++i) ams.Update(zipf.Next());
  auto r = AmsSketch::Deserialize(ams.Serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().EstimateF2(), ams.EstimateF2());
}

// --------------------------------------------------------------- Dense JL

TEST(JlTest, PreservesNormsWithinEpsilon) {
  const size_t d = 1000;
  const size_t m = JlTransform::DimensionFor(0.2, 50);
  JlTransform jl(d, m, JlEnsemble::kGaussian, 10);
  Rng rng(11);
  int violations = 0;
  for (int trial = 0; trial < 50; ++trial) {
    std::vector<double> v(d);
    for (double& x : v) x = rng.NextGaussian();
    const double original = L2Norm(v);
    const double projected = L2Norm(jl.Project(v));
    const double ratio = projected / original;
    if (ratio < 0.8 || ratio > 1.2) ++violations;
  }
  EXPECT_LE(violations, 2);
}

TEST(JlTest, PreservesPairwiseDistances) {
  const size_t d = 500;
  const size_t m = 400;
  JlTransform jl(d, m, JlEnsemble::kRademacher, 12);
  Rng rng(13);
  std::vector<std::vector<double>> points(10);
  std::vector<std::vector<double>> projected(10);
  for (int i = 0; i < 10; ++i) {
    points[i].resize(d);
    for (double& x : points[i]) x = rng.NextGaussian();
    projected[i] = jl.Project(points[i]);
  }
  for (int i = 0; i < 10; ++i) {
    for (int j = i + 1; j < 10; ++j) {
      const double original = L2Distance(points[i], points[j]);
      const double after = L2Distance(projected[i], projected[j]);
      EXPECT_NEAR(after / original, 1.0, 0.25) << i << "," << j;
    }
  }
}

TEST(JlTest, GaussianAndRademacherBothWork) {
  const size_t d = 200, m = 300;
  Rng rng(14);
  std::vector<double> v(d);
  for (double& x : v) x = rng.NextGaussian();
  const double norm = L2Norm(v);
  for (JlEnsemble ensemble :
       {JlEnsemble::kGaussian, JlEnsemble::kRademacher}) {
    JlTransform jl(d, m, ensemble, 15);
    EXPECT_NEAR(L2Norm(jl.Project(v)) / norm, 1.0, 0.2);
  }
}

TEST(JlTest, DimensionForFormula) {
  // m = 8 ln(n) / eps^2.
  EXPECT_EQ(JlTransform::DimensionFor(0.5, 100),
            static_cast<size_t>(std::ceil(8 * std::log(100.0) / 0.25)));
  EXPECT_GT(JlTransform::DimensionFor(0.1, 100),
            JlTransform::DimensionFor(0.2, 100));
}

TEST(JlTest, ProjectionIsLinear) {
  JlTransform jl(50, 20, JlEnsemble::kGaussian, 16);
  Rng rng(17);
  std::vector<double> a(50), b(50), sum(50);
  for (size_t i = 0; i < 50; ++i) {
    a[i] = rng.NextGaussian();
    b[i] = rng.NextGaussian();
    sum[i] = a[i] + b[i];
  }
  const auto pa = jl.Project(a);
  const auto pb = jl.Project(b);
  const auto psum = jl.Project(sum);
  for (size_t i = 0; i < 20; ++i) {
    EXPECT_NEAR(psum[i], pa[i] + pb[i], 1e-9);
  }
}

// -------------------------------------------------------------- Sparse JL

TEST(SparseJlTest, PreservesNormsOnAverage) {
  SparseJlTransform sjl(256, 4, 18);
  Rng rng(19);
  std::vector<double> ratios;
  for (int trial = 0; trial < 40; ++trial) {
    std::vector<double> v(500);
    for (double& x : v) x = rng.NextGaussian();
    ratios.push_back(L2Norm(sjl.Project(v)) / L2Norm(v));
  }
  EXPECT_NEAR(Mean(ratios), 1.0, 0.1);
}

TEST(SparseJlTest, SparseAndDenseProjectionAgree) {
  SparseJlTransform sjl(64, 2, 20);
  std::vector<double> dense(100, 0.0);
  dense[3] = 1.5;
  dense[42] = -2.0;
  const std::vector<std::pair<uint64_t, double>> sparse = {{3, 1.5},
                                                           {42, -2.0}};
  EXPECT_EQ(sjl.Project(dense), sjl.ProjectSparse(sparse));
}

TEST(SparseJlTest, MoreBlocksTightenConcentration) {
  Rng rng(21);
  std::vector<double> v(1000);
  for (double& x : v) x = rng.NextGaussian();
  const double norm = L2Norm(v);

  std::vector<double> err1, err4;
  for (int t = 0; t < 30; ++t) {
    SparseJlTransform one_block(64, 1, 100 + t);
    SparseJlTransform four_blocks(64, 4, 200 + t);
    err1.push_back(std::abs(L2Norm(one_block.Project(v)) / norm - 1.0));
    err4.push_back(std::abs(L2Norm(four_blocks.Project(v)) / norm - 1.0));
  }
  EXPECT_LT(Mean(err4), Mean(err1));
}

TEST(SparseJlTest, OutputDimension) {
  SparseJlTransform sjl(128, 3, 22);
  EXPECT_EQ(sjl.output_dim(), 384u);
  EXPECT_EQ(sjl.Project(std::vector<double>(10, 1.0)).size(), 384u);
}

// ---------------------------------------------------- Compressed sensing

TEST(CompressedSensingTest, ExactRecoveryWithEnoughMeasurements) {
  const size_t d = 256, s = 5;
  const size_t m = 80;  // ~ 4 s log(d/s), comfortably enough.
  SensingMatrix matrix(m, d, 1);
  Rng rng(2);
  std::vector<double> signal(d, 0.0);
  for (size_t i = 0; i < s; ++i) {
    signal[rng.NextBounded(d)] = rng.NextGaussian() * 3 + 1;
  }
  const auto y = matrix.Measure(signal);
  auto result = OrthogonalMatchingPursuit(matrix, y, s);
  ASSERT_TRUE(result.ok());
  for (size_t i = 0; i < d; ++i) {
    EXPECT_NEAR(result.value().signal[i], signal[i], 1e-6) << "coord " << i;
  }
  EXPECT_LT(result.value().residual_norm, 1e-6);
}

TEST(CompressedSensingTest, FailsGracefullyWithTooFewMeasurements) {
  const size_t d = 256, s = 20;
  SensingMatrix matrix(10, d, 3);  // Far too few measurements.
  Rng rng(4);
  std::vector<double> signal(d, 0.0);
  for (size_t i = 0; i < s; ++i) signal[rng.NextBounded(d)] = 1.0;
  const auto y = matrix.Measure(signal);
  auto result = OrthogonalMatchingPursuit(matrix, y, 10);
  ASSERT_TRUE(result.ok());
  // Recovery is (almost surely) wrong, but bounded and finite.
  double err = 0;
  for (size_t i = 0; i < d; ++i) {
    err += std::abs(result.value().signal[i] - signal[i]);
    EXPECT_TRUE(std::isfinite(result.value().signal[i]));
  }
  EXPECT_GT(err, 1.0);
}

TEST(CompressedSensingTest, PhaseTransitionShape) {
  // Success rate rises from ~0 to ~1 as measurements grow: the classic
  // compressed-sensing phase transition.
  const size_t d = 128, s = 4;
  auto success_rate = [&](size_t m) {
    int successes = 0;
    for (int t = 0; t < 10; ++t) {
      SensingMatrix matrix(m, d, 100 + t);
      Rng rng(200 + t);
      std::vector<double> signal(d, 0.0);
      for (size_t i = 0; i < s; ++i) {
        signal[rng.NextBounded(d)] = 1.0 + rng.NextDouble();
      }
      const auto y = matrix.Measure(signal);
      auto result = OrthogonalMatchingPursuit(matrix, y, s);
      if (!result.ok()) continue;
      double err = 0;
      for (size_t i = 0; i < d; ++i) {
        err += std::abs(result.value().signal[i] - signal[i]);
      }
      if (err < 1e-6) ++successes;
    }
    return successes / 10.0;
  };
  EXPECT_LE(success_rate(6), 0.3);   // Below the transition.
  EXPECT_GE(success_rate(48), 0.9);  // Above it.
}

TEST(CompressedSensingTest, InputValidation) {
  SensingMatrix matrix(16, 64, 5);
  EXPECT_FALSE(
      OrthogonalMatchingPursuit(matrix, std::vector<double>(5), 2).ok());
  EXPECT_FALSE(
      OrthogonalMatchingPursuit(matrix, std::vector<double>(16), 0).ok());
  EXPECT_FALSE(
      OrthogonalMatchingPursuit(matrix, std::vector<double>(16), 17).ok());
}

// ---------------------------------------------------- Frequent Directions

// Builds a random low-rank(ish) row stream: rows = mix of a few principal
// directions plus noise.
std::vector<std::vector<double>> LowRankRows(size_t n, size_t d, size_t rank,
                                             uint64_t seed) {
  Rng rng(seed);
  std::vector<std::vector<double>> directions(rank,
                                              std::vector<double>(d));
  for (auto& direction : directions) {
    for (double& x : direction) x = rng.NextGaussian();
  }
  std::vector<std::vector<double>> rows;
  rows.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    std::vector<double> row(d, 0.0);
    for (size_t r = 0; r < rank; ++r) {
      const double weight = rng.NextGaussian() * (rank - r);  // Decaying.
      for (size_t k = 0; k < d; ++k) row[k] += weight * directions[r][k];
    }
    for (double& x : row) x += 0.1 * rng.NextGaussian();
    rows.push_back(std::move(row));
  }
  return rows;
}

TEST(FrequentDirectionsTest, CovarianceErrorWithinGuarantee) {
  const size_t d = 40, l = 16, n = 500;
  FrequentDirections fd(l, d);
  const auto rows = LowRankRows(n, d, 4, 1);
  for (const auto& row : rows) fd.Update(row);

  // Check x^T (A^T A - B^T B) x in [0 - slack, bound] on random probes.
  Rng rng(2);
  const double bound = fd.SquaredFrobenius() / (l / 2.0);
  for (int probe = 0; probe < 50; ++probe) {
    std::vector<double> x(d);
    double norm = 0;
    for (double& v : x) {
      v = rng.NextGaussian();
      norm += v * v;
    }
    norm = std::sqrt(norm);
    for (double& v : x) v /= norm;

    double exact = 0;
    for (const auto& row : rows) {
      double dot = 0;
      for (size_t k = 0; k < d; ++k) dot += row[k] * x[k];
      exact += dot * dot;
    }
    const double sketched = fd.QuadraticForm(x);
    EXPECT_LE(sketched, exact + 1e-6 * exact + 1e-6);  // Underestimate.
    EXPECT_LE(exact - sketched, bound * 1.01);          // FD guarantee.
  }
}

TEST(FrequentDirectionsTest, TrackedErrorBoundIsSound) {
  const size_t d = 30, l = 8;
  FrequentDirections fd(l, d);
  const auto rows = LowRankRows(300, d, 3, 3);
  for (const auto& row : rows) fd.Update(row);
  Rng rng(4);
  for (int probe = 0; probe < 30; ++probe) {
    std::vector<double> x(d);
    double norm = 0;
    for (double& v : x) {
      v = rng.NextGaussian();
      norm += v * v;
    }
    for (double& v : x) v /= std::sqrt(norm);
    double exact = 0;
    for (const auto& row : rows) {
      double dot = 0;
      for (size_t k = 0; k < d; ++k) dot += row[k] * x[k];
      exact += dot * dot;
    }
    EXPECT_LE(exact - fd.QuadraticForm(x),
              fd.CovarianceErrorBound() * 1.01 + 1e-9);
  }
}

TEST(FrequentDirectionsTest, ExactBelowCapacity) {
  const size_t d = 10, l = 8;
  FrequentDirections fd(l, d);
  Rng rng(5);
  std::vector<std::vector<double>> rows;
  for (int i = 0; i < 7; ++i) {  // Below l: no shrink happens.
    std::vector<double> row(d);
    for (double& v : row) v = rng.NextGaussian();
    rows.push_back(row);
    fd.Update(row);
  }
  std::vector<double> x(d, 1.0 / std::sqrt(static_cast<double>(d)));
  double exact = 0;
  for (const auto& row : rows) {
    double dot = 0;
    for (size_t k = 0; k < d; ++k) dot += row[k] * x[k];
    exact += dot * dot;
  }
  EXPECT_NEAR(fd.QuadraticForm(x), exact, 1e-9);
  EXPECT_DOUBLE_EQ(fd.CovarianceErrorBound(), 0.0);
}

TEST(FrequentDirectionsTest, MergePreservesGuarantee) {
  const size_t d = 24, l = 12;
  FrequentDirections a(l, d), b(l, d);
  const auto rows_a = LowRankRows(200, d, 3, 6);
  const auto rows_b = LowRankRows(200, d, 3, 7);
  for (const auto& row : rows_a) a.Update(row);
  for (const auto& row : rows_b) b.Update(row);
  ASSERT_TRUE(a.Merge(b).ok());

  Rng rng(8);
  const double bound = a.SquaredFrobenius() / (l / 2.0);
  for (int probe = 0; probe < 20; ++probe) {
    std::vector<double> x(d);
    double norm = 0;
    for (double& v : x) {
      v = rng.NextGaussian();
      norm += v * v;
    }
    for (double& v : x) v /= std::sqrt(norm);
    double exact = 0;
    for (const auto* rows : {&rows_a, &rows_b}) {
      for (const auto& row : *rows) {
        double dot = 0;
        for (size_t k = 0; k < d; ++k) dot += row[k] * x[k];
        exact += dot * dot;
      }
    }
    EXPECT_LE(a.QuadraticForm(x), exact * 1.0001 + 1e-6);
    // Merged FD pays at most double the single-stream bound.
    EXPECT_LE(exact - a.QuadraticForm(x), 2.0 * bound);
  }
}

TEST(FrequentDirectionsTest, ShapeMismatchRejected) {
  FrequentDirections a(8, 10), b(8, 12), c(10, 10);
  EXPECT_FALSE(a.Merge(b).ok());
  EXPECT_FALSE(a.Merge(c).ok());
}

// --------------------------------------------------------- Tensor sketch

TEST(TensorSketchTest, ApproximatesPolynomialKernel) {
  const size_t d = 64, m = 512;
  Rng rng(6);
  for (int degree : {2, 3}) {
    TensorSketch ts(m, degree, 7);
    std::vector<double> errors;
    for (int t = 0; t < 30; ++t) {
      std::vector<double> x(d), y(d);
      for (size_t i = 0; i < d; ++i) {
        x[i] = rng.NextGaussian() / std::sqrt(static_cast<double>(d));
        y[i] = rng.NextGaussian() / std::sqrt(static_cast<double>(d));
      }
      double dot = 0;
      for (size_t i = 0; i < d; ++i) dot += x[i] * y[i];
      const double kernel = std::pow(dot, degree);
      const double estimate = TensorSketch::Dot(ts.Sketch(x), ts.Sketch(y));
      errors.push_back(estimate - kernel);
    }
    // Unbiased with modest variance at m = 512; ||x|| ~ 1 so kernel <= 1.
    EXPECT_LT(std::abs(Mean(errors)), 0.05) << "degree " << degree;
    EXPECT_LT(Rms(errors), 0.2) << "degree " << degree;
  }
}

TEST(TensorSketchTest, DegreeOneIsPlainCountSketch) {
  TensorSketch ts(256, 1, 8);
  Rng rng(9);
  std::vector<double> x(32), y(32);
  for (size_t i = 0; i < 32; ++i) {
    x[i] = rng.NextGaussian();
    y[i] = rng.NextGaussian();
  }
  double dot = 0;
  for (size_t i = 0; i < 32; ++i) dot += x[i] * y[i];
  EXPECT_NEAR(TensorSketch::Dot(ts.Sketch(x), ts.Sketch(y)), dot,
              0.35 * std::abs(dot) + 1.5);
}

TEST(TensorSketchTest, SelfKernelIsPositive) {
  TensorSketch ts(256, 2, 10);
  Rng rng(11);
  std::vector<double> x(32);
  for (double& v : x) v = rng.NextGaussian();
  double norm2 = 0;
  for (double v : x) norm2 += v * v;
  // <S(x), S(x)> estimates (x.x)^2 > 0.
  EXPECT_NEAR(TensorSketch::Dot(ts.Sketch(x), ts.Sketch(x)), norm2 * norm2,
              0.5 * norm2 * norm2);
}

TEST(SparseJlTest, LinearInInput) {
  SparseJlTransform sjl(32, 2, 23);
  std::vector<double> v(50, 0.0);
  v[7] = 2.0;
  auto p1 = sjl.Project(v);
  v[7] = 4.0;
  auto p2 = sjl.Project(v);
  for (size_t i = 0; i < p1.size(); ++i) {
    EXPECT_NEAR(p2[i], 2.0 * p1[i], 1e-12);
  }
}

}  // namespace
}  // namespace gems
