#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/estimate.h"
#include "core/params.h"
#include "core/summary.h"
#include "core/wire.h"

namespace gems {
namespace {

TEST(EstimateTest, FromStdErrorSymmetric) {
  Estimate e = EstimateFromStdError(100.0, 10.0, 0.95);
  EXPECT_DOUBLE_EQ(e.value, 100.0);
  EXPECT_NEAR(e.lower, 100.0 - 19.6, 0.05);
  EXPECT_NEAR(e.upper, 100.0 + 19.6, 0.05);
  EXPECT_DOUBLE_EQ(e.confidence, 0.95);
}

TEST(EstimateTest, CoversChecksInterval) {
  Estimate e = EstimateFromStdError(50.0, 5.0, 0.95);
  EXPECT_TRUE(e.Covers(50.0));
  EXPECT_TRUE(e.Covers(45.0));
  EXPECT_FALSE(e.Covers(0.0));
  EXPECT_FALSE(e.Covers(100.0));
}

TEST(EstimateTest, HigherConfidenceWidensInterval) {
  Estimate narrow = EstimateFromStdError(0.0, 1.0, 0.90);
  Estimate wide = EstimateFromStdError(0.0, 1.0, 0.99);
  EXPECT_LT(narrow.upper, wide.upper);
  EXPECT_GT(narrow.lower, wide.lower);
}

TEST(EstimateTest, ToStringMentionsBounds) {
  Estimate e = EstimateFromStdError(10.0, 1.0, 0.95);
  const std::string s = e.ToString();
  EXPECT_NE(s.find("10"), std::string::npos);
  EXPECT_NE(s.find("95%"), std::string::npos);
}

TEST(WireTest, RoundTrip) {
  ByteWriter w;
  w.PutU64(777);
  std::vector<uint8_t> bytes =
      WrapEnvelope(SketchTypeId::kHyperLogLog, std::move(w).TakeBytes());
  EXPECT_EQ(bytes.size(), kWireHeaderSize + 8);
  Result<ByteReader> r = OpenEnvelope(SketchTypeId::kHyperLogLog, bytes);
  ASSERT_TRUE(r.ok());
  uint64_t payload;
  ASSERT_TRUE(r.value().GetU64(&payload).ok());
  EXPECT_EQ(payload, 777u);
}

TEST(WireTest, EnvelopeStartsWithAsciiMagic) {
  std::vector<uint8_t> bytes = WrapEnvelope(SketchTypeId::kKll, {});
  ASSERT_GE(bytes.size(), 4u);
  EXPECT_EQ(bytes[0], 'G');
  EXPECT_EQ(bytes[1], 'E');
  EXPECT_EQ(bytes[2], 'M');
  EXPECT_EQ(bytes[3], 'S');
}

TEST(WireTest, TypeMismatchRejectedAsCorruption) {
  std::vector<uint8_t> bytes = WrapEnvelope(SketchTypeId::kBloomFilter, {});
  EXPECT_EQ(OpenEnvelope(SketchTypeId::kCountMin, bytes).status().code(),
            StatusCode::kCorruption);
  Result<SketchTypeId> type = PeekSketchType(bytes);
  ASSERT_TRUE(type.ok());
  EXPECT_EQ(type.value(), SketchTypeId::kBloomFilter);
}

TEST(WireTest, BadMagicRejected) {
  std::vector<uint8_t> bytes = WrapEnvelope(SketchTypeId::kHyperLogLog, {1});
  bytes[0] ^= 0xFF;
  EXPECT_EQ(ParseEnvelope(bytes).status().code(), StatusCode::kCorruption);
}

TEST(WireTest, TruncationRejected) {
  std::vector<uint8_t> bytes =
      WrapEnvelope(SketchTypeId::kHyperLogLog, {1, 2, 3, 4});
  for (size_t keep = 0; keep < bytes.size(); ++keep) {
    std::vector<uint8_t> cut(bytes.begin(), bytes.begin() + keep);
    EXPECT_EQ(ParseEnvelope(cut).status().code(), StatusCode::kCorruption);
  }
}

TEST(WireTest, TrailingBytesRejected) {
  std::vector<uint8_t> bytes = WrapEnvelope(SketchTypeId::kKll, {9, 9});
  bytes.push_back(0);
  EXPECT_EQ(ParseEnvelope(bytes).status().code(), StatusCode::kCorruption);
}

TEST(WireTest, FutureVersionRejected) {
  std::vector<uint8_t> bytes = WrapEnvelope(SketchTypeId::kKll, {5});
  bytes[6] = kWireVersion + 1;
  EXPECT_EQ(ParseEnvelope(bytes).status().code(), StatusCode::kCorruption);
}

TEST(WireTest, UnknownTypeIdRejected) {
  std::vector<uint8_t> bytes = WrapEnvelope(SketchTypeId::kKll, {5});
  bytes[4] = 0xFF;
  bytes[5] = 0xFF;
  EXPECT_EQ(ParseEnvelope(bytes).status().code(), StatusCode::kCorruption);
}

TEST(WireTest, EveryByteFlipRejected) {
  ByteWriter w;
  w.PutU64(0xDEADBEEF);
  std::vector<uint8_t> bytes =
      WrapEnvelope(SketchTypeId::kTDigest, std::move(w).TakeBytes());
  for (size_t i = 0; i < bytes.size(); ++i) {
    std::vector<uint8_t> corrupt = bytes;
    corrupt[i] ^= 0x20;
    EXPECT_EQ(ParseEnvelope(corrupt).status().code(), StatusCode::kCorruption)
        << "byte " << i;
  }
}

// Compile-time checks that the concepts describe what we think they do.
struct FakeSummary {
  void Update(uint64_t) {}
  void Update(double) = delete;  // Make ValueSummary fail below.
  Status Merge(const FakeSummary&) { return Status::Ok(); }
};
static_assert(ItemSummary<FakeSummary>);
static_assert(MergeableSummary<FakeSummary>);
static_assert(!ValueSummary<FakeSummary>);

struct FakeQuantile {
  void Update(double) {}
};
static_assert(ValueSummary<FakeQuantile>);
static_assert(!MergeableSummary<FakeQuantile>);

TEST(SummaryConceptsTest, ConceptsCompile) { SUCCEED(); }

// ---------------------------------------------------------------- Params

TEST(ParamsTest, HllPrecisionInvertsErrorLaw) {
  // 1% error needs p = 14 (1.04/sqrt(2^14) = 0.81%).
  EXPECT_EQ(HllPrecisionFor(0.01), 14);
  EXPECT_LE(HllErrorAt(HllPrecisionFor(0.01)), 0.01);
  EXPECT_LE(HllErrorAt(HllPrecisionFor(0.05)), 0.05);
  // Clamped to the supported range.
  EXPECT_EQ(HllPrecisionFor(0.9), 4);
  EXPECT_EQ(HllPrecisionFor(0.0001), 18);
}

TEST(ParamsTest, KmvKInvertsErrorLaw) {
  const uint32_t k = KmvKFor(0.02);
  EXPECT_LE(1.0 / std::sqrt(static_cast<double>(k) - 2.0), 0.02);
  EXPECT_GE(k, 2502u);
}

TEST(ParamsTest, CountMinDimensions) {
  EXPECT_EQ(CountMinWidthFor(0.001), 2719u);  // ceil(e/0.001).
  EXPECT_EQ(CountMinDepthFor(0.01), 5u);      // ceil(ln 100) = 5.
  EXPECT_EQ(CountMinBytesAt(2719, 5), 2719u * 5 * 8);
}

TEST(ParamsTest, BloomBitsMatchFormula) {
  // 1% FPR needs ~9.59 bits/item.
  const uint64_t bits = BloomBitsFor(1000, 0.01);
  EXPECT_NEAR(static_cast<double>(bits) / 1000.0, 9.585, 0.01);
  EXPECT_EQ(BloomBytesAt(801), 101u);
}

TEST(ParamsTest, OtherAdvisors) {
  EXPECT_EQ(SpaceSavingCapacityFor(0.001), 1000u);
  EXPECT_GE(KllKFor(0.01), 170u);
}

}  // namespace
}  // namespace gems
