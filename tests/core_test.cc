#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/estimate.h"
#include "core/frame.h"
#include "core/params.h"
#include "core/summary.h"

namespace gems {
namespace {

TEST(EstimateTest, FromStdErrorSymmetric) {
  Estimate e = EstimateFromStdError(100.0, 10.0, 0.95);
  EXPECT_DOUBLE_EQ(e.value, 100.0);
  EXPECT_NEAR(e.lower, 100.0 - 19.6, 0.05);
  EXPECT_NEAR(e.upper, 100.0 + 19.6, 0.05);
  EXPECT_DOUBLE_EQ(e.confidence, 0.95);
}

TEST(EstimateTest, CoversChecksInterval) {
  Estimate e = EstimateFromStdError(50.0, 5.0, 0.95);
  EXPECT_TRUE(e.Covers(50.0));
  EXPECT_TRUE(e.Covers(45.0));
  EXPECT_FALSE(e.Covers(0.0));
  EXPECT_FALSE(e.Covers(100.0));
}

TEST(EstimateTest, HigherConfidenceWidensInterval) {
  Estimate narrow = EstimateFromStdError(0.0, 1.0, 0.90);
  Estimate wide = EstimateFromStdError(0.0, 1.0, 0.99);
  EXPECT_LT(narrow.upper, wide.upper);
  EXPECT_GT(narrow.lower, wide.lower);
}

TEST(EstimateTest, ToStringMentionsBounds) {
  Estimate e = EstimateFromStdError(10.0, 1.0, 0.95);
  const std::string s = e.ToString();
  EXPECT_NE(s.find("10"), std::string::npos);
  EXPECT_NE(s.find("95%"), std::string::npos);
}

TEST(FrameTest, RoundTrip) {
  ByteWriter w;
  WriteFrameHeader(SketchType::kHyperLogLog, &w);
  w.PutU64(777);
  ByteReader r(w.bytes());
  ASSERT_TRUE(ReadFrameHeader(SketchType::kHyperLogLog, &r).ok());
  uint64_t payload;
  ASSERT_TRUE(r.GetU64(&payload).ok());
  EXPECT_EQ(payload, 777u);
}

TEST(FrameTest, TypeMismatchRejected) {
  ByteWriter w;
  WriteFrameHeader(SketchType::kBloomFilter, &w);
  ByteReader r(w.bytes());
  Status s = ReadFrameHeader(SketchType::kCountMin, &r);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

TEST(FrameTest, BadMagicRejected) {
  std::vector<uint8_t> bytes = {0x00, 0x00, 0x01, 0x05, 0x00};
  ByteReader r(bytes);
  EXPECT_EQ(ReadFrameHeader(SketchType::kHyperLogLog, &r).code(),
            StatusCode::kCorruption);
}

TEST(FrameTest, TruncatedHeaderRejected) {
  std::vector<uint8_t> bytes = {0xE5};
  ByteReader r(bytes);
  EXPECT_EQ(ReadFrameHeader(SketchType::kHyperLogLog, &r).code(),
            StatusCode::kCorruption);
}

TEST(FrameTest, BadVersionRejected) {
  ByteWriter w;
  WriteFrameHeader(SketchType::kKll, &w);
  std::vector<uint8_t> bytes = w.bytes();
  bytes[2] = 99;  // Corrupt the version byte.
  ByteReader r(bytes);
  EXPECT_EQ(ReadFrameHeader(SketchType::kKll, &r).code(),
            StatusCode::kCorruption);
}

// Compile-time checks that the concepts describe what we think they do.
struct FakeSummary {
  void Update(uint64_t) {}
  void Update(double) = delete;  // Make ValueSummary fail below.
  Status Merge(const FakeSummary&) { return Status::Ok(); }
};
static_assert(ItemSummary<FakeSummary>);
static_assert(MergeableSummary<FakeSummary>);
static_assert(!ValueSummary<FakeSummary>);

struct FakeQuantile {
  void Update(double) {}
};
static_assert(ValueSummary<FakeQuantile>);
static_assert(!MergeableSummary<FakeQuantile>);

TEST(SummaryConceptsTest, ConceptsCompile) { SUCCEED(); }

// ---------------------------------------------------------------- Params

TEST(ParamsTest, HllPrecisionInvertsErrorLaw) {
  // 1% error needs p = 14 (1.04/sqrt(2^14) = 0.81%).
  EXPECT_EQ(HllPrecisionFor(0.01), 14);
  EXPECT_LE(HllErrorAt(HllPrecisionFor(0.01)), 0.01);
  EXPECT_LE(HllErrorAt(HllPrecisionFor(0.05)), 0.05);
  // Clamped to the supported range.
  EXPECT_EQ(HllPrecisionFor(0.9), 4);
  EXPECT_EQ(HllPrecisionFor(0.0001), 18);
}

TEST(ParamsTest, KmvKInvertsErrorLaw) {
  const uint32_t k = KmvKFor(0.02);
  EXPECT_LE(1.0 / std::sqrt(static_cast<double>(k) - 2.0), 0.02);
  EXPECT_GE(k, 2502u);
}

TEST(ParamsTest, CountMinDimensions) {
  EXPECT_EQ(CountMinWidthFor(0.001), 2719u);  // ceil(e/0.001).
  EXPECT_EQ(CountMinDepthFor(0.01), 5u);      // ceil(ln 100) = 5.
  EXPECT_EQ(CountMinBytesAt(2719, 5), 2719u * 5 * 8);
}

TEST(ParamsTest, BloomBitsMatchFormula) {
  // 1% FPR needs ~9.59 bits/item.
  const uint64_t bits = BloomBitsFor(1000, 0.01);
  EXPECT_NEAR(static_cast<double>(bits) / 1000.0, 9.585, 0.01);
  EXPECT_EQ(BloomBytesAt(801), 101u);
}

TEST(ParamsTest, OtherAdvisors) {
  EXPECT_EQ(SpaceSavingCapacityFor(0.001), 1000u);
  EXPECT_GE(KllKFor(0.01), 170u);
}

}  // namespace
}  // namespace gems
