#include <cmath>
#include <cstdint>
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "common/bits.h"
#include "common/bytes.h"
#include "common/hugepage.h"
#include "common/layout.h"
#include "common/numeric.h"
#include "common/random.h"
#include "common/status.h"
#include "common/flat_map.h"

namespace gems {
namespace {

// ---------------------------------------------------------------- Status

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::InvalidArgument("k must be positive");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "k must be positive");
  EXPECT_EQ(s.ToString(), "InvalidArgument: k must be positive");
}

TEST(StatusTest, AllFactoryCodesDistinct) {
  EXPECT_EQ(Status::Corruption("x").code(), StatusCode::kCorruption);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::Unimplemented("x").code(), StatusCode::kUnimplemented);
  EXPECT_EQ(Status::FailedPrecondition("x").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("missing"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, WorksWithMoveOnlyValueAccess) {
  Result<std::string> r(std::string(1000, 'x'));
  ASSERT_TRUE(r.ok());
  std::string v = std::move(r).value();
  EXPECT_EQ(v.size(), 1000u);
}

// ------------------------------------------------------------------ Bits

TEST(BitsTest, CountLeadingZeros) {
  EXPECT_EQ(CountLeadingZeros64(0), 64);
  EXPECT_EQ(CountLeadingZeros64(1), 63);
  EXPECT_EQ(CountLeadingZeros64(uint64_t{1} << 63), 0);
  EXPECT_EQ(CountLeadingZeros64(0xFF), 56);
}

TEST(BitsTest, CountTrailingZeros) {
  EXPECT_EQ(CountTrailingZeros64(0), 64);
  EXPECT_EQ(CountTrailingZeros64(1), 0);
  EXPECT_EQ(CountTrailingZeros64(uint64_t{1} << 40), 40);
}

TEST(BitsTest, PowersOfTwo) {
  EXPECT_TRUE(IsPowerOfTwo(1));
  EXPECT_TRUE(IsPowerOfTwo(uint64_t{1} << 50));
  EXPECT_FALSE(IsPowerOfTwo(0));
  EXPECT_FALSE(IsPowerOfTwo(3));
  EXPECT_EQ(NextPowerOfTwo(1), 1u);
  EXPECT_EQ(NextPowerOfTwo(3), 4u);
  EXPECT_EQ(NextPowerOfTwo(1024), 1024u);
  EXPECT_EQ(NextPowerOfTwo(1025), 2048u);
}

TEST(BitsTest, Logs) {
  EXPECT_EQ(FloorLog2(1), 0);
  EXPECT_EQ(FloorLog2(2), 1);
  EXPECT_EQ(FloorLog2(3), 1);
  EXPECT_EQ(FloorLog2(uint64_t{1} << 62), 62);
  EXPECT_EQ(CeilLog2(1), 0);
  EXPECT_EQ(CeilLog2(3), 2);
  EXPECT_EQ(CeilLog2(4), 2);
  EXPECT_EQ(CeilLog2(5), 3);
}

TEST(BitsTest, RankOfLeftmostOne) {
  // Within a 4-bit window: 0b1000 -> 1, 0b0100 -> 2, 0b0001 -> 4, 0 -> 5.
  EXPECT_EQ(RankOfLeftmostOne(0b1000, 4), 1);
  EXPECT_EQ(RankOfLeftmostOne(0b0100, 4), 2);
  EXPECT_EQ(RankOfLeftmostOne(0b0010, 4), 3);
  EXPECT_EQ(RankOfLeftmostOne(0b0001, 4), 4);
  EXPECT_EQ(RankOfLeftmostOne(0, 4), 5);
  // High bits outside the window are masked off.
  EXPECT_EQ(RankOfLeftmostOne(0b110000, 4), 5);
  EXPECT_EQ(RankOfLeftmostOne(~uint64_t{0}, 64), 1);
}

// ----------------------------------------------------------------- Bytes

TEST(BytesTest, RoundTripFixedWidth) {
  ByteWriter w;
  w.PutU8(0xAB);
  w.PutU16(0xBEEF);
  w.PutU32(0xDEADBEEF);
  w.PutU64(0x0123456789ABCDEFULL);
  w.PutI64(-42);
  w.PutDouble(3.14159);

  ByteReader r(w.bytes());
  uint8_t u8;
  uint16_t u16;
  uint32_t u32;
  uint64_t u64;
  int64_t i64;
  double d;
  ASSERT_TRUE(r.GetU8(&u8).ok());
  ASSERT_TRUE(r.GetU16(&u16).ok());
  ASSERT_TRUE(r.GetU32(&u32).ok());
  ASSERT_TRUE(r.GetU64(&u64).ok());
  ASSERT_TRUE(r.GetI64(&i64).ok());
  ASSERT_TRUE(r.GetDouble(&d).ok());
  EXPECT_EQ(u8, 0xAB);
  EXPECT_EQ(u16, 0xBEEF);
  EXPECT_EQ(u32, 0xDEADBEEFu);
  EXPECT_EQ(u64, 0x0123456789ABCDEFULL);
  EXPECT_EQ(i64, -42);
  EXPECT_DOUBLE_EQ(d, 3.14159);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, VarintRoundTripBoundaries) {
  const uint64_t cases[] = {0,
                            1,
                            127,
                            128,
                            16383,
                            16384,
                            (uint64_t{1} << 35) - 1,
                            uint64_t{1} << 35,
                            std::numeric_limits<uint64_t>::max()};
  ByteWriter w;
  for (uint64_t v : cases) w.PutVarint(v);
  ByteReader r(w.bytes());
  for (uint64_t expected : cases) {
    uint64_t v;
    ASSERT_TRUE(r.GetVarint(&v).ok());
    EXPECT_EQ(v, expected);
  }
  EXPECT_TRUE(r.AtEnd());
}

TEST(BytesTest, VarintSmallValuesUseOneByte) {
  ByteWriter w;
  w.PutVarint(127);
  EXPECT_EQ(w.size(), 1u);
}

TEST(BytesTest, StringRoundTrip) {
  ByteWriter w;
  w.PutString("hello");
  w.PutString("");
  w.PutString(std::string(1000, 'z'));
  ByteReader r(w.bytes());
  std::string a, b, c;
  ASSERT_TRUE(r.GetString(&a).ok());
  ASSERT_TRUE(r.GetString(&b).ok());
  ASSERT_TRUE(r.GetString(&c).ok());
  EXPECT_EQ(a, "hello");
  EXPECT_EQ(b, "");
  EXPECT_EQ(c, std::string(1000, 'z'));
}

TEST(BytesTest, TruncatedReadsFailWithCorruption) {
  ByteWriter w;
  w.PutU32(7);
  ByteReader r(w.bytes());
  uint64_t v;
  Status s = r.GetU64(&v);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kCorruption);
}

TEST(BytesTest, TruncatedVarintFails) {
  std::vector<uint8_t> bytes = {0x80, 0x80};  // Continuation never ends.
  ByteReader r(bytes);
  uint64_t v;
  EXPECT_EQ(r.GetVarint(&v).code(), StatusCode::kCorruption);
}

TEST(BytesTest, OverlongVarintFails) {
  std::vector<uint8_t> bytes(11, 0x80);
  bytes.push_back(0x01);
  ByteReader r(bytes);
  uint64_t v;
  EXPECT_EQ(r.GetVarint(&v).code(), StatusCode::kCorruption);
}

TEST(BytesTest, LengthPrefixLyingAboutSizeFails) {
  ByteWriter w;
  w.PutVarint(100);  // Claims 100 bytes follow but none do.
  ByteReader r(w.bytes());
  std::string s;
  EXPECT_EQ(r.GetString(&s).code(), StatusCode::kCorruption);
}

// ----------------------------------------------------------------- Random

TEST(RandomTest, SplitMixIsDeterministic) {
  SplitMix64 a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RandomTest, RngIsDeterministicPerSeed) {
  Rng a(7), b(7), c(8);
  bool differs = false;
  for (int i = 0; i < 100; ++i) {
    uint64_t x = a.NextU64();
    EXPECT_EQ(x, b.NextU64());
    if (x != c.NextU64()) differs = true;
  }
  EXPECT_TRUE(differs);
}

TEST(RandomTest, NextDoubleInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 10000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RandomTest, NextBoundedRespectsBound) {
  Rng rng(2);
  for (uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL}) {
    for (int i = 0; i < 1000; ++i) {
      EXPECT_LT(rng.NextBounded(bound), bound);
    }
  }
}

TEST(RandomTest, NextBoundedIsRoughlyUniform) {
  Rng rng(3);
  const uint64_t bound = 10;
  const int n = 100000;
  std::vector<int> counts(bound, 0);
  for (int i = 0; i < n; ++i) counts[rng.NextBounded(bound)]++;
  for (uint64_t b = 0; b < bound; ++b) {
    EXPECT_NEAR(counts[b], n / static_cast<int>(bound), 600);
  }
}

TEST(RandomTest, GaussianMomentsMatch) {
  Rng rng(4);
  const int n = 200000;
  std::vector<double> xs(n);
  for (double& x : xs) x = rng.NextGaussian();
  EXPECT_NEAR(Mean(xs), 0.0, 0.02);
  EXPECT_NEAR(StdDev(xs), 1.0, 0.02);
}

TEST(RandomTest, ExponentialMeanIsOne) {
  Rng rng(5);
  const int n = 200000;
  std::vector<double> xs(n);
  for (double& x : xs) x = rng.NextExponential();
  EXPECT_NEAR(Mean(xs), 1.0, 0.02);
}

TEST(RandomTest, BernoulliMatchesProbability) {
  Rng rng(6);
  const int n = 100000;
  int hits = 0;
  for (int i = 0; i < n; ++i) hits += rng.NextBernoulli(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
  EXPECT_FALSE(rng.NextBernoulli(0.0));
  EXPECT_TRUE(rng.NextBernoulli(1.0));
}

TEST(RandomTest, GeometricMeanMatches) {
  Rng rng(7);
  const double p = 0.25;
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) sum += static_cast<double>(rng.NextGeometric(p));
  // Mean of failures-before-success geometric is (1-p)/p = 3.
  EXPECT_NEAR(sum / n, 3.0, 0.1);
}

TEST(RandomTest, SignIsBalanced) {
  Rng rng(8);
  int sum = 0;
  for (int i = 0; i < 100000; ++i) sum += rng.NextSign();
  EXPECT_LT(std::abs(sum), 1500);
}

// ---------------------------------------------------------------- Numeric

TEST(NumericTest, KahanSumStable) {
  KahanSum sum;
  sum.Add(1e16);
  for (int i = 0; i < 10000; ++i) sum.Add(1.0);
  sum.Add(-1e16);
  EXPECT_DOUBLE_EQ(sum.sum(), 10000.0);
}

TEST(NumericTest, InverseNormalCdfKnownValues) {
  EXPECT_NEAR(InverseNormalCdf(0.5), 0.0, 1e-9);
  EXPECT_NEAR(InverseNormalCdf(0.975), 1.959963985, 1e-6);
  EXPECT_NEAR(InverseNormalCdf(0.025), -1.959963985, 1e-6);
  EXPECT_NEAR(InverseNormalCdf(0.841344746), 1.0, 1e-6);
  EXPECT_NEAR(InverseNormalCdf(0.999), 3.090232306, 1e-6);
}

TEST(NumericTest, InverseNormalCdfIsMonotone) {
  double prev = -1e9;
  for (double p = 0.001; p < 1.0; p += 0.001) {
    double x = InverseNormalCdf(p);
    EXPECT_GT(x, prev);
    prev = x;
  }
}

TEST(NumericTest, NormalQuantileForConfidence) {
  EXPECT_NEAR(NormalQuantileForConfidence(0.95), 1.959963985, 1e-6);
  EXPECT_NEAR(NormalQuantileForConfidence(0.99), 2.575829304, 1e-6);
}

TEST(NumericTest, DescriptiveStats) {
  std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Mean(xs), 3.0);
  EXPECT_NEAR(StdDev(xs), std::sqrt(2.0), 1e-12);
  EXPECT_DOUBLE_EQ(Median(xs), 3.0);
  EXPECT_DOUBLE_EQ(Median({1, 2, 3, 4}), 2.5);
  EXPECT_NEAR(Rms({3, 4}), std::sqrt(12.5), 1e-12);
  EXPECT_DOUBLE_EQ(Mean({}), 0.0);
  EXPECT_DOUBLE_EQ(Median({}), 0.0);
}

TEST(NumericTest, RelativeError) {
  EXPECT_DOUBLE_EQ(RelativeError(110, 100), 0.1);
  EXPECT_DOUBLE_EQ(RelativeError(90, 100), 0.1);
  // Small truth values are floored at 1 to avoid division blowups.
  EXPECT_DOUBLE_EQ(RelativeError(0.5, 0.0), 0.5);
}

// -------------------------------------------------------------- HugePage

TEST(HugePageTest, SmallAllocationsTakeAlignedFallback) {
  const HugePageStats before = GetHugePageStats();
  {
    HugeVector<uint64_t> v(1024, 7);  // 8 KiB — far below the threshold.
    EXPECT_EQ(reinterpret_cast<uintptr_t>(v.data()) % 64, 0u)
        << "small allocations must still be cache-line aligned";
    EXPECT_EQ(v[0], 7u);
    EXPECT_EQ(v[1023], 7u);
  }
  const HugePageStats after = GetHugePageStats();
  EXPECT_GT(after.fallback_small, before.fallback_small);
  // A small allocation never consumes a hugepage verdict.
  EXPECT_EQ(after.granted + after.denied, before.granted + before.denied);
}

TEST(HugePageTest, LargeAllocationsRouteThroughMmap) {
  const HugePageStats before = GetHugePageStats();
  {
    // 4 MiB — above the 2 MiB threshold, so on Linux this takes the
    // mmap + MADV_HUGEPAGE path (granted or denied, but always counted);
    // elsewhere it falls back and still works.
    HugeVector<uint64_t> v(size_t{1} << 19, 3);
    EXPECT_EQ(reinterpret_cast<uintptr_t>(v.data()) % 64, 0u);
    v[0] = 1;
    v[v.size() - 1] = 2;
    EXPECT_EQ(v[0], 1u);
    EXPECT_EQ(v[v.size() - 1], 2u);
  }
  const HugePageStats after = GetHugePageStats();
  if (HugePagesEnabled()) {
    EXPECT_GT(after.granted + after.denied, before.granted + before.denied);
  } else {
    EXPECT_GT(after.fallback_small, before.fallback_small);
  }
}

TEST(HugePageTest, VectorSemanticsSurviveGrowthAcrossThreshold) {
  // Growing from tiny to huge crosses the allocator's routing boundary;
  // the value contents must ride across intact.
  HugeVector<uint64_t> v;
  for (uint64_t i = 0; i < (uint64_t{1} << 19); ++i) v.push_back(i);
  EXPECT_EQ(v[12345], 12345u);
  EXPECT_EQ(v.back(), (uint64_t{1} << 19) - 1);
  HugeVector<uint64_t> copy = v;
  EXPECT_EQ(copy, v);
}

TEST(HugePageTest, LayoutJsonMentionsEveryProvenanceField) {
  const std::string json = LayoutJson();
  EXPECT_NE(json.find("\"prefetch\""), std::string::npos);
  EXPECT_NE(json.find("\"hugepages_enabled\""), std::string::npos);
  EXPECT_NE(json.find("\"hugepage_granted\""), std::string::npos);
  EXPECT_NE(json.find("\"hugepage_denied\""), std::string::npos);
  EXPECT_NE(json.find("\"hugepage_fallback_small\""), std::string::npos);
}

TEST(SketchLayoutTest, NamesAreStable) {
  EXPECT_STREQ(LayoutName(SketchLayout::kFlat), "flat");
  EXPECT_STREQ(LayoutName(SketchLayout::kBlocked), "blocked");
}

TEST(FlatMap64Test, InsertFindAndGrow) {
  FlatMap64<int> map;
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(42), nullptr);
  // Push through several growth rounds; every key must stay findable with
  // its own value.
  for (uint64_t k = 0; k < 1000; ++k) {
    map[k * 0x9E3779B97F4A7C15ULL] = static_cast<int>(k);
  }
  EXPECT_EQ(map.size(), 1000u);
  for (uint64_t k = 0; k < 1000; ++k) {
    const int* value = map.Find(k * 0x9E3779B97F4A7C15ULL);
    ASSERT_NE(value, nullptr) << k;
    EXPECT_EQ(*value, static_cast<int>(k));
  }
  // operator[] on an existing key (0, inserted by the k=0 iteration)
  // returns the same entry, not a new one.
  map[0] = 7;
  map[0] += 1;
  EXPECT_EQ(map[0], 8);
  EXPECT_EQ(map.size(), 1000u);
}

TEST(FlatMap64Test, ForEachVisitsEveryEntryOnceAndClearResets) {
  FlatMap64<uint64_t> map;
  for (uint64_t k = 1; k <= 300; ++k) map[k] = k * 2;
  uint64_t visited = 0, key_sum = 0;
  map.ForEach([&](uint64_t key, uint64_t& value) {
    ++visited;
    key_sum += key;
    EXPECT_EQ(value, key * 2);
  });
  EXPECT_EQ(visited, 300u);
  EXPECT_EQ(key_sum, 300u * 301u / 2);
  map.Clear();
  EXPECT_TRUE(map.empty());
  EXPECT_EQ(map.Find(1), nullptr);
  map[5] = 9;  // Usable again after Clear.
  EXPECT_EQ(map.size(), 1u);
}

TEST(FlatMap64Test, ZeroKeyAndCollidingKeysCoexist) {
  // Key 0 must behave like any other key (emptiness is tracked out of
  // band, not via a sentinel key).
  FlatMap64<int> map;
  map[0] = 11;
  // Keys crafted to collide in small tables exercise linear probing.
  for (uint64_t k = 0; k < 64; ++k) map[k << 32] = static_cast<int>(k);
  EXPECT_EQ(*map.Find(0), 0);  // Overwritten by the k=0 iteration.
  for (uint64_t k = 1; k < 64; ++k) {
    ASSERT_NE(map.Find(k << 32), nullptr) << k;
    EXPECT_EQ(*map.Find(k << 32), static_cast<int>(k));
  }
}

}  // namespace
}  // namespace gems
