#include <cmath>
#include <cstdint>
#include <map>
#include <set>
#include <unordered_map>
#include <vector>

#include <gtest/gtest.h>

#include "core/summary.h"
#include "sampling/l0_sampler.h"
#include "sampling/reservoir.h"

namespace gems {
namespace {

static_assert(ItemSummary<ReservoirSampler>);
static_assert(MergeableSummary<ReservoirSampler>);
static_assert(MergeableSummary<L0Sampler>);
static_assert(SerializableSummary<ReservoirSampler>);

// -------------------------------------------------------------- Reservoir

TEST(ReservoirTest, KeepsEverythingBelowK) {
  ReservoirSampler rs(100, 1);
  for (uint64_t i = 0; i < 50; ++i) rs.Update(i);
  EXPECT_EQ(rs.Sample().size(), 50u);
  EXPECT_EQ(rs.ItemsSeen(), 50u);
}

TEST(ReservoirTest, SampleSizeCapped) {
  ReservoirSampler rs(10, 2);
  for (uint64_t i = 0; i < 10000; ++i) rs.Update(i);
  EXPECT_EQ(rs.Sample().size(), 10u);
  EXPECT_EQ(rs.ItemsSeen(), 10000u);
}

TEST(ReservoirTest, InclusionProbabilityIsUniform) {
  // Each of 100 items should appear with probability k/n = 10/100 = 0.1.
  const int trials = 5000;
  std::vector<int> hits(100, 0);
  for (int t = 0; t < trials; ++t) {
    ReservoirSampler rs(10, 100 + t);
    for (uint64_t i = 0; i < 100; ++i) rs.Update(i);
    for (uint64_t item : rs.Sample()) hits[item]++;
  }
  for (int i = 0; i < 100; ++i) {
    EXPECT_NEAR(static_cast<double>(hits[i]) / trials, 0.1, 0.025)
        << "item " << i;
  }
}

TEST(ReservoirTest, MergePreservesUniformity) {
  // Stream A has items 0..99, stream B has 100..299. After merge, item
  // inclusion should be ~k/300 regardless of source.
  const int trials = 4000;
  int hits_a = 0, hits_b = 0;
  for (int t = 0; t < trials; ++t) {
    ReservoirSampler a(30, 500 + t), b(30, 9000 + t);
    for (uint64_t i = 0; i < 100; ++i) a.Update(i);
    for (uint64_t i = 100; i < 300; ++i) b.Update(i);
    ASSERT_TRUE(a.Merge(b).ok());
    EXPECT_EQ(a.ItemsSeen(), 300u);
    EXPECT_EQ(a.Sample().size(), 30u);
    for (uint64_t item : a.Sample()) {
      (item < 100 ? hits_a : hits_b)++;
    }
  }
  // E[hits_a per trial] = 30 * 100/300 = 10; E[hits_b] = 20.
  EXPECT_NEAR(static_cast<double>(hits_a) / trials, 10.0, 0.5);
  EXPECT_NEAR(static_cast<double>(hits_b) / trials, 20.0, 0.5);
}

TEST(ReservoirTest, MergeRejectsKMismatch) {
  ReservoirSampler a(10, 0), b(20, 0);
  EXPECT_FALSE(a.Merge(b).ok());
}

TEST(ReservoirTest, SerializeRoundTrip) {
  ReservoirSampler rs(50, 3);
  for (uint64_t i = 0; i < 1000; ++i) rs.Update(i);
  auto r = ReservoirSampler::Deserialize(rs.Serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().ItemsSeen(), rs.ItemsSeen());
  EXPECT_EQ(r.value().Sample(), rs.Sample());
}

// ------------------------------------------------------ Weighted reservoir

TEST(WeightedReservoirTest, HeavyItemsSampledMoreOften) {
  const int trials = 2000;
  int heavy_hits = 0, light_hits = 0;
  for (int t = 0; t < trials; ++t) {
    WeightedReservoirSampler ws(1, 700 + t);
    ws.Update(1, 9.0);   // 90% of total weight.
    ws.Update(2, 1.0);   // 10%.
    const auto sample = ws.Sample();
    ASSERT_EQ(sample.size(), 1u);
    (sample[0] == 1 ? heavy_hits : light_hits)++;
  }
  EXPECT_NEAR(static_cast<double>(heavy_hits) / trials, 0.9, 0.03);
}

TEST(WeightedReservoirTest, SampleWithoutReplacement) {
  WeightedReservoirSampler ws(5, 4);
  for (uint64_t i = 0; i < 100; ++i) ws.Update(i, 1.0 + i);
  const auto sample = ws.Sample();
  EXPECT_EQ(sample.size(), 5u);
  std::set<uint64_t> unique(sample.begin(), sample.end());
  EXPECT_EQ(unique.size(), 5u);
}

TEST(WeightedReservoirTest, MergeKeepsTopKeys) {
  WeightedReservoirSampler a(3, 5), b(3, 6);
  for (uint64_t i = 0; i < 50; ++i) a.Update(i, 1.0);
  for (uint64_t i = 50; i < 100; ++i) b.Update(i, 1.0);
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.Sample().size(), 3u);
}

// ------------------------------------------------------ One-sparse recovery

TEST(OneSparseTest, ZeroVector) {
  OneSparseRecovery osr(1);
  EXPECT_EQ(osr.Classify(), OneSparseRecovery::State::kZero);
  osr.Update(5, 3);
  osr.Update(5, -3);
  EXPECT_EQ(osr.Classify(), OneSparseRecovery::State::kZero);
}

TEST(OneSparseTest, RecoversSingleton) {
  OneSparseRecovery osr(2);
  osr.Update(12345, 7);
  ASSERT_EQ(osr.Classify(), OneSparseRecovery::State::kOneSparse);
  const auto recovered = osr.Recover();
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->item, 12345u);
  EXPECT_EQ(recovered->weight, 7);
}

TEST(OneSparseTest, RecoversAfterCancellations) {
  OneSparseRecovery osr(3);
  osr.Update(10, 5);
  osr.Update(20, 3);
  osr.Update(20, -3);  // Cancels.
  const auto recovered = osr.Recover();
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->item, 10u);
  EXPECT_EQ(recovered->weight, 5);
}

TEST(OneSparseTest, DetectsDense) {
  OneSparseRecovery osr(4);
  osr.Update(1, 1);
  osr.Update(2, 1);
  EXPECT_EQ(osr.Classify(), OneSparseRecovery::State::kDense);
}

TEST(OneSparseTest, DetectsDenseWithManyItems) {
  // Fingerprint must catch multi-item states that happen to have integral
  // weighted mean.
  int false_positives = 0;
  for (int t = 0; t < 200; ++t) {
    OneSparseRecovery osr(100 + t);
    osr.Update(10, 1);
    osr.Update(30, 1);  // Mean index = 20, integral!
    if (osr.Classify() == OneSparseRecovery::State::kOneSparse) {
      ++false_positives;
    }
  }
  EXPECT_EQ(false_positives, 0);
}

TEST(OneSparseTest, NegativeSingleton) {
  OneSparseRecovery osr(5);
  osr.Update(42, -9);
  const auto recovered = osr.Recover();
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->item, 42u);
  EXPECT_EQ(recovered->weight, -9);
}

TEST(OneSparseTest, MergeCombines) {
  OneSparseRecovery a(6), b(6);
  a.Update(7, 4);
  b.Update(7, 6);
  ASSERT_TRUE(a.Merge(b).ok());
  const auto recovered = a.Recover();
  ASSERT_TRUE(recovered.has_value());
  EXPECT_EQ(recovered->weight, 10);
}

// -------------------------------------------------------- Sparse recovery

TEST(SparseRecoveryTest, RecoversSparseVector) {
  SparseRecovery sr(8, 7);
  std::map<uint64_t, int64_t> truth = {{5, 3}, {1000, -2}, {77777, 10}};
  for (const auto& [item, weight] : truth) sr.Update(item, weight);
  const auto recovered = sr.Recover();
  ASSERT_TRUE(recovered.has_value());
  std::map<uint64_t, int64_t> got;
  for (const auto& rec : *recovered) got[rec.item] = rec.weight;
  EXPECT_EQ(got, truth);
}

TEST(SparseRecoveryTest, EmptyVectorRecoversEmpty) {
  SparseRecovery sr(4, 8);
  const auto recovered = sr.Recover();
  ASSERT_TRUE(recovered.has_value());
  EXPECT_TRUE(recovered->empty());
}

TEST(SparseRecoveryTest, FailsOnDenseVector) {
  SparseRecovery sr(4, 9);
  for (uint64_t i = 0; i < 1000; ++i) sr.Update(i, 1);
  const auto recovered = sr.Recover();
  // Either explicitly fails or returns far fewer than 1000 items.
  if (recovered.has_value()) {
    EXPECT_LE(recovered->size(), 4u);
  }
}

TEST(SparseRecoveryTest, CancellationsLeaveSparse) {
  SparseRecovery sr(8, 10);
  // Insert 100 items, remove 98.
  for (uint64_t i = 0; i < 100; ++i) sr.Update(i, 2);
  for (uint64_t i = 0; i < 98; ++i) sr.Update(i, -2);
  const auto recovered = sr.Recover();
  ASSERT_TRUE(recovered.has_value());
  std::map<uint64_t, int64_t> got;
  for (const auto& rec : *recovered) got[rec.item] = rec.weight;
  const std::map<uint64_t, int64_t> expected = {{98, 2}, {99, 2}};
  EXPECT_EQ(got, expected);
}

// -------------------------------------------------------------- L0 sampler

TEST(L0SamplerTest, EmptyDrawsNothing) {
  L0Sampler l0(11);
  EXPECT_FALSE(l0.Draw().has_value());
}

TEST(L0SamplerTest, SingletonAlwaysRecovered) {
  L0Sampler l0(12);
  l0.Update(999, 5);
  const auto sample = l0.Draw();
  ASSERT_TRUE(sample.has_value());
  EXPECT_EQ(sample->item, 999u);
  EXPECT_EQ(sample->weight, 5);
}

TEST(L0SamplerTest, DrawsOnlySurvivingItems) {
  L0Sampler l0(13);
  for (uint64_t i = 0; i < 500; ++i) l0.Update(i, 1);
  for (uint64_t i = 0; i < 499; ++i) l0.Update(i, -1);  // Only 499 left.
  const auto sample = l0.Draw();
  ASSERT_TRUE(sample.has_value());
  EXPECT_EQ(sample->item, 499u);
  EXPECT_EQ(sample->weight, 1);
}

TEST(L0SamplerTest, SamplesSpreadAcrossSupport) {
  // Different seeds should sample many different coordinates.
  std::set<uint64_t> drawn;
  for (int t = 0; t < 100; ++t) {
    L0Sampler l0(1000 + t);
    for (uint64_t i = 0; i < 200; ++i) l0.Update(i, 1);
    const auto sample = l0.Draw();
    if (sample.has_value()) {
      EXPECT_LT(sample->item, 200u);
      drawn.insert(sample->item);
    }
  }
  EXPECT_GE(drawn.size(), 30u);  // Far from degenerate.
}

TEST(L0SamplerTest, SuccessRateHigh) {
  int successes = 0;
  const int trials = 100;
  for (int t = 0; t < trials; ++t) {
    L0Sampler l0(2000 + t);
    for (uint64_t i = 0; i < 1000; ++i) l0.Update(i * 31 + 7, 1);
    if (l0.Draw().has_value()) ++successes;
  }
  EXPECT_GE(successes, 95);
}

TEST(L0SamplerTest, MergeActsLikeUnion) {
  L0Sampler a(14), b(14);
  a.Update(1, 1);
  b.Update(1, -1);  // Cancels across the merge.
  b.Update(2, 3);
  ASSERT_TRUE(a.Merge(b).ok());
  const auto sample = a.Draw();
  ASSERT_TRUE(sample.has_value());
  EXPECT_EQ(sample->item, 2u);
  EXPECT_EQ(sample->weight, 3);
}

TEST(L0SamplerTest, MergeRejectsSeedMismatch) {
  L0Sampler a(15), b(16);
  EXPECT_FALSE(a.Merge(b).ok());
}

TEST(L0SamplerTest, SerializeRoundTrip) {
  L0Sampler sampler(17, L0Sampler::Options{4, 24, 2});
  for (uint64_t i = 0; i < 300; ++i) sampler.Update(i * 13 + 1, 1);
  auto restored = L0Sampler::Deserialize(sampler.Serialize());
  ASSERT_TRUE(restored.ok());
  // Same state draws the same sample.
  const auto a = sampler.Draw();
  const auto b = restored.value().Draw();
  ASSERT_TRUE(a.has_value());
  ASSERT_TRUE(b.has_value());
  EXPECT_EQ(a->item, b->item);
  EXPECT_EQ(a->weight, b->weight);
  // And the restored sampler still merges with the original lineage.
  L0Sampler more(17, L0Sampler::Options{4, 24, 2});
  more.Update(999999, 5);
  EXPECT_TRUE(restored.value().Merge(more).ok());
}

TEST(L0SamplerTest, DeserializeGarbageFails) {
  EXPECT_FALSE(L0Sampler::Deserialize(std::vector<uint8_t>{1, 2, 3, 4}).ok());
  L0Sampler sampler(18, L0Sampler::Options{2, 8, 1});
  auto bytes = sampler.Serialize();
  bytes.resize(bytes.size() / 3);
  EXPECT_FALSE(L0Sampler::Deserialize(bytes).ok());
}

}  // namespace
}  // namespace gems
