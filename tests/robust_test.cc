#include <cmath>
#include <cstdint>

#include <gtest/gtest.h>

#include "moments/ams.h"
#include "robust/adversary.h"
#include "robust/robust_f2.h"

namespace gems {
namespace {

// Builds an oracle over a plain AMS sketch.
F2Oracle PlainOracle(AmsSketch* sketch) {
  return F2Oracle{
      [sketch](uint64_t item, int64_t weight) {
        sketch->Update(item, weight);
      },
      [sketch]() { return sketch->EstimateF2(); }};
}

F2Oracle RobustOracle(RobustF2* sketch) {
  return F2Oracle{
      [sketch](uint64_t item, int64_t weight) {
        sketch->Update(item, weight);
      },
      [sketch]() { return sketch->EstimateF2(); }};
}

TEST(RobustF2Test, MatchesPlainOnStaticStreams) {
  RobustF2::Options options;
  RobustF2 robust(options, 1);
  AmsSketch plain(options.estimators_per_group, options.num_groups, 100);
  for (uint64_t i = 0; i < 5000; ++i) {
    robust.Update(i % 100);
    plain.Update(i % 100);
  }
  // Both should be within ~20% of the true F2 = 100 * 50^2 = 250000.
  const double truth = 100.0 * 50.0 * 50.0;
  EXPECT_NEAR(plain.EstimateF2(), truth, 0.25 * truth);
  EXPECT_NEAR(robust.EstimateF2(), truth, 0.5 * truth);
}

TEST(RobustF2Test, ReleasedEstimateIsQuantized) {
  RobustF2::Options options;
  options.lambda = 1.0;
  RobustF2 robust(options, 2);
  double last = 0;
  int changes = 0;
  for (uint64_t i = 0; i < 2000; ++i) {
    robust.Update(i);
    const double current = robust.EstimateF2();
    if (current != last) {
      ++changes;
      last = current;
    }
  }
  // True F2 goes 0 -> 2000; with lambda = 1 the release changes only
  // O(log2(2000)) ~ 11 times.
  EXPECT_LE(changes, 20);
  EXPECT_GE(changes, 5);
}

TEST(AdversaryTest, BreaksPlainAmsSketch) {
  AmsSketch plain(64, 3, 3);
  const AttackResult result =
      RunAdaptiveF2Attack(PlainOracle(&plain), 20000, 4);
  // The attack should accumulate many kept items while holding the
  // reported estimate far below the truth.
  EXPECT_GT(result.kept_items, 1000u);
  EXPECT_GT(result.RelativeError(), 0.5);
}

TEST(AdversaryTest, RobustSketchSurvives) {
  RobustF2::Options options;
  options.estimators_per_group = 64;
  options.num_groups = 3;
  options.num_copies = 32;
  options.lambda = 0.25;
  RobustF2 robust(options, 5);
  const AttackResult result =
      RunAdaptiveF2Attack(RobustOracle(&robust), 20000, 6);
  // The robust wrapper's released estimate stays within the lambda window
  // of an honest estimate of the kept set.
  EXPECT_GT(result.kept_items, 0u);
  EXPECT_LT(result.RelativeError(), 0.6);
}

TEST(AdversaryTest, RobustBeatsPlainHeadToHead) {
  AmsSketch plain(64, 3, 7);
  RobustF2::Options options;
  options.estimators_per_group = 64;
  options.num_groups = 3;
  options.num_copies = 32;
  RobustF2 robust(options, 8);

  const AttackResult plain_result =
      RunAdaptiveF2Attack(PlainOracle(&plain), 15000, 9);
  const AttackResult robust_result =
      RunAdaptiveF2Attack(RobustOracle(&robust), 15000, 9);
  EXPECT_LT(robust_result.RelativeError(), plain_result.RelativeError());
}

TEST(RobustF2Test, CopiesUsedGrowsSlowly) {
  RobustF2::Options options;
  options.lambda = 0.5;
  options.num_copies = 40;
  RobustF2 robust(options, 10);
  for (uint64_t i = 0; i < 10000; ++i) {
    robust.Update(i);
    robust.EstimateF2();
  }
  // F2 spans 1..10000: log_{1.5}(10^4) ~ 23 switches at most.
  EXPECT_LE(robust.CopiesUsed(), 30);
}

}  // namespace
}  // namespace gems
