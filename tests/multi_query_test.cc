#include <cstdint>
#include <deque>
#include <span>
#include <vector>

#include <gtest/gtest.h>

#include "common/bytes.h"
#include "common/status.h"
#include "distributed/thread_pool.h"
#include "engine/multi_query.h"
#include "engine/stream_query.h"
#include "workload/multi_query.h"

namespace gems {
namespace {

/// Registers the workload's whole filter palette plus every spec; palette
/// index i becomes engine FilterId i, so specs map directly.
void RegisterAll(MultiQueryEngine& engine,
                 const std::vector<MultiQuerySpec>& specs) {
  std::vector<MultiQueryEngine::FilterId> palette;
  for (size_t i = 0; i < MultiQueryWorkload::PaletteSize(); ++i) {
    palette.push_back(
        engine.RegisterFilter(MultiQueryWorkload::PaletteFilter(i)));
  }
  for (const MultiQuerySpec& spec : specs) {
    std::vector<MultiQueryEngine::FilterId> ids;
    for (size_t f : spec.filters) ids.push_back(palette[f]);
    engine.AddQuery(spec.options, ids);
  }
}

/// The N-independent-queries baseline: one StreamQuery per spec with the
/// same options, seed, and palette predicates.
std::vector<StreamQuery> MakeIndependents(
    const std::vector<MultiQuerySpec>& specs, uint64_t seed) {
  std::vector<StreamQuery> queries;
  queries.reserve(specs.size());
  for (const MultiQuerySpec& spec : specs) {
    StreamQuery query(spec.options, seed);
    for (size_t f : spec.filters) {
      query.AddFilter(MultiQueryWorkload::PaletteFilter(f));
    }
    queries.push_back(std::move(query));
  }
  return queries;
}

/// Canonical bytes for a result list, so window equality checks are exact
/// (including double bit patterns) rather than field-by-field EXPECTs.
std::vector<uint8_t> WindowBytes(const std::vector<WindowResult>& windows) {
  ByteWriter w;
  engine_detail::SerializeWindows(
      w, std::deque<WindowResult>(windows.begin(), windows.end()));
  return std::move(w).TakeBytes();
}

TEST(MultiQueryEngineTest, Equivalence256QueriesAgainstIndependents) {
  MultiQueryWorkloadOptions wopt;
  wopt.num_queries = 256;
  wopt.overlap = 0.5;
  wopt.num_groups = 32;
  wopt.window_size = 256;
  wopt.events_per_tick = 4;
  wopt.seed = 42;
  MultiQueryWorkload workload(wopt);

  const uint64_t seed = 99;
  MultiQueryEngine engine(seed);
  RegisterAll(engine, workload.specs());
  ASSERT_EQ(engine.num_queries(), 256u);
  // 50% overlap must actually deduplicate a sizable share of the state.
  EXPECT_LT(engine.num_physical_queries(), engine.num_queries());

  std::vector<StreamQuery> independents =
      MakeIndependents(workload.specs(), seed);

  // ~3.5 windows of events, in two batches to exercise chunk boundaries.
  const std::vector<StreamEvent> first = workload.GenerateEvents(2000);
  const std::vector<StreamEvent> second = workload.GenerateEvents(1600);
  ASSERT_TRUE(engine.ProcessBatch(first).ok());
  ASSERT_TRUE(engine.ProcessBatch(second).ok());
  for (StreamQuery& query : independents) {
    ASSERT_TRUE(query.ProcessBatch(first).ok());
    ASSERT_TRUE(query.ProcessBatch(second).ok());
  }

  for (size_t qid = 0; qid < independents.size(); ++qid) {
    EXPECT_EQ(WindowBytes(engine.Poll(qid)),
              WindowBytes(independents[qid].Poll()))
        << "results diverge for query " << qid;
    EXPECT_EQ(engine.SerializeQueryState(qid),
              independents[qid].SerializeState())
        << "checkpoint diverges for query " << qid;
  }

  engine.Flush();
  for (size_t qid = 0; qid < independents.size(); ++qid) {
    EXPECT_EQ(WindowBytes(engine.Poll(qid)),
              WindowBytes(independents[qid].Flush()))
        << "flushed results diverge for query " << qid;
  }
}

TEST(MultiQueryEngineTest, ParallelFanOutIsByteIdentical) {
  MultiQueryWorkloadOptions wopt;
  wopt.num_queries = 64;
  wopt.overlap = 0.4;
  wopt.num_groups = 48;
  wopt.window_size = 256;
  wopt.events_per_tick = 4;
  wopt.seed = 7;
  MultiQueryWorkload sequential_workload(wopt);
  MultiQueryWorkload parallel_workload(wopt);

  const uint64_t seed = 123;
  MultiQueryEngine sequential(seed);
  MultiQueryEngine parallel(seed);
  RegisterAll(sequential, sequential_workload.specs());
  RegisterAll(parallel, parallel_workload.specs());

  ThreadPool pool(4);
  for (int batch = 0; batch < 3; ++batch) {
    const std::vector<StreamEvent> events =
        sequential_workload.GenerateEvents(1500);
    ASSERT_TRUE(sequential.ProcessBatch(events).ok());
    ASSERT_TRUE(parallel.ProcessBatchParallel(events, pool).ok());
  }

  for (size_t qid = 0; qid < sequential.num_queries(); ++qid) {
    EXPECT_EQ(parallel.SerializeQueryState(qid),
              sequential.SerializeQueryState(qid))
        << "parallel fan-out diverges for query " << qid;
    EXPECT_EQ(WindowBytes(parallel.Poll(qid)),
              WindowBytes(sequential.Poll(qid)));
  }
}

TEST(MultiQueryEngineTest, DuplicateQueriesShareStateButPollIndependently) {
  MultiQueryEngine engine(7);
  StreamQuery::Options options;
  options.aggregate = AggregateKind::kCountDistinct;
  options.window_size = 10;
  const auto a = engine.AddQuery(options);
  const auto b = engine.AddQuery(options);
  EXPECT_EQ(engine.num_queries(), 2u);
  EXPECT_EQ(engine.num_physical_queries(), 1u);

  std::vector<StreamEvent> events;
  for (uint64_t t = 0; t < 25; ++t) {
    events.push_back(StreamEvent{t, t % 3, t * 11, 1});
  }
  ASSERT_TRUE(engine.ProcessBatch(events).ok());

  // Both views see the same two closed windows, each exactly once.
  const auto windows_a = engine.Poll(a);
  ASSERT_EQ(windows_a.size(), 2u);
  EXPECT_EQ(WindowBytes(engine.Poll(b)), WindowBytes(windows_a));
  EXPECT_TRUE(engine.Poll(a).empty());
  EXPECT_TRUE(engine.Poll(b).empty());

  // A view that lags behind still gets every window when it catches up.
  std::vector<StreamEvent> more;
  for (uint64_t t = 25; t < 45; ++t) {
    more.push_back(StreamEvent{t, t % 3, t * 11, 1});
  }
  ASSERT_TRUE(engine.ProcessBatch(more).ok());
  ASSERT_EQ(engine.Poll(a).size(), 2u);
  ASSERT_EQ(engine.Poll(b).size(), 2u);
}

TEST(MultiQueryEngineTest, QuantilePointsPreventStateSharing) {
  // Two quantile queries over the same sketch parameters but different
  // read points must not share a result view (the StreamQuery checkpoint
  // fingerprint ignores quantile_points, but results differ).
  MultiQueryEngine engine(1);
  StreamQuery::Options options;
  options.aggregate = AggregateKind::kQuantiles;
  options.window_size = 10;
  options.quantile_points = {0.5};
  (void)engine.AddQuery(options);
  options.quantile_points = {0.9};
  (void)engine.AddQuery(options);
  EXPECT_EQ(engine.num_physical_queries(), 2u);

  // Same options but different filter sets must not share either.
  MultiQueryEngine filtered(1);
  const auto f =
      filtered.RegisterFilter([](const StreamEvent& e) { return e.value > 0; });
  StreamQuery::Options plain;
  (void)filtered.AddQuery(plain);
  const MultiQueryEngine::FilterId ids[] = {f};
  (void)filtered.AddQuery(plain, ids);
  EXPECT_EQ(filtered.num_physical_queries(), 2u);
}

TEST(MultiQueryEngineTest, EngineCheckpointRoundTrips) {
  MultiQueryWorkloadOptions wopt;
  wopt.num_queries = 48;
  wopt.overlap = 0.5;
  wopt.num_groups = 24;
  wopt.window_size = 128;
  wopt.events_per_tick = 4;
  wopt.seed = 21;
  MultiQueryWorkload workload(wopt);

  MultiQueryEngine engine(55);
  RegisterAll(engine, workload.specs());
  const std::vector<StreamEvent> first = workload.GenerateEvents(1200);
  ASSERT_TRUE(engine.ProcessBatch(first).ok());
  // Let some cursors advance so the checkpoint carries nontrivial views.
  (void)engine.Poll(0);
  (void)engine.Poll(3);
  const std::vector<uint8_t> checkpoint = engine.SerializeState();

  MultiQueryEngine restored(55);
  RegisterAll(restored, workload.specs());
  ASSERT_TRUE(restored.RestoreState(checkpoint).ok());
  EXPECT_EQ(restored.SerializeState(), checkpoint);

  const std::vector<StreamEvent> second = workload.GenerateEvents(900);
  ASSERT_TRUE(engine.ProcessBatch(second).ok());
  ASSERT_TRUE(restored.ProcessBatch(second).ok());
  engine.Flush();
  restored.Flush();
  for (size_t qid = 0; qid < engine.num_queries(); ++qid) {
    EXPECT_EQ(restored.SerializeQueryState(qid),
              engine.SerializeQueryState(qid));
    EXPECT_EQ(WindowBytes(restored.Poll(qid)), WindowBytes(engine.Poll(qid)));
  }
}

TEST(MultiQueryEngineTest, RestoreRejectsDamageAndMismatchedRegistration) {
  MultiQueryWorkloadOptions wopt;
  wopt.num_queries = 12;
  wopt.overlap = 0.3;
  wopt.window_size = 64;
  wopt.seed = 5;
  MultiQueryWorkload workload(wopt);
  MultiQueryEngine engine(9);
  RegisterAll(engine, workload.specs());
  ASSERT_TRUE(engine.ProcessBatch(workload.GenerateEvents(600)).ok());
  const std::vector<uint8_t> checkpoint = engine.SerializeState();

  // The trailing whole-image checksum catches damage anywhere.
  for (size_t i = 0; i < checkpoint.size();
       i += 1 + checkpoint.size() / 64) {
    std::vector<uint8_t> damaged = checkpoint;
    damaged[i] ^= 0x40;
    MultiQueryEngine victim(9);
    RegisterAll(victim, workload.specs());
    EXPECT_EQ(victim.RestoreState(damaged).code(), StatusCode::kCorruption)
        << "flipped byte " << i;
  }

  // Fewer registered queries than the checkpoint expects.
  MultiQueryEngine smaller(9);
  std::vector<MultiQuerySpec> fewer(workload.specs().begin(),
                                    workload.specs().end() - 1);
  RegisterAll(smaller, fewer);
  EXPECT_EQ(smaller.RestoreState(checkpoint).code(),
            StatusCode::kInvalidArgument);

  // Different seed.
  MultiQueryEngine reseeded(10);
  RegisterAll(reseeded, workload.specs());
  EXPECT_EQ(reseeded.RestoreState(checkpoint).code(),
            StatusCode::kInvalidArgument);
}

TEST(MultiQueryWorkloadTest, DeterministicAndOverlapScales) {
  MultiQueryWorkloadOptions wopt;
  wopt.num_queries = 128;
  wopt.overlap = 0.5;
  wopt.seed = 77;
  MultiQueryWorkload one(wopt);
  MultiQueryWorkload two(wopt);
  ASSERT_EQ(one.specs().size(), two.specs().size());
  const std::vector<StreamEvent> e1 = one.GenerateEvents(500);
  const std::vector<StreamEvent> e2 = two.GenerateEvents(500);
  for (size_t i = 0; i < e1.size(); ++i) {
    EXPECT_EQ(e1[i].timestamp, e2[i].timestamp);
    EXPECT_EQ(e1[i].group, e2[i].group);
    EXPECT_EQ(e1[i].item, e2[i].item);
    EXPECT_EQ(e1[i].value, e2[i].value);
  }

  // Higher overlap → fewer physical queries.
  MultiQueryEngine low_engine(1);
  RegisterAll(low_engine, one.specs());
  wopt.overlap = 0.9;
  MultiQueryWorkload heavy(wopt);
  MultiQueryEngine high_engine(1);
  RegisterAll(high_engine, heavy.specs());
  EXPECT_LT(high_engine.num_physical_queries(),
            low_engine.num_physical_queries());
}

}  // namespace
}  // namespace gems
