#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "common/numeric.h"
#include "frequency/count_min.h"
#include "privacy/mechanisms.h"
#include "privacy/private_cms.h"
#include "privacy/rappor.h"
#include "privacy/secure_aggregation.h"
#include "workload/baselines.h"
#include "workload/generators.h"
#include "workload/metrics.h"

namespace gems {
namespace {

// ---------------------------------------------------- Randomized response

TEST(RandomizedResponseTest, KeepProbabilityMatchesEpsilon) {
  RandomizedResponse rr(std::log(3.0), 1);  // e^eps = 3 -> keep 0.75.
  EXPECT_NEAR(rr.KeepProbability(), 0.75, 1e-12);
  int kept = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) kept += rr.Randomize(true) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(kept) / n, 0.75, 0.01);
}

TEST(RandomizedResponseTest, UnbiasRecoversTrueCount) {
  RandomizedResponse rr(1.0, 2);
  const int n = 200000;
  const int true_ones = 60000;
  double observed = 0;
  for (int i = 0; i < n; ++i) {
    observed += rr.Randomize(i < true_ones) ? 1 : 0;
  }
  EXPECT_NEAR(rr.UnbiasCount(observed, n), true_ones, 3000);
}

TEST(RandomizedResponseTest, HigherEpsilonFlipsLess) {
  RandomizedResponse low(0.5, 3), high(5.0, 3);
  EXPECT_LT(low.KeepProbability(), high.KeepProbability());
  EXPECT_GT(high.KeepProbability(), 0.99);
}

TEST(RandomizedResponseTest, BitVectorRandomization) {
  RandomizedResponse rr(10.0, 4);  // Almost never flips.
  std::vector<uint64_t> bits = {0xF0F0F0F0F0F0F0F0ULL};
  const auto out = rr.RandomizeBits(bits, 64);
  EXPECT_EQ(out[0], bits[0]);  // At eps=10 flip prob ~ 5e-5.
}

// --------------------------------------------------------------- Laplace

TEST(LaplaceTest, NoiseHasCorrectScale) {
  LaplaceMechanism mechanism(1.0, 1.0, 5);  // b = 1 -> variance 2.
  const int n = 100000;
  std::vector<double> noise(n);
  for (double& x : noise) x = mechanism.Release(0.0);
  EXPECT_NEAR(Mean(noise), 0.0, 0.05);
  EXPECT_NEAR(StdDev(noise), std::sqrt(2.0), 0.05);
}

TEST(LaplaceTest, ScaleGrowsWithSensitivityShrinkingEpsilon) {
  LaplaceMechanism a(1.0, 1.0, 0), b(0.1, 1.0, 0), c(1.0, 5.0, 0);
  EXPECT_LT(a.scale(), b.scale());
  EXPECT_LT(a.scale(), c.scale());
}

TEST(GeometricTest, IntegerNoiseCentered) {
  GeometricMechanism mechanism(1.0, 1, 6);
  const int n = 100000;
  double sum = 0;
  for (int i = 0; i < n; ++i) {
    sum += static_cast<double>(mechanism.Release(100));
  }
  EXPECT_NEAR(sum / n, 100.0, 0.05);
}

// ----------------------------------------------------------------- RAPPOR

TEST(RapporTest, RecoversHeavyCandidates) {
  RapporClient::Options options;
  options.num_bits = 256;
  options.num_hashes = 2;
  options.epsilon = 3.0;

  // 60k clients: candidate 1 held by 50%, candidate 2 by 30%, rest spread
  // over 20 other values.
  RapporAggregator aggregator(options);
  Rng rng(7);
  const int n = 60000;
  for (int i = 0; i < n; ++i) {
    uint64_t value;
    const double u = rng.NextDouble();
    if (u < 0.5) {
      value = 1;
    } else if (u < 0.8) {
      value = 2;
    } else {
      value = 100 + rng.NextBounded(20);
    }
    RapporClient client(options, 1000 + i);
    ASSERT_TRUE(aggregator.Absorb(client.Report(value)).ok());
  }
  EXPECT_NEAR(aggregator.EstimateFrequency(1), 0.5 * n, 0.08 * n);
  EXPECT_NEAR(aggregator.EstimateFrequency(2), 0.3 * n, 0.08 * n);
  // An absent candidate should estimate near zero.
  EXPECT_LT(aggregator.EstimateFrequency(999999), 0.08 * n);
}

TEST(RapporTest, DecodeRanksCandidates) {
  RapporClient::Options options;
  options.num_bits = 128;
  options.epsilon = 4.0;
  RapporAggregator aggregator(options);
  for (int i = 0; i < 20000; ++i) {
    RapporClient client(options, i);
    ASSERT_TRUE(
        aggregator.Absorb(client.Report(i % 4 == 0 ? 7 : 8)).ok());
  }
  const std::vector<uint64_t> dictionary = {7, 8, 9};
  const auto decoded = aggregator.Decode(dictionary, 1000.0);
  ASSERT_GE(decoded.size(), 2u);
  EXPECT_EQ(decoded[0].first, 8u);  // 75% of clients.
  EXPECT_EQ(decoded[1].first, 7u);  // 25%.
}

TEST(RapporTest, AccuracyImprovesWithEpsilon) {
  const int n = 30000;
  std::vector<double> errors_by_epsilon;
  for (double epsilon : {0.5, 2.0, 6.0}) {
    RapporClient::Options options;
    options.num_bits = 256;
    options.epsilon = epsilon;
    RapporAggregator aggregator(options);
    for (int i = 0; i < n; ++i) {
      RapporClient client(options, 50000 + i);
      ASSERT_TRUE(
          aggregator.Absorb(client.Report(i % 2 == 0 ? 11 : 22)).ok());
    }
    errors_by_epsilon.push_back(
        std::abs(aggregator.EstimateFrequency(11) - 0.5 * n));
  }
  EXPECT_GT(errors_by_epsilon[0], errors_by_epsilon[2]);
}

TEST(RapporTest, MalformedReportRejected) {
  RapporClient::Options options;
  RapporAggregator aggregator(options);
  EXPECT_FALSE(aggregator.Absorb({1, 2, 3, 4, 5}).ok());
}

// ------------------------------------------------------------ Private CMS

TEST(PrivateCmsTest, RecoversFrequenciesAtModerateEpsilon) {
  PrivateCmsClient::Options options;
  options.width = 512;
  options.depth = 8;
  options.epsilon = 4.0;
  PrivateCmsServer server(options);
  Rng rng(8);
  const int n = 40000;
  int count_a = 0;
  for (int i = 0; i < n; ++i) {
    const bool is_a = rng.NextDouble() < 0.4;
    if (is_a) ++count_a;
    PrivateCmsClient client(options, 9000 + i);
    ASSERT_TRUE(server.Absorb(client.Encode(is_a ? 5 : 6)).ok());
  }
  EXPECT_NEAR(server.EstimateCount(5), count_a, 0.12 * n);
  EXPECT_NEAR(server.EstimateCount(6), n - count_a, 0.12 * n);
  EXPECT_LT(std::abs(server.EstimateCount(12345)), 0.12 * n);
}

TEST(PrivateCmsTest, MalformedReportRejected) {
  PrivateCmsClient::Options options;
  PrivateCmsServer server(options);
  PrivateCmsClient::Report bad;
  bad.row = options.depth + 5;
  bad.bits.assign((options.width + 63) / 64, 0);
  EXPECT_FALSE(server.Absorb(bad).ok());
}

TEST(PrivateCmsTest, ErrorShrinksWithEpsilon) {
  const int n = 30000;
  std::vector<double> errors;
  for (double epsilon : {1.0, 8.0}) {
    PrivateCmsClient::Options options;
    options.width = 512;
    options.depth = 8;
    options.epsilon = epsilon;
    PrivateCmsServer server(options);
    for (int i = 0; i < n; ++i) {
      PrivateCmsClient client(options, 70000 + i);
      ASSERT_TRUE(server.Absorb(client.Encode(3)).ok());
    }
    errors.push_back(std::abs(server.EstimateCount(3) - n));
  }
  EXPECT_GT(errors[0], errors[1]);
}

// ----------------------------------------------------- Secure aggregation

TEST(SecureAggregationTest, MasksCancelExactly) {
  const size_t clients = 10, dim = 64;
  SecureAggregationSession session(clients, dim, 5);
  Rng rng(6);
  std::vector<std::vector<int64_t>> uploads;
  std::vector<int64_t> expected(dim, 0);
  for (size_t c = 0; c < clients; ++c) {
    std::vector<int64_t> v(dim);
    for (int64_t& x : v) {
      x = static_cast<int64_t>(rng.NextBounded(1000)) - 500;
    }
    for (size_t k = 0; k < dim; ++k) expected[k] += v[k];
    auto masked = session.Mask(c, v);
    ASSERT_TRUE(masked.ok());
    uploads.push_back(std::move(masked).value());
  }
  auto sum = session.Aggregate(uploads);
  ASSERT_TRUE(sum.ok());
  EXPECT_EQ(sum.value(), expected);
}

TEST(SecureAggregationTest, IndividualUploadsLookRandom) {
  const size_t dim = 256;
  SecureAggregationSession session(5, dim, 7);
  std::vector<int64_t> zeros(dim, 0);
  auto masked = session.Mask(0, zeros);
  ASSERT_TRUE(masked.ok());
  // A masked all-zero vector should have no small entries clustering near
  // zero: check that most entries are large in magnitude.
  size_t large = 0;
  for (int64_t x : masked.value()) {
    if (std::abs(x) > (int64_t{1} << 40)) ++large;
  }
  EXPECT_GT(large, dim * 8 / 10);
}

TEST(SecureAggregationTest, SameClientVectorDiffersAcrossSessions) {
  std::vector<int64_t> v(16, 42);
  SecureAggregationSession a(3, 16, 1), b(3, 16, 2);
  EXPECT_NE(a.Mask(0, v).value(), b.Mask(0, v).value());
}

TEST(SecureAggregationTest, DropoutIsDetected) {
  SecureAggregationSession session(4, 8, 9);
  std::vector<std::vector<int64_t>> uploads(3,
                                            std::vector<int64_t>(8, 0));
  EXPECT_EQ(session.Aggregate(uploads).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(SecureAggregationTest, InputValidation) {
  SecureAggregationSession session(3, 8, 10);
  EXPECT_FALSE(session.Mask(5, std::vector<int64_t>(8, 0)).ok());
  EXPECT_FALSE(session.Mask(0, std::vector<int64_t>(7, 0)).ok());
}

TEST(SecureAggregationTest, AggregatesCountMinCounters) {
  // End-to-end federated analytics: each client Count-Mins its local
  // stream; the server securely sums the counter vectors and reads
  // fleet-wide frequencies without seeing any individual sketch.
  const size_t clients = 6;
  const uint32_t width = 128, depth = 4;
  SecureAggregationSession session(clients, width * depth, 11);

  CountMinSketch reference(width, depth, 12);
  std::vector<std::vector<int64_t>> uploads;
  for (size_t c = 0; c < clients; ++c) {
    CountMinSketch local(width, depth, 12);
    ZipfGenerator zipf(500, 1.1, 100 + c);
    for (int i = 0; i < 5000; ++i) {
      const uint64_t item = zipf.Next();
      local.Update(item);
      reference.Update(item);
    }
    std::vector<int64_t> counters(local.counters().begin(),
                                  local.counters().end());
    uploads.push_back(session.Mask(c, counters).value());
  }
  const auto sum = session.Aggregate(uploads);
  ASSERT_TRUE(sum.ok());
  // The securely-aggregated counters equal the single-stream reference.
  for (size_t i = 0; i < sum.value().size(); ++i) {
    EXPECT_EQ(static_cast<uint64_t>(sum.value()[i]),
              reference.counters()[i]);
  }
}

// ----------------------------------------------------- Central DP release

TEST(DpCountMinTest, NoisyReleaseStillAccurateForHeavyItems) {
  CountMinSketch cm(1024, 5, 9);
  ExactFrequencies exact;
  ZipfGenerator zipf(10000, 1.3, 9);
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    const uint64_t item = zipf.Next();
    cm.Update(item);
    exact.Update(item);
  }
  DpCountMinRelease release(cm, /*epsilon=*/1.0, 10);
  for (const auto& [item, count] : exact.TopK(10)) {
    EXPECT_NEAR(release.EstimateCount(item), static_cast<double>(count),
                0.1 * count + 100);
  }
}

TEST(DpCountMinTest, SmallerEpsilonMoreNoise) {
  CountMinSketch cm(256, 4, 11);
  for (uint64_t i = 0; i < 100; ++i) cm.Update(i, 1000);
  std::vector<double> spread;
  for (double epsilon : {0.05, 5.0}) {
    DpCountMinRelease release(cm, epsilon, 12);
    double err = 0;
    for (uint64_t i = 0; i < 100; ++i) {
      err += std::abs(release.EstimateCount(i) - 1000.0);
    }
    spread.push_back(err);
  }
  EXPECT_GT(spread[0], spread[1]);
}

}  // namespace
}  // namespace gems
