#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "core/summary.h"
#include "core/wire.h"
#include "quantiles/gk.h"
#include "quantiles/kll.h"
#include "quantiles/mrl.h"
#include "quantiles/qdigest.h"
#include "quantiles/req.h"
#include "quantiles/tdigest.h"
#include "workload/baselines.h"
#include "workload/generators.h"
#include "workload/metrics.h"

namespace gems {
namespace {

static_assert(ValueSummary<KllSketch> && MergeableSummary<KllSketch>);
static_assert(ValueSummary<TDigest> && MergeableSummary<TDigest>);
static_assert(MergeableSummary<QDigest>);
static_assert(ValueSummary<GreenwaldKhanna>);
static_assert(SerializableSummary<KllSketch>);
static_assert(SerializableSummary<QDigest>);
static_assert(SerializableSummary<TDigest>);

// Helper: max normalized rank error of a quantile function over a dataset.
// With duplicated values a returned value covers a whole rank interval
// [count(< v), count(<= v)]; the error is the distance from the target rank
// to that interval (zero if the target falls inside it).
template <typename QuantileFn>
double MaxRankError(std::vector<double> data, QuantileFn quantile) {
  std::sort(data.begin(), data.end());
  const double n = static_cast<double>(data.size());
  double worst = 0.0;
  for (double q : {0.01, 0.05, 0.1, 0.25, 0.5, 0.75, 0.9, 0.95, 0.99}) {
    const double v = quantile(q);
    const double rank_low = static_cast<double>(
        std::lower_bound(data.begin(), data.end(), v) - data.begin());
    const double rank_high = static_cast<double>(
        std::upper_bound(data.begin(), data.end(), v) - data.begin());
    const double target = q * n;
    double err = 0.0;
    if (target < rank_low) err = rank_low - target;
    if (target > rank_high) err = target - rank_high;
    worst = std::max(worst, err / n);
  }
  return worst;
}

// --------------------------------------------------------------------- GK

TEST(GreenwaldKhannaTest, RankErrorWithinEpsilon) {
  for (auto dist : {ValueDistribution::kUniform, ValueDistribution::kSorted,
                    ValueDistribution::kReverse}) {
    GreenwaldKhanna gk(0.01);
    auto data = GenerateValues(dist, 50000, 7);
    for (double v : data) gk.Update(v);
    const double err =
        MaxRankError(data, [&](double q) { return gk.Quantile(q); });
    EXPECT_LE(err, 0.011) << "distribution " << static_cast<int>(dist);
  }
}

TEST(GreenwaldKhannaTest, SublinearSpace) {
  GreenwaldKhanna gk(0.01);
  for (double v : GenerateValues(ValueDistribution::kUniform, 100000, 8)) {
    gk.Update(v);
  }
  // Theory: O((1/eps) log(eps n)) tuples; generous cap.
  EXPECT_LT(gk.NumTuples(), 4000u);
}

TEST(GreenwaldKhannaTest, RankQuery) {
  GreenwaldKhanna gk(0.01);
  for (int i = 0; i < 10000; ++i) gk.Update(static_cast<double>(i));
  EXPECT_NEAR(static_cast<double>(gk.Rank(5000.0)), 5000.0, 150.0);
  EXPECT_NEAR(static_cast<double>(gk.Rank(100.0)), 100.0, 150.0);
}

TEST(GreenwaldKhannaTest, SingleValue) {
  GreenwaldKhanna gk(0.1);
  gk.Update(42.0);
  EXPECT_DOUBLE_EQ(gk.Quantile(0.0), 42.0);
  EXPECT_DOUBLE_EQ(gk.Quantile(0.5), 42.0);
  EXPECT_DOUBLE_EQ(gk.Quantile(1.0), 42.0);
}

TEST(GreenwaldKhannaTest, ExtremeQuantilesAreExact) {
  GreenwaldKhanna gk(0.05);
  auto data = GenerateValues(ValueDistribution::kGaussian, 20000, 9);
  for (double v : data) gk.Update(v);
  std::sort(data.begin(), data.end());
  // Min and max are tracked exactly (delta = 0 tuples at the ends).
  EXPECT_DOUBLE_EQ(gk.Quantile(0.0), data.front());
  EXPECT_DOUBLE_EQ(gk.Quantile(1.0), data.back());
}

// -------------------------------------------------------------------- KLL

TEST(KllTest, RankErrorShrinksWithK) {
  auto data = GenerateValues(ValueDistribution::kGaussian, 100000, 10);
  double err_small, err_large;
  {
    KllSketch kll(64, 1);
    for (double v : data) kll.Update(v);
    err_small = MaxRankError(data, [&](double q) { return kll.Quantile(q); });
  }
  {
    KllSketch kll(512, 1);
    for (double v : data) kll.Update(v);
    err_large = MaxRankError(data, [&](double q) { return kll.Quantile(q); });
  }
  EXPECT_LT(err_large, err_small);
  EXPECT_LT(err_large, 0.02);
}

TEST(KllTest, AllDistributionsBounded) {
  for (auto dist :
       {ValueDistribution::kUniform, ValueDistribution::kGaussian,
        ValueDistribution::kLogNormal, ValueDistribution::kSorted,
        ValueDistribution::kReverse, ValueDistribution::kZipfValues}) {
    KllSketch kll(200, 2);
    auto data = GenerateValues(dist, 50000, 11);
    for (double v : data) kll.Update(v);
    const double err =
        MaxRankError(data, [&](double q) { return kll.Quantile(q); });
    EXPECT_LT(err, 0.03) << "distribution " << static_cast<int>(dist);
  }
}

TEST(KllTest, SpaceIsSublinear) {
  KllSketch kll(200, 3);
  for (double v : GenerateValues(ValueDistribution::kUniform, 1000000, 12)) {
    kll.Update(v);
  }
  EXPECT_LT(kll.NumRetained(), 3000u);
  EXPECT_EQ(kll.Count(), 1000000u);
}

TEST(KllTest, MergeMatchesSingleStreamError) {
  auto data = GenerateValues(ValueDistribution::kLogNormal, 100000, 13);
  KllSketch whole(200, 4), a(200, 5), b(200, 6);
  for (size_t i = 0; i < data.size(); ++i) {
    whole.Update(data[i]);
    (i % 2 == 0 ? a : b).Update(data[i]);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.Count(), whole.Count());
  const double merged_err =
      MaxRankError(data, [&](double q) { return a.Quantile(q); });
  EXPECT_LT(merged_err, 0.03);
}

TEST(KllTest, ManyWayMergeStaysBounded) {
  auto data = GenerateValues(ValueDistribution::kGaussian, 64000, 14);
  std::vector<KllSketch> shards;
  for (int shard = 0; shard < 64; ++shard) shards.emplace_back(200, 20 + shard);
  for (size_t i = 0; i < data.size(); ++i) shards[i % 64].Update(data[i]);
  KllSketch merged = shards[0];
  for (int shard = 1; shard < 64; ++shard) {
    ASSERT_TRUE(merged.Merge(shards[shard]).ok());
  }
  EXPECT_EQ(merged.Count(), data.size());
  const double err =
      MaxRankError(data, [&](double q) { return merged.Quantile(q); });
  EXPECT_LT(err, 0.04);
}

TEST(KllTest, CdfIsMonotone) {
  KllSketch kll(200, 15);
  for (double v : GenerateValues(ValueDistribution::kGaussian, 20000, 16)) {
    kll.Update(v);
  }
  const std::vector<double> splits = {-3, -2, -1, 0, 1, 2, 3};
  const auto cdf = kll.Cdf(splits);
  for (size_t i = 1; i < cdf.size(); ++i) EXPECT_GE(cdf[i], cdf[i - 1]);
  EXPECT_NEAR(cdf[3], 0.5, 0.03);  // CDF at 0 for N(0,1).
}

TEST(KllTest, SerializeRoundTrip) {
  KllSketch kll(128, 17);
  for (double v : GenerateValues(ValueDistribution::kUniform, 30000, 18)) {
    kll.Update(v);
  }
  auto r = KllSketch::Deserialize(kll.Serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().Count(), kll.Count());
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_DOUBLE_EQ(r.value().Quantile(q), kll.Quantile(q));
  }
}

// ---------------------------------------------------------------- QDigest

TEST(QDigestTest, RankErrorBounded) {
  QDigest qd(16, 256);
  UniformItemGenerator gen(1 << 16, 19);
  std::vector<double> data;
  for (int i = 0; i < 100000; ++i) {
    const uint64_t x = gen.Next();
    qd.Update(x);
    data.push_back(static_cast<double>(x));
  }
  const double err = MaxRankError(
      data, [&](double q) { return static_cast<double>(qd.Quantile(q)); });
  // q-digest error ~ log(U)/k = 16/256 = 0.0625; allow slack.
  EXPECT_LT(err, 0.09);
}

TEST(QDigestTest, SpaceBounded) {
  QDigest qd(16, 128);
  UniformItemGenerator gen(1 << 16, 20);
  for (int i = 0; i < 200000; ++i) qd.Update(gen.Next());
  // Node bound 3k.
  EXPECT_LE(qd.NumNodes(), 3 * 128u + 64);
}

TEST(QDigestTest, WeightedUpdates) {
  QDigest qd(8, 64);
  qd.Update(10, 100);
  qd.Update(200, 100);
  EXPECT_EQ(qd.Count(), 200u);
  const uint64_t median = qd.Quantile(0.5);
  EXPECT_LE(median, 200u);
  EXPECT_GE(qd.Quantile(0.9), 10u);
}

TEST(QDigestTest, MergeMatchesCombined) {
  QDigest a(12, 128), b(12, 128), whole(12, 128);
  UniformItemGenerator gen(1 << 12, 21);
  std::vector<double> data;
  for (int i = 0; i < 50000; ++i) {
    const uint64_t x = gen.Next();
    data.push_back(static_cast<double>(x));
    whole.Update(x);
    (i % 2 == 0 ? a : b).Update(x);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.Count(), whole.Count());
  const double err = MaxRankError(
      data, [&](double q) { return static_cast<double>(a.Quantile(q)); });
  EXPECT_LT(err, 0.1);
}

TEST(QDigestTest, SerializeRoundTrip) {
  QDigest qd(10, 64);
  UniformItemGenerator gen(1 << 10, 22);
  for (int i = 0; i < 10000; ++i) qd.Update(gen.Next());
  auto r = QDigest::Deserialize(qd.Serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().Count(), qd.Count());
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_EQ(r.value().Quantile(q), qd.Quantile(q));
  }
}

TEST(QDigestTest, DeserializeRejectsBadNodeId) {
  QDigest qd(10, 64);
  qd.Update(5);
  auto bytes = qd.Serialize();
  // Payload: 1 bits + 8 compression + 8 count + 1 node count; the next
  // varint is the node id. Corrupt it to zero (invalid) and re-wrap so the
  // envelope checksum is valid and the payload validation path is hit.
  Result<EnvelopeView> view = ParseEnvelope(bytes);
  ASSERT_TRUE(view.ok());
  std::vector<uint8_t> payload(view.value().payload,
                               view.value().payload + view.value().payload_size);
  payload[18] = 0;
  auto corrupt = WrapEnvelope(SketchTypeId::kQDigest, std::move(payload));
  EXPECT_FALSE(QDigest::Deserialize(corrupt).ok());
}

// ---------------------------------------------------------------- TDigest

TEST(TDigestTest, MidQuantilesAccurate) {
  TDigest td(100);
  auto data = GenerateValues(ValueDistribution::kGaussian, 100000, 23);
  for (double v : data) td.Update(v);
  std::sort(data.begin(), data.end());
  EXPECT_NEAR(td.Quantile(0.5), data[50000], 0.05);
  EXPECT_NEAR(td.Quantile(0.25), data[25000], 0.05);
}

TEST(TDigestTest, TailQuantilesVeryAccurate) {
  TDigest td(100);
  auto data = GenerateValues(ValueDistribution::kLogNormal, 200000, 24);
  for (double v : data) td.Update(v);
  std::sort(data.begin(), data.end());
  // Relative rank error at extreme quantiles should be tiny.
  const double n = static_cast<double>(data.size());
  for (double q : {0.001, 0.01, 0.99, 0.999}) {
    const double v = td.Quantile(q);
    const double est_rank = static_cast<double>(ExactRank(data, v));
    EXPECT_LT(std::abs(est_rank - q * n) / n, 0.003) << "q = " << q;
  }
}

TEST(TDigestTest, MinMaxExact) {
  TDigest td(50);
  auto data = GenerateValues(ValueDistribution::kUniform, 10000, 25);
  for (double v : data) td.Update(v);
  std::sort(data.begin(), data.end());
  EXPECT_DOUBLE_EQ(td.Min(), data.front());
  EXPECT_DOUBLE_EQ(td.Max(), data.back());
  EXPECT_NEAR(td.Quantile(0.0), data.front(), 1e-9);
  EXPECT_NEAR(td.Quantile(1.0), data.back(), 1e-6);
}

TEST(TDigestTest, CentroidCountBounded) {
  TDigest td(100);
  for (double v : GenerateValues(ValueDistribution::kGaussian, 500000, 26)) {
    td.Update(v);
  }
  EXPECT_LE(td.NumCentroids(), 220u);  // ~2*delta.
}

TEST(TDigestTest, CdfInverseConsistency) {
  TDigest td(200);
  for (double v : GenerateValues(ValueDistribution::kUniform, 100000, 27)) {
    td.Update(v);
  }
  for (double q : {0.1, 0.3, 0.5, 0.7, 0.9}) {
    const double v = td.Quantile(q);
    EXPECT_NEAR(td.Cdf(v), q, 0.02);
  }
  EXPECT_DOUBLE_EQ(td.Cdf(-1.0), 0.0);
  EXPECT_DOUBLE_EQ(td.Cdf(2.0), 1.0);
}

TEST(TDigestTest, WeightedUpdates) {
  TDigest td(100);
  td.Update(0.0, 900);
  td.Update(100.0, 100);
  EXPECT_EQ(td.Count(), 1000u);
  EXPECT_LE(td.Quantile(0.5), 10.0);  // Interpolation reaches 10 exactly.
  EXPECT_GT(td.Quantile(0.95), 50.0);
}

TEST(TDigestTest, MergePreservesAccuracy) {
  auto data = GenerateValues(ValueDistribution::kGaussian, 100000, 28);
  TDigest a(100), b(100);
  for (size_t i = 0; i < data.size(); ++i) {
    (i % 2 == 0 ? a : b).Update(data[i]);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.Count(), data.size());
  std::sort(data.begin(), data.end());
  EXPECT_NEAR(a.Quantile(0.5), data[50000], 0.07);
}

TEST(TDigestTest, SerializeRoundTrip) {
  TDigest td(100);
  for (double v : GenerateValues(ValueDistribution::kLogNormal, 20000, 29)) {
    td.Update(v);
  }
  auto r = TDigest::Deserialize(td.Serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().Count(), td.Count());
  for (double q : {0.01, 0.5, 0.99}) {
    EXPECT_DOUBLE_EQ(r.value().Quantile(q), td.Quantile(q));
  }
}

// -------------------------------------------------------------------- MRL

TEST(MrlTest, RankErrorBounded) {
  for (auto dist : {ValueDistribution::kUniform, ValueDistribution::kSorted,
                    ValueDistribution::kLogNormal}) {
    MrlSketch mrl(10, 500);
    auto data = GenerateValues(dist, 100000, 41);
    for (double v : data) mrl.Update(v);
    const double err =
        MaxRankError(data, [&](double q) { return mrl.Quantile(q); });
    EXPECT_LT(err, 0.03) << "distribution " << static_cast<int>(dist);
  }
}

TEST(MrlTest, ForAccuracyMeetsTarget) {
  auto mrl = MrlSketch::ForAccuracy(0.01, 200000);
  auto data = GenerateValues(ValueDistribution::kGaussian, 200000, 42);
  for (double v : data) mrl.Update(v);
  const double err =
      MaxRankError(data, [&](double q) { return mrl.Quantile(q); });
  EXPECT_LT(err, 0.015);
}

TEST(MrlTest, SpaceIsSublinear) {
  MrlSketch mrl(10, 500);
  for (double v : GenerateValues(ValueDistribution::kUniform, 500000, 43)) {
    mrl.Update(v);
  }
  EXPECT_LE(mrl.NumRetained(), 10u * 500u + 500u);
  EXPECT_EQ(mrl.Count(), 500000u);
}

TEST(MrlTest, RankOfKnownData) {
  MrlSketch mrl(8, 200);
  for (int i = 0; i < 10000; ++i) mrl.Update(static_cast<double>(i));
  EXPECT_NEAR(static_cast<double>(mrl.Rank(5000.0)), 5000.0, 300.0);
}

TEST(MrlTest, MergePreservesAccuracy) {
  MrlSketch a(10, 400), b(10, 400);
  auto data = GenerateValues(ValueDistribution::kLogNormal, 80000, 44);
  for (size_t i = 0; i < data.size(); ++i) {
    (i % 2 == 0 ? a : b).Update(data[i]);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.Count(), data.size());
  const double err =
      MaxRankError(data, [&](double q) { return a.Quantile(q); });
  EXPECT_LT(err, 0.04);
}

TEST(MrlTest, MergeRejectsShapeMismatch) {
  MrlSketch a(8, 100), b(8, 200);
  EXPECT_FALSE(a.Merge(b).ok());
}

// -------------------------------------------------------------------- REQ

TEST(ReqTest, HighQuantilesNearExact) {
  // The PODS 2021 claim: relative rank error at high quantiles, i.e. the
  // error is small relative to (1-q)*n, not relative to n.
  ReqSketch req(32, 1);
  auto data = GenerateValues(ValueDistribution::kLogNormal, 200000, 51);
  for (double v : data) req.Update(v);
  std::sort(data.begin(), data.end());
  const double n = static_cast<double>(data.size());
  for (double q : {0.99, 0.999, 0.9999}) {
    const double v = req.Quantile(q);
    const double lo = static_cast<double>(
        std::lower_bound(data.begin(), data.end(), v) - data.begin());
    const double hi = static_cast<double>(
        std::upper_bound(data.begin(), data.end(), v) - data.begin());
    const double target = q * n;
    double err = 0;
    if (target < lo) err = lo - target;
    if (target > hi) err = target - hi;
    // Error bounded by a modest fraction of the tail mass (1-q)*n.
    EXPECT_LE(err, 0.25 * (1.0 - q) * n + 2.0) << "q = " << q;
  }
}

TEST(ReqTest, BeatsKllOnExtremeTailAtAnySpace) {
  const size_t n = 500000;
  auto data = GenerateValues(ValueDistribution::kGaussian, n, 52);
  ReqSketch req(32, 2);
  KllSketch kll(200, 3);
  for (double v : data) {
    req.Update(v);
    kll.Update(v);
  }
  std::sort(data.begin(), data.end());
  auto rank_err = [&](double v, double q) {
    const double lo = static_cast<double>(
        std::lower_bound(data.begin(), data.end(), v) - data.begin());
    const double hi = static_cast<double>(
        std::upper_bound(data.begin(), data.end(), v) - data.begin());
    const double target = q * static_cast<double>(n);
    if (target < lo) return lo - target;
    if (target > hi) return target - hi;
    return 0.0;
  };
  const double q = 0.9995;
  EXPECT_LT(rank_err(req.Quantile(q), q), rank_err(kll.Quantile(q), q));
}

TEST(ReqTest, MidQuantilesStillReasonable) {
  ReqSketch req(32, 4);
  auto data = GenerateValues(ValueDistribution::kUniform, 100000, 53);
  for (double v : data) req.Update(v);
  const double err =
      MaxRankError(data, [&](double q) { return req.Quantile(q); });
  EXPECT_LT(err, 0.02);
}

TEST(ReqTest, RankQueryConsistent) {
  ReqSketch req(16, 5);
  for (int i = 0; i < 100000; ++i) req.Update(static_cast<double>(i));
  EXPECT_NEAR(static_cast<double>(req.Rank(99990.0)), 99991.0, 10.0);
  EXPECT_NEAR(static_cast<double>(req.Rank(50000.0)), 50001.0, 2500.0);
}

TEST(ReqTest, SpaceGrowsSlowly) {
  ReqSketch req(32, 6);
  for (double v : GenerateValues(ValueDistribution::kGaussian, 1000000, 54)) {
    req.Update(v);
  }
  EXPECT_LT(req.NumRetained(), 20000u);  // ~O(k log^1.5 n) <<< n.
  EXPECT_EQ(req.Count(), 1000000u);
}

TEST(ReqTest, MergePreservesTailAccuracy) {
  ReqSketch a(32, 7), b(32, 8);
  auto data = GenerateValues(ValueDistribution::kLogNormal, 200000, 55);
  for (size_t i = 0; i < data.size(); ++i) {
    (i % 2 == 0 ? a : b).Update(data[i]);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.Count(), data.size());
  std::sort(data.begin(), data.end());
  const double n = static_cast<double>(data.size());
  const double q = 0.999;
  const double v = a.Quantile(q);
  const double lo = static_cast<double>(
      std::lower_bound(data.begin(), data.end(), v) - data.begin());
  const double hi = static_cast<double>(
      std::upper_bound(data.begin(), data.end(), v) - data.begin());
  double err = 0;
  if (q * n < lo) err = lo - q * n;
  if (q * n > hi) err = q * n - hi;
  EXPECT_LE(err, 0.5 * (1.0 - q) * n + 2.0);
}

TEST(ReqTest, MergeRejectsKMismatch) {
  ReqSketch a(16, 0), b(32, 0);
  EXPECT_FALSE(a.Merge(b).ok());
  ReqSketch hra(16, 0, true), lra(16, 0, false);
  EXPECT_FALSE(hra.Merge(lra).ok());
}

TEST(ReqTest, LowRankAccuracyProtectsLowQuantiles) {
  auto data = GenerateValues(ValueDistribution::kLogNormal, 200000, 56);
  ReqSketch lra(32, 9, /*high_rank_accuracy=*/false);
  for (double v : data) lra.Update(v);
  std::sort(data.begin(), data.end());
  const double n = static_cast<double>(data.size());
  for (double q : {0.0001, 0.001, 0.01}) {
    const double v = lra.Quantile(q);
    const double lo = static_cast<double>(
        std::lower_bound(data.begin(), data.end(), v) - data.begin());
    const double hi = static_cast<double>(
        std::upper_bound(data.begin(), data.end(), v) - data.begin());
    const double target = q * n;
    double err = 0;
    if (target < lo) err = lo - target;
    if (target > hi) err = target - hi;
    // Error bounded relative to the LOW-tail mass q*n.
    EXPECT_LE(err, 0.25 * q * n + 2.0) << "q = " << q;
  }
}

// ------------------------------------------------------- GK serialization

TEST(GreenwaldKhannaTest, SerializeRoundTrip) {
  GreenwaldKhanna gk(0.01);
  for (double v : GenerateValues(ValueDistribution::kLogNormal, 30000, 45)) {
    gk.Update(v);
  }
  auto r = GreenwaldKhanna::Deserialize(gk.Serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().Count(), gk.Count());
  EXPECT_EQ(r.value().NumTuples(), gk.NumTuples());
  for (double q : {0.1, 0.5, 0.9}) {
    EXPECT_DOUBLE_EQ(r.value().Quantile(q), gk.Quantile(q));
  }
}

TEST(GreenwaldKhannaTest, DeserializeGarbageFails) {
  EXPECT_FALSE(GreenwaldKhanna::Deserialize(std::vector<uint8_t>{9, 9, 9}).ok());
}

// -------------------------------------- Cross-sketch comparison (E4 shape)

TEST(QuantileComparisonTest, KllBeatsGkPerByte) {
  // KLL's headline: better rank error per byte of summary than GK.
  auto data = GenerateValues(ValueDistribution::kLogNormal, 200000, 30);
  GreenwaldKhanna gk(0.01);
  KllSketch kll(200, 31);
  for (double v : data) {
    gk.Update(v);
    kll.Update(v);
  }
  const double gk_err =
      MaxRankError(data, [&](double q) { return gk.Quantile(q); });
  const double kll_err =
      MaxRankError(data, [&](double q) { return kll.Quantile(q); });
  const double gk_bytes = static_cast<double>(gk.MemoryBytes());
  const double kll_bytes = static_cast<double>(kll.MemoryBytes());
  // Error x space product: KLL should win.
  EXPECT_LT(kll_err * kll_bytes, gk_err * gk_bytes);
}

TEST(QuantileComparisonTest, TDigestBestAtTails) {
  auto data = GenerateValues(ValueDistribution::kLogNormal, 100000, 32);
  TDigest td(100);
  KllSketch kll(200, 33);
  for (double v : data) {
    td.Update(v);
    kll.Update(v);
  }
  std::sort(data.begin(), data.end());
  const double n = static_cast<double>(data.size());
  double td_tail_err = 0, kll_tail_err = 0;
  for (double q : {0.001, 0.999}) {
    td_tail_err +=
        std::abs(static_cast<double>(ExactRank(data, td.Quantile(q))) -
                 q * n) /
        n;
    kll_tail_err +=
        std::abs(static_cast<double>(ExactRank(data, kll.Quantile(q))) -
                 q * n) /
        n;
  }
  EXPECT_LE(td_tail_err, kll_tail_err + 0.001);
}

// Parameterized sweep: every sketch at every distribution stays bounded.
struct QuantileCase {
  int sketch;  // 0 = GK, 1 = KLL, 2 = t-digest.
  ValueDistribution dist;
};

class QuantileSweep : public ::testing::TestWithParam<QuantileCase> {};

TEST_P(QuantileSweep, RankErrorBounded) {
  const QuantileCase c = GetParam();
  auto data = GenerateValues(c.dist, 50000, 34);
  double err = 0;
  if (c.sketch == 0) {
    GreenwaldKhanna gk(0.01);
    for (double v : data) gk.Update(v);
    err = MaxRankError(data, [&](double q) { return gk.Quantile(q); });
  } else if (c.sketch == 1) {
    KllSketch kll(200, 35);
    for (double v : data) kll.Update(v);
    err = MaxRankError(data, [&](double q) { return kll.Quantile(q); });
  } else {
    TDigest td(100);
    for (double v : data) td.Update(v);
    err = MaxRankError(data, [&](double q) { return td.Quantile(q); });
  }
  EXPECT_LT(err, 0.035) << "sketch " << c.sketch << " dist "
                        << static_cast<int>(c.dist);
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, QuantileSweep,
    ::testing::Values(
        QuantileCase{0, ValueDistribution::kUniform},
        QuantileCase{0, ValueDistribution::kLogNormal},
        QuantileCase{0, ValueDistribution::kSorted},
        QuantileCase{1, ValueDistribution::kUniform},
        QuantileCase{1, ValueDistribution::kLogNormal},
        QuantileCase{1, ValueDistribution::kSorted},
        QuantileCase{1, ValueDistribution::kReverse},
        QuantileCase{2, ValueDistribution::kUniform},
        QuantileCase{2, ValueDistribution::kGaussian},
        QuantileCase{2, ValueDistribution::kSorted}));

}  // namespace
}  // namespace gems
