// Tests for the src/time/ family: the PaneRing container, the sliding
// HLL / Count-Min, the decayed Count-Min, the exponential histogram, and
// their registry / concurrent integration.

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <set>
#include <span>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "cardinality/hyperloglog.h"
#include "common/random.h"
#include "core/registry.h"
#include "distributed/concurrent/concurrent_any.h"
#include "frequency/count_min.h"
#include "time/decayed_count_min.h"
#include "time/exponential_histogram.h"
#include "time/pane_ring.h"
#include "time/sliding_count_min.h"
#include "time/sliding_hll.h"

namespace gems {
namespace {

// ------------------------------------------------------------- PaneRing

TEST(PaneRingTest, OutOfOrderTimestampsClampInsteadOfAborting) {
  PaneRing<HyperLogLog> ring(HyperLogLog(12, 1), 100, 4);
  ring.Update(500, 1);
  // Late items land in the current pane: no abort, and they count.
  ring.Update(120, 2);
  ring.Update(0, 3);
  EXPECT_EQ(ring.last_timestamp(), 500u);
  EXPECT_EQ(ring.NumLivePanes(), 1u);
  EXPECT_NEAR(ring.WindowSummary().Estimate(), 3.0, 1.0);
  // The clamped clock also applies to Advance.
  ring.Advance(10);
  EXPECT_EQ(ring.last_timestamp(), 500u);
}

TEST(PaneRingTest, LargeForwardJumpDropsWholeRing) {
  PaneRing<HyperLogLog> ring(HyperLogLog(12, 1), 10, 8);
  for (uint64_t t = 0; t < 80; ++t) ring.Update(t, t);
  EXPECT_GT(ring.WindowSummary().Estimate(), 50.0);
  // Jump far past the window span: every old pane expires at once.
  ring.Advance(1'000'000);
  EXPECT_EQ(ring.NumLivePanes(), 1u);
  EXPECT_DOUBLE_EQ(ring.WindowSummary().Estimate(), 0.0);
  // And the ring keeps working afterwards.
  ring.Update(1'000'001, 42);
  EXPECT_NEAR(ring.WindowSummary().Estimate(), 1.0, 0.5);
}

TEST(PaneRingTest, PaneWidthOne) {
  // Every timestamp is its own pane; window = last 5 instants.
  PaneRing<HyperLogLog> ring(HyperLogLog(12, 1), 1, 5);
  for (uint64_t t = 0; t < 100; ++t) {
    ring.Update(t, t);
    EXPECT_LE(ring.NumLivePanes(), 5u);
  }
  // Window covers t in [95, 99]: five distinct items.
  EXPECT_NEAR(ring.WindowSummary().Estimate(), 5.0, 1.0);
}

TEST(PaneRingTest, SinglePaneWindowIsTumbling) {
  PaneRing<HyperLogLog> ring(HyperLogLog(12, 1), 100, 1);
  for (uint64_t i = 0; i < 50; ++i) ring.Update(10, i);
  EXPECT_NEAR(ring.WindowSummary().Estimate(), 50.0, 5.0);
  // Crossing the pane boundary tumbles: the old pane is gone entirely.
  ring.Update(100, 999);
  EXPECT_EQ(ring.NumLivePanes(), 1u);
  EXPECT_NEAR(ring.WindowSummary().Estimate(), 1.0, 0.5);
}

TEST(PaneRingTest, MemoizedWindowMatchesMutationFreeMerge) {
  PaneRing<HyperLogLog> ring(HyperLogLog(12, 7), 10, 6);
  SplitMix64 rng(11);
  for (int i = 0; i < 5000; ++i) {
    ring.Update(static_cast<uint64_t>(i) / 8, rng.Next());
    if (i % 611 == 0) {
      // The memoized view and the const merge must always agree, and
      // repeated memoized reads must be stable.
      const double memoized = ring.WindowSummary().Estimate();
      EXPECT_DOUBLE_EQ(memoized, ring.MergedWindow().Estimate());
      EXPECT_DOUBLE_EQ(memoized, ring.WindowSummary().Estimate());
    }
  }
  // The memo must not go stale across a mutation.
  const double before = ring.WindowSummary().Estimate();
  for (int i = 0; i < 2000; ++i) ring.Update(700, rng.Next());
  EXPECT_GT(ring.WindowSummary().Estimate(), before);
  EXPECT_DOUBLE_EQ(ring.WindowSummary().Estimate(),
                   ring.MergedWindow().Estimate());
}

// ------------------------------------------------------ SlidingHyperLogLog

TEST(SlidingHllTest, TracksWindowedDistinctsAgainstBruteForce) {
  const uint64_t pane_width = 10;
  const size_t num_panes = 10;
  SlidingHyperLogLog sliding(12, pane_width, num_panes, 3);
  std::vector<std::pair<uint64_t, uint64_t>> events;  // (ts, item)
  SplitMix64 rng(5);
  uint64_t next_item = 0;
  for (uint64_t t = 0; t < 400; ++t) {
    for (int i = 0; i < 5; ++i) {
      const uint64_t item = next_item++;
      events.emplace_back(t, item);
      sliding.UpdateAt(t, item);
    }
    if (t >= 100 && t % 37 == 0) {
      // Brute force: distinct items in panes overlapping the window.
      const uint64_t pane_id = t / pane_width;
      const uint64_t min_pane = pane_id + 1 - num_panes;
      std::set<uint64_t> exact;
      for (const auto& [ts, item] : events) {
        if (ts / pane_width >= min_pane) exact.insert(item);
      }
      const double estimate = sliding.Estimate();
      EXPECT_NEAR(estimate, static_cast<double>(exact.size()),
                  0.1 * static_cast<double>(exact.size()))
          << "t = " << t;
    }
  }
}

TEST(SlidingHllTest, BatchedTimedIngestIsByteIdentical) {
  SplitMix64 rng(17);
  std::vector<uint64_t> timestamps, items;
  uint64_t t = 0;
  for (int i = 0; i < 4000; ++i) {
    // Mix of forward jumps, repeats, and late (clamping) timestamps.
    const uint64_t r = rng.Next() % 10;
    if (r < 6) t += rng.Next() % 4;
    timestamps.push_back(r == 9 && t > 50 ? t - 50 : t);
    items.push_back(rng.Next() % 512);
  }
  SlidingHyperLogLog scalar(12, 16, 8, 9);
  for (size_t i = 0; i < items.size(); ++i) {
    scalar.UpdateAt(timestamps[i], items[i]);
  }
  SlidingHyperLogLog batched(12, 16, 8, 9);
  batched.UpdateBatchTimed(timestamps, items);
  EXPECT_EQ(scalar.Serialize(), batched.Serialize());
}

TEST(SlidingHllTest, SerializeRoundTripIsByteIdentical) {
  SlidingHyperLogLog sketch(10, 25, 6, 13);
  SplitMix64 rng(23);
  for (uint64_t t = 0; t < 300; t += 2) sketch.UpdateAt(t, rng.Next());
  const std::vector<uint8_t> bytes = sketch.Serialize();
  Result<SlidingHyperLogLog> restored = SlidingHyperLogLog::Deserialize(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  EXPECT_EQ(restored.value().Serialize(), bytes);
  EXPECT_DOUBLE_EQ(restored.value().Estimate(), sketch.Estimate());
  EXPECT_EQ(restored.value().last_timestamp(), sketch.last_timestamp());
  EXPECT_EQ(restored.value().NumLivePanes(), sketch.NumLivePanes());
  // The restored clock keeps rolling correctly.
  restored.value().Advance(10'000);
  EXPECT_DOUBLE_EQ(restored.value().Estimate(), 0.0);
}

TEST(SlidingHllTest, MergeUnionsPaneWise) {
  SlidingHyperLogLog a(12, 10, 10, 1);
  SlidingHyperLogLog b(12, 10, 10, 1);
  for (uint64_t i = 0; i < 500; ++i) a.UpdateAt(50, i);
  for (uint64_t i = 250; i < 750; ++i) b.UpdateAt(60, i);
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.last_timestamp(), 60u);
  EXPECT_NEAR(a.Estimate(), 750.0, 50.0);
  // Geometry mismatches are typed errors.
  SlidingHyperLogLog c(12, 10, 5, 1);
  EXPECT_EQ(c.Merge(a).code(), StatusCode::kInvalidArgument);
}

// ------------------------------------------------------- SlidingCountMin

TEST(SlidingCountMinTest, WindowedCountsDropExpiredPanes) {
  SlidingCountMin sketch(2048, 4, 10, 5, 3);
  for (int i = 0; i < 100; ++i) sketch.UpdateAt(5, 7);
  EXPECT_GE(sketch.Estimate(7), 100u);
  EXPECT_EQ(sketch.TotalWeight(), 100);
  // Half the window later the item is still visible...
  sketch.Advance(30);
  EXPECT_GE(sketch.Estimate(7), 100u);
  // ...and gone once its pane leaves the window.
  sketch.Advance(1000);
  EXPECT_EQ(sketch.Estimate(7), 0u);
  EXPECT_EQ(sketch.TotalWeight(), 0);
}

TEST(SlidingCountMinTest, EstimateMatchesMaterializedWindowMerge) {
  SlidingCountMin sketch(256, 4, 10, 8, 5);
  // A reference flat CM fed the same in-window items (no expiry happens
  // below, so the window holds everything).
  CountMinSketch reference(256, 4, 5);
  SplitMix64 rng(29);
  for (uint64_t t = 0; t < 70; ++t) {
    const uint64_t item = rng.Next() % 64;
    sketch.UpdateAt(t, item);
    reference.Update(item);
  }
  for (uint64_t item = 0; item < 64; ++item) {
    EXPECT_EQ(sketch.Estimate(item), reference.Estimate(item))
        << "item " << item;
  }
}

TEST(SlidingCountMinTest, BatchedTimedIngestIsByteIdentical) {
  SplitMix64 rng(31);
  std::vector<uint64_t> timestamps, items;
  uint64_t t = 100;
  for (int i = 0; i < 3000; ++i) {
    const uint64_t r = rng.Next() % 10;
    if (r < 5) t += rng.Next() % 6;
    timestamps.push_back(r == 9 ? t - std::min<uint64_t>(t, 33) : t);
    items.push_back(rng.Next() % 128);
  }
  SlidingCountMin scalar(512, 4, 20, 6, 7);
  for (size_t i = 0; i < items.size(); ++i) {
    scalar.UpdateAt(timestamps[i], items[i]);
  }
  SlidingCountMin batched(512, 4, 20, 6, 7);
  batched.UpdateBatchTimed(timestamps, items);
  EXPECT_EQ(scalar.Serialize(), batched.Serialize());
}

TEST(SlidingCountMinTest, SerializeRoundTripIsByteIdentical) {
  SlidingCountMin sketch(512, 4, 15, 7, 11);
  SplitMix64 rng(37);
  for (uint64_t t = 0; t < 200; t += 3) {
    sketch.UpdateAt(t, rng.Next() % 100);
  }
  const std::vector<uint8_t> bytes = sketch.Serialize();
  Result<SlidingCountMin> restored = SlidingCountMin::Deserialize(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  EXPECT_EQ(restored.value().Serialize(), bytes);
  EXPECT_EQ(restored.value().TotalWeight(), sketch.TotalWeight());
  for (uint64_t item = 0; item < 100; ++item) {
    EXPECT_EQ(restored.value().Estimate(item), sketch.Estimate(item));
  }
}

TEST(SlidingCountMinTest, MergeSumsOverlappingPanes) {
  SlidingCountMin a(1024, 4, 10, 10, 1);
  SlidingCountMin b(1024, 4, 10, 10, 1);
  for (int i = 0; i < 40; ++i) a.UpdateAt(10, 5);
  for (int i = 0; i < 60; ++i) b.UpdateAt(10, 5);
  for (int i = 0; i < 30; ++i) b.UpdateAt(55, 6);
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_GE(a.Estimate(5), 100u);
  EXPECT_GE(a.Estimate(6), 30u);
  EXPECT_EQ(a.TotalWeight(), 130);
}

// ------------------------------------------------------- DecayedCountMin

TEST(DecayedCountMinTest, HalvesEveryHalfLife) {
  DecayedCountMin sketch(2048, 4, /*half_life=*/100.0, 1);
  sketch.UpdateAt(0, 42, 16);
  EXPECT_DOUBLE_EQ(sketch.Estimate(42), 16.0);
  sketch.Advance(100);
  EXPECT_DOUBLE_EQ(sketch.Estimate(42), 8.0);
  sketch.Advance(300);
  EXPECT_DOUBLE_EQ(sketch.Estimate(42), 2.0);
  EXPECT_DOUBLE_EQ(sketch.TotalWeight(), 2.0);
  // A fresh deposit is counted at full weight on the advanced clock.
  sketch.UpdateAt(300, 43, 4);
  EXPECT_DOUBLE_EQ(sketch.Estimate(43), 4.0);
}

TEST(DecayedCountMinTest, LateUpdatesClampToCurrentClock) {
  DecayedCountMin sketch(2048, 4, 50.0, 1);
  sketch.UpdateAt(1000, 1, 8);
  // A late arrival neither un-decays nor aborts: it lands "now".
  sketch.UpdateAt(10, 2, 8);
  EXPECT_EQ(sketch.last_timestamp(), 1000u);
  EXPECT_DOUBLE_EQ(sketch.Estimate(1), 8.0);
  EXPECT_DOUBLE_EQ(sketch.Estimate(2), 8.0);
}

TEST(DecayedCountMinTest, SurvivesRenormalizationOverManyHalfLives) {
  DecayedCountMin sketch(2048, 4, 1.0, 1);
  sketch.UpdateAt(0, 7, 1024);
  // March through thousands of half-lives in steps; the lazy scale must
  // renormalize instead of underflowing to garbage.
  for (uint64_t t = 50; t <= 5000; t += 50) sketch.Advance(t);
  EXPECT_NEAR(sketch.Estimate(7), 0.0, 1e-12);
  // The sketch still takes fresh weight at full value.
  sketch.UpdateAt(5000, 8, 3);
  EXPECT_DOUBLE_EQ(sketch.Estimate(8), 3.0);
  EXPECT_DOUBLE_EQ(sketch.TotalWeight(), 3.0);
}

TEST(DecayedCountMinTest, BatchedTimedIngestMatchesScalar) {
  SplitMix64 rng(41);
  std::vector<uint64_t> timestamps, items;
  uint64_t t = 0;
  for (int i = 0; i < 2000; ++i) {
    const uint64_t r = rng.Next() % 10;
    if (r < 4) t += rng.Next() % 20;
    timestamps.push_back(r == 9 ? t / 2 : t);
    items.push_back(rng.Next() % 64);
  }
  DecayedCountMin scalar(1024, 4, 250.0, 3);
  for (size_t i = 0; i < items.size(); ++i) {
    scalar.UpdateAt(timestamps[i], items[i]);
  }
  DecayedCountMin batched(1024, 4, 250.0, 3);
  batched.UpdateBatchTimed(timestamps, items);
  for (uint64_t item = 0; item < 64; ++item) {
    EXPECT_DOUBLE_EQ(batched.Estimate(item), scalar.Estimate(item));
  }
  // The batch path shares one scale lookup per run, so the running total
  // can differ from the per-item accumulation by float rounding only.
  EXPECT_NEAR(batched.TotalWeight(), scalar.TotalWeight(),
              1e-9 * scalar.TotalWeight());
}

TEST(DecayedCountMinTest, SerializeRoundTripIsByteIdentical) {
  DecayedCountMin sketch(512, 4, 75.0, 9);
  SplitMix64 rng(43);
  for (uint64_t t = 0; t < 500; t += 5) {
    sketch.UpdateAt(t, rng.Next() % 50);
  }
  const std::vector<uint8_t> bytes = sketch.Serialize();
  Result<DecayedCountMin> restored = DecayedCountMin::Deserialize(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  // Counters ride in logical units, so the round trip is a fixpoint even
  // though the writer's internal scale differs from the reader's.
  EXPECT_EQ(restored.value().Serialize(), bytes);
  for (uint64_t item = 0; item < 50; ++item) {
    EXPECT_DOUBLE_EQ(restored.value().Estimate(item), sketch.Estimate(item));
  }
}

TEST(DecayedCountMinTest, MergeAlignsDecayClocks) {
  DecayedCountMin a(2048, 4, 100.0, 1);
  DecayedCountMin b(2048, 4, 100.0, 1);
  a.UpdateAt(0, 5, 8);
  b.UpdateAt(100, 5, 8);
  // Merging advances a to t=100, where its 8 has decayed to 4.
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_EQ(a.last_timestamp(), 100u);
  EXPECT_DOUBLE_EQ(a.Estimate(5), 12.0);
  DecayedCountMin c(2048, 4, 50.0, 1);
  EXPECT_EQ(c.Merge(a).code(), StatusCode::kInvalidArgument);
}

// -------------------------------------------------- ExponentialHistogram

TEST(ExponentialHistogramTest, RelativeErrorPropertyUnderRandomArrivals) {
  for (const double epsilon : {0.2, 0.1, 0.05}) {
    const uint64_t window = 1 << 12;
    ExponentialHistogram eh(window, epsilon);
    std::vector<uint64_t> arrivals;
    SplitMix64 rng(0x9E3779B97F4A7C15ull ^
                   static_cast<uint64_t>(epsilon * 1000));
    uint64_t t = 0;
    for (int i = 0; i < 20000; ++i) {
      t += rng.Next() % 5;
      arrivals.push_back(t);
      eh.Add(t);
      if (i % 1717 == 0) {
        const uint64_t exact = static_cast<uint64_t>(std::count_if(
            arrivals.begin(), arrivals.end(),
            [&](uint64_t a) { return a + window > t; }));
        const double estimate = static_cast<double>(eh.EstimateCount(t));
        EXPECT_LE(std::abs(estimate - static_cast<double>(exact)),
                  epsilon * static_cast<double>(exact) + 1.0)
            << "epsilon " << epsilon << " at i=" << i;
      }
    }
  }
}

TEST(ExponentialHistogramTest, SerializeRoundTripIsByteIdentical) {
  ExponentialHistogram eh(1000, 0.1);
  SplitMix64 rng(47);
  uint64_t t = 0;
  for (int i = 0; i < 5000; ++i) {
    t += rng.Next() % 3;
    eh.Add(t);
  }
  const std::vector<uint8_t> bytes = eh.Serialize();
  Result<ExponentialHistogram> restored =
      ExponentialHistogram::Deserialize(bytes);
  ASSERT_TRUE(restored.ok()) << restored.status().message();
  EXPECT_EQ(restored.value().Serialize(), bytes);
  EXPECT_EQ(restored.value().EstimateCount(t), eh.EstimateCount(t));
  EXPECT_EQ(restored.value().NumBuckets(), eh.NumBuckets());
}

// ------------------------------------------------- registry integration

class TimeRegistryTest : public ::testing::Test {
 protected:
  void SetUp() override { RegisterBuiltinSketches(); }
};

TEST_F(TimeRegistryTest, TimedFactoriesBuildAllFourTypes) {
  const SketchRegistry& registry = SketchRegistry::Global();
  for (const char* name :
       {"sliding_hyperloglog", "sliding_countmin", "decayed_countmin",
        "exponential_histogram"}) {
    const SketchRegistry::Entry* entry = registry.FindByName(name);
    ASSERT_NE(entry, nullptr) << name;
    ASSERT_TRUE(entry->make_timed != nullptr) << name;
    Result<AnySketch> made = entry->make_timed(TimedSketchParams{});
    ASSERT_TRUE(made.ok()) << name << ": " << made.status().message();
    EXPECT_FALSE(made.value().EstimateSummary().empty());
  }
  // An untimed family has no timed factory.
  const SketchRegistry::Entry* hll = registry.FindByName("hyperloglog");
  ASSERT_NE(hll, nullptr);
  EXPECT_TRUE(hll->make_timed == nullptr);
}

TEST_F(TimeRegistryTest, TimedParamsAreValidatedPerFamily) {
  const SketchRegistry& registry = SketchRegistry::Global();
  // half_life on a pane-windowed type is rejected.
  TimedSketchParams bad;
  bad.half_life = 10.0;
  EXPECT_EQ(registry.FindByName("sliding_hyperloglog")
                ->make_timed(bad)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // Window geometry on the decayed type is rejected.
  TimedSketchParams windowed;
  windowed.pane_width = 5;
  windowed.num_panes = 4;
  EXPECT_EQ(registry.FindByName("decayed_countmin")
                ->make_timed(windowed)
                .status()
                .code(),
            StatusCode::kInvalidArgument);
  // And accepted where they belong.
  EXPECT_TRUE(
      registry.FindByName("sliding_countmin")->make_timed(windowed).ok());
  TimedSketchParams decayed;
  decayed.half_life = 60.0;
  EXPECT_TRUE(
      registry.FindByName("decayed_countmin")->make_timed(decayed).ok());
}

TEST_F(TimeRegistryTest, AnySketchTimedSurfaceRoundTrips) {
  TimedSketchParams params;
  params.pane_width = 10;
  params.num_panes = 6;
  Result<AnySketch> made = SketchRegistry::Global()
                               .FindByName("sliding_countmin")
                               ->make_timed(params);
  ASSERT_TRUE(made.ok());
  AnySketch& sketch = made.value();

  std::vector<uint64_t> timestamps, items;
  for (uint64_t i = 0; i < 200; ++i) {
    timestamps.push_back(i / 2);
    items.push_back(i % 16);
  }
  ASSERT_TRUE(sketch.UpdateBatchTimed(timestamps, items).ok());
  // Parallel-column contract.
  EXPECT_EQ(sketch
                .UpdateBatchTimed(std::span<const uint64_t>(timestamps)
                                      .subspan(0, 3),
                                  items)
                .code(),
            StatusCode::kInvalidArgument);
  ASSERT_TRUE(sketch.Advance(500).ok());
  // Through the registry deserializer the wire envelope yields the same
  // concrete type with the same windowed state.
  const std::vector<uint8_t> bytes = sketch.Serialize();
  Result<AnySketch> revived = SketchRegistry::Global().Deserialize(bytes);
  ASSERT_TRUE(revived.ok()) << revived.status().message();
  const SlidingCountMin* concrete = revived.value().As<SlidingCountMin>();
  ASSERT_NE(concrete, nullptr);
  EXPECT_EQ(concrete->last_timestamp(), 500u);
  EXPECT_EQ(revived.value().Serialize(), bytes);
}

TEST_F(TimeRegistryTest, UntimedSketchIgnoresTimestampColumn) {
  const SketchRegistry::Entry* entry =
      SketchRegistry::Global().FindByName("hyperloglog");
  ASSERT_NE(entry, nullptr);
  AnySketch sketch = entry->make_default();
  std::vector<uint64_t> timestamps = {1, 2, 3};
  std::vector<uint64_t> items = {10, 20, 30};
  ASSERT_TRUE(sketch.UpdateBatchTimed(timestamps, items).ok());
  EXPECT_EQ(sketch.Advance(99).code(), StatusCode::kUnimplemented);
}

// ----------------------------------------------- concurrent integration

TEST_F(TimeRegistryTest, ConcurrentRotationWithWaitFreeReaders) {
  TimedSketchParams params;
  params.pane_width = 8;
  params.num_panes = 4;
  ConcurrentAnySketch::Options options;
  options.max_threads = 4;
  Result<ConcurrentAnySketch> made = ConcurrentAnySketch::MakeTimedByName(
      "sliding_hyperloglog", params, options);
  ASSERT_TRUE(made.ok()) << made.status().message();
  ConcurrentAnySketch& sketch = made.value();

  std::atomic<bool> stop{false};
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&sketch, &stop] {
      while (!stop.load(std::memory_order_acquire)) {
        // Epoch-published reads race against pane rotations; under TSan
        // this is the wait-free contract's proof.
        (void)sketch.EstimateWithBounds(0.95);
        (void)sketch.EstimateSummary();
      }
    });
  }
  std::vector<uint64_t> timestamps(64), items(64);
  for (uint64_t t = 0; t < 512; ++t) {
    for (size_t i = 0; i < items.size(); ++i) {
      timestamps[i] = t;
      items[i] = t * items.size() + i;
    }
    ASSERT_TRUE(sketch.ApplyBatchTimed(timestamps, items).ok());
  }
  ASSERT_TRUE(sketch.Advance(511).ok());
  stop.store(true, std::memory_order_release);
  for (std::thread& reader : readers) reader.join();

  // Window = last 32 units: timestamps 480..511, 64 fresh items each.
  Result<gems::Estimate> estimate = sketch.EstimateWithBounds(0.95);
  ASSERT_TRUE(estimate.ok());
  EXPECT_NEAR(estimate.value().value, 32.0 * 64.0, 0.1 * 32.0 * 64.0);
}

TEST_F(TimeRegistryTest, ConcurrentTimedSketchSnapshotRoundTrips) {
  TimedSketchParams params;
  params.half_life = 128.0;
  Result<ConcurrentAnySketch> made = ConcurrentAnySketch::MakeTimedByName(
      "decayed_countmin", params, ConcurrentAnySketch::Options{});
  ASSERT_TRUE(made.ok()) << made.status().message();
  std::vector<uint64_t> timestamps, items;
  for (uint64_t i = 0; i < 100; ++i) {
    timestamps.push_back(i);
    items.push_back(7);
  }
  ASSERT_TRUE(made.value().ApplyBatchTimed(timestamps, items).ok());
  Result<AnySketch> snapshot = made.value().Snapshot();
  ASSERT_TRUE(snapshot.ok());
  const DecayedCountMin* concrete = snapshot.value().As<DecayedCountMin>();
  ASSERT_NE(concrete, nullptr);
  EXPECT_EQ(concrete->last_timestamp(), 99u);
  // 100 unit deposits at t = 0..99, each decayed to t = 99 with a 128-unit
  // half-life: sum over d of 2^(-d/128) for d in [0, 99] ~= 77.4.
  EXPECT_NEAR(concrete->Estimate(7), 77.4, 1.0);
}

}  // namespace
}  // namespace gems
