#include <cmath>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "cardinality/flajolet_martin.h"
#include "cardinality/hllpp.h"
#include "cardinality/hyperloglog.h"
#include "cardinality/kmv.h"
#include "cardinality/linear_counting.h"
#include "cardinality/loglog.h"
#include "cardinality/morris.h"
#include "common/numeric.h"
#include "core/summary.h"
#include "core/wire.h"
#include "workload/generators.h"

namespace gems {
namespace {

// Concept conformance.
static_assert(ItemSummary<HyperLogLog> && MergeableSummary<HyperLogLog>);
static_assert(ItemSummary<LogLog> && MergeableSummary<LogLog>);
static_assert(ItemSummary<FlajoletMartin> && MergeableSummary<FlajoletMartin>);
static_assert(ItemSummary<LinearCounting> && MergeableSummary<LinearCounting>);
static_assert(ItemSummary<HllPlusPlus> && MergeableSummary<HllPlusPlus>);
static_assert(ItemSummary<KmvSketch> && MergeableSummary<KmvSketch>);
static_assert(SerializableSummary<HyperLogLog>);
static_assert(SerializableSummary<KmvSketch>);
static_assert(SerializableSummary<MorrisCounter>);

// ---------------------------------------------------------------- Morris

TEST(MorrisTest, EmptyCountsZero) {
  MorrisCounter c(16, 1);
  EXPECT_DOUBLE_EQ(c.Estimate(), 0.0);
  EXPECT_EQ(c.RegisterBits(), 1);
}

TEST(MorrisTest, SmallCountsNearExact) {
  // With a = 256 the first ~hundred increments are nearly deterministic.
  MorrisCounter c(256, 2);
  for (int i = 0; i < 100; ++i) c.Increment();
  EXPECT_NEAR(c.Estimate(), 100.0, 25.0);
}

TEST(MorrisTest, LargeCountWithinRelativeError) {
  const uint64_t n = 200000;
  std::vector<double> errors;
  for (int trial = 0; trial < 20; ++trial) {
    MorrisCounter c(64, 100 + trial);
    c.IncrementBy(n);
    errors.push_back((c.Estimate() - n) / static_cast<double>(n));
  }
  // Mean relative error should be near zero (unbiased), RMS ~ 1/sqrt(2a).
  EXPECT_LT(std::abs(Mean(errors)), 0.08);
  EXPECT_LT(Rms(errors), 3.0 / std::sqrt(2.0 * 64.0));
}

TEST(MorrisTest, RegisterGrowsDoublyLogarithmically) {
  MorrisCounter c(1.0, 3);
  c.IncrementBy(1 << 20);
  // Register ~ log2(n) for a=1, so bits ~ log2 log2 n ~ 4.4.
  EXPECT_LE(c.RegisterBits(), 8);
}

TEST(MorrisTest, ConfidenceIntervalCoversTruthUsually) {
  const uint64_t n = 50000;
  int covered = 0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    MorrisCounter c(128, 500 + t);
    c.IncrementBy(n);
    if (c.EstimateWithBounds(0.95).Covers(static_cast<double>(n))) ++covered;
  }
  EXPECT_GE(covered, trials * 8 / 10);
}

TEST(MorrisTest, MergeApproximatelyAdds) {
  std::vector<double> errors;
  for (int t = 0; t < 20; ++t) {
    MorrisCounter a(128, 10 + t), b(128, 900 + t);
    a.IncrementBy(30000);
    b.IncrementBy(50000);
    ASSERT_TRUE(a.Merge(b).ok());
    errors.push_back((a.Estimate() - 80000.0) / 80000.0);
  }
  EXPECT_LT(std::abs(Mean(errors)), 0.05);
}

TEST(MorrisTest, MergeRejectsMismatchedA) {
  MorrisCounter a(16, 0), b(64, 0);
  EXPECT_FALSE(a.Merge(b).ok());
}

TEST(MorrisTest, SerializeRoundTrip) {
  MorrisCounter c(32, 5);
  c.IncrementBy(10000);
  const auto bytes = c.Serialize();
  auto r = MorrisCounter::Deserialize(bytes);
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().Estimate(), c.Estimate());
}

TEST(MorrisTest, DeserializeGarbageFails) {
  EXPECT_FALSE(MorrisCounter::Deserialize(std::vector<uint8_t>{1, 2, 3}).ok());
}

TEST(MorrisEnsembleTest, AveragingReducesError) {
  const uint64_t n = 100000;
  std::vector<double> single_errors, ensemble_errors;
  for (int t = 0; t < 15; ++t) {
    MorrisCounter single(8, t);
    MorrisEnsemble ensemble(16, 8, 1000 + t);
    for (uint64_t i = 0; i < n; ++i) {
      single.Increment();
      ensemble.Increment();
    }
    single_errors.push_back(RelativeError(single.Estimate(), n));
    ensemble_errors.push_back(RelativeError(ensemble.Estimate(), n));
  }
  EXPECT_LT(Rms(ensemble_errors), Rms(single_errors));
}

// -------------------------------------------------------- Linear counting

TEST(LinearCountingTest, EmptyIsZero) {
  LinearCounting lc(1024, 0);
  EXPECT_DOUBLE_EQ(lc.Estimate(), 0.0);
}

TEST(LinearCountingTest, AccurateAtLowLoad) {
  LinearCounting lc(1 << 14, 1);
  const auto items = DistinctItems(2000, 7);
  for (uint64_t item : items) lc.Update(item);
  EXPECT_NEAR(lc.Estimate(), 2000.0, 100.0);
}

TEST(LinearCountingTest, DuplicatesDontInflate) {
  LinearCounting lc(4096, 2);
  for (int rep = 0; rep < 100; ++rep) {
    for (uint64_t i = 0; i < 100; ++i) lc.Update(i);
  }
  EXPECT_NEAR(lc.Estimate(), 100.0, 15.0);
}

TEST(LinearCountingTest, SaturationReturnsFiniteUpperBound) {
  LinearCounting lc(64, 3);
  for (uint64_t i = 0; i < 10000; ++i) lc.Update(i);
  EXPECT_GT(lc.Estimate(), 64.0);
  EXPECT_TRUE(std::isfinite(lc.Estimate()));
}

TEST(LinearCountingTest, MergeEqualsUnion) {
  LinearCounting a(8192, 4), b(8192, 4), whole(8192, 4);
  const auto items = DistinctItems(3000, 9);
  for (size_t i = 0; i < items.size(); ++i) {
    whole.Update(items[i]);
    (i % 2 == 0 ? a : b).Update(items[i]);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_DOUBLE_EQ(a.Estimate(), whole.Estimate());
}

TEST(LinearCountingTest, MergeRejectsMismatch) {
  LinearCounting a(1024, 0), b(2048, 0), c(1024, 1);
  EXPECT_FALSE(a.Merge(b).ok());
  EXPECT_FALSE(a.Merge(c).ok());
}

TEST(LinearCountingTest, SerializeRoundTrip) {
  LinearCounting lc(2048, 5);
  for (uint64_t i = 0; i < 500; ++i) lc.Update(i);
  auto r = LinearCounting::Deserialize(lc.Serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().Estimate(), lc.Estimate());
  EXPECT_EQ(r.value().NumBitsSet(), lc.NumBitsSet());
}

// --------------------------------------------------------- FlajoletMartin

TEST(FlajoletMartinTest, EstimateWithinExpectedError) {
  const uint64_t n = 100000;
  std::vector<double> errors;
  for (int t = 0; t < 15; ++t) {
    FlajoletMartin fm(256, t);
    for (uint64_t item : DistinctItems(n, 50 + t)) fm.Update(item);
    errors.push_back((fm.Estimate() - n) / static_cast<double>(n));
  }
  // RMSE should be in the ballpark of 0.78/sqrt(256) ~ 0.049.
  EXPECT_LT(Rms(errors), 3 * 0.78 / std::sqrt(256.0));
  EXPECT_LT(std::abs(Mean(errors)), 0.15);
}

TEST(FlajoletMartinTest, DuplicatesAreIdempotent) {
  FlajoletMartin fm(64, 1);
  for (uint64_t i = 0; i < 1000; ++i) fm.Update(i);
  const double once = fm.Estimate();
  for (int rep = 0; rep < 10; ++rep) {
    for (uint64_t i = 0; i < 1000; ++i) fm.Update(i);
  }
  EXPECT_DOUBLE_EQ(fm.Estimate(), once);
}

TEST(FlajoletMartinTest, MergeEqualsUnion) {
  FlajoletMartin a(128, 2), b(128, 2), whole(128, 2);
  const auto items = DistinctItems(20000, 3);
  for (size_t i = 0; i < items.size(); ++i) {
    whole.Update(items[i]);
    (i % 2 == 0 ? a : b).Update(items[i]);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_DOUBLE_EQ(a.Estimate(), whole.Estimate());
}

TEST(FlajoletMartinTest, RejectsNonPowerOfTwo) {
  EXPECT_DEATH(FlajoletMartin(100, 0), "");
}

TEST(FlajoletMartinTest, SerializeRoundTrip) {
  FlajoletMartin fm(64, 9);
  for (uint64_t item : DistinctItems(5000, 4)) fm.Update(item);
  auto r = FlajoletMartin::Deserialize(fm.Serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().Estimate(), fm.Estimate());
}

// ------------------------------------------------------------------ LogLog

TEST(LogLogTest, EstimateWithinExpectedError) {
  const uint64_t n = 100000;
  std::vector<double> errors;
  for (int t = 0; t < 15; ++t) {
    LogLog ll(10, t);  // m = 1024, std err ~ 1.30/32 ~ 4%.
    for (uint64_t item : DistinctItems(n, 60 + t)) ll.Update(item);
    errors.push_back((ll.Estimate() - n) / static_cast<double>(n));
  }
  EXPECT_LT(Rms(errors), 3 * 1.30 / std::sqrt(1024.0));
  EXPECT_LT(std::abs(Mean(errors)), 0.05);
}

TEST(LogLogTest, MergeEqualsUnion) {
  LogLog a(8, 1), b(8, 1), whole(8, 1);
  const auto items = DistinctItems(50000, 5);
  for (size_t i = 0; i < items.size(); ++i) {
    whole.Update(items[i]);
    (i % 3 == 0 ? a : b).Update(items[i]);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_DOUBLE_EQ(a.Estimate(), whole.Estimate());
}

TEST(LogLogTest, SerializeRoundTrip) {
  LogLog ll(6, 2);
  for (uint64_t item : DistinctItems(10000, 6)) ll.Update(item);
  auto r = LogLog::Deserialize(ll.Serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().Estimate(), ll.Estimate());
}

// ------------------------------------------------------------- HyperLogLog

TEST(HyperLogLogTest, EmptyIsZero) {
  HyperLogLog hll(12, 0);
  EXPECT_DOUBLE_EQ(hll.Estimate(), 0.0);
}

TEST(HyperLogLogTest, EstimateWithinExpectedError) {
  const uint64_t n = 1000000;
  std::vector<double> errors;
  for (int t = 0; t < 15; ++t) {
    HyperLogLog hll(12, t);  // m = 4096, std err ~ 1.63%.
    for (uint64_t item : DistinctItems(n, 70 + t)) hll.Update(item);
    errors.push_back((hll.Estimate() - n) / static_cast<double>(n));
  }
  EXPECT_LT(Rms(errors), 3 * 1.04 / std::sqrt(4096.0));
  EXPECT_LT(std::abs(Mean(errors)), 0.02);
}

TEST(HyperLogLogTest, SmallRangeCorrectionKicksIn) {
  // At n << m the raw estimator is biased; the corrected one is accurate.
  HyperLogLog hll(14, 3);  // m = 16384.
  for (uint64_t item : DistinctItems(100, 8)) hll.Update(item);
  EXPECT_NEAR(hll.Estimate(), 100.0, 10.0);
}

TEST(HyperLogLogTest, BeatsLogLogAtEqualSpace) {
  const uint64_t n = 500000;
  std::vector<double> hll_errors, ll_errors;
  for (int t = 0; t < 12; ++t) {
    HyperLogLog hll(10, t);
    LogLog ll(10, t);
    for (uint64_t item : DistinctItems(n, 90 + t)) {
      hll.Update(item);
      ll.Update(item);
    }
    hll_errors.push_back(RelativeError(hll.Estimate(), n));
    ll_errors.push_back(RelativeError(ll.Estimate(), n));
  }
  EXPECT_LT(Rms(hll_errors), Rms(ll_errors));
}

TEST(HyperLogLogTest, MergeEqualsUnionExactly) {
  HyperLogLog a(11, 4), b(11, 4), whole(11, 4);
  const auto items = DistinctItems(300000, 11);
  for (size_t i = 0; i < items.size(); ++i) {
    whole.Update(items[i]);
    (i % 2 == 0 ? a : b).Update(items[i]);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_DOUBLE_EQ(a.Estimate(), whole.Estimate());
}

TEST(HyperLogLogTest, MergeWithOverlapDoesNotDoubleCount) {
  HyperLogLog a(11, 4), b(11, 4);
  const auto items = DistinctItems(100000, 12);
  for (uint64_t item : items) {
    a.Update(item);
    b.Update(item);  // Identical contents.
  }
  const double before = a.Estimate();
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_DOUBLE_EQ(a.Estimate(), before);
}

TEST(HyperLogLogTest, ConfidenceIntervalCoversTruthUsually) {
  const uint64_t n = 200000;
  int covered = 0;
  const int trials = 40;
  for (int t = 0; t < trials; ++t) {
    HyperLogLog hll(10, 40 + t);
    for (uint64_t item : DistinctItems(n, 200 + t)) hll.Update(item);
    if (hll.EstimateWithBounds(0.95).Covers(static_cast<double>(n))) ++covered;
  }
  EXPECT_GE(covered, trials * 8 / 10);
}

TEST(HyperLogLogTest, MergeRejectsMismatch) {
  HyperLogLog a(10, 0), b(11, 0), c(10, 1);
  EXPECT_FALSE(a.Merge(b).ok());
  EXPECT_FALSE(a.Merge(c).ok());
}

TEST(HyperLogLogTest, SerializeRoundTrip) {
  HyperLogLog hll(10, 5);
  for (uint64_t item : DistinctItems(50000, 13)) hll.Update(item);
  auto r = HyperLogLog::Deserialize(hll.Serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().Estimate(), hll.Estimate());
}

TEST(HyperLogLogTest, DeserializeRejectsBadPrecision) {
  HyperLogLog hll(10, 5);
  auto bytes = hll.Serialize();
  // Rewrite the precision byte (first payload byte) and re-wrap so the
  // envelope itself is valid — this exercises the payload validation, not
  // the checksum.
  Result<EnvelopeView> view = ParseEnvelope(bytes);
  ASSERT_TRUE(view.ok());
  std::vector<uint8_t> payload(view.value().payload,
                               view.value().payload + view.value().payload_size);
  payload[0] = 50;
  auto corrupt = WrapEnvelope(SketchTypeId::kHyperLogLog, std::move(payload));
  EXPECT_FALSE(HyperLogLog::Deserialize(corrupt).ok());
}

TEST(HyperLogLogTest, DeserializeRejectsFlippedPayloadByte) {
  HyperLogLog hll(10, 5);
  auto bytes = hll.Serialize();
  bytes[kWireHeaderSize] ^= 0xFF;  // First payload byte; checksum catches it.
  EXPECT_EQ(HyperLogLog::Deserialize(bytes).status().code(),
            StatusCode::kCorruption);
}

TEST(HyperLogLogTest, AlphaConstants) {
  EXPECT_DOUBLE_EQ(HyperLogLog::Alpha(16), 0.673);
  EXPECT_DOUBLE_EQ(HyperLogLog::Alpha(32), 0.697);
  EXPECT_DOUBLE_EQ(HyperLogLog::Alpha(64), 0.709);
  EXPECT_NEAR(HyperLogLog::Alpha(4096), 0.7213 / (1 + 1.079 / 4096), 1e-12);
}

// ------------------------------------------------------------------ HLL++

TEST(HllPlusPlusTest, StartsSparse) {
  HllPlusPlus hpp(14, 0);
  EXPECT_TRUE(hpp.IsSparse());
}

TEST(HllPlusPlusTest, SparseModeIsNearExactAtSmallN) {
  HllPlusPlus hpp(14, 1);
  for (uint64_t item : DistinctItems(1000, 21)) hpp.Update(item);
  ASSERT_TRUE(hpp.IsSparse());
  EXPECT_NEAR(hpp.Estimate(), 1000.0, 20.0);
}

TEST(HllPlusPlusTest, SparseBeatsDenseAtSmallN) {
  // The headline HLL++ claim: sparse mode gives much better accuracy for
  // n << m than the plain dense estimator.
  std::vector<double> sparse_errors, dense_errors;
  for (int t = 0; t < 10; ++t) {
    HllPlusPlus sparse(11, t);
    HyperLogLog dense(11, t);
    for (uint64_t item : DistinctItems(300, 300 + t)) {
      sparse.Update(item);
      dense.Update(item);
    }
    sparse_errors.push_back(RelativeError(sparse.Estimate(), 300));
    dense_errors.push_back(RelativeError(dense.Estimate(), 300));
  }
  EXPECT_LE(Rms(sparse_errors), Rms(dense_errors));
}

TEST(HllPlusPlusTest, ConvertsToDenseAndStaysAccurate) {
  HllPlusPlus hpp(10, 2);  // Capacity 2^10/8 = 128 sparse entries.
  const uint64_t n = 100000;
  for (uint64_t item : DistinctItems(n, 22)) hpp.Update(item);
  EXPECT_FALSE(hpp.IsSparse());
  EXPECT_NEAR(hpp.Estimate(), static_cast<double>(n), 0.15 * n);
}

TEST(HllPlusPlusTest, ConversionPreservesDenseEquivalence) {
  // Densifying the sparse form must give exactly the registers a dense
  // sketch would have had.
  HllPlusPlus hpp(8, 3);
  HyperLogLog dense(8, 3);
  for (uint64_t item : DistinctItems(200, 23)) {
    hpp.Update(item);
    dense.Update(item);
  }
  hpp.ConvertToDense();
  EXPECT_DOUBLE_EQ(hpp.Estimate(), dense.Estimate());
}

TEST(HllPlusPlusTest, MergeSparseSparse) {
  HllPlusPlus a(12, 4), b(12, 4);
  const auto items = DistinctItems(400, 24);
  for (size_t i = 0; i < items.size(); ++i) {
    (i % 2 == 0 ? a : b).Update(items[i]);
  }
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_TRUE(a.IsSparse());
  EXPECT_NEAR(a.Estimate(), 400.0, 15.0);
}

TEST(HllPlusPlusTest, MergeMixedModes) {
  HllPlusPlus sparse(10, 5), dense(10, 5);
  const auto small = DistinctItems(100, 25);
  const auto big = DistinctItems(50000, 26);
  for (uint64_t item : small) sparse.Update(item);
  for (uint64_t item : big) dense.Update(item);
  ASSERT_FALSE(dense.IsSparse());
  ASSERT_TRUE(sparse.IsSparse());
  ASSERT_TRUE(dense.Merge(sparse).ok());
  EXPECT_NEAR(dense.Estimate(), 50100.0, 0.15 * 50100.0);
  // And the other direction: sparse absorbing dense converts itself.
  HllPlusPlus sparse2(10, 5);
  for (uint64_t item : small) sparse2.Update(item);
  HllPlusPlus dense2(10, 5);
  for (uint64_t item : big) dense2.Update(item);
  ASSERT_TRUE(sparse2.Merge(dense2).ok());
  EXPECT_FALSE(sparse2.IsSparse());
  EXPECT_NEAR(sparse2.Estimate(), 50100.0, 0.15 * 50100.0);
}

TEST(HllPlusPlusTest, SerializeRoundTripSparse) {
  HllPlusPlus hpp(12, 6);
  for (uint64_t item : DistinctItems(300, 27)) hpp.Update(item);
  ASSERT_TRUE(hpp.IsSparse());
  auto r = HllPlusPlus::Deserialize(hpp.Serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_TRUE(r.value().IsSparse());
  EXPECT_DOUBLE_EQ(r.value().Estimate(), hpp.Estimate());
}

TEST(HllPlusPlusTest, SerializeRoundTripDense) {
  HllPlusPlus hpp(8, 7);
  for (uint64_t item : DistinctItems(20000, 28)) hpp.Update(item);
  ASSERT_FALSE(hpp.IsSparse());
  auto r = HllPlusPlus::Deserialize(hpp.Serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r.value().IsSparse());
  EXPECT_DOUBLE_EQ(r.value().Estimate(), hpp.Estimate());
}

// -------------------------------------------------------------------- KMV

TEST(KmvTest, ExactBelowK) {
  KmvSketch kmv(100, 0);
  for (uint64_t i = 0; i < 50; ++i) kmv.Update(i);
  EXPECT_DOUBLE_EQ(kmv.Estimate(), 50.0);
  EXPECT_DOUBLE_EQ(kmv.Theta(), 1.0);
}

TEST(KmvTest, EstimateWithinExpectedError) {
  const uint64_t n = 200000;
  std::vector<double> errors;
  for (int t = 0; t < 15; ++t) {
    KmvSketch kmv(1024, t);
    for (uint64_t item : DistinctItems(n, 400 + t)) kmv.Update(item);
    errors.push_back((kmv.Estimate() - n) / static_cast<double>(n));
  }
  EXPECT_LT(Rms(errors), 3.0 / std::sqrt(1022.0));
  EXPECT_LT(std::abs(Mean(errors)), 0.03);
}

TEST(KmvTest, DuplicatesAreIdempotent) {
  KmvSketch kmv(64, 1);
  for (uint64_t i = 0; i < 1000; ++i) kmv.Update(i);
  const double once = kmv.Estimate();
  for (int rep = 0; rep < 5; ++rep) {
    for (uint64_t i = 0; i < 1000; ++i) kmv.Update(i);
  }
  EXPECT_DOUBLE_EQ(kmv.Estimate(), once);
  // And the estimate is within ~3 standard errors (n/sqrt(k-2)) of truth.
  EXPECT_NEAR(kmv.Estimate(), 1000.0, 3 * 1000.0 / std::sqrt(62.0));
}

TEST(KmvTest, MergeEstimatesUnion) {
  KmvSketch a(512, 2), b(512, 2);
  // 30k in a, 30k in b, 10k shared -> union 50k.
  const auto shared = DistinctItems(10000, 31);
  const auto only_a = DistinctItems(20000, 32);
  const auto only_b = DistinctItems(20000, 33);
  for (uint64_t item : shared) {
    a.Update(item);
    b.Update(item);
  }
  for (uint64_t item : only_a) a.Update(item);
  for (uint64_t item : only_b) b.Update(item);
  ASSERT_TRUE(a.Merge(b).ok());
  EXPECT_NEAR(a.Estimate(), 50000.0, 0.2 * 50000.0);
}

TEST(KmvTest, SetAlgebraMatchesGroundTruth) {
  KmvSketch a(2048, 3), b(2048, 3);
  const auto shared = DistinctItems(20000, 41);
  const auto only_a = DistinctItems(30000, 42);
  const auto only_b = DistinctItems(10000, 43);
  for (uint64_t item : shared) {
    a.Update(item);
    b.Update(item);
  }
  for (uint64_t item : only_a) a.Update(item);
  for (uint64_t item : only_b) b.Update(item);

  const double union_est = KmvSketch::Union(a, b).Estimate();
  const double inter_est = KmvSketch::Intersect(a, b).Estimate();
  const double diff_est = KmvSketch::Difference(a, b).Estimate();
  EXPECT_NEAR(union_est, 60000.0, 6000.0);
  EXPECT_NEAR(inter_est, 20000.0, 4000.0);
  EXPECT_NEAR(diff_est, 30000.0, 5000.0);
  // Inclusion-exclusion approximately holds.
  EXPECT_NEAR(union_est, a.Estimate() + b.Estimate() - inter_est,
              0.15 * union_est);
}

TEST(KmvTest, IntersectionOfDisjointSetsIsSmall) {
  KmvSketch a(512, 4), b(512, 4);
  for (uint64_t item : DistinctItems(50000, 44)) a.Update(item);
  for (uint64_t item : DistinctItems(50000, 45)) b.Update(item);
  EXPECT_LT(KmvSketch::Intersect(a, b).Estimate(), 2000.0);
}

TEST(KmvTest, ThetaResultConfidenceInterval) {
  KmvSketch kmv(1024, 5);
  const uint64_t n = 100000;
  for (uint64_t item : DistinctItems(n, 46)) kmv.Update(item);
  Estimate e = kmv.ToTheta().EstimateWithBounds(0.95);
  EXPECT_GT(e.upper, e.lower);
  EXPECT_TRUE(e.Covers(static_cast<double>(n)) ||
              RelativeError(e.value, static_cast<double>(n)) < 0.15);
}

TEST(KmvTest, MergeRejectsSeedMismatch) {
  KmvSketch a(64, 1), b(64, 2);
  EXPECT_FALSE(a.Merge(b).ok());
}

TEST(KmvTest, SerializeRoundTrip) {
  KmvSketch kmv(256, 6);
  for (uint64_t item : DistinctItems(10000, 47)) kmv.Update(item);
  auto r = KmvSketch::Deserialize(kmv.Serialize());
  ASSERT_TRUE(r.ok());
  EXPECT_DOUBLE_EQ(r.value().Estimate(), kmv.Estimate());
  EXPECT_EQ(r.value().NumRetained(), kmv.NumRetained());
}

// ---------------------------------------------- Cross-sketch property sweep

struct AccuracyCase {
  const char* name;
  int log2_space;       // Sketch size knob.
  double expected_rmse; // Theoretical standard error at that size.
};

class CardinalityAccuracySweep
    : public ::testing::TestWithParam<AccuracyCase> {};

TEST_P(CardinalityAccuracySweep, RmseTracksTheory) {
  const AccuracyCase c = GetParam();
  const uint64_t n = 200000;
  std::vector<double> errors;
  for (int t = 0; t < 10; ++t) {
    double estimate = 0;
    const auto items = DistinctItems(n, 1000 + t);
    if (std::string(c.name) == "hll") {
      HyperLogLog s(c.log2_space, t);
      for (uint64_t item : items) s.Update(item);
      estimate = s.Estimate();
    } else if (std::string(c.name) == "loglog") {
      LogLog s(c.log2_space, t);
      for (uint64_t item : items) s.Update(item);
      estimate = s.Estimate();
    } else {
      KmvSketch s(1u << c.log2_space, t);
      for (uint64_t item : items) s.Update(item);
      estimate = s.Estimate();
    }
    errors.push_back((estimate - n) / static_cast<double>(n));
  }
  // RMSE within 3x of theory (10 trials is noisy) and bias small.
  EXPECT_LT(Rms(errors), 3 * c.expected_rmse) << c.name;
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, CardinalityAccuracySweep,
    ::testing::Values(AccuracyCase{"hll", 8, 1.04 / 16},
                      AccuracyCase{"hll", 10, 1.04 / 32},
                      AccuracyCase{"hll", 12, 1.04 / 64},
                      AccuracyCase{"loglog", 8, 1.30 / 16},
                      AccuracyCase{"loglog", 10, 1.30 / 32},
                      AccuracyCase{"kmv", 8, 1.0 / 16},
                      AccuracyCase{"kmv", 10, 1.0 / 32}));

}  // namespace
}  // namespace gems
