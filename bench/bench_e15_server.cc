// E15: gemsd end-to-end serving benchmark.
//
//   bench_e15_server --e15_server_json=out.json [--e15_keys=N]
//                    [--e15_ops=N] [--e15_connections=N] [--e15_batch=N]
//                    [--e15_threads=N]
//
// Stands up an in-process gemsd (real epoll server, real loopback
// sockets) over a keyspace of `keys` hllpp sketches, then drives three
// closed-loop scenarios at `connections` client threads:
//
//   update_heavy  90% UPDATE / 10% QUERY — the ingest-dominated shape
//   query_heavy   10% UPDATE / 90% QUERY — the read-dominated shape
//   query_idle   100% QUERY             — reader latency with no writers
//
// Reported per scenario: aggregate requests/s and client-observed
// latency percentiles, with QUERY latencies also broken out separately.
// The headline gate is `loaded_vs_idle_query_p99`: QUERY p99 while the
// same daemon absorbs concurrent writer traffic (the query_heavy mix),
// over QUERY p99 on an idle daemon with identical sketch state. Epoch-
// published reads mean writers never hold a lock a reader wants, so this
// ratio should stay small (CI gates it at 2x); a regression here means
// ingest started blocking the read path.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "common/random.h"
#include "core/registry.h"
#include "server/client.h"
#include "server/keyspace.h"
#include "server/server.h"

namespace {

using gems::server::GemsdClient;
using gems::server::Keyspace;
using gems::server::KeyspaceOptions;
using gems::server::Server;
using gems::server::ServerOptions;

std::string KeyName(uint64_t i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%08llu",
                static_cast<unsigned long long>(i));
  return buf;
}

double Percentile(const std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const size_t at = std::min(
      sorted_us.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_us.size())));
  return sorted_us[at];
}

struct ScenarioResult {
  std::string name;
  uint64_t update_pct = 0;
  double requests_per_sec = 0.0;
  double p50_us = 0.0;
  double p99_us = 0.0;
  double query_p50_us = 0.0;
  double query_p99_us = 0.0;
  uint64_t total_requests = 0;
};

ScenarioResult RunScenario(const std::string& name, uint16_t port,
                           uint64_t update_pct, size_t connections,
                           uint64_t ops_per_conn, size_t batch,
                           uint64_t num_keys) {
  std::vector<std::vector<double>> all_us(connections);
  std::vector<std::vector<double>> query_us(connections);
  std::vector<std::thread> workers;
  const auto wall_start = std::chrono::steady_clock::now();
  for (size_t c = 0; c < connections; ++c) {
    workers.emplace_back([&, c] {
      gems::Result<GemsdClient> client =
          GemsdClient::Connect("127.0.0.1", port);
      if (!client.ok()) {
        std::fprintf(stderr, "e15: connect: %s\n",
                     client.status().ToString().c_str());
        std::exit(1);
      }
      gems::SplitMix64 rng(0xE15ull * 1315423911u + c);
      std::vector<uint64_t> items(batch);
      all_us[c].reserve(ops_per_conn);
      for (uint64_t op = 0; op < ops_per_conn; ++op) {
        // Zipf-ish skew: squaring a uniform draw concentrates traffic on
        // low key ids while still touching the whole keyspace tail.
        const double u = static_cast<double>(rng.Next() >> 11) * 0x1p-53;
        const uint64_t key_id =
            static_cast<uint64_t>(u * u * static_cast<double>(num_keys));
        const std::string key = KeyName(std::min(key_id, num_keys - 1));
        const bool do_update = rng.Next() % 100 < update_pct;
        const auto t0 = std::chrono::steady_clock::now();
        gems::Status s;
        if (do_update) {
          for (uint64_t& item : items) item = rng.Next();
          s = client.value().Update(key, items);
        } else {
          s = client.value().Query(key).status();
        }
        const auto t1 = std::chrono::steady_clock::now();
        if (!s.ok()) {
          std::fprintf(stderr, "e15: %s: %s\n", name.c_str(),
                       s.ToString().c_str());
          std::exit(1);
        }
        const double us =
            std::chrono::duration<double, std::micro>(t1 - t0).count();
        all_us[c].push_back(us);
        if (!do_update) query_us[c].push_back(us);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  std::vector<double> all_sorted;
  std::vector<double> query_sorted;
  for (size_t c = 0; c < connections; ++c) {
    all_sorted.insert(all_sorted.end(), all_us[c].begin(), all_us[c].end());
    query_sorted.insert(query_sorted.end(), query_us[c].begin(),
                        query_us[c].end());
  }
  std::sort(all_sorted.begin(), all_sorted.end());
  std::sort(query_sorted.begin(), query_sorted.end());

  ScenarioResult result;
  result.name = name;
  result.update_pct = update_pct;
  result.total_requests = all_sorted.size();
  result.requests_per_sec =
      static_cast<double>(all_sorted.size()) / wall_s;
  result.p50_us = Percentile(all_sorted, 0.50);
  result.p99_us = Percentile(all_sorted, 0.99);
  result.query_p50_us = Percentile(query_sorted, 0.50);
  result.query_p99_us = Percentile(query_sorted, 0.99);
  std::printf(
      "e15 %-12s %8.0f req/s  p50 %7.1f us  p99 %7.1f us  "
      "(query p50 %7.1f us, p99 %7.1f us)\n",
      name.c_str(), result.requests_per_sec, result.p50_us, result.p99_us,
      result.query_p50_us, result.query_p99_us);
  std::fflush(stdout);
  return result;
}

std::string ScenarioJson(const ScenarioResult& r) {
  char buf[512];
  std::snprintf(
      buf, sizeof(buf),
      "    {\"name\": \"%s\", \"update_pct\": %llu, "
      "\"total_requests\": %llu, \"requests_per_sec\": %.1f, "
      "\"p50_us\": %.1f, \"p99_us\": %.1f, "
      "\"query_p50_us\": %.1f, \"query_p99_us\": %.1f}",
      r.name.c_str(), static_cast<unsigned long long>(r.update_pct),
      static_cast<unsigned long long>(r.total_requests),
      r.requests_per_sec, r.p50_us, r.p99_us, r.query_p50_us,
      r.query_p99_us);
  return buf;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  uint64_t num_keys = 100000;
  uint64_t ops_per_conn = 20000;
  size_t connections = 8;
  size_t batch = 64;
  size_t server_threads = 4;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--e15_server_json=", 0) == 0) {
      json_path = std::string(arg.substr(std::strlen("--e15_server_json=")));
    } else if (arg.rfind("--e15_keys=", 0) == 0) {
      num_keys = std::strtoull(argv[i] + std::strlen("--e15_keys="),
                               nullptr, 10);
    } else if (arg.rfind("--e15_ops=", 0) == 0) {
      ops_per_conn = std::strtoull(argv[i] + std::strlen("--e15_ops="),
                                   nullptr, 10);
    } else if (arg.rfind("--e15_connections=", 0) == 0) {
      connections = std::strtoull(
          argv[i] + std::strlen("--e15_connections="), nullptr, 10);
    } else if (arg.rfind("--e15_batch=", 0) == 0) {
      batch = std::strtoull(argv[i] + std::strlen("--e15_batch="), nullptr,
                            10);
    } else if (arg.rfind("--e15_threads=", 0) == 0) {
      server_threads = std::strtoull(argv[i] + std::strlen("--e15_threads="),
                                     nullptr, 10);
    } else {
      std::fprintf(stderr, "e15: unknown flag %s\n", argv[i]);
      return 1;
    }
  }
  if (num_keys == 0 || ops_per_conn == 0 || connections == 0 || batch == 0) {
    std::fprintf(stderr, "e15: all sizes must be nonzero\n");
    return 1;
  }

  gems::RegisterBuiltinSketches();

  // The keyspace is populated in-process (a million CREATE round trips
  // would measure the loopback, not the daemon).
  KeyspaceOptions keyspace_options;
  keyspace_options.num_shards = 256;
  Keyspace keyspace(keyspace_options);
  const auto create_start = std::chrono::steady_clock::now();
  for (uint64_t k = 0; k < num_keys; ++k) {
    if (gems::Status s = keyspace.Create(KeyName(k), "hllpp"); !s.ok()) {
      std::fprintf(stderr, "e15: create: %s\n", s.ToString().c_str());
      return 1;
    }
  }
  const double create_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    create_start)
          .count();
  std::printf("e15: created %llu hllpp keys in %.1f s\n",
              static_cast<unsigned long long>(num_keys), create_s);

  ServerOptions server_options;
  server_options.num_threads = server_threads;
  Server server(&keyspace, server_options);
  if (gems::Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "e15: start: %s\n", s.ToString().c_str());
    return 1;
  }

  // The throughput mixes run first, which doubles as warm-up: by the time
  // the idle baseline runs, the hot keys have real (dense) state, so the
  // loaded and idle query paths pay the same per-estimate cost and the
  // gate ratio isolates the effect of concurrent ingest rather than
  // comparing dense-sketch scans against empty-sketch scans.
  const ScenarioResult update_heavy =
      RunScenario("update_heavy", server.port(), 90, connections,
                  ops_per_conn, batch, num_keys);
  const ScenarioResult query_heavy =
      RunScenario("query_heavy", server.port(), 10, connections,
                  ops_per_conn, batch, num_keys);
  const ScenarioResult idle =
      RunScenario("query_idle", server.port(), 0, connections, ops_per_conn,
                  batch, num_keys);
  server.Stop();

  // QUERY tail latency while the daemon absorbs concurrent writer
  // traffic, over the idle tail. query_heavy (not update_heavy) is the
  // numerator: its queries run against live concurrent ingest, while its
  // own closed-loop connections are not saturated with update service
  // time — so the ratio measures whether writers block or starve readers
  // (the epoch-publish contract), not how much more CPU an UPDATE costs
  // than a QUERY on a saturated host.
  const double ratio = idle.query_p99_us > 0.0
                           ? query_heavy.query_p99_us / idle.query_p99_us
                           : 0.0;
  std::printf("e15: loaded_vs_idle_query_p99 = %.2f\n", ratio);

  if (json_path.empty()) return 0;

  std::string json = "{\n  \"experiment\": \"e15_server\",\n";
  char line[256];
  std::snprintf(line, sizeof(line),
                "  \"keys\": %llu,\n  \"connections\": %zu,\n"
                "  \"batch\": %zu,\n  \"ops_per_connection\": %llu,\n"
                "  \"server_threads\": %zu,\n",
                static_cast<unsigned long long>(num_keys), connections,
                batch, static_cast<unsigned long long>(ops_per_conn),
                server_threads);
  json += line;
  json += "  \"scenarios\": [\n";
  json += ScenarioJson(idle) + ",\n";
  json += ScenarioJson(update_heavy) + ",\n";
  json += ScenarioJson(query_heavy) + "\n  ],\n";
  std::snprintf(line, sizeof(line),
                "  \"loaded_vs_idle_query_p99\": %.3f\n}\n", ratio);
  json += line;

  std::fputs(json.c_str(), stdout);
  std::FILE* f = std::fopen(json_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "e15: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  return std::fclose(f) == 0 ? 0 : 1;
}
