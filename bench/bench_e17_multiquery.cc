// E17: shared-ingest multi-query execution — hundreds of standing queries,
// one hash-once pass.
//
//   bench_e17_multiquery --e17_multiquery_json=out.json [--e17_events=N]
//                        [--e17_threads=N]
//
// The paper's headline workload is "maintain huge numbers of sketches in
// parallel": Gigascope-style telemetry where many continuous GROUP-BY
// sketch queries stand over one stream. The naive execution is N
// independent StreamQuerys — N passes over the stream, N filter
// evaluations per event, one hash per event per COUNT DISTINCT query. The
// MultiQueryEngine ingests once for all of them: each distinct predicate
// is evaluated once per event, the item column is hashed once per chunk
// (every query shares the engine seed), and queries with identical
// (options, filter set) share one physical sketch.
//
// The sweep runs 16/64/256 standing queries at several overlap factors
// (the fraction of queries duplicating an earlier one — the state-dedup
// opportunity) from the shared workload generator, measuring:
//
//   - independent_mevents: N independent StreamQuerys, ProcessBatch each
//     (the baseline's own hash-once batching enabled — this is the best
//     N-pass execution, not a strawman);
//   - shared_mevents: one MultiQueryEngine.ProcessBatch pass;
//   - parallel_mevents: MultiQueryEngine.ProcessBatchParallel over a
//     ThreadPool (one task per physical query per chunk);
//   - results_identical: every query's drained windows AND its checkpoint
//     (SerializeState) byte-identical between engine and independents.
//
// CI gates shared_speedup >= 2 at 256 queries / 50% overlap with
// results_identical == true. The bench exits nonzero if any equivalence
// check fails (speedup gating lives in CI, like the other experiments).

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <deque>
#include <string>
#include <string_view>
#include <vector>

#include "common/bytes.h"
#include "common/layout.h"
#include "core/registry.h"
#include "distributed/thread_pool.h"
#include "engine/multi_query.h"
#include "engine/stream_query.h"
#include "simd/dispatch.h"
#include "workload/multi_query.h"

namespace {

using Clock = std::chrono::steady_clock;

double Seconds(Clock::time_point start, Clock::time_point end) {
  return std::chrono::duration<double>(end - start).count();
}

double Mevents(uint64_t events, double seconds) {
  return seconds > 0.0 ? static_cast<double>(events) / seconds / 1e6 : 0.0;
}

std::vector<uint8_t> WindowBytes(const std::vector<gems::WindowResult>& w) {
  gems::ByteWriter writer;
  gems::engine_detail::SerializeWindows(
      writer, std::deque<gems::WindowResult>(w.begin(), w.end()));
  return std::move(writer).TakeBytes();
}

void RegisterAll(gems::MultiQueryEngine& engine,
                 const std::vector<gems::MultiQuerySpec>& specs) {
  std::vector<gems::MultiQueryEngine::FilterId> palette;
  for (size_t i = 0; i < gems::MultiQueryWorkload::PaletteSize(); ++i) {
    palette.push_back(
        engine.RegisterFilter(gems::MultiQueryWorkload::PaletteFilter(i)));
  }
  for (const gems::MultiQuerySpec& spec : specs) {
    std::vector<gems::MultiQueryEngine::FilterId> ids;
    for (size_t f : spec.filters) ids.push_back(palette[f]);
    engine.AddQuery(spec.options, ids);
  }
}

struct ConfigResult {
  size_t queries = 0;
  double overlap = 0.0;
  size_t physical = 0;
  double independent_mevents = 0.0;
  double shared_mevents = 0.0;
  double parallel_mevents = 0.0;
  double shared_speedup = 0.0;    // independent time / shared time.
  double parallel_speedup = 0.0;  // independent time / parallel time.
  bool results_identical = false;
};

ConfigResult RunConfig(size_t num_queries, double overlap, uint64_t num_events,
                       size_t num_threads) {
  const uint64_t seed = 2024;
  gems::MultiQueryWorkloadOptions wopt;
  wopt.num_queries = num_queries;
  wopt.overlap = overlap;
  wopt.num_groups = 64;
  wopt.window_size = 1024;
  wopt.events_per_tick = 8;
  wopt.seed = 17;
  gems::MultiQueryWorkload workload(wopt);
  const std::vector<gems::StreamEvent> events =
      workload.GenerateEvents(num_events);

  ConfigResult result;
  result.queries = num_queries;
  result.overlap = overlap;

  // N independent StreamQuerys — the baseline pays one pass per query.
  std::vector<gems::StreamQuery> independents;
  independents.reserve(workload.specs().size());
  for (const gems::MultiQuerySpec& spec : workload.specs()) {
    gems::StreamQuery query(spec.options, seed);
    for (size_t f : spec.filters) {
      query.AddFilter(gems::MultiQueryWorkload::PaletteFilter(f));
    }
    independents.push_back(std::move(query));
  }
  const auto indep_start = Clock::now();
  for (gems::StreamQuery& query : independents) {
    if (!query.ProcessBatch(events).ok()) std::abort();
  }
  const double indep_seconds = Seconds(indep_start, Clock::now());

  // One shared pass.
  gems::MultiQueryEngine shared(seed);
  RegisterAll(shared, workload.specs());
  result.physical = shared.num_physical_queries();
  const auto shared_start = Clock::now();
  if (!shared.ProcessBatch(events).ok()) std::abort();
  const double shared_seconds = Seconds(shared_start, Clock::now());

  // One shared pass, fan-out across the pool.
  gems::MultiQueryEngine parallel(seed);
  RegisterAll(parallel, workload.specs());
  gems::ThreadPool pool(num_threads);
  const auto parallel_start = Clock::now();
  if (!parallel.ProcessBatchParallel(events, pool).ok()) std::abort();
  const double parallel_seconds = Seconds(parallel_start, Clock::now());

  result.independent_mevents = Mevents(num_events, indep_seconds);
  result.shared_mevents = Mevents(num_events, shared_seconds);
  result.parallel_mevents = Mevents(num_events, parallel_seconds);
  result.shared_speedup =
      shared_seconds > 0.0 ? indep_seconds / shared_seconds : 0.0;
  result.parallel_speedup =
      parallel_seconds > 0.0 ? indep_seconds / parallel_seconds : 0.0;

  // Equivalence: every query's results and checkpoint byte-identical to
  // its independent twin, on all three execution strategies. Windows are
  // drained first so both sides compare checkpoints at the same poll
  // state (checkpoints include closed-but-unpolled windows).
  result.results_identical = true;
  for (size_t qid = 0; qid < independents.size(); ++qid) {
    const std::vector<uint8_t> solo_windows =
        WindowBytes(independents[qid].Poll());
    if (WindowBytes(shared.Poll(qid)) != solo_windows ||
        WindowBytes(parallel.Poll(qid)) != solo_windows) {
      result.results_identical = false;
      break;
    }
    const std::vector<uint8_t> solo_state = independents[qid].SerializeState();
    if (shared.SerializeQueryState(qid) != solo_state ||
        parallel.SerializeQueryState(qid) != solo_state) {
      result.results_identical = false;
      break;
    }
  }
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  uint64_t num_events = 400'000;
  size_t num_threads = 8;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--e17_multiquery_json=", 0) == 0) {
      json_path =
          std::string(arg.substr(std::strlen("--e17_multiquery_json=")));
    } else if (arg.rfind("--e17_events=", 0) == 0) {
      num_events =
          std::strtoull(argv[i] + std::strlen("--e17_events="), nullptr, 10);
    } else if (arg.rfind("--e17_threads=", 0) == 0) {
      num_threads =
          std::strtoull(argv[i] + std::strlen("--e17_threads="), nullptr, 10);
    } else {
      std::fprintf(stderr, "e17: unknown flag %s\n", argv[i]);
      return 1;
    }
  }
  if (num_events < 10'000 || num_threads == 0) {
    std::fprintf(stderr, "e17: need >= 10000 events and >= 1 thread\n");
    return 1;
  }

  gems::RegisterBuiltinSketches();

  struct Config {
    size_t queries;
    double overlap;
  };
  const Config sweep[] = {
      {16, 0.5}, {64, 0.5}, {256, 0.25}, {256, 0.5}, {256, 0.75},
  };

  std::vector<ConfigResult> results;
  bool all_identical = true;
  for (const Config& config : sweep) {
    // The per-query cost of the baseline scales with the query count;
    // shrink the stream for the big configs so the sweep stays smoke-able.
    const uint64_t events =
        config.queries >= 256 ? num_events / 2 : num_events;
    ConfigResult r =
        RunConfig(config.queries, config.overlap, events, num_threads);
    std::fprintf(stderr,
                 "e17: q=%3zu overlap=%.2f physical=%3zu "
                 "indep=%.2fM/s shared=%.2fM/s (%.2fx) parallel=%.2fM/s "
                 "(%.2fx) identical=%d\n",
                 r.queries, r.overlap, r.physical, r.independent_mevents,
                 r.shared_mevents, r.shared_speedup, r.parallel_mevents,
                 r.parallel_speedup, r.results_identical ? 1 : 0);
    all_identical = all_identical && r.results_identical;
    results.push_back(r);
  }

  if (json_path.empty()) return all_identical ? 0 : 1;

  std::string json = "{\n  \"experiment\": \"e17_multiquery\",\n";
  char line[512];
  std::snprintf(line, sizeof(line),
                "  \"events\": %llu,\n  \"threads\": %zu,\n  \"sweep\": [\n",
                static_cast<unsigned long long>(num_events), num_threads);
  json += line;
  for (size_t i = 0; i < results.size(); ++i) {
    const ConfigResult& r = results[i];
    std::snprintf(
        line, sizeof(line),
        "    {\"queries\": %zu, \"overlap\": %.2f, \"physical\": %zu, "
        "\"independent_mevents\": %.2f, \"shared_mevents\": %.2f, "
        "\"shared_speedup\": %.3f, \"parallel_mevents\": %.2f, "
        "\"parallel_speedup\": %.3f, \"results_identical\": %s}%s\n",
        r.queries, r.overlap, r.physical, r.independent_mevents,
        r.shared_mevents, r.shared_speedup, r.parallel_mevents,
        r.parallel_speedup, r.results_identical ? "true" : "false",
        i + 1 < results.size() ? "," : "");
    json += line;
  }
  json += "  ],\n";
  json += "  \"layout\": " + gems::LayoutJson() + ",\n";
  json += "  \"dispatch\": " + gems::simd::DispatchJson() + "\n}\n";

  std::fputs(json.c_str(), stdout);
  std::FILE* f = std::fopen(json_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "e17: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  if (std::fclose(f) != 0) return 1;
  return all_identical ? 0 : 1;
}
