// E10: private frequency estimation — RAPPOR and Apple CMS vs epsilon.
//
// Claims (paper section 3, private data analysis): sketch + randomized
// response recovers heavy categorical values under local DP; accuracy
// improves with epsilon (error ~ 1/eps-shaped at small eps) and with the
// fleet size; central-DP noisy Count-Min is far more accurate at the same
// epsilon (the local-vs-central gap).

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/numeric.h"
#include "common/random.h"
#include "frequency/count_min.h"
#include "privacy/private_cms.h"
#include "privacy/rappor.h"
#include "workload/metrics.h"

namespace {

constexpr int kClients = 100000;
constexpr int kCandidates = 64;

// True value distribution: Zipf-ish over 64 candidates.
uint64_t DrawValue(gems::Rng* rng, std::vector<int>* counts) {
  const double u = rng->NextDouble();
  // P(candidate c) proportional to 1/(c+1).
  static double total = [] {
    double t = 0;
    for (int c = 0; c < kCandidates; ++c) t += 1.0 / (c + 1);
    return t;
  }();
  double acc = 0;
  for (int c = 0; c < kCandidates; ++c) {
    acc += 1.0 / (c + 1) / total;
    if (u < acc) {
      (*counts)[c]++;
      return static_cast<uint64_t>(c);
    }
  }
  (*counts)[kCandidates - 1]++;
  return kCandidates - 1;
}

}  // namespace

int main() {
  std::printf("E10: private frequency, %d clients, %d candidates\n\n",
              kClients, kCandidates);
  std::printf("%6s | %18s | %18s | %14s | %14s\n", "eps",
              "RAPPOR rel-MAE(top8)", "CMS rel-MAE(top8)",
              "RAPPOR top8 F1", "CMS top8 F1");

  for (double epsilon : {0.5, 1.0, 2.0, 4.0, 8.0}) {
    gems::RapporClient::Options rappor_options;
    rappor_options.num_bits = 256;
    rappor_options.num_hashes = 2;
    rappor_options.epsilon = epsilon;
    gems::RapporAggregator rappor(rappor_options);

    gems::PrivateCmsClient::Options cms_options;
    cms_options.width = 1024;
    cms_options.depth = 16;
    cms_options.epsilon = epsilon;
    gems::PrivateCmsServer cms(cms_options);

    std::vector<int> true_counts(kCandidates, 0);
    gems::Rng rng(static_cast<uint64_t>(epsilon * 1000));
    for (int client = 0; client < kClients; ++client) {
      const uint64_t value = DrawValue(&rng, &true_counts);
      gems::RapporClient rappor_client(rappor_options, 5000 + client);
      rappor.Absorb(rappor_client.Report(value));
      gems::PrivateCmsClient cms_client(cms_options, 9000000 + client);
      cms.Absorb(cms_client.Encode(value));
    }

    double rappor_mae = 0, cms_mae = 0;
    for (int c = 0; c < 8; ++c) {
      rappor_mae += std::abs(rappor.EstimateFrequency(c) - true_counts[c]) /
                    std::max(1.0, static_cast<double>(true_counts[c]));
      cms_mae += std::abs(cms.EstimateCount(c) - true_counts[c]) /
                 std::max(1.0, static_cast<double>(true_counts[c]));
    }
    rappor_mae /= 8;
    cms_mae /= 8;

    // Top-8 retrieval quality.
    std::vector<uint64_t> truth_top;
    for (int c = 0; c < 8; ++c) truth_top.push_back(c);
    std::vector<std::pair<double, uint64_t>> rappor_ranked, cms_ranked;
    for (int c = 0; c < kCandidates; ++c) {
      rappor_ranked.emplace_back(rappor.EstimateFrequency(c), c);
      cms_ranked.emplace_back(cms.EstimateCount(c), c);
    }
    std::sort(rappor_ranked.rbegin(), rappor_ranked.rend());
    std::sort(cms_ranked.rbegin(), cms_ranked.rend());
    std::vector<uint64_t> rappor_top, cms_top;
    for (int i = 0; i < 8; ++i) {
      rappor_top.push_back(rappor_ranked[i].second);
      cms_top.push_back(cms_ranked[i].second);
    }
    std::printf("%6.1f | %18.4f | %18.4f | %14.3f | %14.3f\n", epsilon,
                rappor_mae, cms_mae,
                gems::CompareSets(rappor_top, truth_top).f1,
                gems::CompareSets(cms_top, truth_top).f1);
  }

  // Local vs central DP at eps = 1.
  std::printf("\nE10b: local vs central DP at eps = 1.0\n");
  {
    gems::CountMinSketch cm(1024, 5, 3);
    std::vector<int> true_counts(kCandidates, 0);
    gems::Rng rng(777);
    for (int client = 0; client < kClients; ++client) {
      cm.Update(DrawValue(&rng, &true_counts));
    }
    gems::DpCountMinRelease central(cm, 1.0, 4);
    double central_mae = 0;
    for (int c = 0; c < 8; ++c) {
      central_mae += std::abs(central.EstimateCount(c) - true_counts[c]) /
                     std::max(1.0, static_cast<double>(true_counts[c]));
    }
    std::printf("   central noisy Count-Min rel-MAE(top8): %.5f "
                "(compare local columns above)\n",
                central_mae / 8);
  }
  return 0;
}
