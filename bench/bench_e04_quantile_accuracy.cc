// E4: quantile sketch lineage — rank error vs space.
//
// Claims (paper section 2): the MRL -> GK -> q-digest -> KLL lineage ends
// with KLL as the space-optimal randomized sketch (best error-per-byte);
// GK is deterministic with a hard eps*n guarantee; t-digest trades uniform
// rank error for extreme-tail accuracy.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "quantiles/gk.h"
#include "quantiles/kll.h"
#include "quantiles/mrl.h"
#include "quantiles/qdigest.h"
#include "quantiles/req.h"
#include "quantiles/tdigest.h"
#include "workload/generators.h"
#include "workload/metrics.h"

namespace {

constexpr size_t kN = 1000000;

double RankErrorAt(const std::vector<double>& sorted, double value,
                   double q) {
  const double n = static_cast<double>(sorted.size());
  const double lo = static_cast<double>(
      std::lower_bound(sorted.begin(), sorted.end(), value) -
      sorted.begin());
  const double hi = static_cast<double>(
      std::upper_bound(sorted.begin(), sorted.end(), value) -
      sorted.begin());
  const double target = q * n;
  if (target < lo) return (lo - target) / n;
  if (target > hi) return (target - hi) / n;
  return 0.0;
}

template <typename QuantileFn>
double MaxError(const std::vector<double>& sorted, QuantileFn fn,
                bool tails_only = false) {
  const std::vector<double> mid = {0.01, 0.05, 0.25, 0.5, 0.75, 0.95, 0.99};
  const std::vector<double> tails = {0.0001, 0.001, 0.999, 0.9999};
  double worst = 0;
  for (double q : tails_only ? tails : mid) {
    worst = std::max(worst, RankErrorAt(sorted, fn(q), q));
  }
  return worst;
}

}  // namespace

int main() {
  std::printf("E4: max rank error (fraction of n = %zu) and summary size\n\n",
              kN);
  for (auto dist : {gems::ValueDistribution::kUniform,
                    gems::ValueDistribution::kLogNormal,
                    gems::ValueDistribution::kSorted}) {
    const char* name =
        dist == gems::ValueDistribution::kUniform
            ? "uniform"
            : dist == gems::ValueDistribution::kLogNormal ? "lognormal"
                                                          : "sorted";
    auto data = gems::GenerateValues(dist, kN, 11);

    gems::MrlSketch mrl(12, 600);
    gems::GreenwaldKhanna gk(0.005);
    gems::KllSketch kll(256, 1);
    gems::TDigest tdigest(100);
    // q-digest needs an integer domain: quantize to 2^16 ranks.
    std::vector<double> sorted_copy = data;
    std::sort(sorted_copy.begin(), sorted_copy.end());
    gems::QDigest qdigest(16, 512);
    for (double v : data) {
      mrl.Update(v);
      gk.Update(v);
      kll.Update(v);
      tdigest.Update(v);
      const uint64_t quantized = static_cast<uint64_t>(
          (std::lower_bound(sorted_copy.begin(), sorted_copy.end(), v) -
           sorted_copy.begin()) *
          65535 / static_cast<long>(kN));
      qdigest.Update(quantized);
    }

    auto qd_value = [&](double q) {
      const uint64_t rank = qdigest.Quantile(q);
      return sorted_copy[std::min<size_t>(
          kN - 1, static_cast<size_t>(rank) * kN / 65536)];
    };

    std::printf("-- %s --\n", name);
    std::printf("%10s | %12s | %12s | %12s\n", "sketch", "max rank err",
                "tail rank err", "bytes");
    std::printf("%10s | %12.5f | %12.5f | %12zu\n", "MRL",
                MaxError(sorted_copy,
                         [&](double q) { return mrl.Quantile(q); }),
                MaxError(sorted_copy,
                         [&](double q) { return mrl.Quantile(q); }, true),
                mrl.MemoryBytes());
    std::printf("%10s | %12.5f | %12.5f | %12zu\n", "GK(.005)",
                MaxError(sorted_copy, [&](double q) { return gk.Quantile(q); }),
                MaxError(sorted_copy,
                         [&](double q) { return gk.Quantile(q); }, true),
                gk.MemoryBytes());
    std::printf("%10s | %12.5f | %12.5f | %12zu\n", "KLL(256)",
                MaxError(sorted_copy,
                         [&](double q) { return kll.Quantile(q); }),
                MaxError(sorted_copy,
                         [&](double q) { return kll.Quantile(q); }, true),
                kll.MemoryBytes());
    std::printf("%10s | %12.5f | %12.5f | %12zu\n", "q-digest",
                MaxError(sorted_copy, qd_value),
                MaxError(sorted_copy, qd_value, true), qdigest.MemoryBytes());
    std::printf("%10s | %12.5f | %12.5f | %12zu\n", "t-digest",
                MaxError(sorted_copy,
                         [&](double q) { return tdigest.Quantile(q); }),
                MaxError(sorted_copy,
                         [&](double q) { return tdigest.Quantile(q); },
                         true),
                tdigest.MemoryBytes());
    std::printf("\n");
  }

  std::printf("E4c: relative-error quantiles (PODS'21): rank error at "
              "extreme quantiles, lognormal n = %zu\n",
              kN);
  {
    auto data = gems::GenerateValues(gems::ValueDistribution::kLogNormal,
                                     kN, 17);
    gems::ReqSketch req(32, 18);
    gems::KllSketch kll(200, 19);
    for (double v : data) {
      req.Update(v);
      kll.Update(v);
    }
    std::vector<double> sorted = data;
    std::sort(sorted.begin(), sorted.end());
    std::printf("%8s | %10s | %16s | %16s\n", "q", "(1-q)n",
                "REQ err (rel)", "KLL err (rel)");
    for (double q : {0.9, 0.99, 0.999, 0.9999}) {
      const double tail = (1.0 - q) * static_cast<double>(kN);
      const double req_err = RankErrorAt(sorted, req.Quantile(q), q) *
                             static_cast<double>(kN);
      const double kll_err = RankErrorAt(sorted, kll.Quantile(q), q) *
                             static_cast<double>(kN);
      std::printf("%8.4f | %10.0f | %8.0f (%5.3f) | %8.0f (%5.3f)\n", q,
                  tail, req_err, req_err / std::max(1.0, tail), kll_err,
                  kll_err / std::max(1.0, tail));
    }
    std::printf("(REQ retains %zu values, KLL %zu — relative error is what "
                "the extra space buys)\n\n",
                req.NumRetained(), kll.NumRetained());
  }

  std::printf("E4b: KLL error-per-byte sweep (lognormal, n = %zu)\n", kN);
  std::printf("%6s | %12s | %10s | %16s\n", "k", "max rank err", "bytes",
              "err x bytes");
  auto data = gems::GenerateValues(gems::ValueDistribution::kLogNormal, kN,
                                   13);
  std::vector<double> sorted_copy = data;
  std::sort(sorted_copy.begin(), sorted_copy.end());
  for (uint32_t k : {32, 64, 128, 256, 512}) {
    gems::KllSketch kll(k, 2);
    for (double v : data) kll.Update(v);
    const double err = MaxError(
        sorted_copy, [&](double q) { return kll.Quantile(q); });
    std::printf("%6u | %12.5f | %10zu | %16.2f\n", k, err,
                kll.MemoryBytes(), err * kll.MemoryBytes());
  }
  return 0;
}
