// E5: heavy hitters — SpaceSaving / Misra-Gries / Count-Min+heap.
//
// Claims (paper section 2): deterministic counter algorithms (SpaceSaving,
// Misra-Gries) guarantee perfect recall of phi-heavy items with 1/phi
// counters; precision improves with capacity; the randomized CM+heap
// alternative needs comparable space for similar quality.

#include <cstdio>
#include <vector>

#include "frequency/count_min.h"
#include "frequency/misra_gries.h"
#include "frequency/space_saving.h"
#include "workload/baselines.h"
#include "workload/generators.h"
#include "workload/metrics.h"

int main() {
  constexpr int kStream = 1000000;
  constexpr double kPhi = 0.001;

  gems::ZipfGenerator zipf(1000000, 1.1, 77);
  gems::ExactFrequencies exact;
  std::vector<uint64_t> stream;
  stream.reserve(kStream);
  for (int i = 0; i < kStream; ++i) {
    const uint64_t item = zipf.Next();
    stream.push_back(item);
    exact.Update(item);
  }
  const auto truth =
      exact.ItemsAbove(static_cast<int64_t>(kPhi * kStream) + 1);
  std::printf("E5: phi = %.3f heavy hitters, Zipf(1.1) stream n = %d, "
              "%zu true heavy items\n\n",
              kPhi, kStream, truth.size());
  std::printf("%9s | %22s | %22s | %22s\n", "capacity",
              "SpaceSaving P/R", "MisraGries P/R", "CM+heap P/R");

  for (size_t capacity : {250, 500, 1000, 2000, 4000}) {
    gems::SpaceSaving ss(capacity);
    gems::MisraGries mg(capacity);
    gems::CountMinHeavyHitters cmh(
        static_cast<uint32_t>(capacity), 4, capacity, 3);
    for (uint64_t item : stream) {
      ss.Update(item);
      mg.Update(item);
      cmh.Update(item);
    }
    const auto ss_quality =
        gems::CompareSets(ss.HeavyHitterCandidates(kPhi), truth);
    const auto mg_quality =
        gems::CompareSets(mg.HeavyHitterCandidates(kPhi), truth);
    const auto cm_quality =
        gems::CompareSets(cmh.HeavyHitters(kPhi), truth);
    std::printf("%9zu | %9.3f / %9.3f | %9.3f / %9.3f | %9.3f / %9.3f\n",
                capacity, ss_quality.precision, ss_quality.recall,
                mg_quality.precision, mg_quality.recall,
                cm_quality.precision, cm_quality.recall);
  }

  std::printf("\nE5b: top-10 accuracy at capacity = 1000\n");
  gems::SpaceSaving ss(1000);
  for (uint64_t item : stream) ss.Update(item);
  const auto exact_top = exact.TopK(10);
  const auto sketch_top = ss.TopK(10);
  std::printf("%4s | %12s | %12s | %10s | %s\n", "rank", "exact count",
              "SS estimate", "SS error", "item match");
  for (size_t i = 0; i < exact_top.size(); ++i) {
    std::printf("%4zu | %12ld | %12ld | %10ld | %s\n", i + 1,
                (long)exact_top[i].second, (long)sketch_top[i].count,
                (long)sketch_top[i].error,
                exact_top[i].first == sketch_top[i].item ? "yes" : "NO");
  }
  return 0;
}
