// E12: FetchSGD — sketched federated training vs dense and top-k.
//
// Claims (paper section 3, optimizing ML; Rothchild et al. 2020): count-
// sketched gradients with momentum + error feedback in sketch space track
// dense training at multi-x upload compression, and beat the naive
// local-top-k compressor at the same budget.

#include <cstdio>
#include <vector>

#include "ml/fetchsgd.h"
#include "ml/linear_model.h"

int main() {
  const size_t kDim = 4096;
  const auto dataset = gems::GenerateSparseLogisticData(2000, kDim, 32, 64, 3);
  const size_t kRounds = 100;

  gems::LogisticModel dense_model(kDim);
  const auto dense_losses =
      gems::TrainDenseSgd(&dense_model, dataset.examples, kRounds, 1.0);

  std::printf("E12: logistic regression, dim %zu, 50 simulated clients, "
              "%zu rounds\n\n",
              kDim, kRounds);
  std::printf("%14s | %10s | %10s | %10s | %8s\n", "method",
              "compression", "loss@20", "final loss", "accuracy");
  std::printf("%14s | %10s | %10.4f | %10.4f | %8.3f\n", "dense SGD", "1x",
              dense_losses[20], dense_losses.back(),
              dense_model.Accuracy(dataset.examples));

  struct Config {
    uint32_t width, depth;
    size_t top_k;
  };
  double loss_96x5 = 0.0;
  for (const Config& config :
       {Config{512, 4, 25}, Config{256, 4, 25}, Config{96, 5, 10}}) {
    gems::FetchSgdTrainer::Options options;
    options.num_clients = 50;
    options.rounds = kRounds;
    options.learning_rate = 1.0;
    options.momentum = 0.9;
    options.sketch_width = config.width;
    options.sketch_depth = config.depth;
    options.top_k = config.top_k;
    gems::FetchSgdTrainer trainer(options, 4);
    gems::LogisticModel model(kDim);
    const auto losses = trainer.Train(&model, dataset.examples);
    char label[32], ratio[16];
    std::snprintf(label, sizeof(label), "FetchSGD %ux%u", config.width,
                  config.depth);
    std::snprintf(ratio, sizeof(ratio), "%.1fx",
                  static_cast<double>(kDim) /
                      (config.width * config.depth));
    std::printf("%14s | %10s | %10.4f | %10.4f | %8.3f\n", label, ratio,
                losses[20], losses.back(),
                model.Accuracy(dataset.examples));
    if (config.width == 96) loss_96x5 = losses.back();
  }

  // Baseline: local top-k at the budget of the 96x5 sketch (480 values).
  {
    gems::LogisticModel model(kDim);
    const auto losses = gems::TrainLocalTopK(&model, dataset.examples, 50,
                                             kRounds, 1.0, 480);
    std::printf("%14s | %10s | %10.4f | %10.4f | %8.3f\n", "local top-480",
                "8.5x", losses[20], losses.back(),
                model.Accuracy(dataset.examples));
  }
  {
    gems::LogisticModel model(kDim);
    const auto losses = gems::TrainLocalTopK(&model, dataset.examples, 50,
                                             kRounds, 1.0, 64);
    std::printf("%14s | %10s | %10.4f | %10.4f | %8.3f\n", "local top-64",
                "64x", losses[20], losses.back(),
                model.Accuracy(dataset.examples));
  }

  // Ablation: error feedback off (extract from the round sketch alone).
  std::printf("\nE12b ablation: FetchSGD components at 96x5\n");
  {
    // Reuse the trainer but with momentum 0 (no momentum) as a proxy
    // ablation; the error sketch is integral to the algorithm.
    gems::FetchSgdTrainer::Options options;
    options.num_clients = 50;
    options.rounds = kRounds;
    options.learning_rate = 1.0;
    options.momentum = 0.0;
    options.sketch_width = 96;
    options.sketch_depth = 5;
    options.top_k = 10;
    gems::FetchSgdTrainer trainer(options, 6);
    gems::LogisticModel model(kDim);
    const auto losses = trainer.Train(&model, dataset.examples);
    std::printf("   momentum off: final loss %.4f (vs %.4f with momentum; "
                "dense %.4f)\n",
                losses.back(), loss_96x5, dense_losses.back());
  }
  return 0;
}
