// E9: advertising reach — slice-and-dice distinct counting.
//
// Claims (paper section 3, online advertising): distinct-count sketches
// report campaign reach without double counting; estimates stay inside
// their confidence intervals; theta-sketch set algebra answers
// cross-campaign overlap within the k-dependent error.

#include <cstdio>
#include <map>
#include <set>
#include <vector>

#include "cardinality/hllpp.h"
#include "cardinality/kmv.h"
#include "common/numeric.h"
#include "workload/generators.h"

int main() {
  gems::ExposureGenerator::Options audience;
  audience.num_users = 200000;
  audience.num_campaigns = 3;
  audience.audience_fraction = 0.4;

  std::printf("E9: ad reach, %lu users, %u campaigns, 1M impressions\n\n",
              (unsigned long)audience.num_users, audience.num_campaigns);

  // Interval coverage across trials (the "communicating approximation"
  // remedy the paper prescribes: confidence intervals).
  constexpr int kTrials = 12;
  int covered = 0, total = 0;
  std::vector<double> reach_errors;
  for (int t = 0; t < kTrials; ++t) {
    gems::ExposureGenerator generator(audience, 100 + t);
    std::map<uint32_t, gems::HllPlusPlus> reach;
    std::map<uint32_t, std::set<uint64_t>> exact;
    for (int i = 0; i < 1000000; ++i) {
      const gems::ExposureEvent event = generator.Next();
      reach.try_emplace(event.campaign_id, 12, t).first->second.Update(
          event.user_id);
      exact[event.campaign_id].insert(event.user_id);
    }
    for (auto& [campaign, sketch] : reach) {
      const double truth = static_cast<double>(exact[campaign].size());
      const gems::Estimate estimate = sketch.EstimateWithBounds(0.95);
      reach_errors.push_back(gems::RelativeError(estimate.value, truth));
      if (estimate.Covers(truth)) ++covered;
      ++total;
    }
  }
  std::printf("HLL++ p=12 reach estimates: rel-RMSE %.4f, 95%% interval "
              "coverage %d/%d\n\n",
              gems::Rms(reach_errors), covered, total);

  // Set algebra error vs k.
  std::printf("theta-sketch set algebra (campaigns 0 and 1; truth from "
              "exact sets)\n");
  std::printf("%6s | %16s | %16s | %16s\n", "k", "union rel-err",
              "intersect rel-err", "difference rel-err");
  gems::ExposureGenerator generator(audience, 7);
  std::set<uint64_t> exact_a, exact_b;
  std::vector<gems::ExposureEvent> events;
  for (int i = 0; i < 1000000; ++i) {
    const gems::ExposureEvent event = generator.Next();
    if (event.campaign_id == 0) exact_a.insert(event.user_id);
    if (event.campaign_id == 1) exact_b.insert(event.user_id);
    events.push_back(event);
  }
  uint64_t exact_both = 0;
  for (uint64_t user : exact_a) {
    if (exact_b.contains(user)) ++exact_both;
  }
  const double truth_union =
      static_cast<double>(exact_a.size() + exact_b.size() - exact_both);
  const double truth_inter = static_cast<double>(exact_both);
  const double truth_diff = static_cast<double>(exact_a.size() - exact_both);

  for (uint32_t k : {256, 1024, 4096, 16384}) {
    gems::KmvSketch a(k, 3), b(k, 3);
    for (const gems::ExposureEvent& event : events) {
      if (event.campaign_id == 0) a.Update(event.user_id);
      if (event.campaign_id == 1) b.Update(event.user_id);
    }
    std::printf("%6u | %16.4f | %16.4f | %16.4f\n", k,
                gems::RelativeError(gems::KmvSketch::Union(a, b).Estimate(),
                                    truth_union),
                gems::RelativeError(
                    gems::KmvSketch::Intersect(a, b).Estimate(), truth_inter),
                gems::RelativeError(
                    gems::KmvSketch::Difference(a, b).Estimate(), truth_diff));
  }

  // Demographic slicing: per (campaign 0, region) reach.
  std::printf("\nslice-and-dice: campaign 0 by region (HLL++ p=11 each)\n");
  std::printf("%8s | %10s | %10s | %8s\n", "region", "exact", "estimate",
              "rel-err");
  std::map<uint8_t, gems::HllPlusPlus> slices;
  std::map<uint8_t, std::set<uint64_t>> exact_slices;
  for (const gems::ExposureEvent& event : events) {
    if (event.campaign_id != 0) continue;
    slices.try_emplace(event.region, 11, 9).first->second.Update(
        event.user_id);
    exact_slices[event.region].insert(event.user_id);
  }
  for (auto& [region, sketch] : slices) {
    const double truth = static_cast<double>(exact_slices[region].size());
    std::printf("%8u | %10.0f | %10.0f | %8.4f\n", region, truth,
                sketch.Estimate(), gems::RelativeError(sketch.Estimate(), truth));
  }
  return 0;
}
