// E1: cardinality estimator accuracy vs space.
//
// Claim (paper section 2, distinct counting lineage): standard error of
// FM/PCSA ~ 0.78/sqrt(m), LogLog ~ 1.30/sqrt(m), HyperLogLog ~ 1.04/sqrt(m);
// KMV ~ 1/sqrt(k). HLL++'s sparse mode removes the small-cardinality bias
// (ablation below).

#include <cstdio>
#include <cmath>
#include <vector>

#include "cardinality/flajolet_martin.h"
#include "cardinality/hllpp.h"
#include "cardinality/hyperloglog.h"
#include "cardinality/kmv.h"
#include "cardinality/linear_counting.h"
#include "cardinality/loglog.h"
#include "common/numeric.h"
#include "workload/generators.h"

namespace {

constexpr uint64_t kN = 200000;
constexpr int kTrials = 15;

template <typename MakeSketch>
double MeasureRmse(MakeSketch make, uint64_t n, int trials) {
  std::vector<double> errors;
  for (int t = 0; t < trials; ++t) {
    auto sketch = make(t);
    for (uint64_t item : gems::DistinctItems(n, 7000 + t)) {
      sketch.Update(item);
    }
    errors.push_back((sketch.Estimate() - static_cast<double>(n)) /
                     static_cast<double>(n));
  }
  return gems::Rms(errors);
}

}  // namespace

int main() {
  std::printf("E1: relative RMSE vs registers m (n = %lu distinct, %d "
              "trials)\n",
              (unsigned long)kN, kTrials);
  std::printf("theory: FM 0.78/sqrt(m)  LogLog 1.30/sqrt(m)  "
              "HLL 1.04/sqrt(m)  KMV 1/sqrt(k)\n\n");
  std::printf("%6s | %18s | %18s | %18s | %18s\n", "m", "FM meas/theory",
              "LogLog meas/theory", "HLL meas/theory", "KMV meas/theory");
  for (int p = 8; p <= 14; p += 2) {
    const uint32_t m = 1u << p;
    const double fm = MeasureRmse(
        [&](int t) { return gems::FlajoletMartin(m, t); }, kN, kTrials);
    const double ll = MeasureRmse(
        [&](int t) { return gems::LogLog(p, t); }, kN, kTrials);
    const double hll = MeasureRmse(
        [&](int t) { return gems::HyperLogLog(p, t); }, kN, kTrials);
    const double kmv = MeasureRmse(
        [&](int t) { return gems::KmvSketch(m, t); }, kN, kTrials);
    const double sqrt_m = std::sqrt(static_cast<double>(m));
    std::printf("%6u | %8.4f / %7.4f | %8.4f / %7.4f | %8.4f / %7.4f | "
                "%8.4f / %7.4f\n",
                m, fm, 0.78 / sqrt_m, ll, 1.30 / sqrt_m, hll, 1.04 / sqrt_m,
                kmv, 1.0 / sqrt_m);
  }

  std::printf("\nE1b (HLL++ ablation): small-cardinality accuracy, "
              "p = 12 (m = 4096), 15 trials\n");
  std::printf("%8s | %12s | %12s | %12s\n", "n", "HLL raw", "HLL corrected",
              "HLL++ sparse");
  for (uint64_t n : {100ULL, 500ULL, 2000ULL, 10000ULL, 40000ULL}) {
    std::vector<double> raw_err, corrected_err, sparse_err;
    for (int t = 0; t < kTrials; ++t) {
      gems::HyperLogLog dense(12, t);
      gems::HllPlusPlus plus(12, t);
      for (uint64_t item : gems::DistinctItems(n, 9000 + t)) {
        dense.Update(item);
        plus.Update(item);
      }
      const double dn = static_cast<double>(n);
      raw_err.push_back((dense.RawCount() - dn) / dn);
      corrected_err.push_back((dense.Estimate() - dn) / dn);
      sparse_err.push_back((plus.Estimate() - dn) / dn);
    }
    std::printf("%8lu | %12.4f | %12.4f | %12.4f\n", (unsigned long)n,
                gems::Rms(raw_err), gems::Rms(corrected_err),
                gems::Rms(sparse_err));
  }

  std::printf("\nE1c: linear counting shines at low load (m = 2^16 bits)\n");
  std::printf("%8s | %12s | %12s\n", "n", "LinearCount", "HLL p=13 (1 KiB)");
  for (uint64_t n : {1000ULL, 5000ULL, 20000ULL}) {
    const double lc = MeasureRmse(
        [&](int t) { return gems::LinearCounting(1 << 16, t); }, n, kTrials);
    const double hll = MeasureRmse(
        [&](int t) { return gems::HyperLogLog(13, t); }, n, kTrials);
    std::printf("%8lu | %12.4f | %12.4f\n", (unsigned long)n, lc, hll);
  }
  return 0;
}
