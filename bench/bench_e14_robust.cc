// E14: adversarially robust streaming — plain vs sketch-switching F2.
//
// Claims (paper section 2; Ben-Eliezer et al., PODS 2020 best paper): an
// adaptive adversary who observes estimates drives a plain linear sketch
// to arbitrarily large relative error; sketch switching keeps the exposed
// estimate within its (1+lambda) release window for the whole attack.

#include <cstdio>

#include "moments/ams.h"
#include "robust/adversary.h"
#include "robust/robust_f2.h"

int main() {
  std::printf("E14: adaptive F2 attack — relative error of the final "
              "report vs attack length\n\n");
  std::printf("%10s | %22s | %22s\n", "probes",
              "plain AMS err (kept)", "robust err (kept, copies)");

  for (size_t probes : {2000, 5000, 10000, 20000, 40000}) {
    gems::AmsSketch plain(64, 3, 1);
    const gems::AttackResult plain_result = gems::RunAdaptiveF2Attack(
        gems::F2Oracle{
            [&](uint64_t item, int64_t w) { plain.Update(item, w); },
            [&]() { return plain.EstimateF2(); }},
        probes, 7);

    gems::RobustF2::Options options;
    options.estimators_per_group = 64;
    options.num_groups = 3;
    options.num_copies = 40;
    options.lambda = 0.25;
    gems::RobustF2 robust(options, 2);
    const gems::AttackResult robust_result = gems::RunAdaptiveF2Attack(
        gems::F2Oracle{
            [&](uint64_t item, int64_t w) { robust.Update(item, w); },
            [&]() { return robust.EstimateF2(); }},
        probes, 7);

    std::printf("%10zu | %10.3f (%8lu) | %10.3f (%6lu, %2d)\n", probes,
                plain_result.RelativeError(),
                (unsigned long)plain_result.kept_items,
                robust_result.RelativeError(),
                (unsigned long)robust_result.kept_items,
                robust.CopiesUsed());
  }

  std::printf("\nE14b: non-adaptive (oblivious) stream — both behave "
              "identically well\n");
  {
    gems::AmsSketch plain(64, 3, 3);
    gems::RobustF2::Options options;
    options.estimators_per_group = 64;
    options.num_groups = 3;
    gems::RobustF2 robust(options, 4);
    const uint64_t n = 20000;
    for (uint64_t i = 0; i < n; ++i) {
      plain.Update(i);
      robust.Update(i);
    }
    const double truth = static_cast<double>(n);  // All frequencies 1.
    std::printf("   true F2 %.0f: plain %.0f (err %.3f), robust %.0f "
                "(err %.3f)\n",
                truth, plain.EstimateF2(),
                std::abs(plain.EstimateF2() - truth) / truth,
                robust.EstimateF2(),
                std::abs(robust.EstimateF2() - truth) / truth);
  }
  return 0;
}
