// E2: Morris approximate counting — O(log log n) bits.
//
// Claim (paper section 2; Morris 1977, revisited by PODS'22 best paper):
// counting n events in a register of ~log2 log2 n bits, with standard
// error ~ 1/sqrt(2a) for the Morris-a variant.

#include <cmath>
#include <cstdio>
#include <vector>

#include "cardinality/morris.h"
#include "common/bits.h"
#include "common/numeric.h"

int main() {
  constexpr int kTrials = 25;
  std::printf("E2: Morris counter, %d trials per cell\n\n", kTrials);
  std::printf("%9s | %6s | %14s | %14s | %10s | %12s\n", "n", "a",
              "rel RMSE", "theory 1/sqrt(2a)", "reg bits", "exact bits");

  for (uint64_t n : {10000ULL, 100000ULL, 1000000ULL}) {
    for (double a : {16.0, 64.0, 256.0}) {
      std::vector<double> errors;
      int max_bits = 0;
      for (int t = 0; t < kTrials; ++t) {
        gems::MorrisCounter counter(a, 31 * t + 7);
        counter.IncrementBy(n);
        errors.push_back((counter.Estimate() - static_cast<double>(n)) /
                         static_cast<double>(n));
        max_bits = std::max(max_bits, counter.RegisterBits());
      }
      std::printf("%9lu | %6.0f | %14.4f | %17.4f | %10d | %12d\n",
                  (unsigned long)n, a, gems::Rms(errors),
                  1.0 / std::sqrt(2.0 * a), max_bits,
                  gems::FloorLog2(n) + 1);
    }
  }

  std::printf("\nE2b: ensemble averaging (a = 8, n = 100000)\n");
  std::printf("%10s | %12s | %14s\n", "replicas", "rel RMSE",
              "theory x 1/sqrt(r)");
  const double base_theory = 1.0 / std::sqrt(2.0 * 8.0);
  for (int replicas : {1, 4, 16, 64}) {
    std::vector<double> errors;
    for (int t = 0; t < kTrials; ++t) {
      gems::MorrisEnsemble ensemble(replicas, 8.0, 100 + t);
      for (int i = 0; i < 100000; ++i) ensemble.Increment();
      errors.push_back((ensemble.Estimate() - 100000.0) / 100000.0);
    }
    std::printf("%10d | %12.4f | %14.4f\n", replicas, gems::Rms(errors),
                base_theory / std::sqrt(static_cast<double>(replicas)));
  }
  return 0;
}
