// E16: the time dimension — windowed ingest overhead and decay-driven
// cache admission.
//
//   bench_e16_time --e16_time_json=out.json [--e16_items=N]
//                  [--e16_requests=N] [--e16_cache=N]
//
// Two questions, both about what promoting time to a first-class sketch
// dimension costs and buys:
//
//   1. Ingest overhead: the same batched stream pushed through a plain
//      (unbounded) HyperLogLog / Count-Min and through their windowed or
//      decayed counterparts. The pane ring adds a timestamp comparison
//      per run plus one merge per rotation; the decayed table adds one
//      scale multiply per deposit. Reported as mops and the
//      windowed-over-unbounded overhead ratio per family.
//
//   2. Cache admission (the TinyLFU shape): an LRU cache fronted by a
//      frequency filter — on a miss the candidate is admitted only if its
//      estimated frequency beats the would-be victim's. The workload hops
//      hot sets halfway through. A plain Count-Min never forgets the old
//      hot set, keeps vetoing the new one, and the hit rate collapses; a
//      decayed Count-Min forgets on a half-life, so the filter tracks the
//      regime change. The CI gate is simply decayed >= plain.
//
// The JSON also records a byte-identical checkpoint round trip (serialize
// -> registry deserialize -> serialize) for each of the four time-family
// types, which CI asserts.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <list>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "cardinality/hyperloglog.h"
#include "common/random.h"
#include "core/registry.h"
#include "frequency/count_min.h"
#include "simd/dispatch.h"
#include "time/decayed_count_min.h"
#include "time/exponential_histogram.h"
#include "time/sliding_count_min.h"
#include "time/sliding_hll.h"

namespace {

using Clock = std::chrono::steady_clock;

double Mops(uint64_t items, double seconds) {
  return seconds > 0.0 ? static_cast<double>(items) / seconds / 1e6 : 0.0;
}

// ---------------------------------------------------------------- ingest

struct IngestResult {
  double plain_hll_mops = 0.0;
  double sliding_hll_mops = 0.0;
  double plain_cm_mops = 0.0;
  double decayed_cm_mops = 0.0;
  double sliding_cm_mops = 0.0;
  double hll_overhead = 0.0;  // plain / windowed throughput ratio.
  double cm_overhead = 0.0;
};

IngestResult RunIngest(uint64_t total_items) {
  const size_t kBatch = 4096;
  std::vector<uint64_t> items(kBatch);
  std::vector<uint64_t> timestamps(kBatch);
  IngestResult result;

  // One shared item/timestamp schedule so every sketch sees the same
  // stream: timestamps advance one unit every 256 items, so a pane of
  // width 64 rotates every 16k items — rotations are exercised, not
  // amortized away.
  auto fill = [&](uint64_t base) {
    gems::SplitMix64 rng(base * 0x9E3779B97F4A7C15ull + 1);
    for (size_t i = 0; i < kBatch; ++i) {
      items[i] = rng.Next();
      timestamps[i] = (base * kBatch + i) >> 8;
    }
  };

  {
    gems::HyperLogLog plain(12, 7);
    const auto t0 = Clock::now();
    for (uint64_t b = 0; b * kBatch < total_items; ++b) {
      fill(b);
      plain.UpdateBatch(items);
    }
    result.plain_hll_mops = Mops(
        total_items, std::chrono::duration<double>(Clock::now() - t0).count());
  }
  {
    gems::SlidingHyperLogLog sliding(12, /*pane_width=*/64, /*num_panes=*/10,
                                     7);
    const auto t0 = Clock::now();
    for (uint64_t b = 0; b * kBatch < total_items; ++b) {
      fill(b);
      sliding.UpdateBatchTimed(timestamps, items);
    }
    result.sliding_hll_mops = Mops(
        total_items, std::chrono::duration<double>(Clock::now() - t0).count());
  }
  {
    gems::CountMinSketch plain(2048, 4, 7);
    const auto t0 = Clock::now();
    for (uint64_t b = 0; b * kBatch < total_items; ++b) {
      fill(b);
      plain.UpdateBatch(items);
    }
    result.plain_cm_mops = Mops(
        total_items, std::chrono::duration<double>(Clock::now() - t0).count());
  }
  {
    gems::DecayedCountMin decayed(2048, 4, /*half_life=*/1000.0, 7);
    const auto t0 = Clock::now();
    for (uint64_t b = 0; b * kBatch < total_items; ++b) {
      fill(b);
      decayed.UpdateBatchTimed(timestamps, items);
    }
    result.decayed_cm_mops = Mops(
        total_items, std::chrono::duration<double>(Clock::now() - t0).count());
  }
  {
    gems::SlidingCountMin sliding(2048, 4, /*pane_width=*/64,
                                  /*num_panes=*/10, 7);
    const auto t0 = Clock::now();
    for (uint64_t b = 0; b * kBatch < total_items; ++b) {
      fill(b);
      sliding.UpdateBatchTimed(timestamps, items);
    }
    result.sliding_cm_mops = Mops(
        total_items, std::chrono::duration<double>(Clock::now() - t0).count());
  }

  result.hll_overhead = result.sliding_hll_mops > 0.0
                            ? result.plain_hll_mops / result.sliding_hll_mops
                            : 0.0;
  result.cm_overhead = result.decayed_cm_mops > 0.0
                           ? result.plain_cm_mops / result.decayed_cm_mops
                           : 0.0;
  std::printf(
      "e16 ingest  hll %.1f -> sliding %.1f mops (%.2fx)  "
      "cm %.1f -> decayed %.1f / sliding %.1f mops (%.2fx)\n",
      result.plain_hll_mops, result.sliding_hll_mops, result.hll_overhead,
      result.plain_cm_mops, result.decayed_cm_mops, result.sliding_cm_mops,
      result.cm_overhead);
  return result;
}

// ------------------------------------------------------- cache admission

// An LRU cache whose admission is vetoed by a frequency filter: the
// TinyLFU arrangement, with the filter abstracted so the same schedule
// drives a plain and a decayed Count-Min. On a miss with a full cache the
// candidate is admitted only if its estimated frequency beats the LRU
// victim's — the filter is the piece under test.
struct AdmissionRates {
  double overall = 0.0;
  double phase2 = 0.0;
};

template <typename RecordFn, typename EstimateFn>
AdmissionRates RunAdmission(const std::vector<uint64_t>& requests,
                            size_t cache_capacity, RecordFn record,
                            EstimateFn estimate) {
  std::list<uint64_t> lru;  // Front = most recent.
  std::unordered_map<uint64_t, std::list<uint64_t>::iterator> where;
  where.reserve(cache_capacity * 2);
  const size_t half = requests.size() / 2;
  uint64_t hits = 0, phase2_hits = 0;
  for (size_t i = 0; i < requests.size(); ++i) {
    const uint64_t key = requests[i];
    record(i, key);
    bool hit = false;
    const auto it = where.find(key);
    if (it != where.end()) {
      hit = true;
      lru.splice(lru.begin(), lru, it->second);
    } else if (where.size() < cache_capacity) {
      lru.push_front(key);
      where[key] = lru.begin();
    } else {
      const uint64_t victim = lru.back();
      if (estimate(key) >= estimate(victim)) {
        where.erase(victim);
        lru.pop_back();
        lru.push_front(key);
        where[key] = lru.begin();
      }
    }
    if (hit) {
      ++hits;
      if (i >= half) ++phase2_hits;
    }
  }
  AdmissionRates rates;
  rates.overall =
      static_cast<double>(hits) / static_cast<double>(requests.size());
  rates.phase2 = static_cast<double>(phase2_hits) /
                 static_cast<double>(requests.size() - half);
  return rates;
}

struct AdmissionResult {
  double plain_hit_rate = 0.0;
  double decayed_hit_rate = 0.0;
  double phase2_plain_hit_rate = 0.0;
  double phase2_decayed_hit_rate = 0.0;
};

AdmissionResult RunAdmissionScenario(uint64_t num_requests,
                                     size_t cache_capacity) {
  // Phase 1 draws skewed traffic from one hot set, phase 2 from a
  // disjoint one. The skew (u^2 over 4096 keys) keeps a hot head well
  // inside the cache capacity.
  std::vector<uint64_t> requests(num_requests);
  gems::SplitMix64 rng(0xE16);
  const uint64_t kUniverse = 4096;
  for (uint64_t i = 0; i < num_requests; ++i) {
    const double u = static_cast<double>(rng.Next() >> 11) * 0x1p-53;
    const uint64_t rank =
        static_cast<uint64_t>(u * u * static_cast<double>(kUniverse));
    const uint64_t base = i < num_requests / 2 ? 0 : 1'000'000;
    requests[i] = base + std::min(rank, kUniverse - 1);
  }

  const double half_life = static_cast<double>(num_requests) / 16.0;
  AdmissionResult result;

  {
    gems::CountMinSketch filter(8192, 4, 3);
    const AdmissionRates rates = RunAdmission(
        requests, cache_capacity,
        [&](uint64_t, uint64_t key) { filter.Update(key); },
        [&](uint64_t key) {
          return static_cast<double>(filter.Estimate(key));
        });
    result.plain_hit_rate = rates.overall;
    result.phase2_plain_hit_rate = rates.phase2;
  }
  {
    gems::DecayedCountMin filter(8192, 4, half_life, 3);
    const AdmissionRates rates = RunAdmission(
        requests, cache_capacity,
        [&](uint64_t i, uint64_t key) { filter.UpdateAt(i, key); },
        [&](uint64_t key) { return filter.Estimate(key); });
    result.decayed_hit_rate = rates.overall;
    result.phase2_decayed_hit_rate = rates.phase2;
  }

  std::printf(
      "e16 admission  plain %.3f (phase2 %.3f)  decayed %.3f (phase2 %.3f)\n",
      result.plain_hit_rate, result.phase2_plain_hit_rate,
      result.decayed_hit_rate, result.phase2_decayed_hit_rate);
  return result;
}

// --------------------------------------------------- checkpoint fixpoint

bool RoundTripsByteIdentical(const gems::AnySketch& sketch) {
  const std::vector<uint8_t> bytes = sketch.Serialize();
  gems::Result<gems::AnySketch> revived =
      gems::SketchRegistry::Global().Deserialize(bytes);
  if (!revived.ok()) return false;
  return revived.value().Serialize() == bytes;
}

struct RoundTripResult {
  bool sliding_hll = false;
  bool sliding_cm = false;
  bool decayed_cm = false;
  bool exponential_histogram = false;
  bool all() const {
    return sliding_hll && sliding_cm && decayed_cm && exponential_histogram;
  }
};

RoundTripResult RunRoundTrips() {
  RoundTripResult result;
  const gems::SketchRegistry& registry = gems::SketchRegistry::Global();
  gems::SplitMix64 rng(0x516);
  std::vector<uint64_t> timestamps, items;
  for (uint64_t i = 0; i < 20000; ++i) {
    timestamps.push_back(i / 7);
    items.push_back(rng.Next() % 100000);
  }
  auto check = [&](const char* name, bool* flag) {
    gems::TimedSketchParams params;
    if (std::string_view(name) == "decayed_countmin") {
      params.half_life = 500.0;
    } else {
      params.pane_width = 100;
      if (std::string_view(name) != "exponential_histogram") {
        params.num_panes = 12;
      }
    }
    const gems::SketchRegistry::Entry* entry = registry.FindByName(name);
    if (entry == nullptr || entry->make_timed == nullptr) return;
    gems::Result<gems::AnySketch> made = entry->make_timed(params);
    if (!made.ok()) return;
    if (!made.value().UpdateBatchTimed(timestamps, items).ok()) return;
    *flag = RoundTripsByteIdentical(made.value());
  };
  check("sliding_hyperloglog", &result.sliding_hll);
  check("sliding_countmin", &result.sliding_cm);
  check("decayed_countmin", &result.decayed_cm);
  check("exponential_histogram", &result.exponential_histogram);
  std::printf(
      "e16 roundtrip  sliding_hll=%d sliding_cm=%d decayed_cm=%d eh=%d\n",
      result.sliding_hll, result.sliding_cm, result.decayed_cm,
      result.exponential_histogram);
  return result;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  uint64_t total_items = 8'000'000;
  uint64_t num_requests = 400'000;
  size_t cache_capacity = 512;

  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--e16_time_json=", 0) == 0) {
      json_path = std::string(arg.substr(std::strlen("--e16_time_json=")));
    } else if (arg.rfind("--e16_items=", 0) == 0) {
      total_items = std::strtoull(argv[i] + std::strlen("--e16_items="),
                                  nullptr, 10);
    } else if (arg.rfind("--e16_requests=", 0) == 0) {
      num_requests = std::strtoull(argv[i] + std::strlen("--e16_requests="),
                                   nullptr, 10);
    } else if (arg.rfind("--e16_cache=", 0) == 0) {
      cache_capacity = std::strtoull(argv[i] + std::strlen("--e16_cache="),
                                     nullptr, 10);
    } else {
      std::fprintf(stderr, "e16: unknown flag %s\n", argv[i]);
      return 1;
    }
  }
  if (total_items == 0 || num_requests < 4 || cache_capacity == 0) {
    std::fprintf(stderr, "e16: all sizes must be nonzero\n");
    return 1;
  }

  gems::RegisterBuiltinSketches();

  const IngestResult ingest = RunIngest(total_items);
  const AdmissionResult admission =
      RunAdmissionScenario(num_requests, cache_capacity);
  const RoundTripResult round_trips = RunRoundTrips();

  if (json_path.empty()) return round_trips.all() ? 0 : 1;

  std::string json = "{\n  \"experiment\": \"e16_time\",\n";
  char line[512];
  std::snprintf(line, sizeof(line),
                "  \"items\": %llu,\n  \"requests\": %llu,\n"
                "  \"cache_capacity\": %zu,\n",
                static_cast<unsigned long long>(total_items),
                static_cast<unsigned long long>(num_requests),
                cache_capacity);
  json += line;
  std::snprintf(
      line, sizeof(line),
      "  \"ingest\": {\"plain_hll_mops\": %.2f, \"sliding_hll_mops\": %.2f, "
      "\"hll_overhead\": %.3f, \"plain_cm_mops\": %.2f, "
      "\"decayed_cm_mops\": %.2f, \"sliding_cm_mops\": %.2f, "
      "\"cm_overhead\": %.3f},\n",
      ingest.plain_hll_mops, ingest.sliding_hll_mops, ingest.hll_overhead,
      ingest.plain_cm_mops, ingest.decayed_cm_mops, ingest.sliding_cm_mops,
      ingest.cm_overhead);
  json += line;
  std::snprintf(
      line, sizeof(line),
      "  \"admission\": {\"plain_hit_rate\": %.4f, "
      "\"decayed_hit_rate\": %.4f, \"phase2_plain_hit_rate\": %.4f, "
      "\"phase2_decayed_hit_rate\": %.4f},\n",
      admission.plain_hit_rate, admission.decayed_hit_rate,
      admission.phase2_plain_hit_rate, admission.phase2_decayed_hit_rate);
  json += line;
  std::snprintf(
      line, sizeof(line),
      "  \"roundtrip\": {\"sliding_hyperloglog\": %s, "
      "\"sliding_countmin\": %s, \"decayed_countmin\": %s, "
      "\"exponential_histogram\": %s},\n",
      round_trips.sliding_hll ? "true" : "false",
      round_trips.sliding_cm ? "true" : "false",
      round_trips.decayed_cm ? "true" : "false",
      round_trips.exponential_histogram ? "true" : "false");
  json += line;
  json += "  \"dispatch\": " + gems::simd::DispatchJson() + "\n}\n";

  std::fputs(json.c_str(), stdout);
  std::FILE* f = std::fopen(json_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "e16: cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  if (std::fclose(f) != 0) return 1;
  return round_trips.all() ? 0 : 1;
}
