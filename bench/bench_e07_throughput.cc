// E7: update/query throughput of every sketch (google-benchmark), plus a
// batched-vs-per-item comparison of the hash-once ingest pipeline.
//
// Claim (paper section 2, "practical side" / DataSketches): production
// sketches sustain tens of millions of updates per second per core, which
// is what made them deployable inside stream engines and warehouses.
//
// Three modes:
//   bench_e07_throughput [gbench flags]      # the usual google-benchmark run
//   bench_e07_throughput --e07_json=out.json [--e07_items=N]
//     # deterministic batched-vs-per-item comparison; writes one JSON
//     # document with per-sketch ops/sec and speedup, prints it to stdout.
//   bench_e07_throughput --e07_scaling_json=out.json [--e07_scaling_items=N]
//     # thread-scaling harness: single-thread batched ingest vs the
//     # ShardedPipeline at 2/4/8 workers for HLL, Count-Min, Bloom, KLL;
//     # one JSON row per (sketch, worker count).
//   bench_e07_throughput --e07_simd_json=out.json [--e07_simd_items=N]
//     # scalar-vs-dispatched kernel comparison: the same batched ingest
//     # timed twice in one process, once with the dispatcher pinned to the
//     # scalar reference table and once with the startup selection. The
//     # ratio isolates the SIMD kernel layer's contribution (both sides
//     # use the identical batch path).
//
// Every JSON document embeds a "dispatch" object (level, cpu_features,
// forced_scalar) so artifacts are attributable to the hardware they ran on.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <span>
#include <string>
#include <string_view>

#include "cardinality/hllpp.h"
#include "cardinality/hyperloglog.h"
#include "cardinality/kmv.h"
#include "distributed/sharded_pipeline.h"
#include "frequency/count_min.h"
#include "frequency/count_sketch.h"
#include "frequency/misra_gries.h"
#include "frequency/space_saving.h"
#include "membership/blocked_bloom.h"
#include "membership/bloom.h"
#include "quantiles/kll.h"
#include "quantiles/mrl.h"
#include "quantiles/req.h"
#include "quantiles/tdigest.h"
#include "moments/ams.h"
#include "sampling/reservoir.h"
#include "similarity/minhash.h"
#include "simd/dispatch.h"
#include "workload/generators.h"

namespace {

std::vector<uint64_t> TestItems() {
  static const std::vector<uint64_t> items =
      gems::ZipfGenerator(1 << 20, 1.1, 42).Take(1 << 16);
  return items;
}

void BM_HyperLogLogUpdate(benchmark::State& state) {
  gems::HyperLogLog sketch(static_cast<int>(state.range(0)), 1);
  const auto items = TestItems();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(items[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HyperLogLogUpdate)->Arg(10)->Arg(14);

void BM_HllPlusPlusUpdate(benchmark::State& state) {
  gems::HllPlusPlus sketch(12, 1);
  const auto items = TestItems();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(items[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HllPlusPlusUpdate);

void BM_KmvUpdate(benchmark::State& state) {
  gems::KmvSketch sketch(1024, 1);
  const auto items = TestItems();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(items[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KmvUpdate);

void BM_BloomInsert(benchmark::State& state) {
  gems::BloomFilter filter(1 << 23, static_cast<int>(state.range(0)), 1);
  const auto items = TestItems();
  size_t i = 0;
  for (auto _ : state) {
    filter.Insert(items[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomInsert)->Arg(4)->Arg(8);

void BM_BloomQuery(benchmark::State& state) {
  gems::BloomFilter filter(1 << 23, 7, 1);
  const auto items = TestItems();
  for (size_t i = 0; i < items.size() / 2; ++i) filter.Insert(items[i]);
  size_t i = 0;
  bool sink = false;
  for (auto _ : state) {
    sink ^= filter.MayContain(items[i++ & 0xFFFF]);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomQuery);

void BM_BlockedBloomQuery(benchmark::State& state) {
  gems::BlockedBloomFilter filter(1 << 23, 8, 1);
  const auto items = TestItems();
  for (size_t i = 0; i < items.size() / 2; ++i) filter.Insert(items[i]);
  size_t i = 0;
  bool sink = false;
  for (auto _ : state) {
    sink ^= filter.MayContain(items[i++ & 0xFFFF]);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BlockedBloomQuery);

void BM_CountMinUpdate(benchmark::State& state) {
  gems::CountMinSketch sketch(4096, static_cast<uint32_t>(state.range(0)),
                              1);
  const auto items = TestItems();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(items[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountMinUpdate)->Arg(4)->Arg(8);

void BM_CountSketchUpdate(benchmark::State& state) {
  gems::CountSketch sketch(4096, 5, 1);
  const auto items = TestItems();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(items[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountSketchUpdate);

void BM_SpaceSavingUpdate(benchmark::State& state) {
  gems::SpaceSaving sketch(static_cast<size_t>(state.range(0)));
  const auto items = TestItems();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(items[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpaceSavingUpdate)->Arg(256)->Arg(4096);

void BM_MisraGriesUpdate(benchmark::State& state) {
  gems::MisraGries sketch(1024);
  const auto items = TestItems();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(items[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MisraGriesUpdate);

void BM_KllUpdate(benchmark::State& state) {
  gems::KllSketch sketch(200, 1);
  const auto values =
      gems::GenerateValues(gems::ValueDistribution::kGaussian, 1 << 16, 2);
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(values[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KllUpdate);

void BM_MrlUpdate(benchmark::State& state) {
  gems::MrlSketch sketch(10, 500);
  const auto values =
      gems::GenerateValues(gems::ValueDistribution::kGaussian, 1 << 16, 2);
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(values[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MrlUpdate);

void BM_ReqUpdate(benchmark::State& state) {
  gems::ReqSketch sketch(32, 1);
  const auto values =
      gems::GenerateValues(gems::ValueDistribution::kGaussian, 1 << 16, 2);
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(values[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReqUpdate);

void BM_MinHashUpdate(benchmark::State& state) {
  gems::MinHashSketch sketch(static_cast<uint32_t>(state.range(0)), 1);
  const auto items = TestItems();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(items[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MinHashUpdate)->Arg(64)->Arg(256);

void BM_TDigestUpdate(benchmark::State& state) {
  gems::TDigest sketch(100);
  const auto values =
      gems::GenerateValues(gems::ValueDistribution::kGaussian, 1 << 16, 2);
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(values[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TDigestUpdate);

// ---- batched ingest variants: whole-vector UpdateBatch per iteration ----

void BM_HyperLogLogUpdateBatch(benchmark::State& state) {
  gems::HyperLogLog sketch(static_cast<int>(state.range(0)), 1);
  const auto items = TestItems();
  for (auto _ : state) {
    sketch.UpdateBatch(items);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(items.size()));
}
BENCHMARK(BM_HyperLogLogUpdateBatch)->Arg(10)->Arg(14);

void BM_HllPlusPlusUpdateBatch(benchmark::State& state) {
  gems::HllPlusPlus sketch(12, 1);
  const auto items = TestItems();
  for (auto _ : state) {
    sketch.UpdateBatch(items);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(items.size()));
}
BENCHMARK(BM_HllPlusPlusUpdateBatch);

void BM_KmvUpdateBatch(benchmark::State& state) {
  gems::KmvSketch sketch(1024, 1);
  const auto items = TestItems();
  for (auto _ : state) {
    sketch.UpdateBatch(items);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(items.size()));
}
BENCHMARK(BM_KmvUpdateBatch);

void BM_BloomInsertBatch(benchmark::State& state) {
  gems::BloomFilter filter(1 << 23, static_cast<int>(state.range(0)), 1);
  const auto items = TestItems();
  for (auto _ : state) {
    filter.InsertBatch(items);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(items.size()));
}
BENCHMARK(BM_BloomInsertBatch)->Arg(4)->Arg(8);

void BM_CountMinUpdateBatch(benchmark::State& state) {
  gems::CountMinSketch sketch(4096, static_cast<uint32_t>(state.range(0)),
                              1);
  const auto items = TestItems();
  for (auto _ : state) {
    sketch.UpdateBatch(items);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(items.size()));
}
BENCHMARK(BM_CountMinUpdateBatch)->Arg(4)->Arg(8);

void BM_CountSketchUpdateBatch(benchmark::State& state) {
  gems::CountSketch sketch(4096, 5, 1);
  const auto items = TestItems();
  for (auto _ : state) {
    sketch.UpdateBatch(items);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(items.size()));
}
BENCHMARK(BM_CountSketchUpdateBatch);

void BM_SpaceSavingUpdateBatch(benchmark::State& state) {
  gems::SpaceSaving sketch(static_cast<size_t>(state.range(0)));
  const auto items = TestItems();
  for (auto _ : state) {
    sketch.UpdateBatch(items);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(items.size()));
}
BENCHMARK(BM_SpaceSavingUpdateBatch)->Arg(256)->Arg(4096);

void BM_KllUpdateBatch(benchmark::State& state) {
  gems::KllSketch sketch(200, 1);
  const auto values =
      gems::GenerateValues(gems::ValueDistribution::kGaussian, 1 << 16, 2);
  for (auto _ : state) {
    sketch.UpdateBatch(values);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(values.size()));
}
BENCHMARK(BM_KllUpdateBatch);

void BM_HyperLogLogMerge(benchmark::State& state) {
  gems::HyperLogLog a(12, 1), b(12, 1);
  for (uint64_t item : gems::DistinctItems(100000, 3)) b.Update(item);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Merge(b));
  }
}
BENCHMARK(BM_HyperLogLogMerge);

void BM_HyperLogLogSerialize(benchmark::State& state) {
  gems::HyperLogLog sketch(12, 1);
  for (uint64_t item : gems::DistinctItems(100000, 3)) sketch.Update(item);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.Serialize());
  }
}
BENCHMARK(BM_HyperLogLogSerialize);

// ------------------- batched vs per-item JSON comparison -------------------
//
// A deterministic chrono harness (no google-benchmark adaptivity) so CI can
// assert on the output: for each hot sketch, ingest the same stream once
// per item and once through the batch fast path, best of `kReps` runs.

constexpr int kReps = 3;
constexpr size_t kChunk = 4096;

template <typename Fn>
double BestSeconds(Fn&& fn) {
  double best = 1e100;
  for (int r = 0; r < kReps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

struct Comparison {
  const char* sketch;
  double per_item_mops;
  double batched_mops;
  double speedup;
};

// Times `make()` sketches fed the whole stream per-item vs in kChunk-item
// batches; a fresh sketch per repetition so both sides see identical state.
template <typename Make, typename PerItem, typename Batch>
Comparison Compare(const char* name, const std::vector<uint64_t>& items,
                   Make make, PerItem per_item, Batch batch) {
  const double seq = BestSeconds([&] {
    auto sketch = make();
    for (uint64_t item : items) per_item(sketch, item);
    benchmark::DoNotOptimize(sketch);
  });
  const double bat = BestSeconds([&] {
    auto sketch = make();
    std::span<const uint64_t> span(items);
    for (size_t off = 0; off < span.size(); off += kChunk) {
      batch(sketch, span.subspan(off, std::min(kChunk, span.size() - off)));
    }
    benchmark::DoNotOptimize(sketch);
  });
  const double n = static_cast<double>(items.size());
  return Comparison{name, n / seq / 1e6, n / bat / 1e6, seq / bat};
}

int RunBatchedComparison(const std::string& json_path, size_t num_items) {
  // Per-family representative workloads: cardinality/membership sketches
  // see the distinct-heavy keys of a bulk load (their hard case), while
  // frequency sketches see the skewed stream they exist to summarize.
  const std::vector<uint64_t> items = gems::DistinctItems(num_items, 42);
  const std::vector<uint64_t> zipf =
      gems::ZipfGenerator(1 << 20, 1.1, 42).Take(num_items);
  std::vector<Comparison> results;

  results.push_back(Compare(
      "hyperloglog", items, [] { return gems::HyperLogLog(12, 1); },
      [](gems::HyperLogLog& s, uint64_t x) { s.Update(x); },
      [](gems::HyperLogLog& s, std::span<const uint64_t> b) {
        s.UpdateBatch(b);
      }));
  results.push_back(Compare(
      "hllpp", items, [] { return gems::HllPlusPlus(12, 1); },
      [](gems::HllPlusPlus& s, uint64_t x) { s.Update(x); },
      [](gems::HllPlusPlus& s, std::span<const uint64_t> b) {
        s.UpdateBatch(b);
      }));
  results.push_back(Compare(
      "kmv", items, [] { return gems::KmvSketch(1024, 1); },
      [](gems::KmvSketch& s, uint64_t x) { s.Update(x); },
      [](gems::KmvSketch& s, std::span<const uint64_t> b) {
        s.UpdateBatch(b);
      }));
  results.push_back(Compare(
      "countmin", zipf, [] { return gems::CountMinSketch(4096, 4, 1); },
      [](gems::CountMinSketch& s, uint64_t x) { s.Update(x); },
      [](gems::CountMinSketch& s, std::span<const uint64_t> b) {
        s.UpdateBatch(b);
      }));
  results.push_back(Compare(
      "countsketch", zipf, [] { return gems::CountSketch(4096, 5, 1); },
      [](gems::CountSketch& s, uint64_t x) { s.Update(x); },
      [](gems::CountSketch& s, std::span<const uint64_t> b) {
        s.UpdateBatch(b);
      }));
  results.push_back(Compare(
      "spacesaving", zipf, [] { return gems::SpaceSaving(4096); },
      [](gems::SpaceSaving& s, uint64_t x) { s.Update(x); },
      [](gems::SpaceSaving& s, std::span<const uint64_t> b) {
        s.UpdateBatch(b);
      }));
  results.push_back(Compare(
      "bloom", items, [] { return gems::BloomFilter(1 << 23, 7, 1); },
      [](gems::BloomFilter& s, uint64_t x) { s.Insert(x); },
      [](gems::BloomFilter& s, std::span<const uint64_t> b) {
        s.InsertBatch(b);
      }));
  results.push_back(Compare(
      "blocked_bloom", items,
      [] { return gems::BlockedBloomFilter(1 << 23, 8, 1); },
      [](gems::BlockedBloomFilter& s, uint64_t x) { s.Insert(x); },
      [](gems::BlockedBloomFilter& s, std::span<const uint64_t> b) {
        s.InsertBatch(b);
      }));
  results.push_back(Compare(
      "reservoir", items, [] { return gems::ReservoirSampler(1024, 1); },
      [](gems::ReservoirSampler& s, uint64_t x) { s.Update(x); },
      [](gems::ReservoirSampler& s, std::span<const uint64_t> b) {
        s.UpdateBatch(b);
      }));
  // KLL ingests doubles; reuse the item stream as values.
  {
    std::vector<double> values;
    values.reserve(items.size());
    for (uint64_t item : items) {
      values.push_back(static_cast<double>(item % 1000000));
    }
    const double seq = BestSeconds([&] {
      gems::KllSketch sketch(200, 1);
      for (double v : values) sketch.Update(v);
      benchmark::DoNotOptimize(sketch);
    });
    const double bat = BestSeconds([&] {
      gems::KllSketch sketch(200, 1);
      std::span<const double> span(values);
      for (size_t off = 0; off < span.size(); off += kChunk) {
        sketch.UpdateBatch(
            span.subspan(off, std::min(kChunk, span.size() - off)));
      }
      benchmark::DoNotOptimize(sketch);
    });
    const double n = static_cast<double>(values.size());
    results.push_back(Comparison{"kll", n / seq / 1e6, n / bat / 1e6,
                                 seq / bat});
  }

  std::string json = "{\n  \"bench\": \"e07_batched_vs_per_item\",\n";
  json += "  \"items\": " + std::to_string(num_items) + ",\n";
  json += "  \"chunk\": " + std::to_string(kChunk) + ",\n";
  json += "  \"dispatch\": " + gems::simd::DispatchJson() + ",\n";
  json += "  \"results\": [\n";
  char line[256];
  for (size_t i = 0; i < results.size(); ++i) {
    const Comparison& c = results[i];
    std::snprintf(line, sizeof(line),
                  "    {\"sketch\": \"%s\", \"per_item_mops\": %.2f, "
                  "\"batched_mops\": %.2f, \"speedup\": %.2f}%s\n",
                  c.sketch, c.per_item_mops, c.batched_mops, c.speedup,
                  i + 1 < results.size() ? "," : "");
    json += line;
  }
  json += "  ]\n}\n";

  std::fputs(json.c_str(), stdout);
  std::FILE* f = std::fopen(json_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  return std::fclose(f) == 0 ? 0 : 1;
}

// ----------------- scalar-vs-dispatched kernel comparison -----------------
//
// Three configurations per sketch, which separate the two claims bundled
// into "batched ingest is faster": (1) per_item — the scalar Update() loop
// a caller without batching writes; (2) batched_scalar — UpdateBatch with
// the kernel table pinned to the scalar reference (the batching win alone:
// hash hoisting, modulo strength reduction, loop structure); (3)
// batched_simd — UpdateBatch under the startup dispatch choice.
// `simd_speedup` is (3)/(2), the vector kernels' own contribution;
// `batched_ingest_speedup` is (3)/(1), the end-to-end win over scalar
// per-item ingest — the quantity the CI bench-smoke job gates at 1.5x for
// hyperloglog and countmin. All three configs run identical sketch code
// outside the kernel table, and bit identity means they produce the same
// sketch, so a speedup can never come from a wrong answer.

struct SimdRow {
  const char* sketch;
  double per_item_mops;
  double batched_scalar_mops;
  double batched_simd_mops;
  double simd_speedup;            // batched_simd / batched_scalar
  double batched_ingest_speedup;  // batched_simd / per_item
};

template <typename Make, typename PerItem, typename Batch>
SimdRow CompareSimd(const char* name, const std::vector<uint64_t>& items,
                    Make make, PerItem per_item, Batch batch) {
  const auto run_batched = [&] {
    auto sketch = make();
    std::span<const uint64_t> span(items);
    for (size_t off = 0; off < span.size(); off += kChunk) {
      batch(sketch, span.subspan(off, std::min(kChunk, span.size() - off)));
    }
    benchmark::DoNotOptimize(sketch);
  };
  gems::simd::ForceScalarForTesting(true);
  const double seq = BestSeconds([&] {
    auto sketch = make();
    for (uint64_t item : items) per_item(sketch, item);
    benchmark::DoNotOptimize(sketch);
  });
  const double scalar = BestSeconds(run_batched);
  gems::simd::ForceScalarForTesting(false);
  const double dispatched = BestSeconds(run_batched);
  const double n = static_cast<double>(items.size());
  return SimdRow{name,
                 n / seq / 1e6,
                 n / scalar / 1e6,
                 n / dispatched / 1e6,
                 scalar / dispatched,
                 seq / dispatched};
}

int RunSimdComparison(const std::string& json_path, size_t num_items) {
  const std::vector<uint64_t> items = gems::DistinctItems(num_items, 42);
  const std::vector<uint64_t> zipf =
      gems::ZipfGenerator(1 << 20, 1.1, 42).Take(num_items);
  std::vector<SimdRow> rows;

  rows.push_back(CompareSimd(
      "hyperloglog", items, [] { return gems::HyperLogLog(12, 1); },
      [](gems::HyperLogLog& s, uint64_t x) { s.Update(x); },
      [](gems::HyperLogLog& s, std::span<const uint64_t> b) {
        s.UpdateBatch(b);
      }));
  rows.push_back(CompareSimd(
      "countmin", zipf, [] { return gems::CountMinSketch(4096, 4, 1); },
      [](gems::CountMinSketch& s, uint64_t x) { s.Update(x); },
      [](gems::CountMinSketch& s, std::span<const uint64_t> b) {
        s.UpdateBatch(b);
      }));
  rows.push_back(CompareSimd(
      "countsketch", zipf, [] { return gems::CountSketch(4096, 5, 1); },
      [](gems::CountSketch& s, uint64_t x) { s.Update(x); },
      [](gems::CountSketch& s, std::span<const uint64_t> b) {
        s.UpdateBatch(b);
      }));
  rows.push_back(CompareSimd(
      "bloom", items, [] { return gems::BloomFilter(1 << 23, 7, 1); },
      [](gems::BloomFilter& s, uint64_t x) { s.Insert(x); },
      [](gems::BloomFilter& s, std::span<const uint64_t> b) {
        s.InsertBatch(b);
      }));
  rows.push_back(CompareSimd(
      "blocked_bloom", items,
      [] { return gems::BlockedBloomFilter(1 << 23, 8, 1); },
      [](gems::BlockedBloomFilter& s, uint64_t x) { s.Insert(x); },
      [](gems::BlockedBloomFilter& s, std::span<const uint64_t> b) {
        s.InsertBatch(b);
      }));
  rows.push_back(CompareSimd(
      "minhash", items, [] { return gems::MinHashSketch(64, 1); },
      [](gems::MinHashSketch& s, uint64_t x) { s.Update(x); },
      [](gems::MinHashSketch& s, std::span<const uint64_t> b) {
        s.UpdateBatch(b);
      }));
  // AMS's batch path is pure field arithmetic with no vector kernel, so
  // its row is the ~1.0x simd_speedup control: it shows what the harness
  // reports when dispatch genuinely does not matter.
  rows.push_back(CompareSimd(
      "ams", zipf, [] { return gems::AmsSketch(16, 5, 1); },
      [](gems::AmsSketch& s, uint64_t x) { s.Update(x); },
      [](gems::AmsSketch& s, std::span<const uint64_t> b) {
        s.UpdateBatch(b);
      }));

  std::string json = "{\n  \"bench\": \"e07_simd_vs_scalar\",\n";
  json += "  \"items\": " + std::to_string(num_items) + ",\n";
  json += "  \"chunk\": " + std::to_string(kChunk) + ",\n";
  json += "  \"dispatch\": " + gems::simd::DispatchJson() + ",\n";
  json += "  \"results\": [\n";
  char line[320];
  for (size_t i = 0; i < rows.size(); ++i) {
    const SimdRow& row = rows[i];
    std::snprintf(line, sizeof(line),
                  "    {\"sketch\": \"%s\", \"per_item_mops\": %.2f, "
                  "\"batched_scalar_mops\": %.2f, "
                  "\"batched_simd_mops\": %.2f, \"simd_speedup\": %.2f, "
                  "\"batched_ingest_speedup\": %.2f}%s\n",
                  row.sketch, row.per_item_mops, row.batched_scalar_mops,
                  row.batched_simd_mops, row.simd_speedup,
                  row.batched_ingest_speedup, i + 1 < rows.size() ? "," : "");
    json += line;
  }
  json += "  ]\n}\n";

  std::fputs(json.c_str(), stdout);
  std::FILE* f = std::fopen(json_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  return std::fclose(f) == 0 ? 0 : 1;
}

// ------------------------- thread-scaling harness -------------------------
//
// Single-thread batched ingest (the PR 2 fast path) vs the ShardedPipeline
// at 2/4/8 workers, for the four hot families. The pipeline's post-merge
// estimate is cross-checked against the single-thread sketch so a scaling
// number can never come from a wrong answer.

struct ScalingRow {
  const char* sketch;
  size_t workers;
  double mops;
  double speedup;  // vs this sketch's 1-worker batched baseline.
};

template <typename S>
void FeedChunk(S& sketch,
               std::span<const typename gems::ShardedPipeline<S>::Item> b) {
  if constexpr (gems::BatchItemSummary<S>) {
    sketch.UpdateBatch(b);
  } else if constexpr (gems::BatchInsertableSummary<S>) {
    sketch.InsertBatch(b);
  } else {
    sketch.UpdateBatch(b);
  }
}

template <typename S>
void ScaleSketch(
    const char* name, const S& prototype,
    const std::vector<typename gems::ShardedPipeline<S>::Item>& stream,
    std::vector<ScalingRow>* rows) {
  using Item = typename gems::ShardedPipeline<S>::Item;
  const std::span<const Item> span(stream);
  const double n = static_cast<double>(stream.size());

  const double base = BestSeconds([&] {
    S sketch = prototype;
    for (size_t off = 0; off < span.size(); off += kChunk) {
      FeedChunk(sketch,
                span.subspan(off, std::min(kChunk, span.size() - off)));
    }
    benchmark::DoNotOptimize(sketch);
  });
  rows->push_back({name, 1, n / base / 1e6, 1.0});

  for (const size_t workers : {size_t{2}, size_t{4}, size_t{8}}) {
    double best = 1e100;
    for (int r = 0; r < kReps; ++r) {
      // The pool spins up outside the timed region; Push + Finish is the
      // steady-state cost a stream engine would pay.
      gems::ShardedPipeline<S> pipeline(
          prototype, {.num_workers = workers, .chunk_items = kChunk});
      const auto t0 = std::chrono::steady_clock::now();
      pipeline.Push(span);
      auto root = pipeline.Finish();
      const auto t1 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(root);
      best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    }
    rows->push_back({name, workers, n / best / 1e6, base / best});
  }
}

int RunThreadScaling(const std::string& json_path, size_t num_items) {
  const std::vector<uint64_t> items = gems::DistinctItems(num_items, 42);
  const std::vector<uint64_t> zipf =
      gems::ZipfGenerator(1 << 20, 1.1, 42).Take(num_items);
  std::vector<double> values;
  values.reserve(items.size());
  for (uint64_t item : items) {
    values.push_back(static_cast<double>(item % 1000000));
  }

  std::vector<ScalingRow> rows;
  ScaleSketch("hyperloglog", gems::HyperLogLog(12, 1), items, &rows);
  ScaleSketch("countmin", gems::CountMinSketch(4096, 4, 1), zipf, &rows);
  ScaleSketch("bloom", gems::BloomFilter(1 << 23, 7, 1), items, &rows);
  ScaleSketch("kll", gems::KllSketch(200, 1), values, &rows);

  std::string json = "{\n  \"bench\": \"e07_thread_scaling\",\n";
  json += "  \"items\": " + std::to_string(num_items) + ",\n";
  json += "  \"chunk\": " + std::to_string(kChunk) + ",\n";
  json += "  \"dispatch\": " + gems::simd::DispatchJson() + ",\n";
  json += "  \"results\": [\n";
  char line[256];
  for (size_t i = 0; i < rows.size(); ++i) {
    const ScalingRow& row = rows[i];
    std::snprintf(line, sizeof(line),
                  "    {\"sketch\": \"%s\", \"workers\": %zu, "
                  "\"mops\": %.2f, \"speedup\": %.2f}%s\n",
                  row.sketch, row.workers, row.mops, row.speedup,
                  i + 1 < rows.size() ? "," : "");
    json += line;
  }
  json += "  ]\n}\n";

  std::fputs(json.c_str(), stdout);
  std::FILE* f = std::fopen(json_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  return std::fclose(f) == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string scaling_json_path;
  std::string simd_json_path;
  size_t num_items = 1 << 20;
  size_t scaling_items = 1 << 21;
  size_t simd_items = 1 << 20;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--e07_json=", 0) == 0) {
      json_path = std::string(arg.substr(std::strlen("--e07_json=")));
    } else if (arg.rfind("--e07_items=", 0) == 0) {
      num_items = std::strtoull(argv[i] + std::strlen("--e07_items="),
                                nullptr, 10);
    } else if (arg.rfind("--e07_scaling_json=", 0) == 0) {
      scaling_json_path =
          std::string(arg.substr(std::strlen("--e07_scaling_json=")));
    } else if (arg.rfind("--e07_scaling_items=", 0) == 0) {
      scaling_items = std::strtoull(
          argv[i] + std::strlen("--e07_scaling_items="), nullptr, 10);
    } else if (arg.rfind("--e07_simd_json=", 0) == 0) {
      simd_json_path =
          std::string(arg.substr(std::strlen("--e07_simd_json=")));
    } else if (arg.rfind("--e07_simd_items=", 0) == 0) {
      simd_items = std::strtoull(argv[i] + std::strlen("--e07_simd_items="),
                                 nullptr, 10);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!simd_json_path.empty()) {
    return RunSimdComparison(simd_json_path,
                             simd_items == 0 ? 1 << 20 : simd_items);
  }
  if (!scaling_json_path.empty()) {
    return RunThreadScaling(scaling_json_path,
                            scaling_items == 0 ? 1 << 21 : scaling_items);
  }
  if (!json_path.empty()) {
    return RunBatchedComparison(json_path, num_items == 0 ? 1 << 20
                                                          : num_items);
  }
  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
