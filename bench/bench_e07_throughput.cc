// E7: update/query throughput of every sketch (google-benchmark), plus a
// batched-vs-per-item comparison of the hash-once ingest pipeline.
//
// Claim (paper section 2, "practical side" / DataSketches): production
// sketches sustain tens of millions of updates per second per core, which
// is what made them deployable inside stream engines and warehouses.
//
// Three modes:
//   bench_e07_throughput [gbench flags]      # the usual google-benchmark run
//   bench_e07_throughput --e07_json=out.json [--e07_items=N]
//     # deterministic batched-vs-per-item comparison; writes one JSON
//     # document with per-sketch ops/sec and speedup, prints it to stdout.
//   bench_e07_throughput --e07_scaling_json=out.json [--e07_scaling_items=N]
//     # thread-scaling harness: single-thread batched ingest vs the
//     # ShardedPipeline at 2/4/8 workers for HLL, Count-Min, Bloom, KLL;
//     # one JSON row per (sketch, worker count).
//   bench_e07_throughput --e07_simd_json=out.json [--e07_simd_items=N]
//     # scalar-vs-dispatched kernel comparison: the same batched ingest
//     # timed twice in one process, once with the dispatcher pinned to the
//     # scalar reference table and once with the startup selection. The
//     # ratio isolates the SIMD kernel layer's contribution (both sides
//     # use the identical batch path).
//   bench_e07_throughput --e07_layout_json=out.json [--e07_layout_items=N]
//     # flat-vs-blocked counter-layout comparison for Count-Min and
//     # CountSketch at LLC-busting widths: same zipf stream through both
//     # layouts' batched ingest, plus a serialize->restore round trip of
//     # the blocked sketch through the flat wire format (byte-identical
//     # re-serialize + equal estimates). CI gates the countmin speedup.
//   bench_e07_throughput --e07_concurrent_json=out.json
//                        [--e07_concurrent_items=N]
//     # concurrent-summary harness: (A) fixed-work writer ingest at
//     # 1/2/4/8 writers through the wait-free local-buffer ConcurrentSummary
//     # vs an embedded replica of the striped-lock design it replaced, and
//     # (B) reader query throughput on a dedicated thread while 0/1/2/4/8
//     # writers saturate ingest, with mean staleness sampled against an
//     # exact written-items counter. Reader throughput is reported in both
//     # wall time and thread CPU time; the CPU-time ratio is what CI gates,
//     # so an oversubscribed runner can't fake a reader stall.
//
// Every JSON document embeds a "dispatch" object (level, cpu_features,
// forced_scalar) and a "layout" object (prefetch enablement, hugepage
// grant counters) so artifacts are attributable to the hardware and
// memory-placement configuration they ran on.

#include <benchmark/benchmark.h>

#include <atomic>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <ctime>
#include <mutex>
#include <optional>
#include <span>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

#include "cardinality/hllpp.h"
#include "cardinality/hyperloglog.h"
#include "common/hugepage.h"
#include "common/layout.h"
#include "cardinality/kmv.h"
#include "distributed/concurrent/concurrent_summary.h"
#include "distributed/sharded_pipeline.h"
#include "frequency/count_min.h"
#include "frequency/count_sketch.h"
#include "frequency/misra_gries.h"
#include "frequency/space_saving.h"
#include "membership/blocked_bloom.h"
#include "membership/bloom.h"
#include "quantiles/kll.h"
#include "quantiles/mrl.h"
#include "quantiles/req.h"
#include "quantiles/tdigest.h"
#include "moments/ams.h"
#include "sampling/reservoir.h"
#include "similarity/minhash.h"
#include "simd/dispatch.h"
#include "workload/generators.h"

namespace {

std::vector<uint64_t> TestItems() {
  static const std::vector<uint64_t> items =
      gems::ZipfGenerator(1 << 20, 1.1, 42).Take(1 << 16);
  return items;
}

void BM_HyperLogLogUpdate(benchmark::State& state) {
  gems::HyperLogLog sketch(static_cast<int>(state.range(0)), 1);
  const auto items = TestItems();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(items[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HyperLogLogUpdate)->Arg(10)->Arg(14);

void BM_HllPlusPlusUpdate(benchmark::State& state) {
  gems::HllPlusPlus sketch(12, 1);
  const auto items = TestItems();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(items[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HllPlusPlusUpdate);

void BM_KmvUpdate(benchmark::State& state) {
  gems::KmvSketch sketch(1024, 1);
  const auto items = TestItems();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(items[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KmvUpdate);

void BM_BloomInsert(benchmark::State& state) {
  gems::BloomFilter filter(1 << 23, static_cast<int>(state.range(0)), 1);
  const auto items = TestItems();
  size_t i = 0;
  for (auto _ : state) {
    filter.Insert(items[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomInsert)->Arg(4)->Arg(8);

void BM_BloomQuery(benchmark::State& state) {
  gems::BloomFilter filter(1 << 23, 7, 1);
  const auto items = TestItems();
  for (size_t i = 0; i < items.size() / 2; ++i) filter.Insert(items[i]);
  size_t i = 0;
  bool sink = false;
  for (auto _ : state) {
    sink ^= filter.MayContain(items[i++ & 0xFFFF]);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomQuery);

void BM_BlockedBloomQuery(benchmark::State& state) {
  gems::BlockedBloomFilter filter(1 << 23, 8, 1);
  const auto items = TestItems();
  for (size_t i = 0; i < items.size() / 2; ++i) filter.Insert(items[i]);
  size_t i = 0;
  bool sink = false;
  for (auto _ : state) {
    sink ^= filter.MayContain(items[i++ & 0xFFFF]);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BlockedBloomQuery);

void BM_CountMinUpdate(benchmark::State& state) {
  gems::CountMinSketch sketch(4096, static_cast<uint32_t>(state.range(0)),
                              1);
  const auto items = TestItems();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(items[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountMinUpdate)->Arg(4)->Arg(8);

void BM_CountSketchUpdate(benchmark::State& state) {
  gems::CountSketch sketch(4096, 5, 1);
  const auto items = TestItems();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(items[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountSketchUpdate);

void BM_SpaceSavingUpdate(benchmark::State& state) {
  gems::SpaceSaving sketch(static_cast<size_t>(state.range(0)));
  const auto items = TestItems();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(items[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpaceSavingUpdate)->Arg(256)->Arg(4096);

void BM_MisraGriesUpdate(benchmark::State& state) {
  gems::MisraGries sketch(1024);
  const auto items = TestItems();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(items[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MisraGriesUpdate);

void BM_KllUpdate(benchmark::State& state) {
  gems::KllSketch sketch(200, 1);
  const auto values =
      gems::GenerateValues(gems::ValueDistribution::kGaussian, 1 << 16, 2);
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(values[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KllUpdate);

void BM_MrlUpdate(benchmark::State& state) {
  gems::MrlSketch sketch(10, 500);
  const auto values =
      gems::GenerateValues(gems::ValueDistribution::kGaussian, 1 << 16, 2);
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(values[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MrlUpdate);

void BM_ReqUpdate(benchmark::State& state) {
  gems::ReqSketch sketch(32, 1);
  const auto values =
      gems::GenerateValues(gems::ValueDistribution::kGaussian, 1 << 16, 2);
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(values[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReqUpdate);

void BM_MinHashUpdate(benchmark::State& state) {
  gems::MinHashSketch sketch(static_cast<uint32_t>(state.range(0)), 1);
  const auto items = TestItems();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(items[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MinHashUpdate)->Arg(64)->Arg(256);

void BM_TDigestUpdate(benchmark::State& state) {
  gems::TDigest sketch(100);
  const auto values =
      gems::GenerateValues(gems::ValueDistribution::kGaussian, 1 << 16, 2);
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(values[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TDigestUpdate);

// ---- batched ingest variants: whole-vector UpdateBatch per iteration ----

void BM_HyperLogLogUpdateBatch(benchmark::State& state) {
  gems::HyperLogLog sketch(static_cast<int>(state.range(0)), 1);
  const auto items = TestItems();
  for (auto _ : state) {
    sketch.UpdateBatch(items);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(items.size()));
}
BENCHMARK(BM_HyperLogLogUpdateBatch)->Arg(10)->Arg(14);

void BM_HllPlusPlusUpdateBatch(benchmark::State& state) {
  gems::HllPlusPlus sketch(12, 1);
  const auto items = TestItems();
  for (auto _ : state) {
    sketch.UpdateBatch(items);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(items.size()));
}
BENCHMARK(BM_HllPlusPlusUpdateBatch);

void BM_KmvUpdateBatch(benchmark::State& state) {
  gems::KmvSketch sketch(1024, 1);
  const auto items = TestItems();
  for (auto _ : state) {
    sketch.UpdateBatch(items);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(items.size()));
}
BENCHMARK(BM_KmvUpdateBatch);

void BM_BloomInsertBatch(benchmark::State& state) {
  gems::BloomFilter filter(1 << 23, static_cast<int>(state.range(0)), 1);
  const auto items = TestItems();
  for (auto _ : state) {
    filter.InsertBatch(items);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(items.size()));
}
BENCHMARK(BM_BloomInsertBatch)->Arg(4)->Arg(8);

void BM_CountMinUpdateBatch(benchmark::State& state) {
  gems::CountMinSketch sketch(4096, static_cast<uint32_t>(state.range(0)),
                              1);
  const auto items = TestItems();
  for (auto _ : state) {
    sketch.UpdateBatch(items);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(items.size()));
}
BENCHMARK(BM_CountMinUpdateBatch)->Arg(4)->Arg(8);

void BM_CountSketchUpdateBatch(benchmark::State& state) {
  gems::CountSketch sketch(4096, 5, 1);
  const auto items = TestItems();
  for (auto _ : state) {
    sketch.UpdateBatch(items);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(items.size()));
}
BENCHMARK(BM_CountSketchUpdateBatch);

void BM_SpaceSavingUpdateBatch(benchmark::State& state) {
  gems::SpaceSaving sketch(static_cast<size_t>(state.range(0)));
  const auto items = TestItems();
  for (auto _ : state) {
    sketch.UpdateBatch(items);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(items.size()));
}
BENCHMARK(BM_SpaceSavingUpdateBatch)->Arg(256)->Arg(4096);

void BM_KllUpdateBatch(benchmark::State& state) {
  gems::KllSketch sketch(200, 1);
  const auto values =
      gems::GenerateValues(gems::ValueDistribution::kGaussian, 1 << 16, 2);
  for (auto _ : state) {
    sketch.UpdateBatch(values);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(values.size()));
}
BENCHMARK(BM_KllUpdateBatch);

void BM_HyperLogLogMerge(benchmark::State& state) {
  gems::HyperLogLog a(12, 1), b(12, 1);
  for (uint64_t item : gems::DistinctItems(100000, 3)) b.Update(item);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Merge(b));
  }
}
BENCHMARK(BM_HyperLogLogMerge);

void BM_HyperLogLogSerialize(benchmark::State& state) {
  gems::HyperLogLog sketch(12, 1);
  for (uint64_t item : gems::DistinctItems(100000, 3)) sketch.Update(item);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.Serialize());
  }
}
BENCHMARK(BM_HyperLogLogSerialize);

// ------------------- batched vs per-item JSON comparison -------------------
//
// A deterministic chrono harness (no google-benchmark adaptivity) so CI can
// assert on the output: for each hot sketch, ingest the same stream once
// per item and once through the batch fast path, best of `kReps` runs.

constexpr int kReps = 3;
constexpr size_t kChunk = 4096;

template <typename Fn>
double BestSeconds(Fn&& fn) {
  double best = 1e100;
  for (int r = 0; r < kReps; ++r) {
    const auto t0 = std::chrono::steady_clock::now();
    fn();
    const auto t1 = std::chrono::steady_clock::now();
    best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
  }
  return best;
}

struct Comparison {
  const char* sketch;
  double per_item_mops;
  double batched_mops;
  double speedup;
};

// Times `make()` sketches fed the whole stream per-item vs in kChunk-item
// batches; a fresh sketch per repetition so both sides see identical state.
template <typename Make, typename PerItem, typename Batch>
Comparison Compare(const char* name, const std::vector<uint64_t>& items,
                   Make make, PerItem per_item, Batch batch) {
  const double seq = BestSeconds([&] {
    auto sketch = make();
    for (uint64_t item : items) per_item(sketch, item);
    benchmark::DoNotOptimize(sketch);
  });
  const double bat = BestSeconds([&] {
    auto sketch = make();
    std::span<const uint64_t> span(items);
    for (size_t off = 0; off < span.size(); off += kChunk) {
      batch(sketch, span.subspan(off, std::min(kChunk, span.size() - off)));
    }
    benchmark::DoNotOptimize(sketch);
  });
  const double n = static_cast<double>(items.size());
  return Comparison{name, n / seq / 1e6, n / bat / 1e6, seq / bat};
}

int RunBatchedComparison(const std::string& json_path, size_t num_items) {
  // Per-family representative workloads: cardinality/membership sketches
  // see the distinct-heavy keys of a bulk load (their hard case), while
  // frequency sketches see the skewed stream they exist to summarize.
  const std::vector<uint64_t> items = gems::DistinctItems(num_items, 42);
  const std::vector<uint64_t> zipf =
      gems::ZipfGenerator(1 << 20, 1.1, 42).Take(num_items);
  std::vector<Comparison> results;

  results.push_back(Compare(
      "hyperloglog", items, [] { return gems::HyperLogLog(12, 1); },
      [](gems::HyperLogLog& s, uint64_t x) { s.Update(x); },
      [](gems::HyperLogLog& s, std::span<const uint64_t> b) {
        s.UpdateBatch(b);
      }));
  results.push_back(Compare(
      "hllpp", items, [] { return gems::HllPlusPlus(12, 1); },
      [](gems::HllPlusPlus& s, uint64_t x) { s.Update(x); },
      [](gems::HllPlusPlus& s, std::span<const uint64_t> b) {
        s.UpdateBatch(b);
      }));
  results.push_back(Compare(
      "kmv", items, [] { return gems::KmvSketch(1024, 1); },
      [](gems::KmvSketch& s, uint64_t x) { s.Update(x); },
      [](gems::KmvSketch& s, std::span<const uint64_t> b) {
        s.UpdateBatch(b);
      }));
  results.push_back(Compare(
      "countmin", zipf, [] { return gems::CountMinSketch(4096, 4, 1); },
      [](gems::CountMinSketch& s, uint64_t x) { s.Update(x); },
      [](gems::CountMinSketch& s, std::span<const uint64_t> b) {
        s.UpdateBatch(b);
      }));
  results.push_back(Compare(
      "countsketch", zipf, [] { return gems::CountSketch(4096, 5, 1); },
      [](gems::CountSketch& s, uint64_t x) { s.Update(x); },
      [](gems::CountSketch& s, std::span<const uint64_t> b) {
        s.UpdateBatch(b);
      }));
  results.push_back(Compare(
      "spacesaving", zipf, [] { return gems::SpaceSaving(4096); },
      [](gems::SpaceSaving& s, uint64_t x) { s.Update(x); },
      [](gems::SpaceSaving& s, std::span<const uint64_t> b) {
        s.UpdateBatch(b);
      }));
  results.push_back(Compare(
      "bloom", items, [] { return gems::BloomFilter(1 << 23, 7, 1); },
      [](gems::BloomFilter& s, uint64_t x) { s.Insert(x); },
      [](gems::BloomFilter& s, std::span<const uint64_t> b) {
        s.InsertBatch(b);
      }));
  results.push_back(Compare(
      "blocked_bloom", items,
      [] { return gems::BlockedBloomFilter(1 << 23, 8, 1); },
      [](gems::BlockedBloomFilter& s, uint64_t x) { s.Insert(x); },
      [](gems::BlockedBloomFilter& s, std::span<const uint64_t> b) {
        s.InsertBatch(b);
      }));
  results.push_back(Compare(
      "reservoir", items, [] { return gems::ReservoirSampler(1024, 1); },
      [](gems::ReservoirSampler& s, uint64_t x) { s.Update(x); },
      [](gems::ReservoirSampler& s, std::span<const uint64_t> b) {
        s.UpdateBatch(b);
      }));
  // KLL ingests doubles; reuse the item stream as values.
  {
    std::vector<double> values;
    values.reserve(items.size());
    for (uint64_t item : items) {
      values.push_back(static_cast<double>(item % 1000000));
    }
    const double seq = BestSeconds([&] {
      gems::KllSketch sketch(200, 1);
      for (double v : values) sketch.Update(v);
      benchmark::DoNotOptimize(sketch);
    });
    const double bat = BestSeconds([&] {
      gems::KllSketch sketch(200, 1);
      std::span<const double> span(values);
      for (size_t off = 0; off < span.size(); off += kChunk) {
        sketch.UpdateBatch(
            span.subspan(off, std::min(kChunk, span.size() - off)));
      }
      benchmark::DoNotOptimize(sketch);
    });
    const double n = static_cast<double>(values.size());
    results.push_back(Comparison{"kll", n / seq / 1e6, n / bat / 1e6,
                                 seq / bat});
  }

  std::string json = "{\n  \"bench\": \"e07_batched_vs_per_item\",\n";
  json += "  \"items\": " + std::to_string(num_items) + ",\n";
  json += "  \"chunk\": " + std::to_string(kChunk) + ",\n";
  json += "  \"dispatch\": " + gems::simd::DispatchJson() + ",\n";
  json += "  \"layout\": " + gems::LayoutJson() + ",\n";
  json += "  \"results\": [\n";
  char line[256];
  for (size_t i = 0; i < results.size(); ++i) {
    const Comparison& c = results[i];
    std::snprintf(line, sizeof(line),
                  "    {\"sketch\": \"%s\", \"per_item_mops\": %.2f, "
                  "\"batched_mops\": %.2f, \"speedup\": %.2f}%s\n",
                  c.sketch, c.per_item_mops, c.batched_mops, c.speedup,
                  i + 1 < results.size() ? "," : "");
    json += line;
  }
  json += "  ]\n}\n";

  std::fputs(json.c_str(), stdout);
  std::FILE* f = std::fopen(json_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  return std::fclose(f) == 0 ? 0 : 1;
}

// ----------------- scalar-vs-dispatched kernel comparison -----------------
//
// Three configurations per sketch, which separate the two claims bundled
// into "batched ingest is faster": (1) per_item — the scalar Update() loop
// a caller without batching writes; (2) batched_scalar — UpdateBatch with
// the kernel table pinned to the scalar reference (the batching win alone:
// hash hoisting, modulo strength reduction, loop structure); (3)
// batched_simd — UpdateBatch under the startup dispatch choice.
// `simd_speedup` is (3)/(2), the vector kernels' own contribution;
// `batched_ingest_speedup` is (3)/(1), the end-to-end win over scalar
// per-item ingest — the quantity the CI bench-smoke job gates at 1.5x for
// hyperloglog and countmin. All three configs run identical sketch code
// outside the kernel table, and bit identity means they produce the same
// sketch, so a speedup can never come from a wrong answer.

struct SimdRow {
  const char* sketch;
  double per_item_mops;
  double batched_scalar_mops;
  double batched_simd_mops;
  double simd_speedup;            // batched_simd / batched_scalar
  double batched_ingest_speedup;  // batched_simd / per_item
};

template <typename Make, typename PerItem, typename Batch>
SimdRow CompareSimd(const char* name, const std::vector<uint64_t>& items,
                    Make make, PerItem per_item, Batch batch) {
  const auto run_batched = [&] {
    auto sketch = make();
    std::span<const uint64_t> span(items);
    for (size_t off = 0; off < span.size(); off += kChunk) {
      batch(sketch, span.subspan(off, std::min(kChunk, span.size() - off)));
    }
    benchmark::DoNotOptimize(sketch);
  };
  gems::simd::ForceScalarForTesting(true);
  const double seq = BestSeconds([&] {
    auto sketch = make();
    for (uint64_t item : items) per_item(sketch, item);
    benchmark::DoNotOptimize(sketch);
  });
  const double scalar = BestSeconds(run_batched);
  gems::simd::ForceScalarForTesting(false);
  const double dispatched = BestSeconds(run_batched);
  const double n = static_cast<double>(items.size());
  return SimdRow{name,
                 n / seq / 1e6,
                 n / scalar / 1e6,
                 n / dispatched / 1e6,
                 scalar / dispatched,
                 seq / dispatched};
}

int RunSimdComparison(const std::string& json_path, size_t num_items) {
  const std::vector<uint64_t> items = gems::DistinctItems(num_items, 42);
  const std::vector<uint64_t> zipf =
      gems::ZipfGenerator(1 << 20, 1.1, 42).Take(num_items);
  std::vector<SimdRow> rows;

  rows.push_back(CompareSimd(
      "hyperloglog", items, [] { return gems::HyperLogLog(12, 1); },
      [](gems::HyperLogLog& s, uint64_t x) { s.Update(x); },
      [](gems::HyperLogLog& s, std::span<const uint64_t> b) {
        s.UpdateBatch(b);
      }));
  rows.push_back(CompareSimd(
      "countmin", zipf, [] { return gems::CountMinSketch(4096, 4, 1); },
      [](gems::CountMinSketch& s, uint64_t x) { s.Update(x); },
      [](gems::CountMinSketch& s, std::span<const uint64_t> b) {
        s.UpdateBatch(b);
      }));
  rows.push_back(CompareSimd(
      "countsketch", zipf, [] { return gems::CountSketch(4096, 5, 1); },
      [](gems::CountSketch& s, uint64_t x) { s.Update(x); },
      [](gems::CountSketch& s, std::span<const uint64_t> b) {
        s.UpdateBatch(b);
      }));
  rows.push_back(CompareSimd(
      "bloom", items, [] { return gems::BloomFilter(1 << 23, 7, 1); },
      [](gems::BloomFilter& s, uint64_t x) { s.Insert(x); },
      [](gems::BloomFilter& s, std::span<const uint64_t> b) {
        s.InsertBatch(b);
      }));
  rows.push_back(CompareSimd(
      "blocked_bloom", items,
      [] { return gems::BlockedBloomFilter(1 << 23, 8, 1); },
      [](gems::BlockedBloomFilter& s, uint64_t x) { s.Insert(x); },
      [](gems::BlockedBloomFilter& s, std::span<const uint64_t> b) {
        s.InsertBatch(b);
      }));
  rows.push_back(CompareSimd(
      "minhash", items, [] { return gems::MinHashSketch(64, 1); },
      [](gems::MinHashSketch& s, uint64_t x) { s.Update(x); },
      [](gems::MinHashSketch& s, std::span<const uint64_t> b) {
        s.UpdateBatch(b);
      }));
  // AMS's batch path is pure field arithmetic with no vector kernel, so
  // its row is the ~1.0x simd_speedup control: it shows what the harness
  // reports when dispatch genuinely does not matter.
  rows.push_back(CompareSimd(
      "ams", zipf, [] { return gems::AmsSketch(16, 5, 1); },
      [](gems::AmsSketch& s, uint64_t x) { s.Update(x); },
      [](gems::AmsSketch& s, std::span<const uint64_t> b) {
        s.UpdateBatch(b);
      }));

  std::string json = "{\n  \"bench\": \"e07_simd_vs_scalar\",\n";
  json += "  \"items\": " + std::to_string(num_items) + ",\n";
  json += "  \"chunk\": " + std::to_string(kChunk) + ",\n";
  json += "  \"dispatch\": " + gems::simd::DispatchJson() + ",\n";
  json += "  \"layout\": " + gems::LayoutJson() + ",\n";
  json += "  \"results\": [\n";
  char line[320];
  for (size_t i = 0; i < rows.size(); ++i) {
    const SimdRow& row = rows[i];
    std::snprintf(line, sizeof(line),
                  "    {\"sketch\": \"%s\", \"per_item_mops\": %.2f, "
                  "\"batched_scalar_mops\": %.2f, "
                  "\"batched_simd_mops\": %.2f, \"simd_speedup\": %.2f, "
                  "\"batched_ingest_speedup\": %.2f}%s\n",
                  row.sketch, row.per_item_mops, row.batched_scalar_mops,
                  row.batched_simd_mops, row.simd_speedup,
                  row.batched_ingest_speedup, i + 1 < rows.size() ? "," : "");
    json += line;
  }
  json += "  ]\n}\n";

  std::fputs(json.c_str(), stdout);
  std::FILE* f = std::fopen(json_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  return std::fclose(f) == 0 ? 0 : 1;
}

// ----------------- flat vs blocked counter-layout harness -----------------
//
// The memory-layout claim in isolation: the same zipf stream through the
// same sketch at an LLC-busting width, once in the classic flat row-major
// layout (depth cache lines touched per item) and once in the blocked
// layout (all depth counters in one 64-byte block — one line per item).
// Both sides run the identical UpdateBatch entry point; only the layout
// tag passed to the constructor differs. The round-trip leg then pushes
// the blocked sketch through the flat wire format (serialize -> restore)
// and checks byte-identical re-serialization plus equal estimates over a
// probe sample, so the layout can never buy speed by changing answers.

struct LayoutRow {
  const char* sketch;
  double flat_mops;
  double blocked_mops;
  double speedup;  // flat_seconds / blocked_seconds.
  bool round_trip_ok;
};

template <typename Make, typename Est>
auto CompareLayout(const char* name, Make make,
                   const std::vector<uint64_t>& items, Est est) -> LayoutRow {
  using S = decltype(make(gems::SketchLayout::kFlat));
  const auto ingest = [&](S& sketch) {
    std::span<const uint64_t> span(items);
    for (size_t off = 0; off < span.size(); off += kChunk) {
      sketch.UpdateBatch(
          span.subspan(off, std::min(kChunk, span.size() - off)));
    }
    benchmark::DoNotOptimize(sketch);
  };
  const double flat = BestSeconds([&] {
    S sketch = make(gems::SketchLayout::kFlat);
    ingest(sketch);
  });
  const double blocked = BestSeconds([&] {
    S sketch = make(gems::SketchLayout::kBlocked);
    ingest(sketch);
  });

  S sketch = make(gems::SketchLayout::kBlocked);
  ingest(sketch);
  const std::vector<uint8_t> bytes = sketch.Serialize();
  bool round_trip_ok = false;
  if (auto restored = S::Deserialize(bytes); restored.ok()) {
    round_trip_ok = restored.value().layout() == gems::SketchLayout::kBlocked &&
                    restored.value().Serialize() == bytes;
    for (size_t i = 0; round_trip_ok && i < 256; ++i) {
      const uint64_t probe = items[(i * 8191) % items.size()];
      round_trip_ok = est(restored.value(), probe) == est(sketch, probe);
    }
  }
  const double n = static_cast<double>(items.size());
  return LayoutRow{name, n / flat / 1e6, n / blocked / 1e6, flat / blocked,
                   round_trip_ok};
}

int RunLayoutComparison(const std::string& json_path, size_t num_items) {
  // Width 2^20 x depth 4 = 32 MiB of counters — far past the LLC, so the
  // flat layout pays ~depth cache misses per item and blocked pays ~one.
  // Depth 4 also fills the block exactly (2 columns x 4 rows x 8 bytes).
  constexpr uint32_t kWidth = 1 << 20;
  constexpr uint32_t kDepth = 4;
  const std::vector<uint64_t> zipf =
      gems::ZipfGenerator(1 << 20, 1.1, 42).Take(num_items);

  std::vector<LayoutRow> rows;
  rows.push_back(CompareLayout(
      "countmin",
      [&](gems::SketchLayout layout) {
        return gems::CountMinSketch(kWidth, kDepth, /*seed=*/1,
                                    /*conservative_update=*/false, layout);
      },
      zipf,
      [](const gems::CountMinSketch& s, uint64_t item) {
        return s.Estimate(item);
      }));
  rows.push_back(CompareLayout(
      "countsketch",
      [&](gems::SketchLayout layout) {
        return gems::CountSketch(kWidth, kDepth, /*seed=*/1, layout);
      },
      zipf,
      [](const gems::CountSketch& s, uint64_t item) {
        return s.Estimate(item);
      }));

  std::string json = "{\n  \"bench\": \"e07_layout\",\n";
  json += "  \"items\": " + std::to_string(num_items) + ",\n";
  json += "  \"chunk\": " + std::to_string(kChunk) + ",\n";
  json += "  \"width\": " + std::to_string(kWidth) + ",\n";
  json += "  \"depth\": " + std::to_string(kDepth) + ",\n";
  json += "  \"dispatch\": " + gems::simd::DispatchJson() + ",\n";
  json += "  \"layout\": " + gems::LayoutJson() + ",\n";
  json += "  \"results\": [\n";
  char line[256];
  for (size_t i = 0; i < rows.size(); ++i) {
    const LayoutRow& row = rows[i];
    std::snprintf(line, sizeof(line),
                  "    {\"sketch\": \"%s\", \"flat_mops\": %.2f, "
                  "\"blocked_mops\": %.2f, \"speedup\": %.2f, "
                  "\"round_trip_ok\": %s}%s\n",
                  row.sketch, row.flat_mops, row.blocked_mops, row.speedup,
                  row.round_trip_ok ? "true" : "false",
                  i + 1 < rows.size() ? "," : "");
    json += line;
  }
  json += "  ]\n}\n";

  std::fputs(json.c_str(), stdout);
  std::FILE* f = std::fopen(json_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  return std::fclose(f) == 0 ? 0 : 1;
}

// ------------------------- thread-scaling harness -------------------------
//
// Single-thread batched ingest (the PR 2 fast path) vs the ShardedPipeline
// at power-of-two worker counts up to the hardware concurrency, for the
// four hot families. Workers are pinned (first-touch shard placement +
// affinity) and the achieved pin count is part of each row's provenance.

struct ScalingRow {
  const char* sketch;
  size_t workers;
  size_t pinned;  // workers the OS actually let us pin (0 for the baseline).
  double mops;
  double speedup;  // vs this sketch's 1-worker batched baseline.
};

// Power-of-two worker counts up to the hardware concurrency, always
// including the hardware concurrency itself (so a 12-core box reports
// 2/4/8/12 and CI's 2-core runner still reports 2).
std::vector<size_t> ScalingWorkerCounts() {
  const size_t hw =
      std::max<size_t>(2, std::thread::hardware_concurrency());
  std::vector<size_t> counts;
  for (size_t w = 2; w < hw; w *= 2) counts.push_back(w);
  counts.push_back(hw);
  return counts;
}

template <typename S>
void FeedChunk(S& sketch,
               std::span<const typename gems::ShardedPipeline<S>::Item> b) {
  if constexpr (gems::BatchItemSummary<S>) {
    sketch.UpdateBatch(b);
  } else if constexpr (gems::BatchInsertableSummary<S>) {
    sketch.InsertBatch(b);
  } else {
    sketch.UpdateBatch(b);
  }
}

template <typename S>
void ScaleSketch(
    const char* name, const S& prototype,
    const std::vector<typename gems::ShardedPipeline<S>::Item>& stream,
    std::vector<ScalingRow>* rows) {
  using Item = typename gems::ShardedPipeline<S>::Item;
  const std::span<const Item> span(stream);
  const double n = static_cast<double>(stream.size());

  const double base = BestSeconds([&] {
    S sketch = prototype;
    for (size_t off = 0; off < span.size(); off += kChunk) {
      FeedChunk(sketch,
                span.subspan(off, std::min(kChunk, span.size() - off)));
    }
    benchmark::DoNotOptimize(sketch);
  });
  rows->push_back({name, 1, 0, n / base / 1e6, 1.0});

  for (const size_t workers : ScalingWorkerCounts()) {
    double best = 1e100;
    size_t pinned = 0;
    for (int r = 0; r < kReps; ++r) {
      // The pool spins up (and the shards get their first-touch + pinned
      // placement) outside the timed region; Push + Finish is the
      // steady-state cost a stream engine would pay.
      gems::ShardedPipeline<S> pipeline(prototype,
                                        {.num_workers = workers,
                                         .chunk_items = kChunk,
                                         .pin_workers = true});
      pinned = pipeline.pinned_workers();
      const auto t0 = std::chrono::steady_clock::now();
      pipeline.Push(span);
      auto root = pipeline.Finish();
      const auto t1 = std::chrono::steady_clock::now();
      benchmark::DoNotOptimize(root);
      best = std::min(best, std::chrono::duration<double>(t1 - t0).count());
    }
    rows->push_back({name, workers, pinned, n / best / 1e6, base / best});
  }
}

int RunThreadScaling(const std::string& json_path, size_t num_items) {
  const std::vector<uint64_t> items = gems::DistinctItems(num_items, 42);
  const std::vector<uint64_t> zipf =
      gems::ZipfGenerator(1 << 20, 1.1, 42).Take(num_items);
  std::vector<double> values;
  values.reserve(items.size());
  for (uint64_t item : items) {
    values.push_back(static_cast<double>(item % 1000000));
  }

  std::vector<ScalingRow> rows;
  ScaleSketch("hyperloglog", gems::HyperLogLog(12, 1), items, &rows);
  ScaleSketch("countmin", gems::CountMinSketch(4096, 4, 1), zipf, &rows);
  ScaleSketch("bloom", gems::BloomFilter(1 << 23, 7, 1), items, &rows);
  ScaleSketch("kll", gems::KllSketch(200, 1), values, &rows);

  std::string json = "{\n  \"bench\": \"e07_thread_scaling\",\n";
  json += "  \"items\": " + std::to_string(num_items) + ",\n";
  json += "  \"chunk\": " + std::to_string(kChunk) + ",\n";
  json += "  \"hw_concurrency\": " +
          std::to_string(std::thread::hardware_concurrency()) + ",\n";
  json += "  \"pin_workers\": true,\n";
  json += "  \"dispatch\": " + gems::simd::DispatchJson() + ",\n";
  json += "  \"layout\": " + gems::LayoutJson() + ",\n";
  json += "  \"results\": [\n";
  char line[256];
  for (size_t i = 0; i < rows.size(); ++i) {
    const ScalingRow& row = rows[i];
    std::snprintf(line, sizeof(line),
                  "    {\"sketch\": \"%s\", \"workers\": %zu, "
                  "\"pinned_workers\": %zu, \"mops\": %.2f, "
                  "\"speedup\": %.2f}%s\n",
                  row.sketch, row.workers, row.pinned, row.mops,
                  row.speedup, i + 1 < rows.size() ? "," : "");
    json += line;
  }
  json += "  ]\n}\n";

  std::fputs(json.c_str(), stdout);
  std::FILE* f = std::fopen(json_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  return std::fclose(f) == 0 ? 0 : 1;
}

// ----------------- concurrent wait-free summary harness -----------------
//
// Two phases, both answering questions the unit tests can't:
//
//   Phase A (writer ingest): the same fixed item stream split evenly
//   across 1/2/4/8 writer threads, pushed per-item through (a) the
//   wait-free local-buffer ConcurrentSummary and (b) StripedLockSummary,
//   an embedded replica of the lock-per-update striped design this PR
//   replaced. The striped replica even gets its best case — one stripe
//   per writer, so its locks are uncontended — and the buffered design
//   must still win on the strength of batch-drained local sketches alone.
//
//   Phase B (reader under load): a dedicated reader thread runs a fixed
//   number of wait-free queries while 0 (idle) / 1 / 2 / 4 / 8 writers
//   saturate ingest with distinct items. Writers maintain an exact
//   written-items counter so the reader can sample staleness: the
//   fraction of written items not yet visible in Estimate(). Reader
//   throughput is recorded against wall time and CLOCK_THREAD_CPUTIME_ID;
//   the CPU-time ratio is the CI gate because on a small shared runner 9
//   runnable threads oversubscribe the cores, and wall time then measures
//   the scheduler, not the read path.

// Replica of the striped-lock ConcurrentSummary that
// src/distributed/concurrent/ replaced, kept verbatim-in-spirit as the
// bench baseline: per-thread stripe selected by a first-touch round-robin
// token, one mutex acquisition per update, merge-on-read snapshot.
template <typename S>
class StripedLockSummary {
 public:
  StripedLockSummary(const S& prototype, size_t num_stripes)
      : stripes_(RoundUpPow2(num_stripes)) {
    for (Stripe& stripe : stripes_) stripe.summary.emplace(prototype);
  }

  void Update(uint64_t item) {
    Stripe& stripe = stripes_[StripeIndex()];
    std::lock_guard<std::mutex> lock(stripe.mutex);
    stripe.summary->Update(item);
  }

  S Snapshot() const {
    S merged = [&] {
      std::lock_guard<std::mutex> lock(stripes_[0].mutex);
      return *stripes_[0].summary;
    }();
    for (size_t i = 1; i < stripes_.size(); ++i) {
      std::lock_guard<std::mutex> lock(stripes_[i].mutex);
      (void)merged.Merge(*stripes_[i].summary);
    }
    return merged;
  }

 private:
  struct Stripe {
    mutable std::mutex mutex;
    std::optional<S> summary;
  };

  static size_t RoundUpPow2(size_t n) {
    size_t rounded = 1;
    while (rounded < n) rounded <<= 1;
    return rounded;
  }

  size_t StripeIndex() const {
    static std::atomic<size_t> next_token{0};
    thread_local const size_t token =
        next_token.fetch_add(1, std::memory_order_relaxed);
    return token & (stripes_.size() - 1);
  }

  std::vector<Stripe> stripes_;
};

struct ConcurrentWriterRow {
  const char* sketch;
  size_t writers;
  double concurrent_writer_mops;
  double striped_writer_mops;
  double writer_speedup;  // concurrent / striped.
};

// Fixed total work: `items` split evenly across the writers, per-item
// Update() on both designs (the contended path the rewrite targets; both
// keep batch entry points, which phase B's writers exercise via the drain).
// Each timed run ends with a Snapshot() so the concurrent side pays for
// its exit-hook folds and final publish inside the measurement.
template <typename S>
void ConcurrentWriterScale(const char* name, const S& prototype,
                           const std::vector<uint64_t>& items,
                           std::vector<ConcurrentWriterRow>* rows) {
  const double n = static_cast<double>(items.size());
  for (const size_t writers :
       {size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    const size_t per = items.size() / writers;
    const auto run_writers = [&](auto& live) {
      std::vector<std::thread> threads;
      threads.reserve(writers);
      for (size_t w = 0; w < writers; ++w) {
        threads.emplace_back([&live, &items, per, writers, w] {
          const size_t begin = w * per;
          const size_t end =
              w + 1 == writers ? items.size() : begin + per;
          for (size_t i = begin; i < end; ++i) live.Update(items[i]);
        });
      }
      for (std::thread& t : threads) t.join();
    };
    const double concurrent = BestSeconds([&] {
      gems::ConcurrentSummary<S> live(prototype);
      run_writers(live);
      auto snapshot = live.Snapshot();
      benchmark::DoNotOptimize(snapshot);
    });
    const double striped = BestSeconds([&] {
      StripedLockSummary<S> live(prototype, writers);
      run_writers(live);
      S snapshot = live.Snapshot();
      benchmark::DoNotOptimize(snapshot);
    });
    rows->push_back({name, writers, n / concurrent / 1e6,
                     n / striped / 1e6, striped / concurrent});
  }
}

struct ConcurrentReaderRow {
  const char* sketch;
  size_t writers;
  double reader_mops;           // wall-clock queries/sec.
  double reader_cpu_mops;       // thread-CPU-time queries/sec.
  double reader_vs_idle;        // wall, vs this sketch's writers:0 row.
  double reader_vs_idle_cpu;    // CPU time, vs writers:0 — the CI gate.
  double staleness_frac_mean;   // mean (written - visible)/written, >= 0.
};

double ThreadCpuSeconds() {
  timespec ts{};
  clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts);
  return static_cast<double>(ts.tv_sec) +
         static_cast<double>(ts.tv_nsec) * 1e-9;
}

// One sketch's reader-under-load sweep. `read(live)` is the wait-free
// query under test and must return a double so the sum can't be
// dead-code-eliminated. Writers push globally distinct items (per-writer
// high bits, sequential low bits) so for HLL the exact written counter is
// also the true cardinality and staleness is directly observable; the
// counter only includes full 1024-item blocks, so it never runs ahead of
// what the writer actually called Update() with.
template <typename S, typename ReadFn>
void ConcurrentReaderUnderLoad(const char* name, const S& prototype,
                               ReadFn read, bool track_staleness,
                               size_t reader_iters,
                               std::vector<ConcurrentReaderRow>* rows) {
  double idle_wall_mops = 0.0;
  double idle_cpu_mops = 0.0;
  for (const size_t writers :
       {size_t{0}, size_t{1}, size_t{2}, size_t{4}, size_t{8}}) {
    gems::ConcurrentSummary<S> live(prototype);
    // Idle rows still read a populated sketch, not a freshly-zeroed one.
    for (uint64_t i = 0; i < 4096; ++i) live.Update(~uint64_t{0} - i);
    live.FlushLocal();

    std::atomic<bool> stop{false};
    std::atomic<uint64_t> written{0};
    std::vector<std::thread> threads;
    threads.reserve(writers);
    for (size_t w = 0; w < writers; ++w) {
      threads.emplace_back([&live, &stop, &written, w] {
        const uint64_t base = (w + 1) << 40;
        uint64_t i = 0;
        while (!stop.load(std::memory_order_relaxed)) {
          for (int k = 0; k < 1024; ++k) live.Update(base + i++);
          written.fetch_add(1024, std::memory_order_relaxed);
        }
      });
    }
    if (writers > 0) {
      // Let the first propagation land so staleness samples measure the
      // steady state, not startup.
      const uint64_t start_epoch = live.epoch();
      while (live.epoch() == start_epoch) std::this_thread::yield();
    }

    double best_wall = 1e100;
    double best_cpu = 1e100;
    double staleness_sum = 0.0;
    size_t staleness_samples = 0;
    for (int r = 0; r < kReps; ++r) {
      const auto t0 = std::chrono::steady_clock::now();
      const double c0 = ThreadCpuSeconds();
      double sum = 0.0;
      for (size_t i = 0; i < reader_iters; ++i) {
        sum += read(live);
        if constexpr (gems::EstimableSummary<S>) {
          if (track_staleness && writers > 0 && (i & 0xFFF) == 0) {
            const double w = static_cast<double>(
                written.load(std::memory_order_relaxed));
            if (w > 0) {
              const double lag = (w - live.Estimate()) / w;
              staleness_sum += lag > 0 ? lag : 0.0;
              ++staleness_samples;
            }
          }
        }
      }
      benchmark::DoNotOptimize(sum);
      const double cpu = ThreadCpuSeconds() - c0;
      const double wall = std::chrono::duration<double>(
                              std::chrono::steady_clock::now() - t0)
                              .count();
      best_wall = std::min(best_wall, wall);
      best_cpu = std::min(best_cpu, cpu);
    }
    stop.store(true, std::memory_order_relaxed);
    for (std::thread& t : threads) t.join();

    const double n = static_cast<double>(reader_iters);
    const double wall_mops = n / best_wall / 1e6;
    const double cpu_mops = n / best_cpu / 1e6;
    if (writers == 0) {
      idle_wall_mops = wall_mops;
      idle_cpu_mops = cpu_mops;
    }
    rows->push_back(
        {name, writers, wall_mops, cpu_mops, wall_mops / idle_wall_mops,
         cpu_mops / idle_cpu_mops,
         staleness_samples > 0 ? staleness_sum / staleness_samples : 0.0});
  }
}

int RunConcurrentBench(const std::string& json_path, size_t num_items) {
  const std::vector<uint64_t> items = gems::DistinctItems(num_items, 42);
  const std::vector<uint64_t> zipf =
      gems::ZipfGenerator(1 << 20, 1.1, 42).Take(num_items);

  std::vector<ConcurrentWriterRow> writer_rows;
  ConcurrentWriterScale("hyperloglog", gems::HyperLogLog(12, 1), items,
                        &writer_rows);
  ConcurrentWriterScale("countmin", gems::CountMinSketch(4096, 4, 1), zipf,
                        &writer_rows);

  std::vector<ConcurrentReaderRow> reader_rows;
  // HLL readers take the cached-estimate path: one atomic load per query.
  // This is the gated row — it must stay within 20% of idle (CPU time)
  // with 8 writers saturating ingest.
  ConcurrentReaderUnderLoad(
      "hyperloglog", gems::HyperLogLog(12, 1),
      [](const gems::ConcurrentSummary<gems::HyperLogLog>& live) {
        return live.Estimate();
      },
      /*track_staleness=*/true, /*reader_iters=*/std::min(num_items * 16,
                                                          size_t{1} << 25),
      &reader_rows);
  // Count-Min readers take the pinned-epoch Query path (point estimate of
  // one probe key) — the heavier read that actually touches the published
  // buffer. Informational: pin/unpin traffic is the cost being observed.
  const uint64_t probe = zipf[0];
  ConcurrentReaderUnderLoad(
      "countmin", gems::CountMinSketch(4096, 4, 1),
      [probe](const gems::ConcurrentSummary<gems::CountMinSketch>& live) {
        return live.Query([probe](const gems::CountMinSketch& s) {
          return static_cast<double>(s.Estimate(probe));
        });
      },
      /*track_staleness=*/false, /*reader_iters=*/std::min(num_items * 2,
                                                           size_t{1} << 22),
      &reader_rows);

  std::string json = "{\n  \"bench\": \"e07_concurrent\",\n";
  json += "  \"items\": " + std::to_string(num_items) + ",\n";
  json += "  \"dispatch\": " + gems::simd::DispatchJson() + ",\n";
  json += "  \"layout\": " + gems::LayoutJson() + ",\n";
  json += "  \"writer_results\": [\n";
  char line[320];
  for (size_t i = 0; i < writer_rows.size(); ++i) {
    const ConcurrentWriterRow& row = writer_rows[i];
    std::snprintf(line, sizeof(line),
                  "    {\"sketch\": \"%s\", \"writers\": %zu, "
                  "\"concurrent_writer_mops\": %.2f, "
                  "\"striped_writer_mops\": %.2f, "
                  "\"writer_speedup\": %.2f}%s\n",
                  row.sketch, row.writers, row.concurrent_writer_mops,
                  row.striped_writer_mops, row.writer_speedup,
                  i + 1 < writer_rows.size() ? "," : "");
    json += line;
  }
  json += "  ],\n  \"reader_results\": [\n";
  for (size_t i = 0; i < reader_rows.size(); ++i) {
    const ConcurrentReaderRow& row = reader_rows[i];
    std::snprintf(line, sizeof(line),
                  "    {\"sketch\": \"%s\", \"writers\": %zu, "
                  "\"reader_mops\": %.2f, \"reader_cpu_mops\": %.2f, "
                  "\"reader_vs_idle\": %.3f, "
                  "\"reader_vs_idle_cpu\": %.3f, "
                  "\"staleness_frac_mean\": %.4f}%s\n",
                  row.sketch, row.writers, row.reader_mops,
                  row.reader_cpu_mops, row.reader_vs_idle,
                  row.reader_vs_idle_cpu, row.staleness_frac_mean,
                  i + 1 < reader_rows.size() ? "," : "");
    json += line;
  }
  json += "  ]\n}\n";

  std::fputs(json.c_str(), stdout);
  std::FILE* f = std::fopen(json_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  return std::fclose(f) == 0 ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  std::string scaling_json_path;
  std::string simd_json_path;
  std::string concurrent_json_path;
  std::string layout_json_path;
  size_t num_items = 1 << 20;
  size_t scaling_items = 1 << 21;
  size_t simd_items = 1 << 20;
  size_t concurrent_items = 1 << 21;
  size_t layout_items = 1 << 21;
  std::vector<char*> passthrough;
  passthrough.push_back(argv[0]);
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg(argv[i]);
    if (arg.rfind("--e07_json=", 0) == 0) {
      json_path = std::string(arg.substr(std::strlen("--e07_json=")));
    } else if (arg.rfind("--e07_items=", 0) == 0) {
      num_items = std::strtoull(argv[i] + std::strlen("--e07_items="),
                                nullptr, 10);
    } else if (arg.rfind("--e07_scaling_json=", 0) == 0) {
      scaling_json_path =
          std::string(arg.substr(std::strlen("--e07_scaling_json=")));
    } else if (arg.rfind("--e07_scaling_items=", 0) == 0) {
      scaling_items = std::strtoull(
          argv[i] + std::strlen("--e07_scaling_items="), nullptr, 10);
    } else if (arg.rfind("--e07_simd_json=", 0) == 0) {
      simd_json_path =
          std::string(arg.substr(std::strlen("--e07_simd_json=")));
    } else if (arg.rfind("--e07_simd_items=", 0) == 0) {
      simd_items = std::strtoull(argv[i] + std::strlen("--e07_simd_items="),
                                 nullptr, 10);
    } else if (arg.rfind("--e07_concurrent_json=", 0) == 0) {
      concurrent_json_path =
          std::string(arg.substr(std::strlen("--e07_concurrent_json=")));
    } else if (arg.rfind("--e07_concurrent_items=", 0) == 0) {
      concurrent_items = std::strtoull(
          argv[i] + std::strlen("--e07_concurrent_items="), nullptr, 10);
    } else if (arg.rfind("--e07_layout_json=", 0) == 0) {
      layout_json_path =
          std::string(arg.substr(std::strlen("--e07_layout_json=")));
    } else if (arg.rfind("--e07_layout_items=", 0) == 0) {
      layout_items = std::strtoull(
          argv[i] + std::strlen("--e07_layout_items="), nullptr, 10);
    } else {
      passthrough.push_back(argv[i]);
    }
  }
  if (!layout_json_path.empty()) {
    return RunLayoutComparison(layout_json_path,
                               layout_items == 0 ? 1 << 21 : layout_items);
  }
  if (!concurrent_json_path.empty()) {
    return RunConcurrentBench(
        concurrent_json_path,
        concurrent_items == 0 ? 1 << 21 : concurrent_items);
  }
  if (!simd_json_path.empty()) {
    return RunSimdComparison(simd_json_path,
                             simd_items == 0 ? 1 << 20 : simd_items);
  }
  if (!scaling_json_path.empty()) {
    return RunThreadScaling(scaling_json_path,
                            scaling_items == 0 ? 1 << 21 : scaling_items);
  }
  if (!json_path.empty()) {
    return RunBatchedComparison(json_path, num_items == 0 ? 1 << 20
                                                          : num_items);
  }
  int pargc = static_cast<int>(passthrough.size());
  benchmark::Initialize(&pargc, passthrough.data());
  if (benchmark::ReportUnrecognizedArguments(pargc, passthrough.data())) {
    return 1;
  }
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
