// E7: update/query throughput of every sketch (google-benchmark).
//
// Claim (paper section 2, "practical side" / DataSketches): production
// sketches sustain tens of millions of updates per second per core, which
// is what made them deployable inside stream engines and warehouses.

#include <benchmark/benchmark.h>

#include "cardinality/hllpp.h"
#include "cardinality/hyperloglog.h"
#include "cardinality/kmv.h"
#include "frequency/count_min.h"
#include "frequency/count_sketch.h"
#include "frequency/misra_gries.h"
#include "frequency/space_saving.h"
#include "membership/blocked_bloom.h"
#include "membership/bloom.h"
#include "quantiles/kll.h"
#include "quantiles/mrl.h"
#include "quantiles/req.h"
#include "quantiles/tdigest.h"
#include "similarity/minhash.h"
#include "workload/generators.h"

namespace {

std::vector<uint64_t> TestItems() {
  static const std::vector<uint64_t> items =
      gems::ZipfGenerator(1 << 20, 1.1, 42).Take(1 << 16);
  return items;
}

void BM_HyperLogLogUpdate(benchmark::State& state) {
  gems::HyperLogLog sketch(static_cast<int>(state.range(0)), 1);
  const auto items = TestItems();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(items[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HyperLogLogUpdate)->Arg(10)->Arg(14);

void BM_HllPlusPlusUpdate(benchmark::State& state) {
  gems::HllPlusPlus sketch(12, 1);
  const auto items = TestItems();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(items[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_HllPlusPlusUpdate);

void BM_KmvUpdate(benchmark::State& state) {
  gems::KmvSketch sketch(1024, 1);
  const auto items = TestItems();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(items[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KmvUpdate);

void BM_BloomInsert(benchmark::State& state) {
  gems::BloomFilter filter(1 << 23, static_cast<int>(state.range(0)), 1);
  const auto items = TestItems();
  size_t i = 0;
  for (auto _ : state) {
    filter.Insert(items[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomInsert)->Arg(4)->Arg(8);

void BM_BloomQuery(benchmark::State& state) {
  gems::BloomFilter filter(1 << 23, 7, 1);
  const auto items = TestItems();
  for (size_t i = 0; i < items.size() / 2; ++i) filter.Insert(items[i]);
  size_t i = 0;
  bool sink = false;
  for (auto _ : state) {
    sink ^= filter.MayContain(items[i++ & 0xFFFF]);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BloomQuery);

void BM_BlockedBloomQuery(benchmark::State& state) {
  gems::BlockedBloomFilter filter(1 << 23, 8, 1);
  const auto items = TestItems();
  for (size_t i = 0; i < items.size() / 2; ++i) filter.Insert(items[i]);
  size_t i = 0;
  bool sink = false;
  for (auto _ : state) {
    sink ^= filter.MayContain(items[i++ & 0xFFFF]);
  }
  benchmark::DoNotOptimize(sink);
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_BlockedBloomQuery);

void BM_CountMinUpdate(benchmark::State& state) {
  gems::CountMinSketch sketch(4096, static_cast<uint32_t>(state.range(0)),
                              1);
  const auto items = TestItems();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(items[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountMinUpdate)->Arg(4)->Arg(8);

void BM_CountSketchUpdate(benchmark::State& state) {
  gems::CountSketch sketch(4096, 5, 1);
  const auto items = TestItems();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(items[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CountSketchUpdate);

void BM_SpaceSavingUpdate(benchmark::State& state) {
  gems::SpaceSaving sketch(static_cast<size_t>(state.range(0)));
  const auto items = TestItems();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(items[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SpaceSavingUpdate)->Arg(256)->Arg(4096);

void BM_MisraGriesUpdate(benchmark::State& state) {
  gems::MisraGries sketch(1024);
  const auto items = TestItems();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(items[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MisraGriesUpdate);

void BM_KllUpdate(benchmark::State& state) {
  gems::KllSketch sketch(200, 1);
  const auto values =
      gems::GenerateValues(gems::ValueDistribution::kGaussian, 1 << 16, 2);
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(values[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_KllUpdate);

void BM_MrlUpdate(benchmark::State& state) {
  gems::MrlSketch sketch(10, 500);
  const auto values =
      gems::GenerateValues(gems::ValueDistribution::kGaussian, 1 << 16, 2);
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(values[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MrlUpdate);

void BM_ReqUpdate(benchmark::State& state) {
  gems::ReqSketch sketch(32, 1);
  const auto values =
      gems::GenerateValues(gems::ValueDistribution::kGaussian, 1 << 16, 2);
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(values[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_ReqUpdate);

void BM_MinHashUpdate(benchmark::State& state) {
  gems::MinHashSketch sketch(static_cast<uint32_t>(state.range(0)), 1);
  const auto items = TestItems();
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(items[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_MinHashUpdate)->Arg(64)->Arg(256);

void BM_TDigestUpdate(benchmark::State& state) {
  gems::TDigest sketch(100);
  const auto values =
      gems::GenerateValues(gems::ValueDistribution::kGaussian, 1 << 16, 2);
  size_t i = 0;
  for (auto _ : state) {
    sketch.Update(values[i++ & 0xFFFF]);
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_TDigestUpdate);

void BM_HyperLogLogMerge(benchmark::State& state) {
  gems::HyperLogLog a(12, 1), b(12, 1);
  for (uint64_t item : gems::DistinctItems(100000, 3)) b.Update(item);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Merge(b));
  }
}
BENCHMARK(BM_HyperLogLogMerge);

void BM_HyperLogLogSerialize(benchmark::State& state) {
  gems::HyperLogLog sketch(12, 1);
  for (uint64_t item : gems::DistinctItems(100000, 3)) sketch.Update(item);
  for (auto _ : state) {
    benchmark::DoNotOptimize(sketch.Serialize());
  }
}
BENCHMARK(BM_HyperLogLogSerialize);

}  // namespace

BENCHMARK_MAIN();
