// E13: AGM graph sketches — connectivity in near-linear sketch space.
//
// Claims (paper section 2, graph sketching; Ahn-Guha-McGregor 2012):
// per-vertex L0 samplers of the edge-incidence vectors recover a spanning
// forest w.h.p. via sketch-space Boruvka; success rate grows with sketch
// copies; deletions are handled (fully dynamic graphs).

#include <cstdio>
#include <vector>

#include "graph/agm.h"
#include "graph/connectivity.h"

namespace {

// Fraction of trials in which the sketch reports the exact component
// count.
double SuccessRate(uint32_t num_vertices, uint32_t num_components,
                   int num_copies, int trials) {
  int correct = 0;
  for (int t = 0; t < trials; ++t) {
    gems::AgmSketch::Options options;
    options.num_copies = num_copies;
    gems::AgmSketch sketch(num_vertices, 500 + t, options);
    const auto edges = gems::PlantedComponents(
        num_vertices, num_components, 1.0, 900 + t);
    for (const gems::Edge& edge : edges) sketch.AddEdge(edge.u, edge.v);
    if (sketch.NumComponents() == num_components) ++correct;
  }
  return static_cast<double>(correct) / trials;
}

}  // namespace

int main() {
  std::printf("E13: AGM connectivity success rate vs sketch copies "
              "(n = 256 vertices, 4 planted components, 10 trials)\n\n");
  std::printf("%8s | %14s\n", "copies", "success rate");
  for (int copies : {2, 4, 8, 12, 16}) {
    std::printf("%8d | %14.2f\n", copies, SuccessRate(256, 4, copies, 10));
  }

  std::printf("\nE13b: component-count recovery across graph shapes "
              "(12 copies, 8 trials each)\n");
  std::printf("%12s | %10s | %14s\n", "vertices", "components",
              "success rate");
  for (uint32_t n : {64, 128, 256}) {
    for (uint32_t c : {1, 4, 16}) {
      std::printf("%12u | %10u | %14.2f\n", n, c, SuccessRate(n, c, 12, 8));
    }
  }

  std::printf("\nE13c: dynamic deletions — bridge removal splits the "
              "graph\n");
  {
    int correct = 0;
    const int trials = 10;
    for (int t = 0; t < trials; ++t) {
      const uint32_t n = 128;
      gems::AgmSketch sketch(n, 42 + t);
      // Two halves internally connected, one bridge between them.
      for (uint32_t i = 0; i + 1 < n / 2; ++i) sketch.AddEdge(i, i + 1);
      for (uint32_t i = n / 2; i + 1 < n; ++i) sketch.AddEdge(i, i + 1);
      sketch.AddEdge(n / 2 - 1, n / 2);
      const size_t before = sketch.NumComponents();
      sketch.RemoveEdge(n / 2 - 1, n / 2);
      const size_t after = sketch.NumComponents();
      if (before == 1 && after == 2) ++correct;
    }
    std::printf("   bridge-deletion detected correctly: %d / %d trials\n",
                correct, trials);
  }

  std::printf("\nE13d: G(n, p) around the connectivity threshold "
              "(n = 256, ln n / n ~ 0.0217; sketch vs exact, 6 trials)\n");
  std::printf("%8s | %16s | %16s\n", "p", "exact components",
              "sketch matches");
  for (double p : {0.005, 0.01, 0.02, 0.04, 0.08}) {
    double mean_components = 0;
    int matches = 0;
    const int trials = 6;
    for (int t = 0; t < trials; ++t) {
      const auto edges = gems::RandomGraph(256, p, 7000 + t);
      gems::ExactGraph exact(256);
      gems::AgmSketch sketch(256, 8000 + t);
      for (const gems::Edge& edge : edges) {
        exact.AddEdge(edge.u, edge.v);
        sketch.AddEdge(edge.u, edge.v);
      }
      mean_components += static_cast<double>(exact.NumComponents());
      if (sketch.NumComponents() == exact.NumComponents()) ++matches;
    }
    std::printf("%8.3f | %16.1f | %13d / %d\n", p, mean_components / trials,
                matches, trials);
  }
  return 0;
}
