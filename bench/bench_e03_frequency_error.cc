// E3: Count-Min vs Count Sketch point-query error across skew.
//
// Claims (paper section 2): Count-Min guarantees error <= eps*N (L1);
// Count Sketch guarantees error ~ sqrt(F2_residual/width) (L2) and wins on
// skewed data; conservative update strictly improves Count-Min. Plus the
// dyadic Count-Min range-query extension from the original CM paper.

#include <cmath>
#include <cstdio>
#include <vector>

#include "common/numeric.h"
#include "frequency/count_min.h"
#include "frequency/count_sketch.h"
#include "frequency/dyadic_count_min.h"
#include "workload/baselines.h"
#include "workload/generators.h"

namespace {

constexpr int kStream = 500000;
constexpr uint64_t kUniverse = 100000;

// Mean absolute point-query error over the top `num_items` true items and
// over `tail_items` drawn from the tail.
struct ErrorReport {
  double head_mae = 0;
  double tail_mae = 0;
};

template <typename Query>
ErrorReport Measure(const gems::ExactFrequencies& exact, Query query) {
  const auto top = exact.TopK(2000);
  ErrorReport report;
  int head = 0, tail = 0;
  for (size_t rank = 0; rank < top.size(); ++rank) {
    const auto& [item, count] = top[rank];
    const double err =
        std::abs(query(item) - static_cast<double>(count));
    if (rank < 100) {
      report.head_mae += err;
      ++head;
    } else if (rank >= 1000) {
      report.tail_mae += err;
      ++tail;
    }
  }
  if (head > 0) report.head_mae /= head;
  if (tail > 0) report.tail_mae /= tail;
  return report;
}

}  // namespace

int main() {
  std::printf("E3: point-query mean-abs-error, stream n = %d, universe %lu\n",
              kStream, (unsigned long)kUniverse);
  std::printf("sketches: width x depth = w x 4, equal space per column\n\n");

  for (double skew : {0.6, 0.9, 1.2, 1.5}) {
    std::printf("-- Zipf skew %.1f --\n", skew);
    std::printf("%6s | %9s | %22s | %22s | %22s | %22s | %22s\n", "width",
                "eps*N", "CountMin head/tail", "CM-conservative h/t",
                "CountSketch h/t", "count-mean-min h/t", "CM-blocked h/t");
    gems::ZipfGenerator zipf(kUniverse, skew, 42, /*shuffle=*/false);
    gems::ExactFrequencies exact;
    std::vector<uint64_t> stream;
    stream.reserve(kStream);
    for (int i = 0; i < kStream; ++i) {
      const uint64_t item = zipf.Next();
      stream.push_back(item);
      exact.Update(item);
    }
    for (uint32_t width : {256, 1024, 4096}) {
      gems::CountMinSketch cm(width, 4, 1);
      gems::CountMinSketch cu(width, 4, 1, /*conservative_update=*/true);
      gems::CountSketch cs(width, 4, 1);
      // Blocked layout trades per-row hash independence for cache locality
      // (the depth hashes share one 64-bit draw); this column shows the
      // accuracy cost of that trade at equal space.
      gems::CountMinSketch cb(width, 4, 1, /*conservative_update=*/false,
                              gems::SketchLayout::kBlocked);
      for (uint64_t item : stream) {
        cm.Update(item);
        cu.Update(item);
        cs.Update(item);
        cb.Update(item);
      }
      const auto cm_report = Measure(exact, [&](uint64_t item) {
        return static_cast<double>(cm.Estimate(item));
      });
      const auto cu_report = Measure(exact, [&](uint64_t item) {
        return static_cast<double>(cu.Estimate(item));
      });
      const auto cs_report = Measure(exact, [&](uint64_t item) {
        return static_cast<double>(cs.Estimate(item));
      });
      const auto cmm_report = Measure(exact, [&](uint64_t item) {
        return static_cast<double>(cm.EstimateCountMeanMin(item));
      });
      const auto cb_report = Measure(exact, [&](uint64_t item) {
        return static_cast<double>(cb.Estimate(item));
      });
      std::printf("%6u | %9.0f | %10.1f / %9.1f | %10.1f / %9.1f | "
                  "%10.1f / %9.1f | %10.1f / %9.1f | %10.1f / %9.1f\n",
                  width, std::exp(1.0) / width * kStream,
                  cm_report.head_mae, cm_report.tail_mae, cu_report.head_mae,
                  cu_report.tail_mae, cs_report.head_mae,
                  cs_report.tail_mae, cmm_report.head_mae,
                  cmm_report.tail_mae, cb_report.head_mae,
                  cb_report.tail_mae);
    }
    std::printf("\n");
  }

  std::printf("E3b: dyadic Count-Min range queries (universe 2^16, "
              "uniform stream 200k)\n");
  gems::DyadicCountMin dyadic(16, 2048, 4, 5);
  gems::ExactFrequencies exact;
  gems::UniformItemGenerator gen(1 << 16, 5);
  for (int i = 0; i < 200000; ++i) {
    const uint64_t x = gen.Next();
    dyadic.Update(x);
    exact.Update(x);
  }
  std::printf("%24s | %10s | %10s\n", "range", "exact", "dyadic CM");
  struct Range {
    uint64_t lo, hi;
  };
  for (const Range& r : {Range{0, 1023}, Range{0, 32767},
                         Range{10000, 50000}, Range{60000, 65535}}) {
    int64_t truth = 0;
    for (uint64_t x = r.lo; x <= r.hi; ++x) truth += exact.Count(x);
    std::printf("   [%8lu, %8lu] | %10ld | %10lu\n", (unsigned long)r.lo,
                (unsigned long)r.hi, (long)truth,
                (unsigned long)dyadic.EstimateRangeSum(r.lo, r.hi));
  }
  std::printf("   quantiles via dyadic prefix search: p50 = %lu (ideal "
              "~32768), p90 = %lu (ideal ~58982)\n",
              (unsigned long)dyadic.EstimateQuantile(0.5),
              (unsigned long)dyadic.EstimateQuantile(0.9));
  return 0;
}
