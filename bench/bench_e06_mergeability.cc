// E6: mergeability — merged accuracy equals single-stream accuracy.
//
// Claim (Mergeable Summaries, PODS 2012 test-of-time; paper section 2):
// partitioning a stream across k nodes and merging the k summaries gives
// the same error guarantee as one summary over the whole stream. For
// register sketches (HLL) and linear sketches (Count-Min) the merged state
// is bit-identical; for KLL/Misra-Gries the guarantee (not the state) is
// preserved.

#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "cardinality/hyperloglog.h"
#include "common/numeric.h"
#include "core/view.h"
#include "distributed/aggregation.h"
#include "distributed/thread_pool.h"
#include "frequency/count_min.h"
#include "frequency/misra_gries.h"
#include "quantiles/kll.h"
#include "simd/dispatch.h"
#include "workload/baselines.h"
#include "workload/generators.h"

namespace {

double Seconds(const std::chrono::steady_clock::time_point t0,
               const std::chrono::steady_clock::time_point t1) {
  return std::chrono::duration<double>(t1 - t0).count();
}

/// Times the sequential vs the parallel merge tree over copies of the same
/// leaves (best of `reps`), checks the roots are byte-identical, and prints
/// one timing row.
template <typename S>
void TimeMergeTree(const char* name, const std::vector<S>& leaves,
                   gems::ThreadPool* pool, int reps = 3) {
  double seq_best = 1e100, par_best = 1e100;
  std::vector<uint8_t> seq_bytes, par_bytes;
  for (int r = 0; r < reps; ++r) {
    std::vector<S> copy = leaves;
    auto t0 = std::chrono::steady_clock::now();
    auto seq_root = gems::AggregateTree(std::move(copy), 2, nullptr);
    auto t1 = std::chrono::steady_clock::now();
    seq_best = std::min(seq_best, Seconds(t0, t1));
    copy = leaves;
    t0 = std::chrono::steady_clock::now();
    auto par_root = gems::ParallelAggregateTree(std::move(copy), 2, pool);
    t1 = std::chrono::steady_clock::now();
    par_best = std::min(par_best, Seconds(t0, t1));
    if (r == 0) {
      seq_bytes = seq_root.value().Serialize();
      par_bytes = par_root.value().Serialize();
    }
  }
  std::printf("%-10s %3zu leaves   sequential %8.3f ms   parallel %8.3f ms"
              "   speedup %.2fx   roots %s\n",
              name, leaves.size(), seq_best * 1e3, par_best * 1e3,
              seq_best / par_best,
              seq_bytes == par_bytes ? "byte-identical" : "DIFFER");
}

/// Timing for one wide fan-in merge of serialized HLL envelopes. Three
/// ways to fold N envelopes into one sketch:
///   - deserialize+merge: materialize every envelope into a fresh heap
///     sketch, then Merge — the pre-view baseline.
///   - wrap+merge: SketchView wrap (full validation, checksum included)
///     and MergeFromView straight from the payload bytes — no allocation,
///     no register copy per envelope.
///   - trusted wrap+merge: WrapTrusted (structural checks only, checksum
///     skipped) for same-process fan-in, where the checksum pass is the
///     last remaining per-envelope cost that scales with sketch size.
struct FaninTiming {
  int fanin = 0;
  uint8_t precision = 0;
  double deserialize_merge_ms = 0;
  double view_merge_ms = 0;
  double trusted_view_merge_ms = 0;
  bool roots_identical = false;
  double speedup() const { return deserialize_merge_ms / trusted_view_merge_ms; }
  double speedup_verified() const { return deserialize_merge_ms / view_merge_ms; }
};

FaninTiming TimeViewMergeFanin(int fanin, uint8_t precision, int reps) {
  // Build the serialized inputs once: `fanin` HLL shards over disjoint
  // item ranges, each wrapped in its wire envelope.
  std::vector<std::vector<uint8_t>> envelopes;
  envelopes.reserve(fanin);
  for (int s = 0; s < fanin; ++s) {
    gems::HyperLogLog leaf(precision, 7);
    for (uint64_t item : gems::DistinctItems(2000, 900 + s)) {
      leaf.Update(item);
    }
    envelopes.push_back(leaf.Serialize());
  }

  FaninTiming out;
  out.fanin = fanin;
  out.precision = precision;
  out.deserialize_merge_ms = 1e100;
  out.view_merge_ms = 1e100;
  out.trusted_view_merge_ms = 1e100;
  std::vector<uint8_t> deser_root, view_root, trusted_root;
  for (int r = 0; r < reps; ++r) {
    // Baseline: materialize every envelope, then merge the sketches.
    auto t0 = std::chrono::steady_clock::now();
    auto acc = gems::HyperLogLog::Deserialize(envelopes[0]);
    for (int s = 1; s < fanin; ++s) {
      auto leaf = gems::HyperLogLog::Deserialize(envelopes[s]);
      (void)acc.value().Merge(leaf.value());
    }
    auto t1 = std::chrono::steady_clock::now();
    out.deserialize_merge_ms =
        std::min(out.deserialize_merge_ms, Seconds(t0, t1) * 1e3);
    if (r == 0) deser_root = acc.value().Serialize();

    // View path: materialize only the first envelope; fold the rest in
    // from borrowed payload bytes, fully validated.
    t0 = std::chrono::steady_clock::now();
    auto acc2 = gems::HyperLogLog::Deserialize(envelopes[0]);
    for (int s = 1; s < fanin; ++s) {
      auto view = gems::View<gems::HyperLogLog>::Wrap(envelopes[s]);
      (void)acc2.value().MergeFromView(view.value());
    }
    t1 = std::chrono::steady_clock::now();
    out.view_merge_ms = std::min(out.view_merge_ms, Seconds(t0, t1) * 1e3);
    if (r == 0) view_root = acc2.value().Serialize();

    // Trusted view path: the envelopes were serialized by this process a
    // moment ago, so skip the per-envelope checksum pass.
    t0 = std::chrono::steady_clock::now();
    auto acc3 = gems::HyperLogLog::Deserialize(envelopes[0]);
    for (int s = 1; s < fanin; ++s) {
      auto view = gems::View<gems::HyperLogLog>::WrapTrusted(envelopes[s]);
      (void)acc3.value().MergeFromView(view.value());
    }
    t1 = std::chrono::steady_clock::now();
    out.trusted_view_merge_ms =
        std::min(out.trusted_view_merge_ms, Seconds(t0, t1) * 1e3);
    if (r == 0) trusted_root = acc3.value().Serialize();
  }
  out.roots_identical = deser_root == view_root && deser_root == trusted_root;
  return out;
}

void PrintFaninTiming(const FaninTiming& t) {
  std::printf("HLL p=%d %d-way fan-in: deserialize+merge %8.3f ms   "
              "wrap+merge %8.3f ms (%.2fx)   trusted wrap+merge %8.3f ms "
              "(%.2fx)   roots %s\n",
              t.precision, t.fanin, t.deserialize_merge_ms, t.view_merge_ms,
              t.speedup_verified(), t.trusted_view_merge_ms, t.speedup(),
              t.roots_identical ? "byte-identical" : "DIFFER");
}

/// --e06_json mode: run only the fan-in comparison and emit one JSON
/// object (the CI bench-smoke artifact).
int RunFaninJson(const std::string& json_path, int fanin) {
  const FaninTiming t = TimeViewMergeFanin(fanin, 12, 5);
  PrintFaninTiming(t);
  char buf[768];
  std::snprintf(buf, sizeof(buf),
                "{\n"
                "  \"bench\": \"e06_view_merge_fanin\",\n"
                "  \"dispatch\": %s,\n"
                "  \"family\": \"hll\",\n"
                "  \"precision\": %d,\n"
                "  \"fanin\": %d,\n"
                "  \"deserialize_merge_ms\": %.6f,\n"
                "  \"view_merge_ms\": %.6f,\n"
                "  \"trusted_view_merge_ms\": %.6f,\n"
                "  \"speedup_verified\": %.4f,\n"
                "  \"speedup\": %.4f,\n"
                "  \"roots_identical\": %s\n"
                "}\n",
                gems::simd::DispatchJson().c_str(), t.precision, t.fanin,
                t.deserialize_merge_ms, t.view_merge_ms,
                t.trusted_view_merge_ms, t.speedup_verified(), t.speedup(),
                t.roots_identical ? "true" : "false");
  std::fputs(buf, stdout);
  std::FILE* f = std::fopen(json_path.c_str(), "wb");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", json_path.c_str());
    return 1;
  }
  std::fwrite(buf, 1, std::strlen(buf), f);
  std::fclose(f);
  return t.roots_identical ? 0 : 1;
}

}  // namespace

int main(int argc, char** argv) {
  std::string json_path;
  int fanin = 1024;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--e06_json=", 0) == 0) {
      json_path = arg.substr(std::strlen("--e06_json="));
    } else if (arg.rfind("--e06_fanin=", 0) == 0) {
      fanin = std::stoi(arg.substr(std::strlen("--e06_fanin=")));
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      return 2;
    }
  }
  if (!json_path.empty()) return RunFaninJson(json_path, fanin);

  constexpr int kShards = 256;
  constexpr int kTrials = 8;
  std::printf("E6: error of merged (%d-way) vs single-stream summaries, "
              "%d trials\n\n",
              kShards, kTrials);

  // --- HLL on 500k distinct items ---
  {
    std::vector<double> streamed_err, merged_err;
    for (int t = 0; t < kTrials; ++t) {
      const auto items = gems::DistinctItems(500000, 100 + t);
      gems::HyperLogLog streamed(12, t);
      std::vector<gems::HyperLogLog> leaves;
      for (int s = 0; s < kShards; ++s) leaves.emplace_back(12, t);
      for (size_t i = 0; i < items.size(); ++i) {
        streamed.Update(items[i]);
        leaves[i % kShards].Update(items[i]);
      }
      gems::AggregationStats stats;
      auto merged = gems::AggregateTree(std::move(leaves), 2, &stats);
      streamed_err.push_back(
          gems::RelativeError(streamed.Estimate(), 500000.0));
      merged_err.push_back(
          gems::RelativeError(merged.value().Estimate(), 500000.0));
      if (t == 0) {
        std::printf("HLL p=12: tree depth %d, %zu merges, %zu bytes "
                    "communicated\n",
                    stats.tree_depth, stats.num_merges,
                    stats.communication_bytes);
      }
    }
    std::printf("HLL      rel-RMSE: streamed %.4f   merged %.4f   "
                "ratio %.3f\n\n",
                gems::Rms(streamed_err), gems::Rms(merged_err),
                gems::Rms(merged_err) / gems::Rms(streamed_err));
  }

  // --- Count-Min on Zipf stream (state is exactly equal) ---
  {
    gems::ZipfGenerator zipf(100000, 1.2, 5);
    gems::CountMinSketch streamed(2048, 4, 6);
    std::vector<gems::CountMinSketch> leaves;
    for (int s = 0; s < kShards; ++s) leaves.emplace_back(2048, 4, 6);
    for (int i = 0; i < 500000; ++i) {
      const uint64_t item = zipf.Next();
      streamed.Update(item);
      leaves[i % kShards].Update(item);
    }
    auto merged = gems::AggregateTree(std::move(leaves), 4, nullptr);
    uint64_t diffs = 0;
    for (uint64_t probe = 0; probe < 10000; ++probe) {
      if (merged.value().Estimate(probe) !=
          streamed.Estimate(probe)) {
        ++diffs;
      }
    }
    std::printf("Count-Min: merged point queries differing from "
                "single-stream: %lu / 10000 (expect 0 — linear sketch)\n\n",
                (unsigned long)diffs);
  }

  // --- KLL on lognormal values ---
  {
    std::vector<double> streamed_err, merged_err;
    for (int t = 0; t < kTrials; ++t) {
      const auto data = gems::GenerateValues(
          gems::ValueDistribution::kLogNormal, 512000, 200 + t);
      gems::ExactQuantiles exact;
      gems::KllSketch streamed(200, 300 + t);
      std::vector<gems::KllSketch> leaves;
      for (int s = 0; s < kShards; ++s) leaves.emplace_back(200, 400 + s);
      for (size_t i = 0; i < data.size(); ++i) {
        streamed.Update(data[i]);
        leaves[i % kShards].Update(data[i]);
        exact.Update(data[i]);
      }
      auto merged = gems::AggregateTree(std::move(leaves), 2, nullptr);
      const double n = static_cast<double>(data.size());
      double s_err = 0, m_err = 0;
      for (double q : {0.1, 0.5, 0.9}) {
        s_err = std::max(
            s_err, std::abs(static_cast<double>(
                                exact.Rank(streamed.Quantile(q))) -
                            q * n) /
                       n);
        m_err = std::max(
            m_err, std::abs(static_cast<double>(
                                exact.Rank(merged.value().Quantile(q))) -
                            q * n) /
                       n);
      }
      streamed_err.push_back(s_err);
      merged_err.push_back(m_err);
    }
    std::printf("KLL k=200 max-rank-err: streamed %.5f   merged %.5f   "
                "ratio %.3f\n\n",
                gems::Mean(streamed_err), gems::Mean(merged_err),
                gems::Mean(merged_err) / gems::Mean(streamed_err));
  }

  // --- Misra-Gries guarantee after merging ---
  {
    gems::ZipfGenerator zipf(100000, 1.3, 9);
    gems::ExactFrequencies exact;
    std::vector<gems::MisraGries> leaves;
    for (int s = 0; s < kShards; ++s) leaves.emplace_back(200);
    const int64_t n = 512000;
    for (int64_t i = 0; i < n; ++i) {
      const uint64_t item = zipf.Next();
      exact.Update(item);
      leaves[i % kShards].Update(item);
    }
    auto merged = gems::AggregateTree(std::move(leaves), 2, nullptr);
    int64_t worst_undercount = 0;
    int violations = 0;
    for (const auto& [item, count] : exact.TopK(50)) {
      const int64_t estimate = merged.value().Estimate(item);
      worst_undercount = std::max(worst_undercount, count - estimate);
      if (count - estimate > merged.value().ErrorBound()) ++violations;
    }
    std::printf("Misra-Gries k=200: worst undercount %ld, claimed bound "
                "%ld, violations %d (expect 0), N/k = %ld\n",
                (long)worst_undercount, (long)merged.value().ErrorBound(),
                violations, (long)(n / 200));
  }

  // --- Merge-tree timing: sequential vs parallel AggregateTree ---
  // Same leaves, same pairing; the parallel tree runs each level's groups
  // concurrently and must produce a byte-identical root.
  {
    std::printf("\nMerge-tree timing (fanout 2, %u hardware threads):\n",
                std::thread::hardware_concurrency());
    gems::ThreadPool pool;
    {
      std::vector<gems::HyperLogLog> leaves;
      for (int s = 0; s < kShards; ++s) {
        leaves.emplace_back(14, 21);
        for (uint64_t item : gems::DistinctItems(20000, 500 + s)) {
          leaves.back().Update(item);
        }
      }
      TimeMergeTree("HLL p=14", leaves, &pool);
    }
    {
      gems::ZipfGenerator zipf(100000, 1.2, 23);
      std::vector<gems::CountMinSketch> leaves;
      for (int s = 0; s < kShards; ++s) {
        leaves.emplace_back(8192, 8, 24);
        for (int i = 0; i < 10000; ++i) leaves.back().Update(zipf.Next());
      }
      TimeMergeTree("Count-Min", leaves, &pool);
    }
    {
      std::vector<gems::KllSketch> leaves;
      for (int s = 0; s < kShards; ++s) {
        leaves.emplace_back(200, 600 + s);
        for (double v : gems::GenerateValues(
                 gems::ValueDistribution::kLogNormal, 20000, 700 + s)) {
          leaves.back().Update(v);
        }
      }
      TimeMergeTree("KLL k=200", leaves, &pool);
    }
  }

  // --- Wide fan-in from serialized envelopes: views vs materialization ---
  {
    std::printf("\nFan-in from serialized envelopes:\n");
    PrintFaninTiming(TimeViewMergeFanin(1024, 12, 3));
  }
  return 0;
}
