// E8: Bloom filter false-positive rate vs space.
//
// Claims (paper sections 2-3): measured FPR follows (1 - e^{-kn/m})^k,
// minimized at k = (m/n) ln 2; cache-blocked filters trade a slightly
// higher FPR for one cache line per probe (ablation).

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <vector>

#include "membership/blocked_bloom.h"
#include "membership/bloom.h"
#include "membership/counting_bloom.h"
#include "workload/generators.h"

namespace {

constexpr uint64_t kItems = 100000;
constexpr uint64_t kProbes = 1000000;

template <typename Filter>
double MeasureFpr(const Filter& filter) {
  uint64_t false_positives = 0;
  for (uint64_t item : gems::DistinctItems(kProbes, 999)) {
    if (filter.MayContain(item)) ++false_positives;
  }
  return static_cast<double>(false_positives) / kProbes;
}

}  // namespace

int main() {
  std::printf("E8: Bloom FPR vs bits/item (n = %lu inserted, %lu probes)\n\n",
              (unsigned long)kItems, (unsigned long)kProbes);
  std::printf("%10s | %3s | %12s | %12s | %14s\n", "bits/item", "k",
              "measured", "theory", "blocked meas.");

  const auto items = gems::DistinctItems(kItems, 5);
  for (int bits_per_item : {4, 6, 8, 10, 12, 16}) {
    const uint64_t m = kItems * bits_per_item;
    const int k = gems::BloomFilter::OptimalNumHashes(bits_per_item);
    gems::BloomFilter standard(m, k, 7);
    gems::BlockedBloomFilter blocked(m, k, 7);
    for (uint64_t item : items) {
      standard.Insert(item);
      blocked.Insert(item);
    }
    std::printf("%10d | %3d | %12.5f | %12.5f | %14.5f\n", bits_per_item, k,
                MeasureFpr(standard),
                gems::BloomFilter::TheoreticalFpr(m, k, kItems),
                MeasureFpr(blocked));
  }

  std::printf("\nE8b: FPR vs k at fixed 10 bits/item (optimum at k = 7)\n");
  std::printf("%3s | %12s | %12s\n", "k", "measured", "theory");
  for (int k : {2, 4, 7, 10, 14}) {
    gems::BloomFilter filter(kItems * 10, k, 11);
    for (uint64_t item : items) filter.Insert(item);
    std::printf("%3d | %12.5f | %12.5f\n", k, MeasureFpr(filter),
                gems::BloomFilter::TheoreticalFpr(kItems * 10, k, kItems));
  }

  std::printf("\nE8c: query latency, standard vs blocked (10 bits/item, "
              "k = 7/8)\n");
  {
    gems::BloomFilter standard(kItems * 10, 7, 13);
    gems::BlockedBloomFilter blocked(kItems * 10, 8, 13);
    for (uint64_t item : items) {
      standard.Insert(item);
      blocked.Insert(item);
    }
    const auto probes = gems::DistinctItems(kProbes, 17);
    uint64_t sink = 0;

    auto start = std::chrono::steady_clock::now();
    for (uint64_t item : probes) sink += standard.MayContain(item);
    const double standard_ns =
        std::chrono::duration<double, std::nano>(
            std::chrono::steady_clock::now() - start)
            .count() /
        kProbes;

    start = std::chrono::steady_clock::now();
    for (uint64_t item : probes) sink += blocked.MayContain(item);
    const double blocked_ns =
        std::chrono::duration<double, std::nano>(
            std::chrono::steady_clock::now() - start)
            .count() /
        kProbes;
    benchmark::DoNotOptimize(sink);
    std::printf("   standard %.1f ns/query, blocked %.1f ns/query "
                "(%.2fx speedup)\n",
                standard_ns, blocked_ns, standard_ns / blocked_ns);
  }

  std::printf("\nE8d: counting Bloom supports deletion (standard cannot)\n");
  gems::CountingBloomFilter counting(1 << 20, 5, 19);
  for (uint64_t item : items) counting.Insert(item);
  uint64_t present_before = 0, present_after = 0;
  for (uint64_t item : items) present_before += counting.MayContain(item);
  for (uint64_t item : items) counting.Remove(item);
  for (uint64_t item : items) present_after += counting.MayContain(item);
  std::printf("   present before deletion: %lu / %lu, after: %lu\n",
              (unsigned long)present_before, (unsigned long)kItems,
              (unsigned long)present_after);
  return 0;
}
