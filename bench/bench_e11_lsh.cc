// E11: LSH similarity search — the banding S-curve and probe savings.
//
// Claims (paper sections 2-3, LSH / multimedia search): candidate
// probability at similarity s is 1 - (1 - s^r)^b (the S-curve), and the
// index inspects a small fraction of the corpus compared to a linear scan
// while keeping high recall on near neighbours.

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <vector>

#include "common/random.h"
#include "similarity/lsh.h"
#include "similarity/minhash.h"
#include "similarity/simhash.h"

namespace {

// Builds a pair of sets with the target Jaccard similarity and reports
// whether the banded index makes them candidates.
bool PairCollides(double similarity, uint32_t bands, uint32_t rows,
                  uint64_t seed) {
  const uint64_t total = 600;
  const uint64_t shared =
      static_cast<uint64_t>(total * 2 * similarity / (1 + similarity));
  gems::MinHashSketch a(bands * rows, seed), b(bands * rows, seed);
  for (uint64_t i = 0; i < shared; ++i) {
    a.Update(seed * 1000000 + i);
    b.Update(seed * 1000000 + i);
  }
  for (uint64_t i = shared; i < total; ++i) {
    a.Update(seed * 1000000 + 500000 + i);
    b.Update(seed * 1000000 + 700000 + i);
  }
  gems::LshIndex index(bands, rows, seed + 1);
  index.Insert(1, a.signature());
  return !index.Query(b.signature()).value().empty();
}

}  // namespace

int main() {
  std::printf("E11: banding S-curve, measured vs theory (100 trials per "
              "cell)\n\n");
  struct Config {
    uint32_t bands, rows;
  };
  for (const Config& config : {Config{32, 2}, Config{16, 4}, Config{8, 8}}) {
    std::printf("-- b = %u, r = %u --\n", config.bands, config.rows);
    std::printf("%6s | %10s | %10s\n", "s", "measured", "theory");
    gems::LshIndex reference(config.bands, config.rows, 0);
    for (double s : {0.2, 0.4, 0.5, 0.6, 0.7, 0.8, 0.9}) {
      int collisions = 0;
      const int trials = 100;
      for (int t = 0; t < trials; ++t) {
        if (PairCollides(s, config.bands, config.rows, 10000 + t)) {
          ++collisions;
        }
      }
      std::printf("%6.1f | %10.3f | %10.3f\n", s,
                  static_cast<double>(collisions) / trials,
                  reference.CollisionProbability(s));
    }
    std::printf("\n");
  }

  // End-to-end: SimHash + LSH over planted-neighbour embeddings.
  std::printf("E11b: SimHash+LSH retrieval over 20000 embeddings "
              "(dim 128, 10 planted neighbours)\n");
  const size_t kDim = 128, kCorpus = 20000;
  const uint32_t kBands = 16, kRows = 8, kBits = kBands * kRows;
  gems::Rng rng(3);
  gems::SimHasher hasher(kBits, 4);
  gems::LshIndex index(kBands, kRows, 5);

  std::vector<std::vector<double>> corpus(kCorpus);
  for (auto& v : corpus) {
    v.resize(kDim);
    for (double& x : v) x = rng.NextGaussian();
  }
  std::vector<size_t> planted;
  for (size_t i = 1; i <= 10; ++i) {
    const size_t id = i * 1000;
    planted.push_back(id);
    for (size_t d = 0; d < kDim; ++d) {
      corpus[id][d] = corpus[0][d] + 0.3 * rng.NextGaussian();
    }
  }
  auto rows_of = [&](const std::vector<double>& v) {
    const auto bits = hasher.Signature(v);
    std::vector<uint64_t> rows(kBits);
    for (uint32_t b = 0; b < kBits; ++b) {
      rows[b] = (bits[b / 64] >> (b % 64)) & 1;
    }
    return rows;
  };
  for (size_t id = 0; id < kCorpus; ++id) index.Insert(id, rows_of(corpus[id]));

  const auto candidates = index.Query(rows_of(corpus[0]));
  size_t found = 0;
  for (size_t id : planted) {
    if (std::find(candidates.value().begin(), candidates.value().end(),
                  id) != candidates.value().end()) {
      ++found;
    }
  }
  std::printf("   candidates inspected: %zu / %zu corpus (%.2f%%)\n",
              candidates.value().size(), kCorpus,
              100.0 * candidates.value().size() / kCorpus);
  std::printf("   planted neighbours recalled: %zu / %zu\n", found,
              planted.size());
  std::printf("   bucket entries stored: %zu (%.1f per item)\n",
              index.NumBucketEntries(),
              static_cast<double>(index.NumBucketEntries()) / kCorpus);
  return 0;
}
