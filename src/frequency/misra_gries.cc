#include "frequency/misra_gries.h"

#include <algorithm>

#include "common/check.h"
#include "core/wire.h"

namespace gems {

MisraGries::MisraGries(size_t num_counters) : num_counters_(num_counters) {
  GEMS_CHECK(num_counters >= 1);
}

void MisraGries::Update(uint64_t item, int64_t weight) {
  GEMS_CHECK(weight >= 1);
  total_ += weight;

  const auto it = counters_.find(item);
  if (it != counters_.end()) {
    it->second += weight;
    return;
  }
  if (counters_.size() < num_counters_) {
    counters_.emplace(item, weight);
    return;
  }
  // Decrement-all step: subtract the largest amount that either exhausts
  // the new item's weight or zeroes some existing counter.
  int64_t min_count = weight;
  for (const auto& [key, count] : counters_) {
    min_count = std::min(min_count, count);
  }
  decrement_total_ += min_count;
  for (auto iter = counters_.begin(); iter != counters_.end();) {
    iter->second -= min_count;
    if (iter->second <= 0) {
      iter = counters_.erase(iter);
    } else {
      ++iter;
    }
  }
  const int64_t remaining = weight - min_count;
  if (remaining > 0) {
    counters_.emplace(item, remaining);
  }
}

void MisraGries::UpdateBatch(std::span<const uint64_t> items) {
  // A run of equal items collapses into one weighted update only when the
  // update cannot trigger a decrement-all step: tracked items just add,
  // and an untracked item with a free slot just inserts — both identical
  // to replaying the run one at a time. The decrement-all step is
  // order-dependent (Update(item, run) subtracts min(run, min counter)
  // once; per-item ingest runs up to `run` separate steps), so an
  // untracked item hitting a full table replays item-by-item instead.
  size_t i = 0;
  while (i < items.size()) {
    const uint64_t item = items[i];
    size_t j = i + 1;
    while (j < items.size() && items[j] == item) ++j;
    const int64_t run = static_cast<int64_t>(j - i);
    const auto it = counters_.find(item);
    if (it != counters_.end()) {
      it->second += run;
      total_ += run;
    } else if (counters_.size() < num_counters_) {
      counters_.emplace(item, run);
      total_ += run;
    } else {
      for (size_t t = i; t < j; ++t) Update(items[t]);
    }
    i = j;
  }
}

int64_t MisraGries::Estimate(uint64_t item) const {
  const auto it = counters_.find(item);
  return it == counters_.end() ? 0 : it->second;
}

gems::Estimate MisraGries::EstimateWithBounds(uint64_t item,
                                              double confidence) const {
  gems::Estimate e;
  e.value = static_cast<double>(Estimate(item));
  e.lower = e.value;
  e.upper = e.value + static_cast<double>(decrement_total_);
  e.confidence = confidence;
  return e;
}

std::vector<uint64_t> MisraGries::HeavyHitterCandidates(double phi) const {
  // A phi-heavy item has true count >= phi*N; since estimates undercount by
  // at most ErrorBound(), report items with estimate >= phi*N - error.
  const double threshold =
      phi * static_cast<double>(total_) -
      static_cast<double>(decrement_total_);
  std::vector<uint64_t> out;
  for (const auto& [item, count] : counters_) {
    if (static_cast<double>(count) >= threshold) out.push_back(item);
  }
  return out;
}

std::vector<std::pair<uint64_t, int64_t>> MisraGries::Entries() const {
  std::vector<std::pair<uint64_t, int64_t>> out(counters_.begin(),
                                                counters_.end());
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

Status MisraGries::Merge(const MisraGries& other) {
  if (num_counters_ != other.num_counters_) {
    return Status::InvalidArgument(
        "MisraGries merge requires equal counter budget");
  }
  for (const auto& [item, count] : other.counters_) {
    counters_[item] += count;
  }
  total_ += other.total_;
  decrement_total_ += other.decrement_total_;

  if (counters_.size() > num_counters_) {
    // Subtract the (num_counters+1)-th largest count from everything.
    std::vector<int64_t> counts;
    counts.reserve(counters_.size());
    for (const auto& [item, count] : counters_) counts.push_back(count);
    std::nth_element(counts.begin(), counts.begin() + num_counters_,
                     counts.end(), std::greater<int64_t>());
    const int64_t pivot = counts[num_counters_];
    decrement_total_ += pivot;
    for (auto it = counters_.begin(); it != counters_.end();) {
      it->second -= pivot;
      if (it->second <= 0) {
        it = counters_.erase(it);
      } else {
        ++it;
      }
    }
  }
  return Status::Ok();
}

std::vector<uint8_t> MisraGries::Serialize() const {
  ByteWriter w;
  w.PutVarint(num_counters_);
  w.PutI64(total_);
  w.PutI64(decrement_total_);
  w.PutVarint(counters_.size());
  // Canonical order so identical summaries serialize to identical bytes.
  std::vector<std::pair<uint64_t, int64_t>> sorted(counters_.begin(),
                                                   counters_.end());
  std::sort(sorted.begin(), sorted.end());
  for (const auto& [item, count] : sorted) {
    w.PutU64(item);
    w.PutI64(count);
  }
  return WrapEnvelope(SketchTypeId::kMisraGries,
                      std::move(w).TakeBytes());
}

Result<MisraGries> MisraGries::Deserialize(
    std::span<const uint8_t> bytes) {
  Result<ByteReader> payload = OpenEnvelope(SketchTypeId::kMisraGries, bytes);
  if (!payload.ok()) return payload.status();
  ByteReader r = std::move(payload).value();
  uint64_t num_counters, num_entries;
  int64_t total, decrements;
  if (Status sn = r.GetVarint(&num_counters); !sn.ok()) return sn;
  if (Status st = r.GetI64(&total); !st.ok()) return st;
  if (Status sd = r.GetI64(&decrements); !sd.ok()) return sd;
  if (Status se = r.GetVarint(&num_entries); !se.ok()) return se;
  if (num_counters == 0 || num_entries > num_counters) {
    return Status::Corruption("invalid MisraGries header");
  }
  MisraGries mg(num_counters);
  mg.total_ = total;
  mg.decrement_total_ = decrements;
  for (uint64_t i = 0; i < num_entries; ++i) {
    uint64_t item;
    int64_t count;
    if (Status si = r.GetU64(&item); !si.ok()) return si;
    if (Status sc = r.GetI64(&count); !sc.ok()) return sc;
    if (count <= 0) return Status::Corruption("non-positive MG counter");
    mg.counters_.emplace(item, count);
  }
  return mg;
}

}  // namespace gems
