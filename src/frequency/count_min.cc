#include "frequency/count_min.h"

#include <algorithm>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "core/params.h"
#include "core/wire.h"
#include "hash/hash.h"
#include "hash/hashed_batch.h"
#include "simd/dispatch.h"

namespace gems {

CountMinSketch::CountMinSketch(uint32_t width, uint32_t depth, uint64_t seed,
                               bool conservative_update)
    : width_(width), depth_(depth), seed_(seed),
      conservative_(conservative_update) {
  GEMS_CHECK(width >= 1);
  GEMS_CHECK(depth >= 1);
  counters_.assign(static_cast<size_t>(width) * depth, 0);
  row_seeds_.reserve(depth);
  for (uint32_t row = 0; row < depth; ++row) {
    row_seeds_.push_back(DeriveSeed(seed_, row));
  }
}

CountMinSketch CountMinSketch::ForGuarantee(double epsilon, double delta,
                                            uint64_t seed) {
  GEMS_CHECK(epsilon > 0.0 && epsilon < 1.0);
  GEMS_CHECK(delta > 0.0 && delta < 1.0);
  const uint32_t width =
      static_cast<uint32_t>(std::ceil(std::exp(1.0) / epsilon));
  const uint32_t depth =
      static_cast<uint32_t>(std::ceil(std::log(1.0 / delta)));
  return CountMinSketch(width, std::max<uint32_t>(depth, 1), seed);
}

Result<CountMinSketch> CountMinSketch::ForErrorBound(double epsilon,
                                                     double delta,
                                                     uint64_t seed,
                                                     bool conservative_update) {
  if (!(epsilon > 0.0 && epsilon < 1.0)) {
    return Status::InvalidArgument("CountMin epsilon must be in (0, 1)");
  }
  if (!(delta > 0.0 && delta < 1.0)) {
    return Status::InvalidArgument("CountMin delta must be in (0, 1)");
  }
  return CountMinSketch(CountMinWidthFor(epsilon), CountMinDepthFor(delta),
                        seed, conservative_update);
}

uint64_t CountMinSketch::Bucket(uint32_t row, uint64_t item) const {
  return Hash64(item, row_seeds_[row]) % width_;
}

void CountMinSketch::Update(uint64_t item, int64_t weight) {
  GEMS_CHECK(weight >= 0);
  total_ += weight;
  if (!conservative_) {
    for (uint32_t row = 0; row < depth_; ++row) {
      counters_[static_cast<size_t>(row) * width_ + Bucket(row, item)] +=
          static_cast<uint64_t>(weight);
    }
    return;
  }
  // Conservative update: raise each counter only as far as needed so that
  // the post-update minimum reflects the new estimate.
  uint64_t current = Estimate(item);
  const uint64_t target = current + static_cast<uint64_t>(weight);
  for (uint32_t row = 0; row < depth_; ++row) {
    uint64_t& counter =
        counters_[static_cast<size_t>(row) * width_ + Bucket(row, item)];
    counter = std::max(counter, target);
  }
}

void CountMinSketch::UpdateBatchConservative(
    std::span<const uint64_t> items) {
  // Conservative updates are order-dependent (each item must see the
  // counters its predecessors raised), so the counter pass stays
  // sequential — but the two Bucket() hash walks per item (Estimate, then
  // the raise) are not, and those get hoisted: hash each chunk once per
  // row through the dispatched kernel, then replay items in order against
  // the precomputed buckets. Byte-identical to per-item Update().
  const InvariantMod mod(width_);
  uint64_t hashes[256];
  std::vector<uint32_t> buckets(static_cast<size_t>(depth_) * 256);
  while (!items.empty()) {
    const size_t n = std::min(items.size(), std::size(hashes));
    for (uint32_t row = 0; row < depth_; ++row) {
      HashBatch(items.first(n), row_seeds_[row], hashes);
      uint32_t* const row_buckets = buckets.data() + row * 256;
      for (size_t i = 0; i < n; ++i) {
        row_buckets[i] = static_cast<uint32_t>(mod(hashes[i]));
      }
    }
    for (size_t i = 0; i < n; ++i) {
      uint64_t current = ~uint64_t{0};
      for (uint32_t row = 0; row < depth_; ++row) {
        current = std::min(
            current, counters_[static_cast<size_t>(row) * width_ +
                               buckets[row * 256 + i]]);
      }
      const uint64_t target = current + 1;
      for (uint32_t row = 0; row < depth_; ++row) {
        uint64_t& counter = counters_[static_cast<size_t>(row) * width_ +
                                      buckets[row * 256 + i]];
        counter = std::max(counter, target);
      }
      ++total_;
    }
    items = items.subspan(n);
  }
}

void CountMinSketch::UpdateBatch(std::span<const uint64_t> items) {
  if (conservative_) {
    UpdateBatchConservative(items);
    return;
  }
  total_ += static_cast<int64_t>(items.size());
  const simd::SimdKernels& kernels = simd::Kernels();
  uint64_t hashes[256];
  while (!items.empty()) {
    const size_t n = std::min(items.size(), std::size(hashes));
    // Rows outer: each row hashes the chunk once with its derived seed and
    // streams additions through that row's counters via the dispatched row
    // kernel (the per-probe modulo is strength-reduced inside it). Plain
    // additions commute, so the final counters match per-item Update()
    // exactly.
    for (uint32_t row = 0; row < depth_; ++row) {
      HashBatch(items.first(n), row_seeds_[row], hashes);
      kernels.cm_row_add(counters_.data() + static_cast<size_t>(row) * width_,
                         width_, hashes, n);
    }
    items = items.subspan(n);
  }
}

void CountMinSketch::UpdateBatch(std::span<const uint64_t> items,
                                 std::span<const int64_t> weights) {
  GEMS_CHECK(items.size() == weights.size());
  if (conservative_) {
    for (size_t i = 0; i < items.size(); ++i) Update(items[i], weights[i]);
    return;
  }
  const simd::SimdKernels& kernels = simd::Kernels();
  uint64_t hashes[256];
  size_t offset = 0;
  while (offset < items.size()) {
    const size_t n = std::min(items.size() - offset, std::size(hashes));
    for (size_t i = 0; i < n; ++i) {
      GEMS_CHECK(weights[offset + i] >= 0);
      total_ += weights[offset + i];
    }
    for (uint32_t row = 0; row < depth_; ++row) {
      HashBatch(items.subspan(offset, n), row_seeds_[row], hashes);
      kernels.cm_row_add_weighted(
          counters_.data() + static_cast<size_t>(row) * width_, width_,
          hashes, weights.data() + offset, n);
    }
    offset += n;
  }
}

uint64_t CountMinSketch::Estimate(uint64_t item) const {
  uint64_t best = ~uint64_t{0};
  for (uint32_t row = 0; row < depth_; ++row) {
    best = std::min(
        best,
        counters_[static_cast<size_t>(row) * width_ + Bucket(row, item)]);
  }
  return best;
}

void CountMinSketch::EstimateBatch(std::span<const uint64_t> items,
                                   uint64_t* out) const {
  // Batched min-reduce point query: hash each chunk once per row, then fold
  // that row's counters into the running minima with the dispatched row-min
  // kernel (gathers under AVX2). out[i] == Estimate(items[i]) exactly.
  const simd::SimdKernels& kernels = simd::Kernels();
  uint64_t hashes[256];
  size_t offset = 0;
  while (offset < items.size()) {
    const size_t n = std::min(items.size() - offset, std::size(hashes));
    uint64_t* const chunk_out = out + offset;
    for (size_t i = 0; i < n; ++i) chunk_out[i] = ~uint64_t{0};
    for (uint32_t row = 0; row < depth_; ++row) {
      HashBatch(items.subspan(offset, n), row_seeds_[row], hashes);
      kernels.cm_row_min(counters_.data() + static_cast<size_t>(row) * width_,
                         width_, hashes, n, chunk_out);
    }
    offset += n;
  }
}

int64_t CountMinSketch::EstimateCountMeanMin(uint64_t item) const {
  std::vector<double> row_estimates;
  row_estimates.reserve(depth_);
  for (uint32_t row = 0; row < depth_; ++row) {
    const double counter = static_cast<double>(
        counters_[static_cast<size_t>(row) * width_ + Bucket(row, item)]);
    const double noise = (static_cast<double>(total_) - counter) /
                         (static_cast<double>(width_) - 1.0);
    row_estimates.push_back(counter - noise);
  }
  std::nth_element(row_estimates.begin(),
                   row_estimates.begin() + row_estimates.size() / 2,
                   row_estimates.end());
  const double median = row_estimates[row_estimates.size() / 2];
  // Clamp into the always-valid Count-Min envelope [0, min-counter].
  const double upper = static_cast<double>(Estimate(item));
  return static_cast<int64_t>(std::clamp(median, 0.0, upper));
}

gems::Estimate CountMinSketch::EstimateWithBounds(uint64_t item,
                                                  double confidence) const {
  const double value = static_cast<double>(Estimate(item));
  const double eps = std::exp(1.0) / static_cast<double>(width_);
  gems::Estimate e;
  e.value = value;
  e.upper = value;  // CM never underestimates.
  e.lower = std::max(0.0, value - eps * static_cast<double>(total_));
  e.confidence = confidence;
  return e;
}

Result<double> CountMinSketch::InnerProduct(
    const CountMinSketch& other) const {
  if (width_ != other.width_ || depth_ != other.depth_ ||
      seed_ != other.seed_) {
    return Status::InvalidArgument(
        "CountMin inner product requires identical shape and seed");
  }
  double best = std::numeric_limits<double>::infinity();
  for (uint32_t row = 0; row < depth_; ++row) {
    double dot = 0.0;
    for (uint32_t col = 0; col < width_; ++col) {
      const size_t i = static_cast<size_t>(row) * width_ + col;
      dot += static_cast<double>(counters_[i]) *
             static_cast<double>(other.counters_[i]);
    }
    best = std::min(best, dot);
  }
  return best;
}

Status CountMinSketch::Merge(const CountMinSketch& other) {
  if (width_ != other.width_ || depth_ != other.depth_ ||
      seed_ != other.seed_) {
    return Status::InvalidArgument(
        "CountMin merge requires identical shape and seed");
  }
  simd::Kernels().u64_add(counters_.data(), other.counters_.data(),
                          counters_.size());
  total_ += other.total_;
  return Status::Ok();
}

Status CountMinSketch::MergeFromView(const View<CountMinSketch>& view) {
  // Deserialize's validation order, then Merge's compatibility check, then
  // the counter sum streamed off the wrapped varint payload. The varints
  // are walked twice — once to validate, once to add — so a truncated
  // payload fails with Deserialize's read error before any counter moves.
  ByteReader r = view.PayloadReader();
  uint32_t width, depth;
  uint64_t seed;
  uint8_t conservative;
  int64_t total;
  if (Status sw = r.GetU32(&width); !sw.ok()) return sw;
  if (Status sd = r.GetU32(&depth); !sd.ok()) return sd;
  if (Status ss = r.GetU64(&seed); !ss.ok()) return ss;
  if (Status sc = r.GetU8(&conservative); !sc.ok()) return sc;
  if (Status st = r.GetI64(&total); !st.ok()) return st;
  if (width == 0 || depth == 0 ||
      static_cast<uint64_t>(width) * depth > (uint64_t{1} << 32)) {
    return Status::Corruption("invalid CountMin shape");
  }
  ByteReader counters = r;  // Rewind point for the add pass.
  const uint64_t n = static_cast<uint64_t>(width) * depth;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t counter;
    if (Status sv = r.GetVarint(&counter); !sv.ok()) return sv;
  }
  if (width != width_ || depth != depth_ || seed != seed_) {
    return Status::InvalidArgument(
        "CountMin merge requires identical shape and seed");
  }
  for (uint64_t& ours : counters_) {
    uint64_t counter;
    if (Status sv = counters.GetVarint(&counter); !sv.ok()) return sv;
    ours += counter;
  }
  total_ += total;
  return Status::Ok();
}

std::vector<uint8_t> CountMinSketch::Serialize() const {
  std::vector<uint8_t> out;
  out.reserve(kWireHeaderSize + 25 + counters_.size());
  ByteSink sink(&out);
  SerializeTo(sink);
  return out;
}

void CountMinSketch::SerializeTo(ByteSink& sink) const {
  EnvelopeBuilder env(sink, kTypeId);
  sink.PutU32(width_);
  sink.PutU32(depth_);
  sink.PutU64(seed_);
  sink.PutU8(conservative_ ? 1 : 0);
  sink.PutI64(total_);
  for (uint64_t counter : counters_) sink.PutVarint(counter);
}

Result<CountMinSketch> CountMinSketch::Deserialize(
    std::span<const uint8_t> bytes) {
  Result<ByteReader> payload = OpenEnvelope(SketchTypeId::kCountMin, bytes);
  if (!payload.ok()) return payload.status();
  ByteReader r = std::move(payload).value();
  uint32_t width, depth;
  uint64_t seed;
  uint8_t conservative;
  int64_t total;
  if (Status sw = r.GetU32(&width); !sw.ok()) return sw;
  if (Status sd = r.GetU32(&depth); !sd.ok()) return sd;
  if (Status ss = r.GetU64(&seed); !ss.ok()) return ss;
  if (Status sc = r.GetU8(&conservative); !sc.ok()) return sc;
  if (Status st = r.GetI64(&total); !st.ok()) return st;
  if (width == 0 || depth == 0 ||
      static_cast<uint64_t>(width) * depth > (uint64_t{1} << 32)) {
    return Status::Corruption("invalid CountMin shape");
  }
  CountMinSketch sketch(width, depth, seed, conservative != 0);
  sketch.total_ = total;
  for (uint64_t& counter : sketch.counters_) {
    if (Status sv = r.GetVarint(&counter); !sv.ok()) return sv;
  }
  return sketch;
}

CountMinHeavyHitters::CountMinHeavyHitters(uint32_t width, uint32_t depth,
                                           size_t k, uint64_t seed)
    : sketch_(width, depth, seed), k_(k) {
  GEMS_CHECK(k >= 1);
}

void CountMinHeavyHitters::Update(uint64_t item, int64_t weight) {
  sketch_.Update(item, weight);
  const uint64_t estimate = sketch_.Estimate(item);

  const auto found = index_.find(item);
  if (found != index_.end()) {
    heap_.erase(found->second);
    index_[item] = heap_.emplace(estimate, item);
    return;
  }
  if (index_.size() < k_) {
    index_[item] = heap_.emplace(estimate, item);
    return;
  }
  // Replace the weakest candidate if this item now beats it.
  const auto weakest = heap_.begin();
  if (estimate > weakest->first) {
    index_.erase(weakest->second);
    heap_.erase(weakest);
    index_[item] = heap_.emplace(estimate, item);
  }
}

std::vector<std::pair<uint64_t, uint64_t>> CountMinHeavyHitters::TopK()
    const {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  out.reserve(heap_.size());
  for (auto it = heap_.rbegin(); it != heap_.rend(); ++it) {
    out.emplace_back(it->second, it->first);  // (item, count), best first.
  }
  return out;
}

std::vector<uint64_t> CountMinHeavyHitters::HeavyHitters(double phi) const {
  const double threshold =
      phi * static_cast<double>(sketch_.TotalWeight());
  std::vector<uint64_t> out;
  for (const auto& [count, item] : heap_) {
    if (static_cast<double>(count) >= threshold) out.push_back(item);
  }
  return out;
}

}  // namespace gems
