#include "frequency/count_min.h"

#include <algorithm>
#include <bit>
#include <cmath>
#include <limits>

#include "common/check.h"
#include "common/prefetch.h"
#include "core/params.h"
#include "core/wire.h"
#include "hash/hash.h"
#include "hash/hashed_batch.h"
#include "hash/murmur3.h"
#include "simd/dispatch.h"
#include "simd/internal.h"

namespace gems {
namespace {

using simd::internal::CmBlockCol;
using simd::internal::CmBlockedMinOne;
using simd::internal::kCmBlockSlots;

// Two-phase software prefetch in the flat batched loops only pays once a
// row is big enough that its working set blows the caches — below this the
// lines are resident anyway and the extra modulo pass is pure cost.
constexpr size_t kPrefetchMinRowBytes = size_t{1} << 18;

// Largest power-of-two column count per row that fits depth rows into one
// 8-counter block (depth 1 -> 8, 2 -> 4, 3..4 -> 2, 5..8 -> 1).
uint32_t BlockColsFor(uint32_t depth) {
  uint32_t cols = 1;
  while (cols * 2 * depth <= kCmBlockSlots) cols *= 2;
  return cols;
}

}  // namespace

CountMinSketch::CountMinSketch(uint32_t width, uint32_t depth, uint64_t seed,
                               bool conservative_update, SketchLayout layout)
    : width_(width), depth_(depth), seed_(seed),
      conservative_(conservative_update), layout_(layout) {
  GEMS_CHECK(width >= 1);
  GEMS_CHECK(depth >= 1);
  if (layout_ == SketchLayout::kBlocked) {
    GEMS_CHECK(depth <= static_cast<uint32_t>(kCmBlockSlots));
    cols_ = BlockColsFor(depth);
    num_blocks_ = (static_cast<uint64_t>(width) + cols_ - 1) / cols_;
    width_ = static_cast<uint32_t>(num_blocks_ * cols_);
    counters_.assign(num_blocks_ * kCmBlockSlots, 0);
  } else {
    counters_.assign(static_cast<size_t>(width) * depth, 0);
  }
  row_seeds_.reserve(depth);
  for (uint32_t row = 0; row < depth; ++row) {
    row_seeds_.push_back(DeriveSeed(seed_, row));
  }
}

CountMinSketch CountMinSketch::ForGuarantee(double epsilon, double delta,
                                            uint64_t seed) {
  GEMS_CHECK(epsilon > 0.0 && epsilon < 1.0);
  GEMS_CHECK(delta > 0.0 && delta < 1.0);
  const uint32_t width =
      static_cast<uint32_t>(std::ceil(std::exp(1.0) / epsilon));
  const uint32_t depth =
      static_cast<uint32_t>(std::ceil(std::log(1.0 / delta)));
  return CountMinSketch(width, std::max<uint32_t>(depth, 1), seed);
}

Result<CountMinSketch> CountMinSketch::ForErrorBound(double epsilon,
                                                     double delta,
                                                     uint64_t seed,
                                                     bool conservative_update) {
  if (!(epsilon > 0.0 && epsilon < 1.0)) {
    return Status::InvalidArgument("CountMin epsilon must be in (0, 1)");
  }
  if (!(delta > 0.0 && delta < 1.0)) {
    return Status::InvalidArgument("CountMin delta must be in (0, 1)");
  }
  return CountMinSketch(CountMinWidthFor(epsilon), CountMinDepthFor(delta),
                        seed, conservative_update);
}

uint64_t CountMinSketch::Bucket(uint32_t row, uint64_t item) const {
  return Hash64(item, row_seeds_[row]) % width_;
}

void CountMinSketch::Update(uint64_t item, int64_t weight) {
  GEMS_CHECK(weight >= 0);
  total_ += weight;
  if (layout_ == SketchLayout::kBlocked) {
    const Hash128 h = Murmur3_128_U64(item, seed_);
    uint64_t* const block = &counters_[(h.low % num_blocks_) * kCmBlockSlots];
    if (!conservative_) {
      simd::internal::CmBlockedAddOne(block, depth_, cols_, h.high,
                                      static_cast<uint64_t>(weight));
      return;
    }
    // Conservative raise inside the one block: estimate and raise both
    // touch the same cache line, so the blocked layout keeps conservative
    // updates cheap too.
    const uint64_t target = CmBlockedMinOne(block, depth_, cols_, h.high) +
                            static_cast<uint64_t>(weight);
    const uint32_t col_mask = cols_ - 1;
    for (uint32_t row = 0; row < depth_; ++row) {
      uint64_t& counter = block[row * cols_ + CmBlockCol(h.high, row, col_mask)];
      counter = std::max(counter, target);
    }
    return;
  }
  if (!conservative_) {
    for (uint32_t row = 0; row < depth_; ++row) {
      counters_[static_cast<size_t>(row) * width_ + Bucket(row, item)] +=
          static_cast<uint64_t>(weight);
    }
    return;
  }
  // Conservative update: raise each counter only as far as needed so that
  // the post-update minimum reflects the new estimate.
  uint64_t current = Estimate(item);
  const uint64_t target = current + static_cast<uint64_t>(weight);
  for (uint32_t row = 0; row < depth_; ++row) {
    uint64_t& counter =
        counters_[static_cast<size_t>(row) * width_ + Bucket(row, item)];
    counter = std::max(counter, target);
  }
}

void CountMinSketch::UpdateBatchConservative(
    std::span<const uint64_t> items) {
  if (layout_ == SketchLayout::kBlocked) {
    // Conservative + blocked stays per-item: both the estimate and the
    // raise live in one cache line, so there is no cross-row hash walk to
    // hoist.
    for (uint64_t item : items) Update(item, 1);
    return;
  }
  // Conservative updates are order-dependent (each item must see the
  // counters its predecessors raised), so the counter pass stays
  // sequential — but the two Bucket() hash walks per item (Estimate, then
  // the raise) are not, and those get hoisted: hash each chunk once per
  // row through the dispatched kernel, then replay items in order against
  // the precomputed buckets. Byte-identical to per-item Update().
  const InvariantMod mod(width_);
  uint64_t hashes[256];
  std::vector<uint32_t> buckets(static_cast<size_t>(depth_) * 256);
  while (!items.empty()) {
    const size_t n = std::min(items.size(), std::size(hashes));
    for (uint32_t row = 0; row < depth_; ++row) {
      HashBatch(items.first(n), row_seeds_[row], hashes);
      uint32_t* const row_buckets = buckets.data() + row * 256;
      for (size_t i = 0; i < n; ++i) {
        row_buckets[i] = static_cast<uint32_t>(mod(hashes[i]));
      }
    }
    for (size_t i = 0; i < n; ++i) {
      uint64_t current = ~uint64_t{0};
      for (uint32_t row = 0; row < depth_; ++row) {
        current = std::min(
            current, counters_[static_cast<size_t>(row) * width_ +
                               buckets[row * 256 + i]]);
      }
      const uint64_t target = current + 1;
      for (uint32_t row = 0; row < depth_; ++row) {
        uint64_t& counter = counters_[static_cast<size_t>(row) * width_ +
                                      buckets[row * 256 + i]];
        counter = std::max(counter, target);
      }
      ++total_;
    }
    items = items.subspan(n);
  }
}

void CountMinSketch::UpdateBatch(std::span<const uint64_t> items) {
  if (conservative_) {
    UpdateBatchConservative(items);
    return;
  }
  total_ += static_cast<int64_t>(items.size());
  const simd::SimdKernels& kernels = simd::Kernels();
  if (layout_ == SketchLayout::kBlocked) {
    // One fused kernel pass: hash once per item, prefetch the single block,
    // update all depth_ rows inside it. Matches per-item Update() exactly.
    kernels.cm_blocked_add(counters_.data(), num_blocks_, depth_, cols_,
                           seed_, items.data(), items.size());
    return;
  }
  const bool prefetch =
      PrefetchEnabled() &&
      static_cast<size_t>(width_) * sizeof(uint64_t) >= kPrefetchMinRowBytes;
  const InvariantMod mod(width_);
  uint64_t hashes[256];
  while (!items.empty()) {
    const size_t n = std::min(items.size(), std::size(hashes));
    // Rows outer: each row hashes the chunk once with its derived seed and
    // streams additions through that row's counters via the dispatched row
    // kernel (the per-probe modulo is strength-reduced inside it). Plain
    // additions commute, so the final counters match per-item Update()
    // exactly.
    for (uint32_t row = 0; row < depth_; ++row) {
      HashBatch(items.first(n), row_seeds_[row], hashes);
      uint64_t* const row_ptr =
          counters_.data() + static_cast<size_t>(row) * width_;
      if (prefetch) {
        // Two-phase touch: issue the chunk's target lines before the add
        // pass so the row kernel's stores hit lines already in flight. The
        // extra modulo pass is why this is gated on big rows.
        for (size_t i = 0; i < n; ++i) PrefetchForWrite(row_ptr + mod(hashes[i]));
      }
      kernels.cm_row_add(row_ptr, width_, hashes, n);
    }
    items = items.subspan(n);
  }
}

void CountMinSketch::UpdateBatch(std::span<const uint64_t> items,
                                 std::span<const int64_t> weights) {
  GEMS_CHECK(items.size() == weights.size());
  if (conservative_) {
    for (size_t i = 0; i < items.size(); ++i) Update(items[i], weights[i]);
    return;
  }
  const simd::SimdKernels& kernels = simd::Kernels();
  if (layout_ == SketchLayout::kBlocked) {
    for (size_t i = 0; i < items.size(); ++i) {
      GEMS_CHECK(weights[i] >= 0);
      total_ += weights[i];
    }
    kernels.cm_blocked_add_weighted(counters_.data(), num_blocks_, depth_,
                                    cols_, seed_, items.data(), weights.data(),
                                    items.size());
    return;
  }
  uint64_t hashes[256];
  size_t offset = 0;
  while (offset < items.size()) {
    const size_t n = std::min(items.size() - offset, std::size(hashes));
    for (size_t i = 0; i < n; ++i) {
      GEMS_CHECK(weights[offset + i] >= 0);
      total_ += weights[offset + i];
    }
    for (uint32_t row = 0; row < depth_; ++row) {
      HashBatch(items.subspan(offset, n), row_seeds_[row], hashes);
      kernels.cm_row_add_weighted(
          counters_.data() + static_cast<size_t>(row) * width_, width_,
          hashes, weights.data() + offset, n);
    }
    offset += n;
  }
}

uint64_t CountMinSketch::Estimate(uint64_t item) const {
  if (layout_ == SketchLayout::kBlocked) {
    const Hash128 h = Murmur3_128_U64(item, seed_);
    return CmBlockedMinOne(&counters_[(h.low % num_blocks_) * kCmBlockSlots],
                           depth_, cols_, h.high);
  }
  uint64_t best = ~uint64_t{0};
  for (uint32_t row = 0; row < depth_; ++row) {
    best = std::min(
        best,
        counters_[static_cast<size_t>(row) * width_ + Bucket(row, item)]);
  }
  return best;
}

void CountMinSketch::RowCounters(uint64_t item, uint64_t* out) const {
  if (layout_ == SketchLayout::kBlocked) {
    const Hash128 h = Murmur3_128_U64(item, seed_);
    const uint64_t* const block =
        &counters_[(h.low % num_blocks_) * kCmBlockSlots];
    const uint32_t col_mask = cols_ - 1;
    for (uint32_t row = 0; row < depth_; ++row) {
      out[row] = block[row * cols_ + CmBlockCol(h.high, row, col_mask)];
    }
    return;
  }
  for (uint32_t row = 0; row < depth_; ++row) {
    out[row] = counters_[static_cast<size_t>(row) * width_ + Bucket(row, item)];
  }
}

void CountMinSketch::EstimateBatch(std::span<const uint64_t> items,
                                   uint64_t* out) const {
  // Batched min-reduce point query: hash each chunk once per row, then fold
  // that row's counters into the running minima with the dispatched row-min
  // kernel (gathers under AVX2). out[i] == Estimate(items[i]) exactly.
  const simd::SimdKernels& kernels = simd::Kernels();
  if (layout_ == SketchLayout::kBlocked) {
    kernels.cm_blocked_min(counters_.data(), num_blocks_, depth_, cols_,
                           seed_, items.data(), items.size(), out);
    return;
  }
  uint64_t hashes[256];
  size_t offset = 0;
  while (offset < items.size()) {
    const size_t n = std::min(items.size() - offset, std::size(hashes));
    uint64_t* const chunk_out = out + offset;
    for (size_t i = 0; i < n; ++i) chunk_out[i] = ~uint64_t{0};
    for (uint32_t row = 0; row < depth_; ++row) {
      HashBatch(items.subspan(offset, n), row_seeds_[row], hashes);
      kernels.cm_row_min(counters_.data() + static_cast<size_t>(row) * width_,
                         width_, hashes, n, chunk_out);
    }
    offset += n;
  }
}

int64_t CountMinSketch::EstimateCountMeanMin(uint64_t item) const {
  std::vector<uint64_t> row_counters(depth_);
  RowCounters(item, row_counters.data());
  std::vector<double> row_estimates;
  row_estimates.reserve(depth_);
  for (uint32_t row = 0; row < depth_; ++row) {
    const double counter = static_cast<double>(row_counters[row]);
    const double noise = (static_cast<double>(total_) - counter) /
                         (static_cast<double>(width_) - 1.0);
    row_estimates.push_back(counter - noise);
  }
  std::nth_element(row_estimates.begin(),
                   row_estimates.begin() + row_estimates.size() / 2,
                   row_estimates.end());
  const double median = row_estimates[row_estimates.size() / 2];
  // Clamp into the always-valid Count-Min envelope [0, min-counter].
  const double upper = static_cast<double>(Estimate(item));
  return static_cast<int64_t>(std::clamp(median, 0.0, upper));
}

gems::Estimate CountMinSketch::EstimateWithBounds(uint64_t item,
                                                  double confidence) const {
  const double value = static_cast<double>(Estimate(item));
  const double eps = std::exp(1.0) / static_cast<double>(width_);
  gems::Estimate e;
  e.value = value;
  e.upper = value;  // CM never underestimates.
  e.lower = std::max(0.0, value - eps * static_cast<double>(total_));
  e.confidence = confidence;
  return e;
}

Result<double> CountMinSketch::InnerProduct(
    const CountMinSketch& other) const {
  if (width_ != other.width_ || depth_ != other.depth_ ||
      seed_ != other.seed_ || layout_ != other.layout_) {
    return Status::InvalidArgument(
        "CountMin inner product requires identical shape, seed, and layout");
  }
  double best = std::numeric_limits<double>::infinity();
  if (layout_ == SketchLayout::kBlocked) {
    // Row r of the logical flat matrix is the union of every block's
    // [r*cols_, (r+1)*cols_) slots; the dot product is index-set invariant,
    // so walk those slots directly.
    for (uint32_t row = 0; row < depth_; ++row) {
      double dot = 0.0;
      for (uint64_t b = 0; b < num_blocks_; ++b) {
        const size_t base = b * kCmBlockSlots + row * cols_;
        for (uint32_t j = 0; j < cols_; ++j) {
          dot += static_cast<double>(counters_[base + j]) *
                 static_cast<double>(other.counters_[base + j]);
        }
      }
      best = std::min(best, dot);
    }
    return best;
  }
  for (uint32_t row = 0; row < depth_; ++row) {
    double dot = 0.0;
    for (uint32_t col = 0; col < width_; ++col) {
      const size_t i = static_cast<size_t>(row) * width_ + col;
      dot += static_cast<double>(counters_[i]) *
             static_cast<double>(other.counters_[i]);
    }
    best = std::min(best, dot);
  }
  return best;
}

Status CountMinSketch::Merge(const CountMinSketch& other) {
  if (width_ != other.width_ || depth_ != other.depth_ ||
      seed_ != other.seed_ || layout_ != other.layout_) {
    return Status::InvalidArgument(
        "CountMin merge requires identical shape, seed, and layout");
  }
  // Same layout means the storage arrays align element-for-element (blocked
  // padding slots are zero on both sides), so the counter-wise sum is
  // layout-agnostic.
  simd::Kernels().u64_add(counters_.data(), other.counters_.data(),
                          counters_.size());
  total_ += other.total_;
  return Status::Ok();
}

Status CountMinSketch::MergeFromView(const View<CountMinSketch>& view) {
  // Deserialize's validation order, then Merge's compatibility check, then
  // the counter sum streamed off the wrapped varint payload. The varints
  // are walked twice — once to validate, once to add — so a truncated
  // payload fails with Deserialize's read error before any counter moves.
  ByteReader r = view.PayloadReader();
  uint32_t width, depth;
  uint64_t seed;
  uint8_t conservative;
  int64_t total;
  if (Status sw = r.GetU32(&width); !sw.ok()) return sw;
  if (Status sd = r.GetU32(&depth); !sd.ok()) return sd;
  if (Status ss = r.GetU64(&seed); !ss.ok()) return ss;
  if (Status sc = r.GetU8(&conservative); !sc.ok()) return sc;
  if (Status st = r.GetI64(&total); !st.ok()) return st;
  if (width == 0 || depth == 0 ||
      static_cast<uint64_t>(width) * depth > (uint64_t{1} << 32)) {
    return Status::Corruption("invalid CountMin shape");
  }
  ByteReader counters = r;  // Rewind point for the add pass.
  const uint64_t n = static_cast<uint64_t>(width) * depth;
  for (uint64_t i = 0; i < n; ++i) {
    uint64_t counter;
    if (Status sv = r.GetVarint(&counter); !sv.ok()) return sv;
  }
  // Optional trailing layout byte: absent or 0 means flat, 1 means the
  // peer was blocked (wire counters are flat-permuted either way).
  SketchLayout wire_layout = SketchLayout::kFlat;
  if (!r.AtEnd()) {
    uint8_t layout_byte;
    if (Status sl = r.GetU8(&layout_byte); !sl.ok()) return sl;
    if (layout_byte > 1) {
      return Status::Corruption("invalid CountMin layout byte");
    }
    wire_layout = static_cast<SketchLayout>(layout_byte);
  }
  if (width != width_ || depth != depth_ || seed != seed_ ||
      wire_layout != layout_) {
    return Status::InvalidArgument(
        "CountMin merge requires identical shape, seed, and layout");
  }
  if (layout_ == SketchLayout::kBlocked) {
    // The wire walks the logical flat matrix row-major; flat column
    // b*cols_+j of row r lives at slot b*8 + r*cols_ + j here.
    const uint32_t col_shift = std::countr_zero(cols_);
    const uint32_t col_mask = cols_ - 1;
    for (uint32_t row = 0; row < depth_; ++row) {
      for (uint32_t col = 0; col < width_; ++col) {
        uint64_t counter;
        if (Status sv = counters.GetVarint(&counter); !sv.ok()) return sv;
        counters_[(static_cast<uint64_t>(col >> col_shift) * kCmBlockSlots) +
                  row * cols_ + (col & col_mask)] += counter;
      }
    }
    total_ += total;
    return Status::Ok();
  }
  for (uint64_t& ours : counters_) {
    uint64_t counter;
    if (Status sv = counters.GetVarint(&counter); !sv.ok()) return sv;
    ours += counter;
  }
  total_ += total;
  return Status::Ok();
}

std::vector<uint8_t> CountMinSketch::Serialize() const {
  std::vector<uint8_t> out;
  out.reserve(kWireHeaderSize + 25 + counters_.size());
  ByteSink sink(&out);
  SerializeTo(sink);
  return out;
}

void CountMinSketch::SerializeTo(ByteSink& sink) const {
  EnvelopeBuilder env(sink, kTypeId);
  sink.PutU32(width_);
  sink.PutU32(depth_);
  sink.PutU64(seed_);
  sink.PutU8(conservative_ ? 1 : 0);
  sink.PutI64(total_);
  if (layout_ == SketchLayout::kBlocked) {
    // Wire counters are always the logical flat matrix, row-major: flat
    // column b*cols_+j of row r lives at slot b*8 + r*cols_ + j. A single
    // trailing byte records the layout so Deserialize rebuilds a blocked
    // sketch; flat sketches write nothing extra, keeping their wire bytes
    // identical to every earlier release.
    const uint32_t col_shift = std::countr_zero(cols_);
    const uint32_t col_mask = cols_ - 1;
    for (uint32_t row = 0; row < depth_; ++row) {
      for (uint32_t col = 0; col < width_; ++col) {
        sink.PutVarint(
            counters_[(static_cast<uint64_t>(col >> col_shift) *
                       kCmBlockSlots) +
                      row * cols_ + (col & col_mask)]);
      }
    }
    sink.PutU8(1);
    return;
  }
  for (uint64_t counter : counters_) sink.PutVarint(counter);
}

Result<CountMinSketch> CountMinSketch::Deserialize(
    std::span<const uint8_t> bytes) {
  Result<ByteReader> payload = OpenEnvelope(SketchTypeId::kCountMin, bytes);
  if (!payload.ok()) return payload.status();
  ByteReader r = std::move(payload).value();
  uint32_t width, depth;
  uint64_t seed;
  uint8_t conservative;
  int64_t total;
  if (Status sw = r.GetU32(&width); !sw.ok()) return sw;
  if (Status sd = r.GetU32(&depth); !sd.ok()) return sd;
  if (Status ss = r.GetU64(&seed); !ss.ok()) return ss;
  if (Status sc = r.GetU8(&conservative); !sc.ok()) return sc;
  if (Status st = r.GetI64(&total); !st.ok()) return st;
  if (width == 0 || depth == 0 ||
      static_cast<uint64_t>(width) * depth > (uint64_t{1} << 32)) {
    return Status::Corruption("invalid CountMin shape");
  }
  CountMinSketch sketch(width, depth, seed, conservative != 0);
  sketch.total_ = total;
  for (uint64_t& counter : sketch.counters_) {
    if (Status sv = r.GetVarint(&counter); !sv.ok()) return sv;
  }
  // Optional trailing layout byte (see SerializeTo): absent or 0 is the
  // flat fast path above; 1 re-permutes the flat counters into a blocked
  // sketch.
  if (r.AtEnd()) return sketch;
  uint8_t layout_byte;
  if (Status sl = r.GetU8(&layout_byte); !sl.ok()) return sl;
  if (layout_byte == 0) return sketch;
  if (layout_byte != 1) {
    return Status::Corruption("invalid CountMin layout byte");
  }
  if (depth > 8) {
    // The blocked ctor aborts past one block's worth of rows; surface the
    // corrupt combination as a status instead.
    return Status::Corruption("CountMin blocked depth exceeds block");
  }
  CountMinSketch blocked(width, depth, seed, conservative != 0,
                         SketchLayout::kBlocked);
  if (blocked.width_ != width) {
    // A blocked sketch always serializes its rounded width, so a width
    // that is not a multiple of the block columns cannot round-trip.
    return Status::Corruption("CountMin blocked width not block-aligned");
  }
  blocked.total_ = total;
  const uint32_t col_shift = std::countr_zero(blocked.cols_);
  const uint32_t col_mask = blocked.cols_ - 1;
  for (uint32_t row = 0; row < depth; ++row) {
    for (uint32_t col = 0; col < width; ++col) {
      blocked.counters_[(static_cast<uint64_t>(col >> col_shift) *
                         kCmBlockSlots) +
                        row * blocked.cols_ + (col & col_mask)] =
          sketch.counters_[static_cast<size_t>(row) * width + col];
    }
  }
  return blocked;
}

CountMinHeavyHitters::CountMinHeavyHitters(uint32_t width, uint32_t depth,
                                           size_t k, uint64_t seed)
    : sketch_(width, depth, seed), k_(k) {
  GEMS_CHECK(k >= 1);
}

void CountMinHeavyHitters::Update(uint64_t item, int64_t weight) {
  sketch_.Update(item, weight);
  const uint64_t estimate = sketch_.Estimate(item);

  const auto found = index_.find(item);
  if (found != index_.end()) {
    heap_.erase(found->second);
    index_[item] = heap_.emplace(estimate, item);
    return;
  }
  if (index_.size() < k_) {
    index_[item] = heap_.emplace(estimate, item);
    return;
  }
  // Replace the weakest candidate if this item now beats it.
  const auto weakest = heap_.begin();
  if (estimate > weakest->first) {
    index_.erase(weakest->second);
    heap_.erase(weakest);
    index_[item] = heap_.emplace(estimate, item);
  }
}

std::vector<std::pair<uint64_t, uint64_t>> CountMinHeavyHitters::TopK()
    const {
  std::vector<std::pair<uint64_t, uint64_t>> out;
  out.reserve(heap_.size());
  for (auto it = heap_.rbegin(); it != heap_.rend(); ++it) {
    out.emplace_back(it->second, it->first);  // (item, count), best first.
  }
  return out;
}

std::vector<uint64_t> CountMinHeavyHitters::HeavyHitters(double phi) const {
  const double threshold =
      phi * static_cast<double>(sketch_.TotalWeight());
  std::vector<uint64_t> out;
  for (const auto& [count, item] : heap_) {
    if (static_cast<double>(count) >= threshold) out.push_back(item);
  }
  return out;
}

}  // namespace gems
