#ifndef GEMS_FREQUENCY_DYADIC_COUNT_MIN_H_
#define GEMS_FREQUENCY_DYADIC_COUNT_MIN_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "frequency/count_min.h"

/// \file
/// Dyadic Count-Min structure: one CM sketch per level of the dyadic
/// decomposition of the universe [0, 2^universe_bits). Supports range-sum
/// queries (any range decomposes into at most 2 dyadic intervals per level)
/// and, by binary search over prefix sums, approximate quantiles over
/// integer domains — the classic CM-sketch application from the original
/// paper (Cormode & Muthukrishnan 2005, section on range queries).

namespace gems {

/// Count-Min over dyadic intervals.
class DyadicCountMin {
 public:
  /// Universe is [0, 2^universe_bits); each of the universe_bits+1 levels
  /// gets a (width x depth) CM sketch.
  DyadicCountMin(int universe_bits, uint32_t width, uint32_t depth,
                 uint64_t seed = 0);

  DyadicCountMin(const DyadicCountMin&) = default;
  DyadicCountMin& operator=(const DyadicCountMin&) = default;
  DyadicCountMin(DyadicCountMin&&) = default;
  DyadicCountMin& operator=(DyadicCountMin&&) = default;

  /// Adds `weight` >= 0 at point `x` (x < 2^universe_bits).
  void Update(uint64_t x, int64_t weight = 1);

  /// Overestimate of the total weight in [lo, hi] (inclusive).
  uint64_t EstimateRangeSum(uint64_t lo, uint64_t hi) const;

  /// Smallest x such that the estimated prefix sum [0, x] >= q * N.
  uint64_t EstimateQuantile(double q) const;

  Status Merge(const DyadicCountMin& other);

  int universe_bits() const { return universe_bits_; }
  int64_t TotalWeight() const { return total_; }
  size_t MemoryBytes() const;

 private:
  int universe_bits_;
  int64_t total_ = 0;
  std::vector<CountMinSketch> levels_;  // levels_[l] counts prefixes x >> l.
};

}  // namespace gems

#endif  // GEMS_FREQUENCY_DYADIC_COUNT_MIN_H_
