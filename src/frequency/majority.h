#ifndef GEMS_FREQUENCY_MAJORITY_H_
#define GEMS_FREQUENCY_MAJORITY_H_

#include <cstdint>
#include <optional>

/// \file
/// Boyer-Moore majority vote (1981): one candidate and one counter find the
/// majority element of a sequence, if one exists. The historical seed of
/// Misra-Gries (which generalizes it to k counters) and the smallest
/// possible "sketch" in this library: 16 bytes of state.

namespace gems {

/// Streaming majority-vote tracker.
class MajorityVote {
 public:
  MajorityVote() = default;

  /// Processes one item.
  void Update(uint64_t item) {
    if (count_ == 0) {
      candidate_ = item;
      count_ = 1;
    } else if (candidate_ == item) {
      ++count_;
    } else {
      --count_;
    }
    ++total_;
  }

  /// The surviving candidate. If a strict majority item exists, this is it;
  /// otherwise the value is arbitrary — callers needing certainty must
  /// verify with a second pass (as Boyer & Moore prescribed).
  std::optional<uint64_t> Candidate() const {
    if (total_ == 0) return std::nullopt;
    return candidate_;
  }

  /// The counter value (residual margin of the candidate).
  uint64_t Margin() const { return count_; }

  uint64_t TotalSeen() const { return total_; }

 private:
  uint64_t candidate_ = 0;
  uint64_t count_ = 0;
  uint64_t total_ = 0;
};

}  // namespace gems

#endif  // GEMS_FREQUENCY_MAJORITY_H_
