#ifndef GEMS_FREQUENCY_MISRA_GRIES_H_
#define GEMS_FREQUENCY_MISRA_GRIES_H_

#include <cstdint>
#include <span>
#include <unordered_map>
#include <vector>

#include "common/status.h"
#include "core/estimate.h"

/// \file
/// Misra-Gries frequent items (1982), the generalization of Boyer-Moore
/// majority voting: k-1 counters guarantee every item with true count
/// > N/k is retained, and every retained count underestimates the truth by
/// at most N/k. Its merge rule — add counters, then subtract the k-th
/// largest from all and drop non-positives — is one of the flagship results
/// of the "Mergeable Summaries" paper (PODS 2012 test-of-time) that this
/// library's distributed substrate exercises.

namespace gems {

/// Misra-Gries summary with at most `num_counters` tracked items.
class MisraGries {
 public:
  explicit MisraGries(size_t num_counters);

  MisraGries(const MisraGries&) = default;
  MisraGries& operator=(const MisraGries&) = default;
  MisraGries(MisraGries&&) = default;
  MisraGries& operator=(MisraGries&&) = default;

  /// Adds `weight` (>= 1) occurrences of `item`.
  void Update(uint64_t item, int64_t weight = 1);

  /// Batched ingest. Coalesces runs of equal items into one weighted
  /// update when that is provably order-independent (item tracked, or a
  /// counter slot free) and replays item-by-item otherwise, so the summary
  /// is byte-identical to a per-item Update() loop.
  void UpdateBatch(std::span<const uint64_t> items);

  /// Lower-bound estimate of the item's count (0 if not tracked).
  /// True count is in [estimate, estimate + error_bound()].
  int64_t Estimate(uint64_t item) const;

  /// Point estimate with the deterministic Misra-Gries envelope:
  /// [estimate, estimate + ErrorBound()]. The bound is exact, so
  /// `confidence` is reported as-is.
  gems::Estimate EstimateWithBounds(uint64_t item,
                                    double confidence = 0.95) const;

  /// Maximum undercount: total decremented weight so far (<= N/k).
  int64_t ErrorBound() const { return decrement_total_; }

  /// Items that may have count >= phi * N (no false negatives).
  std::vector<uint64_t> HeavyHitterCandidates(double phi) const;

  /// Tracked items with counts, largest first.
  std::vector<std::pair<uint64_t, int64_t>> Entries() const;

  /// Mergeable-summaries merge: combine counters, subtract the
  /// (num_counters+1)-th largest, drop non-positive.
  Status Merge(const MisraGries& other);

  int64_t TotalWeight() const { return total_; }
  size_t num_counters() const { return num_counters_; }
  size_t NumTracked() const { return counters_.size(); }

  std::vector<uint8_t> Serialize() const;
  static Result<MisraGries> Deserialize(std::span<const uint8_t> bytes);

 private:
  size_t num_counters_;
  int64_t total_ = 0;
  int64_t decrement_total_ = 0;
  std::unordered_map<uint64_t, int64_t> counters_;
};

}  // namespace gems

#endif  // GEMS_FREQUENCY_MISRA_GRIES_H_
