#ifndef GEMS_FREQUENCY_SPACE_SAVING_H_
#define GEMS_FREQUENCY_SPACE_SAVING_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/status.h"
#include "core/estimate.h"
#include "core/io.h"
#include "core/view.h"

/// \file
/// SpaceSaving (Metwally, Agrawal & El Abbadi 2005): the "stream-summary"
/// deterministic top-k/heavy-hitter sketch. Tracks exactly k items; a new
/// item evicts the current minimum and inherits its count (recorded as that
/// item's error). Guarantees: every item with true count > N/k is tracked;
/// estimates overestimate by at most the recorded per-item error <= N/k.
/// The paper later notes its equivalence to Misra-Gries (counts differ by
/// exactly the MG decrement total) — a property the tests verify.

namespace gems {

/// SpaceSaving summary tracking `capacity` items.
///
/// Storage is one flat unsorted vector of (item, count, error) slots.
/// Practical capacities are small (tens to a few hundred — 1/phi), where a
/// linear scan over a contiguous ~16-byte-per-slot array beats the classic
/// hash-map-plus-heap layout: no per-node allocation, no pointer chasing,
/// and copies/merges are plain memcpy-and-sort. Sliding-window pane rings
/// copy and merge these summaries on every pane rotation, which is where
/// the flat layout pays off most.
class SpaceSaving {
 public:
  /// Wire-format type tag, for View<SpaceSaving> wrapping.
  static constexpr SketchTypeId kTypeId = SketchTypeId::kSpaceSaving;

  explicit SpaceSaving(size_t capacity);

  /// Advisor-driven constructor: capacity ceil(1/phi) so every item with
  /// frequency > phi*N is guaranteed tracked. kInvalidArgument if `phi` is
  /// outside (0, 1].
  static Result<SpaceSaving> ForThreshold(double phi);

  SpaceSaving(const SpaceSaving&) = default;
  SpaceSaving& operator=(const SpaceSaving&) = default;
  SpaceSaving(SpaceSaving&&) = default;
  SpaceSaving& operator=(SpaceSaving&&) = default;

  /// Adds `weight` (>= 1) occurrences of `item`. On eviction, ties on the
  /// minimum count break toward the smallest item id — a content-determined
  /// rule, so two summaries holding the same logical state evolve
  /// identically regardless of the order their slots were populated in
  /// (e.g. one restored from a checkpoint, one that kept running).
  void Update(uint64_t item, int64_t weight = 1);

  /// Batched ingest: coalesces runs of equal adjacent items into one
  /// weighted update, so hot items on skewed streams pay one slot scan per
  /// run instead of one per occurrence. State is byte-identical to
  /// per-item Update() (a weight-r update is equivalent to r unit updates
  /// in every tracked/untracked/eviction case).
  void UpdateBatch(std::span<const uint64_t> items);

  /// Weighted batched ingest; `weights` must parallel `items` and every
  /// weight must be >= 1. Runs of equal adjacent items are coalesced.
  void UpdateBatch(std::span<const uint64_t> items,
                   std::span<const int64_t> weights);

  /// Overestimate of the item's count; untracked items get the current
  /// minimum count (the correct upper bound for them).
  int64_t Estimate(uint64_t item) const;

  /// Point estimate with the deterministic SpaceSaving envelope:
  /// [count - error, count] for tracked items, [0, MinCount()] for
  /// untracked ones. The bound is exact, so `confidence` is reported
  /// as-is.
  gems::Estimate EstimateWithBounds(uint64_t item,
                                    double confidence = 0.95) const;

  /// Guaranteed overestimation error for a tracked item (0 if untracked or
  /// never evicted anyone).
  int64_t ErrorOf(uint64_t item) const;

  /// True if the item's estimate is *guaranteed* correct (error == 0).
  bool IsGuaranteedExact(uint64_t item) const;

  /// Items with estimated count >= phi * N (no false negatives).
  std::vector<uint64_t> HeavyHitterCandidates(double phi) const;

  /// Tracked items (item, count, error), largest count first.
  struct Entry {
    uint64_t item;
    int64_t count;
    int64_t error;
  };
  std::vector<Entry> Entries() const;

  /// Top-k by estimated count.
  std::vector<Entry> TopK(size_t k) const;

  /// Merge preserving the SpaceSaving error guarantees (combined counts and
  /// errors added for shared items; then truncated back to capacity, with
  /// the truncation folded into the kept items' admissible error).
  Status Merge(const SpaceSaving& other);

  /// Merges a wrapped serialized peer. The merge rebuilds the tracked set
  /// (combine, sort, truncate), so this materializes one temporary from
  /// the view (skipping only the caller-side envelope copy) —
  /// byte-identical to Merge(*view.Materialize()) by construction.
  Status MergeFromView(const View<SpaceSaving>& view);

  int64_t TotalWeight() const { return total_; }
  size_t capacity() const { return capacity_; }
  size_t NumTracked() const { return slots_.size(); }
  int64_t MinCount() const;

  std::vector<uint8_t> Serialize() const;
  /// Appends the wire envelope into a caller-owned buffer; byte-identical
  /// to Serialize().
  void SerializeTo(ByteSink& sink) const;
  static Result<SpaceSaving> Deserialize(std::span<const uint8_t> bytes);

 private:
  struct Slot {
    uint64_t item;
    int64_t count;
    int64_t error;
  };

  /// Index of `item`'s slot, or slots_.size() if untracked.
  size_t FindSlot(uint64_t item) const;

  size_t capacity_;
  int64_t total_ = 0;
  std::vector<Slot> slots_;
};

}  // namespace gems

#endif  // GEMS_FREQUENCY_SPACE_SAVING_H_
