#include "frequency/space_saving.h"

#include <algorithm>

#include "common/check.h"
#include "core/params.h"
#include "core/wire.h"

namespace gems {

SpaceSaving::SpaceSaving(size_t capacity) : capacity_(capacity) {
  GEMS_CHECK(capacity >= 1);
}

Result<SpaceSaving> SpaceSaving::ForThreshold(double phi) {
  if (!(phi > 0.0 && phi <= 1.0)) {
    return Status::InvalidArgument(
        "SpaceSaving threshold phi must be in (0, 1]");
  }
  return SpaceSaving(SpaceSavingCapacityFor(phi));
}

size_t SpaceSaving::FindSlot(uint64_t item) const {
  size_t i = 0;
  for (; i < slots_.size(); ++i) {
    if (slots_[i].item == item) break;
  }
  return i;
}

void SpaceSaving::Update(uint64_t item, int64_t weight) {
  GEMS_CHECK(weight >= 1);
  total_ += weight;

  const size_t found = FindSlot(item);
  if (found < slots_.size()) {
    slots_[found].count += weight;
    return;
  }
  if (slots_.size() < capacity_) {
    slots_.push_back(Slot{item, weight, 0});
    return;
  }
  // Evict the minimum (smallest item id among tied counts — see Update's
  // contract); the newcomer inherits its count as error, in place.
  size_t weakest = 0;
  for (size_t i = 1; i < slots_.size(); ++i) {
    if (slots_[i].count < slots_[weakest].count ||
        (slots_[i].count == slots_[weakest].count &&
         slots_[i].item < slots_[weakest].item)) {
      weakest = i;
    }
  }
  const int64_t min_count = slots_[weakest].count;
  slots_[weakest] = Slot{item, min_count + weight, min_count};
}

void SpaceSaving::UpdateBatch(std::span<const uint64_t> items) {
  size_t i = 0;
  while (i < items.size()) {
    const uint64_t item = items[i];
    size_t j = i + 1;
    while (j < items.size() && items[j] == item) ++j;
    Update(item, static_cast<int64_t>(j - i));
    i = j;
  }
}

void SpaceSaving::UpdateBatch(std::span<const uint64_t> items,
                              std::span<const int64_t> weights) {
  GEMS_CHECK(items.size() == weights.size());
  size_t i = 0;
  while (i < items.size()) {
    const uint64_t item = items[i];
    int64_t weight = weights[i];
    size_t j = i + 1;
    while (j < items.size() && items[j] == item) weight += weights[j++];
    Update(item, weight);
    i = j;
  }
}

int64_t SpaceSaving::Estimate(uint64_t item) const {
  const size_t i = FindSlot(item);
  if (i < slots_.size()) return slots_[i].count;
  return MinCount();
}

gems::Estimate SpaceSaving::EstimateWithBounds(uint64_t item,
                                               double confidence) const {
  gems::Estimate e;
  const size_t i = FindSlot(item);
  if (i < slots_.size()) {
    e.value = static_cast<double>(slots_[i].count);
    e.upper = e.value;
    e.lower = e.value - static_cast<double>(slots_[i].error);
  } else {
    e.value = static_cast<double>(MinCount());
    e.upper = e.value;
    e.lower = 0.0;
  }
  e.confidence = confidence;
  return e;
}

int64_t SpaceSaving::ErrorOf(uint64_t item) const {
  const size_t i = FindSlot(item);
  return i < slots_.size() ? slots_[i].error : MinCount();
}

bool SpaceSaving::IsGuaranteedExact(uint64_t item) const {
  const size_t i = FindSlot(item);
  return i < slots_.size() && slots_[i].error == 0;
}

int64_t SpaceSaving::MinCount() const {
  if (slots_.size() < capacity_ || slots_.empty()) return 0;
  int64_t min_count = slots_[0].count;
  for (const Slot& slot : slots_) min_count = std::min(min_count, slot.count);
  return min_count;
}

std::vector<uint64_t> SpaceSaving::HeavyHitterCandidates(double phi) const {
  const double threshold = phi * static_cast<double>(total_);
  std::vector<uint64_t> out;
  for (const Slot& slot : slots_) {
    if (static_cast<double>(slot.count) >= threshold) out.push_back(slot.item);
  }
  return out;
}

std::vector<SpaceSaving::Entry> SpaceSaving::Entries() const {
  std::vector<Entry> out;
  out.reserve(slots_.size());
  for (const Slot& slot : slots_) {
    out.push_back(Entry{slot.item, slot.count, slot.error});
  }
  // Canonical order: count desc, then item asc (stable across round trips).
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.item < b.item;
  });
  return out;
}

std::vector<SpaceSaving::Entry> SpaceSaving::TopK(size_t k) const {
  std::vector<Entry> all = Entries();
  if (all.size() > k) all.resize(k);
  return all;
}

Status SpaceSaving::Merge(const SpaceSaving& other) {
  if (capacity_ != other.capacity_) {
    return Status::InvalidArgument("SpaceSaving merge requires equal capacity");
  }
  // Combine: items in both get summed counts and errors; items in only one
  // side could have appeared up to the other side's MinCount times unseen,
  // which stays within the inherited-error accounting below. Both tracked
  // sets are small flat arrays: concatenate, sort by item, fold adjacent
  // duplicates — no hashing, no node allocation.
  std::vector<Slot> all;
  all.reserve(slots_.size() + other.slots_.size());
  all.insert(all.end(), slots_.begin(), slots_.end());
  all.insert(all.end(), other.slots_.begin(), other.slots_.end());
  std::sort(all.begin(), all.end(),
            [](const Slot& a, const Slot& b) { return a.item < b.item; });
  size_t out = 0;
  for (size_t i = 0; i < all.size(); ++i) {
    if (out > 0 && all[out - 1].item == all[i].item) {
      all[out - 1].count += all[i].count;
      all[out - 1].error += all[i].error;
    } else {
      all[out++] = all[i];
    }
  }
  all.resize(out);
  // Keep the `capacity_` largest by count; surviving items are unchanged
  // (their counts remain valid overestimates of their true totals).
  std::sort(all.begin(), all.end(), [](const Slot& a, const Slot& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.item < b.item;
  });
  if (all.size() > capacity_) all.resize(capacity_);
  slots_ = std::move(all);
  total_ += other.total_;
  return Status::Ok();
}

Status SpaceSaving::MergeFromView(const View<SpaceSaving>& view) {
  Result<SpaceSaving> other = view.Materialize();
  if (!other.ok()) return other.status();
  return Merge(other.value());
}

std::vector<uint8_t> SpaceSaving::Serialize() const {
  std::vector<uint8_t> out;
  ByteSink sink(&out);
  SerializeTo(sink);
  return out;
}

void SpaceSaving::SerializeTo(ByteSink& sink) const {
  EnvelopeBuilder env(sink, kTypeId);
  sink.PutVarint(capacity_);
  sink.PutI64(total_);
  sink.PutVarint(slots_.size());
  // Canonical (entry) order so identical summaries serialize identically.
  for (const Entry& entry : Entries()) {
    sink.PutU64(entry.item);
    sink.PutI64(entry.count);
    sink.PutI64(entry.error);
  }
}

Result<SpaceSaving> SpaceSaving::Deserialize(
    std::span<const uint8_t> bytes) {
  Result<ByteReader> payload = OpenEnvelope(SketchTypeId::kSpaceSaving, bytes);
  if (!payload.ok()) return payload.status();
  ByteReader r = std::move(payload).value();
  uint64_t capacity, num_entries;
  int64_t total;
  if (Status sc = r.GetVarint(&capacity); !sc.ok()) return sc;
  if (Status st = r.GetI64(&total); !st.ok()) return st;
  if (Status se = r.GetVarint(&num_entries); !se.ok()) return se;
  if (capacity == 0 || num_entries > capacity) {
    return Status::Corruption("invalid SpaceSaving header");
  }
  SpaceSaving ss(capacity);
  ss.total_ = total;
  ss.slots_.reserve(num_entries);
  for (uint64_t i = 0; i < num_entries; ++i) {
    uint64_t item;
    int64_t count, error;
    if (Status si = r.GetU64(&item); !si.ok()) return si;
    if (Status sn = r.GetI64(&count); !sn.ok()) return sn;
    if (Status sx = r.GetI64(&error); !sx.ok()) return sx;
    if (count <= 0 || error < 0 || error > count) {
      return Status::Corruption("invalid SpaceSaving entry");
    }
    ss.slots_.push_back(Slot{item, count, error});
  }
  return ss;
}

}  // namespace gems
