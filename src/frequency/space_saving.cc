#include "frequency/space_saving.h"

#include <algorithm>

#include "common/check.h"
#include "core/params.h"
#include "core/wire.h"

namespace gems {

SpaceSaving::SpaceSaving(size_t capacity) : capacity_(capacity) {
  GEMS_CHECK(capacity >= 1);
}

Result<SpaceSaving> SpaceSaving::ForThreshold(double phi) {
  if (!(phi > 0.0 && phi <= 1.0)) {
    return Status::InvalidArgument(
        "SpaceSaving threshold phi must be in (0, 1]");
  }
  return SpaceSaving(SpaceSavingCapacityFor(phi));
}

void SpaceSaving::Reinsert(uint64_t item, int64_t count, int64_t error) {
  const auto heap_it = heap_.emplace(count, item);
  items_[item] = Counter{count, error, heap_it};
}

void SpaceSaving::Update(uint64_t item, int64_t weight) {
  GEMS_CHECK(weight >= 1);
  total_ += weight;

  const auto it = items_.find(item);
  if (it != items_.end()) {
    const int64_t new_count = it->second.count + weight;
    const int64_t error = it->second.error;
    heap_.erase(it->second.heap_it);
    items_.erase(it);
    Reinsert(item, new_count, error);
    return;
  }
  if (items_.size() < capacity_) {
    Reinsert(item, weight, 0);
    return;
  }
  // Evict the minimum; the newcomer inherits its count as error.
  const auto weakest = heap_.begin();
  const int64_t min_count = weakest->first;
  const uint64_t evicted = weakest->second;
  heap_.erase(weakest);
  items_.erase(evicted);
  Reinsert(item, min_count + weight, min_count);
}

void SpaceSaving::UpdateBatch(std::span<const uint64_t> items) {
  size_t i = 0;
  while (i < items.size()) {
    const uint64_t item = items[i];
    size_t j = i + 1;
    while (j < items.size() && items[j] == item) ++j;
    Update(item, static_cast<int64_t>(j - i));
    i = j;
  }
}

void SpaceSaving::UpdateBatch(std::span<const uint64_t> items,
                              std::span<const int64_t> weights) {
  GEMS_CHECK(items.size() == weights.size());
  size_t i = 0;
  while (i < items.size()) {
    const uint64_t item = items[i];
    int64_t weight = weights[i];
    size_t j = i + 1;
    while (j < items.size() && items[j] == item) weight += weights[j++];
    Update(item, weight);
    i = j;
  }
}

int64_t SpaceSaving::Estimate(uint64_t item) const {
  const auto it = items_.find(item);
  if (it != items_.end()) return it->second.count;
  return MinCount();
}

gems::Estimate SpaceSaving::EstimateWithBounds(uint64_t item,
                                               double confidence) const {
  gems::Estimate e;
  const auto it = items_.find(item);
  if (it != items_.end()) {
    e.value = static_cast<double>(it->second.count);
    e.upper = e.value;
    e.lower = e.value - static_cast<double>(it->second.error);
  } else {
    e.value = static_cast<double>(MinCount());
    e.upper = e.value;
    e.lower = 0.0;
  }
  e.confidence = confidence;
  return e;
}

int64_t SpaceSaving::ErrorOf(uint64_t item) const {
  const auto it = items_.find(item);
  return it == items_.end() ? MinCount() : it->second.error;
}

bool SpaceSaving::IsGuaranteedExact(uint64_t item) const {
  const auto it = items_.find(item);
  return it != items_.end() && it->second.error == 0;
}

int64_t SpaceSaving::MinCount() const {
  if (items_.size() < capacity_ || heap_.empty()) return 0;
  return heap_.begin()->first;
}

std::vector<uint64_t> SpaceSaving::HeavyHitterCandidates(double phi) const {
  const double threshold = phi * static_cast<double>(total_);
  std::vector<uint64_t> out;
  for (const auto& [count, item] : heap_) {
    if (static_cast<double>(count) >= threshold) out.push_back(item);
  }
  return out;
}

std::vector<SpaceSaving::Entry> SpaceSaving::Entries() const {
  std::vector<Entry> out;
  out.reserve(items_.size());
  for (const auto& [item, counter] : items_) {
    out.push_back(Entry{item, counter.count, counter.error});
  }
  // Canonical order: count desc, then item asc (stable across round trips).
  std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
    if (a.count != b.count) return a.count > b.count;
    return a.item < b.item;
  });
  return out;
}

std::vector<SpaceSaving::Entry> SpaceSaving::TopK(size_t k) const {
  std::vector<Entry> all = Entries();
  if (all.size() > k) all.resize(k);
  return all;
}

Status SpaceSaving::Merge(const SpaceSaving& other) {
  if (capacity_ != other.capacity_) {
    return Status::InvalidArgument("SpaceSaving merge requires equal capacity");
  }
  // Combine: items in both get summed counts and errors; items in only one
  // side could have appeared up to the other side's MinCount times unseen,
  // which stays within the inherited-error accounting below.
  struct Combined {
    int64_t count;
    int64_t error;
  };
  std::unordered_map<uint64_t, Combined> combined;
  for (const auto& [item, counter] : items_) {
    combined[item] = Combined{counter.count, counter.error};
  }
  for (const auto& [item, counter] : other.items_) {
    auto [it, inserted] =
        combined.emplace(item, Combined{counter.count, counter.error});
    if (!inserted) {
      it->second.count += counter.count;
      it->second.error += counter.error;
    }
  }
  // Keep the `capacity_` largest by count; surviving items are unchanged
  // (their counts remain valid overestimates of their true totals).
  std::vector<std::pair<uint64_t, Combined>> all(combined.begin(),
                                                 combined.end());
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    if (a.second.count != b.second.count)
      return a.second.count > b.second.count;
    return a.first < b.first;
  });
  if (all.size() > capacity_) all.resize(capacity_);

  items_.clear();
  heap_.clear();
  for (const auto& [item, c] : all) Reinsert(item, c.count, c.error);
  total_ += other.total_;
  return Status::Ok();
}

Status SpaceSaving::MergeFromView(const View<SpaceSaving>& view) {
  Result<SpaceSaving> other = view.Materialize();
  if (!other.ok()) return other.status();
  return Merge(other.value());
}

std::vector<uint8_t> SpaceSaving::Serialize() const {
  std::vector<uint8_t> out;
  ByteSink sink(&out);
  SerializeTo(sink);
  return out;
}

void SpaceSaving::SerializeTo(ByteSink& sink) const {
  EnvelopeBuilder env(sink, kTypeId);
  sink.PutVarint(capacity_);
  sink.PutI64(total_);
  sink.PutVarint(items_.size());
  // Canonical (entry) order so identical summaries serialize identically.
  for (const Entry& entry : Entries()) {
    sink.PutU64(entry.item);
    sink.PutI64(entry.count);
    sink.PutI64(entry.error);
  }
}

Result<SpaceSaving> SpaceSaving::Deserialize(
    std::span<const uint8_t> bytes) {
  Result<ByteReader> payload = OpenEnvelope(SketchTypeId::kSpaceSaving, bytes);
  if (!payload.ok()) return payload.status();
  ByteReader r = std::move(payload).value();
  uint64_t capacity, num_entries;
  int64_t total;
  if (Status sc = r.GetVarint(&capacity); !sc.ok()) return sc;
  if (Status st = r.GetI64(&total); !st.ok()) return st;
  if (Status se = r.GetVarint(&num_entries); !se.ok()) return se;
  if (capacity == 0 || num_entries > capacity) {
    return Status::Corruption("invalid SpaceSaving header");
  }
  SpaceSaving ss(capacity);
  ss.total_ = total;
  for (uint64_t i = 0; i < num_entries; ++i) {
    uint64_t item;
    int64_t count, error;
    if (Status si = r.GetU64(&item); !si.ok()) return si;
    if (Status sn = r.GetI64(&count); !sn.ok()) return sn;
    if (Status sx = r.GetI64(&error); !sx.ok()) return sx;
    if (count <= 0 || error < 0 || error > count) {
      return Status::Corruption("invalid SpaceSaving entry");
    }
    ss.Reinsert(item, count, error);
  }
  return ss;
}

}  // namespace gems
