#ifndef GEMS_FREQUENCY_COUNT_SKETCH_H_
#define GEMS_FREQUENCY_COUNT_SKETCH_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/hugepage.h"
#include "common/layout.h"
#include "common/status.h"
#include "core/estimate.h"
#include "core/io.h"
#include "core/view.h"
#include "hash/polynomial.h"

/// \file
/// Count sketch (Charikar, Chen & Farach-Colton 2002) — proposed, as the
/// paper recounts, by academic visitors to Google for finding frequent
/// search queries. Each row adds s_i(x) * weight to one bucket, where s_i
/// is a 4-wise independent Rademacher sign; the estimate is the median over
/// rows of s_i(x) * C[i][h_i(x)]. Errors are bounded by the L2 norm of the
/// residual frequency vector, so it beats Count-Min on skewed data and
/// supports negative updates (turnstile streams). It is also the
/// building block of sparse JL transforms and of FetchSGD's gradient
/// compression (both implemented elsewhere in this library).

namespace gems {

/// Count sketch over signed weighted updates.
class CountSketch {
 public:
  /// Wire-format type tag, for View<CountSketch> wrapping.
  static constexpr SketchTypeId kTypeId = SketchTypeId::kCountSketch;

  /// `layout` selects the counter-array memory layout: kFlat is the classic
  /// row-major matrix with per-row Carter-Wegman hashes; kBlocked
  /// (depth <= 8) packs all depth counters for a key into one cache-line
  /// block chosen by a single Murmur3 hash, with row signs drawn from the
  /// same hash's high bits. Blocked rounds `width` up to a multiple of its
  /// per-row block columns; the wire format stays flat. The two layouts
  /// hash differently — sketches merge only with their own layout.
  CountSketch(uint32_t width, uint32_t depth, uint64_t seed = 0,
              SketchLayout layout = SketchLayout::kFlat);

  CountSketch(const CountSketch&) = default;
  CountSketch& operator=(const CountSketch&) = default;
  CountSketch(CountSketch&&) = default;
  CountSketch& operator=(CountSketch&&) = default;

  /// Adds `weight` (may be negative) to the item's count.
  void Update(uint64_t item, int64_t weight = 1);

  /// Batched ingest of unit-weight items, rows outer: each row's hash
  /// functions and counter base are hoisted out of the item loop. Signed
  /// additions commute, so state is byte-identical to per-item Update().
  void UpdateBatch(std::span<const uint64_t> items);

  /// Weighted batched ingest; `weights` must parallel `items` (weights may
  /// be negative — turnstile semantics).
  void UpdateBatch(std::span<const uint64_t> items,
                   std::span<const int64_t> weights);

  /// Median-of-rows unbiased point estimate (may be negative).
  int64_t Estimate(uint64_t item) const;

  /// Point estimate with the L2 guarantee interval: +/- sqrt(F2 / width)
  /// per row, sharpened by the median over depth rows.
  gems::Estimate EstimateWithBounds(uint64_t item,
                                    double confidence = 0.95) const;

  /// Estimate of the second frequency moment F2 (median over rows of the
  /// row's sum of squared counters) — each row is an AMS sketch.
  double EstimateF2() const;

  /// Counter-wise sum; requires identical shape and seed.
  Status Merge(const CountSketch& other);

  /// Counter-wise sum streamed straight off a wrapped serialized peer —
  /// no materialization. Byte-identical result to
  /// Merge(*view.Materialize()).
  Status MergeFromView(const View<CountSketch>& view);

  uint32_t width() const { return width_; }
  uint32_t depth() const { return depth_; }
  SketchLayout layout() const { return layout_; }
  size_t MemoryBytes() const { return counters_.size() * sizeof(int64_t); }

  std::vector<uint8_t> Serialize() const;
  /// Appends the wire envelope into a caller-owned buffer; byte-identical
  /// to Serialize().
  void SerializeTo(ByteSink& sink) const;
  static Result<CountSketch> Deserialize(std::span<const uint8_t> bytes);

 private:
  uint64_t Bucket(uint32_t row, uint64_t item) const;
  int Sign(uint32_t row, uint64_t item) const;

  uint32_t width_;
  uint32_t depth_;
  uint64_t seed_;
  SketchLayout layout_;
  // Blocked-layout geometry: each 8-counter block gives row r the `cols_`
  // slots starting at r * cols_; num_blocks_ * cols_ == width_.
  uint32_t cols_ = 0;
  uint64_t num_blocks_ = 0;
  std::vector<KWiseHash> bucket_hashes_;  // 2-wise per row (kFlat only).
  std::vector<KWiseHash> sign_hashes_;    // 4-wise per row (kFlat only).
  // kFlat: depth_ rows of width_, row-major. kBlocked: num_blocks_
  // cache-line blocks of 8 counters. Hugepage-backed above the allocator
  // threshold, 64-byte aligned always.
  HugeVector<int64_t> counters_;
};

}  // namespace gems

#endif  // GEMS_FREQUENCY_COUNT_SKETCH_H_
