#include "frequency/count_sketch.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/numeric.h"
#include "core/wire.h"
#include "hash/hash.h"
#include "hash/hashed_batch.h"
#include "simd/dispatch.h"

namespace gems {

CountSketch::CountSketch(uint32_t width, uint32_t depth, uint64_t seed)
    : width_(width), depth_(depth), seed_(seed) {
  GEMS_CHECK(width >= 1);
  GEMS_CHECK(depth >= 1);
  bucket_hashes_.reserve(depth);
  sign_hashes_.reserve(depth);
  for (uint32_t row = 0; row < depth; ++row) {
    bucket_hashes_.emplace_back(2, DeriveSeed(seed, 2 * row));
    sign_hashes_.emplace_back(4, DeriveSeed(seed, 2 * row + 1));
  }
  counters_.assign(static_cast<size_t>(width) * depth, 0);
}

uint64_t CountSketch::Bucket(uint32_t row, uint64_t item) const {
  return bucket_hashes_[row].EvalRange(item, width_);
}

int CountSketch::Sign(uint32_t row, uint64_t item) const {
  return sign_hashes_[row].EvalSign(item);
}

void CountSketch::Update(uint64_t item, int64_t weight) {
  for (uint32_t row = 0; row < depth_; ++row) {
    counters_[static_cast<size_t>(row) * width_ + Bucket(row, item)] +=
        Sign(row, item) * weight;
  }
}

void CountSketch::UpdateBatch(std::span<const uint64_t> items) {
  // Chunked rows-outer kernel. Per chunk: reduce every key into the
  // Carter-Wegman field once (per-item Update pays that division twice per
  // row — bucket and sign), then each row evaluates its two polynomials
  // inline over the reduced keys, with the bucket modulo strength-reduced
  // through a hoisted InvariantMod. Counter additions commute, so the
  // result is byte-identical to sequential Update().
  const simd::SimdKernels& kernels = simd::Kernels();
  const InvariantMod mod(width_);
  uint64_t reduced[256];
  uint32_t buckets[256];
  int64_t signed_weights[256];
  while (!items.empty()) {
    const size_t n = std::min(items.size(), std::size(reduced));
    for (size_t i = 0; i < n; ++i) reduced[i] = KWiseHash::ReduceKey(items[i]);
    for (uint32_t row = 0; row < depth_; ++row) {
      const KWiseHash& bucket_hash = bucket_hashes_[row];
      const KWiseHash& sign_hash = sign_hashes_[row];
      // Split the row pass: the polynomial evaluations fill plain arrays
      // (no loop-carried state, so the compiler pipelines the Horner
      // chains), then the scatter kernel streams the signed additions.
      for (size_t i = 0; i < n; ++i) {
        buckets[i] =
            static_cast<uint32_t>(mod(bucket_hash.EvalReduced(reduced[i])));
        signed_weights[i] = (sign_hash.EvalReduced(reduced[i]) & 1) ? 1 : -1;
      }
      kernels.cs_row_scatter(
          counters_.data() + static_cast<size_t>(row) * width_, buckets,
          signed_weights, n);
    }
    items = items.subspan(n);
  }
}

void CountSketch::UpdateBatch(std::span<const uint64_t> items,
                              std::span<const int64_t> weights) {
  GEMS_CHECK(items.size() == weights.size());
  const InvariantMod mod(width_);
  uint64_t reduced[256];
  size_t offset = 0;
  while (offset < items.size()) {
    const size_t n = std::min(items.size() - offset, std::size(reduced));
    for (size_t i = 0; i < n; ++i) {
      reduced[i] = KWiseHash::ReduceKey(items[offset + i]);
    }
    for (uint32_t row = 0; row < depth_; ++row) {
      const KWiseHash& bucket_hash = bucket_hashes_[row];
      const KWiseHash& sign_hash = sign_hashes_[row];
      int64_t* const counters =
          counters_.data() + static_cast<size_t>(row) * width_;
      for (size_t i = 0; i < n; ++i) {
        const int64_t sign =
            (sign_hash.EvalReduced(reduced[i]) & 1) ? 1 : -1;
        counters[mod(bucket_hash.EvalReduced(reduced[i]))] +=
            sign * weights[offset + i];
      }
    }
    offset += n;
  }
}

int64_t CountSketch::Estimate(uint64_t item) const {
  std::vector<int64_t> row_estimates;
  row_estimates.reserve(depth_);
  for (uint32_t row = 0; row < depth_; ++row) {
    const int64_t counter =
        counters_[static_cast<size_t>(row) * width_ + Bucket(row, item)];
    row_estimates.push_back(Sign(row, item) * counter);
  }
  std::nth_element(row_estimates.begin(),
                   row_estimates.begin() + row_estimates.size() / 2,
                   row_estimates.end());
  return row_estimates[row_estimates.size() / 2];
}

double CountSketch::EstimateF2() const {
  // Each row's sum of squared counters through the dispatched kernel
  // (stripe-4 accumulation; identical association under every variant),
  // then the median across rows.
  const simd::SimdKernels& kernels = simd::Kernels();
  std::vector<double> row_f2;
  row_f2.reserve(depth_);
  for (uint32_t row = 0; row < depth_; ++row) {
    row_f2.push_back(kernels.i64_sum_squares(
        counters_.data() + static_cast<size_t>(row) * width_, width_));
  }
  return Median(std::move(row_f2));
}

gems::Estimate CountSketch::EstimateWithBounds(uint64_t item,
                                               double confidence) const {
  const double value = static_cast<double>(Estimate(item));
  // Per-row variance is F2/width; the median over rows concentrates, so we
  // report the single-row standard deviation as a (conservative) interval.
  const double std_error = std::sqrt(EstimateF2() / width_);
  return EstimateFromStdError(value, std_error, confidence);
}

Status CountSketch::Merge(const CountSketch& other) {
  if (width_ != other.width_ || depth_ != other.depth_ ||
      seed_ != other.seed_) {
    return Status::InvalidArgument(
        "CountSketch merge requires identical shape and seed");
  }
  simd::Kernels().i64_add(counters_.data(), other.counters_.data(),
                          counters_.size());
  return Status::Ok();
}

Status CountSketch::MergeFromView(const View<CountSketch>& view) {
  // Deserialize's validation order, then Merge's compatibility check, then
  // the counter sum streamed off the wrapped payload. The whole counter
  // array is claimed up front, so a truncated payload fails with
  // Deserialize's read error before any counter moves.
  ByteReader r = view.PayloadReader();
  uint32_t width, depth;
  uint64_t seed;
  if (Status sw = r.GetU32(&width); !sw.ok()) return sw;
  if (Status sd = r.GetU32(&depth); !sd.ok()) return sd;
  if (Status ss = r.GetU64(&seed); !ss.ok()) return ss;
  if (width == 0 || depth == 0 ||
      static_cast<uint64_t>(width) * depth > (uint64_t{1} << 32)) {
    return Status::Corruption("invalid CountSketch shape");
  }
  std::span<const uint8_t> raw;
  if (Status sv =
          r.GetRawView(static_cast<size_t>(width) * depth * 8, &raw);
      !sv.ok()) {
    return sv;
  }
  if (width != width_ || depth != depth_ || seed != seed_) {
    return Status::InvalidArgument(
        "CountSketch merge requires identical shape and seed");
  }
  ByteReader counters(raw);
  for (int64_t& ours : counters_) {
    int64_t counter;
    if (Status sv = counters.GetI64(&counter); !sv.ok()) return sv;
    ours += counter;
  }
  return Status::Ok();
}

std::vector<uint8_t> CountSketch::Serialize() const {
  std::vector<uint8_t> out;
  out.reserve(kWireHeaderSize + 16 + counters_.size() * 8);
  ByteSink sink(&out);
  SerializeTo(sink);
  return out;
}

void CountSketch::SerializeTo(ByteSink& sink) const {
  EnvelopeBuilder env(sink, kTypeId);
  sink.PutU32(width_);
  sink.PutU32(depth_);
  sink.PutU64(seed_);
  for (int64_t counter : counters_) sink.PutI64(counter);
}

Result<CountSketch> CountSketch::Deserialize(
    std::span<const uint8_t> bytes) {
  Result<ByteReader> payload = OpenEnvelope(SketchTypeId::kCountSketch, bytes);
  if (!payload.ok()) return payload.status();
  ByteReader r = std::move(payload).value();
  uint32_t width, depth;
  uint64_t seed;
  if (Status sw = r.GetU32(&width); !sw.ok()) return sw;
  if (Status sd = r.GetU32(&depth); !sd.ok()) return sd;
  if (Status ss = r.GetU64(&seed); !ss.ok()) return ss;
  if (width == 0 || depth == 0 ||
      static_cast<uint64_t>(width) * depth > (uint64_t{1} << 32)) {
    return Status::Corruption("invalid CountSketch shape");
  }
  CountSketch sketch(width, depth, seed);
  for (int64_t& counter : sketch.counters_) {
    if (Status sv = r.GetI64(&counter); !sv.ok()) return sv;
  }
  return sketch;
}

}  // namespace gems
