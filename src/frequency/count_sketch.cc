#include "frequency/count_sketch.h"

#include <algorithm>
#include <bit>
#include <cmath>

#include "common/check.h"
#include "common/numeric.h"
#include "common/prefetch.h"
#include "core/wire.h"
#include "hash/hash.h"
#include "hash/hashed_batch.h"
#include "hash/murmur3.h"
#include "simd/dispatch.h"
#include "simd/internal.h"

namespace gems {
namespace {

using simd::internal::CmBlockCol;
using simd::internal::CsBlockSign;
using simd::internal::kCmBlockSlots;

// Same big-row gate as Count-Min's flat prefetch pass (see count_min.cc).
constexpr size_t kPrefetchMinRowBytes = size_t{1} << 18;

// Same column-count rule as blocked Count-Min: the largest power-of-two
// per-row stripe that fits depth rows into one 8-counter block.
uint32_t BlockColsFor(uint32_t depth) {
  uint32_t cols = 1;
  while (cols * 2 * depth <= kCmBlockSlots) cols *= 2;
  return cols;
}

}  // namespace

CountSketch::CountSketch(uint32_t width, uint32_t depth, uint64_t seed,
                         SketchLayout layout)
    : width_(width), depth_(depth), seed_(seed), layout_(layout) {
  GEMS_CHECK(width >= 1);
  GEMS_CHECK(depth >= 1);
  if (layout_ == SketchLayout::kBlocked) {
    GEMS_CHECK(depth <= static_cast<uint32_t>(kCmBlockSlots));
    cols_ = BlockColsFor(depth);
    num_blocks_ = (static_cast<uint64_t>(width) + cols_ - 1) / cols_;
    width_ = static_cast<uint32_t>(num_blocks_ * cols_);
    counters_.assign(num_blocks_ * kCmBlockSlots, 0);
  } else {
    counters_.assign(static_cast<size_t>(width) * depth, 0);
  }
  bucket_hashes_.reserve(depth);
  sign_hashes_.reserve(depth);
  for (uint32_t row = 0; row < depth; ++row) {
    bucket_hashes_.emplace_back(2, DeriveSeed(seed, 2 * row));
    sign_hashes_.emplace_back(4, DeriveSeed(seed, 2 * row + 1));
  }
}

uint64_t CountSketch::Bucket(uint32_t row, uint64_t item) const {
  return bucket_hashes_[row].EvalRange(item, width_);
}

int CountSketch::Sign(uint32_t row, uint64_t item) const {
  return sign_hashes_[row].EvalSign(item);
}

void CountSketch::Update(uint64_t item, int64_t weight) {
  if (layout_ == SketchLayout::kBlocked) {
    const Hash128 h = Murmur3_128_U64(item, seed_);
    simd::internal::CsBlockedAddOne(
        &counters_[(h.low % num_blocks_) * kCmBlockSlots], depth_, cols_,
        h.high, weight);
    return;
  }
  for (uint32_t row = 0; row < depth_; ++row) {
    counters_[static_cast<size_t>(row) * width_ + Bucket(row, item)] +=
        Sign(row, item) * weight;
  }
}

void CountSketch::UpdateBatch(std::span<const uint64_t> items) {
  // Chunked rows-outer kernel. Per chunk: reduce every key into the
  // Carter-Wegman field once (per-item Update pays that division twice per
  // row — bucket and sign), then each row evaluates its two polynomials
  // inline over the reduced keys, with the bucket modulo strength-reduced
  // through a hoisted InvariantMod. Counter additions commute, so the
  // result is byte-identical to sequential Update().
  const simd::SimdKernels& kernels = simd::Kernels();
  if (layout_ == SketchLayout::kBlocked) {
    // One fused kernel pass: hash once per item, prefetch the single block,
    // signed-update all depth_ rows inside it (nullptr weights = unit).
    kernels.cs_blocked_add(counters_.data(), num_blocks_, depth_, cols_,
                           seed_, items.data(), nullptr, items.size());
    return;
  }
  const bool prefetch =
      PrefetchEnabled() &&
      static_cast<size_t>(width_) * sizeof(int64_t) >= kPrefetchMinRowBytes;
  const InvariantMod mod(width_);
  uint64_t reduced[256];
  uint32_t buckets[256];
  int64_t signed_weights[256];
  while (!items.empty()) {
    const size_t n = std::min(items.size(), std::size(reduced));
    for (size_t i = 0; i < n; ++i) reduced[i] = KWiseHash::ReduceKey(items[i]);
    for (uint32_t row = 0; row < depth_; ++row) {
      const KWiseHash& bucket_hash = bucket_hashes_[row];
      const KWiseHash& sign_hash = sign_hashes_[row];
      int64_t* const row_ptr =
          counters_.data() + static_cast<size_t>(row) * width_;
      // Split the row pass: the polynomial evaluations fill plain arrays
      // (no loop-carried state, so the compiler pipelines the Horner
      // chains), then the scatter kernel streams the signed additions.
      for (size_t i = 0; i < n; ++i) {
        buckets[i] =
            static_cast<uint32_t>(mod(bucket_hash.EvalReduced(reduced[i])));
        signed_weights[i] = (sign_hash.EvalReduced(reduced[i]) & 1) ? 1 : -1;
      }
      if (prefetch) {
        // The buckets are already materialized, so the two-phase touch is
        // free of extra hashing: issue the target lines, then scatter.
        for (size_t i = 0; i < n; ++i) PrefetchForWrite(row_ptr + buckets[i]);
      }
      kernels.cs_row_scatter(row_ptr, buckets, signed_weights, n);
    }
    items = items.subspan(n);
  }
}

void CountSketch::UpdateBatch(std::span<const uint64_t> items,
                              std::span<const int64_t> weights) {
  GEMS_CHECK(items.size() == weights.size());
  if (layout_ == SketchLayout::kBlocked) {
    simd::Kernels().cs_blocked_add(counters_.data(), num_blocks_, depth_,
                                   cols_, seed_, items.data(), weights.data(),
                                   items.size());
    return;
  }
  const InvariantMod mod(width_);
  uint64_t reduced[256];
  size_t offset = 0;
  while (offset < items.size()) {
    const size_t n = std::min(items.size() - offset, std::size(reduced));
    for (size_t i = 0; i < n; ++i) {
      reduced[i] = KWiseHash::ReduceKey(items[offset + i]);
    }
    for (uint32_t row = 0; row < depth_; ++row) {
      const KWiseHash& bucket_hash = bucket_hashes_[row];
      const KWiseHash& sign_hash = sign_hashes_[row];
      int64_t* const counters =
          counters_.data() + static_cast<size_t>(row) * width_;
      for (size_t i = 0; i < n; ++i) {
        const int64_t sign =
            (sign_hash.EvalReduced(reduced[i]) & 1) ? 1 : -1;
        counters[mod(bucket_hash.EvalReduced(reduced[i]))] +=
            sign * weights[offset + i];
      }
    }
    offset += n;
  }
}

int64_t CountSketch::Estimate(uint64_t item) const {
  std::vector<int64_t> row_estimates;
  row_estimates.reserve(depth_);
  if (layout_ == SketchLayout::kBlocked) {
    const Hash128 h = Murmur3_128_U64(item, seed_);
    const int64_t* const block =
        &counters_[(h.low % num_blocks_) * kCmBlockSlots];
    const uint32_t col_mask = cols_ - 1;
    for (uint32_t row = 0; row < depth_; ++row) {
      const int64_t counter =
          block[row * cols_ + CmBlockCol(h.high, row, col_mask)];
      row_estimates.push_back(CsBlockSign(h.high, row) * counter);
    }
  } else {
    for (uint32_t row = 0; row < depth_; ++row) {
      const int64_t counter =
          counters_[static_cast<size_t>(row) * width_ + Bucket(row, item)];
      row_estimates.push_back(Sign(row, item) * counter);
    }
  }
  std::nth_element(row_estimates.begin(),
                   row_estimates.begin() + row_estimates.size() / 2,
                   row_estimates.end());
  return row_estimates[row_estimates.size() / 2];
}

double CountSketch::EstimateF2() const {
  // Each row's sum of squared counters through the dispatched kernel
  // (stripe-4 accumulation; identical association under every variant),
  // then the median across rows.
  const simd::SimdKernels& kernels = simd::Kernels();
  std::vector<double> row_f2;
  row_f2.reserve(depth_);
  if (layout_ == SketchLayout::kBlocked) {
    // Gather each logical row's scattered stripes into a contiguous scratch
    // first, so the kernel's stripe-4 association applies to the same flat
    // column order as the serialized form.
    std::vector<int64_t> row_scratch(width_);
    for (uint32_t row = 0; row < depth_; ++row) {
      for (uint64_t b = 0; b < num_blocks_; ++b) {
        const int64_t* const src =
            &counters_[b * kCmBlockSlots + row * cols_];
        std::copy(src, src + cols_, row_scratch.data() + b * cols_);
      }
      row_f2.push_back(kernels.i64_sum_squares(row_scratch.data(), width_));
    }
    return Median(std::move(row_f2));
  }
  for (uint32_t row = 0; row < depth_; ++row) {
    row_f2.push_back(kernels.i64_sum_squares(
        counters_.data() + static_cast<size_t>(row) * width_, width_));
  }
  return Median(std::move(row_f2));
}

gems::Estimate CountSketch::EstimateWithBounds(uint64_t item,
                                               double confidence) const {
  const double value = static_cast<double>(Estimate(item));
  // Per-row variance is F2/width; the median over rows concentrates, so we
  // report the single-row standard deviation as a (conservative) interval.
  const double std_error = std::sqrt(EstimateF2() / width_);
  return EstimateFromStdError(value, std_error, confidence);
}

Status CountSketch::Merge(const CountSketch& other) {
  if (width_ != other.width_ || depth_ != other.depth_ ||
      seed_ != other.seed_ || layout_ != other.layout_) {
    return Status::InvalidArgument(
        "CountSketch merge requires identical shape, seed, and layout");
  }
  // Same layout means the storage arrays align element-for-element (blocked
  // padding slots are zero on both sides).
  simd::Kernels().i64_add(counters_.data(), other.counters_.data(),
                          counters_.size());
  return Status::Ok();
}

Status CountSketch::MergeFromView(const View<CountSketch>& view) {
  // Deserialize's validation order, then Merge's compatibility check, then
  // the counter sum streamed off the wrapped payload. The whole counter
  // array is claimed up front, so a truncated payload fails with
  // Deserialize's read error before any counter moves.
  ByteReader r = view.PayloadReader();
  uint32_t width, depth;
  uint64_t seed;
  if (Status sw = r.GetU32(&width); !sw.ok()) return sw;
  if (Status sd = r.GetU32(&depth); !sd.ok()) return sd;
  if (Status ss = r.GetU64(&seed); !ss.ok()) return ss;
  if (width == 0 || depth == 0 ||
      static_cast<uint64_t>(width) * depth > (uint64_t{1} << 32)) {
    return Status::Corruption("invalid CountSketch shape");
  }
  std::span<const uint8_t> raw;
  if (Status sv =
          r.GetRawView(static_cast<size_t>(width) * depth * 8, &raw);
      !sv.ok()) {
    return sv;
  }
  // Optional trailing layout byte: absent or 0 means flat, 1 means the
  // peer was blocked (wire counters are flat-permuted either way).
  SketchLayout wire_layout = SketchLayout::kFlat;
  if (!r.AtEnd()) {
    uint8_t layout_byte;
    if (Status sl = r.GetU8(&layout_byte); !sl.ok()) return sl;
    if (layout_byte > 1) {
      return Status::Corruption("invalid CountSketch layout byte");
    }
    wire_layout = static_cast<SketchLayout>(layout_byte);
  }
  if (width != width_ || depth != depth_ || seed != seed_ ||
      wire_layout != layout_) {
    return Status::InvalidArgument(
        "CountSketch merge requires identical shape, seed, and layout");
  }
  ByteReader counters(raw);
  if (layout_ == SketchLayout::kBlocked) {
    // The wire walks the logical flat matrix row-major; flat column
    // b*cols_+j of row r lives at slot b*8 + r*cols_ + j here.
    const uint32_t col_shift = std::countr_zero(cols_);
    const uint32_t col_mask = cols_ - 1;
    for (uint32_t row = 0; row < depth_; ++row) {
      for (uint32_t col = 0; col < width_; ++col) {
        int64_t counter;
        if (Status sv = counters.GetI64(&counter); !sv.ok()) return sv;
        counters_[(static_cast<uint64_t>(col >> col_shift) * kCmBlockSlots) +
                  row * cols_ + (col & col_mask)] += counter;
      }
    }
    return Status::Ok();
  }
  for (int64_t& ours : counters_) {
    int64_t counter;
    if (Status sv = counters.GetI64(&counter); !sv.ok()) return sv;
    ours += counter;
  }
  return Status::Ok();
}

std::vector<uint8_t> CountSketch::Serialize() const {
  std::vector<uint8_t> out;
  out.reserve(kWireHeaderSize + 16 + counters_.size() * 8);
  ByteSink sink(&out);
  SerializeTo(sink);
  return out;
}

void CountSketch::SerializeTo(ByteSink& sink) const {
  EnvelopeBuilder env(sink, kTypeId);
  sink.PutU32(width_);
  sink.PutU32(depth_);
  sink.PutU64(seed_);
  if (layout_ == SketchLayout::kBlocked) {
    // Wire counters are always the logical flat matrix, row-major (see the
    // Count-Min twin for the permutation); one trailing byte records the
    // layout. Flat sketches write nothing extra, keeping their wire bytes
    // identical to every earlier release.
    const uint32_t col_shift = std::countr_zero(cols_);
    const uint32_t col_mask = cols_ - 1;
    for (uint32_t row = 0; row < depth_; ++row) {
      for (uint32_t col = 0; col < width_; ++col) {
        sink.PutI64(
            counters_[(static_cast<uint64_t>(col >> col_shift) *
                       kCmBlockSlots) +
                      row * cols_ + (col & col_mask)]);
      }
    }
    sink.PutU8(1);
    return;
  }
  for (int64_t counter : counters_) sink.PutI64(counter);
}

Result<CountSketch> CountSketch::Deserialize(
    std::span<const uint8_t> bytes) {
  Result<ByteReader> payload = OpenEnvelope(SketchTypeId::kCountSketch, bytes);
  if (!payload.ok()) return payload.status();
  ByteReader r = std::move(payload).value();
  uint32_t width, depth;
  uint64_t seed;
  if (Status sw = r.GetU32(&width); !sw.ok()) return sw;
  if (Status sd = r.GetU32(&depth); !sd.ok()) return sd;
  if (Status ss = r.GetU64(&seed); !ss.ok()) return ss;
  if (width == 0 || depth == 0 ||
      static_cast<uint64_t>(width) * depth > (uint64_t{1} << 32)) {
    return Status::Corruption("invalid CountSketch shape");
  }
  CountSketch sketch(width, depth, seed);
  for (int64_t& counter : sketch.counters_) {
    if (Status sv = r.GetI64(&counter); !sv.ok()) return sv;
  }
  // Optional trailing layout byte (see SerializeTo): absent or 0 is the
  // flat fast path above; 1 re-permutes the flat counters into a blocked
  // sketch.
  if (r.AtEnd()) return sketch;
  uint8_t layout_byte;
  if (Status sl = r.GetU8(&layout_byte); !sl.ok()) return sl;
  if (layout_byte == 0) return sketch;
  if (layout_byte != 1) {
    return Status::Corruption("invalid CountSketch layout byte");
  }
  if (depth > 8) {
    return Status::Corruption("CountSketch blocked depth exceeds block");
  }
  CountSketch blocked(width, depth, seed, SketchLayout::kBlocked);
  if (blocked.width_ != width) {
    return Status::Corruption("CountSketch blocked width not block-aligned");
  }
  const uint32_t col_shift = std::countr_zero(blocked.cols_);
  const uint32_t col_mask = blocked.cols_ - 1;
  for (uint32_t row = 0; row < depth; ++row) {
    for (uint32_t col = 0; col < width; ++col) {
      blocked.counters_[(static_cast<uint64_t>(col >> col_shift) *
                         kCmBlockSlots) +
                        row * blocked.cols_ + (col & col_mask)] =
          sketch.counters_[static_cast<size_t>(row) * width + col];
    }
  }
  return blocked;
}

}  // namespace gems
