#ifndef GEMS_FREQUENCY_COUNT_MIN_H_
#define GEMS_FREQUENCY_COUNT_MIN_H_

#include <cstdint>
#include <map>
#include <span>
#include <vector>

#include "common/hugepage.h"
#include "common/layout.h"
#include "common/status.h"
#include "core/estimate.h"
#include "core/io.h"
#include "core/view.h"

/// \file
/// Count-Min sketch (Cormode & Muthukrishnan 2005). The paper presents it
/// as the streamlining of the Count sketch: drop the Rademacher signs, take
/// a minimum over rows instead of a median, and accept an L1 error
/// guarantee — count(x) <= estimate(x) <= count(x) + eps*N with
/// probability 1-delta for width w = ceil(e/eps), depth d = ceil(ln 1/delta).
/// Twitter's embedded-tweet view counting is the paper's running example of
/// this sketch in production.

namespace gems {

/// Count-Min sketch over non-negative weighted updates.
class CountMinSketch {
 public:
  /// Wire-format type tag, for View<CountMinSketch> wrapping.
  static constexpr SketchTypeId kTypeId = SketchTypeId::kCountMin;

  /// `width` counters per row, `depth` independent rows.
  /// With `conservative_update` enabled, Update raises each touched counter
  /// only to (current estimate + weight) — never above — which provably
  /// keeps the overestimate no worse and empirically much better, at the
  /// cost of losing mergeability of *in-flight* updates (merge itself
  /// remains valid: counters stay overestimates).
  ///
  /// `layout` selects the counter-array memory layout. kFlat is the classic
  /// row-major matrix; kBlocked (depth <= 8) packs all depth counters for a
  /// key into one cache-line 8-counter block chosen by a single hash, so an
  /// update touches one line instead of depth. Blocked rounds `width` up to
  /// a multiple of its per-row block columns; the wire format stays flat
  /// (blocked sketches serialize through a flat permutation plus a trailing
  /// layout byte). The two layouts hash differently — sketches merge only
  /// with their own layout.
  CountMinSketch(uint32_t width, uint32_t depth, uint64_t seed = 0,
                 bool conservative_update = false,
                 SketchLayout layout = SketchLayout::kFlat);

  /// Dimensions a sketch for the standard (eps, delta) guarantee.
  static CountMinSketch ForGuarantee(double epsilon, double delta,
                                     uint64_t seed = 0);

  /// Advisor-driven constructor for the (eps, delta) guarantee that
  /// surfaces invalid parameters as a Status instead of aborting:
  /// kInvalidArgument unless 0 < epsilon < 1 and 0 < delta < 1.
  static Result<CountMinSketch> ForErrorBound(double epsilon, double delta,
                                              uint64_t seed = 0,
                                              bool conservative_update = false);

  CountMinSketch(const CountMinSketch&) = default;
  CountMinSketch& operator=(const CountMinSketch&) = default;
  CountMinSketch(CountMinSketch&&) = default;
  CountMinSketch& operator=(CountMinSketch&&) = default;

  /// Adds `weight` (must be >= 0) to item's count.
  void Update(uint64_t item, int64_t weight = 1);

  /// Batched ingest of unit-weight items: hashes each chunk once per row in
  /// a hoisted loop (rows outer), so the counter additions stream through
  /// one row at a time. State is byte-identical to per-item Update().
  /// Conservative-update sketches fall back to the per-item path, because
  /// conservative updates are order-dependent.
  void UpdateBatch(std::span<const uint64_t> items);

  /// Weighted batched ingest; `weights` must parallel `items` and every
  /// weight must be >= 0.
  void UpdateBatch(std::span<const uint64_t> items,
                   std::span<const int64_t> weights);

  /// Point query: an overestimate of the item's total weight.
  uint64_t Estimate(uint64_t item) const;

  /// Batched point query: out[i] = Estimate(items[i]) for every i, with the
  /// per-row hashing hoisted and the min-reduce folded one row at a time.
  /// `out` must have room for items.size() results.
  void EstimateBatch(std::span<const uint64_t> items, uint64_t* out) const;

  /// Count-mean-min estimator (Deng & Rafiei 2007): subtracts each row's
  /// expected collision noise (N - counter) / (width - 1) and takes the
  /// median. Not one-sided like Estimate(item), but much more accurate for
  /// tail items on skewed streams; the E3 bench quantifies the trade.
  int64_t EstimateCountMeanMin(uint64_t item) const;

  /// Point query with the one-sided Markov bound interval:
  /// [estimate - eps*N, estimate] where eps = e/width.
  gems::Estimate EstimateWithBounds(uint64_t item,
                                    double confidence = 0.95) const;

  /// Estimated inner product of the two frequency vectors (min over rows of
  /// the row dot products); both sketches must share shape and seed.
  Result<double> InnerProduct(const CountMinSketch& other) const;

  /// Counter-wise sum; requires identical shape and seed.
  Status Merge(const CountMinSketch& other);

  /// Counter-wise sum streamed straight off a wrapped serialized peer —
  /// no materialization. Byte-identical result to
  /// Merge(*view.Materialize()).
  Status MergeFromView(const View<CountMinSketch>& view);

  uint32_t width() const { return width_; }
  uint32_t depth() const { return depth_; }
  uint64_t seed() const { return seed_; }
  int64_t TotalWeight() const { return total_; }
  bool conservative_update() const { return conservative_; }
  SketchLayout layout() const { return layout_; }
  /// Blocked-layout geometry (meaningful when layout() == kBlocked):
  /// columns each row owns inside a block, and the block count.
  uint32_t block_cols() const { return cols_; }
  uint64_t num_blocks() const { return num_blocks_; }
  size_t MemoryBytes() const { return counters_.size() * sizeof(uint64_t); }

  /// Raw counters (row-major for kFlat, block-major for kBlocked) and the
  /// bucket function, exposed for privacy-preserving releases that
  /// post-process the sketch. BucketOf is flat-layout only.
  const HugeVector<uint64_t>& counters() const { return counters_; }
  uint64_t BucketOf(uint32_t row, uint64_t item) const {
    return Bucket(row, item);
  }

  std::vector<uint8_t> Serialize() const;
  /// Appends the wire envelope into a caller-owned buffer; byte-identical
  /// to Serialize().
  void SerializeTo(ByteSink& sink) const;
  static Result<CountMinSketch> Deserialize(
      std::span<const uint8_t> bytes);

 private:
  uint64_t Bucket(uint32_t row, uint64_t item) const;
  void UpdateBatchConservative(std::span<const uint64_t> items);
  /// Fills out[0..depth) with the counter each row holds for `item`,
  /// layout-agnostic (the cold-path shared walk under EstimateCountMeanMin
  /// and the conservative per-item update).
  void RowCounters(uint64_t item, uint64_t* out) const;

  uint32_t width_;
  uint32_t depth_;
  uint64_t seed_;
  bool conservative_;
  SketchLayout layout_;
  // Blocked-layout geometry: each 8-counter block gives row r the `cols_`
  // slots starting at r * cols_; num_blocks_ * cols_ == width_.
  uint32_t cols_ = 0;
  uint64_t num_blocks_ = 0;
  int64_t total_ = 0;
  // kFlat: depth_ rows of width_ counters, row-major. kBlocked:
  // num_blocks_ cache-line blocks of 8 counters. Hugepage-backed above the
  // allocator threshold, 64-byte aligned always (blocks never straddle
  // lines).
  HugeVector<uint64_t> counters_;
  // Per-row derived hash seeds (DeriveSeed(seed_, row)); computed in the
  // constructor, never serialized. Unused by kBlocked (single-hash probes).
  std::vector<uint64_t> row_seeds_;
};

/// Streaming top-k tracker layered on a Count-Min sketch: the usual recipe
/// for heavy hitters when items arrive one at a time.
class CountMinHeavyHitters {
 public:
  CountMinHeavyHitters(uint32_t width, uint32_t depth, size_t k,
                       uint64_t seed = 0);

  void Update(uint64_t item, int64_t weight = 1);

  /// Current top candidates with their estimated counts, best first.
  std::vector<std::pair<uint64_t, uint64_t>> TopK() const;

  /// Items whose estimated count >= phi * N.
  std::vector<uint64_t> HeavyHitters(double phi) const;

  const CountMinSketch& sketch() const { return sketch_; }

 private:
  CountMinSketch sketch_;
  size_t k_;
  // Candidate set: estimated count -> item (min at begin()).
  std::multimap<uint64_t, uint64_t> heap_;
  std::map<uint64_t, std::multimap<uint64_t, uint64_t>::iterator> index_;
};

}  // namespace gems

#endif  // GEMS_FREQUENCY_COUNT_MIN_H_
