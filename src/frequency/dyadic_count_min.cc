#include "frequency/dyadic_count_min.h"

#include "common/bits.h"
#include "common/check.h"
#include "hash/hash.h"

namespace gems {

DyadicCountMin::DyadicCountMin(int universe_bits, uint32_t width,
                               uint32_t depth, uint64_t seed)
    : universe_bits_(universe_bits) {
  GEMS_CHECK(universe_bits >= 1 && universe_bits <= 63);
  levels_.reserve(universe_bits + 1);
  for (int level = 0; level <= universe_bits; ++level) {
    levels_.emplace_back(width, depth, DeriveSeed(seed, level));
  }
}

void DyadicCountMin::Update(uint64_t x, int64_t weight) {
  GEMS_DCHECK(x < (uint64_t{1} << universe_bits_));
  total_ += weight;
  for (int level = 0; level <= universe_bits_; ++level) {
    levels_[level].Update(x >> level, weight);
  }
}

uint64_t DyadicCountMin::EstimateRangeSum(uint64_t lo, uint64_t hi) const {
  if (lo > hi) return 0;
  // Standard dyadic decomposition: walk the range greedily, consuming the
  // largest aligned dyadic block that fits at each step.
  uint64_t sum = 0;
  uint64_t pos = lo;
  const uint64_t end = hi;
  while (pos <= end) {
    // Largest level at which pos is block-aligned and the block fits in
    // the remaining range. Level 0 (single point) always fits.
    int level = pos == 0 ? universe_bits_ : CountTrailingZeros64(pos);
    if (level > universe_bits_) level = universe_bits_;
    while (level > 0 && pos + ((uint64_t{1} << level) - 1) > end) {
      --level;
    }
    sum += levels_[level].Estimate(pos >> level);
    const uint64_t block = uint64_t{1} << level;
    if (pos + block < pos) break;  // Overflow guard at the top of range.
    pos += block;
  }
  return sum;
}

uint64_t DyadicCountMin::EstimateQuantile(double q) const {
  GEMS_CHECK(q >= 0.0 && q <= 1.0);
  const double target = q * static_cast<double>(total_);
  // Descend the dyadic tree: at each level choose the child whose subtree
  // prefix crosses the target.
  uint64_t prefix = 0;  // Accumulated weight strictly left of current node.
  uint64_t node = 0;    // Current node id at `level`.
  for (int level = universe_bits_ - 1; level >= 0; --level) {
    const uint64_t left_child = node << 1;
    const uint64_t left_weight = levels_[level].Estimate(left_child);
    if (prefix + left_weight >= target) {
      node = left_child;
    } else {
      prefix += left_weight;
      node = left_child + 1;
    }
  }
  return node;
}

Status DyadicCountMin::Merge(const DyadicCountMin& other) {
  if (universe_bits_ != other.universe_bits_ ||
      levels_.size() != other.levels_.size()) {
    return Status::InvalidArgument("DyadicCountMin merge shape mismatch");
  }
  for (size_t i = 0; i < levels_.size(); ++i) {
    Status s = levels_[i].Merge(other.levels_[i]);
    if (!s.ok()) return s;
  }
  total_ += other.total_;
  return Status::Ok();
}

size_t DyadicCountMin::MemoryBytes() const {
  size_t bytes = 0;
  for (const CountMinSketch& level : levels_) bytes += level.MemoryBytes();
  return bytes;
}

}  // namespace gems
