#include "frequency/majority.h"

// MajorityVote is fully inline; this translation unit anchors the header.
