#ifndef GEMS_PRIVACY_SECURE_AGGREGATION_H_
#define GEMS_PRIVACY_SECURE_AGGREGATION_H_

#include <cstdint>
#include <vector>

#include "common/status.h"

/// \file
/// Pairwise-masking secure aggregation (Bonawitz et al. 2017, simplified),
/// the transport layer of the Federated Analytics programme the paper
/// cites ("collecting data privately from a large population ... crudely
/// described as sketches with privacy"). Every client pair (i, j) shares a
/// seed; client i adds +PRG(seed_ij), client j adds -PRG(seed_ij). Each
/// uploaded vector is uniformly masked — the server learns nothing about
/// any individual — yet the masks cancel exactly in the fleet-wide sum.
/// Because all our sketches are linear or register-mergeable, the thing
/// being summed is typically a serialized sketch's counter vector (e.g. a
/// Count-Min row or a FetchSGD gradient sketch).
///
/// This simulation models the honest-but-curious server with full client
/// participation; dropout-recovery key shares are out of scope.

namespace gems {

/// One aggregation round over vectors of fixed dimension.
class SecureAggregationSession {
 public:
  /// `num_clients` participants, vectors of `dim` int64 entries; the
  /// session seed models the pairwise key agreement.
  SecureAggregationSession(size_t num_clients, size_t dim, uint64_t seed);

  SecureAggregationSession(const SecureAggregationSession&) = default;
  SecureAggregationSession& operator=(const SecureAggregationSession&) =
      default;

  /// The masked upload for `client`'s private vector. The result is
  /// indistinguishable from uniform to anyone lacking the other clients'
  /// masks (wrap-around arithmetic over uint64 reinterpreted as int64).
  Result<std::vector<int64_t>> Mask(
      size_t client, const std::vector<int64_t>& vector) const;

  /// Sums the masked uploads; with all clients present the masks cancel
  /// exactly and the true sum is returned.
  Result<std::vector<int64_t>> Aggregate(
      const std::vector<std::vector<int64_t>>& uploads) const;

  size_t num_clients() const { return num_clients_; }
  size_t dim() const { return dim_; }

 private:
  /// The mask client `i` applies for its pair with client `j` at
  /// coordinate `k` (antisymmetric: MaskEntry(i,j,k) == -MaskEntry(j,i,k)).
  int64_t MaskEntry(size_t i, size_t j, size_t k) const;

  size_t num_clients_;
  size_t dim_;
  uint64_t seed_;
};

}  // namespace gems

#endif  // GEMS_PRIVACY_SECURE_AGGREGATION_H_
