#include "privacy/private_cms.h"

#include <algorithm>
#include <limits>

#include "common/check.h"
#include "hash/hash.h"

namespace gems {
namespace {

// Row hash shared by clients and server (public parameter).
inline uint64_t RowBucket(uint64_t value, uint32_t row, uint32_t width,
                          uint64_t hash_seed) {
  return Hash64(value, DeriveSeed(hash_seed, row)) % width;
}

}  // namespace

PrivateCmsClient::PrivateCmsClient(const Options& options, uint64_t seed)
    : options_(options),
      response_(options.epsilon, Mix64(seed ^ 0xA11CE)),
      rng_(seed) {
  GEMS_CHECK(options.width >= 2);
  GEMS_CHECK(options.depth >= 1);
}

PrivateCmsClient::Report PrivateCmsClient::Encode(uint64_t value) {
  Report report;
  report.row = static_cast<uint32_t>(rng_.NextBounded(options_.depth));
  const uint64_t bucket =
      RowBucket(value, report.row, options_.width, options_.hash_seed);
  std::vector<uint64_t> one_hot((options_.width + 63) / 64, 0);
  one_hot[bucket / 64] |= uint64_t{1} << (bucket % 64);
  report.bits = response_.RandomizeBits(one_hot, options_.width);
  return report;
}

PrivateCmsServer::PrivateCmsServer(const PrivateCmsClient::Options& options)
    : options_(options),
      unbiaser_(options.epsilon, /*seed=*/0),
      matrix_(static_cast<size_t>(options.depth) * options.width, 0.0) {}

Status PrivateCmsServer::Absorb(const PrivateCmsClient::Report& report) {
  if (report.row >= options_.depth ||
      report.bits.size() != (options_.width + 63) / 64) {
    return Status::InvalidArgument("malformed private CMS report");
  }
  // Per-bit unbiasing: contribution (b - f) / (1 - 2f) has expectation 1
  // for the true one-hot position and 0 elsewhere.
  const double f = unbiaser_.FlipProbability();
  const double scale = 1.0 / (1.0 - 2.0 * f);
  double* row = matrix_.data() + static_cast<size_t>(report.row) *
                                     options_.width;
  for (uint32_t bit = 0; bit < options_.width; ++bit) {
    const double b =
        static_cast<double>((report.bits[bit / 64] >> (bit % 64)) & 1);
    row[bit] += (b - f) * scale;
  }
  ++num_reports_;
  return Status::Ok();
}

double PrivateCmsServer::EstimateCount(uint64_t value) const {
  // Count-mean estimator with collision correction (Apple 2017). With
  // S = sum over rows j of M[j][h_j(x)]:
  //   E[S] = N_x + (N - N_x)/w = N_x (1 - 1/w) + N/w,
  // since each of the N_x holders lands in exactly one row and the other
  // clients collide into x's bucket with probability 1/w per row choice.
  // Solving: N̂_x = (S - N/w) * w / (w - 1).
  const double w = static_cast<double>(options_.width);
  const double n = static_cast<double>(num_reports_);
  double sum = 0;
  for (uint32_t row = 0; row < options_.depth; ++row) {
    const uint64_t bucket =
        RowBucket(value, row, options_.width, options_.hash_seed);
    sum += matrix_[static_cast<size_t>(row) * options_.width + bucket];
  }
  return (sum - n / w) * w / (w - 1.0);
}

DpCountMinRelease::DpCountMinRelease(const CountMinSketch& sketch,
                                     double epsilon, uint64_t seed)
    : width_(sketch.width()),
      depth_(sketch.depth()),
      hash_seed_(sketch.seed()),
      epsilon_(epsilon) {
  GeometricMechanism noise(epsilon, /*sensitivity=*/sketch.depth(), seed);
  noisy_counters_.reserve(sketch.counters().size());
  for (uint64_t counter : sketch.counters()) {
    noisy_counters_.push_back(static_cast<double>(
        noise.Release(static_cast<int64_t>(counter))));
  }
}

double DpCountMinRelease::EstimateCount(uint64_t item) const {
  double best = std::numeric_limits<double>::infinity();
  for (uint32_t row = 0; row < depth_; ++row) {
    const uint64_t bucket = Hash64(item, DeriveSeed(hash_seed_, row)) % width_;
    best = std::min(best,
                    noisy_counters_[static_cast<size_t>(row) * width_ +
                                    bucket]);
  }
  return std::max(0.0, best);
}

}  // namespace gems
