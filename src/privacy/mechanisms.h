#ifndef GEMS_PRIVACY_MECHANISMS_H_
#define GEMS_PRIVACY_MECHANISMS_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

/// \file
/// Differential-privacy primitives the private sketches build on:
/// randomized response (Warner 1965) — the mechanism inside RAPPOR and
/// Apple's CMS — and the Laplace/geometric output perturbation of Dwork's
/// differential privacy, used for the central-DP noisy Count-Min release.

namespace gems {

/// Binary randomized response at privacy level epsilon: reports the true
/// bit with probability e^eps / (1 + e^eps).
class RandomizedResponse {
 public:
  RandomizedResponse(double epsilon, uint64_t seed);

  /// Randomizes one bit.
  bool Randomize(bool true_bit);

  /// Randomizes every bit of a packed bit vector of `num_bits` bits.
  std::vector<uint64_t> RandomizeBits(const std::vector<uint64_t>& bits,
                                      size_t num_bits);

  /// Probability of reporting the bit unchanged.
  double KeepProbability() const { return keep_probability_; }
  /// Probability a bit arrives flipped.
  double FlipProbability() const { return 1.0 - keep_probability_; }

  /// Unbiased estimate of the number of true-1 bits among `n` reports of
  /// which `observed_ones` arrived as 1.
  double UnbiasCount(double observed_ones, double n) const;

  double epsilon() const { return epsilon_; }

 private:
  double epsilon_;
  double keep_probability_;
  Rng rng_;
};

/// Laplace mechanism: adds Laplace(sensitivity / epsilon) noise.
class LaplaceMechanism {
 public:
  LaplaceMechanism(double epsilon, double sensitivity, uint64_t seed);

  /// One noisy release of `true_value`.
  double Release(double true_value);

  /// The noise scale b = sensitivity / epsilon.
  double scale() const { return scale_; }

 private:
  double scale_;
  Rng rng_;
};

/// Two-sided geometric mechanism (discrete Laplace) for integer counts.
class GeometricMechanism {
 public:
  GeometricMechanism(double epsilon, int64_t sensitivity, uint64_t seed);

  int64_t Release(int64_t true_value);

 private:
  double alpha_;  // e^{-eps/sensitivity}.
  Rng rng_;
};

}  // namespace gems

#endif  // GEMS_PRIVACY_MECHANISMS_H_
