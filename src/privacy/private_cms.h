#ifndef GEMS_PRIVACY_PRIVATE_CMS_H_
#define GEMS_PRIVACY_PRIVATE_CMS_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "frequency/count_min.h"
#include "privacy/mechanisms.h"

/// \file
/// Apple's private Count-Mean Sketch (Differential Privacy Team, 2017),
/// which the paper describes as "taking a Count-Min sketch of a sparse
/// input and applying randomized response to each entry". Each client
/// picks one random sketch row, one-hot encodes its value under that row's
/// hash, applies randomized response to all w bits, and sends (row, bits).
/// The server accumulates unbiased contributions and answers frequency
/// queries with the count-MEAN estimator (average over rows with a
/// collision correction, rather than Count-Min's minimum).
///
/// Also provides central-DP noisy release of an ordinary Count-Min sketch
/// (geometric noise per counter) for the E10 local-vs-central comparison.

namespace gems {

/// Client-side encoder for the private CMS.
class PrivateCmsClient {
 public:
  struct Options {
    uint32_t width = 1024;   // Sketch width w.
    uint32_t depth = 16;     // Number of rows d (one sampled per report).
    double epsilon = 4.0;    // Per-report privacy budget.
    uint64_t hash_seed = 7;  // Shared row-hash seed (public).
  };

  PrivateCmsClient(const Options& options, uint64_t seed);

  struct Report {
    uint32_t row;
    std::vector<uint64_t> bits;  // w bits after randomized response.
  };

  /// One private report of `value`.
  Report Encode(uint64_t value);

  const Options& options() const { return options_; }

 private:
  Options options_;
  RandomizedResponse response_;
  Rng rng_;
};

/// Server-side aggregator with the count-mean estimator.
class PrivateCmsServer {
 public:
  explicit PrivateCmsServer(const PrivateCmsClient::Options& options);

  Status Absorb(const PrivateCmsClient::Report& report);

  /// Estimated number of clients holding `value`.
  double EstimateCount(uint64_t value) const;

  uint64_t NumReports() const { return num_reports_; }

 private:
  PrivateCmsClient::Options options_;
  RandomizedResponse unbiaser_;
  uint64_t num_reports_ = 0;
  std::vector<double> matrix_;  // depth x width of unbiased contributions.
};

/// Central-DP release of a Count-Min sketch: adds two-sided geometric
/// noise (sensitivity = depth, since one item touches `depth` counters) to
/// every counter and returns the noisy counter matrix alongside query
/// helpers.
class DpCountMinRelease {
 public:
  DpCountMinRelease(const CountMinSketch& sketch, double epsilon,
                    uint64_t seed);

  /// Noisy point query (min over rows of noisy counters).
  double EstimateCount(uint64_t item) const;

  double epsilon() const { return epsilon_; }

 private:
  uint32_t width_;
  uint32_t depth_;
  uint64_t hash_seed_;
  double epsilon_;
  std::vector<double> noisy_counters_;
};

}  // namespace gems

#endif  // GEMS_PRIVACY_PRIVATE_CMS_H_
