#include "privacy/secure_aggregation.h"

#include "common/check.h"
#include "hash/hash.h"

namespace gems {

SecureAggregationSession::SecureAggregationSession(size_t num_clients,
                                                   size_t dim, uint64_t seed)
    : num_clients_(num_clients), dim_(dim), seed_(seed) {
  GEMS_CHECK(num_clients >= 2);
  GEMS_CHECK(dim >= 1);
}

int64_t SecureAggregationSession::MaskEntry(size_t i, size_t j,
                                            size_t k) const {
  // Shared pairwise seed is symmetric in (i, j); the sign is +1 for the
  // lower-id participant and -1 for the higher, so the pair cancels.
  const size_t low = std::min(i, j);
  const size_t high = std::max(i, j);
  const uint64_t pair_seed =
      Hash64(static_cast<uint64_t>(low) << 32 | high, seed_);
  const uint64_t raw = Hash64(static_cast<uint64_t>(k), pair_seed);
  const int64_t value = static_cast<int64_t>(raw);
  return i == low ? value : -value;
}

Result<std::vector<int64_t>> SecureAggregationSession::Mask(
    size_t client, const std::vector<int64_t>& vector) const {
  if (client >= num_clients_) {
    return Status::InvalidArgument("client id out of range");
  }
  if (vector.size() != dim_) {
    return Status::InvalidArgument("vector has wrong dimension");
  }
  std::vector<int64_t> masked = vector;
  for (size_t other = 0; other < num_clients_; ++other) {
    if (other == client) continue;
    for (size_t k = 0; k < dim_; ++k) {
      // Wrap-around (two's complement) addition: overflow is intended and
      // cancels exactly in the aggregate.
      masked[k] = static_cast<int64_t>(
          static_cast<uint64_t>(masked[k]) +
          static_cast<uint64_t>(MaskEntry(client, other, k)));
    }
  }
  return masked;
}

Result<std::vector<int64_t>> SecureAggregationSession::Aggregate(
    const std::vector<std::vector<int64_t>>& uploads) const {
  if (uploads.size() != num_clients_) {
    return Status::FailedPrecondition(
        "all clients must participate (no dropout recovery)");
  }
  std::vector<int64_t> sum(dim_, 0);
  for (const std::vector<int64_t>& upload : uploads) {
    if (upload.size() != dim_) {
      return Status::InvalidArgument("upload has wrong dimension");
    }
    for (size_t k = 0; k < dim_; ++k) {
      sum[k] = static_cast<int64_t>(static_cast<uint64_t>(sum[k]) +
                                    static_cast<uint64_t>(upload[k]));
    }
  }
  return sum;
}

}  // namespace gems
