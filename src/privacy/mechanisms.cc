#include "privacy/mechanisms.h"

#include <cmath>

#include "common/check.h"

namespace gems {

RandomizedResponse::RandomizedResponse(double epsilon, uint64_t seed)
    : epsilon_(epsilon), rng_(seed) {
  GEMS_CHECK(epsilon > 0.0);
  const double e = std::exp(epsilon);
  keep_probability_ = e / (1.0 + e);
}

bool RandomizedResponse::Randomize(bool true_bit) {
  return rng_.NextBernoulli(keep_probability_) ? true_bit : !true_bit;
}

std::vector<uint64_t> RandomizedResponse::RandomizeBits(
    const std::vector<uint64_t>& bits, size_t num_bits) {
  GEMS_CHECK(bits.size() * 64 >= num_bits);
  std::vector<uint64_t> out(bits.size(), 0);
  for (size_t bit = 0; bit < num_bits; ++bit) {
    const bool value = (bits[bit / 64] >> (bit % 64)) & 1;
    if (Randomize(value)) out[bit / 64] |= uint64_t{1} << (bit % 64);
  }
  return out;
}

double RandomizedResponse::UnbiasCount(double observed_ones, double n) const {
  // E[obs] = t*(1-f) + (n-t)*f with f = flip probability, solve for t.
  const double f = FlipProbability();
  return (observed_ones - n * f) / (1.0 - 2.0 * f);
}

LaplaceMechanism::LaplaceMechanism(double epsilon, double sensitivity,
                                   uint64_t seed)
    : scale_(sensitivity / epsilon), rng_(seed) {
  GEMS_CHECK(epsilon > 0.0);
  GEMS_CHECK(sensitivity > 0.0);
}

double LaplaceMechanism::Release(double true_value) {
  // Laplace via difference of exponentials.
  const double noise = scale_ * (rng_.NextExponential() -
                                 rng_.NextExponential());
  return true_value + noise;
}

GeometricMechanism::GeometricMechanism(double epsilon, int64_t sensitivity,
                                       uint64_t seed)
    : alpha_(std::exp(-epsilon / static_cast<double>(sensitivity))),
      rng_(seed) {
  GEMS_CHECK(epsilon > 0.0);
  GEMS_CHECK(sensitivity >= 1);
}

int64_t GeometricMechanism::Release(int64_t true_value) {
  // Two-sided geometric: difference of two one-sided geometrics with
  // success probability 1 - alpha.
  const double p = 1.0 - alpha_;
  const int64_t positive = static_cast<int64_t>(rng_.NextGeometric(p));
  const int64_t negative = static_cast<int64_t>(rng_.NextGeometric(p));
  return true_value + positive - negative;
}

}  // namespace gems
