#include "privacy/rappor.h"

#include <algorithm>

#include "common/check.h"
#include "hash/hash.h"

namespace gems {
namespace {

// Bloom bit positions of `value` (shared by client and decoder).
std::vector<uint32_t> BloomBits(uint64_t value, uint32_t num_bits,
                                uint32_t num_hashes) {
  const Hash128 h = Hash128Bits(value, 0x4A9904);
  std::vector<uint32_t> bits;
  bits.reserve(num_hashes);
  uint64_t probe = h.low;
  for (uint32_t i = 0; i < num_hashes; ++i) {
    bits.push_back(static_cast<uint32_t>(probe % num_bits));
    probe += h.high | 1;
  }
  return bits;
}

}  // namespace

RapporClient::RapporClient(const Options& options, uint64_t seed)
    : options_(options), response_(options.epsilon, seed) {
  GEMS_CHECK(options.num_bits >= 8);
  GEMS_CHECK(options.num_hashes >= 1);
}

std::vector<uint64_t> RapporClient::Report(uint64_t value) {
  std::vector<uint64_t> bloom((options_.num_bits + 63) / 64, 0);
  for (uint32_t bit :
       BloomBits(value, options_.num_bits, options_.num_hashes)) {
    bloom[bit / 64] |= uint64_t{1} << (bit % 64);
  }
  return response_.RandomizeBits(bloom, options_.num_bits);
}

RapporAggregator::RapporAggregator(const RapporClient::Options& options)
    : options_(options),
      unbiaser_(options.epsilon, /*seed=*/0),
      bit_counts_(options.num_bits, 0) {}

Status RapporAggregator::Absorb(const std::vector<uint64_t>& report) {
  if (report.size() != (options_.num_bits + 63) / 64) {
    return Status::InvalidArgument("report has wrong width");
  }
  for (uint32_t bit = 0; bit < options_.num_bits; ++bit) {
    if ((report[bit / 64] >> (bit % 64)) & 1) ++bit_counts_[bit];
  }
  ++num_reports_;
  return Status::Ok();
}

double RapporAggregator::EstimateFrequency(uint64_t candidate) const {
  // Unbias each of the candidate's bits, take the minimum (Bloom-style:
  // every one of the candidate's bits is set by each holder, so the
  // smallest unbiased bit count upper-bounds the candidate's frequency
  // most tightly among its bits).
  double best = static_cast<double>(num_reports_);
  for (uint32_t bit :
       BloomBits(candidate, options_.num_bits, options_.num_hashes)) {
    const double unbiased = unbiaser_.UnbiasCount(
        static_cast<double>(bit_counts_[bit]),
        static_cast<double>(num_reports_));
    best = std::min(best, unbiased);
  }
  return best;
}

std::vector<std::pair<uint64_t, double>> RapporAggregator::Decode(
    const std::vector<uint64_t>& dictionary, double min_count) const {
  std::vector<std::pair<uint64_t, double>> out;
  for (uint64_t candidate : dictionary) {
    const double estimate = EstimateFrequency(candidate);
    if (estimate >= min_count) out.emplace_back(candidate, estimate);
  }
  std::sort(out.begin(), out.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  return out;
}

}  // namespace gems
