#ifndef GEMS_PRIVACY_RAPPOR_H_
#define GEMS_PRIVACY_RAPPOR_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "privacy/mechanisms.h"

/// \file
/// RAPPOR (Erlingsson, Pihur & Korolova, CCS 2014): Google's deployed
/// system for private collection of categorical statistics, which the
/// paper summarizes as "combining the Bloom filter summary with randomized
/// response". Each client Bloom-encodes its value into k bits of an m-bit
/// vector and applies randomized response to every bit; the server
/// aggregates the noisy vectors and, given a candidate dictionary, unbiases
/// each candidate's bit counts to estimate its frequency.
///
/// This implementation is the one-round variant (a single randomized
/// report per client, i.e. the "permanent randomized response" layer);
/// longitudinal instantaneous noise is out of scope and noted in DESIGN.md.

namespace gems {

/// Client-side encoder.
class RapporClient {
 public:
  struct Options {
    uint32_t num_bits = 128;   // Bloom filter size m.
    uint32_t num_hashes = 2;   // Bloom hashes k.
    double epsilon = 2.0;      // Per-report privacy budget.
  };

  /// `seed` drives this client's private coin flips.
  RapporClient(const Options& options, uint64_t seed);

  /// One private report of `value` (packed m-bit vector).
  std::vector<uint64_t> Report(uint64_t value);

  const Options& options() const { return options_; }

 private:
  Options options_;
  RandomizedResponse response_;
};

/// Server-side aggregator/decoder.
class RapporAggregator {
 public:
  explicit RapporAggregator(const RapporClient::Options& options);

  /// Accumulates one client report.
  Status Absorb(const std::vector<uint64_t>& report);

  /// Estimated number of clients holding `candidate` (may be negative for
  /// absent candidates; clamp at the call site if needed).
  double EstimateFrequency(uint64_t candidate) const;

  /// Candidates from `dictionary` ranked by estimated frequency
  /// (descending), excluding estimates below `min_count`.
  std::vector<std::pair<uint64_t, double>> Decode(
      const std::vector<uint64_t>& dictionary, double min_count) const;

  uint64_t NumReports() const { return num_reports_; }

 private:
  RapporClient::Options options_;
  RandomizedResponse unbiaser_;  // Used only for its probability math.
  uint64_t num_reports_ = 0;
  std::vector<uint64_t> bit_counts_;  // Ones observed per bit position.
};

}  // namespace gems

#endif  // GEMS_PRIVACY_RAPPOR_H_
