#include "sampling/l0_sampler.h"

#include <algorithm>
#include <unordered_map>

#include "common/bits.h"
#include "common/check.h"
#include "common/random.h"
#include "hash/hash.h"
#include "hash/polynomial.h"
#include "core/wire.h"

namespace gems {
namespace {

constexpr uint64_t kPrime = KWiseHash::kPrime;  // 2^61 - 1.

inline uint64_t MulMod(uint64_t a, uint64_t b) {
  const unsigned __int128 product =
      static_cast<unsigned __int128>(a) * static_cast<unsigned __int128>(b);
  uint64_t low = static_cast<uint64_t>(product & kPrime);
  uint64_t high = static_cast<uint64_t>(product >> 61);
  uint64_t sum = low + high;
  if (sum >= kPrime) sum -= kPrime;
  return sum;
}

inline uint64_t AddMod(uint64_t a, uint64_t b) {
  uint64_t sum = a + b;
  if (sum >= kPrime) sum -= kPrime;
  return sum;
}

uint64_t PowMod(uint64_t base, uint64_t exponent) {
  uint64_t result = 1;
  base %= kPrime;
  while (exponent > 0) {
    if (exponent & 1) result = MulMod(result, base);
    base = MulMod(base, base);
    exponent >>= 1;
  }
  return result;
}

// Weight as an element of the field (negative weights wrap).
inline uint64_t WeightMod(int64_t weight) {
  if (weight >= 0) return static_cast<uint64_t>(weight) % kPrime;
  const uint64_t magnitude = static_cast<uint64_t>(-weight) % kPrime;
  return magnitude == 0 ? 0 : kPrime - magnitude;
}

}  // namespace

OneSparseRecovery::OneSparseRecovery(uint64_t seed) : seed_(seed) {
  Rng rng(Mix64(seed ^ 0xF1E6));
  z_ = 2 + rng.NextU64() % (kPrime - 2);
}

uint64_t OneSparseRecovery::Fingerprint(uint64_t item, int64_t weight) const {
  return MulMod(WeightMod(weight), PowMod(z_, item));
}

void OneSparseRecovery::Update(uint64_t item, int64_t weight) {
  sum_weight_ += weight;
  sum_index_weight_ += static_cast<__int128>(item) * weight;
  fingerprint_ = AddMod(fingerprint_, Fingerprint(item, weight));
}

OneSparseRecovery::State OneSparseRecovery::Classify() const {
  if (sum_weight_ == 0 && sum_index_weight_ == 0 && fingerprint_ == 0) {
    return State::kZero;
  }
  if (sum_weight_ == 0) return State::kDense;
  // Candidate index = sum_iw / sum_w must be a non-negative integer.
  if (sum_index_weight_ % sum_weight_ != 0) return State::kDense;
  const __int128 candidate = sum_index_weight_ / sum_weight_;
  if (candidate < 0 ||
      candidate > static_cast<__int128>(~uint64_t{0})) {
    return State::kDense;
  }
  const uint64_t item = static_cast<uint64_t>(candidate);
  // Fingerprint check: F == w * z^item (mod p).
  if (fingerprint_ != Fingerprint(item, sum_weight_)) return State::kDense;
  return State::kOneSparse;
}

std::optional<OneSparseRecovery::Recovered> OneSparseRecovery::Recover()
    const {
  if (Classify() != State::kOneSparse) return std::nullopt;
  const uint64_t item =
      static_cast<uint64_t>(sum_index_weight_ / sum_weight_);
  return Recovered{item, sum_weight_};
}

Status OneSparseRecovery::Merge(const OneSparseRecovery& other) {
  if (seed_ != other.seed_) {
    return Status::InvalidArgument("OneSparse merge requires equal seed");
  }
  sum_weight_ += other.sum_weight_;
  sum_index_weight_ += other.sum_index_weight_;
  fingerprint_ = AddMod(fingerprint_, other.fingerprint_);
  return Status::Ok();
}

SparseRecovery::SparseRecovery(size_t sparsity, uint64_t seed,
                               size_t num_rows)
    : sparsity_(sparsity),
      seed_(seed),
      num_rows_(num_rows),
      num_buckets_(std::max<size_t>(2, 2 * sparsity)) {
  GEMS_CHECK(sparsity >= 1);
  GEMS_CHECK(num_rows >= 1);
  cells_.reserve(num_rows_ * num_buckets_);
  for (size_t row = 0; row < num_rows_; ++row) {
    for (size_t bucket = 0; bucket < num_buckets_; ++bucket) {
      cells_.emplace_back(DeriveSeed(seed, row * num_buckets_ + bucket));
    }
  }
}

void SparseRecovery::Update(uint64_t item, int64_t weight) {
  for (size_t row = 0; row < num_rows_; ++row) {
    const uint64_t bucket =
        Hash64(item, DeriveSeed(seed_ ^ 0xB0C4E7, row)) % num_buckets_;
    cells_[row * num_buckets_ + bucket].Update(item, weight);
  }
}

std::optional<std::vector<OneSparseRecovery::Recovered>>
SparseRecovery::Recover() const {
  std::unordered_map<uint64_t, int64_t> found;
  size_t dense_cells = 0;
  for (const OneSparseRecovery& cell : cells_) {
    switch (cell.Classify()) {
      case OneSparseRecovery::State::kZero:
        break;
      case OneSparseRecovery::State::kOneSparse: {
        const auto recovered = cell.Recover();
        found[recovered->item] = recovered->weight;
        break;
      }
      case OneSparseRecovery::State::kDense:
        ++dense_cells;
        break;
    }
  }
  // Verify: every recovered item must hash to cells consistent with its
  // weight; more pragmatically, reject when too many cells stayed dense
  // (the vector is likely denser than s) or nothing was recovered despite
  // dense cells.
  if (found.size() > sparsity_ || (found.empty() && dense_cells > 0)) {
    return std::nullopt;
  }
  if (dense_cells > num_rows_ * num_buckets_ / 2) return std::nullopt;
  std::vector<OneSparseRecovery::Recovered> out;
  out.reserve(found.size());
  for (const auto& [item, weight] : found) {
    out.push_back(OneSparseRecovery::Recovered{item, weight});
  }
  return out;
}

Status SparseRecovery::Merge(const SparseRecovery& other) {
  if (sparsity_ != other.sparsity_ || seed_ != other.seed_ ||
      cells_.size() != other.cells_.size()) {
    return Status::InvalidArgument(
        "SparseRecovery merge requires identical configuration");
  }
  for (size_t i = 0; i < cells_.size(); ++i) {
    Status s = cells_[i].Merge(other.cells_[i]);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

L0Sampler::L0Sampler(uint64_t seed, size_t sparsity)
    : L0Sampler(seed, Options{sparsity, kNumLevels, 3}) {}

L0Sampler::L0Sampler(uint64_t seed, const Options& options)
    : seed_(seed), options_(options) {
  GEMS_CHECK(options.num_levels >= 1 && options.num_levels <= 64);
  levels_.reserve(options.num_levels);
  for (int level = 0; level < options.num_levels; ++level) {
    levels_.emplace_back(options.sparsity, DeriveSeed(seed, 1000 + level),
                         options.num_rows);
  }
}

int L0Sampler::LevelOf(uint64_t item) const {
  const uint64_t h = Hash64(item, seed_ ^ 0x10E7E1);
  const int zeros = CountTrailingZeros64(h);
  return std::min(zeros, options_.num_levels - 1);
}

void L0Sampler::Update(uint64_t item, int64_t weight) {
  // Item participates in levels 0..LevelOf(item): level j keeps items with
  // >= j trailing-zero hash bits, i.e. a 2^-j subsample.
  const int max_level = LevelOf(item);
  for (int level = 0; level <= max_level; ++level) {
    levels_[level].Update(item, weight);
  }
}

std::optional<L0Sampler::Sample> L0Sampler::Draw() const {
  // Scan from the sparsest level down; first successful non-empty recovery
  // wins. Within a level pick the item minimizing an independent hash so
  // the choice is uniform among recovered items.
  for (int level = options_.num_levels - 1; level >= 0; --level) {
    const auto recovered = levels_[level].Recover();
    if (!recovered.has_value()) continue;
    if (recovered->empty()) continue;
    const OneSparseRecovery::Recovered* best = nullptr;
    uint64_t best_rank = ~uint64_t{0};
    for (const auto& candidate : *recovered) {
      const uint64_t rank = Hash64(candidate.item, seed_ ^ 0x9A3E);
      if (rank < best_rank) {
        best_rank = rank;
        best = &candidate;
      }
    }
    return Sample{best->item, best->weight};
  }
  return std::nullopt;
}

Status L0Sampler::Merge(const L0Sampler& other) {
  if (seed_ != other.seed_ || options_.sparsity != other.options_.sparsity ||
      options_.num_levels != other.options_.num_levels ||
      options_.num_rows != other.options_.num_rows) {
    return Status::InvalidArgument(
        "L0Sampler merge requires identical configuration");
  }
  for (size_t level = 0; level < levels_.size(); ++level) {
    Status s = levels_[level].Merge(other.levels_[level]);
    if (!s.ok()) return s;
  }
  return Status::Ok();
}

}  // namespace gems

namespace gems {

void OneSparseRecovery::EncodeTo(ByteWriter* writer) const {
  writer->PutU64(seed_);
  writer->PutI64(sum_weight_);
  // __int128 as two little-endian 64-bit halves.
  writer->PutU64(static_cast<uint64_t>(
      static_cast<unsigned __int128>(sum_index_weight_)));
  writer->PutU64(static_cast<uint64_t>(
      static_cast<unsigned __int128>(sum_index_weight_) >> 64));
  writer->PutU64(fingerprint_);
}

Status OneSparseRecovery::DecodeFrom(ByteReader* reader) {
  uint64_t seed, low, high, fingerprint;
  int64_t sum_weight;
  if (Status s = reader->GetU64(&seed); !s.ok()) return s;
  if (Status s = reader->GetI64(&sum_weight); !s.ok()) return s;
  if (Status s = reader->GetU64(&low); !s.ok()) return s;
  if (Status s = reader->GetU64(&high); !s.ok()) return s;
  if (Status s = reader->GetU64(&fingerprint); !s.ok()) return s;
  *this = OneSparseRecovery(seed);
  sum_weight_ = sum_weight;
  sum_index_weight_ = static_cast<__int128>(
      (static_cast<unsigned __int128>(high) << 64) | low);
  if (fingerprint >= kPrime) return Status::Corruption("bad fingerprint");
  fingerprint_ = fingerprint;
  return Status::Ok();
}

void SparseRecovery::EncodeTo(ByteWriter* writer) const {
  writer->PutVarint(sparsity_);
  writer->PutU64(seed_);
  writer->PutVarint(num_rows_);
  for (const OneSparseRecovery& cell : cells_) cell.EncodeTo(writer);
}

Status SparseRecovery::DecodeFrom(ByteReader* reader) {
  uint64_t sparsity, seed, num_rows;
  if (Status s = reader->GetVarint(&sparsity); !s.ok()) return s;
  if (Status s = reader->GetU64(&seed); !s.ok()) return s;
  if (Status s = reader->GetVarint(&num_rows); !s.ok()) return s;
  if (sparsity == 0 || sparsity > (1u << 20) || num_rows == 0 ||
      num_rows > 64) {
    return Status::Corruption("invalid SparseRecovery shape");
  }
  *this = SparseRecovery(sparsity, seed, num_rows);
  for (OneSparseRecovery& cell : cells_) {
    if (Status s = cell.DecodeFrom(reader); !s.ok()) return s;
  }
  return Status::Ok();
}

void L0Sampler::EncodeTo(ByteWriter* writer) const {
  writer->PutU64(seed_);
  writer->PutVarint(options_.sparsity);
  writer->PutVarint(static_cast<uint64_t>(options_.num_levels));
  writer->PutVarint(options_.num_rows);
  for (const SparseRecovery& level : levels_) level.EncodeTo(writer);
}

Status L0Sampler::DecodeFrom(ByteReader* reader) {
  uint64_t seed, sparsity, num_levels, num_rows;
  if (Status s = reader->GetU64(&seed); !s.ok()) return s;
  if (Status s = reader->GetVarint(&sparsity); !s.ok()) return s;
  if (Status s = reader->GetVarint(&num_levels); !s.ok()) return s;
  if (Status s = reader->GetVarint(&num_rows); !s.ok()) return s;
  if (sparsity == 0 || sparsity > (1u << 20) || num_levels == 0 ||
      num_levels > 64 || num_rows == 0 || num_rows > 64) {
    return Status::Corruption("invalid L0Sampler shape");
  }
  Options options;
  options.sparsity = sparsity;
  options.num_levels = static_cast<int>(num_levels);
  options.num_rows = num_rows;
  *this = L0Sampler(seed, options);
  for (SparseRecovery& level : levels_) {
    if (Status s = level.DecodeFrom(reader); !s.ok()) return s;
  }
  return Status::Ok();
}

std::vector<uint8_t> L0Sampler::Serialize() const {
  ByteWriter w;
  EncodeTo(&w);
  return WrapEnvelope(SketchTypeId::kL0Sampler,
                      std::move(w).TakeBytes());
}

Result<L0Sampler> L0Sampler::Deserialize(std::span<const uint8_t> bytes) {
  Result<ByteReader> payload = OpenEnvelope(SketchTypeId::kL0Sampler, bytes);
  if (!payload.ok()) return payload.status();
  ByteReader r = std::move(payload).value();
  L0Sampler sampler(0, Options{1, 1, 1});
  if (Status sd = sampler.DecodeFrom(&r); !sd.ok()) return sd;
  return sampler;
}

}  // namespace gems
