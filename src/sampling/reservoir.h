#ifndef GEMS_SAMPLING_RESERVOIR_H_
#define GEMS_SAMPLING_RESERVOIR_H_

#include <cstdint>
#include <span>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "core/io.h"
#include "core/view.h"

/// \file
/// Reservoir sampling — the paper's "earliest instance of something we
/// could reasonably refer to as a sketch algorithm". Algorithm R draws a
/// uniform sample of k items from a stream of unknown length; the weighted
/// variant (Efraimidis-Spirakis A-ES) samples proportionally to weight by
/// keeping the k largest keys u^(1/w). Both merge, which is what the
/// distributed substrate uses for sample aggregation.

namespace gems {

/// Uniform k-sample without replacement (Algorithm R).
class ReservoirSampler {
 public:
  /// Wire-format type tag, for View<ReservoirSampler> wrapping.
  static constexpr SketchTypeId kTypeId = SketchTypeId::kReservoir;

  ReservoirSampler(size_t k, uint64_t seed);

  ReservoirSampler(const ReservoirSampler&) = default;
  ReservoirSampler& operator=(const ReservoirSampler&) = default;
  ReservoirSampler(ReservoirSampler&&) = default;
  ReservoirSampler& operator=(ReservoirSampler&&) = default;

  /// Offers one stream item to the reservoir.
  void Update(uint64_t item);

  /// Batched ingest: bulk-copies the fill phase (no coin flips are drawn
  /// while the reservoir has room, matching Update()), then runs the
  /// Algorithm R replacement loop. State including the Rng is
  /// byte-identical to per-item Update().
  void UpdateBatch(std::span<const uint64_t> items);

  /// The current sample (size min(k, items seen)).
  const std::vector<uint64_t>& Sample() const { return sample_; }

  uint64_t ItemsSeen() const { return seen_; }
  size_t k() const { return k_; }

  /// Merges so the result is a uniform sample of the concatenated streams
  /// (per the mergeable-summaries construction: draw each slot from one of
  /// the two reservoirs with probability proportional to its stream size).
  Status Merge(const ReservoirSampler& other);

  /// Merges a wrapped serialized peer. The merge draws from this
  /// sampler's RNG per slot, so it materializes one temporary from the
  /// view (skipping only the caller-side envelope copy) — byte-identical
  /// to Merge(*view.Materialize()) by construction.
  Status MergeFromView(const View<ReservoirSampler>& view);

  std::vector<uint8_t> Serialize() const;
  /// Appends the wire envelope into a caller-owned buffer; byte-identical
  /// to Serialize().
  void SerializeTo(ByteSink& sink) const;
  static Result<ReservoirSampler> Deserialize(
      std::span<const uint8_t> bytes);

 private:
  size_t k_;
  uint64_t seen_ = 0;
  Rng rng_;
  std::vector<uint64_t> sample_;
};

/// Weighted reservoir (A-ES): P(item in sample) is proportional to weight
/// for small weights; exact weighted sampling without replacement.
class WeightedReservoirSampler {
 public:
  WeightedReservoirSampler(size_t k, uint64_t seed);

  WeightedReservoirSampler(const WeightedReservoirSampler&) = default;
  WeightedReservoirSampler& operator=(const WeightedReservoirSampler&) =
      default;
  WeightedReservoirSampler(WeightedReservoirSampler&&) = default;
  WeightedReservoirSampler& operator=(WeightedReservoirSampler&&) = default;

  /// Offers an item with weight > 0.
  void Update(uint64_t item, double weight);

  /// Current sample with the A-ES keys (largest-key items).
  std::vector<uint64_t> Sample() const;

  size_t k() const { return k_; }

  /// Merge = keep the k largest keys across both samplers (exact).
  Status Merge(const WeightedReservoirSampler& other);

 private:
  struct Keyed {
    double key;
    uint64_t item;
    bool operator<(const Keyed& other) const { return key < other.key; }
  };

  void Offer(double key, uint64_t item);

  size_t k_;
  Rng rng_;
  // Min-heap on key: the smallest retained key is at front.
  std::vector<Keyed> heap_;
};

}  // namespace gems

#endif  // GEMS_SAMPLING_RESERVOIR_H_
