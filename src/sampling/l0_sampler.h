#ifndef GEMS_SAMPLING_L0_SAMPLER_H_
#define GEMS_SAMPLING_L0_SAMPLER_H_

#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

/// \file
/// L0 sampling from turnstile streams (Jowhari, Saglam & Tardos, PODS 2011
/// — the paper's "Tight bounds for Lp samplers" test-of-time entry).
/// Returns a (near-)uniform nonzero coordinate of a vector maintained under
/// positive and negative updates. The key primitive behind the AGM graph
/// sketches (src/graph): sample an incident edge of a node's
/// edge-incidence vector even after cancellations.
///
/// Construction: geometric levels; level j keeps only items whose hash has
/// j leading-zero bits, each level summarized by an s-sparse recovery
/// structure built from one-sparse testers (sum/weighted-sum/fingerprint).

namespace gems {

/// Detects whether the (item, weight) multiset it has absorbed is exactly
/// one-sparse, and if so recovers the single item and weight.
class OneSparseRecovery {
 public:
  explicit OneSparseRecovery(uint64_t seed = 0);

  OneSparseRecovery(const OneSparseRecovery&) = default;
  OneSparseRecovery& operator=(const OneSparseRecovery&) = default;

  /// Adds `weight` (may be negative) at coordinate `item`.
  void Update(uint64_t item, int64_t weight);

  struct Recovered {
    uint64_t item;
    int64_t weight;
  };

  /// Empty vector, one nonzero coordinate, or "dense" (anything else).
  enum class State { kZero, kOneSparse, kDense };

  State Classify() const;

  /// The single nonzero coordinate if Classify() == kOneSparse.
  std::optional<Recovered> Recover() const;

  /// Adds another structure built with the same seed.
  Status Merge(const OneSparseRecovery& other);

  /// Raw (frameless) encoding for embedding in larger sketches.
  void EncodeTo(ByteWriter* writer) const;
  Status DecodeFrom(ByteReader* reader);

 private:
  uint64_t Fingerprint(uint64_t item, int64_t weight) const;

  uint64_t seed_;
  uint64_t z_;              // Fingerprint base, in [2, p).
  int64_t sum_weight_ = 0;
  __int128 sum_index_weight_ = 0;
  uint64_t fingerprint_ = 0;  // sum of w * z^item mod p.
};

/// Recovers all coordinates of an (at most) s-sparse vector w.h.p.
class SparseRecovery {
 public:
  /// `sparsity` s: recovery succeeds w.h.p. if <= s coordinates nonzero.
  /// `num_rows` trades space for recovery probability.
  SparseRecovery(size_t sparsity, uint64_t seed, size_t num_rows = 3);

  SparseRecovery(const SparseRecovery&) = default;
  SparseRecovery& operator=(const SparseRecovery&) = default;

  void Update(uint64_t item, int64_t weight);

  /// All recovered (item, weight) pairs; nullopt if the vector looks denser
  /// than s (recovery failed).
  std::optional<std::vector<OneSparseRecovery::Recovered>> Recover() const;

  Status Merge(const SparseRecovery& other);

  /// Raw (frameless) encoding for embedding in larger sketches.
  void EncodeTo(ByteWriter* writer) const;
  Status DecodeFrom(ByteReader* reader);

 private:
  size_t sparsity_;
  uint64_t seed_;
  size_t num_rows_;
  size_t num_buckets_;
  std::vector<OneSparseRecovery> cells_;  // num_rows_ x num_buckets_.
};

/// L0 sampler over a turnstile stream.
class L0Sampler {
 public:
  struct Options {
    /// Per-level s-sparse recovery robustness.
    size_t sparsity = 8;
    /// Number of geometric subsampling levels (coordinate universe up to
    /// ~2^levels is covered well).
    int num_levels = 48;
    /// Hash rows per sparse-recovery structure (space vs success rate).
    size_t num_rows = 3;
  };

  /// `sparsity` controls per-level recovery robustness (default 8).
  explicit L0Sampler(uint64_t seed, size_t sparsity = 8);

  /// Fully configurable variant (used by the AGM graph sketch, which needs
  /// thousands of compact samplers).
  L0Sampler(uint64_t seed, const Options& options);

  L0Sampler(const L0Sampler&) = default;
  L0Sampler& operator=(const L0Sampler&) = default;
  L0Sampler(L0Sampler&&) = default;
  L0Sampler& operator=(L0Sampler&&) = default;

  /// Adds `weight` (may be negative) at coordinate `item`.
  void Update(uint64_t item, int64_t weight);

  struct Sample {
    uint64_t item;
    int64_t weight;
  };

  /// A (near-)uniform nonzero coordinate, or nullopt if the vector is zero
  /// or recovery failed at every level (probability O(2^-levels)).
  std::optional<Sample> Draw() const;

  Status Merge(const L0Sampler& other);

  std::vector<uint8_t> Serialize() const;
  static Result<L0Sampler> Deserialize(std::span<const uint8_t> bytes);

  /// Raw (frameless) encoding for embedding in larger sketches (AGM).
  void EncodeTo(ByteWriter* writer) const;
  Status DecodeFrom(ByteReader* reader);

  static constexpr int kNumLevels = 48;

 private:
  /// Level of an item: number of leading zeros of its level hash, capped.
  int LevelOf(uint64_t item) const;

  uint64_t seed_;
  Options options_;
  std::vector<SparseRecovery> levels_;
};

}  // namespace gems

#endif  // GEMS_SAMPLING_L0_SAMPLER_H_
