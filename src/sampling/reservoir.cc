#include "sampling/reservoir.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "core/wire.h"

namespace gems {

ReservoirSampler::ReservoirSampler(size_t k, uint64_t seed)
    : k_(k), rng_(seed) {
  GEMS_CHECK(k >= 1);
  sample_.reserve(k);
}

void ReservoirSampler::Update(uint64_t item) {
  ++seen_;
  if (sample_.size() < k_) {
    sample_.push_back(item);
    return;
  }
  // Algorithm R: replace a uniform slot with probability k/seen.
  const uint64_t j = rng_.NextBounded(seen_);
  if (j < k_) sample_[j] = item;
}

void ReservoirSampler::UpdateBatch(std::span<const uint64_t> items) {
  size_t i = 0;
  const size_t room = k_ > sample_.size() ? k_ - sample_.size() : 0;
  const size_t fill = std::min(items.size(), room);
  sample_.insert(sample_.end(), items.begin(), items.begin() + fill);
  seen_ += fill;
  i = fill;
  for (; i < items.size(); ++i) {
    ++seen_;
    const uint64_t j = rng_.NextBounded(seen_);
    if (j < k_) sample_[j] = items[i];
  }
}

Status ReservoirSampler::Merge(const ReservoirSampler& other) {
  if (k_ != other.k_) {
    return Status::InvalidArgument("Reservoir merge requires equal k");
  }
  if (other.seen_ == 0) return Status::Ok();
  if (seen_ == 0) {
    sample_ = other.sample_;
    seen_ = other.seen_;
    return Status::Ok();
  }
  // Draw each output slot from this or other proportionally to stream
  // sizes, sampling without replacement within each source.
  std::vector<uint64_t> mine = sample_;
  std::vector<uint64_t> theirs = other.sample_;
  std::vector<uint64_t> merged;
  const size_t target = std::min(
      k_, static_cast<size_t>(std::min<uint64_t>(seen_ + other.seen_, k_)));
  uint64_t remaining_mine = seen_;
  uint64_t remaining_theirs = other.seen_;
  while (merged.size() < target && (!mine.empty() || !theirs.empty())) {
    const double p_mine =
        static_cast<double>(remaining_mine) /
        static_cast<double>(remaining_mine + remaining_theirs);
    const bool take_mine =
        !mine.empty() && (theirs.empty() || rng_.NextBernoulli(p_mine));
    std::vector<uint64_t>& source = take_mine ? mine : theirs;
    uint64_t& remaining = take_mine ? remaining_mine : remaining_theirs;
    const size_t idx = rng_.NextBounded(source.size());
    merged.push_back(source[idx]);
    source[idx] = source.back();
    source.pop_back();
    if (remaining > 0) --remaining;
  }
  sample_ = std::move(merged);
  seen_ += other.seen_;
  return Status::Ok();
}

Status ReservoirSampler::MergeFromView(const View<ReservoirSampler>& view) {
  Result<ReservoirSampler> other = view.Materialize();
  if (!other.ok()) return other.status();
  return Merge(other.value());
}

std::vector<uint8_t> ReservoirSampler::Serialize() const {
  std::vector<uint8_t> out;
  ByteSink sink(&out);
  SerializeTo(sink);
  return out;
}

void ReservoirSampler::SerializeTo(ByteSink& sink) const {
  EnvelopeBuilder env(sink, kTypeId);
  sink.PutVarint(k_);
  sink.PutU64(seen_);
  sink.PutVarint(sample_.size());
  for (uint64_t item : sample_) sink.PutU64(item);
}

Result<ReservoirSampler> ReservoirSampler::Deserialize(
    std::span<const uint8_t> bytes) {
  Result<ByteReader> payload = OpenEnvelope(SketchTypeId::kReservoir, bytes);
  if (!payload.ok()) return payload.status();
  ByteReader r = std::move(payload).value();
  uint64_t k, seen, size;
  if (Status sk = r.GetVarint(&k); !sk.ok()) return sk;
  if (Status sn = r.GetU64(&seen); !sn.ok()) return sn;
  if (Status sz = r.GetVarint(&size); !sz.ok()) return sz;
  if (k == 0 || size > k || size > seen) {
    return Status::Corruption("invalid reservoir header");
  }
  ReservoirSampler sampler(k, seen ^ 0x5EED);
  sampler.seen_ = seen;
  sampler.sample_.resize(size);
  for (uint64_t& item : sampler.sample_) {
    if (Status si = r.GetU64(&item); !si.ok()) return si;
  }
  return sampler;
}

WeightedReservoirSampler::WeightedReservoirSampler(size_t k, uint64_t seed)
    : k_(k), rng_(seed) {
  GEMS_CHECK(k >= 1);
}

void WeightedReservoirSampler::Offer(double key, uint64_t item) {
  if (heap_.size() < k_) {
    heap_.push_back(Keyed{key, item});
    std::push_heap(heap_.begin(), heap_.end(),
                   [](const Keyed& a, const Keyed& b) { return a.key > b.key; });
    return;
  }
  if (key > heap_.front().key) {
    std::pop_heap(heap_.begin(), heap_.end(),
                  [](const Keyed& a, const Keyed& b) { return a.key > b.key; });
    heap_.back() = Keyed{key, item};
    std::push_heap(heap_.begin(), heap_.end(),
                   [](const Keyed& a, const Keyed& b) { return a.key > b.key; });
  }
}

void WeightedReservoirSampler::Update(uint64_t item, double weight) {
  GEMS_CHECK(weight > 0.0);
  // A-ES key: u^(1/w) for u ~ U(0,1); larger weight -> larger typical key.
  double u = rng_.NextDouble();
  while (u <= 0.0) u = rng_.NextDouble();
  const double key = std::pow(u, 1.0 / weight);
  Offer(key, item);
}

std::vector<uint64_t> WeightedReservoirSampler::Sample() const {
  std::vector<uint64_t> out;
  out.reserve(heap_.size());
  for (const Keyed& keyed : heap_) out.push_back(keyed.item);
  return out;
}

Status WeightedReservoirSampler::Merge(
    const WeightedReservoirSampler& other) {
  if (k_ != other.k_) {
    return Status::InvalidArgument(
        "WeightedReservoir merge requires equal k");
  }
  for (const Keyed& keyed : other.heap_) Offer(keyed.key, keyed.item);
  return Status::Ok();
}

}  // namespace gems
