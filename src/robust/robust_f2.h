#ifndef GEMS_ROBUST_ROBUST_F2_H_
#define GEMS_ROBUST_ROBUST_F2_H_

#include <cstdint>
#include <vector>

#include "moments/ams.h"

/// \file
/// Adversarially robust F2 estimation via sketch switching (Ben-Eliezer,
/// Jayaram, Woodruff & Yogev, PODS 2020 best paper — cited by the survey
/// as the robustness milestone). Ordinary linear sketches (AMS, Count
/// sketch) are breakable by an adaptive adversary who inserts an item,
/// observes the estimate, and reverts insertions that raised it: kept
/// items anti-correlate with the sketch's randomness and the estimate
/// collapses (see adversary.h, and experiment E14).
///
/// Sketch switching fixes this with k independent copies: all copies
/// absorb every update, but the *exposed* estimate comes from the current
/// copy only and is frozen until the current copy's estimate leaves the
/// [released/(1+lambda), released*(1+lambda)] window, at which point a new
/// estimate is released and the next (never-yet-exposed) copy takes over.
/// Each copy answers adaptively-chosen queries only once, so the classic
/// static guarantee applies to each released value; O(log_{1+lambda}(F2
/// range)) copies suffice for a whole stream.

namespace gems {

/// Robust F2 estimator (sketch switching over AMS).
class RobustF2 {
 public:
  struct Options {
    uint32_t estimators_per_group = 128;  // AMS s1 per copy.
    uint32_t num_groups = 5;              // AMS s2 per copy.
    int num_copies = 24;                  // Switching budget.
    double lambda = 0.5;                  // Release granularity.
  };

  RobustF2(const Options& options, uint64_t seed);

  RobustF2(const RobustF2&) = default;
  RobustF2& operator=(const RobustF2&) = default;
  RobustF2(RobustF2&&) = default;
  RobustF2& operator=(RobustF2&&) = default;

  /// Adds `weight` (may be negative) to item's frequency.
  void Update(uint64_t item, int64_t weight = 1);

  /// The exposed (adversarially robust) estimate.
  double EstimateF2();

  /// Copies consumed so far (diagnostics for E14).
  int CopiesUsed() const { return current_copy_ + 1; }

 private:
  Options options_;
  std::vector<AmsSketch> copies_;
  int current_copy_ = 0;
  double released_ = 0.0;
};

}  // namespace gems

#endif  // GEMS_ROBUST_ROBUST_F2_H_
