#include "robust/adversary.h"

#include <cmath>

namespace gems {

double AttackResult::RelativeError() const {
  if (kept_items == 0) return 0.0;
  const double truth = static_cast<double>(kept_items);
  return std::abs(final_estimate - truth) / truth;
}

AttackResult RunAdaptiveF2Attack(const F2Oracle& oracle, size_t num_probes,
                                 uint64_t seed) {
  Rng rng(seed);
  AttackResult result;
  double previous = oracle.estimate();
  for (size_t probe = 0; probe < num_probes; ++probe) {
    const uint64_t item = rng.NextU64();
    oracle.update(item, +1);
    const double current = oracle.estimate();
    // A fresh frequency-1 item raises the true F2 by exactly 1. Keep items
    // the sketch credits with LESS than their fair share — their sign
    // pattern anti-correlates with the sketch state, so the kept set's
    // estimate drifts ever further below its true F2.
    if (current - previous <= 1.0) {
      ++result.kept_items;
      previous = current;
    } else {
      oracle.update(item, -1);  // Revert; sketch returns to prior state.
    }
  }
  result.final_estimate = oracle.estimate();
  return result;
}

}  // namespace gems
