#ifndef GEMS_ROBUST_ADVERSARY_H_
#define GEMS_ROBUST_ADVERSARY_H_

#include <cstdint>
#include <functional>
#include <vector>

#include "common/random.h"

/// \file
/// The adaptive attack against linear F2 sketches that motivates
/// adversarially robust streaming: insert a fresh item (+1), observe the
/// reported F2; if the estimate rose by more than the item's fair share,
/// revert it (-1); otherwise keep it. Kept items are exactly those whose
/// sign patterns currently cancel inside the sketch, so the final stream
/// has true F2 = #kept while the sketch reports far less. Works against
/// any turnstile oracle; defeated by sketch switching (robust_f2.h).

namespace gems {

/// Oracle interface the adversary attacks: apply an update, read estimate.
struct F2Oracle {
  std::function<void(uint64_t item, int64_t weight)> update;
  std::function<double()> estimate;
};

/// Result of one attack run.
struct AttackResult {
  uint64_t kept_items = 0;    // True F2 of the final stream (all freq 1).
  double final_estimate = 0;  // What the sketch reports at the end.
  /// Relative error |estimate - truth| / truth of the final report.
  double RelativeError() const;
};

/// Runs the adaptive keep-if-underestimated attack for `num_probes`
/// candidate items.
AttackResult RunAdaptiveF2Attack(const F2Oracle& oracle, size_t num_probes,
                                 uint64_t seed);

}  // namespace gems

#endif  // GEMS_ROBUST_ADVERSARY_H_
