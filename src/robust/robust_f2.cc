#include "robust/robust_f2.h"

#include "common/check.h"
#include "hash/hash.h"

namespace gems {

RobustF2::RobustF2(const Options& options, uint64_t seed)
    : options_(options) {
  GEMS_CHECK(options.num_copies >= 1);
  GEMS_CHECK(options.lambda > 0.0);
  copies_.reserve(options.num_copies);
  for (int copy = 0; copy < options.num_copies; ++copy) {
    copies_.emplace_back(options.estimators_per_group, options.num_groups,
                         DeriveSeed(seed, copy));
  }
}

void RobustF2::Update(uint64_t item, int64_t weight) {
  for (AmsSketch& copy : copies_) copy.Update(item, weight);
}

double RobustF2::EstimateF2() {
  const double current = copies_[current_copy_].EstimateF2();
  const double lo = released_ / (1.0 + options_.lambda);
  const double hi = released_ * (1.0 + options_.lambda);
  if (current < lo || current > hi || (released_ == 0.0 && current > 0.0)) {
    released_ = current;
    if (current_copy_ + 1 < options_.num_copies) ++current_copy_;
  }
  return released_;
}

}  // namespace gems
