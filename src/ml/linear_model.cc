#include "ml/linear_model.h"

#include <cmath>

#include "common/check.h"

namespace gems {
namespace {

inline double Sigmoid(double z) { return 1.0 / (1.0 + std::exp(-z)); }

inline double Dot(const std::vector<double>& a,
                  const std::vector<double>& b) {
  GEMS_DCHECK(a.size() == b.size());
  double sum = 0;
  for (size_t i = 0; i < a.size(); ++i) sum += a[i] * b[i];
  return sum;
}

}  // namespace

SyntheticDataset GenerateLogisticData(size_t n, size_t dim, size_t sparsity,
                                      uint64_t seed) {
  GEMS_CHECK(sparsity <= dim);
  Rng rng(seed);
  SyntheticDataset dataset;
  dataset.true_weights.assign(dim, 0.0);
  for (size_t i = 0; i < sparsity; ++i) {
    // Spread the true support across the dimension range.
    const size_t coordinate = (i * dim) / sparsity;
    dataset.true_weights[coordinate] = rng.NextGaussian() * 3.0;
  }
  dataset.examples.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Example example;
    example.features.resize(dim);
    for (double& f : example.features) f = rng.NextGaussian();
    const double p = Sigmoid(Dot(dataset.true_weights, example.features));
    example.label = rng.NextBernoulli(p) ? 1 : -1;
    dataset.examples.push_back(std::move(example));
  }
  return dataset;
}

SyntheticDataset GenerateSparseLogisticData(size_t n, size_t dim,
                                            size_t sparsity,
                                            size_t active_features,
                                            uint64_t seed) {
  GEMS_CHECK(sparsity >= 1 && sparsity <= dim);
  GEMS_CHECK(active_features >= 2 && active_features <= dim);
  Rng rng(seed);
  SyntheticDataset dataset;
  dataset.true_weights.assign(dim, 0.0);
  std::vector<size_t> signal_support;
  signal_support.reserve(sparsity);
  for (size_t i = 0; i < sparsity; ++i) {
    const size_t coordinate = (i * dim) / sparsity;
    signal_support.push_back(coordinate);
    dataset.true_weights[coordinate] = rng.NextGaussian() * 3.0;
  }
  dataset.examples.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    Example example;
    example.features.assign(dim, 0.0);
    // Half the active coordinates come from the signal support (frequent
    // informative features), half from anywhere (background vocabulary).
    for (size_t a = 0; a < active_features; ++a) {
      const size_t coordinate =
          (a % 2 == 0)
              ? signal_support[rng.NextBounded(signal_support.size())]
              : rng.NextBounded(dim);
      example.features[coordinate] = rng.NextGaussian();
    }
    double dot = 0;
    for (size_t c = 0; c < dim; ++c) {
      dot += dataset.true_weights[c] * example.features[c];
    }
    const double p = Sigmoid(dot);
    example.label = rng.NextBernoulli(p) ? 1 : -1;
    dataset.examples.push_back(std::move(example));
  }
  return dataset;
}

LogisticModel::LogisticModel(size_t dim) : weights_(dim, 0.0) {
  GEMS_CHECK(dim >= 1);
}

double LogisticModel::PredictProbability(
    const std::vector<double>& features) const {
  return Sigmoid(Dot(weights_, features));
}

double LogisticModel::Loss(const std::vector<Example>& examples) const {
  GEMS_CHECK(!examples.empty());
  double total = 0;
  for (const Example& example : examples) {
    const double margin = example.label * Dot(weights_, example.features);
    // log(1 + e^-m), computed stably.
    total += margin > 0 ? std::log1p(std::exp(-margin))
                        : -margin + std::log1p(std::exp(margin));
  }
  return total / static_cast<double>(examples.size());
}

double LogisticModel::Accuracy(const std::vector<Example>& examples) const {
  GEMS_CHECK(!examples.empty());
  size_t correct = 0;
  for (const Example& example : examples) {
    const int predicted =
        Dot(weights_, example.features) >= 0 ? 1 : -1;
    if (predicted == example.label) ++correct;
  }
  return static_cast<double>(correct) / static_cast<double>(examples.size());
}

std::vector<double> LogisticModel::Gradient(
    const std::vector<Example>& examples) const {
  GEMS_CHECK(!examples.empty());
  std::vector<double> gradient(weights_.size(), 0.0);
  for (const Example& example : examples) {
    const double margin = example.label * Dot(weights_, example.features);
    const double coefficient = -example.label * Sigmoid(-margin);
    for (size_t i = 0; i < gradient.size(); ++i) {
      gradient[i] += coefficient * example.features[i];
    }
  }
  const double inverse_n = 1.0 / static_cast<double>(examples.size());
  for (double& g : gradient) g *= inverse_n;
  return gradient;
}

void LogisticModel::ApplyUpdate(const std::vector<double>& direction,
                                double step) {
  GEMS_CHECK(direction.size() == weights_.size());
  for (size_t i = 0; i < weights_.size(); ++i) {
    weights_[i] -= step * direction[i];
  }
}

std::vector<double> TrainDenseSgd(LogisticModel* model,
                                  const std::vector<Example>& data,
                                  size_t rounds, double learning_rate) {
  std::vector<double> losses;
  losses.reserve(rounds);
  for (size_t round = 0; round < rounds; ++round) {
    model->ApplyUpdate(model->Gradient(data), learning_rate);
    losses.push_back(model->Loss(data));
  }
  return losses;
}

}  // namespace gems
