#ifndef GEMS_ML_LINEAR_MODEL_H_
#define GEMS_ML_LINEAR_MODEL_H_

#include <cstdint>
#include <vector>

#include "common/random.h"

/// \file
/// Minimal logistic-regression substrate for the FetchSGD experiment
/// (E12): synthetic binary classification data, logistic loss/gradients,
/// and a plain SGD trainer used as the uncompressed baseline.

namespace gems {

/// A labelled example: dense features and a +/-1 label.
struct Example {
  std::vector<double> features;
  int label;  // +1 or -1.
};

/// Synthetic logistic dataset: features ~ N(0,1), labels drawn from a
/// ground-truth sparse weight vector passed through the logistic link.
struct SyntheticDataset {
  std::vector<Example> examples;
  std::vector<double> true_weights;
};

/// Generates `n` examples in `dim` dimensions with `sparsity` non-zero
/// true weights. Features are dense Gaussians.
SyntheticDataset GenerateLogisticData(size_t n, size_t dim, size_t sparsity,
                                      uint64_t seed);

/// Sparse-feature variant (bag-of-words-like): each example has only
/// `active_features` non-zero coordinates, half drawn from the true-signal
/// support. This is the regime FetchSGD targets — gradients concentrate on
/// a few heavy coordinates, which is what makes count-sketch compression
/// effective at real compression ratios.
SyntheticDataset GenerateSparseLogisticData(size_t n, size_t dim,
                                            size_t sparsity,
                                            size_t active_features,
                                            uint64_t seed);

/// Logistic regression model (no bias term; fold it into a feature).
class LogisticModel {
 public:
  explicit LogisticModel(size_t dim);

  /// P(label = +1 | x).
  double PredictProbability(const std::vector<double>& features) const;

  /// Mean logistic loss over `examples`.
  double Loss(const std::vector<Example>& examples) const;

  /// Classification accuracy over `examples`.
  double Accuracy(const std::vector<Example>& examples) const;

  /// Mean gradient of the logistic loss over `examples`.
  std::vector<double> Gradient(const std::vector<Example>& examples) const;

  /// weights -= step * direction.
  void ApplyUpdate(const std::vector<double>& direction, double step);

  const std::vector<double>& weights() const { return weights_; }
  std::vector<double>* mutable_weights() { return &weights_; }
  size_t dim() const { return weights_.size(); }

 private:
  std::vector<double> weights_;
};

/// One full-gradient SGD baseline run; returns the loss after each round.
std::vector<double> TrainDenseSgd(LogisticModel* model,
                                  const std::vector<Example>& data,
                                  size_t rounds, double learning_rate);

}  // namespace gems

#endif  // GEMS_ML_LINEAR_MODEL_H_
