#include "ml/fetchsgd.h"

#include <algorithm>
#include <cmath>

#include "common/check.h"
#include "common/numeric.h"
#include "hash/hash.h"

namespace gems {

GradientSketch::GradientSketch(uint32_t width, uint32_t depth, uint64_t seed)
    : width_(width), depth_(depth), seed_(seed) {
  GEMS_CHECK(width >= 1);
  GEMS_CHECK(depth >= 1);
  bucket_hashes_.reserve(depth);
  sign_hashes_.reserve(depth);
  for (uint32_t row = 0; row < depth; ++row) {
    bucket_hashes_.emplace_back(2, DeriveSeed(seed, 2 * row));
    sign_hashes_.emplace_back(4, DeriveSeed(seed, 2 * row + 1));
  }
  cells_.assign(static_cast<size_t>(width) * depth, 0.0);
}

void GradientSketch::Add(uint64_t coordinate, double value) {
  for (uint32_t row = 0; row < depth_; ++row) {
    const uint64_t bucket = bucket_hashes_[row].EvalRange(coordinate, width_);
    cells_[static_cast<size_t>(row) * width_ + bucket] +=
        sign_hashes_[row].EvalSign(coordinate) * value;
  }
}

void GradientSketch::Accumulate(const std::vector<double>& gradient) {
  for (size_t coordinate = 0; coordinate < gradient.size(); ++coordinate) {
    if (gradient[coordinate] != 0.0) {
      Add(coordinate, gradient[coordinate]);
    }
  }
}

double GradientSketch::Estimate(uint64_t coordinate) const {
  std::vector<double> row_estimates;
  row_estimates.reserve(depth_);
  for (uint32_t row = 0; row < depth_; ++row) {
    const uint64_t bucket = bucket_hashes_[row].EvalRange(coordinate, width_);
    row_estimates.push_back(
        sign_hashes_[row].EvalSign(coordinate) *
        cells_[static_cast<size_t>(row) * width_ + bucket]);
  }
  return Median(std::move(row_estimates));
}

std::vector<std::pair<uint64_t, double>> GradientSketch::TopK(
    size_t k, size_t dim) const {
  std::vector<std::pair<uint64_t, double>> all;
  all.reserve(dim);
  for (uint64_t coordinate = 0; coordinate < dim; ++coordinate) {
    all.emplace_back(coordinate, Estimate(coordinate));
  }
  std::sort(all.begin(), all.end(), [](const auto& a, const auto& b) {
    return std::abs(a.second) > std::abs(b.second);
  });
  if (all.size() > k) all.resize(k);
  return all;
}

Status GradientSketch::AddSketch(const GradientSketch& other) {
  if (width_ != other.width_ || depth_ != other.depth_ ||
      seed_ != other.seed_) {
    return Status::InvalidArgument(
        "GradientSketch addition requires identical shape and seed");
  }
  for (size_t i = 0; i < cells_.size(); ++i) cells_[i] += other.cells_[i];
  return Status::Ok();
}

void GradientSketch::Scale(double factor) {
  for (double& cell : cells_) cell *= factor;
}

void GradientSketch::Reset() {
  std::fill(cells_.begin(), cells_.end(), 0.0);
}

FetchSgdTrainer::FetchSgdTrainer(const Options& options, uint64_t seed)
    : options_(options), seed_(seed) {
  GEMS_CHECK(options.num_clients >= 1);
  GEMS_CHECK(options.momentum >= 0.0 && options.momentum < 1.0);
}

size_t FetchSgdTrainer::UploadBytesPerClient() const {
  return static_cast<size_t>(options_.sketch_width) * options_.sketch_depth *
         sizeof(double);
}

std::vector<double> FetchSgdTrainer::Train(
    LogisticModel* model, const std::vector<Example>& data) {
  const size_t dim = model->dim();
  // Shard examples across clients.
  std::vector<std::vector<Example>> shards(options_.num_clients);
  for (size_t i = 0; i < data.size(); ++i) {
    shards[i % options_.num_clients].push_back(data[i]);
  }

  GradientSketch momentum(options_.sketch_width, options_.sketch_depth,
                          seed_);
  GradientSketch error(options_.sketch_width, options_.sketch_depth, seed_);
  std::vector<double> losses;
  losses.reserve(options_.rounds);

  for (size_t round = 0; round < options_.rounds; ++round) {
    // Clients: sketch local gradients; server sums them (linearity).
    GradientSketch round_sketch(options_.sketch_width, options_.sketch_depth,
                                seed_);
    for (const std::vector<Example>& shard : shards) {
      if (shard.empty()) continue;
      GradientSketch client_sketch(options_.sketch_width,
                                   options_.sketch_depth, seed_);
      client_sketch.Accumulate(model->Gradient(shard));
      GEMS_CHECK(round_sketch.AddSketch(client_sketch).ok());
    }
    round_sketch.Scale(1.0 / static_cast<double>(options_.num_clients));

    // Server: momentum and error accumulation in sketch space.
    momentum.Scale(options_.momentum);
    GEMS_CHECK(momentum.AddSketch(round_sketch).ok());
    GradientSketch step = momentum;
    step.Scale(options_.learning_rate);
    GEMS_CHECK(error.AddSketch(step).ok());

    // Extract top-k heavy coordinates from the error sketch, apply them,
    // and subtract them back (error feedback).
    std::vector<double> update(dim, 0.0);
    for (const auto& [coordinate, value] :
         error.TopK(options_.top_k, dim)) {
      update[coordinate] = value;
      error.Add(coordinate, -value);
    }
    model->ApplyUpdate(update, 1.0);  // Learning rate already folded in.
    losses.push_back(model->Loss(data));
  }
  return losses;
}

std::vector<double> TrainLocalTopK(LogisticModel* model,
                                   const std::vector<Example>& data,
                                   size_t num_clients, size_t rounds,
                                   double learning_rate, size_t top_k) {
  const size_t dim = model->dim();
  std::vector<std::vector<Example>> shards(num_clients);
  for (size_t i = 0; i < data.size(); ++i) {
    shards[i % num_clients].push_back(data[i]);
  }
  std::vector<double> losses;
  losses.reserve(rounds);
  for (size_t round = 0; round < rounds; ++round) {
    std::vector<double> aggregated(dim, 0.0);
    for (const std::vector<Example>& shard : shards) {
      if (shard.empty()) continue;
      std::vector<double> gradient = model->Gradient(shard);
      // Keep only the local top-k coordinates by magnitude.
      std::vector<size_t> order(dim);
      for (size_t i = 0; i < dim; ++i) order[i] = i;
      std::partial_sort(order.begin(),
                        order.begin() + std::min(top_k, dim), order.end(),
                        [&](size_t a, size_t b) {
                          return std::abs(gradient[a]) >
                                 std::abs(gradient[b]);
                        });
      for (size_t i = 0; i < std::min(top_k, dim); ++i) {
        aggregated[order[i]] += gradient[order[i]];
      }
    }
    for (double& g : aggregated) g /= static_cast<double>(num_clients);
    model->ApplyUpdate(aggregated, learning_rate);
    losses.push_back(model->Loss(data));
  }
  return losses;
}

}  // namespace gems
