#ifndef GEMS_ML_FETCHSGD_H_
#define GEMS_ML_FETCHSGD_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "hash/polynomial.h"
#include "ml/linear_model.h"

/// \file
/// FetchSGD (Rothchild et al., ICML 2020): communication-efficient
/// federated learning by count-sketching gradients — the paper's example
/// of sketches "reducing the communication cost of distributed machine
/// learning". Clients send a fixed-size Count Sketch of their local
/// gradient instead of the d-dimensional vector; sketches are linear, so
/// the server just sums them. Momentum and error accumulation both happen
/// *inside sketch space*; each round the server extracts the top-k heavy
/// coordinates, applies them to the model, and subtracts them back from
/// the error sketch (error feedback).

namespace gems {

/// A real-valued Count Sketch for gradient vectors.
class GradientSketch {
 public:
  GradientSketch(uint32_t width, uint32_t depth, uint64_t seed);

  GradientSketch(const GradientSketch&) = default;
  GradientSketch& operator=(const GradientSketch&) = default;
  GradientSketch(GradientSketch&&) = default;
  GradientSketch& operator=(GradientSketch&&) = default;

  /// Accumulates a dense gradient into the sketch.
  void Accumulate(const std::vector<double>& gradient);

  /// Adds a single coordinate value.
  void Add(uint64_t coordinate, double value);

  /// Median-of-rows estimate of one coordinate.
  double Estimate(uint64_t coordinate) const;

  /// The k coordinates (from universe [0, dim)) with largest |estimate|.
  std::vector<std::pair<uint64_t, double>> TopK(size_t k, size_t dim) const;

  /// Linear-space operations (sketches of sums = sums of sketches).
  Status AddSketch(const GradientSketch& other);
  void Scale(double factor);
  void Reset();

  uint32_t width() const { return width_; }
  uint32_t depth() const { return depth_; }
  size_t MemoryBytes() const { return cells_.size() * sizeof(double); }

 private:
  uint32_t width_;
  uint32_t depth_;
  uint64_t seed_;
  std::vector<KWiseHash> bucket_hashes_;
  std::vector<KWiseHash> sign_hashes_;
  std::vector<double> cells_;
};

/// Server + simulated clients for one FetchSGD training run.
class FetchSgdTrainer {
 public:
  struct Options {
    size_t num_clients = 50;
    size_t rounds = 100;
    double learning_rate = 0.5;
    double momentum = 0.9;
    uint32_t sketch_width = 512;   // Compression = dim / (width * depth).
    uint32_t sketch_depth = 5;
    size_t top_k = 32;             // Coordinates applied per round.
  };

  FetchSgdTrainer(const Options& options, uint64_t seed);

  /// Runs FetchSGD on `data` (sharded across simulated clients) and
  /// returns the global-loss trajectory, one entry per round.
  std::vector<double> Train(LogisticModel* model,
                            const std::vector<Example>& data);

  /// Bytes uploaded per client per round (sketch cells * 8).
  size_t UploadBytesPerClient() const;

  const Options& options() const { return options_; }

 private:
  Options options_;
  uint64_t seed_;
};

/// Baseline: clients send only their local top-k coordinates (same upload
/// budget, no sketching, no error feedback). Returns loss per round.
std::vector<double> TrainLocalTopK(LogisticModel* model,
                                   const std::vector<Example>& data,
                                   size_t num_clients, size_t rounds,
                                   double learning_rate, size_t top_k);

}  // namespace gems

#endif  // GEMS_ML_FETCHSGD_H_
