#ifndef GEMS_SERVER_KEYSPACE_H_
#define GEMS_SERVER_KEYSPACE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <shared_mutex>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/io.h"
#include "core/registry.h"
#include "distributed/concurrent/concurrent_any.h"
#include "server/protocol.h"

/// \file
/// The gemsd data plane: a sharded map of key -> live concurrent sketch.
///
/// Shards are fixed at construction; a key's shard is the XXH64 of its
/// bytes, so placement is stable across restarts. Each shard holds an
/// ordered map under its own reader-writer lock. The lock protects only
/// the *map* — membership and node lifetime — never sketch contents:
/// UPDATE/MERGE/QUERY take the shard lock shared, so requests for
/// different keys (and queries against the same key) proceed in parallel
/// across server threads, and the per-sketch concurrency contract is
/// ConcurrentAnySketch's own (wait-free published reads, folded writes).
/// Only CREATE/DROP/RESTORE take a shard lock exclusive.
///
/// Ack-visibility: Update() routes through ApplyBatch, which folds into
/// the sketch's global state and publishes before returning — once the
/// server acks an UPDATE, every subsequent QUERY on any connection sees
/// those items. Queries never take the fold lock (epoch-published reads),
/// so a hot writer cannot stall readers.

namespace gems {
namespace server {

struct KeyspaceOptions {
  /// Shard count; rounded up to a power of two. More shards = less map
  /// lock contention, more fixed overhead.
  size_t num_shards = 64;
  /// Refuse CREATE beyond this many live keys (kResourceExhausted);
  /// 0 = unlimited.
  size_t max_keys = 0;
  /// Per-key sketch wrapper tuning. The defaults here differ from
  /// ConcurrentAnySketch's: a daemon fronting millions of keys wants the
  /// per-key fixed cost (writer slots) small, and its ingest goes through
  /// ApplyBatch rather than the slot machinery anyway.
  ConcurrentAnySketch::Options sketch_options{
      .buffer_items = 128,
      .max_threads = 4,
  };
};

/// Sharded key -> ConcurrentAnySketch map; every public method is
/// thread-safe. Construction requires RegisterBuiltinSketches() to have
/// run (sketch types are resolved by registry name).
class Keyspace {
 public:
  explicit Keyspace(KeyspaceOptions options = KeyspaceOptions{});

  Keyspace(const Keyspace&) = delete;
  Keyspace& operator=(const Keyspace&) = delete;

  /// Creates `key` holding a sketch of the named registered type. An
  /// all-default `params` builds the type's default prototype; any nonzero
  /// window/decay field routes through the registry's timed factory
  /// (kNotFound when the type has none, kInvalidArgument for parameters
  /// the family rejects). kAlreadyExists if the key is live,
  /// kResourceExhausted at the max_keys cap.
  Status Create(const std::string& key, const std::string& sketch_type,
                const TimedSketchParams& params = {});

  /// Removes `key`. kNotFound if absent.
  Status Drop(const std::string& key);

  /// Batched ingest into `key`; ack-visible on return. kNotFound if
  /// absent. A non-empty `timestamps` column (paralleling `items`) routes
  /// through the timed ingest path; untimed sketch families ignore it.
  Status Update(const std::string& key, std::span<const uint64_t> items,
                std::span<const uint64_t> timestamps = {});

  /// Fans a serialized sketch envelope into `key`'s live state, zero-copy
  /// for families with a view merge. `trusted` selects WrapTrusted
  /// (structural validation only, checksum skipped) for same-failure-
  /// domain peers; untrusted bytes get the full check. Type and parameter
  /// mismatches surface as the sketch's own typed status.
  Status Merge(const std::string& key, ByteSpan envelope, bool trusted);

  /// Wait-free read of `key`'s published state: the whole-sketch estimate
  /// (or the per-item estimate when `has_item`), the one-line summary,
  /// and the publication epoch. `has_estimate` is false for families with
  /// no numeric estimate of the requested shape — the summary line is
  /// still returned.
  Result<QueryResult> Query(const std::string& key, bool has_item,
                            uint64_t item, double confidence) const;

  struct ListResult {
    /// Keys matching the prefix, before the limit cut.
    uint64_t total = 0;
    std::vector<ListEntry> entries;
  };

  /// Keys with the given prefix, sorted, capped at `limit` (0 = 64).
  ListResult List(const std::string& prefix, uint32_t limit) const;

  /// Serializes every key's quiesced snapshot into `sink` as one
  /// checkpoint image: u8 format version, u32 entry count, then per entry
  /// a varint-prefixed key and a u32-length-prefixed wire envelope
  /// (exactly the bytes AnySketch::SerializeTo writes, so the image is
  /// mergeable by any envelope consumer).
  Status Checkpoint(ByteSink& sink) const;

  /// Replaces the entire keyspace with a checkpoint image. All-or-
  /// nothing: the image is fully parsed and every sketch rebuilt before
  /// any live state is touched; on any error the keyspace is unchanged.
  Status Restore(ByteSpan image);

  /// Live key count.
  size_t size() const;

 private:
  struct Shard {
    mutable std::shared_mutex mutex;
    std::map<std::string, ConcurrentAnySketch> keys;
  };

  const Shard& ShardFor(const std::string& key) const;
  Shard& ShardFor(const std::string& key);

  KeyspaceOptions options_;
  std::vector<std::unique_ptr<Shard>> shards_;
  uint64_t shard_mask_ = 0;
};

}  // namespace server
}  // namespace gems

#endif  // GEMS_SERVER_KEYSPACE_H_
