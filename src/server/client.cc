#include "server/client.h"

#include <arpa/inet.h>
#include <errno.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <utility>

namespace gems {
namespace server {

namespace {

Status Transport(const char* what) {
  return Status::Unavailable(std::string(what) + ": " +
                             std::strerror(errno));
}

}  // namespace

Result<GemsdClient> GemsdClient::Connect(const std::string& host,
                                         uint16_t port) {
  GemsdClient client;
  client.fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (client.fd_ < 0) return Transport("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("unparseable gemsd address '" + host +
                                   "'");
  }
  if (::connect(client.fd_, reinterpret_cast<sockaddr*>(&addr),
                sizeof(addr)) < 0) {
    return Transport("connect");
  }
  const int one = 1;
  ::setsockopt(client.fd_, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return client;
}

GemsdClient::GemsdClient(GemsdClient&& other) noexcept
    : fd_(std::exchange(other.fd_, -1)),
      next_id_(other.next_id_),
      send_buffer_(std::move(other.send_buffer_)) {}

GemsdClient& GemsdClient::operator=(GemsdClient&& other) noexcept {
  if (this != &other) {
    CloseFd();
    fd_ = std::exchange(other.fd_, -1);
    next_id_ = other.next_id_;
    send_buffer_ = std::move(other.send_buffer_);
  }
  return *this;
}

GemsdClient::~GemsdClient() { CloseFd(); }

void GemsdClient::CloseFd() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Status GemsdClient::SendAll(const uint8_t* data, size_t size) {
  size_t sent = 0;
  while (sent < size) {
    const ssize_t n =
        ::send(fd_, data + sent, size - sent, MSG_NOSIGNAL);
    if (n > 0) {
      sent += static_cast<size_t>(n);
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    CloseFd();
    return Transport("send");
  }
  return Status::Ok();
}

Status GemsdClient::RecvFrame(std::vector<uint8_t>* frame, ByteSpan* body) {
  frame->clear();
  size_t need = 4;  // Length prefix first, then the body.
  for (;;) {
    const size_t have = frame->size();
    if (have >= need) break;
    frame->resize(need);
    const ssize_t n = ::recv(fd_, frame->data() + have, need - have, 0);
    if (n > 0) {
      frame->resize(have + static_cast<size_t>(n));
      if (frame->size() == 4 && need == 4) {
        const uint32_t length = static_cast<uint32_t>((*frame)[0]) |
                                static_cast<uint32_t>((*frame)[1]) << 8 |
                                static_cast<uint32_t>((*frame)[2]) << 16 |
                                static_cast<uint32_t>((*frame)[3]) << 24;
        if (length == 0 || length > kDefaultMaxFrameBytes) {
          CloseFd();
          return Status::Corruption("invalid gemsd frame length from peer");
        }
        need = 4 + length;
      }
      continue;
    }
    if (n < 0 && errno == EINTR) continue;
    CloseFd();
    if (n == 0) {
      return Status::Unavailable("gemsd connection closed by peer");
    }
    return Transport("recv");
  }
  *body = ByteSpan(frame->data() + 4, frame->size() - 4);
  return Status::Ok();
}

Status GemsdClient::RoundTrip(Request& request, Response* response,
                              std::vector<uint8_t>* frame) {
  if (fd_ < 0) return Status::Unavailable("gemsd client not connected");
  request.version = kProtocolVersion;
  request.id = next_id_++;
  send_buffer_.clear();
  EncodeRequest(request, &send_buffer_);
  if (Status s = SendAll(send_buffer_.data(), send_buffer_.size()); !s.ok()) {
    return s;
  }
  ByteSpan body;
  if (Status s = RecvFrame(frame, &body); !s.ok()) return s;
  if (Status s = DecodeResponse(body, response); !s.ok()) {
    CloseFd();
    return s;
  }
  if (response->id != request.id) {
    CloseFd();
    return Status::Corruption("gemsd response id mismatch");
  }
  return Status::FromCode(response->code, response->message);
}

Status GemsdClient::Pipeline(std::span<Request> requests,
                             std::vector<Status>* statuses) {
  statuses->clear();
  if (requests.empty()) return Status::Ok();
  if (fd_ < 0) return Status::Unavailable("gemsd client not connected");
  // Phase 1: one contiguous send of every frame in the window. The ids are
  // consecutive, so the in-order drain below can pair responses without a
  // map.
  send_buffer_.clear();
  for (Request& request : requests) {
    request.version = kProtocolVersion;
    request.id = next_id_++;
    EncodeRequest(request, &send_buffer_);
  }
  if (Status s = SendAll(send_buffer_.data(), send_buffer_.size()); !s.ok()) {
    return s;
  }
  // Phase 2: drain exactly one response per request, in id order (the
  // daemon serves one connection serially, so responses cannot reorder).
  statuses->reserve(requests.size());
  std::vector<uint8_t> frame;
  for (const Request& request : requests) {
    ByteSpan body;
    if (Status s = RecvFrame(&frame, &body); !s.ok()) return s;
    Response response;
    if (Status s = DecodeResponse(body, &response); !s.ok()) {
      CloseFd();
      return s;
    }
    if (response.id != request.id) {
      CloseFd();
      return Status::Corruption("gemsd response id mismatch");
    }
    statuses->push_back(Status::FromCode(response.code, response.message));
  }
  return Status::Ok();
}

Status GemsdClient::Ping() {
  Request request;
  request.opcode = Opcode::kPing;
  Response response;
  std::vector<uint8_t> frame;
  return RoundTrip(request, &response, &frame);
}

Status GemsdClient::Create(const std::string& key,
                           const std::string& sketch_type) {
  Request request;
  request.opcode = Opcode::kCreate;
  request.key = key;
  request.sketch_type = sketch_type;
  Response response;
  std::vector<uint8_t> frame;
  return RoundTrip(request, &response, &frame);
}

Status GemsdClient::CreateTimed(const std::string& key,
                                const std::string& sketch_type,
                                uint64_t pane_width, uint32_t num_panes,
                                double half_life) {
  Request request;
  request.opcode = Opcode::kCreate;
  request.key = key;
  request.sketch_type = sketch_type;
  request.has_timed_params = true;
  request.pane_width = pane_width;
  request.num_panes = num_panes;
  request.half_life = half_life;
  Response response;
  std::vector<uint8_t> frame;
  return RoundTrip(request, &response, &frame);
}

Status GemsdClient::Drop(const std::string& key) {
  Request request;
  request.opcode = Opcode::kDrop;
  request.key = key;
  Response response;
  std::vector<uint8_t> frame;
  return RoundTrip(request, &response, &frame);
}

Result<GemsdClient::ListResult> GemsdClient::List(const std::string& prefix,
                                                  uint32_t limit) {
  Request request;
  request.opcode = Opcode::kList;
  request.prefix = prefix;
  request.limit = limit;
  Response response;
  std::vector<uint8_t> frame;
  if (Status s = RoundTrip(request, &response, &frame); !s.ok()) return s;
  ListResult result;
  result.total = response.total_keys;
  result.entries = std::move(response.entries);
  return result;
}

Status GemsdClient::Update(const std::string& key,
                           std::span<const uint64_t> items) {
  Request request;
  request.opcode = Opcode::kUpdate;
  request.key = key;
  request.items = items;
  Response response;
  std::vector<uint8_t> frame;
  return RoundTrip(request, &response, &frame);
}

Status GemsdClient::UpdateTimed(const std::string& key,
                                std::span<const uint64_t> items,
                                std::span<const uint64_t> timestamps) {
  if (timestamps.size() != items.size()) {
    return Status::InvalidArgument(
        "timestamp column must parallel the item column");
  }
  Request request;
  request.opcode = Opcode::kUpdate;
  request.key = key;
  request.items = items;
  request.timestamps = timestamps;
  Response response;
  std::vector<uint8_t> frame;
  return RoundTrip(request, &response, &frame);
}

Status GemsdClient::Merge(const std::string& key, ByteSpan envelope,
                          bool trusted) {
  Request request;
  request.opcode = Opcode::kMerge;
  request.key = key;
  request.blob = envelope;
  if (trusted) request.flags |= kFlagTrustedMerge;
  Response response;
  std::vector<uint8_t> frame;
  return RoundTrip(request, &response, &frame);
}

Result<QueryResult> GemsdClient::Query(const std::string& key,
                                       double confidence) {
  Request request;
  request.opcode = Opcode::kQuery;
  request.key = key;
  request.confidence = confidence;
  Response response;
  std::vector<uint8_t> frame;
  if (Status s = RoundTrip(request, &response, &frame); !s.ok()) return s;
  return std::move(response.query);
}

Result<QueryResult> GemsdClient::QueryItem(const std::string& key,
                                           uint64_t item,
                                           double confidence) {
  Request request;
  request.opcode = Opcode::kQuery;
  request.key = key;
  request.has_item = true;
  request.item = item;
  request.confidence = confidence;
  Response response;
  std::vector<uint8_t> frame;
  if (Status s = RoundTrip(request, &response, &frame); !s.ok()) return s;
  return std::move(response.query);
}

Result<std::vector<uint8_t>> GemsdClient::Checkpoint() {
  Request request;
  request.opcode = Opcode::kCheckpoint;
  Response response;
  std::vector<uint8_t> frame;
  if (Status s = RoundTrip(request, &response, &frame); !s.ok()) return s;
  return std::vector<uint8_t>(response.blob.begin(), response.blob.end());
}

Status GemsdClient::Restore(ByteSpan image) {
  Request request;
  request.opcode = Opcode::kRestore;
  request.blob = image;
  Response response;
  std::vector<uint8_t> frame;
  return RoundTrip(request, &response, &frame);
}

}  // namespace server
}  // namespace gems
