#ifndef GEMS_SERVER_PROTOCOL_H_
#define GEMS_SERVER_PROTOCOL_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "core/estimate.h"
#include "core/io.h"

/// \file
/// The gemsd wire protocol, shared by the server and the client library.
///
/// A connection is a stream of length-prefixed *frames*:
///
///   offset  size  field
///   0       4     body length in bytes (little-endian u32, >= 1)
///   4       ...   body
///
/// A request body is:
///
///   u8   protocol version (kProtocolVersion)
///   u8   opcode (Opcode)
///   u8   flags (kFlagTrustedMerge is the only defined bit)
///   u64  request id, echoed verbatim in the response
///   ...  opcode-specific payload (encodings below)
///
/// A response body is:
///
///   u8   protocol version
///   u8   opcode (echo of the request's)
///   u8   flags (reserved, zero)
///   u64  request id (echo)
///   u8   status code (StatusCode, transported verbatim — the unified
///        error surface: a client sees exactly the typed code the
///        keyspace produced, reassembled via StatusCodeFromWire)
///   str  status message (empty on success)
///   ...  opcode-specific payload, present only when the code is kOk
///
/// Strings are varint-length-prefixed (ByteSink::PutString). Sketch
/// envelopes ride as varint-length-prefixed blobs and are *borrowed* by
/// the decoded structs (ByteSpan into the frame body) so a MERGE fans the
/// peer's envelope into the live sketch zero-copy via SketchRegistry::Wrap.
/// UPDATE items are a u32 count followed by raw little-endian u64s — the
/// densest shape for the batched ingest fast path.
///
/// Every decoder is fed untrusted bytes and must reject truncation,
/// trailing garbage, unknown versions, and oversized frames with a typed
/// Status — never a crash or out-of-bounds read (fuzzed by
/// fuzz/fuzz_protocol.cc).

namespace gems {
namespace server {

inline constexpr uint8_t kProtocolVersion = 1;

/// Frame body cap. Large enough for a checkpoint of a big keyspace blob
/// in one frame; small enough that a hostile length prefix cannot make a
/// connection buffer unbounded.
inline constexpr uint32_t kDefaultMaxFrameBytes = 64u << 20;

/// Request flag bits.
inline constexpr uint8_t kFlagTrustedMerge = 0x01;

/// Operation codes. Values are part of the wire protocol; append only.
enum class Opcode : uint8_t {
  kPing = 1,
  kCreate = 2,
  kDrop = 3,
  kList = 4,
  kUpdate = 5,
  kMerge = 6,
  kQuery = 7,
  kCheckpoint = 8,
  kRestore = 9,
};

/// True if `raw` is an opcode this build knows.
bool IsKnownOpcode(uint8_t raw);

/// Stable lowercase name ("update", "query", ...); "unknown" otherwise.
const char* OpcodeName(Opcode op);

/// A decoded request. String members are copied out of the frame;
/// `items` and `blob` borrow (items via the caller's scratch vector,
/// blob straight from the frame body) and are valid only as long as
/// their backing storage.
struct Request {
  uint8_t version = kProtocolVersion;
  Opcode opcode = Opcode::kPing;
  uint8_t flags = 0;
  uint64_t id = 0;

  /// kCreate/kDrop/kUpdate/kMerge/kQuery: the target key.
  std::string key;
  /// kCreate: registered sketch type name ("hyperloglog", ...).
  std::string sketch_type;
  /// kList: key prefix filter and result cap (0 = server default).
  std::string prefix;
  uint32_t limit = 0;
  /// kCreate: optional window/decay parameters for the time family
  /// (encoded only when has_timed_params is set; zero-valued fields fall
  /// back to library defaults).
  bool has_timed_params = false;
  uint64_t pane_width = 0;
  uint32_t num_panes = 0;
  double half_life = 0.0;
  /// kUpdate: the batch of 64-bit items.
  std::span<const uint64_t> items;
  /// kUpdate: optional timestamp column paralleling `items` (empty when
  /// the update is untimed).
  std::span<const uint64_t> timestamps;
  /// kMerge: a serialized sketch envelope. kRestore: a checkpoint image.
  ByteSpan blob;
  /// kQuery: when has_item is set, a per-item (frequency) probe.
  bool has_item = false;
  uint64_t item = 0;
  double confidence = 0.95;
};

/// One kList result row.
struct ListEntry {
  std::string key;
  std::string type;
};

/// kQuery result payload.
struct QueryResult {
  bool has_estimate = false;
  Estimate estimate;
  std::string summary;
  uint64_t epoch = 0;
};

/// A decoded response. `blob` borrows the frame body.
struct Response {
  uint8_t version = kProtocolVersion;
  Opcode opcode = Opcode::kPing;
  uint64_t id = 0;
  StatusCode code = StatusCode::kOk;
  std::string message;

  QueryResult query;               // kQuery
  uint64_t total_keys = 0;         // kList: matches before the limit cut.
  std::vector<ListEntry> entries;  // kList
  ByteSpan blob;                   // kCheckpoint: the checkpoint image.
};

/// Scans `input` for one complete frame. On success with a full frame,
/// `*body` borrows the frame body and `*consumed` is the total bytes to
/// drop from the stream (header + body). An incomplete frame is not an
/// error: ok with `*consumed == 0`. A length prefix of zero or beyond
/// `max_frame_bytes` is a fatal protocol violation (kInvalidArgument) —
/// the connection cannot be resynchronized and must be closed.
Status SplitFrame(ByteSpan input, uint32_t max_frame_bytes, ByteSpan* body,
                  size_t* consumed);

/// Appends one framed request to `out` (length prefix included).
void EncodeRequest(const Request& request, std::vector<uint8_t>* out);

/// Decodes a request body (the frame body, prefix already stripped).
/// UPDATE items are unpacked into `*items_scratch` (cleared first) and
/// `out->items` points into it; a timestamp column, when present, is
/// unpacked into `*timestamps_scratch` the same way; `out->blob` borrows
/// `body`. Unknown opcodes decode the header then return kUnimplemented
/// with `out->id` filled, so the server can still answer with a typed
/// error frame; every other failure is kCorruption/kInvalidArgument and
/// the caller should drop the connection.
Status DecodeRequest(ByteSpan body, Request* out,
                     std::vector<uint64_t>* items_scratch,
                     std::vector<uint64_t>* timestamps_scratch);

/// Appends one framed response to `out` (length prefix included).
void EncodeResponse(const Response& response, std::vector<uint8_t>* out);

/// Decodes a response body. `out->blob` borrows `body`.
Status DecodeResponse(ByteSpan body, Response* out);

}  // namespace server
}  // namespace gems

#endif  // GEMS_SERVER_PROTOCOL_H_
