#include "server/keyspace.h"

#include <algorithm>
#include <bit>
#include <mutex>
#include <utility>

#include "core/registry.h"
#include "hash/hash.h"

namespace gems {
namespace server {

namespace {

constexpr uint8_t kCheckpointVersion = 1;
constexpr uint64_t kShardSeed = 0x6765'6D73'6421ULL;  // "gemsd!"
constexpr uint32_t kDefaultListLimit = 64;

/// Builds a live wrapper whose global state is `state`. The wrapper is
/// created from a *default* prototype of the same type and the state is
/// folded in via Reset: seeding the prototype with the state itself
/// would copy it into every writer-slot delta and double-count on fold.
Result<ConcurrentAnySketch> ReviveSketch(
    AnySketch state, const ConcurrentAnySketch::Options& options) {
  const SketchRegistry::Entry* entry =
      SketchRegistry::Global().Find(state.type());
  if (entry == nullptr || !entry->make_default) {
    return Status::Corruption(
        std::string("checkpoint holds sketch type ") + state.type_name() +
        " with no registered default factory");
  }
  Result<ConcurrentAnySketch> live =
      ConcurrentAnySketch::Make(entry->make_default(), options);
  if (!live.ok()) return live.status();
  if (Status s = live.value().Reset(std::move(state)); !s.ok()) return s;
  return live;
}

}  // namespace

Keyspace::Keyspace(KeyspaceOptions options) : options_(options) {
  size_t shards = std::bit_ceil(std::max<size_t>(options_.num_shards, 1));
  shards_.reserve(shards);
  for (size_t i = 0; i < shards; ++i) {
    shards_.push_back(std::make_unique<Shard>());
  }
  shard_mask_ = shards - 1;
}

const Keyspace::Shard& Keyspace::ShardFor(const std::string& key) const {
  return *shards_[Hash64(key.data(), key.size(), kShardSeed) & shard_mask_];
}

Keyspace::Shard& Keyspace::ShardFor(const std::string& key) {
  return *shards_[Hash64(key.data(), key.size(), kShardSeed) & shard_mask_];
}

Status Keyspace::Create(const std::string& key,
                        const std::string& sketch_type,
                        const TimedSketchParams& params) {
  if (key.empty()) {
    return Status::InvalidArgument("key must be non-empty");
  }
  const bool timed = params.pane_width != 0 || params.num_panes != 0 ||
                     params.half_life != 0.0;
  Result<ConcurrentAnySketch> sketch =
      timed ? ConcurrentAnySketch::MakeTimedByName(sketch_type, params,
                                                   options_.sketch_options)
            : ConcurrentAnySketch::MakeByName(sketch_type,
                                              options_.sketch_options);
  if (!sketch.ok()) return sketch.status();
  if (options_.max_keys != 0 && size() >= options_.max_keys) {
    return Status::ResourceExhausted(
        "keyspace at its cap of " + std::to_string(options_.max_keys) +
        " keys");
  }
  Shard& shard = ShardFor(key);
  std::unique_lock<std::shared_mutex> lock(shard.mutex);
  auto [it, inserted] = shard.keys.emplace(key, std::move(sketch).value());
  (void)it;
  if (!inserted) {
    return Status::AlreadyExists("key '" + key + "' already exists");
  }
  return Status::Ok();
}

Status Keyspace::Drop(const std::string& key) {
  Shard& shard = ShardFor(key);
  std::unique_lock<std::shared_mutex> lock(shard.mutex);
  if (shard.keys.erase(key) == 0) {
    return Status::NotFound("no key '" + key + "'");
  }
  return Status::Ok();
}

Status Keyspace::Update(const std::string& key,
                        std::span<const uint64_t> items,
                        std::span<const uint64_t> timestamps) {
  Shard& shard = ShardFor(key);
  std::shared_lock<std::shared_mutex> lock(shard.mutex);
  auto it = shard.keys.find(key);
  if (it == shard.keys.end()) {
    return Status::NotFound("no key '" + key + "'");
  }
  if (!timestamps.empty()) {
    return it->second.ApplyBatchTimed(timestamps, items);
  }
  return it->second.ApplyBatch(items);
}

Status Keyspace::Merge(const std::string& key, ByteSpan envelope,
                       bool trusted) {
  Shard& shard = ShardFor(key);
  std::shared_lock<std::shared_mutex> lock(shard.mutex);
  auto it = shard.keys.find(key);
  if (it == shard.keys.end()) {
    return Status::NotFound("no key '" + key + "'");
  }
  const SketchRegistry& registry = SketchRegistry::Global();
  Result<AnySketchView> view = trusted ? registry.WrapTrusted(envelope)
                                       : registry.Wrap(envelope);
  if (!view.ok()) return view.status();
  return it->second.MergeFromView(view.value().sketch_view());
}

Result<QueryResult> Keyspace::Query(const std::string& key, bool has_item,
                                    uint64_t item, double confidence) const {
  const Shard& shard = ShardFor(key);
  std::shared_lock<std::shared_mutex> lock(shard.mutex);
  auto it = shard.keys.find(key);
  if (it == shard.keys.end()) {
    return Status::NotFound("no key '" + key + "'");
  }
  const ConcurrentAnySketch& sketch = it->second;
  QueryResult result;
  Result<gems::Estimate> estimate =
      has_item ? sketch.EstimateItemWithBounds(item, confidence)
               : sketch.EstimateWithBounds(confidence);
  if (estimate.ok()) {
    result.has_estimate = true;
    result.estimate = estimate.value();
  } else if (estimate.status().code() != StatusCode::kUnimplemented) {
    return estimate.status();
  }
  result.summary = sketch.EstimateSummary();
  result.epoch = sketch.epoch();
  return result;
}

Keyspace::ListResult Keyspace::List(const std::string& prefix,
                                    uint32_t limit) const {
  if (limit == 0) limit = kDefaultListLimit;
  ListResult result;
  std::vector<ListEntry> matches;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    // Ordered maps make the prefix range a lower_bound walk per shard.
    for (auto it = shard->keys.lower_bound(prefix);
         it != shard->keys.end() && it->first.starts_with(prefix); ++it) {
      matches.push_back(
          {it->first, SketchTypeName(it->second.type())});
    }
  }
  result.total = matches.size();
  std::sort(matches.begin(), matches.end(),
            [](const ListEntry& a, const ListEntry& b) {
              return a.key < b.key;
            });
  if (matches.size() > limit) matches.resize(limit);
  result.entries = std::move(matches);
  return result;
}

Status Keyspace::Checkpoint(ByteSink& sink) const {
  sink.PutU8(kCheckpointVersion);
  const size_t count_at = sink.size();
  sink.PutU32(0);  // Entry count, patched below.
  uint32_t count = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    for (const auto& [key, sketch] : shard->keys) {
      Result<AnySketch> snapshot = sketch.Snapshot();
      if (!snapshot.ok()) return snapshot.status();
      sink.PutString(key);
      const size_t length_at = sink.size();
      sink.PutU32(0);  // Envelope length, patched below.
      snapshot.value().SerializeTo(sink);
      sink.PatchU32(length_at,
                    static_cast<uint32_t>(sink.size() - length_at - 4));
      ++count;
    }
  }
  sink.PatchU32(count_at, count);
  return Status::Ok();
}

Status Keyspace::Restore(ByteSpan image) {
  ByteReader reader(image);
  uint8_t version = 0;
  if (Status s = reader.GetU8(&version); !s.ok()) return s;
  if (version != kCheckpointVersion) {
    return Status::Corruption("unsupported checkpoint version " +
                              std::to_string(int{version}));
  }
  uint32_t count = 0;
  if (Status s = reader.GetU32(&count); !s.ok()) return s;

  // Parse and rebuild everything before touching live state, so a corrupt
  // image cannot leave the keyspace half-replaced.
  const SketchRegistry& registry = SketchRegistry::Global();
  std::vector<std::pair<std::string, ConcurrentAnySketch>> revived;
  revived.reserve(count);
  for (uint32_t i = 0; i < count; ++i) {
    std::string key;
    if (Status s = reader.GetString(&key); !s.ok()) return s;
    uint32_t length = 0;
    if (Status s = reader.GetU32(&length); !s.ok()) return s;
    ByteSpan envelope;
    if (Status s = reader.GetRawView(length, &envelope); !s.ok()) return s;
    Result<AnySketch> state = registry.Deserialize(envelope);
    if (!state.ok()) return state.status();
    Result<ConcurrentAnySketch> live =
        ReviveSketch(std::move(state).value(), options_.sketch_options);
    if (!live.ok()) return live.status();
    revived.emplace_back(std::move(key), std::move(live).value());
  }
  if (!reader.AtEnd()) {
    return Status::Corruption("trailing bytes after checkpoint image");
  }
  if (options_.max_keys != 0 && revived.size() > options_.max_keys) {
    return Status::ResourceExhausted(
        "checkpoint holds more keys than this keyspace's cap");
  }

  // Swap in: exclusive lock shard by shard. Duplicate keys in the image
  // collapse last-writer-wins, matching a map rebuild.
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::unique_lock<std::shared_mutex> lock(shard->mutex);
    shard->keys.clear();
  }
  for (auto& [key, sketch] : revived) {
    Shard& shard = ShardFor(key);
    std::unique_lock<std::shared_mutex> lock(shard.mutex);
    shard.keys.insert_or_assign(std::move(key), std::move(sketch));
  }
  return Status::Ok();
}

size_t Keyspace::size() const {
  size_t total = 0;
  for (const std::unique_ptr<Shard>& shard : shards_) {
    std::shared_lock<std::shared_mutex> lock(shard->mutex);
    total += shard->keys.size();
  }
  return total;
}

}  // namespace server
}  // namespace gems
