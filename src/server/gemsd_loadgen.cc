// gemsd_loadgen: closed-loop load generator for a running gemsd.
//
//   gemsd_loadgen [--host=127.0.0.1] [--port=7171] [--connections=8]
//                 [--keys=10000] [--ops=100000] [--batch=64]
//                 [--update-pct=90] [--type=hllpp] [--pipeline=1]
//
// Pre-creates `keys` sketches named k000000.., then runs `connections`
// client threads, each issuing `ops` requests: an UPDATE of `batch`
// zipf-keyed items with probability update-pct, a QUERY otherwise.
// --pipeline=N > 1 ships requests in pipelined windows of N over each
// connection (one send, N responses), amortizing the RTT; per-request
// latency is then reported as window-time / N.
// Prints aggregate requests/s and client-observed latency percentiles.

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "common/random.h"
#include "server/client.h"

namespace {

using gems::server::GemsdClient;

uint64_t FlagU64(const char* arg, const char* name, uint64_t fallback) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return fallback;
  return std::strtoull(arg + len, nullptr, 10);
}

std::string KeyName(uint64_t i) {
  char buf[16];
  std::snprintf(buf, sizeof(buf), "k%08llu",
                static_cast<unsigned long long>(i));
  return buf;
}

double Percentile(std::vector<double>& sorted_us, double p) {
  if (sorted_us.empty()) return 0.0;
  const size_t at = std::min(
      sorted_us.size() - 1,
      static_cast<size_t>(p * static_cast<double>(sorted_us.size())));
  return sorted_us[at];
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 7171;
  size_t connections = 8;
  uint64_t num_keys = 10000;
  uint64_t ops_per_conn = 100000;
  size_t batch = 64;
  uint64_t update_pct = 90;
  size_t pipeline = 1;
  std::string sketch_type = "hllpp";

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--host=", 7) == 0) {
      host = arg + 7;
    } else if (std::strncmp(arg, "--type=", 7) == 0) {
      sketch_type = arg + 7;
    } else {
      port = static_cast<uint16_t>(FlagU64(arg, "--port=", port));
      connections = FlagU64(arg, "--connections=", connections);
      num_keys = FlagU64(arg, "--keys=", num_keys);
      ops_per_conn = FlagU64(arg, "--ops=", ops_per_conn);
      batch = FlagU64(arg, "--batch=", batch);
      update_pct = FlagU64(arg, "--update-pct=", update_pct);
      pipeline = FlagU64(arg, "--pipeline=", pipeline);
    }
  }
  if (pipeline == 0) pipeline = 1;

  // Create the key population over one connection; tolerate rerunning
  // against a warm daemon (kAlreadyExists is fine).
  {
    gems::Result<GemsdClient> setup = GemsdClient::Connect(host, port);
    if (!setup.ok()) {
      std::fprintf(stderr, "loadgen: %s\n",
                   setup.status().ToString().c_str());
      return 1;
    }
    for (uint64_t k = 0; k < num_keys; ++k) {
      gems::Status s = setup.value().Create(KeyName(k), sketch_type);
      if (!s.ok() && s.code() != gems::StatusCode::kAlreadyExists) {
        std::fprintf(stderr, "loadgen: create %s: %s\n",
                     KeyName(k).c_str(), s.ToString().c_str());
        return 1;
      }
    }
  }

  std::vector<std::vector<double>> latencies_us(connections);
  std::vector<std::thread> workers;
  const auto wall_start = std::chrono::steady_clock::now();
  for (size_t c = 0; c < connections; ++c) {
    workers.emplace_back([&, c] {
      gems::Result<GemsdClient> client = GemsdClient::Connect(host, port);
      if (!client.ok()) return;
      gems::SplitMix64 rng(0x10ADull + c);
      std::vector<double>& lat = latencies_us[c];
      lat.reserve(ops_per_conn);
      // Zipf-ish skew: square a uniform draw so low key ids dominate.
      const auto draw_key = [&] {
        const double u = static_cast<double>(rng.Next() >> 11) * 0x1p-53;
        const uint64_t key_id =
            static_cast<uint64_t>(u * u * static_cast<double>(num_keys));
        return KeyName(std::min(key_id, num_keys - 1));
      };
      if (pipeline > 1) {
        // Pipelined mode: windows of `pipeline` requests, one send +
        // in-order drain per window. Per-slot item storage must outlive
        // the Pipeline call (requests borrow their item spans).
        std::vector<std::vector<uint64_t>> window_items(
            pipeline, std::vector<uint64_t>(batch));
        std::vector<gems::server::Request> requests;
        std::vector<gems::Status> statuses;
        for (uint64_t op = 0; op < ops_per_conn;) {
          const size_t window =
              std::min<uint64_t>(pipeline, ops_per_conn - op);
          requests.clear();
          requests.resize(window);
          for (size_t w = 0; w < window; ++w) {
            gems::server::Request& request = requests[w];
            request.key = draw_key();
            if (rng.Next() % 100 < update_pct) {
              for (uint64_t& item : window_items[w]) item = rng.Next();
              request.opcode = gems::server::Opcode::kUpdate;
              request.items = window_items[w];
            } else {
              request.opcode = gems::server::Opcode::kQuery;
            }
          }
          const auto t0 = std::chrono::steady_clock::now();
          gems::Status s = client.value().Pipeline(requests, &statuses);
          const auto t1 = std::chrono::steady_clock::now();
          for (const gems::Status& rs : statuses) {
            if (!rs.ok()) s = rs;
          }
          if (!s.ok()) {
            std::fprintf(stderr, "loadgen: %s\n", s.ToString().c_str());
            return;
          }
          const double per_request_us =
              std::chrono::duration<double, std::micro>(t1 - t0).count() /
              static_cast<double>(window);
          for (size_t w = 0; w < window; ++w) lat.push_back(per_request_us);
          op += window;
        }
        return;
      }
      std::vector<uint64_t> items(batch);
      for (uint64_t op = 0; op < ops_per_conn; ++op) {
        const std::string key = draw_key();
        const bool do_update = rng.Next() % 100 < update_pct;
        const auto t0 = std::chrono::steady_clock::now();
        gems::Status s;
        if (do_update) {
          for (uint64_t& item : items) item = rng.Next();
          s = client.value().Update(key, items);
        } else {
          s = client.value().Query(key).status();
        }
        const auto t1 = std::chrono::steady_clock::now();
        if (!s.ok()) {
          std::fprintf(stderr, "loadgen: %s\n", s.ToString().c_str());
          return;
        }
        lat.push_back(
            std::chrono::duration<double, std::micro>(t1 - t0).count());
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  const double wall_s =
      std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                    wall_start)
          .count();

  std::vector<double> all_us;
  for (const std::vector<double>& lat : latencies_us) {
    all_us.insert(all_us.end(), lat.begin(), lat.end());
  }
  std::sort(all_us.begin(), all_us.end());
  std::printf(
      "loadgen: %zu conns x %llu ops (%zu-item batches, %llu%% update, "
      "pipeline %zu) over %s:%u\n",
      connections, static_cast<unsigned long long>(ops_per_conn), batch,
      static_cast<unsigned long long>(update_pct), pipeline, host.c_str(),
      port);
  std::printf("  %.0f requests/s; latency p50 %.1f us, p99 %.1f us, "
              "max %.1f us\n",
              static_cast<double>(all_us.size()) / wall_s,
              Percentile(all_us, 0.50), Percentile(all_us, 0.99),
              all_us.empty() ? 0.0 : all_us.back());
  return 0;
}
