// gemsd: the gems sketch daemon.
//
//   gemsd [--host=127.0.0.1] [--port=7171] [--threads=N] [--shards=N]
//         [--max-keys=N]
//
// Serves the keyed-sketch protocol (see src/server/protocol.h) until
// SIGINT/SIGTERM. Sketch types are the registry's built-ins; keys are
// created over the wire (CREATE), so a fresh daemon starts empty — or
// warm via RESTORE of a checkpoint image.

#include <signal.h>

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/registry.h"
#include "server/server.h"

namespace {

uint64_t FlagU64(const char* arg, const char* name, uint64_t fallback) {
  const size_t len = std::strlen(name);
  if (std::strncmp(arg, name, len) != 0) return fallback;
  return std::strtoull(arg + len, nullptr, 10);
}

}  // namespace

int main(int argc, char** argv) {
  std::string host = "127.0.0.1";
  uint16_t port = 7171;
  gems::server::ServerOptions server_options;
  gems::server::KeyspaceOptions keyspace_options;

  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    if (std::strncmp(arg, "--host=", 7) == 0) {
      host = arg + 7;
    } else {
      port = static_cast<uint16_t>(FlagU64(arg, "--port=", port));
      server_options.num_threads =
          FlagU64(arg, "--threads=", server_options.num_threads);
      keyspace_options.num_shards =
          FlagU64(arg, "--shards=", keyspace_options.num_shards);
      keyspace_options.max_keys =
          FlagU64(arg, "--max-keys=", keyspace_options.max_keys);
    }
  }
  server_options.host = host;
  server_options.port = port;

  gems::RegisterBuiltinSketches();
  gems::server::Keyspace keyspace(keyspace_options);
  gems::server::Server server(&keyspace, server_options);

  // Block the shutdown signals before starting the event loops so every
  // thread inherits the mask and sigwait below is the only consumer.
  sigset_t mask;
  sigemptyset(&mask);
  sigaddset(&mask, SIGINT);
  sigaddset(&mask, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &mask, nullptr);

  if (gems::Status s = server.Start(); !s.ok()) {
    std::fprintf(stderr, "gemsd: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("gemsd listening on %s:%u (%zu threads, %zu shards)\n",
              host.c_str(), server.port(), server_options.num_threads,
              keyspace_options.num_shards);
  std::fflush(stdout);

  int sig = 0;
  sigwait(&mask, &sig);
  std::printf("gemsd: signal %d, shutting down\n", sig);
  server.Stop();
  return 0;
}
