#include "server/protocol.h"

#include <cmath>


namespace gems {
namespace server {

namespace {

constexpr size_t kFramePrefixSize = 4;

/// Shared request/response header tail: everything after the version
/// byte that both directions carry.
Status DecodeCommonHeader(ByteReader& reader, uint8_t* version,
                          uint8_t* opcode_raw, uint8_t* flags, uint64_t* id) {
  if (Status s = reader.GetU8(version); !s.ok()) return s;
  if (Status s = reader.GetU8(opcode_raw); !s.ok()) return s;
  if (Status s = reader.GetU8(flags); !s.ok()) return s;
  if (Status s = reader.GetU64(id); !s.ok()) return s;
  if (*version != kProtocolVersion) {
    return Status::Corruption("unsupported gemsd protocol version " +
                              std::to_string(int{*version}));
  }
  return Status::Ok();
}

Status RejectTrailing(const ByteReader& reader, const char* what) {
  if (!reader.AtEnd()) {
    return Status::Corruption(std::string("trailing bytes after ") + what);
  }
  return Status::Ok();
}

}  // namespace

bool IsKnownOpcode(uint8_t raw) {
  return raw >= static_cast<uint8_t>(Opcode::kPing) &&
         raw <= static_cast<uint8_t>(Opcode::kRestore);
}

const char* OpcodeName(Opcode op) {
  switch (op) {
    case Opcode::kPing: return "ping";
    case Opcode::kCreate: return "create";
    case Opcode::kDrop: return "drop";
    case Opcode::kList: return "list";
    case Opcode::kUpdate: return "update";
    case Opcode::kMerge: return "merge";
    case Opcode::kQuery: return "query";
    case Opcode::kCheckpoint: return "checkpoint";
    case Opcode::kRestore: return "restore";
  }
  return "unknown";
}

Status SplitFrame(ByteSpan input, uint32_t max_frame_bytes, ByteSpan* body,
                  size_t* consumed) {
  *consumed = 0;
  if (input.size() < kFramePrefixSize) return Status::Ok();
  // The prefix is little-endian on the wire; reassemble portably.
  const uint32_t length =
      static_cast<uint32_t>(input[0]) |
           static_cast<uint32_t>(input[1]) << 8 |
           static_cast<uint32_t>(input[2]) << 16 |
           static_cast<uint32_t>(input[3]) << 24;
  if (length == 0) {
    return Status::InvalidArgument("zero-length gemsd frame");
  }
  if (length > max_frame_bytes) {
    return Status::InvalidArgument(
        "gemsd frame of " + std::to_string(length) +
        " bytes exceeds the " + std::to_string(max_frame_bytes) +
        "-byte cap");
  }
  if (input.size() < kFramePrefixSize + length) return Status::Ok();
  *body = input.subspan(kFramePrefixSize, length);
  *consumed = kFramePrefixSize + length;
  return Status::Ok();
}

void EncodeRequest(const Request& request, std::vector<uint8_t>* out) {
  ByteSink sink(out);
  const size_t prefix_at = sink.size();
  sink.PutU32(0);  // Length, patched below.
  sink.PutU8(request.version);
  sink.PutU8(static_cast<uint8_t>(request.opcode));
  sink.PutU8(request.flags);
  sink.PutU64(request.id);
  switch (request.opcode) {
    case Opcode::kPing:
    case Opcode::kCheckpoint:
      break;
    case Opcode::kCreate:
      sink.PutString(request.key);
      sink.PutString(request.sketch_type);
      // Window/decay parameters are a tail extension: absent entirely for
      // an untimed create (byte-identical to the pre-time protocol, so an
      // old daemon still serves it); readers treat an absent tail as "no
      // timed params".
      if (request.has_timed_params) {
        sink.PutU8(1);
        sink.PutU64(request.pane_width);
        sink.PutU32(request.num_panes);
        sink.PutDouble(request.half_life);
      }
      break;
    case Opcode::kDrop:
      sink.PutString(request.key);
      break;
    case Opcode::kList:
      sink.PutString(request.prefix);
      sink.PutU32(request.limit);
      break;
    case Opcode::kUpdate:
      sink.PutString(request.key);
      sink.PutU32(static_cast<uint32_t>(request.items.size()));
      for (uint64_t item : request.items) sink.PutU64(item);
      // Timestamp column, tail extension like kCreate's params: absent
      // entirely for an untimed update.
      if (!request.timestamps.empty()) {
        sink.PutU8(1);
        for (uint64_t timestamp : request.timestamps) sink.PutU64(timestamp);
      }
      break;
    case Opcode::kMerge:
      sink.PutString(request.key);
      sink.PutBytes(request.blob.data(), request.blob.size());
      break;
    case Opcode::kQuery:
      sink.PutString(request.key);
      sink.PutU8(request.has_item ? 1 : 0);
      sink.PutU64(request.item);
      sink.PutDouble(request.confidence);
      break;
    case Opcode::kRestore:
      sink.PutBytes(request.blob.data(), request.blob.size());
      break;
  }
  sink.PatchU32(prefix_at,
                static_cast<uint32_t>(sink.size() - prefix_at -
                                      kFramePrefixSize));
}

Status DecodeRequest(ByteSpan body, Request* out,
                     std::vector<uint64_t>* items_scratch,
                     std::vector<uint64_t>* timestamps_scratch) {
  *out = Request{};
  items_scratch->clear();
  timestamps_scratch->clear();
  ByteReader reader(body);
  uint8_t opcode_raw = 0;
  if (Status s = DecodeCommonHeader(reader, &out->version, &opcode_raw,
                                    &out->flags, &out->id);
      !s.ok()) {
    return s;
  }
  if (!IsKnownOpcode(opcode_raw)) {
    return Status::Unimplemented("unknown gemsd opcode " +
                                 std::to_string(int{opcode_raw}));
  }
  out->opcode = static_cast<Opcode>(opcode_raw);
  switch (out->opcode) {
    case Opcode::kPing:
    case Opcode::kCheckpoint:
      break;
    case Opcode::kCreate: {
      if (Status s = reader.GetString(&out->key); !s.ok()) return s;
      if (Status s = reader.GetString(&out->sketch_type); !s.ok()) return s;
      if (reader.AtEnd()) break;  // Old-style frame: no timed params tail.
      uint8_t has_params = 0;
      if (Status s = reader.GetU8(&has_params); !s.ok()) return s;
      if (has_params > 1) {
        return Status::Corruption("create timed-params flag must be 0 or 1");
      }
      if (has_params != 0) {
        out->has_timed_params = true;
        if (Status s = reader.GetU64(&out->pane_width); !s.ok()) return s;
        if (Status s = reader.GetU32(&out->num_panes); !s.ok()) return s;
        if (Status s = reader.GetDouble(&out->half_life); !s.ok()) return s;
        if (!std::isfinite(out->half_life) || out->half_life < 0.0) {
          return Status::Corruption(
              "create half_life must be finite and >= 0");
        }
      }
      break;
    }
    case Opcode::kDrop:
      if (Status s = reader.GetString(&out->key); !s.ok()) return s;
      break;
    case Opcode::kList:
      if (Status s = reader.GetString(&out->prefix); !s.ok()) return s;
      if (Status s = reader.GetU32(&out->limit); !s.ok()) return s;
      break;
    case Opcode::kUpdate: {
      if (Status s = reader.GetString(&out->key); !s.ok()) return s;
      uint32_t count = 0;
      if (Status s = reader.GetU32(&count); !s.ok()) return s;
      if (static_cast<size_t>(count) * 8 > reader.remaining()) {
        return Status::Corruption("update item count exceeds frame");
      }
      items_scratch->resize(count);
      for (uint32_t i = 0; i < count; ++i) {
        if (Status s = reader.GetU64(&(*items_scratch)[i]); !s.ok()) return s;
      }
      out->items = std::span<const uint64_t>(*items_scratch);
      if (reader.AtEnd()) break;  // Old-style frame: no timestamp tail.
      uint8_t has_timestamps = 0;
      if (Status s = reader.GetU8(&has_timestamps); !s.ok()) return s;
      if (has_timestamps > 1) {
        return Status::Corruption("update timestamp flag must be 0 or 1");
      }
      if (has_timestamps != 0) {
        if (static_cast<size_t>(count) * 8 > reader.remaining()) {
          return Status::Corruption("update timestamp column exceeds frame");
        }
        timestamps_scratch->resize(count);
        for (uint32_t i = 0; i < count; ++i) {
          if (Status s = reader.GetU64(&(*timestamps_scratch)[i]); !s.ok()) {
            return s;
          }
        }
        out->timestamps = std::span<const uint64_t>(*timestamps_scratch);
      }
      break;
    }
    case Opcode::kMerge:
      if (Status s = reader.GetString(&out->key); !s.ok()) return s;
      if (Status s = reader.GetBytesView(&out->blob); !s.ok()) return s;
      break;
    case Opcode::kQuery: {
      if (Status s = reader.GetString(&out->key); !s.ok()) return s;
      uint8_t has_item = 0;
      if (Status s = reader.GetU8(&has_item); !s.ok()) return s;
      if (has_item > 1) {
        return Status::Corruption("query has_item flag must be 0 or 1");
      }
      out->has_item = has_item != 0;
      if (Status s = reader.GetU64(&out->item); !s.ok()) return s;
      if (Status s = reader.GetDouble(&out->confidence); !s.ok()) return s;
      if (!(out->confidence > 0.0 && out->confidence < 1.0)) {
        return Status::Corruption("query confidence outside (0, 1)");
      }
      break;
    }
    case Opcode::kRestore:
      if (Status s = reader.GetBytesView(&out->blob); !s.ok()) return s;
      break;
  }
  return RejectTrailing(reader, "gemsd request");
}

void EncodeResponse(const Response& response, std::vector<uint8_t>* out) {
  ByteSink sink(out);
  const size_t prefix_at = sink.size();
  sink.PutU32(0);  // Length, patched below.
  sink.PutU8(response.version);
  sink.PutU8(static_cast<uint8_t>(response.opcode));
  sink.PutU8(0);  // Flags, reserved.
  sink.PutU64(response.id);
  sink.PutU8(static_cast<uint8_t>(response.code));
  sink.PutString(response.message);
  if (response.code == StatusCode::kOk) {
    switch (response.opcode) {
      case Opcode::kQuery: {
        const QueryResult& q = response.query;
        sink.PutU8(q.has_estimate ? 1 : 0);
        sink.PutDouble(q.estimate.value);
        sink.PutDouble(q.estimate.lower);
        sink.PutDouble(q.estimate.upper);
        sink.PutDouble(q.estimate.confidence);
        sink.PutString(q.summary);
        sink.PutU64(q.epoch);
        break;
      }
      case Opcode::kList:
        sink.PutU64(response.total_keys);
        sink.PutU32(static_cast<uint32_t>(response.entries.size()));
        for (const ListEntry& entry : response.entries) {
          sink.PutString(entry.key);
          sink.PutString(entry.type);
        }
        break;
      case Opcode::kCheckpoint:
        sink.PutBytes(response.blob.data(), response.blob.size());
        break;
      default:
        break;
    }
  }
  sink.PatchU32(prefix_at,
                static_cast<uint32_t>(sink.size() - prefix_at -
                                      kFramePrefixSize));
}

Status DecodeResponse(ByteSpan body, Response* out) {
  *out = Response{};
  ByteReader reader(body);
  uint8_t opcode_raw = 0;
  uint8_t flags = 0;
  if (Status s = DecodeCommonHeader(reader, &out->version, &opcode_raw,
                                    &flags, &out->id);
      !s.ok()) {
    return s;
  }
  if (!IsKnownOpcode(opcode_raw)) {
    return Status::Corruption("unknown opcode in gemsd response");
  }
  out->opcode = static_cast<Opcode>(opcode_raw);
  uint8_t code_raw = 0;
  if (Status s = reader.GetU8(&code_raw); !s.ok()) return s;
  out->code = StatusCodeFromWire(code_raw);
  if (Status s = reader.GetString(&out->message); !s.ok()) return s;
  if (out->code == StatusCode::kOk) {
    switch (out->opcode) {
      case Opcode::kQuery: {
        QueryResult& q = out->query;
        uint8_t has_estimate = 0;
        if (Status s = reader.GetU8(&has_estimate); !s.ok()) return s;
        if (has_estimate > 1) {
          return Status::Corruption("query has_estimate flag must be 0 or 1");
        }
        q.has_estimate = has_estimate != 0;
        if (Status s = reader.GetDouble(&q.estimate.value); !s.ok()) return s;
        if (Status s = reader.GetDouble(&q.estimate.lower); !s.ok()) return s;
        if (Status s = reader.GetDouble(&q.estimate.upper); !s.ok()) return s;
        if (Status s = reader.GetDouble(&q.estimate.confidence); !s.ok()) {
          return s;
        }
        if (Status s = reader.GetString(&q.summary); !s.ok()) return s;
        if (Status s = reader.GetU64(&q.epoch); !s.ok()) return s;
        break;
      }
      case Opcode::kList: {
        if (Status s = reader.GetU64(&out->total_keys); !s.ok()) return s;
        uint32_t count = 0;
        if (Status s = reader.GetU32(&count); !s.ok()) return s;
        // Two one-byte strings minimum per entry bounds hostile counts.
        if (static_cast<size_t>(count) * 2 > reader.remaining()) {
          return Status::Corruption("list entry count exceeds frame");
        }
        out->entries.reserve(count);
        for (uint32_t i = 0; i < count; ++i) {
          ListEntry entry;
          if (Status s = reader.GetString(&entry.key); !s.ok()) return s;
          if (Status s = reader.GetString(&entry.type); !s.ok()) return s;
          out->entries.push_back(std::move(entry));
        }
        break;
      }
      case Opcode::kCheckpoint:
        if (Status s = reader.GetBytesView(&out->blob); !s.ok()) return s;
        break;
      default:
        break;
    }
  }
  return RejectTrailing(reader, "gemsd response");
}

}  // namespace server
}  // namespace gems
