#ifndef GEMS_SERVER_SERVER_H_
#define GEMS_SERVER_SERVER_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "server/keyspace.h"
#include "server/protocol.h"

/// \file
/// gemsd: the epoll-based TCP daemon fronting a Keyspace.
///
/// Threading model: `num_threads` event-loop threads, each with its own
/// epoll instance. All of them watch the shared listening socket with
/// EPOLLEXCLUSIVE, so the kernel wakes exactly one loop per incoming
/// connection and the accepted connection stays pinned to that loop for
/// its lifetime — no cross-thread connection state, no locks on the I/O
/// path. Shared state is only the Keyspace, which is internally
/// synchronized (sharded map locks + per-sketch concurrency contracts).
///
/// Each connection carries a growable read buffer and a pending-write
/// buffer. Frames are split out of the read buffer zero-copy
/// (SplitFrame borrows; UPDATE items and MERGE envelopes are consumed
/// straight out of it), responses are encoded into the write buffer and
/// flushed as far as the socket accepts, with EPOLLOUT armed only while
/// a partial write is outstanding. Malformed frames (bad length prefix,
/// undecodable body) close the connection; unknown-but-well-framed
/// opcodes get a typed kUnimplemented response instead.

namespace gems {
namespace server {

struct ServerOptions {
  /// Listen address. The default binds loopback only; a daemon exposed
  /// beyond localhost should sit behind its own transport security.
  std::string host = "127.0.0.1";
  /// TCP port; 0 picks an ephemeral port (read it back via port()).
  uint16_t port = 0;
  /// Event-loop thread count.
  size_t num_threads = 2;
  /// Per-frame body cap, enforced on read before buffering.
  uint32_t max_frame_bytes = kDefaultMaxFrameBytes;
  /// listen(2) backlog.
  int backlog = 128;
};

/// Executes one decoded request against the keyspace and fills the
/// response. `arena` backs checkpoint payloads (cleared per call; the
/// response's blob borrows it). Exposed so loopback tests and in-process
/// benchmarks drive the exact dispatch the daemon runs.
void HandleRequest(Keyspace& keyspace, const Request& request,
                   Response* response, std::vector<uint8_t>* arena);

/// The daemon. Start() binds, listens, and spawns the event loops;
/// Stop() (or destruction) shuts them down and closes every connection.
/// The keyspace is borrowed and must outlive the server.
class Server {
 public:
  explicit Server(Keyspace* keyspace, ServerOptions options = ServerOptions{});
  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// Binds and starts serving. kUnavailable on socket errors (address in
  /// use, permission); kFailedPrecondition if already started.
  Status Start();

  /// Stops the event loops, closes the listener and every connection.
  /// Idempotent.
  void Stop();

  /// The bound port (resolves ephemeral requests); 0 before Start().
  uint16_t port() const { return port_; }

 private:
  struct Loop;

  void RunLoop(Loop& loop);

  Keyspace* keyspace_;
  ServerOptions options_;
  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::vector<std::unique_ptr<Loop>> loops_;
  std::vector<std::thread> threads_;
};

}  // namespace server
}  // namespace gems

#endif  // GEMS_SERVER_SERVER_H_
