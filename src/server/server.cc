#include "server/server.h"

#include <arpa/inet.h>
#include <errno.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <string.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <unordered_map>
#include <utility>

namespace gems {
namespace server {

namespace {

constexpr size_t kReadChunk = 64 * 1024;

Status Errno(const char* what) {
  return Status::Unavailable(std::string(what) + ": " +
                             std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  const int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::Ok();
}

/// One accepted connection, owned by exactly one event loop.
struct Connection {
  explicit Connection(int fd_in) : fd(fd_in) {}
  ~Connection() {
    if (fd >= 0) ::close(fd);
  }

  int fd;
  /// Bytes read but not yet consumed as frames. `read_pos` marks the
  /// consumed prefix; compacted once the parser catches up, so steady
  /// streams never memmove per frame.
  std::vector<uint8_t> read_buffer;
  size_t read_pos = 0;
  /// Encoded responses not yet accepted by the socket.
  std::vector<uint8_t> write_buffer;
  size_t write_pos = 0;
  bool want_write = false;
  /// Reused per-request scratch: decoded UPDATE items (plus an optional
  /// timestamp column) and checkpoint payloads, so a busy connection
  /// allocates only on high-water growth.
  std::vector<uint64_t> items_scratch;
  std::vector<uint64_t> timestamps_scratch;
  std::vector<uint8_t> arena;
};

}  // namespace

struct Server::Loop {
  int epoll_fd = -1;
  int wake_fd = -1;
  std::unordered_map<int, std::unique_ptr<Connection>> connections;

  ~Loop() {
    if (epoll_fd >= 0) ::close(epoll_fd);
    if (wake_fd >= 0) ::close(wake_fd);
  }
};

void HandleRequest(Keyspace& keyspace, const Request& request,
                   Response* response, std::vector<uint8_t>* arena) {
  *response = Response{};
  response->opcode = request.opcode;
  response->id = request.id;
  Status status = Status::Ok();
  switch (request.opcode) {
    case Opcode::kPing:
      break;
    case Opcode::kCreate: {
      TimedSketchParams params;
      if (request.has_timed_params) {
        params.pane_width = request.pane_width;
        params.num_panes = request.num_panes;
        params.half_life = request.half_life;
      }
      status = keyspace.Create(request.key, request.sketch_type, params);
      break;
    }
    case Opcode::kDrop:
      status = keyspace.Drop(request.key);
      break;
    case Opcode::kList: {
      Keyspace::ListResult list =
          keyspace.List(request.prefix, request.limit);
      response->total_keys = list.total;
      response->entries = std::move(list.entries);
      break;
    }
    case Opcode::kUpdate:
      status =
          keyspace.Update(request.key, request.items, request.timestamps);
      break;
    case Opcode::kMerge:
      status = keyspace.Merge(request.key, request.blob,
                              (request.flags & kFlagTrustedMerge) != 0);
      break;
    case Opcode::kQuery: {
      Result<QueryResult> query = keyspace.Query(
          request.key, request.has_item, request.item, request.confidence);
      if (query.ok()) {
        response->query = std::move(query).value();
      } else {
        status = query.status();
      }
      break;
    }
    case Opcode::kCheckpoint: {
      arena->clear();
      ByteSink sink(arena);
      status = keyspace.Checkpoint(sink);
      if (status.ok()) response->blob = ByteSpan(*arena);
      break;
    }
    case Opcode::kRestore:
      status = keyspace.Restore(request.blob);
      break;
  }
  response->code = status.code();
  response->message = std::string(status.message());
}

Server::Server(Keyspace* keyspace, ServerOptions options)
    : keyspace_(keyspace), options_(std::move(options)) {}

Server::~Server() { Stop(); }

Status Server::Start() {
  if (running_.load(std::memory_order_acquire) || listen_fd_ >= 0) {
    return Status::FailedPrecondition("server already started");
  }
  if (options_.num_threads == 0) options_.num_threads = 1;

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.host.c_str(), &addr.sin_addr) != 1) {
    Stop();
    return Status::InvalidArgument("unparseable listen address '" +
                                   options_.host + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    Status s = Errno("bind");
    Stop();
    return s;
  }
  if (::listen(listen_fd_, options_.backlog) < 0) {
    Status s = Errno("listen");
    Stop();
    return s;
  }
  socklen_t addr_len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr),
                    &addr_len) < 0) {
    Status s = Errno("getsockname");
    Stop();
    return s;
  }
  port_ = ntohs(addr.sin_port);
  if (Status s = SetNonBlocking(listen_fd_); !s.ok()) {
    Stop();
    return s;
  }

  loops_.clear();
  for (size_t i = 0; i < options_.num_threads; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (loop->epoll_fd < 0) {
      Status s = Errno("epoll_create1");
      Stop();
      return s;
    }
    loop->wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (loop->wake_fd < 0) {
      Status s = Errno("eventfd");
      Stop();
      return s;
    }
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLEXCLUSIVE;
    ev.data.fd = listen_fd_;
    if (::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev) < 0) {
      Status s = Errno("epoll_ctl(listen)");
      Stop();
      return s;
    }
    ev = epoll_event{};
    ev.events = EPOLLIN;
    ev.data.fd = loop->wake_fd;
    if (::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake_fd, &ev) < 0) {
      Status s = Errno("epoll_ctl(wake)");
      Stop();
      return s;
    }
    loops_.push_back(std::move(loop));
  }

  running_.store(true, std::memory_order_release);
  threads_.reserve(loops_.size());
  for (std::unique_ptr<Loop>& loop : loops_) {
    threads_.emplace_back([this, &loop] { RunLoop(*loop); });
  }
  return Status::Ok();
}

void Server::Stop() {
  if (running_.exchange(false, std::memory_order_acq_rel)) {
    for (std::unique_ptr<Loop>& loop : loops_) {
      const uint64_t one = 1;
      [[maybe_unused]] ssize_t n =
          ::write(loop->wake_fd, &one, sizeof(one));
    }
    for (std::thread& thread : threads_) thread.join();
    threads_.clear();
  }
  loops_.clear();
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
}

void Server::RunLoop(Loop& loop) {
  // Everything below runs on this loop's thread only; `loop` state needs
  // no synchronization.
  auto close_connection = [&loop](int fd) { loop.connections.erase(fd); };

  auto arm = [&loop](Connection& conn) {
    epoll_event ev{};
    ev.events = EPOLLIN | (conn.want_write ? EPOLLOUT : 0u);
    ev.data.fd = conn.fd;
    ::epoll_ctl(loop.epoll_fd, EPOLL_CTL_MOD, conn.fd, &ev);
  };

  // Flushes as much pending output as the socket takes. Returns false if
  // the connection died.
  auto flush_writes = [&arm](Connection& conn) {
    while (conn.write_pos < conn.write_buffer.size()) {
      const ssize_t n =
          ::send(conn.fd, conn.write_buffer.data() + conn.write_pos,
                 conn.write_buffer.size() - conn.write_pos, MSG_NOSIGNAL);
      if (n > 0) {
        conn.write_pos += static_cast<size_t>(n);
        continue;
      }
      if (n < 0 && errno == EINTR) continue;
      if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) {
        if (!conn.want_write) {
          conn.want_write = true;
          arm(conn);
        }
        return true;
      }
      return false;  // Peer went away.
    }
    conn.write_buffer.clear();
    conn.write_pos = 0;
    if (conn.want_write) {
      conn.want_write = false;
      arm(conn);
    }
    return true;
  };

  // Splits and serves every complete frame in the read buffer. Returns
  // false on a protocol violation (connection must close).
  auto serve_frames = [this, &flush_writes](Connection& conn) {
    for (;;) {
      const ByteSpan pending(conn.read_buffer.data() + conn.read_pos,
                             conn.read_buffer.size() - conn.read_pos);
      ByteSpan body;
      size_t consumed = 0;
      if (!SplitFrame(pending, options_.max_frame_bytes, &body, &consumed)
               .ok()) {
        return false;
      }
      if (consumed == 0) break;  // Incomplete frame: wait for more bytes.
      Request request;
      const Status decoded = DecodeRequest(
          body, &request, &conn.items_scratch, &conn.timestamps_scratch);
      Response response;
      if (decoded.ok()) {
        HandleRequest(*keyspace_, request, &response, &conn.arena);
      } else if (decoded.code() == StatusCode::kUnimplemented) {
        // Well-framed but unknown opcode: answer with the typed error so
        // newer clients degrade gracefully against older daemons.
        response.opcode = Opcode::kPing;
        response.id = request.id;
        response.code = decoded.code();
        response.message = std::string(decoded.message());
      } else {
        return false;  // Undecodable body: drop the connection.
      }
      EncodeResponse(response, &conn.write_buffer);
      conn.read_pos += consumed;
      if (!flush_writes(conn)) return false;
    }
    // Compact once parsed-out; cheap because it only runs when the
    // buffer is fully or mostly drained.
    if (conn.read_pos == conn.read_buffer.size()) {
      conn.read_buffer.clear();
      conn.read_pos = 0;
    } else if (conn.read_pos > (64u << 10)) {
      conn.read_buffer.erase(conn.read_buffer.begin(),
                             conn.read_buffer.begin() +
                                 static_cast<ptrdiff_t>(conn.read_pos));
      conn.read_pos = 0;
    }
    return true;
  };

  auto on_readable = [this, &serve_frames](Connection& conn) {
    for (;;) {
      const size_t old_size = conn.read_buffer.size();
      conn.read_buffer.resize(old_size + kReadChunk);
      const ssize_t n =
          ::recv(conn.fd, conn.read_buffer.data() + old_size, kReadChunk, 0);
      if (n > 0) {
        conn.read_buffer.resize(old_size + static_cast<size_t>(n));
        if (!serve_frames(conn)) return false;
        if (static_cast<size_t>(n) < kReadChunk) return true;
        continue;
      }
      conn.read_buffer.resize(old_size);
      if (n == 0) return false;  // Orderly shutdown from the peer.
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      return false;
    }
  };

  std::vector<epoll_event> events(64);
  while (running_.load(std::memory_order_acquire)) {
    const int n =
        ::epoll_wait(loop.epoll_fd, events.data(),
                     static_cast<int>(events.size()), /*timeout_ms=*/500);
    if (n < 0) {
      if (errno == EINTR) continue;
      break;
    }
    for (int i = 0; i < n; ++i) {
      const epoll_event& ev = events[i];
      if (ev.data.fd == loop.wake_fd) {
        uint64_t drained = 0;
        [[maybe_unused]] ssize_t r =
            ::read(loop.wake_fd, &drained, sizeof(drained));
        continue;
      }
      if (ev.data.fd == listen_fd_) {
        for (;;) {
          const int fd = ::accept4(listen_fd_, nullptr, nullptr,
                                   SOCK_NONBLOCK | SOCK_CLOEXEC);
          if (fd < 0) break;  // EAGAIN: another loop got it, or drained.
          const int one = 1;
          ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
          auto conn = std::make_unique<Connection>(fd);
          epoll_event cev{};
          cev.events = EPOLLIN;
          cev.data.fd = fd;
          if (::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, fd, &cev) == 0) {
            loop.connections.emplace(fd, std::move(conn));
          }
        }
        continue;
      }
      auto it = loop.connections.find(ev.data.fd);
      if (it == loop.connections.end()) continue;
      Connection& conn = *it->second;
      bool alive = true;
      if (ev.events & (EPOLLHUP | EPOLLERR)) alive = false;
      if (alive && (ev.events & EPOLLOUT)) alive = flush_writes(conn);
      if (alive && (ev.events & EPOLLIN)) alive = on_readable(conn);
      if (!alive) close_connection(ev.data.fd);
    }
  }
  loop.connections.clear();
}

}  // namespace server
}  // namespace gems
