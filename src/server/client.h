#ifndef GEMS_SERVER_CLIENT_H_
#define GEMS_SERVER_CLIENT_H_

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "common/status.h"
#include "server/protocol.h"

/// \file
/// Blocking gemsd client. One connection, synchronous request/response
/// round trips; not thread-safe (use one client per thread — connections
/// are cheap and the daemon scales them across its event loops).
///
/// Error surface: server-side failures arrive as the daemon's own typed
/// StatusCode transported verbatim in the response frame and are
/// reassembled here via StatusCodeFromWire + Status::FromCode, so
/// `client.Update(...)` failing with kNotFound is indistinguishable from
/// the in-process `keyspace.Update(...)` failing the same way. Transport
/// failures (connect, reset, short read) are kUnavailable; protocol
/// violations by the peer are kCorruption.

namespace gems {
namespace server {

class GemsdClient {
 public:
  /// Connects to a gemsd at host:port (IPv4 dotted quad).
  static Result<GemsdClient> Connect(const std::string& host, uint16_t port);

  GemsdClient() = default;
  GemsdClient(GemsdClient&& other) noexcept;
  GemsdClient& operator=(GemsdClient&& other) noexcept;
  ~GemsdClient();

  GemsdClient(const GemsdClient&) = delete;
  GemsdClient& operator=(const GemsdClient&) = delete;

  bool connected() const { return fd_ >= 0; }

  /// Liveness probe.
  Status Ping();

  /// Creates `key` as a default-parameter sketch of the named type.
  Status Create(const std::string& key, const std::string& sketch_type);

  /// Creates `key` with explicit window/decay parameters for the time
  /// family (pane_width/num_panes for sliding types, half_life for the
  /// decayed Count-Min; zero-valued fields fall back to library defaults).
  Status CreateTimed(const std::string& key, const std::string& sketch_type,
                     uint64_t pane_width, uint32_t num_panes,
                     double half_life = 0.0);

  /// Drops `key`.
  Status Drop(const std::string& key);

  struct ListResult {
    uint64_t total = 0;
    std::vector<ListEntry> entries;
  };

  /// Keys with the prefix, sorted, capped at `limit` (0 = server default).
  Result<ListResult> List(const std::string& prefix = "",
                          uint32_t limit = 0);

  /// Batched ingest; once this returns Ok the items are query-visible.
  Status Update(const std::string& key, std::span<const uint64_t> items);

  /// Batched timestamped ingest: `timestamps[i]` is the event time of
  /// `items[i]` (same length required). Timed sketch families advance
  /// their window/decay clocks; untimed families ignore the column.
  Status UpdateTimed(const std::string& key,
                     std::span<const uint64_t> items,
                     std::span<const uint64_t> timestamps);

  /// Pipelined round trips: encodes every request (ids assigned here),
  /// ships them in ONE send, then drains the responses in id order — the
  /// classic Redis-style pipelining that amortizes the network RTT over
  /// the window instead of paying it per request. Per-request server
  /// verdicts land in `statuses` (parallel to `requests`); the returned
  /// Status covers the transport/protocol layer only and Ok does NOT mean
  /// every request succeeded. On a transport or protocol failure the
  /// connection is closed and `statuses` holds only the responses drained
  /// so far. Response payloads (query values, blobs) are discarded —
  /// pipeline mutating ops (Update/Merge/Create), not reads.
  Status Pipeline(std::span<Request> requests,
                  std::vector<Status>* statuses);

  /// Ships a serialized sketch envelope for merging into `key`. `trusted`
  /// requests the checksum-skipping structural-validation path — only for
  /// peers in the same failure domain.
  Status Merge(const std::string& key, ByteSpan envelope,
               bool trusted = false);

  /// Whole-sketch estimate query.
  Result<QueryResult> Query(const std::string& key,
                            double confidence = 0.95);

  /// Per-item (frequency) estimate query.
  Result<QueryResult> QueryItem(const std::string& key, uint64_t item,
                                double confidence = 0.95);

  /// Fetches a full checkpoint image of the daemon's keyspace.
  Result<std::vector<uint8_t>> Checkpoint();

  /// Replaces the daemon's keyspace with a checkpoint image.
  Status Restore(ByteSpan image);

 private:
  /// One framed round trip. On success `*response` is decoded and its
  /// borrowed fields point into `*frame` (kept alive by the caller).
  Status RoundTrip(Request& request, Response* response,
                   std::vector<uint8_t>* frame);

  Status SendAll(const uint8_t* data, size_t size);
  Status RecvFrame(std::vector<uint8_t>* frame, ByteSpan* body);

  void CloseFd();

  int fd_ = -1;
  uint64_t next_id_ = 1;
  std::vector<uint8_t> send_buffer_;
};

}  // namespace server
}  // namespace gems

#endif  // GEMS_SERVER_CLIENT_H_
