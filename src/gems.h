#ifndef GEMS_GEMS_H_
#define GEMS_GEMS_H_

/// \file
/// The consolidated public API of the gems sketching library: one include
/// for applications. Link against the `gems` CMake target.
///
///   #include "gems.h"
///
///   gems::HyperLogLog visitors(14, /*seed=*/1);
///   visitors.Update(user_id);
///   gems::Estimate e = visitors.EstimateWithBounds(0.95);
///
/// Internal layering (src/core vs src/common, per-family headers) remains
/// includable directly for consumers that want a narrower dependency
/// surface; this header is the supported, stable entry point. It pulls in:
///
///  - the error model (Status/Result, typed StatusCode),
///  - the estimate value type (point + confidence interval),
///  - serialization (versioned wire envelopes, zero-copy views, the
///    type-erased registry),
///  - every sketch family (cardinality, membership, frequency, quantiles,
///    sampling, moments, similarity, graph),
///  - streaming infrastructure (sliding windows, the stream-query engine),
///  - distributed primitives (merge trees, sharded pipelines, wait-free
///    concurrent wrappers),
///  - the gemsd client and embeddable server (keyed sketches over TCP).

// Error model and core value types.
#include "common/status.h"
#include "core/estimate.h"
#include "core/params.h"

// Serialization: envelopes, byte I/O, zero-copy views, type erasure.
#include "common/bytes.h"
#include "core/io.h"
#include "core/registry.h"
#include "core/view.h"
#include "core/wire.h"

// Memory layout and placement: counter-array layouts, hugepage-backed
// storage, software-prefetch gating.
#include "common/hugepage.h"
#include "common/layout.h"
#include "common/prefetch.h"

// Summary concepts (MergeableSummary, EstimableSummary, ...).
#include "core/summary.h"

// Cardinality.
#include "cardinality/flajolet_martin.h"
#include "cardinality/hllpp.h"
#include "cardinality/hyperloglog.h"
#include "cardinality/kmv.h"
#include "cardinality/linear_counting.h"
#include "cardinality/loglog.h"
#include "cardinality/morris.h"

// Membership.
#include "membership/blocked_bloom.h"
#include "membership/bloom.h"
#include "membership/counting_bloom.h"

// Frequency / heavy hitters.
#include "frequency/count_min.h"
#include "frequency/count_sketch.h"
#include "frequency/dyadic_count_min.h"
#include "frequency/majority.h"
#include "frequency/misra_gries.h"
#include "frequency/space_saving.h"

// Quantiles.
#include "quantiles/gk.h"
#include "quantiles/kll.h"
#include "quantiles/mrl.h"
#include "quantiles/qdigest.h"
#include "quantiles/req.h"
#include "quantiles/tdigest.h"

// Hashing utilities and the runtime-dispatched kernel layer.
#include "common/flat_map.h"
#include "common/random.h"
#include "hash/hash.h"
#include "hash/hashed_batch.h"
#include "simd/dispatch.h"

// Sampling, moments, dimensionality reduction.
#include "moments/ams.h"
#include "moments/compressed_sensing.h"
#include "moments/frequent_directions.h"
#include "moments/jl.h"
#include "moments/sparse_jl.h"
#include "moments/tensor_sketch.h"
#include "sampling/l0_sampler.h"
#include "sampling/reservoir.h"

// Similarity and graph.
#include "graph/agm.h"
#include "graph/connectivity.h"
#include "similarity/lsh.h"
#include "similarity/minhash.h"
#include "similarity/simhash.h"

// Differential privacy and robustness.
#include "privacy/mechanisms.h"
#include "privacy/private_cms.h"
#include "privacy/rappor.h"
#include "privacy/secure_aggregation.h"
#include "robust/adversary.h"
#include "robust/robust_f2.h"

// Workload tooling: generators, exact baselines, error metrics, and the
// multi-query workload shared by the E17 bench and tests.
#include "workload/baselines.h"
#include "workload/generators.h"
#include "workload/metrics.h"
#include "workload/multi_query.h"

// Sketch-gradient ML.
#include "ml/fetchsgd.h"
#include "ml/linear_model.h"

// Time dimension: pane-ring sliding windows, decayed counts, the
// exponential histogram.
#include "time/decayed_count_min.h"
#include "time/exponential_histogram.h"
#include "time/pane_ring.h"
#include "time/sliding_count_min.h"
#include "time/sliding_hll.h"

// Streaming engine: single queries and shared-ingest multi-query.
#include "engine/multi_query.h"
#include "engine/stream_query.h"

// Distributed: merge trees, pipelines, concurrent wrappers.
#include "distributed/aggregation.h"
#include "distributed/concurrent.h"
#include "distributed/sharded_pipeline.h"

// gemsd: keyed sketches over TCP (client, protocol, embeddable server).
#include "server/client.h"
#include "server/keyspace.h"
#include "server/protocol.h"
#include "server/server.h"

#endif  // GEMS_GEMS_H_
