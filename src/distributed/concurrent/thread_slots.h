#ifndef GEMS_DISTRIBUTED_CONCURRENT_THREAD_SLOTS_H_
#define GEMS_DISTRIBUTED_CONCURRENT_THREAD_SLOTS_H_

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

/// \file
/// Per-thread slot registration for the concurrent wrapper: each writer
/// thread binds itself to one slot of a ConcurrentSummary instance on
/// first touch, and — the part the old striped design got wrong — the
/// binding is *returned* when the thread exits. The exit hook folds the
/// thread's residual local state into the shared global and frees the
/// slot for reuse, so long-lived processes with thread churn neither leak
/// slots nor lose buffered updates.
///
/// Lifetime rules: a binding holds a weak_ptr to the instance's shared
/// state, so a thread outliving the summary simply skips the hook, and a
/// summary outliving the thread gets the residual folded. Instance ids
/// come from a process-wide monotone counter and are never reused, so a
/// recycled heap address can never alias a stale binding.

namespace gems {
namespace concurrent_internal {

/// One thread-to-instance binding. `slot` is borrowed memory inside the
/// instance's shared state; it is only dereferenced while `state` is
/// alive (callers lock the weak_ptr, or hold the shared_ptr themselves).
struct TlsBinding {
  uint64_t instance_id = 0;
  std::weak_ptr<void> state;
  void* slot = nullptr;
  /// Called on thread exit with the (still alive) shared state and the
  /// bound slot: folds residual local state and frees the slot.
  void (*on_thread_exit)(const std::shared_ptr<void>& state,
                         void* slot) = nullptr;
};

/// The calling thread's bindings, one entry per live ConcurrentSummary
/// instance this thread has written to. Destroyed on thread exit, which
/// runs every surviving instance's unbind hook.
class TlsSlotRegistry {
 public:
  static TlsSlotRegistry& This() {
    thread_local TlsSlotRegistry registry;
    return registry;
  }

  /// The slot this thread bound for `instance_id`, or nullptr. Hot path:
  /// a linear scan over a vector that almost always has one live entry.
  void* Find(uint64_t instance_id) const {
    for (const TlsBinding& binding : bindings_) {
      if (binding.instance_id == instance_id) return binding.slot;
    }
    return nullptr;
  }

  /// Records a new binding. Entries whose instance has been destroyed are
  /// pruned here, so churn through many short-lived summaries cannot grow
  /// the list without bound.
  void Bind(TlsBinding binding) {
    bindings_.erase(
        std::remove_if(bindings_.begin(), bindings_.end(),
                       [](const TlsBinding& b) { return b.state.expired(); }),
        bindings_.end());
    bindings_.push_back(std::move(binding));
  }

  ~TlsSlotRegistry() {
    for (TlsBinding& binding : bindings_) {
      if (std::shared_ptr<void> state = binding.state.lock()) {
        binding.on_thread_exit(state, binding.slot);
      }
    }
  }

  TlsSlotRegistry(const TlsSlotRegistry&) = delete;
  TlsSlotRegistry& operator=(const TlsSlotRegistry&) = delete;

 private:
  TlsSlotRegistry() = default;
  std::vector<TlsBinding> bindings_;
};

/// Process-wide unique id for each ConcurrentSummary instance.
inline uint64_t NextInstanceId() {
  static std::atomic<uint64_t> next{1};
  return next.fetch_add(1, std::memory_order_relaxed);
}

}  // namespace concurrent_internal
}  // namespace gems

#endif  // GEMS_DISTRIBUTED_CONCURRENT_THREAD_SLOTS_H_
