#ifndef GEMS_DISTRIBUTED_CONCURRENT_CONCURRENT_SUMMARY_H_
#define GEMS_DISTRIBUTED_CONCURRENT_CONCURRENT_SUMMARY_H_

#include <algorithm>
#include <atomic>
#include <chrono>
#include <concepts>
#include <condition_variable>
#include <cstdint>
#include <memory>
#include <mutex>
#include <optional>
#include <span>
#include <thread>
#include <type_traits>
#include <utility>
#include <vector>

#include "common/status.h"
#include "core/estimate.h"
#include "core/summary.h"
#include "distributed/concurrent/epoch.h"
#include "distributed/concurrent/thread_slots.h"

/// \file
/// Wait-free concurrent wrapper for any mergeable summary, rebuilt on the
/// local-buffer/propagator design of "Fast Concurrent Data Sketches"
/// (Rinberg et al., TOPC 2022), replacing the old striped-mutex wrapper
/// whose Snapshot() blocked writers stripe by stripe.
///
/// Data flow, writer side:
///   item --> per-thread bounded buffer (plain vector append, no atomics)
///        --> on fill: one UpdateBatch/InsertBatch drain into the
///            thread's private *local sketch* (the expensive hashing work,
///            entirely off any shared state)
///        --> propagation: the local sketch is folded (Merge) into the
///            shared global under the fold mutex, then reset to an empty
///            delta. Folds use try_lock first: a writer that finds the
///            mutex busy just keeps accumulating locally and retries at
///            the next drain, up to a hard pending cap — so the common
///            case never blocks, and the worst case is one short merge.
///
/// Reader side: every propagation republishes the global into an
/// epoch-versioned double buffer (see epoch.h) and refreshes a cached
/// atomic estimate. Estimate() is a single atomic load; Query(),
/// EstimateWithBounds() and Snapshot() run against a pinned published
/// version. No reader ever takes the fold mutex or stalls ingest.
///
/// Consistency: queries see a *bounded-staleness* view — everything up to
/// each writer's last propagation (at most max_pending_items per writer
/// plus one publication behind), and always a *consistent* one: a
/// published version is a real sketch state, the merge of whole deltas,
/// never a torn mix. Once quiesced (writers joined — thread-exit hooks
/// fold residuals — or FlushLocal() called), the snapshot equals the
/// sequential sketch fed the same stream; for partition-independent
/// merges (HLL max, Count-Min sum, Bloom OR) it is byte-identical.

namespace gems {

/// Wait-free concurrent wrapper around a mergeable summary S. The old
/// striped-lock API surface (Update, UpdateBatch, InsertBatch, Snapshot)
/// is preserved; Estimate/EstimateWithBounds/Query/epoch are new.
template <typename S>
  requires MergeableSummary<S> && std::copy_constructible<S> &&
           std::is_copy_assignable_v<S>
class ConcurrentSummary {
 public:
  /// True when updates are staged in a per-thread buffer of 64-bit items
  /// (item and membership summaries) before the batched drain.
  static constexpr bool kBuffersItems =
      BatchItemSummary<S> || BatchInsertableSummary<S>;
  /// True when the buffer holds doubles (value/quantile summaries).
  static constexpr bool kBuffersValues =
      !kBuffersItems && BatchValueSummary<S>;
  static constexpr bool kBuffered = kBuffersItems || kBuffersValues;
  /// What the per-thread buffer holds.
  using BufferItem = std::conditional_t<kBuffersValues, double, uint64_t>;

  struct Options {
    /// Per-thread item buffer capacity; a full buffer triggers one batched
    /// drain into the thread's local sketch.
    size_t buffer_items = 4096;
    /// Writer slots. 0 picks 2x the hardware concurrency, clamped to
    /// [kMinSlots, kMaxSlots]. Threads beyond the slot count fall back to
    /// a (correct, slower) locked path on the global.
    size_t max_threads = 0;
    /// Fold the local sketch into the global once this many items have
    /// accumulated in it; 0 means "every buffer drain". Together with the
    /// buffer this bounds staleness: a query can miss at most
    /// max_pending_items + buffer_items per live writer thread.
    size_t propagate_items = 0;
    /// Hard cap on unfolded local items: below it a writer uses try_lock
    /// and keeps going if the fold mutex is busy; at the cap it waits.
    /// 0 means 8x propagate_items.
    size_t max_pending_items = 0;
    /// When true, writers only fold (merge) and a background propagator
    /// thread republishes the global for readers on a fixed cadence —
    /// useful when S is large (Bloom, wide Count-Min) and the per-fold
    /// publish copy would dominate. When false (default), every fold
    /// publishes inline.
    bool background_publisher = false;
    /// Republish cadence of the background propagator.
    std::chrono::microseconds publish_interval{200};
  };

  static constexpr size_t kMinSlots = 8;
  static constexpr size_t kMaxSlots = 256;

  /// All sketches (global, published copies, per-thread locals) start as
  /// copies of `prototype`, so folds are merge-compatible by construction.
  explicit ConcurrentSummary(const S& prototype, Options options = Options{})
      : shared_(std::make_shared<Shared>(prototype, Resolve(options))) {
    if (shared_->options.background_publisher) {
      publisher_ = std::thread([shared = shared_] { PublisherLoop(*shared); });
    }
  }

  ~ConcurrentSummary() {
    if (publisher_.joinable()) {
      {
        std::lock_guard<std::mutex> lock(shared_->fold_mutex);
        shared_->stop_publisher = true;
      }
      shared_->publisher_cv.notify_all();
      publisher_.join();
    }
  }

  ConcurrentSummary(const ConcurrentSummary&) = delete;
  ConcurrentSummary& operator=(const ConcurrentSummary&) = delete;

  size_t max_threads() const { return shared_->slots.size(); }
  const Options& options() const { return shared_->options; }

  /// Thread-safe single update. Single 64-bit-item (or double, for value
  /// summaries) updates take the buffered wait-free path; anything else
  /// (weighted updates, multi-argument shapes) applies directly to this
  /// thread's local sketch — still contention-free, just unbatched.
  void Update(BufferItem item)
    requires kBuffered
  {
    Shared& sh = *shared_;
    Local* local = AcquireLocal(sh);
    if (local == nullptr) {
      OverflowApply(sh, item);
      return;
    }
    local->buffer.push_back(item);
    if (local->buffer.size() >= sh.options.buffer_items) {
      DrainBuffer(*local);
      MaybePropagate(sh, *local);
    }
  }

  /// Forwarding overload for update shapes the buffer cannot carry.
  template <typename... Args>
    requires(sizeof...(Args) >= 1) &&
            requires(S s, Args&&... args) {
              s.Update(std::forward<Args>(args)...);
            } &&
            (!(kBuffered && sizeof...(Args) == 1 &&
               (std::is_convertible_v<Args, BufferItem> && ...)))
  void Update(Args&&... args) {
    Shared& sh = *shared_;
    Local* local = AcquireLocal(sh);
    if (local == nullptr) {
      std::lock_guard<std::mutex> lock(sh.fold_mutex);
      sh.global.Update(std::forward<Args>(args)...);
      OverflowTick(sh, 1);
      return;
    }
    if (!local->buffer.empty()) DrainBuffer(*local);
    local->sketch->Update(std::forward<Args>(args)...);
    local->pending += 1;
    MaybePropagate(sh, *local);
  }

  /// Membership-filter convenience; same buffered path as Update.
  void Insert(uint64_t key)
    requires BatchInsertableSummary<S>
  {
    Update(key);
  }

  /// Thread-safe batch drain (old API): the span feeds the thread's local
  /// sketch through the summary's batch fast path, then propagates if the
  /// fold threshold is crossed. No locks unless propagating.
  void UpdateBatch(std::span<const uint64_t> items)
    requires BatchItemSummary<S>
  {
    IngestSpan(items);
  }

  /// Batch drain for value (quantile) summaries.
  void UpdateBatch(std::span<const double> values)
    requires BatchValueSummary<S> && (!BatchItemSummary<S>)
  {
    IngestSpan(values);
  }

  /// Batch drain for membership filters (old API).
  void InsertBatch(std::span<const uint64_t> keys)
    requires BatchInsertableSummary<S>
  {
    IngestSpan(keys);
  }

  /// Drains the *calling thread's* buffered items and folds its local
  /// sketch into the global, force-publishing the result. Gives the
  /// calling thread read-your-writes; other threads' unfolded tails
  /// remain subject to the staleness bound until they propagate or exit.
  void FlushLocal() const { FlushLocalFor(*shared_); }

  /// Wait-free point estimate: one atomic load of the value cached at the
  /// last publication. Staleness is bounded as documented above.
  double Estimate() const
    requires EstimableSummary<S>
  {
    return shared_->cached_estimate.load(std::memory_order_acquire);
  }

  /// Interval estimate computed against the pinned published version —
  /// no copy, no lock, any confidence level.
  gems::Estimate EstimateWithBounds(double confidence = 0.95) const
    requires BoundedPointEstimableSummary<S>
  {
    return Query(
        [&](const S& s) { return s.EstimateWithBounds(confidence); });
  }

  /// Runs `fn(const S&)` against the pinned published version and returns
  /// its result — the general wait-free read (point queries on Count-Min,
  /// quantile probes, serialization, ...). `fn` must not retain the
  /// reference past its return.
  template <typename Fn>
  auto Query(Fn&& fn) const {
    return shared_->published.Read(std::forward<Fn>(fn));
  }

  /// Publication version: advances once per propagation. Monotone; usable
  /// as a staleness probe ("has anything landed since I last looked").
  uint64_t epoch() const { return shared_->published.epoch(); }

  /// Applies `fn(S&)` to the global under the fold mutex and republishes
  /// on success — the entry point for folding *externally built* deltas
  /// (a deserialized peer sketch, restored checkpoint state) into a live
  /// summary, which is how the gemsd MERGE and RESTORE paths land. Unlike
  /// writer folds, a failure here is the caller's to handle (e.g. a
  /// parameter-mismatched merge): it is returned, never latched into the
  /// summary's error state, and nothing is published.
  template <typename Fn>
  Status FoldExternal(Fn&& fn) {
    Shared& sh = *shared_;
    std::lock_guard<std::mutex> lock(sh.fold_mutex);
    if (Status s = fn(sh.global); !s.ok()) return s;
    sh.folds += 1;
    // Force even under a background publisher: once the fold is acked the
    // merged state must be visible to readers.
    ForcePublish(sh);
    return Status::Ok();
  }

  /// Folds a whole summary of the same shape into the global — the
  /// concrete-type convenience over FoldExternal.
  Status MergeDelta(const S& delta) {
    return FoldExternal([&](S& global) { return global.Merge(delta); });
  }

  /// Consistent snapshot (old API): folds the calling thread's residual
  /// state, then copies the published version under a pin. Never blocks
  /// writers; concurrent snapshots are monotone in epoch. A fold error
  /// (only possible for summaries whose Merge has data-dependent
  /// preconditions) is propagated here rather than aborting.
  Result<S> Snapshot() const {
    Shared& sh = *shared_;
    FlushLocalFor(sh);
    if (sh.has_error.load(std::memory_order_acquire)) {
      std::lock_guard<std::mutex> lock(sh.fold_mutex);
      return sh.first_error;
    }
    {
      // The published copy may lag the newest global state — a cadenced
      // background publisher between wakeups, or sub-threshold overflow
      // updates; catch up here so a quiesced Snapshot is always complete.
      // (Estimate/Query stay wait-free; Snapshot was always allowed a
      // brief fold-lock.)
      std::lock_guard<std::mutex> lock(sh.fold_mutex);
      if (sh.published_folds != sh.folds || sh.overflow_pending > 0) {
        ForcePublish(sh);
      }
    }
    return sh.published.Read([](const S& s) { return Result<S>(s); });
  }

 private:
  /// One writer thread's world: the staging buffer and the private delta
  /// sketch, touched only by the owning thread (plus the exit hook, which
  /// runs on the owning thread too).
  struct Local {
    std::vector<BufferItem> buffer;
    std::optional<S> sketch;
    size_t pending = 0;  // Items in `sketch` not yet folded.
  };

  /// A claimable slot. Separate heap allocations + alignment keep two
  /// writers' hot state off each other's cache lines.
  struct alignas(64) Slot {
    std::atomic<bool> claimed{false};
    Local local;
  };

  /// Everything the instance, its writer threads, and the optional
  /// background propagator share. Held by shared_ptr so a thread-exit
  /// hook can run safely even while the wrapper itself is being torn
  /// down elsewhere (the hook locks a weak_ptr).
  struct Shared {
    Shared(const S& proto, Options opts)
        : options(opts),
          prototype(proto),
          global(proto),
          published(proto),
          instance_id(concurrent_internal::NextInstanceId()) {
      slots.reserve(options.max_threads);
      for (size_t i = 0; i < options.max_threads; ++i) {
        slots.push_back(std::make_unique<Slot>());
      }
      if constexpr (EstimableSummary<S>) {
        cached_estimate.store(proto.Estimate(), std::memory_order_relaxed);
      }
    }

    Options options;
    const S prototype;  // Delta resets copy from this; never mutated.
    std::vector<std::unique_ptr<Slot>> slots;

    // Fold state, guarded by fold_mutex.
    std::mutex fold_mutex;
    S global;
    uint64_t folds = 0;            // Total folds into `global`.
    uint64_t published_folds = 0;  // Folds included in `published`.
    size_t overflow_pending = 0;   // Slotless updates since last publish.
    Status first_error = Status::Ok();
    bool stop_publisher = false;

    std::condition_variable publisher_cv;
    EpochPublished<S> published;
    std::atomic<double> cached_estimate{0.0};
    std::atomic<bool> has_error{false};
    const uint64_t instance_id;
  };

  static Options Resolve(Options options) {
    if (options.buffer_items == 0) options.buffer_items = 1;
    if (options.max_threads == 0) {
      const size_t hw = std::thread::hardware_concurrency();
      options.max_threads =
          std::min(kMaxSlots, std::max(kMinSlots, 2 * std::max<size_t>(hw, 1)));
    }
    if (options.max_threads > kMaxSlots) options.max_threads = kMaxSlots;
    if (options.propagate_items == 0) {
      options.propagate_items = options.buffer_items;
    }
    if (options.max_pending_items < options.propagate_items) {
      options.max_pending_items = 8 * options.propagate_items;
    }
    return options;
  }

  // ------------------------------------------------------------- writers

  /// This thread's Local for this instance, claiming a slot on first
  /// touch; nullptr when every slot is taken (overflow path).
  Local* AcquireLocal(Shared& sh) const {
    void* slot = concurrent_internal::TlsSlotRegistry::This().Find(
        sh.instance_id);
    if (slot != nullptr) return &static_cast<Slot*>(slot)->local;
    return AcquireLocalSlow(sh);
  }

  Local* AcquireLocalSlow(Shared& sh) const {
    for (std::unique_ptr<Slot>& slot : sh.slots) {
      bool expected = false;
      if (!slot->claimed.load(std::memory_order_relaxed) &&
          slot->claimed.compare_exchange_strong(expected, true,
                                                std::memory_order_acq_rel)) {
        Local& local = slot->local;
        local.sketch.emplace(sh.prototype);
        local.buffer.clear();
        local.buffer.reserve(sh.options.buffer_items);
        local.pending = 0;
        concurrent_internal::TlsSlotRegistry::This().Bind(
            {sh.instance_id, std::weak_ptr<void>(shared_), slot.get(),
             &ThreadExitHook});
        return &local;
      }
    }
    return nullptr;
  }

  /// Thread-exit: fold the thread's residual state and free its slot for
  /// the next thread — the fix for the old design's first-touch token
  /// leak, where exiting threads kept their stripe token forever.
  static void ThreadExitHook(const std::shared_ptr<void>& state, void* slot) {
    Shared& sh = *static_cast<Shared*>(state.get());
    Slot& s = *static_cast<Slot*>(slot);
    ReleaseSlot(sh, s);
  }

  static void ReleaseSlot(Shared& sh, Slot& slot) {
    Local& local = slot.local;
    if (!local.buffer.empty()) DrainBuffer(local);
    if (local.pending > 0) {
      std::lock_guard<std::mutex> lock(sh.fold_mutex);
      Fold(sh, local);
      PublishLocked(sh);
    }
    local.sketch.reset();
    local.buffer.clear();
    local.buffer.shrink_to_fit();
    slot.claimed.store(false, std::memory_order_release);
  }

  template <typename Item>
  void IngestSpan(std::span<const Item> items) {
    Shared& sh = *shared_;
    Local* local = AcquireLocal(sh);
    if (local == nullptr) {
      std::lock_guard<std::mutex> lock(sh.fold_mutex);
      ApplySpan(sh.global, items);
      OverflowTick(sh, items.size());
      return;
    }
    if (!local->buffer.empty()) DrainBuffer(*local);
    ApplySpan(*local->sketch, items);
    local->pending += items.size();
    MaybePropagate(sh, *local);
  }

  template <typename Item>
  static void ApplySpan(S& sketch, std::span<const Item> items) {
    if constexpr (std::is_same_v<Item, uint64_t> && BatchItemSummary<S>) {
      (void)sketch.UpdateBatch(items);
    } else if constexpr (std::is_same_v<Item, uint64_t> &&
                         BatchInsertableSummary<S>) {
      (void)sketch.InsertBatch(items);
    } else {
      (void)sketch.UpdateBatch(items);
    }
  }

  static void DrainBuffer(Local& local) {
    ApplySpan(*local.sketch, std::span<const BufferItem>(local.buffer));
    local.pending += local.buffer.size();
    local.buffer.clear();
  }

  /// Slotless single-item fallback, called with no slot available. Still
  /// correct — it updates the global directly under the fold mutex — and
  /// its publishes are throttled so readers keep seeing progress.
  void OverflowApply(Shared& sh, BufferItem item) {
    std::lock_guard<std::mutex> lock(sh.fold_mutex);
    const BufferItem one[1] = {item};
    ApplySpan(sh.global, std::span<const BufferItem>(one));
    OverflowTick(sh, 1);
  }

  static void OverflowTick(Shared& sh, size_t items) {
    sh.overflow_pending += items;
    if (sh.overflow_pending >= sh.options.propagate_items) {
      PublishLocked(sh);
    }
  }

  // --------------------------------------------------------- propagation

  static void MaybePropagate(Shared& sh, Local& local) {
    if (local.pending < sh.options.propagate_items) return;
    if (local.pending < sh.options.max_pending_items) {
      std::unique_lock<std::mutex> lock(sh.fold_mutex, std::try_to_lock);
      if (!lock.owns_lock()) return;  // Busy: keep accumulating locally.
      Fold(sh, local);
      PublishLocked(sh);
    } else {
      // Hard staleness cap reached: this is the one place a writer waits.
      std::lock_guard<std::mutex> lock(sh.fold_mutex);
      Fold(sh, local);
      PublishLocked(sh);
    }
  }

  /// Merges the local delta into the global and resets it. fold_mutex held.
  static void Fold(Shared& sh, Local& local) {
    if (Status s = sh.global.Merge(*local.sketch); !s.ok()) {
      if (sh.first_error.ok()) sh.first_error = s;
      sh.has_error.store(true, std::memory_order_release);
    }
    *local.sketch = sh.prototype;
    local.pending = 0;
    sh.folds += 1;
  }

  /// Republishes the global for readers (unless the background propagator
  /// owns publication). fold_mutex held.
  static void PublishLocked(Shared& sh) {
    if (sh.options.background_publisher) {
      sh.publisher_cv.notify_one();
      return;
    }
    ForcePublish(sh);
  }

  static void ForcePublish(Shared& sh) {
    sh.published.Publish([&](S& out) { out = sh.global; });
    sh.published_folds = sh.folds;
    sh.overflow_pending = 0;
    if constexpr (EstimableSummary<S>) {
      sh.cached_estimate.store(sh.global.Estimate(),
                               std::memory_order_release);
    }
  }

  /// The background propagator: decouples the publish copy from writer
  /// folds. Wakes on its cadence (or a fold notification) and republishes
  /// when the global moved.
  static void PublisherLoop(Shared& sh) {
    std::unique_lock<std::mutex> lock(sh.fold_mutex);
    while (!sh.stop_publisher) {
      sh.publisher_cv.wait_for(lock, sh.options.publish_interval);
      if (sh.published_folds != sh.folds || sh.overflow_pending > 0) {
        ForcePublish(sh);
      }
    }
    // Final publish so a quiesced teardown leaves readers-of-record (e.g.
    // a last Snapshot before destruction) the complete state.
    if (sh.published_folds != sh.folds || sh.overflow_pending > 0) {
      ForcePublish(sh);
    }
  }

  static void FlushLocalFor(Shared& sh) {
    void* slot_ptr = concurrent_internal::TlsSlotRegistry::This().Find(
        sh.instance_id);
    if (slot_ptr == nullptr) return;
    Local& local = static_cast<Slot*>(slot_ptr)->local;
    if (!local.buffer.empty()) DrainBuffer(local);
    if (local.pending == 0) return;
    std::lock_guard<std::mutex> lock(sh.fold_mutex);
    Fold(sh, local);
    ForcePublish(sh);  // Force even under a background publisher.
  }

  std::shared_ptr<Shared> shared_;
  std::thread publisher_;
};

}  // namespace gems

#endif  // GEMS_DISTRIBUTED_CONCURRENT_CONCURRENT_SUMMARY_H_
